// Reproduces Figure 4: raw bit-stream (BS) vs Virtual Bit-Stream (VBS) size
// for the 20 MCNC benchmarks at the paper's normalized channel width of 20,
// finest coding grain (cluster size 1).
//
// Every stream is additionally decoded by the online algorithm and checked
// for electrical equivalence with the routed netlist before its size is
// reported — a size claim for a stream that does not decode would be
// meaningless.
#include <cstdio>

#include "bench/bench_common.h"
#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "util/stats.h"
#include "util/table.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

using namespace vbs;

int main() {
  const auto circuits = bench::selected_circuits();
  bench::print_subset_note();
  const FlowOptions opts = bench::paper_flow_options();

  std::printf(
      "Figure 4: raw bit-stream vs Virtual Bit-Stream size (W = 20, "
      "cluster = 1)\n");
  std::printf("Paper reports an average VBS size of 41%% of raw (~2.4x).\n\n");

  TablePrinter table({"Name", "BS (bits)", "VBS (bits)", "VBS/BS", "factor",
                      "raw-coded macros", "verified"});
  Summary ratio_summary;
  std::vector<double> ratios;

  for (const McncCircuit& c : circuits) {
    FlowResult r = run_mcnc_flow(c, opts);
    if (!r.routed()) {
      table.add_row({c.name, "-", "-", "unroutable", "-", "-", "-"});
      continue;
    }
    EncodeStats stats;
    const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed,
                                    r.placement, r.routing.routes, {}, &stats);

    // Decode the serialized stream online and verify electrically.
    const BitVector decoded = devirtualize_image(
        deserialize_vbs(serialize_vbs(img)), *r.fabric, {0, 0});
    const std::string verdict = verify_connectivity(
        *r.fabric, decoded, r.netlist, r.packed, r.placement);

    const double ratio = stats.compression_ratio();
    ratio_summary.add(ratio);
    ratios.push_back(ratio);
    table.add_row({c.name, TablePrinter::fmt_bits(stats.raw_bits),
                   TablePrinter::fmt_bits(stats.vbs_bits),
                   TablePrinter::fmt(100.0 * ratio, 1) + "%",
                   TablePrinter::fmt(1.0 / ratio, 2) + "x",
                   TablePrinter::fmt_int(stats.raw_entries),
                   verdict.empty() ? "ok" : verdict});
    std::fflush(stdout);
  }
  table.print();
  if (ratio_summary.count() > 0) {
    std::printf("\naverage VBS/BS ratio  : %.1f%%  (paper: 41%%)\n",
                100.0 * ratio_summary.mean());
    std::printf("geomean compression   : %.2fx (paper: ~2.4x avg)\n",
                1.0 / geomean(ratios));
    std::printf("best / worst circuit  : %.1f%% / %.1f%%\n",
                100.0 * ratio_summary.min(), 100.0 * ratio_summary.max());
  }
  return 0;
}
