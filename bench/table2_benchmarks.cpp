// Reproduces Table II: the benchmark set — array size, logic-block count
// and minimum channel width (MCW) — using the calibrated synthetic
// stand-ins for the 20 largest MCNC circuits.
//
// Published values are printed next to measured ones; the LB counts match
// by construction, the measured MCW is this flow's own binary search (see
// EXPERIMENTS.md for the comparison discussion).
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/mcw.h"
#include "util/table.h"

using namespace vbs;

int main() {
  const auto circuits = bench::selected_circuits();
  bench::print_subset_note();
  const FlowOptions base = bench::paper_flow_options();

  std::printf("Table II: benchmark set (paper values vs this reproduction)\n");
  std::printf("Synthetic MCNC stand-ins, K=6 LUTs, MCW by binary search.\n\n");

  TablePrinter table({"Name", "Size", "LBs (paper)", "LBs (ours)",
                      "MCW (paper)", "MCW (ours)", "trials", "sec"});
  int mcw_diff_sum = 0;
  int measured_count = 0;

  for (const McncCircuit& c : circuits) {
    const auto t0 = std::chrono::steady_clock::now();
    Netlist nl = make_mcnc_like(c, base.seed);
    const PackedDesign pd = pack_netlist(nl, base.arch);
    const Placement pl =
        place_design(nl, pd, base.arch, c.size, c.size, base.place);

    McwOptions mo;
    mo.router.max_iterations = 25;
    mo.router.stall_abort = 4;
    mo.hi = 40;
    mo.hint = c.mcw;  // probe the published value first
    const McwResult res = find_min_channel_width(base.arch, nl, pd, pl, mo);
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

    table.add_row({c.name, TablePrinter::fmt_int(c.size),
                   TablePrinter::fmt_int(c.lbs),
                   TablePrinter::fmt_int(nl.num_luts()),
                   TablePrinter::fmt_int(c.mcw),
                   res.mcw < 0 ? "unroutable" : TablePrinter::fmt_int(res.mcw),
                   TablePrinter::fmt_int(res.trials),
                   TablePrinter::fmt(sec, 1)});
    if (res.mcw > 0) {
      mcw_diff_sum += std::abs(res.mcw - c.mcw);
      ++measured_count;
    }
    std::fflush(stdout);
  }
  table.print();
  if (measured_count > 0) {
    std::printf("\nmean |MCW(ours) - MCW(paper)| = %.2f tracks over %d circuits\n",
                static_cast<double>(mcw_diff_sum) / measured_count,
                measured_count);
  }
  return 0;
}
