// Micro-benchmarks of the flow substrates: annealing move rate, PathFinder
// expansion rate, fabric-graph construction, and the bit-level primitives
// every stream operation sits on. Supporting data for the flow-cost claims
// in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bitstream/connectivity.h"
#include "fabric/fabric.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/route_request.h"
#include "util/bitvector.h"
#include "util/rng.h"

using namespace vbs;

namespace {

void BM_AnnealerMoves(benchmark::State& state) {
  GenParams p;
  p.n_lut = static_cast<int>(state.range(0));
  p.seed = 7;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 12;
  const PackedDesign pd = pack_netlist(nl, spec);
  const int grid = static_cast<int>(std::ceil(std::sqrt(p.n_lut * 1.2)));
  long long moves = 0;
  for (auto _ : state) {
    PlaceStats stats;
    const Placement pl =
        place_design(nl, pd, spec, grid, grid, {}, &stats);
    benchmark::DoNotOptimize(pl.lut_loc.data());
    moves += stats.moves;
  }
  state.counters["moves_per_sec"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}

void BM_RouterExpansion(benchmark::State& state) {
  GenParams p;
  p.n_lut = static_cast<int>(state.range(0));
  p.seed = 9;
  const Netlist nl = generate_netlist(p);
  ArchSpec spec;
  spec.chan_width = 10;
  const PackedDesign pd = pack_netlist(nl, spec);
  const int grid = static_cast<int>(std::ceil(std::sqrt(p.n_lut * 1.2)));
  const Placement pl = place_design(nl, pd, spec, grid, grid, {});
  const Fabric fabric(spec, grid, grid);
  long long pops = 0;
  for (auto _ : state) {
    PathfinderRouter router(fabric, build_route_request(fabric, nl, pd, pl));
    const RoutingResult rr = router.route({});
    if (!rr.success) state.SkipWithError("unroutable");
    pops += rr.heap_pops;
  }
  state.counters["heap_pops_per_sec"] = benchmark::Counter(
      static_cast<double>(pops), benchmark::Counter::kIsRate);
}

void BM_FabricBuild(benchmark::State& state) {
  ArchSpec spec;  // W = 20, the paper's normalized width
  const int size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const Fabric fabric(spec, size, size);
    benchmark::DoNotOptimize(fabric.num_nodes());
  }
  state.counters["nodes"] =
      static_cast<double>(Fabric(spec, size, size).num_nodes());
}

void BM_BitVectorAppend(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    BitVector v;
    for (int i = 0; i < 1 << 16; ++i) v.push_back((i * 2654435761u) & 1);
    benchmark::DoNotOptimize(v.words().data());
  }
  state.SetBytesProcessed(state.iterations() * (1 << 13));
}

void BM_ConnectivityExtract(benchmark::State& state) {
  GenParams p;
  p.n_lut = 80;
  p.seed = 11;
  FlowOptions o;
  o.arch.chan_width = 10;
  FlowResult r = run_flow(generate_netlist(p), 10, 10, o);
  if (!r.routed()) {
    state.SkipWithError("unroutable");
    return;
  }
  const BitVector raw = generate_raw_bitstream(*r.fabric, r.netlist, r.packed,
                                               r.placement, r.routing.routes);
  for (auto _ : state) {
    const Connectivity conn(*r.fabric, raw);
    benchmark::DoNotOptimize(conn.root(0));
  }
}

}  // namespace

BENCHMARK(BM_AnnealerMoves)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RouterExpansion)->Arg(100)->Arg(250)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FabricBuild)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BitVectorAppend);
BENCHMARK(BM_ConnectivityExtract)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
