// Decode-cost measurements backing two of the paper's runtime claims:
//   * coarser clusters need "higher computing power to decode" (Section
//     IV-B) — BM_Devirtualize/<c> shows decode time growing with cluster
//     size while the stream shrinks;
//   * de-virtualization "can be easily parallelized to process multiple
//     macros at once" (Section II-C) — BM_ParallelLoad/<threads> shows the
//     controller's speed-up.
//
// Throughput is reported as configuration bits produced per second
// (bytes_per_second counter = raw config bits / 8).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "rtc/controller.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

/// One shared routed circuit (placed & routed once per process).
struct SharedFlow {
  FlowResult r;
  std::map<int, VbsImage> images;        // by cluster size
  std::map<int, BitVector> streams;      // serialized, by cluster size

  SharedFlow() {
    const char* name = std::getenv("REPRO_BENCH_CIRCUIT");
    const McncCircuit& c = mcnc_by_name(name ? name : "ex5p");
    r = run_mcnc_flow(c, bench::paper_flow_options());
    if (!r.routed()) throw std::runtime_error("bench circuit unroutable");
    for (const int cl : {1, 2, 4, 8}) {
      EncodeOptions eo;
      eo.cluster = cl;
      images[cl] = encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                              r.routing.routes, eo);
      streams[cl] = serialize_vbs(images[cl]);
    }
  }
};

SharedFlow& shared() {
  static SharedFlow f;
  return f;
}

void BM_Devirtualize(benchmark::State& state) {
  SharedFlow& f = shared();
  const int cluster = static_cast<int>(state.range(0));
  const VbsImage& img = f.images.at(cluster);
  DecodeStats stats;
  for (auto _ : state) {
    BitVector cfg = devirtualize_image(img, *f.r.fabric, {0, 0}, &stats);
    benchmark::DoNotOptimize(cfg.words().data());
  }
  const double raw_bits = static_cast<double>(f.r.fabric->config_bits_total());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * raw_bits / 8.0));
  state.counters["stream_bits"] =
      static_cast<double>(f.streams.at(cluster).size());
  state.counters["nodes_expanded_per_iter"] =
      static_cast<double>(stats.nodes_expanded) /
      static_cast<double>(state.iterations());
}

void BM_ParallelLoad(benchmark::State& state) {
  SharedFlow& f = shared();
  const int threads = static_cast<int>(state.range(0));
  const BitVector& stream = f.streams.at(2);
  for (auto _ : state) {
    ReconfigController rtc(f.r.fabric->spec(), f.r.fabric->width(),
                           f.r.fabric->height());
    const TaskId id = rtc.load(stream, threads);
    if (id == kNoTask) state.SkipWithError("load failed");
  }
  const double raw_bits = static_cast<double>(f.r.fabric->config_bits_total());
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * raw_bits / 8.0));
}

void BM_Serialize(benchmark::State& state) {
  SharedFlow& f = shared();
  const VbsImage& img = f.images.at(1);
  for (auto _ : state) {
    BitVector bits = serialize_vbs(img);
    benchmark::DoNotOptimize(bits.words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<double>(f.streams.at(1).size()) / 8.0));
}

void BM_Deserialize(benchmark::State& state) {
  SharedFlow& f = shared();
  const BitVector& stream = f.streams.at(1);
  for (auto _ : state) {
    VbsImage img = deserialize_vbs(stream);
    benchmark::DoNotOptimize(img.entries.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * static_cast<double>(stream.size()) / 8.0));
}

}  // namespace

BENCHMARK(BM_Devirtualize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelLoad)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Serialize)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Deserialize)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
