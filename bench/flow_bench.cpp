// Reproducible perf harness for the pack -> place -> route flow: the
// trajectory every perf PR measures itself against.
//
// Each run drives a FlowPipeline (the stage-graph flow API) through
// netlist generation, packing and placement, then places the SAME packed
// design again with the batched speculate/validate/commit engine at
// --threads workers, verifying the parallel placement (grid, stats AND
// cost_drift) is byte-identical to the serial one — and routes the serial
// placement three times: with the default bounded-box serial router
// (the pipeline's route stage), with the deterministic parallel engine at
// --threads workers (verifying the trees are byte-identical to the serial
// leg), and with the unbounded textbook baseline — so heap-pop and
// wall-time comparisons are apples-to-apples in a single process. After
// the route legs the harness saves a full pipeline checkpoint, resumes it,
// and reruns the route stage from the loaded placement, verifying the
// resumed remainder reproduces the uninterrupted run's trees and stats
// byte for byte (`checkpoint.resume_identical`). Unless --no-mcw is given
// it then runs the minimum-channel-width search twice through the
// pipeline, warm-started and cold. Results go to stdout as a table and to
// a machine-readable JSON file (see bench/README.md for the
// vbs.flow_bench.v6 schema).
//
// Two in-run identity legs guard the SoA data-layout kernels: a
// bounding-box kernel micro-bench times cost sweeps over the committed
// placement in both the SoA layout and the retained AoS reference and
// requires bit-identical per-net costs, and a fourth route leg reruns the
// bounded route with the precomputed congestion-cost stride disabled and
// requires identical trees and heap pops. Either mismatch fails the run.
//
// Usage:
//   flow_bench [--smoke] [--circuits a,b] [--seeds N] [--width W]
//              [--threads T] [--margin M] [--effort E] [--no-mcw] [--big]
//              [--stage pack|place|route|all] [--checkpoint-dir DIR]
//              [--trace-out trace.json] [--metrics] [--out PATH]
//
//   --smoke      tiny synthetic circuits (seconds; used by CI to catch
//                harness bitrot)
//   --big        append the Rent-exponent synthetic family (grid 64 and
//                128) to the suite — hours on one core, MCW skipped for
//                those runs; opt-in for cache-behaviour studies beyond
//                the Table II scale
//   --circuits   comma-separated Table II names (default: the 5 smallest)
//   --seeds      number of seeds per circuit, 1..N (default 1)
//   --width      routed channel width (default 20, the paper's norm)
//   --threads    parallel-leg worker count (default 8)
//   --margin     bounded-box margin in tiles (default RouterOptions)
//   --effort     placer effort scale (default 1.0)
//   --no-mcw     skip the minimum-channel-width searches
//   --stage      run the flow only up to this stage (pack/place/route;
//                later legs and the MCW searches are skipped; default all)
//   --checkpoint-dir
//                persist each run's pack+place prefix here and resume it
//                on the next invocation — repeated router-leg sweeps skip
//                the redundant anneals (stale checkpoints are re-run)
//   --trace-out  write a Chrome trace-event JSON of the run (flow stages,
//                router iterations, annealer temperatures, MCW trials)
//   --metrics    dump the metrics registry as JSON to stderr
//   --out        JSON output path (default BENCH_flow.json)
//
// The telemetry registry is always on in this harness (the JSON embeds
// its counters); determinism is unaffected — every identity check below
// holds with telemetry on or off.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "flow/pipeline.h"
#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/mcw.h"
#include "route/route_request.h"
#include "route/router.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/table.h"

using namespace vbs;

namespace {

/// How far a bench run drives the flow: 0..2 = stop after that stage,
/// kAllLegs = route legs plus the MCW searches.
constexpr int kAllLegs = 3;

struct RouteSample {
  double seconds = 0.0;
  bool success = false;
  int iterations = 0;
  long long heap_pops = 0;
  long long bbox_retries = 0;
  std::size_t wire_nodes = 0;
  // Parallel-engine counters (0 on serial legs).
  long long spec_commits = 0;
  long long spec_rejected = 0;
  long long spec_wasted_pops = 0;
};

struct McwSample {
  int mcw = -1;
  int trials = 0;
  long long heap_pops = 0;
  double seconds = 0.0;
};

/// Bounding-box kernel micro-bench: SoA sweep vs the retained AoS
/// reference over the same committed placement (bench_place_kernels).
struct KernelSample {
  long long sweeps = 0;
  double soa_seconds = 0.0;
  double ref_seconds = 0.0;
  bool identical = false;  ///< per-net costs bit-identical across layouts
};

struct RunRecord {
  std::string circuit;
  int grid = 0;
  std::uint64_t seed = 0;
  int chan_width = 0;
  double netlist_seconds = 0.0;
  int blocks = 0, nets = 0;
  double pack_seconds = 0.0;
  int luts = 0, ios = 0;
  double place_seconds = 0.0;
  PlaceStats place;
  double moves_per_sec = 0.0;
  bool place_from_checkpoint = false;  ///< anneal skipped via --checkpoint-dir
  // Parallel-placer leg: the same pack placed again at --threads workers.
  double place_par_seconds = 0.0;
  PlaceStats place_par;
  bool place_identical = false;  ///< parallel placement+stats == serial
  KernelSample kernel;
  bool kernel_checked = false;
  RouteSample bounded;
  RouteSample parallel;
  bool parallel_identical = false;  ///< parallel trees == serial trees
  RouteSample unbounded;
  // Reference-cost route leg: the bounded route rerun with the precomputed
  // congestion-cost stride disabled (RouterOptions::precomputed_cost =
  // false); trees and counters must match the bounded leg exactly.
  RouteSample route_ref;
  bool route_ref_checked = false;
  bool route_ref_identical = false;
  // Checkpoint/resume verification: save after route, resume, rerun the
  // route stage from the loaded placement, compare byte for byte.
  bool checkpoint_checked = false;
  bool checkpoint_identical = false;
  McwSample mcw_warm;
  McwSample mcw_cold;
};

RouteSample sample_of(const RoutingResult& rr, double seconds) {
  RouteSample s;
  s.seconds = seconds;
  s.success = rr.success;
  s.iterations = rr.iterations;
  s.heap_pops = rr.heap_pops;
  s.bbox_retries = rr.bbox_retries;
  s.wire_nodes = rr.total_wire_nodes;
  s.spec_commits = rr.spec_commits;
  s.spec_rejected = rr.spec_rejected;
  s.spec_wasted_pops = rr.spec_wasted_pops;
  return s;
}

RouteSample route_once(const Fabric& fabric, const RouteRequest& req,
                       const RouterOptions& ropts,
                       RoutingResult* out = nullptr) {
  const std::uint64_t t0 = telem::now_ns();
  PathfinderRouter router(fabric, req);
  RoutingResult rr = router.route(ropts);
  RouteSample s = sample_of(rr, telem::seconds_since(t0));
  if (out != nullptr) *out = std::move(rr);
  return s;
}

bool identical_routes(const RoutingResult& a, const RoutingResult& b) {
  if (a.routes.size() != b.routes.size()) return false;
  for (std::size_t n = 0; n < a.routes.size(); ++n) {
    const auto& ra = a.routes[n].nodes;
    const auto& rb = b.routes[n].nodes;
    if (ra.size() != rb.size()) return false;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k].rr != rb[k].rr || ra[k].parent != rb[k].parent ||
          ra[k].fabric_edge != rb[k].fabric_edge) {
        return false;
      }
    }
  }
  return true;
}

bool identical_placements(const Placement& a, const Placement& b) {
  return a.grid_w == b.grid_w && a.grid_h == b.grid_h &&
         a.lut_loc == b.lut_loc && a.io_loc == b.io_loc;
}

McwSample mcw_once(FlowPipeline& pipe, bool warm) {
  McwOptions mo;
  mo.warm_start = warm;
  const McwResult r = find_min_channel_width(pipe, mo);
  McwSample s;
  s.mcw = r.mcw;
  s.trials = r.trials;
  s.heap_pops = r.heap_pops;
  s.seconds = r.seconds;
  return s;
}

/// Saves `pipe` (pack..route) to a scratch directory, resumes it, checks
/// the loaded artifacts, then reruns the route stage from the loaded
/// placement and compares the remainder against the uninterrupted run —
/// the acceptance check of the resumable-pipeline contract, run in-process
/// on every bench run.
bool verify_checkpoint_resume(FlowPipeline& pipe, const std::string& dir) {
  pipe.save_checkpoint(dir, Stage::kRoute);
  FlowPipeline re = FlowPipeline::resume_from(dir);
  bool ok = re.completed(Stage::kRoute) &&
            identical_placements(re.placement(), pipe.placement()) &&
            identical_routes(re.routing(), pipe.routing());
  // Drop the loaded routing and rerun it on the frozen, loaded placement:
  // must reproduce the uninterrupted run byte for byte.
  re.rerun_from(Stage::kRoute);
  const RoutingResult& a = pipe.routing();
  const RoutingResult& b = re.routing();
  ok = ok && identical_routes(a, b) && a.success == b.success &&
       a.iterations == b.iterations && a.heap_pops == b.heap_pops &&
       a.bbox_retries == b.bbox_retries;
  return ok;
}

RunRecord run_one(const std::string& name, Netlist nl, int grid,
                  std::uint64_t seed, int width, double netlist_seconds,
                  double effort, int margin, int threads, bool with_mcw,
                  int stage_limit, const std::string& ckpt_root) {
  RunRecord rec;
  rec.circuit = name;
  rec.grid = grid;
  rec.seed = seed;
  rec.chan_width = width;
  rec.netlist_seconds = netlist_seconds;
  rec.blocks = nl.num_blocks();
  rec.nets = nl.num_nets();

  FlowOptions fo;
  fo.arch.chan_width = width;
  fo.seed = seed;
  fo.threads = 1;
  fo.place.seed = seed;
  fo.place.effort = effort;
  if (margin >= 0) fo.route.bb_margin = margin;

  // Resume the pack+place prefix from --checkpoint-dir when a compatible
  // checkpoint exists (fingerprints reject corrupted ones; an option
  // mismatch means the checkpoint answers a different question).
  std::optional<FlowPipeline> pipe;
  const std::string run_ckpt =
      ckpt_root.empty()
          ? ""
          : (std::filesystem::path(ckpt_root) /
             (name + "_s" + std::to_string(seed)))
                .string();
  if (!run_ckpt.empty() && std::filesystem::exists(run_ckpt)) {
    try {
      FlowPipeline resumed = FlowPipeline::resume_from(run_ckpt);
      const FlowOptions& ro = resumed.options();
      // Pack/place artifacts are route-option-independent, so a checkpoint
      // is reusable whenever the placement-determining options match; the
      // current router configuration (e.g. a swept --margin) is applied on
      // top — that cross-invocation sweep is the point of the flag.
      if (resumed.completed(Stage::kPlace) && resumed.grid_w() == grid &&
          ro.arch.chan_width == width && ro.seed == seed &&
          ro.place.effort == effort) {
        resumed.set_route_options(fo.route);
        pipe.emplace(std::move(resumed));
        rec.place_from_checkpoint = true;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "flow_bench: ignoring checkpoint %s (%s)\n",
                   run_ckpt.c_str(), e.what());
    }
  }
  if (!pipe) pipe.emplace(std::move(nl), grid, grid, fo);

  double stage_seconds[kNumStages] = {};
  pipe->add_observer([&](const FlowPipeline&, const StageReport& r) {
    stage_seconds[static_cast<int>(r.stage)] = r.seconds;
  });

  pipe->run_to(Stage::kPack);
  rec.pack_seconds = stage_seconds[static_cast<int>(Stage::kPack)];
  rec.luts = pipe->packed().num_luts();
  rec.ios = pipe->packed().num_ios();
  if (stage_limit < 1) return rec;

  pipe->run_to(Stage::kPlace);
  rec.place = pipe->place_stats();
  rec.place_seconds = stage_seconds[static_cast<int>(Stage::kPlace)];
  rec.moves_per_sec =
      rec.place_seconds > 0
          ? static_cast<double>(rec.place.moves) / rec.place_seconds
          : 0.0;
  if (!run_ckpt.empty() && !rec.place_from_checkpoint) {
    pipe->save_checkpoint(run_ckpt, Stage::kPlace);
  }

  // The batched speculate/validate/commit engine on the same pack: the
  // placement, stats and cost_drift must be byte-identical to the serial
  // leg, only wall time (and the speculation diagnostics) may differ.
  PlaceOptions ppar;
  ppar.seed = seed;
  ppar.effort = effort;
  ppar.threads = threads;
  const std::uint64_t tpar = telem::now_ns();
  const Placement pl_par =
      place_design(pipe->netlist(), pipe->packed(), pipe->options().arch,
                   grid, grid, ppar, &rec.place_par);
  rec.place_par_seconds = telem::seconds_since(tpar);
  rec.place_identical =
      identical_placements(pl_par, pipe->placement()) &&
      rec.place_par.moves == rec.place.moves &&
      rec.place_par.accepted == rec.place.accepted &&
      rec.place_par.temperatures == rec.place.temperatures &&
      rec.place_par.initial_cost == rec.place.initial_cost &&
      rec.place_par.final_cost == rec.place.final_cost &&
      rec.place_par.cost_drift == rec.place.cost_drift;

  // SoA kernel cross-check: full bounding-box cost sweeps over the
  // committed placement in both layouts. The sweep count is scaled so the
  // timed region stays ~constant work across circuit sizes; identity is
  // exact per-net double equality, so any layout-induced arithmetic
  // difference fails the run.
  {
    const long long sweeps =
        std::max<long long>(4, 2'000'000 / std::max(1, rec.nets));
    const PlaceKernelReport kr = bench_place_kernels(
        pipe->netlist(), pipe->packed(), pipe->placement(), sweeps);
    rec.kernel_checked = true;
    rec.kernel.sweeps = kr.sweeps;
    rec.kernel.soa_seconds = kr.soa_seconds;
    rec.kernel.ref_seconds = kr.ref_seconds;
    rec.kernel.identical = kr.identical;
  }
  if (stage_limit < 2) return rec;

  // Default options: bounded-box expansion, incremental reroute, calibrated
  // A* weight — the pipeline's route stage with RouterOptions{} as shipped.
  // Touching route_request() first builds the fabric and routing graph
  // OUTSIDE the timed stage, so all three route legs are timed against the
  // same pre-built graph (the v3 methodology).
  pipe->route_request();
  pipe->run_to(Stage::kRoute);
  rec.bounded = sample_of(pipe->routing(),
                          stage_seconds[static_cast<int>(Stage::kRoute)]);
  // The deterministic parallel engine on the same request: trees must be
  // byte-identical to the serial leg, only wall time may differ.
  RouterOptions par = pipe->options().route;
  par.threads = threads;
  RoutingResult parallel_routes;
  rec.parallel =
      route_once(pipe->fabric(), pipe->route_request(), par, &parallel_routes);
  rec.parallel_identical = identical_routes(pipe->routing(), parallel_routes);
  // The unbounded textbook baseline: whole-fabric expansion, whole-net
  // rip-up, and the pre-calibration heuristic weight — the formulation the
  // seed router shipped (see bench/README.md).
  RouterOptions baseline;
  baseline.bounded_box = false;
  baseline.incremental_reroute = false;
  baseline.astar_fac = 1.15;
  rec.unbounded = route_once(pipe->fabric(), pipe->route_request(), baseline);
  // Reference-cost leg: the bounded route with the precomputed
  // congestion-cost stride turned off, i.e. the pre-refactor inner loop
  // recomputing each node's cost inline. The stride is identity-preserving
  // by construction, so trees, pops and iterations must all match the
  // bounded leg — this cross-checks the SoA router layout in-run.
  RouterOptions refc = pipe->options().route;
  refc.precomputed_cost = false;
  RoutingResult ref_routes;
  rec.route_ref =
      route_once(pipe->fabric(), pipe->route_request(), refc, &ref_routes);
  rec.route_ref_checked = true;
  rec.route_ref_identical = identical_routes(pipe->routing(), ref_routes) &&
                            rec.route_ref.heap_pops == rec.bounded.heap_pops &&
                            rec.route_ref.iterations == rec.bounded.iterations;

  // Checkpoint/resume verification (scratch dir; --checkpoint-dir keeps
  // only the pack+place prefix, this leg exercises the full chain).
  const std::string vdir =
      (std::filesystem::temp_directory_path() /
       ("flow_bench_ckpt_" + name + "_s" + std::to_string(seed) + "_p" +
        std::to_string(::getpid())))
          .string();
  rec.checkpoint_checked = true;
  rec.checkpoint_identical = verify_checkpoint_resume(*pipe, vdir);
  std::filesystem::remove_all(vdir);

  if (with_mcw) {
    rec.mcw_warm = mcw_once(*pipe, /*warm=*/true);
    rec.mcw_cold = mcw_once(*pipe, /*warm=*/false);
  }
  return rec;
}

void write_json(const std::string& path, const std::vector<RunRecord>& runs,
                bool smoke, int width, int seeds, int threads, int margin,
                double effort, bool with_mcw, int stage_limit,
                const std::string& ckpt_root) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  long long pops_b = 0, pops_u = 0, mcw_w = 0, mcw_c = 0;
  double secs_b = 0, secs_u = 0, secs_p = 0;
  double psecs = 0, psecs_par = 0;
  long long pspec_c = 0, pspec_r = 0;
  int ok_b = 0, ok_u = 0, identical = 0, place_identical = 0, mcw_match = 0;
  int ckpt_identical = 0;
  int kernel_identical = 0, refcost_identical = 0;
  double ksecs_soa = 0, ksecs_ref = 0;
  for (const RunRecord& r : runs) {
    pops_b += r.bounded.heap_pops;
    pops_u += r.unbounded.heap_pops;
    secs_b += r.bounded.seconds;
    secs_u += r.unbounded.seconds;
    secs_p += r.parallel.seconds;
    psecs += r.place_seconds;
    psecs_par += r.place_par_seconds;
    pspec_c += r.place_par.spec_commits;
    pspec_r += r.place_par.spec_rejected;
    ok_b += r.bounded.success ? 1 : 0;
    ok_u += r.unbounded.success ? 1 : 0;
    identical += r.parallel_identical ? 1 : 0;
    place_identical += r.place_identical ? 1 : 0;
    ckpt_identical += r.checkpoint_identical ? 1 : 0;
    kernel_identical += r.kernel_checked && r.kernel.identical ? 1 : 0;
    refcost_identical += r.route_ref_checked && r.route_ref_identical ? 1 : 0;
    ksecs_soa += r.kernel.soa_seconds;
    ksecs_ref += r.kernel.ref_seconds;
    mcw_w += r.mcw_warm.heap_pops;
    mcw_c += r.mcw_cold.heap_pops;
    mcw_match += with_mcw && r.mcw_warm.mcw == r.mcw_cold.mcw ? 1 : 0;
  }
  const char* stage_names[] = {"pack", "place", "route", "all"};
  const std::string ckpt_json =
      ckpt_root.empty() ? "null" : "\"" + ckpt_root + "\"";
  std::fprintf(f, "{\n  \"schema\": \"vbs.flow_bench.v6\",\n");
  std::fprintf(f,
               "  \"options\": {\"smoke\": %s, \"chan_width\": %d, \"seeds\": "
               "%d, \"threads\": %d, \"bb_margin\": %d, \"effort\": %.3f, "
               "\"mcw\": %s, \"stage\": \"%s\", \"checkpoint_dir\": %s},\n",
               smoke ? "true" : "false", width, seeds, threads, margin, effort,
               with_mcw ? "true" : "false", stage_names[stage_limit],
               ckpt_json.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"build\": %s,\n", build_info_json(2).c_str());
  std::fprintf(f, "  \"metrics\": %s,\n",
               telem::snapshot().to_json(2).c_str());
  const RouterOptions def;
  std::fprintf(f,
               "  \"router_default\": {\"bounded_box\": %s, "
               "\"incremental_reroute\": %s, \"astar_fac\": %.2f},\n"
               "  \"router_baseline\": {\"bounded_box\": false, "
               "\"incremental_reroute\": false, \"astar_fac\": 1.15},\n",
               def.bounded_box ? "true" : "false",
               def.incremental_reroute ? "true" : "false", def.astar_fac);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::fprintf(f, "    {\"circuit\": \"%s\", \"grid\": %d, \"seed\": %llu, ",
                 r.circuit.c_str(), r.grid,
                 static_cast<unsigned long long>(r.seed));
    std::fprintf(f, "\"chan_width\": %d,\n", r.chan_width);
    std::fprintf(
        f,
        "     \"netlist\": {\"seconds\": %.4f, \"blocks\": %d, \"nets\": %d},\n",
        r.netlist_seconds, r.blocks, r.nets);
    std::fprintf(f,
                 "     \"pack\": {\"seconds\": %.4f, \"luts\": %d, \"ios\": "
                 "%d},\n",
                 r.pack_seconds, r.luts, r.ios);
    std::fprintf(f,
                 "     \"place\": {\"threads\": 1, \"seconds\": %.4f, "
                 "\"moves\": %lld, "
                 "\"accepted\": %lld, \"temperatures\": %d, \"moves_per_sec\": "
                 "%.0f, \"initial_cost\": %.3f, \"final_cost\": %.3f, "
                 "\"cost_drift\": %.3e, \"from_checkpoint\": %s},\n",
                 r.place_seconds, r.place.moves, r.place.accepted,
                 r.place.temperatures, r.moves_per_sec, r.place.initial_cost,
                 r.place.final_cost, r.place.cost_drift,
                 r.place_from_checkpoint ? "true" : "false");
    std::fprintf(f,
                 "     \"place_parallel\": {\"threads\": %d, \"seconds\": "
                 "%.4f, \"spec_commits\": %lld, \"spec_rejected\": %lld, "
                 "\"identical_to_serial\": %s},\n",
                 threads, r.place_par_seconds, r.place_par.spec_commits,
                 r.place_par.spec_rejected,
                 r.place_identical ? "true" : "false");
    if (r.kernel_checked) {
      std::fprintf(f,
                   "     \"kernels\": {\"bbox_sweeps\": %lld, "
                   "\"soa_seconds\": %.4f, \"ref_seconds\": %.4f, "
                   "\"soa_speedup\": %.3f, \"identical\": %s},\n",
                   r.kernel.sweeps, r.kernel.soa_seconds, r.kernel.ref_seconds,
                   r.kernel.soa_seconds > 0
                       ? r.kernel.ref_seconds / r.kernel.soa_seconds
                       : 0.0,
                   r.kernel.identical ? "true" : "false");
    }
    auto route_json = [&](const char* key, const RouteSample& s,
                          const char* tail) {
      std::fprintf(f,
                   "     \"%s\": {\"seconds\": %.4f, \"success\": %s, "
                   "\"iterations\": %d, \"heap_pops\": %lld, \"bbox_retries\": "
                   "%lld, \"wire_nodes\": %zu}%s\n",
                   key, s.seconds, s.success ? "true" : "false", s.iterations,
                   s.heap_pops, s.bbox_retries, s.wire_nodes, tail);
    };
    route_json("route_bounded", r.bounded, ",");
    std::fprintf(f,
                 "     \"route_parallel\": {\"threads\": %d, \"seconds\": "
                 "%.4f, \"success\": %s, \"heap_pops\": %lld, "
                 "\"spec_commits\": %lld, \"spec_rejected\": %lld, "
                 "\"spec_wasted_pops\": %lld, \"identical_to_serial\": %s},\n",
                 threads, r.parallel.seconds,
                 r.parallel.success ? "true" : "false", r.parallel.heap_pops,
                 r.parallel.spec_commits, r.parallel.spec_rejected,
                 r.parallel.spec_wasted_pops,
                 r.parallel_identical ? "true" : "false");
    route_json("route_unbounded", r.unbounded, ",");
    if (r.route_ref_checked) {
      std::fprintf(f,
                   "     \"route_refcost\": {\"seconds\": %.4f, "
                   "\"heap_pops\": %lld, \"identical_to_bounded\": %s},\n",
                   r.route_ref.seconds, r.route_ref.heap_pops,
                   r.route_ref_identical ? "true" : "false");
    }
    std::fprintf(f,
                 "     \"checkpoint\": {\"checked\": %s, "
                 "\"resume_identical\": %s}%s\n",
                 r.checkpoint_checked ? "true" : "false",
                 r.checkpoint_identical ? "true" : "false",
                 with_mcw ? "," : "");
    if (with_mcw) {
      auto mcw_json = [&](const char* key, const McwSample& s,
                          const char* tail) {
        std::fprintf(f,
                     "     \"%s\": {\"mcw\": %d, \"trials\": %d, "
                     "\"heap_pops\": %lld, \"seconds\": %.4f}%s\n",
                     key, s.mcw, s.trials, s.heap_pops, s.seconds, tail);
      };
      mcw_json("mcw_warm", r.mcw_warm, ",");
      mcw_json("mcw_cold", r.mcw_cold, "");
    }
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"summary\": {\"runs\": %zu, \"routed_bounded\": %d, "
      "\"routed_unbounded\": %d, \"heap_pops_bounded\": %lld, "
      "\"heap_pops_unbounded\": %lld, \"heap_pop_ratio\": %.3f, "
      "\"route_seconds_bounded\": %.4f, \"route_seconds_unbounded\": %.4f, "
      "\"route_seconds_parallel\": %.4f, \"parallel_speedup\": %.3f, "
      "\"parallel_identical\": %d, \"place_seconds_serial\": %.4f, "
      "\"place_seconds_parallel\": %.4f, \"place_speedup\": %.3f, "
      "\"place_spec_commit_rate\": %.3f, \"place_identical\": %d, "
      "\"kernel_identical\": %d, \"kernel_soa_seconds\": %.4f, "
      "\"kernel_ref_seconds\": %.4f, \"kernel_speedup\": %.3f, "
      "\"route_refcost_identical\": %d, "
      "\"checkpoint_identical\": %d, "
      "\"mcw_heap_pops_warm\": %lld, "
      "\"mcw_heap_pops_cold\": %lld, \"mcw_pop_ratio\": %.3f, "
      "\"mcw_width_matches\": %d}\n",
      runs.size(), ok_b, ok_u, pops_b, pops_u,
      pops_b > 0 ? static_cast<double>(pops_u) / static_cast<double>(pops_b)
                 : 0.0,
      secs_b, secs_u, secs_p,
      secs_p > 0 ? secs_b / secs_p : 0.0, identical, psecs, psecs_par,
      psecs_par > 0 ? psecs / psecs_par : 0.0,
      pspec_c + pspec_r > 0
          ? static_cast<double>(pspec_c) /
                static_cast<double>(pspec_c + pspec_r)
          : 0.0,
      place_identical, kernel_identical, ksecs_soa, ksecs_ref,
      ksecs_soa > 0 ? ksecs_ref / ksecs_soa : 0.0, refcost_identical,
      ckpt_identical, mcw_w, mcw_c,
      mcw_w > 0 ? static_cast<double>(mcw_c) / static_cast<double>(mcw_w)
                : 0.0,
      mcw_match);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv,
               {"--circuits", "--seeds", "--width", "--threads", "--margin",
                "--effort", "--stage", "--checkpoint-dir", "--trace-out",
                "--out"},
               {"--smoke", "--no-mcw", "--metrics", "--big"});
  const TelemetryCli telemetry(args);
  telem::set_enabled(true);  // harness JSON embeds the counters
  const bool smoke = args.has_flag("--smoke");
  const bool big = args.has_flag("--big");
  const int seeds = static_cast<int>(args.int_or("--seeds", 1));
  const int width = static_cast<int>(args.int_or("--width", smoke ? 10 : 20));
  const int threads = threads_or(args, 8);
  const int margin = static_cast<int>(args.int_or("--margin", -1));
  const double effort = args.double_or("--effort", 1.0);
  const std::string out = args.value_or("--out", "BENCH_flow.json");
  const std::string ckpt_root = args.value_or("--checkpoint-dir", "");
  int stage_limit = kAllLegs;
  if (const auto s = args.value("--stage")) {
    if (*s == "all") {
      stage_limit = kAllLegs;
    } else if (const auto st = stage_from_string(*s);
               st && *st <= Stage::kRoute) {
      stage_limit = static_cast<int>(*st);
    } else {
      throw std::runtime_error("option --stage: expected pack|place|route|all");
    }
  }
  const bool with_mcw = !args.has_flag("--no-mcw") && stage_limit == kAllLegs;

  std::vector<RunRecord> runs;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    if (smoke) {
      // Tiny synthetic circuits: exercises every stage, all three router
      // legs, the checkpoint/resume verification and both MCW modes in
      // seconds, for CI.
      for (const int n_lut : {60, 120}) {
        GenParams p;
        p.n_lut = n_lut;
        p.n_pi = 8;
        p.n_po = 8;
        p.seed = seed;
        const std::uint64_t t0 = telem::now_ns();
        Netlist nl = generate_netlist(p);
        const double gen_s = telem::seconds_since(t0);
        const int grid =
            static_cast<int>(std::ceil(std::sqrt(n_lut * 1.25)));
        runs.push_back(run_one("smoke" + std::to_string(n_lut), std::move(nl),
                               grid, seed, width, gen_s, effort, margin,
                               threads, with_mcw, stage_limit, ckpt_root));
      }
    } else {
      std::vector<McncCircuit> circuits;
      if (const auto list = args.value("--circuits")) {
        std::string names = *list;
        std::size_t pos = 0;
        while (pos <= names.size()) {
          const std::size_t comma = names.find(',', pos);
          const std::string name = names.substr(
              pos, comma == std::string::npos ? comma : comma - pos);
          if (!name.empty()) circuits.push_back(mcnc_by_name(name));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else {
        // Default suite: the 5 smallest Table II circuits — spans the
        // des/dsip/bigkey/ex5p/tseng mix of I/O-bound and logic-bound
        // designs while staying minutes, not hours, on one core.
        circuits = mcnc20();
        std::sort(circuits.begin(), circuits.end(),
                  [](const McncCircuit& a, const McncCircuit& b) {
                    return a.lbs < b.lbs;
                  });
        circuits.resize(5);
      }
      for (const McncCircuit& c : circuits) {
        const std::uint64_t t0 = telem::now_ns();
        Netlist nl = make_mcnc_like(c, seed);
        const double gen_s = telem::seconds_since(t0);
        runs.push_back(run_one(c.name, std::move(nl), c.size, seed, width,
                               gen_s, effort, margin, threads, with_mcw,
                               stage_limit, ckpt_root));
      }
    }
    if (big && !smoke) {
      // The Rent-exponent synthetic family: larger-than-Table-II arrays
      // whose locality is steered by a single exponent, for cache-behaviour
      // studies of the SoA kernels. MCW is skipped — a 128x128 bisection
      // would dominate the whole suite — but every identity leg still runs.
      struct BigSpec {
        const char* name;
        int grid;
        double rent;
      };
      for (const BigSpec& b :
           {BigSpec{"rent62_g64", 64, 0.62}, BigSpec{"rent58_g128", 128, 0.58}}) {
        GenParams p;
        p.n_lut = (b.grid * b.grid * 4) / 5;  // ~80% logic utilisation
        p.n_pi = b.grid;
        p.n_po = b.grid;
        p.seed = seed;
        p.rent_exponent = b.rent;
        const std::uint64_t t0 = telem::now_ns();
        Netlist nl = generate_netlist(p);
        const double gen_s = telem::seconds_since(t0);
        runs.push_back(run_one(b.name, std::move(nl), b.grid, seed, width,
                               gen_s, effort, margin, threads,
                               /*with_mcw=*/false, stage_limit, ckpt_root));
      }
    }
  }

  TablePrinter t({"circuit", "seed", "plc s/par", "route s", "pops", "par s",
                  "full s", "pop ratio", "mcw", "mcw pops w/c"});
  for (const RunRecord& r : runs) {
    const double ratio =
        r.bounded.heap_pops > 0
            ? static_cast<double>(r.unbounded.heap_pops) /
                  static_cast<double>(r.bounded.heap_pops)
            : 0.0;
    t.add_row({r.circuit, std::to_string(r.seed),
               TablePrinter::fmt(r.place_seconds, 2) + "/" +
                   TablePrinter::fmt(r.place_par_seconds, 2),
               TablePrinter::fmt(r.bounded.seconds, 2),
               TablePrinter::fmt_int(r.bounded.heap_pops),
               TablePrinter::fmt(r.parallel.seconds, 2),
               TablePrinter::fmt(r.unbounded.seconds, 2),
               TablePrinter::fmt(ratio, 2),
               std::to_string(r.mcw_warm.mcw),
               TablePrinter::fmt_int(r.mcw_warm.heap_pops) + "/" +
                   TablePrinter::fmt_int(r.mcw_cold.heap_pops)});
  }
  t.print();

  write_json(out, runs, smoke, width, seeds, threads, margin, effort,
             with_mcw, stage_limit, ckpt_root);
  std::printf("\nwrote %s\n", out.c_str());
  telemetry.finish();

  // Fail loudly if any leg that ran regressed: an unroutable run, a
  // parallel tree that diverged from the serial one, or a checkpoint
  // resume that did not reproduce the uninterrupted run would make the
  // numbers meaningless.
  for (const RunRecord& r : runs) {
    if (stage_limit >= 1 && !r.place_identical) {
      std::fprintf(
          stderr,
          "FAIL: %s seed %llu parallel placement diverged from serial\n",
          r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (r.kernel_checked && !r.kernel.identical) {
      std::fprintf(stderr,
                   "FAIL: %s seed %llu SoA bbox kernel diverged from the AoS "
                   "reference\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (stage_limit < 2) continue;
    if (!r.bounded.success || !r.unbounded.success || !r.parallel.success) {
      std::fprintf(stderr, "FAIL: %s seed %llu did not route\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (!r.parallel_identical) {
      std::fprintf(stderr,
                   "FAIL: %s seed %llu parallel routing diverged from serial\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (r.route_ref_checked && !r.route_ref_identical) {
      std::fprintf(stderr,
                   "FAIL: %s seed %llu precomputed-cost route diverged from "
                   "the reference-cost route\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (r.checkpoint_checked && !r.checkpoint_identical) {
      std::fprintf(stderr,
                   "FAIL: %s seed %llu checkpoint resume diverged from the "
                   "uninterrupted run\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (with_mcw && r.mcw_warm.mcw != r.mcw_cold.mcw) {
      std::fprintf(stderr,
                   "NOTE: %s seed %llu warm mcw %d != cold mcw %d (warm found "
                   "a different minimum; not a failure)\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed),
                   r.mcw_warm.mcw, r.mcw_cold.mcw);
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr,
               "flow_bench: %s\n"
               "usage: flow_bench [--smoke] [--circuits a,b] [--seeds N] "
               "[--width W] [--threads T] [--margin M] [--effort E] "
               "[--no-mcw] [--big] [--stage pack|place|route|all] "
               "[--checkpoint-dir DIR] [--trace-out trace.json] [--metrics] "
               "[--out PATH]\n",
               e.what());
  return 1;
}
