// Reproducible perf harness for the pack -> place -> route flow: the
// trajectory every perf PR measures itself against.
//
// For each circuit x seed x channel width the harness times netlist
// generation and packing, then places the SAME packed design twice — with
// the serial annealer and with the batched speculate/validate/commit
// engine at --threads workers, verifying the parallel placement (grid,
// stats AND cost_drift) is byte-identical to the serial one — and routes
// the serial placement three times: with the default bounded-box serial
// router, with the deterministic parallel engine at --threads workers
// (verifying the trees are byte-identical to the serial leg), and with the
// unbounded textbook baseline — so heap-pop and wall-time comparisons are
// apples-to-apples in a single process. Unless --no-mcw is given it then
// runs the minimum-channel-width search twice, warm-started and cold,
// recording per-search trial counts and heap pops. Results go to stdout as
// a table and to a machine-readable JSON file (see bench/README.md for the
// vbs.flow_bench.v3 schema).
//
// Usage:
//   flow_bench [--smoke] [--circuits a,b] [--seeds N] [--width W]
//              [--threads T] [--margin M] [--effort E] [--no-mcw]
//              [--out PATH]
//
//   --smoke      tiny synthetic circuits (seconds; used by CI to catch
//                harness bitrot)
//   --circuits   comma-separated Table II names (default: the 5 smallest)
//   --seeds      number of seeds per circuit, 1..N (default 1)
//   --width      routed channel width (default 20, the paper's norm)
//   --threads    parallel-leg worker count (default 8)
//   --margin     bounded-box margin in tiles (default RouterOptions)
//   --effort     placer effort scale (default 1.0)
//   --no-mcw     skip the minimum-channel-width searches
//   --out        JSON output path (default BENCH_flow.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/mcw.h"
#include "route/route_request.h"
#include "route/router.h"
#include "util/cli.h"
#include "util/table.h"

using namespace vbs;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RouteSample {
  double seconds = 0.0;
  bool success = false;
  int iterations = 0;
  long long heap_pops = 0;
  long long bbox_retries = 0;
  std::size_t wire_nodes = 0;
  // Parallel-engine counters (0 on serial legs).
  long long spec_commits = 0;
  long long spec_rejected = 0;
  long long spec_wasted_pops = 0;
};

struct McwSample {
  int mcw = -1;
  int trials = 0;
  long long heap_pops = 0;
  double seconds = 0.0;
};

struct RunRecord {
  std::string circuit;
  int grid = 0;
  std::uint64_t seed = 0;
  int chan_width = 0;
  double netlist_seconds = 0.0;
  int blocks = 0, nets = 0;
  double pack_seconds = 0.0;
  int luts = 0, ios = 0;
  double place_seconds = 0.0;
  PlaceStats place;
  double moves_per_sec = 0.0;
  // Parallel-placer leg: the same pack placed again at --threads workers.
  double place_par_seconds = 0.0;
  PlaceStats place_par;
  bool place_identical = false;  ///< parallel placement+stats == serial
  RouteSample bounded;
  RouteSample parallel;
  bool parallel_identical = false;  ///< parallel trees == serial trees
  RouteSample unbounded;
  McwSample mcw_warm;
  McwSample mcw_cold;
};

RouteSample route_once(const Fabric& fabric, const RouteRequest& req,
                       const RouterOptions& ropts, RoutingResult* out = nullptr) {
  RouteSample s;
  const auto t0 = Clock::now();
  PathfinderRouter router(fabric, req);
  RoutingResult rr = router.route(ropts);
  s.seconds = seconds_since(t0);
  s.success = rr.success;
  s.iterations = rr.iterations;
  s.heap_pops = rr.heap_pops;
  s.bbox_retries = rr.bbox_retries;
  s.wire_nodes = rr.total_wire_nodes;
  s.spec_commits = rr.spec_commits;
  s.spec_rejected = rr.spec_rejected;
  s.spec_wasted_pops = rr.spec_wasted_pops;
  if (out != nullptr) *out = std::move(rr);
  return s;
}

bool identical_routes(const RoutingResult& a, const RoutingResult& b) {
  if (a.routes.size() != b.routes.size()) return false;
  for (std::size_t n = 0; n < a.routes.size(); ++n) {
    const auto& ra = a.routes[n].nodes;
    const auto& rb = b.routes[n].nodes;
    if (ra.size() != rb.size()) return false;
    for (std::size_t k = 0; k < ra.size(); ++k) {
      if (ra[k].rr != rb[k].rr || ra[k].parent != rb[k].parent ||
          ra[k].fabric_edge != rb[k].fabric_edge) {
        return false;
      }
    }
  }
  return true;
}

McwSample mcw_once(const ArchSpec& arch, const Netlist& nl,
                   const PackedDesign& pd, const Placement& pl, bool warm) {
  McwOptions mo;
  mo.warm_start = warm;
  const McwResult r = find_min_channel_width(arch, nl, pd, pl, mo);
  McwSample s;
  s.mcw = r.mcw;
  s.trials = r.trials;
  s.heap_pops = r.heap_pops;
  s.seconds = r.seconds;
  return s;
}

RunRecord run_one(const std::string& name, Netlist nl, int grid,
                  std::uint64_t seed, int width, double netlist_seconds,
                  double effort, int margin, int threads, bool with_mcw) {
  RunRecord rec;
  rec.circuit = name;
  rec.grid = grid;
  rec.seed = seed;
  rec.chan_width = width;
  rec.netlist_seconds = netlist_seconds;
  rec.blocks = nl.num_blocks();
  rec.nets = nl.num_nets();

  ArchSpec arch;
  arch.chan_width = width;

  auto t0 = Clock::now();
  const PackedDesign pd = pack_netlist(nl, arch);
  rec.pack_seconds = seconds_since(t0);
  rec.luts = pd.num_luts();
  rec.ios = pd.num_ios();

  PlaceOptions popts;
  popts.seed = seed;
  popts.effort = effort;
  popts.threads = 1;
  t0 = Clock::now();
  const Placement pl = place_design(nl, pd, arch, grid, grid, popts, &rec.place);
  rec.place_seconds = seconds_since(t0);
  rec.moves_per_sec = rec.place_seconds > 0
                          ? static_cast<double>(rec.place.moves) / rec.place_seconds
                          : 0.0;
  // The batched speculate/validate/commit engine on the same pack: the
  // placement, stats and cost_drift must be byte-identical to the serial
  // leg, only wall time (and the speculation diagnostics) may differ.
  PlaceOptions ppar = popts;
  ppar.threads = threads;
  t0 = Clock::now();
  const Placement pl_par =
      place_design(nl, pd, arch, grid, grid, ppar, &rec.place_par);
  rec.place_par_seconds = seconds_since(t0);
  rec.place_identical =
      pl_par.lut_loc == pl.lut_loc && pl_par.io_loc == pl.io_loc &&
      rec.place_par.moves == rec.place.moves &&
      rec.place_par.accepted == rec.place.accepted &&
      rec.place_par.temperatures == rec.place.temperatures &&
      rec.place_par.initial_cost == rec.place.initial_cost &&
      rec.place_par.final_cost == rec.place.final_cost &&
      rec.place_par.cost_drift == rec.place.cost_drift;

  const Fabric fabric(arch, grid, grid);
  const RouteRequest req = build_route_request(fabric, nl, pd, pl);
  // Default options: bounded-box expansion, incremental reroute, calibrated
  // A* weight — exactly what RouterOptions{} ships.
  RouterOptions ropts;
  if (margin >= 0) ropts.bb_margin = margin;
  RoutingResult serial_routes;
  rec.bounded = route_once(fabric, req, ropts, &serial_routes);
  // The deterministic parallel engine on the same request: trees must be
  // byte-identical to the serial leg, only wall time may differ.
  RouterOptions par = ropts;
  par.threads = threads;
  RoutingResult parallel_routes;
  rec.parallel = route_once(fabric, req, par, &parallel_routes);
  rec.parallel_identical = identical_routes(serial_routes, parallel_routes);
  // The unbounded textbook baseline: whole-fabric expansion, whole-net
  // rip-up, and the pre-calibration heuristic weight — the formulation the
  // seed router shipped (see bench/README.md).
  RouterOptions baseline;
  baseline.bounded_box = false;
  baseline.incremental_reroute = false;
  baseline.astar_fac = 1.15;
  rec.unbounded = route_once(fabric, req, baseline);

  if (with_mcw) {
    rec.mcw_warm = mcw_once(arch, nl, pd, pl, /*warm=*/true);
    rec.mcw_cold = mcw_once(arch, nl, pd, pl, /*warm=*/false);
  }
  return rec;
}

void write_json(const std::string& path, const std::vector<RunRecord>& runs,
                bool smoke, int width, int seeds, int threads, int margin,
                double effort, bool with_mcw) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  long long pops_b = 0, pops_u = 0, mcw_w = 0, mcw_c = 0;
  double secs_b = 0, secs_u = 0, secs_p = 0;
  double psecs = 0, psecs_par = 0;
  long long pspec_c = 0, pspec_r = 0;
  int ok_b = 0, ok_u = 0, identical = 0, place_identical = 0, mcw_match = 0;
  for (const RunRecord& r : runs) {
    pops_b += r.bounded.heap_pops;
    pops_u += r.unbounded.heap_pops;
    secs_b += r.bounded.seconds;
    secs_u += r.unbounded.seconds;
    secs_p += r.parallel.seconds;
    psecs += r.place_seconds;
    psecs_par += r.place_par_seconds;
    pspec_c += r.place_par.spec_commits;
    pspec_r += r.place_par.spec_rejected;
    ok_b += r.bounded.success ? 1 : 0;
    ok_u += r.unbounded.success ? 1 : 0;
    identical += r.parallel_identical ? 1 : 0;
    place_identical += r.place_identical ? 1 : 0;
    mcw_w += r.mcw_warm.heap_pops;
    mcw_c += r.mcw_cold.heap_pops;
    mcw_match += with_mcw && r.mcw_warm.mcw == r.mcw_cold.mcw ? 1 : 0;
  }
  std::fprintf(f, "{\n  \"schema\": \"vbs.flow_bench.v3\",\n");
  std::fprintf(f,
               "  \"options\": {\"smoke\": %s, \"chan_width\": %d, \"seeds\": "
               "%d, \"threads\": %d, \"bb_margin\": %d, \"effort\": %.3f, "
               "\"mcw\": %s},\n",
               smoke ? "true" : "false", width, seeds, threads, margin, effort,
               with_mcw ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  const RouterOptions def;
  std::fprintf(f,
               "  \"router_default\": {\"bounded_box\": %s, "
               "\"incremental_reroute\": %s, \"astar_fac\": %.2f},\n"
               "  \"router_baseline\": {\"bounded_box\": false, "
               "\"incremental_reroute\": false, \"astar_fac\": 1.15},\n",
               def.bounded_box ? "true" : "false",
               def.incremental_reroute ? "true" : "false", def.astar_fac);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::fprintf(f, "    {\"circuit\": \"%s\", \"grid\": %d, \"seed\": %llu, ",
                 r.circuit.c_str(), r.grid,
                 static_cast<unsigned long long>(r.seed));
    std::fprintf(f, "\"chan_width\": %d,\n", r.chan_width);
    std::fprintf(
        f,
        "     \"netlist\": {\"seconds\": %.4f, \"blocks\": %d, \"nets\": %d},\n",
        r.netlist_seconds, r.blocks, r.nets);
    std::fprintf(f,
                 "     \"pack\": {\"seconds\": %.4f, \"luts\": %d, \"ios\": "
                 "%d},\n",
                 r.pack_seconds, r.luts, r.ios);
    std::fprintf(f,
                 "     \"place\": {\"threads\": 1, \"seconds\": %.4f, "
                 "\"moves\": %lld, "
                 "\"accepted\": %lld, \"temperatures\": %d, \"moves_per_sec\": "
                 "%.0f, \"initial_cost\": %.3f, \"final_cost\": %.3f, "
                 "\"cost_drift\": %.3e},\n",
                 r.place_seconds, r.place.moves, r.place.accepted,
                 r.place.temperatures, r.moves_per_sec, r.place.initial_cost,
                 r.place.final_cost, r.place.cost_drift);
    std::fprintf(f,
                 "     \"place_parallel\": {\"threads\": %d, \"seconds\": "
                 "%.4f, \"spec_commits\": %lld, \"spec_rejected\": %lld, "
                 "\"identical_to_serial\": %s},\n",
                 threads, r.place_par_seconds, r.place_par.spec_commits,
                 r.place_par.spec_rejected,
                 r.place_identical ? "true" : "false");
    auto route_json = [&](const char* key, const RouteSample& s,
                          const char* tail) {
      std::fprintf(f,
                   "     \"%s\": {\"seconds\": %.4f, \"success\": %s, "
                   "\"iterations\": %d, \"heap_pops\": %lld, \"bbox_retries\": "
                   "%lld, \"wire_nodes\": %zu}%s\n",
                   key, s.seconds, s.success ? "true" : "false", s.iterations,
                   s.heap_pops, s.bbox_retries, s.wire_nodes, tail);
    };
    route_json("route_bounded", r.bounded, ",");
    std::fprintf(f,
                 "     \"route_parallel\": {\"threads\": %d, \"seconds\": "
                 "%.4f, \"success\": %s, \"heap_pops\": %lld, "
                 "\"spec_commits\": %lld, \"spec_rejected\": %lld, "
                 "\"spec_wasted_pops\": %lld, \"identical_to_serial\": %s},\n",
                 threads, r.parallel.seconds,
                 r.parallel.success ? "true" : "false", r.parallel.heap_pops,
                 r.parallel.spec_commits, r.parallel.spec_rejected,
                 r.parallel.spec_wasted_pops,
                 r.parallel_identical ? "true" : "false");
    route_json("route_unbounded", r.unbounded, with_mcw ? "," : "");
    if (with_mcw) {
      auto mcw_json = [&](const char* key, const McwSample& s,
                          const char* tail) {
        std::fprintf(f,
                     "     \"%s\": {\"mcw\": %d, \"trials\": %d, "
                     "\"heap_pops\": %lld, \"seconds\": %.4f}%s\n",
                     key, s.mcw, s.trials, s.heap_pops, s.seconds, tail);
      };
      mcw_json("mcw_warm", r.mcw_warm, ",");
      mcw_json("mcw_cold", r.mcw_cold, "");
    }
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"summary\": {\"runs\": %zu, \"routed_bounded\": %d, "
      "\"routed_unbounded\": %d, \"heap_pops_bounded\": %lld, "
      "\"heap_pops_unbounded\": %lld, \"heap_pop_ratio\": %.3f, "
      "\"route_seconds_bounded\": %.4f, \"route_seconds_unbounded\": %.4f, "
      "\"route_seconds_parallel\": %.4f, \"parallel_speedup\": %.3f, "
      "\"parallel_identical\": %d, \"place_seconds_serial\": %.4f, "
      "\"place_seconds_parallel\": %.4f, \"place_speedup\": %.3f, "
      "\"place_spec_commit_rate\": %.3f, \"place_identical\": %d, "
      "\"mcw_heap_pops_warm\": %lld, "
      "\"mcw_heap_pops_cold\": %lld, \"mcw_pop_ratio\": %.3f, "
      "\"mcw_width_matches\": %d}\n",
      runs.size(), ok_b, ok_u, pops_b, pops_u,
      pops_b > 0 ? static_cast<double>(pops_u) / static_cast<double>(pops_b)
                 : 0.0,
      secs_b, secs_u, secs_p,
      secs_p > 0 ? secs_b / secs_p : 0.0, identical, psecs, psecs_par,
      psecs_par > 0 ? psecs / psecs_par : 0.0,
      pspec_c + pspec_r > 0
          ? static_cast<double>(pspec_c) /
                static_cast<double>(pspec_c + pspec_r)
          : 0.0,
      place_identical, mcw_w, mcw_c,
      mcw_w > 0 ? static_cast<double>(mcw_c) / static_cast<double>(mcw_w)
                : 0.0,
      mcw_match);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv,
               {"--circuits", "--seeds", "--width", "--threads", "--margin",
                "--effort", "--out"},
               {"--smoke", "--no-mcw"});
  const bool smoke = args.has_flag("--smoke");
  const bool with_mcw = !args.has_flag("--no-mcw");
  const int seeds = static_cast<int>(args.int_or("--seeds", 1));
  const int width = static_cast<int>(args.int_or("--width", smoke ? 10 : 20));
  const int threads = static_cast<int>(args.int_or("--threads", 8));
  const int margin = static_cast<int>(args.int_or("--margin", -1));
  const double effort = std::stod(args.value_or("--effort", "1.0"));
  const std::string out = args.value_or("--out", "BENCH_flow.json");

  std::vector<RunRecord> runs;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    if (smoke) {
      // Tiny synthetic circuits: exercises every stage, all three router
      // legs and both MCW modes in seconds, for CI.
      for (const int n_lut : {60, 120}) {
        GenParams p;
        p.n_lut = n_lut;
        p.n_pi = 8;
        p.n_po = 8;
        p.seed = seed;
        const auto t0 = Clock::now();
        Netlist nl = generate_netlist(p);
        const double gen_s = seconds_since(t0);
        const int grid =
            static_cast<int>(std::ceil(std::sqrt(n_lut * 1.25)));
        runs.push_back(run_one("smoke" + std::to_string(n_lut), std::move(nl),
                               grid, seed, width, gen_s, effort, margin,
                               threads, with_mcw));
      }
    } else {
      std::vector<McncCircuit> circuits;
      if (const auto list = args.value("--circuits")) {
        std::string names = *list;
        std::size_t pos = 0;
        while (pos <= names.size()) {
          const std::size_t comma = names.find(',', pos);
          const std::string name = names.substr(
              pos, comma == std::string::npos ? comma : comma - pos);
          if (!name.empty()) circuits.push_back(mcnc_by_name(name));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else {
        // Default suite: the 5 smallest Table II circuits — spans the
        // des/dsip/bigkey/ex5p/tseng mix of I/O-bound and logic-bound
        // designs while staying minutes, not hours, on one core.
        circuits = mcnc20();
        std::sort(circuits.begin(), circuits.end(),
                  [](const McncCircuit& a, const McncCircuit& b) {
                    return a.lbs < b.lbs;
                  });
        circuits.resize(5);
      }
      for (const McncCircuit& c : circuits) {
        const auto t0 = Clock::now();
        Netlist nl = make_mcnc_like(c, seed);
        const double gen_s = seconds_since(t0);
        runs.push_back(run_one(c.name, std::move(nl), c.size, seed, width,
                               gen_s, effort, margin, threads, with_mcw));
      }
    }
  }

  TablePrinter t({"circuit", "seed", "plc s/par", "route s", "pops", "par s",
                  "full s", "pop ratio", "mcw", "mcw pops w/c"});
  for (const RunRecord& r : runs) {
    const double ratio =
        r.bounded.heap_pops > 0
            ? static_cast<double>(r.unbounded.heap_pops) /
                  static_cast<double>(r.bounded.heap_pops)
            : 0.0;
    t.add_row({r.circuit, std::to_string(r.seed),
               TablePrinter::fmt(r.place_seconds, 2) + "/" +
                   TablePrinter::fmt(r.place_par_seconds, 2),
               TablePrinter::fmt(r.bounded.seconds, 2),
               TablePrinter::fmt_int(r.bounded.heap_pops),
               TablePrinter::fmt(r.parallel.seconds, 2),
               TablePrinter::fmt(r.unbounded.seconds, 2),
               TablePrinter::fmt(ratio, 2),
               std::to_string(r.mcw_warm.mcw),
               TablePrinter::fmt_int(r.mcw_warm.heap_pops) + "/" +
                   TablePrinter::fmt_int(r.mcw_cold.heap_pops)});
  }
  t.print();

  write_json(out, runs, smoke, width, seeds, threads, margin, effort,
             with_mcw);
  std::printf("\nwrote %s\n", out.c_str());

  // Fail loudly if any leg regressed: an unroutable run or a parallel tree
  // that diverged from the serial one would make the numbers meaningless.
  for (const RunRecord& r : runs) {
    if (!r.bounded.success || !r.unbounded.success || !r.parallel.success) {
      std::fprintf(stderr, "FAIL: %s seed %llu did not route\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (!r.parallel_identical) {
      std::fprintf(stderr,
                   "FAIL: %s seed %llu parallel routing diverged from serial\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (!r.place_identical) {
      std::fprintf(
          stderr,
          "FAIL: %s seed %llu parallel placement diverged from serial\n",
          r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
    if (with_mcw && r.mcw_warm.mcw != r.mcw_cold.mcw) {
      std::fprintf(stderr,
                   "NOTE: %s seed %llu warm mcw %d != cold mcw %d (warm found "
                   "a different minimum; not a failure)\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed),
                   r.mcw_warm.mcw, r.mcw_cold.mcw);
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr,
               "flow_bench: %s\n"
               "usage: flow_bench [--smoke] [--circuits a,b] [--seeds N] "
               "[--width W] [--threads T] [--margin M] [--effort E] "
               "[--no-mcw] [--out PATH]\n",
               e.what());
  return 1;
}
