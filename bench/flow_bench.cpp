// Reproducible perf harness for the pack -> place -> route flow: the
// trajectory every perf PR measures itself against.
//
// For each circuit x seed x channel width the harness times netlist
// generation, packing and placement, then routes the SAME placement twice —
// once with the default bounded-box expansion and once with the unbounded
// textbook baseline — so the heap-pop and wall-time reduction of the
// bounded-box router is measured apples-to-apples in a single run. Results
// go to stdout as a table and to a machine-readable JSON file (see
// bench/README.md for the schema).
//
// Usage:
//   flow_bench [--smoke] [--circuits a,b] [--seeds N] [--width W]
//              [--margin M] [--effort E] [--out PATH]
//
//   --smoke      tiny synthetic circuits (seconds; used by CI to catch
//                harness bitrot)
//   --circuits   comma-separated Table II names (default: the 5 smallest)
//   --seeds      number of seeds per circuit, 1..N (default 1)
//   --width      routed channel width (default 20, the paper's norm)
//   --margin     bounded-box margin in tiles (default RouterOptions)
//   --effort     placer effort scale (default 1.0)
//   --out        JSON output path (default BENCH_flow.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/route_request.h"
#include "route/router.h"
#include "util/cli.h"
#include "util/table.h"

using namespace vbs;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RouteSample {
  double seconds = 0.0;
  bool success = false;
  int iterations = 0;
  long long heap_pops = 0;
  long long bbox_retries = 0;
  std::size_t wire_nodes = 0;
};

struct RunRecord {
  std::string circuit;
  int grid = 0;
  std::uint64_t seed = 0;
  int chan_width = 0;
  double netlist_seconds = 0.0;
  int blocks = 0, nets = 0;
  double pack_seconds = 0.0;
  int luts = 0, ios = 0;
  double place_seconds = 0.0;
  PlaceStats place;
  double moves_per_sec = 0.0;
  RouteSample bounded;
  RouteSample unbounded;
};

RouteSample route_once(const Fabric& fabric, const Netlist& nl,
                       const PackedDesign& pd, const Placement& pl,
                       const RouterOptions& ropts) {
  RouteSample s;
  const auto t0 = Clock::now();
  PathfinderRouter router(fabric, build_route_request(fabric, nl, pd, pl));
  const RoutingResult rr = router.route(ropts);
  s.seconds = seconds_since(t0);
  s.success = rr.success;
  s.iterations = rr.iterations;
  s.heap_pops = rr.heap_pops;
  s.bbox_retries = rr.bbox_retries;
  s.wire_nodes = rr.total_wire_nodes;
  return s;
}

RunRecord run_one(const std::string& name, Netlist nl, int grid,
                  std::uint64_t seed, int width, double netlist_seconds,
                  double effort, int margin) {
  RunRecord rec;
  rec.circuit = name;
  rec.grid = grid;
  rec.seed = seed;
  rec.chan_width = width;
  rec.netlist_seconds = netlist_seconds;
  rec.blocks = nl.num_blocks();
  rec.nets = nl.num_nets();

  ArchSpec arch;
  arch.chan_width = width;

  auto t0 = Clock::now();
  const PackedDesign pd = pack_netlist(nl, arch);
  rec.pack_seconds = seconds_since(t0);
  rec.luts = pd.num_luts();
  rec.ios = pd.num_ios();

  PlaceOptions popts;
  popts.seed = seed;
  popts.effort = effort;
  t0 = Clock::now();
  const Placement pl = place_design(nl, pd, arch, grid, grid, popts, &rec.place);
  rec.place_seconds = seconds_since(t0);
  rec.moves_per_sec = rec.place_seconds > 0
                          ? static_cast<double>(rec.place.moves) / rec.place_seconds
                          : 0.0;

  const Fabric fabric(arch, grid, grid);
  // Default options: bounded-box expansion, incremental reroute, calibrated
  // A* weight — exactly what RouterOptions{} ships.
  RouterOptions ropts;
  if (margin >= 0) ropts.bb_margin = margin;
  rec.bounded = route_once(fabric, nl, pd, pl, ropts);
  // The unbounded textbook baseline: whole-fabric expansion, whole-net
  // rip-up, and the pre-calibration heuristic weight — the formulation the
  // seed router shipped (see bench/README.md).
  RouterOptions baseline;
  baseline.bounded_box = false;
  baseline.incremental_reroute = false;
  baseline.astar_fac = 1.15;
  rec.unbounded = route_once(fabric, nl, pd, pl, baseline);
  return rec;
}

void write_json(const std::string& path, const std::vector<RunRecord>& runs,
                bool smoke, int width, int seeds, int margin, double effort) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  long long pops_b = 0, pops_u = 0;
  double secs_b = 0, secs_u = 0;
  int ok_b = 0, ok_u = 0;
  for (const RunRecord& r : runs) {
    pops_b += r.bounded.heap_pops;
    pops_u += r.unbounded.heap_pops;
    secs_b += r.bounded.seconds;
    secs_u += r.unbounded.seconds;
    ok_b += r.bounded.success ? 1 : 0;
    ok_u += r.unbounded.success ? 1 : 0;
  }
  std::fprintf(f, "{\n  \"schema\": \"vbs.flow_bench.v1\",\n");
  std::fprintf(f,
               "  \"options\": {\"smoke\": %s, \"chan_width\": %d, \"seeds\": "
               "%d, \"bb_margin\": %d, \"effort\": %.3f},\n",
               smoke ? "true" : "false", width, seeds, margin, effort);
  const RouterOptions def;
  std::fprintf(f,
               "  \"router_default\": {\"bounded_box\": %s, "
               "\"incremental_reroute\": %s, \"astar_fac\": %.2f},\n"
               "  \"router_baseline\": {\"bounded_box\": false, "
               "\"incremental_reroute\": false, \"astar_fac\": 1.15},\n",
               def.bounded_box ? "true" : "false",
               def.incremental_reroute ? "true" : "false", def.astar_fac);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    std::fprintf(f, "    {\"circuit\": \"%s\", \"grid\": %d, \"seed\": %llu, ",
                 r.circuit.c_str(), r.grid,
                 static_cast<unsigned long long>(r.seed));
    std::fprintf(f, "\"chan_width\": %d,\n", r.chan_width);
    std::fprintf(
        f,
        "     \"netlist\": {\"seconds\": %.4f, \"blocks\": %d, \"nets\": %d},\n",
        r.netlist_seconds, r.blocks, r.nets);
    std::fprintf(f,
                 "     \"pack\": {\"seconds\": %.4f, \"luts\": %d, \"ios\": "
                 "%d},\n",
                 r.pack_seconds, r.luts, r.ios);
    std::fprintf(f,
                 "     \"place\": {\"seconds\": %.4f, \"moves\": %lld, "
                 "\"accepted\": %lld, \"temperatures\": %d, \"moves_per_sec\": "
                 "%.0f, \"initial_cost\": %.3f, \"final_cost\": %.3f, "
                 "\"cost_drift\": %.3e},\n",
                 r.place_seconds, r.place.moves, r.place.accepted,
                 r.place.temperatures, r.moves_per_sec, r.place.initial_cost,
                 r.place.final_cost, r.place.cost_drift);
    auto route_json = [&](const char* key, const RouteSample& s,
                          const char* tail) {
      std::fprintf(f,
                   "     \"%s\": {\"seconds\": %.4f, \"success\": %s, "
                   "\"iterations\": %d, \"heap_pops\": %lld, \"bbox_retries\": "
                   "%lld, \"wire_nodes\": %zu}%s\n",
                   key, s.seconds, s.success ? "true" : "false", s.iterations,
                   s.heap_pops, s.bbox_retries, s.wire_nodes, tail);
    };
    route_json("route_bounded", r.bounded, ",");
    route_json("route_unbounded", r.unbounded, "");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"summary\": {\"runs\": %zu, \"routed_bounded\": %d, "
      "\"routed_unbounded\": %d, \"heap_pops_bounded\": %lld, "
      "\"heap_pops_unbounded\": %lld, \"heap_pop_ratio\": %.3f, "
      "\"route_seconds_bounded\": %.4f, \"route_seconds_unbounded\": %.4f}\n",
      runs.size(), ok_b, ok_u, pops_b, pops_u,
      pops_b > 0 ? static_cast<double>(pops_u) / static_cast<double>(pops_b)
                 : 0.0,
      secs_b, secs_u);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv,
               {"--circuits", "--seeds", "--width", "--margin", "--effort",
                "--out"},
               {"--smoke"});
  const bool smoke = args.has_flag("--smoke");
  const int seeds = static_cast<int>(args.int_or("--seeds", 1));
  const int width = static_cast<int>(args.int_or("--width", smoke ? 10 : 20));
  const int margin = static_cast<int>(args.int_or("--margin", -1));
  const double effort = std::stod(args.value_or("--effort", "1.0"));
  const std::string out = args.value_or("--out", "BENCH_flow.json");

  std::vector<RunRecord> runs;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    if (smoke) {
      // Tiny synthetic circuits: exercises every stage and both router
      // modes in seconds, for CI.
      for (const int n_lut : {60, 120}) {
        GenParams p;
        p.n_lut = n_lut;
        p.n_pi = 8;
        p.n_po = 8;
        p.seed = seed;
        const auto t0 = Clock::now();
        Netlist nl = generate_netlist(p);
        const double gen_s = seconds_since(t0);
        const int grid =
            static_cast<int>(std::ceil(std::sqrt(n_lut * 1.25)));
        runs.push_back(run_one("smoke" + std::to_string(n_lut), std::move(nl),
                               grid, seed, width, gen_s, effort, margin));
      }
    } else {
      std::vector<McncCircuit> circuits;
      if (const auto list = args.value("--circuits")) {
        std::string names = *list;
        std::size_t pos = 0;
        while (pos <= names.size()) {
          const std::size_t comma = names.find(',', pos);
          const std::string name = names.substr(
              pos, comma == std::string::npos ? comma : comma - pos);
          if (!name.empty()) circuits.push_back(mcnc_by_name(name));
          if (comma == std::string::npos) break;
          pos = comma + 1;
        }
      } else {
        // Default suite: the 5 smallest Table II circuits — spans the
        // des/dsip/bigkey/ex5p/tseng mix of I/O-bound and logic-bound
        // designs while staying minutes, not hours, on one core.
        circuits = mcnc20();
        std::sort(circuits.begin(), circuits.end(),
                  [](const McncCircuit& a, const McncCircuit& b) {
                    return a.lbs < b.lbs;
                  });
        circuits.resize(5);
      }
      for (const McncCircuit& c : circuits) {
        const auto t0 = Clock::now();
        Netlist nl = make_mcnc_like(c, seed);
        const double gen_s = seconds_since(t0);
        runs.push_back(run_one(c.name, std::move(nl), c.size, seed, width,
                               gen_s, effort, margin));
      }
    }
  }

  TablePrinter t({"circuit", "seed", "place s", "moves/s", "route s (bb)",
                  "pops (bb)", "route s (full)", "pops (full)", "pop ratio"});
  for (const RunRecord& r : runs) {
    const double ratio =
        r.bounded.heap_pops > 0
            ? static_cast<double>(r.unbounded.heap_pops) /
                  static_cast<double>(r.bounded.heap_pops)
            : 0.0;
    t.add_row({r.circuit, std::to_string(r.seed),
               TablePrinter::fmt(r.place_seconds, 2),
               TablePrinter::fmt(r.moves_per_sec, 0),
               TablePrinter::fmt(r.bounded.seconds, 2),
               TablePrinter::fmt_int(r.bounded.heap_pops),
               TablePrinter::fmt(r.unbounded.seconds, 2),
               TablePrinter::fmt_int(r.unbounded.heap_pops),
               TablePrinter::fmt(ratio, 2)});
  }
  t.print();

  write_json(out, runs, smoke, width, seeds, margin, effort);
  std::printf("\nwrote %s\n", out.c_str());

  // Fail loudly if any stage regressed to unroutable — a perf number for a
  // run that did not complete would be meaningless.
  for (const RunRecord& r : runs) {
    if (!r.bounded.success || !r.unbounded.success) {
      std::fprintf(stderr, "FAIL: %s seed %llu did not route\n",
                   r.circuit.c_str(), static_cast<unsigned long long>(r.seed));
      return 1;
    }
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr,
               "flow_bench: %s\n"
               "usage: flow_bench [--smoke] [--circuits a,b] [--seeds N] "
               "[--width W] [--margin M] [--effort E] [--out PATH]\n",
               e.what());
  return 1;
}
