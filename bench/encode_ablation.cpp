// Ablation of the vbsgen feedback loop (paper Section III-B): how much do
// connection re-ordering, decode-side congestion negotiation and the raw
// fallback each contribute?
//
// Modes:
//   full        negotiation + re-ordering + raw fallback (the shipped flow)
//   greedy      pure greedy decoder (1 negotiation iteration) + re-ordering
//   no-reorder  negotiation, but first-order-only feedback
//   greedy-only pure greedy decoder, first order only (the naive baseline)
//   force-raw   no virtualization at all (raw coding per region)
//
// Default circuit subset keeps the run short; set REPRO_CIRCUITS/REPRO_FULL
// to change it.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/table.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

struct Mode {
  const char* name;
  EncodeOptions opts;
};

std::vector<Mode> modes(int cluster) {
  EncodeOptions base;
  base.cluster = cluster;
  Mode full{"full", base};
  Mode greedy{"greedy", base};
  greedy.opts.decode_iterations = 1;
  Mode no_reorder{"no-reorder", base};
  no_reorder.opts.no_reorder = true;
  Mode greedy_only{"greedy-only", base};
  greedy_only.opts.decode_iterations = 1;
  greedy_only.opts.no_reorder = true;
  Mode force_raw{"force-raw", base};
  force_raw.opts.force_raw = true;
  return {full, greedy, no_reorder, greedy_only, force_raw};
}

}  // namespace

int main() {
  std::vector<McncCircuit> circuits;
  if (std::getenv("REPRO_CIRCUITS") || std::getenv("REPRO_FULL")) {
    circuits = bench::selected_circuits();
    bench::print_subset_note();
  } else {
    for (const char* n : {"tseng", "ex5p", "alu4", "seq"}) {
      circuits.push_back(mcnc_by_name(n));
    }
  }
  const FlowOptions opts = bench::paper_flow_options();

  std::printf("Feedback-loop ablation (W = 20). Sizes as %% of raw BS.\n\n");
  std::vector<TablePrinter> tables;
  tables.emplace_back(std::vector<std::string>{
      "circuit", "mode", "VBS/BS", "raw-coded regions", "reordered",
      "connections"});
  tables.emplace_back(std::vector<std::string>{
      "circuit", "mode", "VBS/BS", "raw-coded regions", "reordered",
      "connections"});
  const int clusters[] = {1, 2};

  for (const McncCircuit& c : circuits) {
    FlowResult r = run_mcnc_flow(c, opts);
    if (!r.routed()) continue;
    for (std::size_t ci = 0; ci < 2; ++ci) {
      for (const Mode& m : modes(clusters[ci])) {
        EncodeStats stats;
        encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                   r.routing.routes, m.opts, &stats);
        tables[ci].add_row(
            {c.name, m.name,
             TablePrinter::fmt(100.0 * stats.compression_ratio(), 1) + "%",
             TablePrinter::fmt_int(stats.raw_entries) + "/" +
                 TablePrinter::fmt_int(stats.entries),
             TablePrinter::fmt_int(stats.reordered_entries),
             TablePrinter::fmt_int(stats.connections)});
      }
    }
    std::fflush(stdout);
  }
  for (std::size_t ci = 0; ci < 2; ++ci) {
    std::printf("cluster size %d:\n", clusters[ci]);
    tables[ci].print();
    std::printf("\n");
  }
  return 0;
}
