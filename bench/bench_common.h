// Shared plumbing for the experiment harnesses that regenerate the paper's
// tables and figures.
//
// Environment knobs (all optional):
//   REPRO_CIRCUITS="alu4,seq"  restrict to a comma-separated circuit list
//   REPRO_FULL=1               all 20 Table II circuits (hours on one core)
//   REPRO_SEED=<n>             synthetic-netlist / flow seed (default 1)
//
// The default set is the 10 smallest circuits (it still spans 554..1301
// logic blocks and the full MCW range); place & route of the largest
// circuits costs tens of minutes each on a single-core host, so the full
// 20-circuit sweep is opt-in.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "netlist/mcnc.h"

namespace vbs::bench {

inline std::uint64_t env_seed() {
  const char* s = std::getenv("REPRO_SEED");
  return s ? std::strtoull(s, nullptr, 10) : 1;
}

/// Table II circuits selected by the environment, in paper order.
inline std::vector<McncCircuit> selected_circuits() {
  const auto& all = mcnc20();
  if (const char* list = std::getenv("REPRO_CIRCUITS")) {
    std::vector<McncCircuit> out;
    std::string names(list);
    std::size_t pos = 0;
    while (pos < names.size()) {
      const std::size_t comma = names.find(',', pos);
      const std::string name =
          names.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!name.empty()) out.push_back(mcnc_by_name(name));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    return out;
  }
  if (const char* full = std::getenv("REPRO_FULL"); full && full[0] == '1') {
    return all;
  }
  std::vector<McncCircuit> out(all);
  std::sort(out.begin(), out.end(),
            [](const McncCircuit& a, const McncCircuit& b) {
              return a.lbs < b.lbs;
            });
  out.resize(10);
  // Restore paper order.
  std::sort(out.begin(), out.end(),
            [&](const McncCircuit& a, const McncCircuit& b) {
              auto idx = [&](const std::string& n) {
                for (std::size_t i = 0; i < all.size(); ++i) {
                  if (all[i].name == n) return i;
                }
                return all.size();
              };
              return idx(a.name) < idx(b.name);
            });
  return out;
}

/// One-line provenance note each harness prints first.
inline void print_subset_note() {
  const bool full = std::getenv("REPRO_FULL") != nullptr;
  const bool custom = std::getenv("REPRO_CIRCUITS") != nullptr;
  std::printf(
      "circuit set: %s (REPRO_FULL=1 for all 20 Table II circuits; "
      "REPRO_CIRCUITS=a,b to select)\n\n",
      custom ? "custom" : full ? "all 20" : "10 smallest of Table II");
}

/// The paper's evaluation setup: channel width normalized to 20 tracks.
inline FlowOptions paper_flow_options() {
  FlowOptions o;
  o.arch.chan_width = 20;
  o.seed = env_seed();
  return o;
}

}  // namespace vbs::bench
