// Trace-driven benchmark of the multi-tenant reconfiguration service: the
// online-workload counterpart of flow_bench.
//
// For each trace (the bundled steady/bursty/diurnal/churn suite, or a
// vbs.rtc_trace.v1 file via --trace) the harness builds the trace's task
// library through the offline flow once, then replays the event sequence
// against a ReconfigService tick by tick and records throughput, load
// latency percentiles, cache effectiveness, fragmentation and evictions.
//
// After the classic suite, two adversarial overload legs (flash_crowd,
// unique_flood) replay with a bounded admission queue, per-request
// deadlines, tenant priorities (tenant 0 = high-priority background,
// tenant 1 = the flood) and a deterministic fault plan; the harness
// reports per-tenant latency percentiles in modeled ticks plus
// shed/retry/deadline counters, and FAILS unless the high-priority
// tenant is never shed and its p99 stays at or below the flood's.
//
// Each classic trace is replayed four times:
//   warm @ --threads  the headline run (decoded-stream cache enabled);
//   cold @ --threads  cache capacity 0 — loads and relocations re-pay
//                     devirtualization (batch-level dedup of identical
//                     streams stays active, so the cold/warm ratio is a
//                     conservative cache headline), and the final
//                     configuration memory must be byte-identical to the
//                     warm run (cached payloads are real decodes);
//   warm @ 1, warm @ 2  determinism legs: final config_memory and the
//                     eviction log must be byte-identical to the headline
//                     run at any thread count.
//
// After the overload legs, a recovery leg replays each overload trace
// once more with a write-ahead journal attached (src/rtc/service/journal),
// then rebuilds a service from the journal directory alone and compares
// state fingerprints: journaling must be transparent (the journaled run
// fingerprints identically to an unjournaled one) and recovery must be
// byte-identical to the run it replaces. The leg reports journal size,
// WAL record counts, journaling overhead and the cold-recovery replay
// rate in records per second.
//
// After the recovery legs, a latency-decomposition leg (new in v4)
// replays each overload trace once more with the trace-event buffer
// sliced around the replay: every RequestResult must satisfy the tick
// identity latency == queue_wait + backoff + spike + exec, and the
// modeled-tick request/phase spans in the sliced trace must sum, per
// tenant, to exactly the breakdown TenantStats reports — so a Chrome
// trace written with --trace-out is a faithful rendering of the numbers
// in the JSON.
//
// After the breakdown legs, the networked legs (new in v5) move the same
// workloads onto the wire: an in-process RpcServer (src/rtc/server) fronts
// the service on a loopback socket and the closed-loop load generator
// drives hundreds of concurrent connections through the vbs.rpc.v1
// protocol. For steady, bursty and flash_crowd arrivals the leg reports
// wall-clock p50/p99 request latency, throughput and shed rates at
// --connections concurrent sessions (256 full, 32 smoke); a final
// server-replay leg replays a trace through a *journaled* server via one
// admin session (DRAIN barrier per tick group) and FAILS unless the
// server's state fingerprint is identical to the offline replay of the
// same trace — and still identical after a cold recovery from the
// server's journal.
//
// Results go to stdout as a table and to a JSON file (vbs.rtc_bench.v5,
// documented in bench/README.md). BENCH_rtc.json at the repo root is the
// committed trajectory. The telemetry registry is always on in this
// harness (the JSON embeds its counters); every determinism and
// fingerprint check holds with telemetry on or off.
//
// Standalone network modes (all errors exit typed — exit_code_for(code),
// --json prints {"error": {"code", "errc", "message"}} on stdout):
//   rtc_bench --serve [--port N] [--port-file F] [--auth-seed S]
//       front a fresh service on a loopback socket until a remote
//       SHUTDOWN frame (admin session) stops it;
//   rtc_bench --connect --port N [--shutdown] [--auth-seed S] [--json]
//       admin-connect to a running server: ping + stat (or a graceful
//       remote shutdown with --shutdown);
//   rtc_bench --server-smoke [--connections N]
//       the CI loopback gate: in-process server + N-connection closed
//       loop + remote shutdown, exit 0 only on a clean end-to-end pass.
//
// Usage:
//   rtc_bench [--smoke] [--trace FILE] [--policy P] [--threads T]
//             [--cache-bits N] [--events N] [--ticks K] [--seed S]
//             [--queue-limit N] [--deadline T] [--faults SPEC]
//             [--connections N] [--trace-out trace.json] [--metrics]
//             [--out PATH] [--json]
//             [--serve | --connect | --server-smoke] [--port N]
//             [--port-file F] [--auth-seed S] [--shutdown]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/server/client.h"
#include "rtc/server/server.h"
#include "rtc/service/service.h"
#include "rtc/service/trace.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/table.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

/// Offline flow per distinct task recipe, shared across traces.
class StreamLibrary {
 public:
  explicit StreamLibrary(const ArchSpec& arch) : arch_(arch) {}

  const BitVector& stream_for(const TraceTaskKind& kind) {
    const auto key = std::make_tuple(kind.n_lut, kind.grid, kind.seed,
                                     kind.cluster);
    const auto it = streams_.find(key);
    if (it != streams_.end()) return it->second;
    GenParams gp;
    gp.n_lut = kind.n_lut;
    gp.n_pi = 3;
    gp.n_po = 3;
    gp.seed = kind.seed;
    FlowOptions opts;
    opts.arch = arch_;
    opts.seed = kind.seed;
    FlowResult flow =
        run_flow(generate_netlist(gp), kind.grid, kind.grid, opts);
    if (!flow.routed()) {
      throw std::runtime_error("library task unroutable: " + kind.name);
    }
    EncodeOptions eo;
    eo.cluster = kind.cluster;
    BitVector stream =
        serialize_vbs(encode_vbs(*flow.fabric, flow.netlist, flow.packed,
                                 flow.placement, flow.routing.routes, eo));
    return streams_.emplace(key, std::move(stream)).first->second;
  }

 private:
  ArchSpec arch_;
  std::map<std::tuple<int, int, std::uint64_t, int>, BitVector> streams_;
};

struct Replay {
  ServiceStats stats;
  BitVector config;
  std::vector<EvictionEvent> evictions;
  std::vector<double> load_latencies;  ///< seconds, committed loads only
  long long done = 0, rejected = 0, failed = 0;
  long long shed = 0, deadline_misses = 0;
  double drain_seconds = 0.0;
  double frag_sum = 0.0;
  int frag_samples = 0;
  double frag_final = 0.0;
  double occupancy_final = 0.0;
  long long cache_hits = 0, cache_misses = 0;
  long long cache_insertions = 0, cache_evictions = 0;
  std::size_t cache_size_bits = 0;
  /// Per-request outcome stream (admission order per drain), for replay
  /// equality across thread counts: status and modeled latency of every
  /// request.
  std::vector<int> statuses;
  std::vector<long long> latency_ticks;
  /// Modeled-tick latencies of committed loads, by tenant.
  std::map<int, std::vector<double>> tenant_done_ticks;
  std::map<int, TenantStats> tenants;
  /// Every result satisfied latency == queue_wait + backoff + spike + exec.
  bool tick_identity_ok = true;
};

Replay replay_trace(const Trace& trace, StreamLibrary& lib,
                    const ArchSpec& arch, const ServiceOptions& opts,
                    const std::map<int, int>& priorities = {},
                    const std::string& journal_dir = {},
                    std::uint64_t* fingerprint_out = nullptr) {
  ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
  // The journal must attach before any journaled mutation — priority
  // assignments included — so recovery replays the whole run.
  if (!journal_dir.empty()) svc.open_journal(journal_dir);
  for (const auto& [tenant, prio] : priorities) {
    svc.set_tenant_priority(tenant, prio);
  }
  Replay out;
  std::vector<RequestId> request_of_event(trace.events.size(), kNoRequest);

  std::size_t next = 0;
  while (next < trace.events.size()) {
    const int tick = trace.events[next].tick;
    // Admit everything that arrives this tick, then let the service drain
    // the queue — the batching the bursty pattern exists to exercise.
    while (next < trace.events.size() && trace.events[next].tick == tick) {
      const TraceEvent& e = trace.events[next];
      switch (e.kind) {
        case TraceEvent::Kind::kLoad:
          request_of_event[next] = svc.submit_load(
              lib.stream_for(
                  trace.kinds[static_cast<std::size_t>(e.task_kind)]),
              e.tenant);
          break;
        case TraceEvent::Kind::kUnload:
          request_of_event[next] = svc.submit_unload(
              request_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
          break;
        case TraceEvent::Kind::kRelocate:
          request_of_event[next] = svc.submit_relocate(
              request_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
          break;
      }
      ++next;
    }
    const std::uint64_t t0 = telem::now_ns();
    const std::vector<RequestResult> results = svc.drain();
    out.drain_seconds += telem::seconds_since(t0);
    for (const RequestResult& r : results) {
      switch (r.status) {
        case RequestStatus::kDone: ++out.done; break;
        case RequestStatus::kRejected: ++out.rejected; break;
        case RequestStatus::kFailed: ++out.failed; break;
        case RequestStatus::kShed: ++out.shed; break;
        case RequestStatus::kDeadline: ++out.deadline_misses; break;
        case RequestStatus::kQueued: break;
      }
      if (r.kind == RequestKind::kLoad && r.status == RequestStatus::kDone) {
        out.load_latencies.push_back(r.latency_seconds);
        out.tenant_done_ticks[r.tenant].push_back(
            static_cast<double>(r.latency_ticks));
      }
      out.statuses.push_back(static_cast<int>(r.status));
      out.latency_ticks.push_back(r.latency_ticks);
      out.tick_identity_ok &=
          r.latency_ticks == r.queue_wait_ticks + r.backoff_ticks +
                                 r.spike_ticks + r.exec_ticks;
    }
    out.frag_sum += svc.fragmentation();
    ++out.frag_samples;
  }

  out.stats = svc.stats();
  out.config = svc.controller().config_memory();
  out.evictions = svc.eviction_log();
  out.frag_final = svc.fragmentation();
  out.occupancy_final = svc.controller().occupancy();
  out.cache_hits = svc.cache().hits();
  out.cache_misses = svc.cache().misses();
  out.cache_insertions = svc.cache().insertions();
  out.cache_evictions = svc.cache().evictions();
  out.cache_size_bits = svc.cache().size_bits();
  out.tenants = svc.tenant_stats();
  if (fingerprint_out != nullptr) *fingerprint_out = svc.state_fingerprint();
  return out;
}

bool same_evictions(const std::vector<EvictionEvent>& a,
                    const std::vector<EvictionEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].seq != b[i].seq || a[i].task != b[i].task ||
        !(a[i].rect == b[i].rect) || a[i].cause != b[i].cause) {
      return false;
    }
  }
  return true;
}

struct TraceRecord {
  Trace trace;
  Replay warm;       ///< headline run at --threads
  long long cold_nodes = 0;
  bool warm_equals_cold = false;
  bool deterministic = false;
  double p50_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  double throughput = 0.0;
};

/// One adversarial overload leg: bounded queue + deadlines + priorities +
/// fault plan. No cold comparison (the fault plan's decode faults key off
/// cache misses by design), but the replay must still be byte-identical
/// across thread counts — statuses and tick latencies included.
struct OverloadRecord {
  Trace trace;
  Replay run;
  bool deterministic = false;
  /// p50/p99 of committed-load latency in modeled ticks, per tenant.
  std::map<int, std::pair<double, double>> tick_percentiles;
};

/// One crash-recovery leg: an overload trace replayed with a write-ahead
/// journal attached, then a service rebuilt from the journal directory
/// alone. Both fingerprint comparisons are part of the bench's FAIL gate.
struct RecoveryRecord {
  Trace trace;
  ReconfigService::RecoveryInfo info;
  double baseline_seconds = 0.0;   ///< drain time, no journal
  double journaled_seconds = 0.0;  ///< drain time with the journal attached
  double recover_seconds = 0.0;    ///< rebuild-from-journal wall time
  double replay_rps = 0.0;         ///< WAL records replayed per second
  bool journal_transparent = false;  ///< journaled fp == unjournaled fp
  bool fingerprint_ok = false;       ///< recovered fp == journaled fp
};

/// The latency-decomposition leg (new in v4): one more overload replay
/// with the trace-event buffer sliced around it, so the modeled-tick spans
/// can be summed per tenant and compared against TenantStats.
struct BreakdownRecord {
  Trace trace;
  Replay run;
  bool identity_ok = false;   ///< per-result tick identity held throughout
  bool spans_ok = false;      ///< span sums == per-tenant breakdown
  std::string pairing_error;  ///< first event-pairing violation, or empty
};

/// One networked leg (new in v5): the closed-loop load generator driving
/// --connections concurrent sessions against an in-process RpcServer.
struct ServerRecord {
  Trace trace;
  int connections = 0;
  rpc::LoadGenReport report;
  rpc::ServerCounters counters;
  double p50_ms = 0.0, p99_ms = 0.0;  ///< wall latency, submit -> RESULT
  double shed_rate = 0.0;             ///< kShed results / results
  double throughput = 0.0;            ///< requests per wall second
  /// Every request sent was accounted for: a RESULT, a door shed, or a
  /// typed wire error — nothing vanished, nothing timed out.
  bool accounted = false;
};

/// The server-replay determinism leg: a journaled wire replay through one
/// admin session vs the offline replay of the same trace, fingerprints
/// compared live and after a cold recovery from the server's journal.
struct ServerReplayRecord {
  Trace trace;
  std::uint64_t offline_fp = 0, wire_fp = 0, recovered_fp = 0;
  bool wire_ok = false;     ///< served fingerprint == offline fingerprint
  bool recover_ok = false;  ///< recovered fingerprint == offline fingerprint
  double wall_seconds = 0.0;
  long long wire_results = 0;
};

/// Replays a trace through an admin RpcClient: the same submit order as
/// replay_trace, with a DRAIN frame at each tick-group boundary (the
/// server runs auto_drain=false, so drains happen only at the barriers —
/// the wire twin of the offline replay loop). Returns the result count.
long long admin_wire_replay(int port, std::uint64_t auth_seed,
                            const Trace& trace, StreamLibrary& lib,
                            const std::map<int, int>& priorities) {
  rpc::RpcClientOptions copts;
  copts.port = port;
  copts.tenant = rpc::kAdminTenant;
  copts.auth_seed = auth_seed;
  rpc::RpcClient admin(copts);
  for (const auto& [tenant, prio] : priorities) {
    admin.set_priority(tenant, prio);
  }
  long long results = 0;
  std::vector<RequestId> request_of_event(trace.events.size(), kNoRequest);
  std::size_t next = 0;
  while (next < trace.events.size()) {
    const int tick = trace.events[next].tick;
    while (next < trace.events.size() && trace.events[next].tick == tick) {
      const TraceEvent& e = trace.events[next];
      switch (e.kind) {
        case TraceEvent::Kind::kLoad:
          request_of_event[next] = admin.send_load(
              lib.stream_for(
                  trace.kinds[static_cast<std::size_t>(e.task_kind)]),
              e.tenant);
          break;
        case TraceEvent::Kind::kUnload:
          request_of_event[next] = admin.send_unload(
              request_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
          break;
        case TraceEvent::Kind::kRelocate:
          request_of_event[next] = admin.send_relocate(
              request_of_event[static_cast<std::size_t>(e.ref)], e.tenant);
          break;
      }
      ++next;
    }
    results += static_cast<long long>(admin.drain().size());
  }
  return results;
}

/// Prints a typed failure (--json object on stdout, or a stderr line) and
/// returns the CLI exit code for it — the same contract vbsdecode uses.
int typed_exit(const VbsError& e, bool json) {
  if (json) {
    std::printf(
        "{\n  \"error\": {\"code\": \"%s\", \"errc\": %d, "
        "\"message\": \"%s\"}\n}\n",
        to_string(e.code()), static_cast<int>(e.code()),
        json_escape(e.what()).c_str());
  } else {
    std::fprintf(stderr, "rtc_bench: %s [%s]\n", e.what(),
                 to_string(e.code()));
  }
  return exit_code_for(e.code());
}

/// --serve: front a fresh service on a loopback socket until an admin
/// session sends SHUTDOWN.
int run_serve(const CliArgs& args, bool json) {
  try {
    ArchSpec arch;
    arch.chan_width = 8;
    ServiceOptions so;
    so.threads = static_cast<int>(args.int_or("--threads", 2));
    so.queue_limit = static_cast<std::size_t>(args.int_or("--queue-limit", 8));
    so.deadline_ticks = args.int_or("--deadline", 12);
    ReconfigService svc(arch, 16, 12, so);
    rpc::RpcServerOptions sopts;
    sopts.port = static_cast<int>(args.int_or("--port", 0));
    sopts.auth_seed =
        static_cast<std::uint64_t>(args.int_or("--auth-seed", 1));
    rpc::RpcServer server(&svc, sopts);
    const int port = server.start();
    if (const auto pf = args.value("--port-file")) {
      FILE* f = std::fopen(pf->c_str(), "w");
      if (f == nullptr) throw std::runtime_error("cannot write " + *pf);
      std::fprintf(f, "%d\n", port);
      std::fclose(f);
    }
    std::printf(
        "rtc_bench: serving vbs.rpc.v1 on 127.0.0.1:%d "
        "(an admin SHUTDOWN frame stops it)\n",
        port);
    std::fflush(stdout);
    while (server.running()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    server.stop();
    const rpc::ServerCounters c = server.counters();
    if (json) {
      std::printf(
          "{\n  \"serve\": {\"port\": %d, \"accepted\": %llu, "
          "\"frames_in\": %llu, \"frames_out\": %llu, \"door_sheds\": %llu, "
          "\"handshake_rejects\": %llu, \"proto_errors\": %llu, "
          "\"fingerprint\": %llu}\n}\n",
          port, static_cast<unsigned long long>(c.accepted),
          static_cast<unsigned long long>(c.frames_in),
          static_cast<unsigned long long>(c.frames_out),
          static_cast<unsigned long long>(c.door_sheds),
          static_cast<unsigned long long>(c.handshake_rejects),
          static_cast<unsigned long long>(c.proto_errors),
          static_cast<unsigned long long>(svc.state_fingerprint()));
    } else {
      std::printf(
          "rtc_bench: server stopped: %llu connections, %llu frames in, "
          "%llu out, fingerprint %016llx\n",
          static_cast<unsigned long long>(c.accepted),
          static_cast<unsigned long long>(c.frames_in),
          static_cast<unsigned long long>(c.frames_out),
          static_cast<unsigned long long>(svc.state_fingerprint()));
    }
    return 0;
  } catch (const VbsError& e) {
    return typed_exit(e, json);
  }
}

/// --connect: admin-connect to a running server for a ping + stat, or a
/// graceful remote shutdown with --shutdown.
int run_connect(const CliArgs& args, bool json) {
  try {
    rpc::RpcClientOptions copts;
    copts.port = static_cast<int>(args.int_or("--port", 0));
    if (copts.port <= 0) throw std::runtime_error("--connect needs --port N");
    copts.tenant = rpc::kAdminTenant;
    copts.auth_seed =
        static_cast<std::uint64_t>(args.int_or("--auth-seed", 1));
    rpc::RpcClient admin(copts);
    admin.ping();
    const rpc::StatReplyMsg s = admin.stat();
    const bool shutdown = args.has_flag("--shutdown");
    if (shutdown) admin.shutdown();
    if (json) {
      std::printf(
          "{\n  \"connect\": {\"port\": %d, \"fingerprint\": %llu, "
          "\"now_ticks\": %lld, \"pending\": %llu, \"loads\": %lld, "
          "\"unloads\": %lld, \"relocates\": %lld, \"shed\": %lld, "
          "\"deadline_misses\": %lld, \"failed\": %lld, \"rejected\": %lld, "
          "\"shutdown\": %s}\n}\n",
          copts.port, static_cast<unsigned long long>(s.fingerprint),
          s.now_ticks, static_cast<unsigned long long>(s.pending), s.loads,
          s.unloads, s.relocates, s.shed, s.deadline_misses, s.failed,
          s.rejected, shutdown ? "true" : "false");
    } else {
      std::printf(
          "rtc_bench: server at :%d alive: fingerprint %016llx, tick %lld, "
          "%llu pending, %lld loads%s\n",
          copts.port, static_cast<unsigned long long>(s.fingerprint),
          s.now_ticks, static_cast<unsigned long long>(s.pending), s.loads,
          shutdown ? "; shutdown sent" : "");
    }
    return 0;
  } catch (const VbsError& e) {
    return typed_exit(e, json);
  }
}

/// --server-smoke: the CI loopback gate. In-process server, a
/// --connections closed loop over a small bursty trace, then a remote
/// shutdown; exits 0 only on a fully accounted run and a clean stop.
int run_server_smoke(const CliArgs& args, bool json) {
  try {
    ArchSpec arch;
    arch.chan_width = 8;
    TraceGenOptions gopts;
    gopts.pattern = ArrivalPattern::kBursty;
    gopts.events = static_cast<int>(args.int_or("--events", 96));
    gopts.ticks = 24;
    gopts.kinds = 3;
    gopts.fabric_w = 12;
    gopts.fabric_h = 10;
    gopts.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
    const Trace t = generate_trace(gopts);
    StreamLibrary lib(arch);
    std::vector<BitVector> streams;
    for (const TraceTaskKind& k : t.kinds) streams.push_back(lib.stream_for(k));

    ServiceOptions so;
    so.threads = static_cast<int>(args.int_or("--threads", 2));
    ReconfigService svc(arch, t.fabric_w, t.fabric_h, so);
    rpc::RpcServerOptions sopts;
    sopts.auth_seed =
        static_cast<std::uint64_t>(args.int_or("--auth-seed", 1));
    rpc::RpcServer server(&svc, sopts);
    const int port = server.start();

    rpc::LoadGenOptions lopts;
    lopts.port = port;
    lopts.connections =
        static_cast<int>(args.int_or("--connections", 32));
    lopts.auth_seed = sopts.auth_seed;
    lopts.trace = t;
    lopts.kind_streams = streams;
    const rpc::LoadGenReport report = rpc::run_loadgen(lopts);

    {  // remote shutdown through an admin session: the clean-stop gate
      rpc::RpcClientOptions copts;
      copts.port = port;
      copts.tenant = rpc::kAdminTenant;
      copts.auth_seed = sopts.auth_seed;
      rpc::RpcClient admin(copts);
      admin.shutdown();
    }
    for (int i = 0; i < 2500 && server.running(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    const bool stopped = !server.running();
    server.stop();
    const rpc::ServerCounters c = server.counters();

    const bool accounted =
        report.results + report.door_sheds + report.wire_errors ==
        report.requests_sent;
    const bool ok = stopped && !report.timed_out && accounted &&
                    report.results > 0 && report.done > 0;
    std::printf(
        "rtc_bench: server smoke: %d connections, %lld requests, %lld "
        "results (%lld done), %llu accepted, clean shutdown %s: %s\n",
        lopts.connections, report.requests_sent, report.results, report.done,
        static_cast<unsigned long long>(c.accepted), stopped ? "yes" : "NO",
        ok ? "ok" : "FAIL");
    return ok ? 0 : 1;
  } catch (const VbsError& e) {
    return typed_exit(e, json);
  }
}

bool same_outcomes(const Replay& a, const Replay& b) {
  return a.config == b.config && same_evictions(a.evictions, b.evictions) &&
         a.statuses == b.statuses && a.latency_ticks == b.latency_ticks &&
         a.stats.shed == b.stats.shed && a.stats.retries == b.stats.retries &&
         a.stats.deadline_misses == b.stats.deadline_misses &&
         a.stats.faults_injected == b.stats.faults_injected;
}

void write_json(const std::string& path, const std::vector<TraceRecord>& recs,
                const std::vector<OverloadRecord>& over,
                const std::vector<RecoveryRecord>& recov,
                const std::vector<BreakdownRecord>& breakdown,
                const std::vector<ServerRecord>& servers,
                const std::vector<ServerReplayRecord>& server_replay,
                bool smoke, const ServiceOptions& sopts,
                const ServiceOptions& oopts, std::uint64_t seed) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"schema\": \"vbs.rtc_bench.v5\",\n");
  std::fprintf(f,
               "  \"options\": {\"smoke\": %s, \"policy\": \"%s\", "
               "\"threads\": %d, \"cache_bits\": %zu, \"evict_to_fit\": %s, "
               "\"max_batch\": %d, \"seed\": %llu},\n",
               smoke ? "true" : "false", sopts.policy.c_str(), sopts.threads,
               sopts.cache_capacity_bits, sopts.evict_to_fit ? "true" : "false",
               sopts.max_batch, static_cast<unsigned long long>(seed));
  std::fprintf(f,
               "  \"overload_options\": {\"queue_limit\": %zu, "
               "\"deadline_ticks\": %lld, \"retry_limit\": %d, "
               "\"retry_backoff_ticks\": %lld, \"faults\": \"%s\"},\n",
               oopts.queue_limit, oopts.deadline_ticks, oopts.retry_limit,
               oopts.retry_backoff_ticks, oopts.faults.spec().c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"build\": %s,\n", build_info_json(2).c_str());
  std::fprintf(f, "  \"metrics\": %s,\n",
               telem::snapshot().to_json(2).c_str());
  std::fprintf(f, "  \"traces\": [\n");
  long long tot_events = 0, tot_warm = 0, tot_cold = 0, tot_evict = 0;
  long long tot_hits = 0, tot_lookups = 0;
  double tot_seconds = 0.0;
  bool all_det = true, all_wc = true;
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const TraceRecord& r = recs[i];
    const Replay& w = r.warm;
    tot_events += static_cast<long long>(r.trace.events.size());
    tot_warm += w.stats.decode.nodes_expanded;
    tot_cold += r.cold_nodes;
    tot_evict += w.stats.task_evictions;
    tot_hits += w.cache_hits;
    tot_lookups += w.cache_hits + w.cache_misses;
    tot_seconds += w.drain_seconds;
    all_det &= r.deterministic;
    all_wc &= r.warm_equals_cold;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fabric\": {\"w\": %d, \"h\": %d}, "
                 "\"events\": %zu, \"kinds\": %zu,\n",
                 r.trace.name.c_str(), r.trace.fabric_w, r.trace.fabric_h,
                 r.trace.events.size(), r.trace.kinds.size());
    std::fprintf(f,
                 "     \"requests\": {\"loads\": %lld, \"unloads\": %lld, "
                 "\"relocates\": %lld, \"done\": %lld, \"rejected\": %lld, "
                 "\"failed\": %lld, \"shed\": %lld, \"deadline_misses\": "
                 "%lld, \"retries\": %lld},\n",
                 w.stats.loads, w.stats.unloads, w.stats.relocates, w.done,
                 w.rejected, w.failed, w.shed, w.deadline_misses,
                 w.stats.retries);
    std::fprintf(f,
                 "     \"replay_seconds\": %.4f, \"throughput_rps\": %.0f, "
                 "\"load_latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, "
                 "\"max\": %.3f},\n",
                 w.drain_seconds, r.throughput, r.p50_ms, r.p99_ms, r.max_ms);
    std::fprintf(f,
                 "     \"cache\": {\"hits\": %lld, \"misses\": %lld, "
                 "\"hit_rate\": %.3f, \"insertions\": %lld, \"evictions\": "
                 "%lld, \"size_bits\": %zu},\n",
                 w.cache_hits, w.cache_misses,
                 w.cache_hits + w.cache_misses > 0
                     ? static_cast<double>(w.cache_hits) /
                           static_cast<double>(w.cache_hits + w.cache_misses)
                     : 0.0,
                 w.cache_insertions, w.cache_evictions, w.cache_size_bits);
    std::fprintf(f,
                 "     \"warm_loads\": %lld, \"cold_loads\": %lld, "
                 "\"relocates_cached\": %lld, \"relocates_decoded\": %lld,\n",
                 w.stats.warm_loads, w.stats.cold_loads,
                 w.stats.relocates_cached, w.stats.relocates_decoded);
    std::fprintf(f,
                 "     \"decode_nodes_warm\": %lld, \"decode_nodes_cold\": "
                 "%lld, \"decode_node_ratio\": %.2f,\n",
                 w.stats.decode.nodes_expanded, r.cold_nodes,
                 w.stats.decode.nodes_expanded > 0
                     ? static_cast<double>(r.cold_nodes) /
                           static_cast<double>(w.stats.decode.nodes_expanded)
                     : 0.0);
    std::fprintf(f,
                 "     \"task_evictions\": %lld, \"fragmentation_avg\": %.3f, "
                 "\"fragmentation_final\": %.3f, \"occupancy_final\": %.3f,\n",
                 w.stats.task_evictions,
                 w.frag_samples > 0 ? w.frag_sum / w.frag_samples : 0.0,
                 w.frag_final, w.occupancy_final);
    std::fprintf(f,
                 "     \"warm_equals_cold_config\": %s, \"determinism\": "
                 "{\"thread_counts\": [1, 2, %d], \"identical\": %s}}%s\n",
                 r.warm_equals_cold ? "true" : "false", sopts.threads,
                 r.deterministic ? "true" : "false",
                 i + 1 < recs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"overload\": [\n");
  bool all_over = true;
  for (std::size_t i = 0; i < over.size(); ++i) {
    const OverloadRecord& r = over[i];
    const Replay& w = r.run;
    all_over &= r.deterministic;
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %zu, \"kinds\": %zu, "
                 "\"done\": %lld, \"rejected\": %lld, \"failed\": %lld, "
                 "\"shed\": %lld, \"deadline_misses\": %lld, \"retries\": "
                 "%lld, \"faults_injected\": %lld, \"determinism_ok\": %s,\n",
                 r.trace.name.c_str(), r.trace.events.size(),
                 r.trace.kinds.size(), w.done, w.rejected, w.failed, w.shed,
                 w.deadline_misses, w.stats.retries, w.stats.faults_injected,
                 r.deterministic ? "true" : "false");
    std::fprintf(f, "     \"tenants\": [");
    bool first = true;
    for (const auto& [tenant, ts] : w.tenants) {
      const auto pct = r.tick_percentiles.find(tenant);
      std::fprintf(
          f,
          "%s\n      {\"tenant\": %d, \"priority\": %d, \"submitted\": "
          "%lld, \"done\": %lld, \"rejected\": %lld, \"failed\": %lld, "
          "\"shed\": %lld, \"deadline_misses\": %lld, \"retries\": %lld, "
          "\"latency_ticks\": {\"p50\": %.1f, \"p99\": %.1f}}",
          first ? "" : ",", tenant, ts.priority, ts.submitted, ts.done,
          ts.rejected, ts.failed, ts.shed, ts.deadline_misses, ts.retries,
          pct != r.tick_percentiles.end() ? pct->second.first : 0.0,
          pct != r.tick_percentiles.end() ? pct->second.second : 0.0);
      first = false;
    }
    std::fprintf(f, "]}%s\n", i + 1 < over.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"recovery\": [\n");
  bool all_recov = true;
  for (std::size_t i = 0; i < recov.size(); ++i) {
    const RecoveryRecord& r = recov[i];
    all_recov &= r.fingerprint_ok && r.journal_transparent;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"events\": %zu, \"journal_bytes\": %llu, "
        "\"wal_records\": %lld, \"admits\": %lld, \"commits\": %lld, "
        "\"epoch\": %llu,\n",
        r.trace.name.c_str(), r.trace.events.size(),
        static_cast<unsigned long long>(r.info.journal_bytes), r.info.records,
        r.info.admits, r.info.commits,
        static_cast<unsigned long long>(r.info.epoch));
    std::fprintf(
        f,
        "     \"baseline_seconds\": %.4f, \"journaled_seconds\": %.4f, "
        "\"journal_overhead\": %.3f, \"recover_seconds\": %.4f, "
        "\"replay_records_per_sec\": %.0f,\n",
        r.baseline_seconds, r.journaled_seconds,
        r.baseline_seconds > 0 ? r.journaled_seconds / r.baseline_seconds
                               : 0.0,
        r.recover_seconds, r.replay_rps);
    std::fprintf(f,
                 "     \"journal_transparent\": %s, \"fingerprint_ok\": "
                 "%s}%s\n",
                 r.journal_transparent ? "true" : "false",
                 r.fingerprint_ok ? "true" : "false",
                 i + 1 < recov.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"latency_breakdown\": [\n");
  bool all_bd = true;
  for (std::size_t i = 0; i < breakdown.size(); ++i) {
    const BreakdownRecord& r = breakdown[i];
    all_bd &= r.identity_ok && r.spans_ok && r.pairing_error.empty();
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"identity_ok\": %s, "
                 "\"spans_match_stats\": %s, \"event_pairing_ok\": %s,\n",
                 r.trace.name.c_str(), r.identity_ok ? "true" : "false",
                 r.spans_ok ? "true" : "false",
                 r.pairing_error.empty() ? "true" : "false");
    std::fprintf(f, "     \"tenants\": [");
    bool first = true;
    for (const auto& [tenant, ts] : r.run.tenants) {
      std::fprintf(f,
                   "%s\n      {\"tenant\": %d, \"latency_ticks\": %lld, "
                   "\"queue_wait_ticks\": %lld, \"backoff_ticks\": %lld, "
                   "\"spike_ticks\": %lld, \"exec_ticks\": %lld}",
                   first ? "" : ",", tenant, ts.latency_ticks,
                   ts.queue_wait_ticks, ts.backoff_ticks, ts.spike_ticks,
                   ts.exec_ticks);
      first = false;
    }
    std::fprintf(f, "]}%s\n", i + 1 < breakdown.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"server\": [\n");
  bool all_srv = true;
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const ServerRecord& r = servers[i];
    const rpc::LoadGenReport& g = r.report;
    all_srv &= r.accounted;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"connections\": %d, \"events\": %zu, "
        "\"requests\": %lld, \"acks\": %lld, \"results\": %lld,\n",
        r.trace.name.c_str(), r.connections, r.trace.events.size(),
        g.requests_sent, g.acks, g.results);
    std::fprintf(
        f,
        "     \"done\": %lld, \"shed\": %lld, \"rejected\": %lld, "
        "\"failed\": %lld, \"deadline\": %lld, \"door_sheds\": %lld, "
        "\"wire_errors\": %lld, \"shed_rate\": %.3f,\n",
        g.done, g.shed, g.rejected, g.failed, g.deadline, g.door_sheds,
        g.wire_errors, r.shed_rate);
    std::fprintf(
        f,
        "     \"wall_seconds\": %.4f, \"throughput_rps\": %.0f, "
        "\"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f},\n",
        g.wall_seconds, r.throughput, r.p50_ms, r.p99_ms);
    std::fprintf(
        f,
        "     \"server_counters\": {\"accepted\": %llu, \"frames_in\": %llu, "
        "\"frames_out\": %llu, \"door_sheds\": %llu, \"reads_paused\": "
        "%llu}, \"accounted\": %s}%s\n",
        static_cast<unsigned long long>(r.counters.accepted),
        static_cast<unsigned long long>(r.counters.frames_in),
        static_cast<unsigned long long>(r.counters.frames_out),
        static_cast<unsigned long long>(r.counters.door_sheds),
        static_cast<unsigned long long>(r.counters.reads_paused),
        r.accounted ? "true" : "false", i + 1 < servers.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"server_replay\": [\n");
  bool all_sr = true;
  for (std::size_t i = 0; i < server_replay.size(); ++i) {
    const ServerReplayRecord& r = server_replay[i];
    all_sr &= r.wire_ok && r.recover_ok;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"events\": %zu, \"wire_results\": %lld, "
        "\"wall_seconds\": %.4f, \"offline_fingerprint\": %llu, "
        "\"wire_fingerprint\": %llu, \"recovered_fingerprint\": %llu, "
        "\"wire_matches_offline\": %s, \"recover_matches_offline\": %s}%s\n",
        r.trace.name.c_str(), r.trace.events.size(), r.wire_results,
        r.wall_seconds, static_cast<unsigned long long>(r.offline_fp),
        static_cast<unsigned long long>(r.wire_fp),
        static_cast<unsigned long long>(r.recovered_fp),
        r.wire_ok ? "true" : "false", r.recover_ok ? "true" : "false",
        i + 1 < server_replay.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(
      f,
      "  \"summary\": {\"traces\": %zu, \"events\": %lld, "
      "\"replay_seconds\": %.4f, \"throughput_rps\": %.0f, "
      "\"decode_nodes_warm\": %lld, \"decode_nodes_cold\": %lld, "
      "\"decode_node_ratio\": %.2f, \"cache_hit_rate\": %.3f, "
      "\"task_evictions\": %lld, \"determinism_ok\": %s, "
      "\"warm_equals_cold_ok\": %s, \"overload_ok\": %s, "
      "\"recovery_ok\": %s, \"breakdown_ok\": %s, \"server_ok\": %s, "
      "\"server_replay_ok\": %s}\n",
      recs.size(), tot_events, tot_seconds,
      tot_seconds > 0 ? static_cast<double>(tot_events) / tot_seconds : 0.0,
      tot_warm, tot_cold,
      tot_warm > 0 ? static_cast<double>(tot_cold) / static_cast<double>(tot_warm)
                   : 0.0,
      tot_lookups > 0
          ? static_cast<double>(tot_hits) / static_cast<double>(tot_lookups)
          : 0.0,
      tot_evict, all_det ? "true" : "false", all_wc ? "true" : "false",
      all_over ? "true" : "false", all_recov ? "true" : "false",
      all_bd ? "true" : "false", all_srv ? "true" : "false",
      all_sr ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) try {
  CliArgs args(argc, argv,
               {"--trace", "--policy", "--threads", "--cache-bits",
                "--events", "--ticks", "--seed", "--out", "--queue-limit",
                "--deadline", "--faults", "--trace-out", "--connections",
                "--port", "--port-file", "--auth-seed"},
               {"--smoke", "--no-evict", "--metrics", "--serve", "--connect",
                "--server-smoke", "--shutdown", "--json"});
  const bool json = args.has_flag("--json");
  // Standalone network modes: typed exit codes, no bench suite.
  if (args.has_flag("--serve")) return run_serve(args, json);
  if (args.has_flag("--connect")) return run_connect(args, json);
  if (args.has_flag("--server-smoke")) return run_server_smoke(args, json);
  // Handled directly (not via TelemetryCli): the breakdown legs slice the
  // event buffer with take_trace(), so the file is written from the
  // accumulated slices at the end.
  const std::string trace_out = args.value_or("--trace-out", "");
  const bool want_metrics = args.has_flag("--metrics");
  telem::set_enabled(true);  // harness JSON embeds the counters
  const bool smoke = args.has_flag("--smoke");
  ServiceOptions sopts;
  sopts.policy = args.value_or("--policy", "first_fit");
  sopts.threads = static_cast<int>(args.int_or("--threads", 8));
  sopts.cache_capacity_bits = static_cast<std::size_t>(
      args.int_or("--cache-bits",
                  static_cast<long long>(sopts.cache_capacity_bits)));
  sopts.evict_to_fit = !args.has_flag("--no-evict");
  const auto seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
  const std::string out = args.value_or("--out", "BENCH_rtc.json");

  // The overload legs: bounded queue, modeled-tick deadlines, retries and
  // a deterministic fault plan on top of the headline options.
  ServiceOptions oopts = sopts;
  oopts.queue_limit =
      static_cast<std::size_t>(args.int_or("--queue-limit", 8));
  oopts.deadline_ticks = args.int_or("--deadline", 12);
  oopts.faults = FaultPlan::parse(args.value_or(
      "--faults", "seed=9,decode=0.05,alloc=0.05,latency=0.1x6"));

  ArchSpec arch;
  arch.chan_width = 8;  // small tasks; W=8 keeps the library flow fast

  // The bundled suite: one trace per arrival pattern, or a caller trace.
  std::vector<Trace> traces;
  if (const auto path = args.value("--trace")) {
    traces.push_back(read_trace_file(*path));
  } else {
    TraceGenOptions gopts;
    gopts.events = static_cast<int>(args.int_or("--events", smoke ? 48 : 160));
    gopts.ticks = static_cast<int>(args.int_or("--ticks", smoke ? 24 : 64));
    gopts.kinds = smoke ? 4 : 6;
    gopts.seed = seed;
    for (const ArrivalPattern p :
         {ArrivalPattern::kSteady, ArrivalPattern::kBursty,
          ArrivalPattern::kDiurnal, ArrivalPattern::kChurn}) {
      gopts.pattern = p;
      traces.push_back(generate_trace(gopts));
    }
  }

  std::printf("building task libraries (offline flow, shared across traces)"
              "...\n");
  StreamLibrary lib(arch);
  for (const Trace& t : traces) {
    for (const TraceTaskKind& k : t.kinds) lib.stream_for(k);
  }

  // Adversarial overload traces (skipped when replaying a caller trace).
  std::vector<Trace> overload_traces;
  if (!args.value("--trace")) {
    TraceGenOptions gopts;
    gopts.events = static_cast<int>(args.int_or("--events", smoke ? 64 : 220));
    gopts.ticks = static_cast<int>(args.int_or("--ticks", smoke ? 16 : 48));
    gopts.kinds = smoke ? 4 : 6;
    gopts.seed = seed;
    for (const ArrivalPattern p :
         {ArrivalPattern::kFlashCrowd, ArrivalPattern::kUniqueFlood}) {
      gopts.pattern = p;
      overload_traces.push_back(generate_trace(gopts));
    }
    for (const Trace& t : overload_traces) {
      for (const TraceTaskKind& k : t.kinds) lib.stream_for(k);
    }
  }

  std::vector<TraceRecord> recs;
  for (const Trace& t : traces) {
    TraceRecord rec;
    rec.trace = t;
    std::printf("replaying %-8s (%zu events, %dx%d fabric)...\n",
                t.name.c_str(), t.events.size(), t.fabric_w, t.fabric_h);
    rec.warm = replay_trace(t, lib, arch, sopts);

    ServiceOptions cold = sopts;
    cold.cache_capacity_bits = 0;
    const Replay cold_run = replay_trace(t, lib, arch, cold);
    rec.cold_nodes = cold_run.stats.decode.nodes_expanded;
    rec.warm_equals_cold = rec.warm.config == cold_run.config &&
                           same_evictions(rec.warm.evictions,
                                          cold_run.evictions);

    rec.deterministic = true;
    for (const int threads : {1, 2}) {
      ServiceOptions d = sopts;
      d.threads = threads;
      const Replay run = replay_trace(t, lib, arch, d);
      rec.deterministic &= run.config == rec.warm.config &&
                           same_evictions(run.evictions, rec.warm.evictions);
    }

    rec.p50_ms = 1e3 * percentile(rec.warm.load_latencies, 0.50);
    rec.p99_ms = 1e3 * percentile(rec.warm.load_latencies, 0.99);
    rec.max_ms = 1e3 * percentile(rec.warm.load_latencies, 1.0);
    rec.throughput =
        rec.warm.drain_seconds > 0
            ? static_cast<double>(t.events.size()) / rec.warm.drain_seconds
            : 0.0;
    recs.push_back(std::move(rec));
  }

  // Overload legs: tenant 0 is the high-priority background workload,
  // tenant 1 the flood. Replayed at --threads and re-checked at 1 and 2:
  // statuses, tick latencies, sheds, retries and the final configuration
  // must be byte-identical — the fault schedule is part of the model.
  const std::map<int, int> priorities = {{0, 10}, {1, 0}};
  std::vector<OverloadRecord> over;
  for (const Trace& t : overload_traces) {
    OverloadRecord rec;
    rec.trace = t;
    std::printf("replaying %-12s overload leg (%zu events, queue %zu, "
                "deadline %lld)...\n",
                t.name.c_str(), t.events.size(), oopts.queue_limit,
                oopts.deadline_ticks);
    rec.run = replay_trace(t, lib, arch, oopts, priorities);
    rec.deterministic = true;
    for (const int threads : {1, 2}) {
      ServiceOptions d = oopts;
      d.threads = threads;
      const Replay run = replay_trace(t, lib, arch, d, priorities);
      rec.deterministic &= same_outcomes(run, rec.run);
    }
    for (const auto& [tenant, ticks] : rec.run.tenant_done_ticks) {
      rec.tick_percentiles[tenant] = {percentile(ticks, 0.50),
                                      percentile(ticks, 0.99)};
    }
    over.push_back(std::move(rec));
  }

  // Recovery legs: the overload traces once more, this time journaled,
  // then rebuilt from the journal directory alone. Journaling must not
  // perturb the replay and the cold recovery must fingerprint identically.
  std::vector<RecoveryRecord> recov;
  if (!overload_traces.empty()) {
    namespace fs = std::filesystem;
    const fs::path jroot =
        fs::temp_directory_path() /
        ("vbs_rtc_bench_" +
         std::to_string(static_cast<long long>(::getpid())));
    for (const Trace& t : overload_traces) {
      RecoveryRecord rec;
      rec.trace = t;
      std::printf("replaying %-12s recovery leg (journaled, then cold "
                  "recover)...\n",
                  t.name.c_str());
      const fs::path jdir = jroot / t.name;
      fs::remove_all(jdir);
      std::uint64_t fp_live = 0, fp_journaled = 0;
      rec.baseline_seconds =
          replay_trace(t, lib, arch, oopts, priorities, {}, &fp_live)
              .drain_seconds;
      rec.journaled_seconds =
          replay_trace(t, lib, arch, oopts, priorities, jdir.string(),
                       &fp_journaled)
              .drain_seconds;
      rec.journal_transparent = fp_journaled == fp_live;
      const std::uint64_t t0 = telem::now_ns();
      const std::unique_ptr<ReconfigService> back =
          ReconfigService::recover(jdir.string(), oopts.threads, &rec.info);
      rec.recover_seconds = telem::seconds_since(t0);
      rec.replay_rps =
          rec.recover_seconds > 0
              ? static_cast<double>(rec.info.records) / rec.recover_seconds
              : 0.0;
      rec.fingerprint_ok = back->state_fingerprint() == fp_journaled;
      recov.push_back(std::move(rec));
    }
    fs::remove_all(jroot);
  }

  // Latency-decomposition legs: everything traced so far moves to
  // all_events, then each overload trace replays once more with its own
  // clean slice of the event buffer.
  std::vector<telem::TraceEvent> all_events = telem::take_trace();
  std::vector<BreakdownRecord> breakdown;
  for (const Trace& t : overload_traces) {
    BreakdownRecord rec;
    rec.trace = t;
    std::printf("replaying %-12s breakdown leg (span-model check)...\n",
                t.name.c_str());
    rec.run = replay_trace(t, lib, arch, oopts, priorities);
    std::vector<telem::TraceEvent> ev = telem::take_trace();
    rec.identity_ok = rec.run.tick_identity_ok;
    rec.pairing_error = telem::check_event_pairing(ev);
    // Sum the modeled-tick spans per tenant lane: the parent "request"
    // spans and each phase span, in nanoseconds (1 tick == 1000 ns).
    std::map<std::uint64_t, long long> request_ns;
    std::map<std::uint64_t, std::map<std::string, long long>> phase_ns;
    for (const telem::TraceEvent& e : ev) {
      if (e.pid != telem::kPidTicks) continue;
      if (e.name == "request") {
        request_ns[e.tid] += static_cast<long long>(e.dur_ns);
      } else {
        phase_ns[e.tid][e.name] += static_cast<long long>(e.dur_ns);
      }
    }
    rec.spans_ok = true;
    for (const auto& [tenant, ts] : rec.run.tenants) {
      const auto tid = static_cast<std::uint64_t>(tenant);
      const auto phase = [&](const char* name) {
        const auto it = phase_ns.find(tid);
        if (it == phase_ns.end()) return 0LL;
        const auto jt = it->second.find(name);
        return jt == it->second.end() ? 0LL : jt->second;
      };
      rec.spans_ok &= request_ns[tid] == ts.latency_ticks * 1000 &&
                      phase("queue_wait") == ts.queue_wait_ticks * 1000 &&
                      phase("backoff") == ts.backoff_ticks * 1000 &&
                      phase("spike") == ts.spike_ticks * 1000 &&
                      phase("exec") == ts.exec_ticks * 1000;
    }
    all_events.insert(all_events.end(), ev.begin(), ev.end());
    breakdown.push_back(std::move(rec));
  }

  // Networked legs: the same service behind the RPC front end on a
  // loopback socket, hammered by the closed-loop load generator at
  // --connections concurrent authenticated sessions.
  const int connections =
      static_cast<int>(args.int_or("--connections", smoke ? 32 : 256));
  std::vector<ServerRecord> servers;
  std::vector<ServerReplayRecord> server_replay;
  if (!args.value("--trace")) {
    TraceGenOptions gopts;
    gopts.events = static_cast<int>(args.int_or("--events", smoke ? 64 : 220));
    gopts.ticks = static_cast<int>(args.int_or("--ticks", smoke ? 16 : 48));
    gopts.kinds = smoke ? 4 : 6;
    gopts.seed = seed;
    // The service behind the wire runs the overload admission policy
    // (bounded queue + deadlines) but no model fault plan: the latency
    // numbers measure the wire and the service, not injected faults.
    ServiceOptions wopts = sopts;
    wopts.queue_limit = oopts.queue_limit;
    wopts.deadline_ticks = oopts.deadline_ticks;
    for (const ArrivalPattern p :
         {ArrivalPattern::kSteady, ArrivalPattern::kBursty,
          ArrivalPattern::kFlashCrowd}) {
      gopts.pattern = p;
      const Trace t = generate_trace(gopts);
      std::vector<BitVector> streams;
      for (const TraceTaskKind& k : t.kinds) {
        streams.push_back(lib.stream_for(k));
      }
      ServerRecord rec;
      rec.trace = t;
      rec.connections = connections;
      std::printf("serving   %-12s to %d closed-loop connections "
                  "(%zu events)...\n",
                  t.name.c_str(), connections, t.events.size());
      ReconfigService svc(arch, t.fabric_w, t.fabric_h, wopts);
      rpc::RpcServer server(&svc, rpc::RpcServerOptions{});
      const int port = server.start();
      rpc::LoadGenOptions lopts;
      lopts.port = port;
      lopts.connections = connections;
      lopts.trace = t;
      lopts.kind_streams = streams;
      rec.report = rpc::run_loadgen(lopts);
      server.stop();
      rec.counters = server.counters();
      rec.p50_ms = percentile(rec.report.latencies_ms, 0.50);
      rec.p99_ms = percentile(rec.report.latencies_ms, 0.99);
      rec.shed_rate =
          rec.report.results > 0
              ? static_cast<double>(rec.report.shed) /
                    static_cast<double>(rec.report.results)
              : 0.0;
      rec.throughput =
          rec.report.wall_seconds > 0
              ? static_cast<double>(rec.report.requests_sent) /
                    rec.report.wall_seconds
              : 0.0;
      rec.accounted =
          !rec.report.timed_out && rec.report.results > 0 &&
          rec.report.results + rec.report.door_sheds +
                  rec.report.wire_errors ==
              rec.report.requests_sent;
      servers.push_back(std::move(rec));
    }

    // The server-replay leg: the flash_crowd overload trace once more,
    // through a *journaled* server via one admin session, fingerprinted
    // against the offline replay and against a cold journal recovery.
    if (!overload_traces.empty()) {
      const Trace& t = overload_traces.front();
      ServerReplayRecord rec;
      rec.trace = t;
      std::printf("replaying %-12s server-replay leg (journaled wire "
                  "replay vs offline)...\n",
                  t.name.c_str());
      replay_trace(t, lib, arch, wopts, priorities, {}, &rec.offline_fp);

      namespace fs = std::filesystem;
      const fs::path jdir =
          fs::temp_directory_path() /
          ("vbs_rtc_bench_srv_" +
           std::to_string(static_cast<long long>(::getpid())));
      fs::remove_all(jdir);
      {
        ReconfigService svc(arch, t.fabric_w, t.fabric_h, wopts);
        svc.open_journal(jdir.string());
        rpc::RpcServerOptions ropts;
        ropts.auto_drain = false;  // drains only at the admin's barriers
        rpc::RpcServer server(&svc, ropts);
        const int port = server.start();
        const std::uint64_t t0 = telem::now_ns();
        rec.wire_results =
            admin_wire_replay(port, ropts.auth_seed, t, lib, priorities);
        rec.wall_seconds = telem::seconds_since(t0);
        server.stop();
        rec.wire_fp = svc.state_fingerprint();
      }
      rec.recovered_fp =
          ReconfigService::recover(jdir.string())->state_fingerprint();
      fs::remove_all(jdir);
      rec.wire_ok = rec.wire_fp == rec.offline_fp;
      rec.recover_ok = rec.recovered_fp == rec.offline_fp;
      server_replay.push_back(std::move(rec));
    }
  }

  TablePrinter table({"trace", "events", "rps", "p50 ms", "p99 ms",
                      "hit rate", "nodes w/c", "evict", "frag", "det"});
  for (const TraceRecord& r : recs) {
    const long long lookups = r.warm.cache_hits + r.warm.cache_misses;
    table.add_row(
        {r.trace.name, TablePrinter::fmt_int(static_cast<long long>(
                           r.trace.events.size())),
         TablePrinter::fmt(r.throughput, 0), TablePrinter::fmt(r.p50_ms, 2),
         TablePrinter::fmt(r.p99_ms, 2),
         TablePrinter::fmt(lookups > 0 ? static_cast<double>(r.warm.cache_hits) /
                                             static_cast<double>(lookups)
                                       : 0.0,
                           2),
         TablePrinter::fmt_int(r.warm.stats.decode.nodes_expanded) + "/" +
             TablePrinter::fmt_int(r.cold_nodes),
         TablePrinter::fmt_int(r.warm.stats.task_evictions),
         TablePrinter::fmt(r.warm.frag_samples > 0
                               ? r.warm.frag_sum / r.warm.frag_samples
                               : 0.0,
                           2),
         r.deterministic && r.warm_equals_cold ? "ok" : "FAIL"});
  }
  table.print();

  if (!over.empty()) {
    std::printf("\noverload legs (latency in modeled ticks):\n");
    TablePrinter otable({"trace", "tenant", "prio", "submitted", "done",
                         "shed", "deadline", "retries", "p50 t", "p99 t"});
    for (const OverloadRecord& r : over) {
      for (const auto& [tenant, ts] : r.run.tenants) {
        const auto pct = r.tick_percentiles.find(tenant);
        otable.add_row(
            {r.trace.name, TablePrinter::fmt_int(tenant),
             TablePrinter::fmt_int(ts.priority),
             TablePrinter::fmt_int(ts.submitted),
             TablePrinter::fmt_int(ts.done), TablePrinter::fmt_int(ts.shed),
             TablePrinter::fmt_int(ts.deadline_misses),
             TablePrinter::fmt_int(ts.retries),
             TablePrinter::fmt(
                 pct != r.tick_percentiles.end() ? pct->second.first : 0.0, 1),
             TablePrinter::fmt(
                 pct != r.tick_percentiles.end() ? pct->second.second : 0.0,
                 1)});
      }
    }
    otable.print();
  }

  if (!recov.empty()) {
    std::printf("\nrecovery legs (journaled replay + cold recover):\n");
    TablePrinter rtable({"trace", "wal bytes", "records", "admits",
                         "commits", "jrnl ovh", "recover ms", "rec/s",
                         "ok"});
    for (const RecoveryRecord& r : recov) {
      rtable.add_row(
          {r.trace.name,
           TablePrinter::fmt_int(
               static_cast<long long>(r.info.journal_bytes)),
           TablePrinter::fmt_int(r.info.records),
           TablePrinter::fmt_int(r.info.admits),
           TablePrinter::fmt_int(r.info.commits),
           TablePrinter::fmt(r.baseline_seconds > 0
                                 ? r.journaled_seconds / r.baseline_seconds
                                 : 0.0,
                             2),
           TablePrinter::fmt(1e3 * r.recover_seconds, 2),
           TablePrinter::fmt(r.replay_rps, 0),
           r.fingerprint_ok && r.journal_transparent ? "ok" : "FAIL"});
    }
    rtable.print();
  }

  if (!breakdown.empty()) {
    std::printf("\nlatency decomposition (per-tenant tick sums):\n");
    TablePrinter btable({"trace", "tenant", "latency", "queue", "backoff",
                         "spike", "exec", "spans"});
    for (const BreakdownRecord& r : breakdown) {
      for (const auto& [tenant, ts] : r.run.tenants) {
        btable.add_row(
            {r.trace.name, TablePrinter::fmt_int(tenant),
             TablePrinter::fmt_int(ts.latency_ticks),
             TablePrinter::fmt_int(ts.queue_wait_ticks),
             TablePrinter::fmt_int(ts.backoff_ticks),
             TablePrinter::fmt_int(ts.spike_ticks),
             TablePrinter::fmt_int(ts.exec_ticks),
             r.identity_ok && r.spans_ok && r.pairing_error.empty()
                 ? "ok"
                 : "FAIL"});
      }
    }
    btable.print();
  }

  if (!servers.empty()) {
    std::printf("\nnetworked legs (closed-loop loopback, wall latency):\n");
    TablePrinter stable({"trace", "conns", "requests", "results", "done",
                         "shed", "rps", "p50 ms", "p99 ms", "ok"});
    for (const ServerRecord& r : servers) {
      stable.add_row(
          {r.trace.name, TablePrinter::fmt_int(r.connections),
           TablePrinter::fmt_int(r.report.requests_sent),
           TablePrinter::fmt_int(r.report.results),
           TablePrinter::fmt_int(r.report.done),
           TablePrinter::fmt_int(r.report.shed),
           TablePrinter::fmt(r.throughput, 0),
           TablePrinter::fmt(r.p50_ms, 2), TablePrinter::fmt(r.p99_ms, 2),
           r.accounted ? "ok" : "FAIL"});
    }
    stable.print();
  }

  if (!server_replay.empty()) {
    std::printf("\nserver-replay legs (wire vs offline fingerprints):\n");
    TablePrinter srtable({"trace", "results", "wall s", "wire==offline",
                          "recover==offline"});
    for (const ServerReplayRecord& r : server_replay) {
      srtable.add_row({r.trace.name, TablePrinter::fmt_int(r.wire_results),
                       TablePrinter::fmt(r.wall_seconds, 3),
                       r.wire_ok ? "ok" : "FAIL",
                       r.recover_ok ? "ok" : "FAIL"});
    }
    srtable.print();
  }

  write_json(out, recs, over, recov, breakdown, servers, server_replay,
             smoke, sopts, oopts, seed);
  std::printf("\nwrote %s\n", out.c_str());

  if (!trace_out.empty()) {
    const std::vector<telem::TraceEvent> tail = telem::take_trace();
    all_events.insert(all_events.end(), tail.begin(), tail.end());
    telem::write_trace_file(trace_out, all_events);
    std::printf("wrote %s (%zu trace events)\n", trace_out.c_str(),
                all_events.size());
  }
  if (want_metrics) {
    std::fprintf(stderr, "%s\n", telem::snapshot().to_json(0).c_str());
  }

  // Fail loudly: a nondeterministic replay or a cached commit that diverges
  // from a fresh decode would invalidate every number above.
  bool ok = true;
  long long warm_nodes = 0, cold_nodes = 0;
  for (const TraceRecord& r : recs) {
    warm_nodes += r.warm.stats.decode.nodes_expanded;
    cold_nodes += r.cold_nodes;
    if (!r.deterministic) {
      std::fprintf(stderr, "FAIL: %s replay differs across thread counts\n",
                   r.trace.name.c_str());
      ok = false;
    }
    if (!r.warm_equals_cold) {
      std::fprintf(stderr,
                   "FAIL: %s warm (cached) config diverged from cold decode\n",
                   r.trace.name.c_str());
      ok = false;
    }
  }
  // The cache headline the bundled suite promises: a warm replay does >=
  // 10x less devirtualization than a cold one. Smoke traces are too short
  // to promise a fixed ratio; there the check is only that caching helps.
  const double ratio = warm_nodes > 0 ? static_cast<double>(cold_nodes) /
                                            static_cast<double>(warm_nodes)
                                      : 0.0;
  const double floor = smoke || args.value("--trace") ? 1.0 : 10.0;
  if (ratio < floor) {
    std::fprintf(stderr, "FAIL: decode node ratio %.2f below %.1f\n", ratio,
                 floor);
    ok = false;
  }
  // QoS promises of the overload legs: the flood is shed, the
  // high-priority tenant never is, and its p99 stays at or below the
  // flood's — all under an identical replay at every thread count.
  for (const OverloadRecord& r : over) {
    if (!r.deterministic) {
      std::fprintf(stderr,
                   "FAIL: %s overload replay differs across thread counts\n",
                   r.trace.name.c_str());
      ok = false;
    }
    const auto t0 = r.run.tenants.find(0);
    const auto t1 = r.run.tenants.find(1);
    if (t0 == r.run.tenants.end() || t1 == r.run.tenants.end()) {
      std::fprintf(stderr, "FAIL: %s overload leg missing a tenant\n",
                   r.trace.name.c_str());
      ok = false;
      continue;
    }
    if (t0->second.shed != 0) {
      std::fprintf(stderr, "FAIL: %s shed %lld high-priority requests\n",
                   r.trace.name.c_str(), t0->second.shed);
      ok = false;
    }
    if (t1->second.shed == 0) {
      std::fprintf(stderr, "FAIL: %s overload leg never shed the flood\n",
                   r.trace.name.c_str());
      ok = false;
    }
    const auto p0 = r.tick_percentiles.find(0);
    const auto p1 = r.tick_percentiles.find(1);
    if (p0 != r.tick_percentiles.end() && p1 != r.tick_percentiles.end() &&
        p0->second.second > p1->second.second) {
      std::fprintf(stderr,
                   "FAIL: %s high-priority p99 %.1f ticks above flood p99 "
                   "%.1f\n",
                   r.trace.name.c_str(), p0->second.second, p1->second.second);
      ok = false;
    }
  }
  // The span model is part of the bench contract: the tick identity must
  // hold for every result, and the exported spans must be the same numbers
  // TenantStats reports.
  for (const BreakdownRecord& r : breakdown) {
    if (!r.identity_ok) {
      std::fprintf(stderr,
                   "FAIL: %s latency breakdown violates the tick identity\n",
                   r.trace.name.c_str());
      ok = false;
    }
    if (!r.spans_ok) {
      std::fprintf(stderr,
                   "FAIL: %s trace spans diverge from the TenantStats "
                   "breakdown\n",
                   r.trace.name.c_str());
      ok = false;
    }
    if (!r.pairing_error.empty()) {
      std::fprintf(stderr, "FAIL: %s trace pairing: %s\n",
                   r.trace.name.c_str(), r.pairing_error.c_str());
      ok = false;
    }
  }
  // Promises of the networked legs: every request a closed-loop client
  // sends is accounted for (RESULT, door shed, or typed error — nothing
  // lost, nothing timed out), and the wire replay of a trace through a
  // journaled server fingerprints identically to the offline replay,
  // live and after a cold recovery.
  for (const ServerRecord& r : servers) {
    if (!r.accounted) {
      std::fprintf(stderr,
                   "FAIL: %s server leg lost requests (%lld sent, %lld "
                   "results, %lld door sheds, %lld wire errors%s)\n",
                   r.trace.name.c_str(), r.report.requests_sent,
                   r.report.results, r.report.door_sheds,
                   r.report.wire_errors,
                   r.report.timed_out ? ", TIMED OUT" : "");
      ok = false;
    }
  }
  for (const ServerReplayRecord& r : server_replay) {
    if (!r.wire_ok) {
      std::fprintf(stderr,
                   "FAIL: %s served fingerprint diverged from the offline "
                   "replay\n",
                   r.trace.name.c_str());
      ok = false;
    }
    if (!r.recover_ok) {
      std::fprintf(stderr,
                   "FAIL: %s fingerprint recovered from the server journal "
                   "diverged from the offline replay\n",
                   r.trace.name.c_str());
      ok = false;
    }
  }
  // Durability promises of the recovery legs: attaching a journal is
  // invisible to the model, and a service rebuilt from the journal alone
  // is byte-identical to the one it replaces.
  for (const RecoveryRecord& r : recov) {
    if (!r.journal_transparent) {
      std::fprintf(stderr, "FAIL: %s journaled replay diverged from the "
                           "unjournaled run\n",
                   r.trace.name.c_str());
      ok = false;
    }
    if (!r.fingerprint_ok) {
      std::fprintf(stderr,
                   "FAIL: %s recovered fingerprint diverged from the "
                   "journaled run\n",
                   r.trace.name.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr,
               "rtc_bench: %s\n"
               "usage: rtc_bench [--smoke] [--trace FILE] [--policy P] "
               "[--threads T] [--cache-bits N] [--events N] [--ticks K] "
               "[--seed S] [--no-evict] [--queue-limit N] [--deadline T] "
               "[--faults SPEC] [--connections N] [--trace-out trace.json] "
               "[--metrics] [--out PATH] [--json] "
               "[--serve | --connect | --server-smoke] [--port N] "
               "[--port-file F] [--auth-seed S] [--shutdown]\n",
               e.what());
  return 1;
}
