// Reproduces Figure 5: effect of the macro cluster size on the VBS size.
//
// For each cluster size the paper plots the geometric mean of the VBS size
// over the 20 benchmarks with min/max error bars, plus the average
// compression ratio as a percentage of the raw bit-stream. Each circuit is
// placed and routed once (W = 20) and encoded at every cluster size; the
// encoder's feedback loop decode-validates every emitted stream.
#include <cstdio>

#include "bench/bench_common.h"
#include "util/stats.h"
#include "util/table.h"
#include "vbs/encoder.h"

using namespace vbs;

int main() {
  const auto circuits = bench::selected_circuits();
  bench::print_subset_note();
  const FlowOptions opts = bench::paper_flow_options();
  // {3,5} add little shape information and a lot of encode time on a
  // single-core host; REPRO_ALL_CLUSTERS=1 restores the full sweep.
  std::vector<int> cluster_sizes{1, 2, 4, 8, 10};
  if (const char* all = std::getenv("REPRO_ALL_CLUSTERS"); all && all[0] == '1') {
    cluster_sizes = {1, 2, 3, 4, 5, 8, 10};
  }

  std::printf("Figure 5: effect of macro cluster size on the VBS size (W = 20)\n");
  std::printf(
      "Paper: ratio drops from 41%% (c=1) to 9-15%% for c>=2, with\n"
      "diminishing returns (or worse) at large sizes.\n\n");

  // sizes[ci][circuit] = VBS bits; ratios likewise relative to raw.
  std::vector<Summary> size_stats(cluster_sizes.size());
  std::vector<Summary> ratio_stats(cluster_sizes.size());
  std::vector<Summary> raw_entry_stats(cluster_sizes.size());

  for (const McncCircuit& c : circuits) {
    FlowResult r = run_mcnc_flow(c, opts);
    if (!r.routed()) {
      std::printf("# %s unroutable at W=20, skipped\n", c.name.c_str());
      continue;
    }
    std::printf("# %s:", c.name.c_str());
    for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
      EncodeOptions eo;
      eo.cluster = cluster_sizes[ci];
      EncodeStats stats;
      encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                 r.routing.routes, eo, &stats);
      size_stats[ci].add(static_cast<double>(stats.vbs_bits));
      ratio_stats[ci].add(stats.compression_ratio());
      raw_entry_stats[ci].add(stats.entries > 0
                                  ? 1.0 + static_cast<double>(stats.raw_entries)
                                  : 1.0);
      std::printf(" c%d=%.1f%%", cluster_sizes[ci],
                  100.0 * stats.compression_ratio());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n");
  TablePrinter table({"cluster", "geomean VBS (bits)", "min (bits)",
                      "max (bits)", "avg ratio", "factor"});
  for (std::size_t ci = 0; ci < cluster_sizes.size(); ++ci) {
    if (size_stats[ci].count() == 0) continue;
    table.add_row(
        {TablePrinter::fmt_int(cluster_sizes[ci]),
         TablePrinter::fmt_bits(
             static_cast<unsigned long long>(size_stats[ci].geomean())),
         TablePrinter::fmt_bits(
             static_cast<unsigned long long>(size_stats[ci].min())),
         TablePrinter::fmt_bits(
             static_cast<unsigned long long>(size_stats[ci].max())),
         TablePrinter::fmt(100.0 * ratio_stats[ci].mean(), 1) + "%",
         TablePrinter::fmt(1.0 / ratio_stats[ci].mean(), 2) + "x"});
  }
  table.print();
  if (ratio_stats.front().count() > 0) {
    std::printf("\nc=1 -> c=2 compression gain: %.2fx (paper: ~4x)\n",
                ratio_stats[0].mean() / ratio_stats[1].mean());
  }
  return 0;
}
