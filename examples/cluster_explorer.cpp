// Cluster-size explorer: the paper's Fig. 5 trade-off on a single circuit,
// with the decode cost made visible.
//
// Coarser clusters pool more routing into one black box: the stream
// shrinks (fewer, larger entries; cross-macro routes collapse into single
// connections) but the online de-virtualizer has to re-route more per
// entry. Usage:
//
//   ./build/examples/cluster_explorer [mcnc-name] [seed]
//
// Default circuit: ex5p (740 LBs on a 28x28 array).
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "flow/flow.h"
#include "util/table.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

using namespace vbs;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "ex5p";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  FlowOptions opts;
  opts.arch.chan_width = 20;  // the paper's normalized width
  opts.seed = seed;
  std::printf("placing and routing %s (W=20)...\n", name.c_str());
  FlowResult flow = run_mcnc_flow(mcnc_by_name(name), opts);
  if (!flow.routed()) {
    std::printf("unroutable at W=20\n");
    return 1;
  }

  TablePrinter table({"cluster", "entries", "connections", "VBS (bits)",
                      "VBS/BS", "encode (s)", "decode (s)", "decode Mb/s"});
  const std::size_t raw_bits =
      raw_size_bits(opts.arch, flow.fabric->width(), flow.fabric->height());

  for (const int c : {1, 2, 3, 4, 5, 8, 10}) {
    EncodeOptions eo;
    eo.cluster = c;
    EncodeStats stats;
    const auto e0 = std::chrono::steady_clock::now();
    const VbsImage img =
        encode_vbs(*flow.fabric, flow.netlist, flow.packed, flow.placement,
                   flow.routing.routes, eo, &stats);
    const auto e1 = std::chrono::steady_clock::now();
    const BitVector decoded = devirtualize_image(img, *flow.fabric, {0, 0});
    const auto e2 = std::chrono::steady_clock::now();

    const double enc_s = std::chrono::duration<double>(e1 - e0).count();
    const double dec_s = std::chrono::duration<double>(e2 - e1).count();
    table.add_row({TablePrinter::fmt_int(c),
                   TablePrinter::fmt_int(stats.entries),
                   TablePrinter::fmt_int(stats.connections),
                   TablePrinter::fmt_bits(stats.vbs_bits),
                   TablePrinter::fmt(100.0 * stats.compression_ratio(), 1) + "%",
                   TablePrinter::fmt(enc_s, 2), TablePrinter::fmt(dec_s, 2),
                   TablePrinter::fmt(static_cast<double>(raw_bits) / 1e6 / dec_s,
                                     1)});
    std::fflush(stdout);
  }
  std::printf("raw bit-stream: %zu bits\n\n", raw_bits);
  table.print();
  std::printf(
      "\nReading the table: size falls as clusters grow while decode time\n"
      "rises — the compression/runtime trade-off of paper Section IV-B.\n");
  return 0;
}
