// Relocation demo: one Virtual Bit-Stream, many physical locations.
//
// This is the capability the VBS exists for (paper Sections I and V): a
// conventional bit-stream encodes absolute switch addresses and is tied to
// one position, while a VBS describes the task abstractly and the runtime
// controller finalizes it wherever free fabric is available — including
// migrating a running task.
//
// Build & run:  ./build/examples/relocation
#include <cstdio>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/controller.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

/// Extracts the per-tile frames of a task region so two locations can be
/// compared bit for bit.
std::vector<BitVector> region_frames(const ReconfigController& rtc, Rect r) {
  std::vector<BitVector> frames;
  const int nraw = rtc.fabric().spec().nraw_bits();
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      const std::size_t base =
          rtc.fabric().macro_config_offset(rtc.fabric().macro_index(x, y));
      frames.push_back(rtc.config_memory().slice(
          base, base + static_cast<std::size_t>(nraw)));
    }
  }
  return frames;
}

}  // namespace

int main() {
  // A 6x6 hardware task.
  GenParams gp;
  gp.n_lut = 30;
  gp.n_pi = 4;
  gp.n_po = 4;
  gp.seed = 99;
  FlowOptions opts;
  opts.arch.chan_width = 8;
  FlowResult flow = run_flow(generate_netlist(gp), 6, 6, opts);
  if (!flow.routed()) return 1;
  const BitVector stream =
      serialize_vbs(encode_vbs(*flow.fabric, flow.netlist, flow.packed,
                               flow.placement, flow.routing.routes));
  std::printf("task: 6x6 macros, VBS %zu bits\n", stream.size());

  // A 20x12 chip managed by the runtime controller.
  ReconfigController rtc(opts.arch, 20, 12);
  std::printf("chip: 20x12 macros, configuration layer %zu bits\n",
              rtc.fabric().config_bits_total());

  // Load the SAME stream at three different origins.
  const TaskId t1 = rtc.load_at(stream, {0, 0});
  const TaskId t2 = rtc.load_at(stream, {7, 3});
  const TaskId t3 = rtc.load_at(stream, {14, 6});
  std::printf("loaded three instances at (0,0), (7,3), (14,6); occupancy %.0f%%\n",
              100.0 * rtc.occupancy());

  const auto f1 = region_frames(rtc, rtc.record(t1).rect);
  const auto f2 = region_frames(rtc, rtc.record(t2).rect);
  const auto f3 = region_frames(rtc, rtc.record(t3).rect);
  std::printf("per-tile frames identical across locations: %s\n",
              (f1 == f2 && f2 == f3) ? "yes" : "NO (bug!)");

  // Migrate the middle instance on the fly (decode at the new origin, then
  // clear the old region; the target may not overlap the source — the
  // controller has no shadow configuration plane).
  rtc.relocate(t2, {0, 6});
  const auto f2b = region_frames(rtc, rtc.record(t2).rect);
  std::printf("after migration to (0,6): frames preserved: %s\n",
              (f2b == f1) ? "yes" : "NO (bug!)");

  // Clean up two instances; the remaining one is untouched.
  rtc.unload(t1);
  rtc.unload(t3);
  std::printf("after unloading two instances: occupancy %.0f%%, tasks %d\n",
              100.0 * rtc.occupancy(), rtc.num_tasks());
  const auto f2c = region_frames(rtc, rtc.record(t2).rect);
  std::printf("survivor intact: %s\n", (f2c == f2b) ? "yes" : "NO (bug!)");
  return (f1 == f2 && f2 == f3 && f2b == f1 && f2c == f2b) ? 0 : 1;
}
