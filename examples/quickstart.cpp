// Quickstart: the whole Virtual Bit-Stream pipeline on a small circuit,
// driven through the stage-graph FlowPipeline API.
//
//   netlist -> pack -> place -> route          (the offline CAD flow, Fig. 3)
//          -> raw bit-stream                   (what a conventional FPGA loads)
//          -> VBS encode -> serialize          (what the paper stores instead)
//          -> deserialize -> de-virtualize     (what the runtime controller does)
//          -> electrical verification          (decoded config == netlist)
//
// Each stage is a first-class, observable step: the observer below prints
// per-stage wall times, and the same pipeline object could checkpoint any
// prefix to disk (save_checkpoint) or re-route the frozen placement
// (rerun_from) — see src/flow/README.md.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/pipeline.h"
#include "netlist/generator.h"
#include "netlist/netlist_io.h"
#include "vbs/devirtualizer.h"
#include "vbs/encoder.h"

using namespace vbs;

int main() {
  // A hand-written 4-bit circuit in the .netl text format: two stages of
  // LUTs behind four inputs. Any technology-mapped K<=6 netlist works.
  const char* text =
      "circuit quickstart\n"
      "input a\n"
      "input b\n"
      "input c\n"
      "input d\n"
      "lut and_ab   8888888888888888 0 n_ab a b\n"    // a & b
      "lut xor_cd   6666666666666666 0 n_cd c d\n"    // c ^ d
      "lut mix      96969696aaaaaaaa 1 n_mix n_ab n_cd a\n"
      "lut carry    e8e8e8e8e8e8e8e8 0 n_carry n_ab n_cd n_mix\n"
      "output y n_mix\n"
      "output cout n_carry\n";
  Netlist nl = netlist_from_string(text);
  std::printf("netlist: %d LUTs, %d PIs, %d POs, %d nets\n", nl.num_luts(),
              nl.num_inputs(), nl.num_outputs(), nl.num_nets());

  // Offline flow on a 3x3 task with an 8-track channel, one stage at a
  // time; the observer reports each stage as it completes.
  FlowOptions opts;
  opts.arch.chan_width = 8;
  FlowPipeline pipe(std::move(nl), 3, 3, opts);
  pipe.add_observer([](const FlowPipeline&, const StageReport& r) {
    std::printf("  stage %-6s: %.4f s\n", stage_name(r.stage), r.seconds);
  });
  pipe.run_to(Stage::kRoute);
  if (!pipe.routing().success) {
    std::printf("routing failed (should not happen for this circuit)\n");
    return 1;
  }
  std::printf("placed and routed on a 3x3 fabric, W=%d, %d router iterations\n",
              opts.arch.chan_width, pipe.routing().iterations);

  // The conventional raw configuration.
  const BitVector raw = generate_raw_bitstream(
      pipe.fabric(), pipe.netlist(), pipe.packed(), pipe.placement(),
      pipe.routing().routes);
  std::printf("raw bit-stream      : %zu bits (%d bits/macro * 9 macros)\n",
              raw.size(), opts.arch.nraw_bits());

  // The Virtual Bit-Stream: the pipeline's encode stage.
  const BitVector& stream = pipe.vbs_stream();
  const EncodeStats& stats = pipe.encode_stats();
  std::printf("virtual bit-stream  : %zu bits (%.1f%% of raw, %.2fx smaller)\n",
              stream.size(), 100.0 * stats.compression_ratio(),
              1.0 / stats.compression_ratio());
  std::printf("  %d macro entries, %lld connections, %d raw-coded\n",
              stats.entries, stats.connections, stats.raw_entries);

  // What the runtime controller does: decode the stream back into a full
  // configuration image.
  const BitVector decoded =
      devirtualize_image(deserialize_vbs(stream), pipe.fabric(), {0, 0});

  // Electrical proof: the decoded configuration implements the netlist.
  const std::string verdict = verify_connectivity(
      pipe.fabric(), decoded, pipe.netlist(), pipe.packed(),
      pipe.placement());
  std::printf("decode verification : %s\n", verdict.empty() ? "ok" : verdict.c_str());
  return verdict.empty() ? 0 : 1;
}
