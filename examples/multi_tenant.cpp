// Multi-tenant scenario: the run-time management the paper motivates —
// "multiple applications on the same reconfigurable fabric at the same
// time" (Section I).
//
// A stream of task arrivals and departures hits one chip: the controller
// places each task's VBS wherever it fits, evicts finished ones, and
// defragments when external fragmentation blocks an arrival.
//
// Build & run:  ./build/examples/multi_tenant
#include <cstdio>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/controller.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

BitVector make_task(int n_lut, int grid, std::uint64_t seed,
                    const ArchSpec& arch) {
  GenParams gp;
  gp.n_lut = n_lut;
  gp.n_pi = 3;
  gp.n_po = 3;
  gp.seed = seed;
  FlowOptions opts;
  opts.arch = arch;
  opts.seed = seed;
  FlowResult flow = run_flow(generate_netlist(gp), grid, grid, opts);
  if (!flow.routed()) throw std::runtime_error("task unroutable");
  EncodeOptions eo;
  eo.cluster = 2;  // coarser coding: smaller streams in external memory
  return serialize_vbs(encode_vbs(*flow.fabric, flow.netlist, flow.packed,
                                  flow.placement, flow.routing.routes, eo));
}

}  // namespace

int main() {
  ArchSpec arch;
  arch.chan_width = 8;

  // Offline: a small library of hardware tasks of different footprints.
  std::printf("building task library (offline flow)...\n");
  struct TaskKind {
    const char* name;
    int grid;
    BitVector stream;
  };
  std::vector<TaskKind> kinds;
  kinds.push_back({"fir4  (4x4)", 4, make_task(13, 4, 1001, arch)});
  kinds.push_back({"crc   (5x5)", 5, make_task(21, 5, 1002, arch)});
  kinds.push_back({"aes   (6x6)", 6, make_task(31, 6, 1003, arch)});
  for (const TaskKind& k : kinds) {
    std::printf("  %s  VBS %6zu bits (raw would be %zu)\n", k.name,
                k.stream.size(),
                raw_size_bits(arch, k.grid, k.grid));
  }

  // Online: one 14x10 chip.
  ReconfigController rtc(arch, 14, 10);
  std::printf("\nchip 14x10, %zu-bit configuration layer\n",
              rtc.fabric().config_bits_total());

  auto show = [&](const char* when) {
    std::printf("%-28s tasks=%d occupancy=%4.0f%%  regions:", when,
                rtc.num_tasks(), 100.0 * rtc.occupancy());
    for (const TaskId id : rtc.task_ids()) {
      std::printf(" %s", to_string(rtc.record(id).rect).c_str());
    }
    std::printf("\n");
  };

  // Arrivals until the first rejection.
  std::vector<TaskId> loaded;
  const int sequence[] = {2, 1, 0, 1, 0, 2};
  for (const int k : sequence) {
    const TaskId id = rtc.load(kinds[static_cast<std::size_t>(k)].stream, 2);
    if (id == kNoTask) {
      std::printf("  -> %s rejected (no contiguous free rectangle)\n",
                  kinds[static_cast<std::size_t>(k)].name);
      continue;
    }
    loaded.push_back(id);
  }
  show("after arrival burst:");

  // Departures create fragmentation: the survivors sit at opposite corners.
  rtc.unload(loaded[1]);
  rtc.unload(loaded[2]);
  show("after two departures:");

  // A big task does not fit although total free area suffices...
  const auto slot = rtc.find_free_slot(6, 6);
  std::printf("6x6 arrival fits? %s\n", slot ? "yes" : "no (fragmented)");

  // ...until the controller defragments by migrating tasks (each move is a
  // decode of the retained VBS at a new origin).
  rtc.defragment(2);
  show("after defragmentation:");
  const auto slot2 = rtc.find_free_slot(6, 6);
  std::printf("6x6 arrival fits now? %s\n", slot2 ? "yes" : "no");
  if (slot2) {
    rtc.load(kinds[2].stream, 2);
    show("after loading the 6x6:");
  }

  // Decode statistics accumulated by the controller.
  const DecodeStats& ds = rtc.total_decode_stats();
  std::printf(
      "\ncontroller decode totals: %lld regions (%lld raw-coded), %lld "
      "connections routed, %lld nodes expanded\n",
      ds.entries_decoded, ds.raw_entries, ds.pairs_routed, ds.nodes_expanded);
  return 0;
}
