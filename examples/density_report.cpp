// Density report: quantifies the paper's Fig. 4 observation that "the VBS
// coding is especially efficient in sparse macros ... whereas congested
// locations see little to no enhancement over the bit-stream size".
//
// For one circuit it prints the routing-density histogram and the
// correlation between a macro's switch usage and the size of its VBS
// record (relative to the constant raw frame).
//
// Usage:  ./build/examples/density_report [mcnc-name] [seed]
#include <cstdio>

#include "flow/flow.h"
#include "route/routing_stats.h"
#include "util/bitio.h"
#include "util/table.h"
#include "vbs/encoder.h"
#include "vbs/region_model.h"

using namespace vbs;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "tseng";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  FlowOptions opts;
  opts.arch.chan_width = 20;
  opts.seed = seed;
  std::printf("placing and routing %s (W=20)...\n", name.c_str());
  FlowResult r = run_mcnc_flow(mcnc_by_name(name), opts);
  if (!r.routed()) return 1;

  const RoutingStats st = compute_routing_stats(*r.fabric, r.routing.routes);
  std::printf("macros: %d (%d carry no routing)\n", r.fabric->num_macros(),
              st.empty_macros());
  std::printf("switch utilization: %.2f%% of all routing switches ON "
              "(mean %.1f, max %d of %d per macro)\n",
              100.0 * st.switch_utilization, st.mean_switches(),
              st.max_switches(), r.fabric->spec().nroute_bits());

  // Histogram of per-macro switch usage.
  const int buckets = 8;
  const int width = std::max(1, (st.max_switches() + buckets) / buckets);
  std::vector<int> hist(static_cast<std::size_t>(buckets), 0);
  for (const int s : st.switches_per_macro) {
    ++hist[std::min<std::size_t>(static_cast<std::size_t>(s / width),
                                 static_cast<std::size_t>(buckets - 1))];
  }
  std::printf("\nper-macro ON-switch histogram:\n");
  for (int b = 0; b < buckets; ++b) {
    std::printf("  %3d-%3d: %5d ", b * width, (b + 1) * width - 1,
                hist[static_cast<std::size_t>(b)]);
    for (int k = 0; k < hist[static_cast<std::size_t>(b)] * 60 /
                            std::max(1, r.fabric->num_macros());
         ++k) {
      std::fputc('#', stdout);
    }
    std::fputc('\n', stdout);
  }

  // Per-macro VBS record size vs density: encode at the finest grain and
  // price each entry like the serializer does.
  const VbsImage img = encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, {});
  const RegionModel region(img.spec, 1);
  const unsigned m_bits = region.port_field_bits();
  const unsigned rc_bits = region.route_count_bits();
  std::vector<double> density, record_bits;
  for (const VbsEntry& e : img.entries) {
    const int m = r.fabric->macro_index(e.cx, e.cy);
    density.push_back(st.switches_per_macro[static_cast<std::size_t>(m)]);
    record_bits.push_back(
        e.raw ? static_cast<double>(r.fabric->spec().nroute_bits())
              : static_cast<double>(rc_bits + e.conns.size() * 2 * m_bits));
  }
  std::printf(
      "\nper-macro record size vs switch density: r = %.3f over %zu "
      "occupied macros\n",
      pearson(density, record_bits), density.size());
  std::printf(
      "(strongly positive: dense macros need long connection lists — the\n"
      " paper's 'congested locations see little to no enhancement')\n");
  return 0;
}
