// Reconfiguration-service scenario: the multi-tenant example one level up
// from examples/multi_tenant.cpp — instead of driving the controller
// synchronously, tenants enqueue requests and the service batches the
// devirtualization, serves repeated loads from the decoded-stream cache,
// and evicts the least-valuable task when a load does not fit.
//
// Build & run:  ./build/reconfig_service
#include <cstdio>
#include <vector>

#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/service/service.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

BitVector make_task(int n_lut, int grid, std::uint64_t seed,
                    const ArchSpec& arch) {
  GenParams gp;
  gp.n_lut = n_lut;
  gp.n_pi = 3;
  gp.n_po = 3;
  gp.seed = seed;
  FlowOptions opts;
  opts.arch = arch;
  opts.seed = seed;
  FlowResult flow = run_flow(generate_netlist(gp), grid, grid, opts);
  if (!flow.routed()) throw std::runtime_error("task unroutable");
  EncodeOptions eo;
  eo.cluster = 2;
  return serialize_vbs(encode_vbs(*flow.fabric, flow.netlist, flow.packed,
                                  flow.placement, flow.routing.routes, eo));
}

}  // namespace

int main() {
  ArchSpec arch;
  arch.chan_width = 8;

  std::printf("building task library (offline flow)...\n");
  const BitVector fir = make_task(13, 4, 2001, arch);   // 4x4
  const BitVector crc = make_task(21, 5, 2002, arch);   // 5x5
  const BitVector aes = make_task(31, 6, 2003, arch);   // 6x6

  ServiceOptions opts;
  opts.threads = 2;
  opts.policy = "best_fit";
  ReconfigService svc(arch, 12, 8, opts);
  std::printf("service on a 12x8 chip, policy=best_fit, threads=%d\n\n",
              opts.threads);

  // A burst of tenants arrives; the four loads decode as one batch and the
  // repeated fir/crc streams hit the decoded-stream cache.
  std::vector<RequestId> reqs;
  reqs.push_back(svc.submit_load(fir));
  reqs.push_back(svc.submit_load(crc));
  reqs.push_back(svc.submit_load(fir));  // same content: warm load
  reqs.push_back(svc.submit_load(crc));  // same content: warm load
  auto show = [&](const std::vector<RequestResult>& results) {
    for (const RequestResult& r : results) {
      std::printf("  req %lld %-8s %-8s task=%d %s%s%s\n", r.request,
                  r.kind == RequestKind::kLoad       ? "load"
                  : r.kind == RequestKind::kUnload   ? "unload"
                                                     : "relocate",
                  to_string(r.status), r.task, to_string(r.rect).c_str(),
                  r.cache_hit ? " [cache hit]" : "",
                  r.evicted_tasks > 0 ? " [evicted victims]" : "");
    }
  };
  std::printf("arrival burst (4 loads, one decode batch):\n");
  show(svc.drain());

  // The fabric is crowded; a 6x6 arrival forces the eviction planner to
  // clear the cheapest region (the least-recently-used overlap).
  std::printf("\n6x6 arrival under pressure (evict-to-fit):\n");
  svc.submit_load(aes);
  show(svc.drain());

  // A departure frees a corner; the relocation that follows copies cached
  // payloads instead of re-routing, and the returning tenant's load is a
  // pure cache hit across drains.
  std::printf("\ndeparture, cached relocation, returning tenant:\n");
  svc.submit_unload(reqs[0]);
  svc.submit_relocate(reqs[2]);
  svc.submit_load(fir);
  show(svc.drain());

  const ServiceStats& st = svc.stats();
  std::printf(
      "\nservice totals: %lld loads (%lld warm / %lld cold), %lld unloads, "
      "%lld relocates (%lld from cache), %lld task evictions\n",
      st.loads, st.warm_loads, st.cold_loads, st.unloads, st.relocates,
      st.relocates_cached, st.task_evictions);
  std::printf(
      "decoded-stream cache: %lld hits / %lld misses, %zu entries, %zu bits\n",
      svc.cache().hits(), svc.cache().misses(), svc.cache().entries(),
      svc.cache().size_bits());
  std::printf("decode performed: %lld connections, %lld node expansions\n",
              svc.stats().decode.pairs_routed,
              svc.stats().decode.nodes_expanded);
  std::printf("occupancy %.0f%%, fragmentation %.2f, eviction log: %zu\n",
              100.0 * svc.controller().occupancy(), svc.fragmentation(),
              svc.eviction_log().size());
  for (const EvictionEvent& ev : svc.eviction_log()) {
    std::printf("  evicted task %d at %s (caused by request %lld)\n", ev.task,
                to_string(ev.rect).c_str(), ev.cause);
  }
  return 0;
}
