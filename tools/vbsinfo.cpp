// vbsinfo — inspects a .vbs stream: header fields, per-entry statistics,
// field-width accounting and a size breakdown. Useful for debugging
// streams and for understanding where the bits go.
//
// Usage:  vbsinfo <task.vbs> [--entries] [--json]
//
// --json replaces the human-readable report with a single JSON object
// (stable keys, suitable for traces and CI scripting); --entries adds the
// per-entry table / array in either mode.
#include <cstdio>

#include "util/bitio.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/table.h"
#include "vbs/region_model.h"
#include "vbs/vbs_file.h"
#include "vbs/vbs_format.h"

using namespace vbs;

namespace {

struct StreamSummary {
  std::size_t conns = 0, raw_entries = 0, logic_used = 0, max_conns = 0;
  std::size_t logic_bits = 0, conn_bits = 0, raw_payload_bits = 0;
};

StreamSummary summarize(const VbsImage& img, const RegionModel& region) {
  StreamSummary s;
  for (const VbsEntry& e : img.entries) {
    s.conns += e.conns.size();
    s.max_conns = std::max(s.max_conns, e.conns.size());
    s.raw_entries += e.raw;
    for (const LogicConfig& lc : e.logic) s.logic_used += lc.used;
  }
  s.logic_bits =
      s.logic_used * static_cast<std::size_t>(img.spec.nlb_bits());
  s.conn_bits = s.conns * 2 * region.port_field_bits();
  s.raw_payload_bits = s.raw_entries * static_cast<std::size_t>(img.cluster) *
                       img.cluster *
                       static_cast<std::size_t>(img.spec.nroute_bits());
  return s;
}

std::size_t entry_used_lbs(const VbsEntry& e) {
  std::size_t used = 0;
  for (const LogicConfig& lc : e.logic) used += lc.used;
  return used;
}

void print_json(const BitVector& stream, const VbsImage& img,
                const RegionModel& region, const StreamSummary& s,
                bool with_entries) {
  const ArchSpec& spec = img.spec;
  const std::size_t raw_bits = raw_size_bits(spec, img.task_w, img.task_h);
  std::printf("{\n");
  std::printf("  \"stream_bits\": %zu,\n", stream.size());
  std::printf("  \"stream_bytes\": %zu,\n", (stream.size() + 7) / 8);
  std::printf(
      "  \"arch\": {\"chan_width\": %d, \"lut_k\": %d, \"sb_pattern\": "
      "\"%s\"},\n",
      spec.chan_width, spec.lut_k,
      spec.sb_pattern == SbPattern::kWilton ? "wilton" : "disjoint");
  std::printf(
      "  \"task\": {\"w\": %d, \"h\": %d, \"cluster\": %d, \"grid_w\": %d, "
      "\"grid_h\": %d},\n",
      img.task_w, img.task_h, img.cluster, img.cluster_grid_w(),
      img.cluster_grid_h());
  std::printf(
      "  \"field_bits\": {\"endpoint\": %u, \"route_count\": %u},\n",
      region.port_field_bits(), region.route_count_bits());
  std::printf(
      "  \"raw\": {\"bits\": %zu, \"bits_per_macro\": %d, \"ratio\": "
      "%.4f},\n",
      raw_bits, spec.nraw_bits(),
      static_cast<double>(stream.size()) / static_cast<double>(raw_bits));
  std::printf(
      "  \"entries\": {\"count\": %zu, \"raw_coded\": %zu, \"used_lbs\": "
      "%zu},\n",
      img.entries.size(), s.raw_entries, s.logic_used);
  std::printf(
      "  \"connections\": {\"total\": %zu, \"max_per_entry\": %zu},\n",
      s.conns, s.max_conns);
  std::printf(
      "  \"size_breakdown\": {\"logic\": %zu, \"connections\": %zu, "
      "\"raw_payload\": %zu, \"framing\": %zu},\n",
      s.logic_bits, s.conn_bits, s.raw_payload_bits,
      stream.size() - s.logic_bits - s.conn_bits - s.raw_payload_bits);
  std::printf("  \"build\": %s,\n", build_info_json(2).c_str());
  std::printf("  \"metrics\": %s%s\n",
              telem::snapshot().to_json(2).c_str(), with_entries ? "," : "");
  if (with_entries) {
    std::printf("  \"entry_list\": [\n");
    for (std::size_t i = 0; i < img.entries.size(); ++i) {
      const VbsEntry& e = img.entries[i];
      std::printf(
          "    {\"cx\": %u, \"cy\": %u, \"coding\": \"%s\", \"used_lbs\": "
          "%zu, \"conns\": %zu}%s\n",
          e.cx, e.cy, e.raw ? "raw" : "list", entry_used_lbs(e),
          e.conns.size(), i + 1 < img.entries.size() ? "," : "");
    }
    std::printf("  ]\n");
  }
  std::printf("}\n");
}

void print_text(const BitVector& stream, const VbsImage& img,
                const RegionModel& region, const StreamSummary& s,
                bool with_entries) {
  const ArchSpec& spec = img.spec;
  std::printf("stream           : %zu bits (%zu bytes on disk)\n",
              stream.size(), (stream.size() + 7) / 8);
  std::printf("architecture     : W=%d, K=%d, %s switch boxes\n",
              spec.chan_width, spec.lut_k,
              spec.sb_pattern == SbPattern::kWilton ? "wilton" : "disjoint");
  std::printf("task             : %dx%d macros, cluster size %d (%dx%d grid)\n",
              img.task_w, img.task_h, img.cluster, img.cluster_grid_w(),
              img.cluster_grid_h());
  std::printf("field widths     : M=%u bits/endpoint, route count %u bits\n",
              region.port_field_bits(), region.route_count_bits());
  std::printf("raw equivalent   : %zu bits (%d bits/macro) -> ratio %.1f%%\n",
              raw_size_bits(spec, img.task_w, img.task_h), spec.nraw_bits(),
              100.0 * static_cast<double>(stream.size()) /
                  static_cast<double>(
                      raw_size_bits(spec, img.task_w, img.task_h)));
  std::printf("entries          : %zu (%zu raw-coded), %zu used LBs\n",
              img.entries.size(), s.raw_entries, s.logic_used);
  std::printf("connections      : %zu total, %zu max per entry\n", s.conns,
              s.max_conns);
  std::printf("size breakdown   : logic %zu, connections %zu, raw payload "
              "%zu, framing %zu bits\n",
              s.logic_bits, s.conn_bits, s.raw_payload_bits,
              stream.size() - s.logic_bits - s.conn_bits -
                  s.raw_payload_bits);
  if (with_entries) {
    TablePrinter table({"cx", "cy", "coding", "used LBs", "conns"});
    for (const VbsEntry& e : img.entries) {
      table.add_row({TablePrinter::fmt_int(e.cx), TablePrinter::fmt_int(e.cy),
                     e.raw ? "raw" : "list",
                     TablePrinter::fmt_int(
                         static_cast<long long>(entry_used_lbs(e))),
                     TablePrinter::fmt_int(
                         static_cast<long long>(e.conns.size()))});
    }
    table.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  constexpr const char* kUsage = "vbsinfo <task.vbs> [--entries] [--json]";
  return tool_main("vbsinfo", kUsage, [&] {
    const CliArgs args(argc, argv, {}, {"--entries", "--json", "--help"});
    if (args.has_flag("--help") || args.positional().size() != 1) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    const BitVector stream = read_vbs_file(args.positional()[0]);
    const VbsImage img = deserialize_vbs(stream);
    const RegionModel region(img.spec, img.cluster);
    const StreamSummary summary = summarize(img, region);
    if (args.has_flag("--json")) {
      print_json(stream, img, region, summary, args.has_flag("--entries"));
    } else {
      print_text(stream, img, region, summary, args.has_flag("--entries"));
    }
    return 0;
  });
}
