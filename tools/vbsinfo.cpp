// vbsinfo — inspects a .vbs stream: header fields, per-entry statistics,
// field-width accounting and a size breakdown. Useful for debugging
// streams and for understanding where the bits go.
//
// Usage:  vbsinfo <task.vbs> [--entries]
#include <cstdio>

#include "util/bitio.h"
#include "util/cli.h"
#include "util/table.h"
#include "vbs/region_model.h"
#include "vbs/vbs_file.h"
#include "vbs/vbs_format.h"

using namespace vbs;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {}, {"--entries", "--help"});
    if (args.has_flag("--help") || args.positional().size() != 1) {
      std::fprintf(stderr, "usage: vbsinfo <task.vbs> [--entries]\n");
      return args.has_flag("--help") ? 0 : 1;
    }
    const BitVector stream = read_vbs_file(args.positional()[0]);
    const VbsImage img = deserialize_vbs(stream);
    const ArchSpec& s = img.spec;
    const RegionModel region(s, img.cluster);

    std::printf("stream           : %zu bits (%zu bytes on disk)\n",
                stream.size(), (stream.size() + 7) / 8);
    std::printf("architecture     : W=%d, K=%d, %s switch boxes\n",
                s.chan_width, s.lut_k,
                s.sb_pattern == SbPattern::kWilton ? "wilton" : "disjoint");
    std::printf("task             : %dx%d macros, cluster size %d (%dx%d grid)\n",
                img.task_w, img.task_h, img.cluster, img.cluster_grid_w(),
                img.cluster_grid_h());
    std::printf("field widths     : M=%u bits/endpoint, route count %u bits\n",
                region.port_field_bits(), region.route_count_bits());
    std::printf("raw equivalent   : %zu bits (%d bits/macro) -> ratio %.1f%%\n",
                raw_size_bits(s, img.task_w, img.task_h), s.nraw_bits(),
                100.0 * static_cast<double>(stream.size()) /
                    static_cast<double>(raw_size_bits(s, img.task_w, img.task_h)));

    std::size_t conns = 0, raw_entries = 0, logic_used = 0;
    std::size_t max_conns = 0;
    for (const VbsEntry& e : img.entries) {
      conns += e.conns.size();
      max_conns = std::max(max_conns, e.conns.size());
      raw_entries += e.raw;
      for (const LogicConfig& lc : e.logic) logic_used += lc.used;
    }
    std::printf("entries          : %zu (%zu raw-coded), %zu used LBs\n",
                img.entries.size(), raw_entries, logic_used);
    std::printf("connections      : %zu total, %zu max per entry\n", conns,
                max_conns);

    // Size breakdown.
    const std::size_t logic_bits =
        logic_used * static_cast<std::size_t>(s.nlb_bits());
    const std::size_t conn_bits = conns * 2 * region.port_field_bits();
    const std::size_t raw_payload_bits =
        raw_entries * static_cast<std::size_t>(img.cluster) * img.cluster *
        static_cast<std::size_t>(s.nroute_bits());
    std::printf("size breakdown   : logic %zu, connections %zu, raw payload "
                "%zu, framing %zu bits\n",
                logic_bits, conn_bits, raw_payload_bits,
                stream.size() - logic_bits - conn_bits - raw_payload_bits);

    if (args.has_flag("--entries")) {
      TablePrinter table({"cx", "cy", "coding", "used LBs", "conns"});
      for (const VbsEntry& e : img.entries) {
        std::size_t used = 0;
        for (const LogicConfig& lc : e.logic) used += lc.used;
        table.add_row({TablePrinter::fmt_int(e.cx),
                       TablePrinter::fmt_int(e.cy), e.raw ? "raw" : "list",
                       TablePrinter::fmt_int(static_cast<long long>(used)),
                       TablePrinter::fmt_int(
                           static_cast<long long>(e.conns.size()))});
      }
      table.print();
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "vbsinfo: %s\n", ex.what());
    return 1;
  }
}
