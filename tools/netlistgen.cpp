// netlistgen — generates synthetic technology-mapped netlists in the .netl
// format, either free-form or calibrated to one of the paper's Table II
// MCNC circuits. Feeds vbsgen.
//
// Usage:
//   netlistgen --out circuit.netl [--luts N] [--pis N] [--pos N]
//              [--p-local F] [--seed S] [--mcnc name]
#include <cstdio>

#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "netlist/netlist_io.h"
#include "util/cli.h"

using namespace vbs;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"--out", "--luts", "--pis", "--pos", "--p-local",
                        "--seed", "--mcnc"},
                       {"--help"});
    if (args.has_flag("--help") || !args.value("--out")) {
      std::fprintf(stderr,
                   "usage: netlistgen --out circuit.netl [--luts N] [--pis N] "
                   "[--pos N] [--p-local F] [--seed S] [--mcnc name]\n");
      return args.has_flag("--help") ? 0 : 1;
    }
    const auto seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));

    Netlist nl;
    if (const auto name = args.value("--mcnc")) {
      const McncCircuit& c = mcnc_by_name(*name);
      nl = make_mcnc_like(c, seed);
      std::printf("netlistgen: %s stand-in (%d LBs, array %dx%d, paper MCW %d)\n",
                  c.name.c_str(), c.lbs, c.size, c.size, c.mcw);
    } else {
      GenParams p;
      p.n_lut = static_cast<int>(args.int_or("--luts", 100));
      p.n_pi = static_cast<int>(args.int_or("--pis", 8));
      p.n_po = static_cast<int>(args.int_or("--pos", 8));
      p.seed = seed;
      if (const auto pl = args.value("--p-local")) p.p_local = std::stod(*pl);
      nl = generate_netlist(p);
      std::printf("netlistgen: synthetic circuit (%d LUTs, %d PIs, %d POs)\n",
                  p.n_lut, p.n_pi, p.n_po);
    }
    write_netlist_file(args.value_or("--out", ""), nl);
    std::printf("netlistgen: wrote %s\n", args.value_or("--out", "").c_str());
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "netlistgen: %s\n", ex.what());
    return 1;
  }
}
