// netlistgen — generates synthetic technology-mapped netlists in the .netl
// format, either free-form or calibrated to one of the paper's Table II
// MCNC circuits. Feeds vbsgen.
//
// Usage:
//   netlistgen --out circuit.netl [--luts N] [--pis N] [--pos N]
//              [--p-local F] [--seed S] [--mcnc name] [--synth rent:P]
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "netlist/generator.h"
#include "netlist/mcnc.h"
#include "netlist/netlist_io.h"
#include "util/cli.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "netlistgen --out circuit.netl [--luts N] [--pis N] [--pos N] "
    "[--p-local F] [--seed S] [--mcnc name] [--synth rent:P]";

/// Parses a `--synth` family spec. The only family so far is
/// `rent:<p>` — a Rent exponent in (0, 1) that drives the generator's
/// locality knobs via apply_rent_exponent().
double parse_synth_rent(const std::string& spec) {
  constexpr const char* kPrefix = "rent:";
  if (spec.rfind(kPrefix, 0) != 0) {
    throw std::invalid_argument("unknown --synth family '" + spec +
                                "' (expected rent:<p>)");
  }
  const std::string num = spec.substr(5);
  char* end = nullptr;
  const double r = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || *end != '\0' || !(r > 0.0) || !(r < 1.0)) {
    throw std::invalid_argument("bad Rent exponent '" + num +
                                "' (expected 0 < p < 1)");
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  return tool_main("netlistgen", kUsage, [&] {
    const CliArgs args(argc, argv,
                       {"--out", "--luts", "--pis", "--pos", "--p-local",
                        "--seed", "--mcnc", "--synth"},
                       {"--help"});
    if (args.has_flag("--help") || !args.value("--out")) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    const std::uint64_t seed = seed_or(args);

    Netlist nl;
    if (const auto name = args.value("--mcnc")) {
      const McncCircuit& c = mcnc_by_name(*name);
      nl = make_mcnc_like(c, seed);
      std::printf(
          "netlistgen: %s stand-in (%d LBs, array %dx%d, paper MCW %d)\n",
          c.name.c_str(), c.lbs, c.size, c.size, c.mcw);
    } else {
      GenParams p;
      p.n_lut = static_cast<int>(args.int_or("--luts", 100));
      p.n_pi = static_cast<int>(args.int_or("--pis", 8));
      p.n_po = static_cast<int>(args.int_or("--pos", 8));
      p.seed = seed;
      p.p_local = args.double_or("--p-local", p.p_local);
      if (const auto synth = args.value("--synth")) {
        p.rent_exponent = parse_synth_rent(*synth);
        GenParams effective = p;
        apply_rent_exponent(effective, p.rent_exponent);
        std::printf(
            "netlistgen: rent family p=%.3f -> p_local=%.3f "
            "global_scale_frac=%.3f p_uniform=%.3f\n",
            p.rent_exponent, effective.p_local, effective.global_scale_frac,
            effective.p_uniform);
      }
      nl = generate_netlist(p);
      std::printf("netlistgen: synthetic circuit (%d LUTs, %d PIs, %d POs)\n",
                  p.n_lut, p.n_pi, p.n_po);
    }
    write_netlist_file(args.value_or("--out", ""), nl);
    std::printf("netlistgen: wrote %s\n", args.value_or("--out", "").c_str());
    return 0;
  });
}
