// vbsgen — the Virtual Bit-Stream generation backend as a command-line
// tool (paper Section III-B names the tool; Fig. 3 shows its place in the
// flow): takes a technology-mapped netlist and an architecture
// description, runs pack/place/route, and writes the compressed,
// relocatable stream.
//
// Usage:
//   vbsgen <netlist.netl> --out task.vbs [--arch arch.txt] [--grid N]
//          [--cluster C] [--seed S] [--threads T] [--raw-out raw.bin]
//          [--verbose]
//
// --threads routes with the deterministic parallel engine: the stream is
// byte-identical for every thread count, only wall time changes.
//
// Exit status: 0 on success, 1 on unroutable design or bad input.
#include <cmath>
#include <cstdio>

#include "arch/arch_io.h"
#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/flow.h"
#include "netlist/netlist_io.h"
#include "util/cli.h"
#include "util/logging.h"
#include "vbs/encoder.h"
#include "vbs/vbs_file.h"

using namespace vbs;

int main(int argc, char** argv) {
  try {
    const CliArgs args(
        argc, argv,
        {"--out", "--arch", "--grid", "--cluster", "--seed", "--threads",
         "--raw-out"},
        {"--verbose", "--help"});
    if (args.has_flag("--help") || args.positional().size() != 1 ||
        !args.value("--out")) {
      std::fprintf(stderr,
                   "usage: vbsgen <netlist.netl> --out task.vbs "
                   "[--arch arch.txt] [--grid N] [--cluster C] [--seed S] "
                   "[--threads T] [--raw-out raw.bin] [--verbose]\n");
      return args.has_flag("--help") ? 0 : 1;
    }
    if (args.has_flag("--verbose")) set_log_level(LogLevel::kInfo);

    Netlist nl = read_netlist_file(args.positional()[0]);
    FlowOptions opts;
    if (const auto arch = args.value("--arch")) {
      opts.arch = read_arch_file(*arch);
    }
    opts.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
    opts.threads = static_cast<int>(args.int_or("--threads", 1));
    int grid = static_cast<int>(args.int_or("--grid", -1));
    if (grid < 0) {
      grid = static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(nl.num_luts()) * 1.1)));
      grid = std::max(grid, 2);
    }

    std::printf("vbsgen: %s (%d LUTs, %d PIs, %d POs) on %dx%d, W=%d, K=%d\n",
                nl.name.c_str(), nl.num_luts(), nl.num_inputs(),
                nl.num_outputs(), grid, grid, opts.arch.chan_width,
                opts.arch.lut_k);
    FlowResult flow = run_flow(std::move(nl), grid, grid, opts);
    if (!flow.routed()) {
      std::fprintf(stderr,
                   "vbsgen: routing failed (try a wider channel or a larger "
                   "--grid)\n");
      return 1;
    }

    EncodeOptions eo;
    eo.cluster = static_cast<int>(args.int_or("--cluster", 1));
    EncodeStats stats;
    const VbsImage img =
        encode_vbs(*flow.fabric, flow.netlist, flow.packed, flow.placement,
                   flow.routing.routes, eo, &stats);
    const BitVector stream = serialize_vbs(img);
    write_vbs_file(args.value_or("--out", ""), stream);
    std::printf(
        "vbsgen: wrote %zu bits (%.1f%% of the %zu-bit raw stream, %.2fx)\n",
        stream.size(), 100.0 * stats.compression_ratio(), stats.raw_bits,
        1.0 / stats.compression_ratio());
    std::printf("vbsgen: %d entries (%d raw-coded), %lld connections\n",
                stats.entries, stats.raw_entries, stats.connections);

    if (const auto raw_out = args.value("--raw-out")) {
      const BitVector raw =
          generate_raw_bitstream(*flow.fabric, flow.netlist, flow.packed,
                                 flow.placement, flow.routing.routes);
      write_vbs_file(*raw_out, raw);  // same container, raw payload
      std::printf("vbsgen: wrote raw configuration to %s\n", raw_out->c_str());
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "vbsgen: %s\n", ex.what());
    return 1;
  }
}
