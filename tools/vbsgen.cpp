// vbsgen — the Virtual Bit-Stream generation backend as a command-line
// tool (paper Section III-B names the tool; Fig. 3 shows its place in the
// flow): takes a technology-mapped netlist and an architecture
// description, runs the pack/place/route/encode pipeline, and writes the
// compressed, relocatable stream.
//
// Usage:
//   vbsgen <netlist.netl> --out task.vbs [--arch arch.txt] [--grid N]
//          [--cluster C] [--seed S] [--threads T] [--raw-out raw.bin]
//          [--save-checkpoint DIR] [--trace-out trace.json] [--metrics]
//          [--verbose]
//   vbsgen --from-checkpoint DIR --out task.vbs [--cluster C] [--threads T]
//          [--raw-out raw.bin] [--save-checkpoint DIR]
//          [--trace-out trace.json] [--metrics] [--verbose]
//
// --trace-out writes a Chrome trace-event JSON of the flow stages (open in
// chrome://tracing or Perfetto); --metrics dumps the telemetry counters
// and histograms as JSON to stderr. Neither changes the stream: the
// output is byte-identical with telemetry on or off.
//
// --threads routes with the deterministic parallel engines: the stream is
// byte-identical for every thread count, only wall time changes.
//
// --save-checkpoint persists every completed flow stage (FlowPipeline
// checkpoint directory); --from-checkpoint resumes one and runs only the
// missing stages — resuming a full checkpoint re-emits the identical
// stream without re-running anything, and a changed --cluster re-encodes
// the frozen routing only. --arch/--grid/--seed come from the checkpoint
// and cannot be overridden.
//
// Exit status: 0 on success, 1 on unroutable design or bad input.
#include <cmath>
#include <cstdio>
#include <optional>

#include "arch/arch_io.h"
#include "bitstream/bitstream.h"
#include "bitstream/connectivity.h"
#include "flow/pipeline.h"
#include "netlist/netlist_io.h"
#include "util/cli.h"
#include "util/logging.h"
#include "vbs/encoder.h"
#include "vbs/vbs_file.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "vbsgen <netlist.netl> --out task.vbs [--arch arch.txt] [--grid N] "
    "[--cluster C] [--seed S] [--threads T] [--raw-out raw.bin] "
    "[--save-checkpoint DIR] [--trace-out trace.json] [--metrics] "
    "[--verbose]\n"
    "       vbsgen --from-checkpoint DIR --out task.vbs [--cluster C] "
    "[--threads T] [--raw-out raw.bin] [--save-checkpoint DIR] "
    "[--trace-out trace.json] [--metrics] [--verbose]";

}  // namespace

int main(int argc, char** argv) {
  return tool_main("vbsgen", kUsage, [&] {
    const CliArgs args(
        argc, argv,
        {"--out", "--arch", "--grid", "--cluster", "--seed", "--threads",
         "--raw-out", "--save-checkpoint", "--from-checkpoint",
         "--trace-out"},
        {"--verbose", "--metrics", "--help"});
    const auto from_ckpt = args.value("--from-checkpoint");
    const std::size_t want_positional = from_ckpt ? 0 : 1;
    if (args.has_flag("--help") ||
        args.positional().size() != want_positional || !args.value("--out")) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    if (args.has_flag("--verbose")) set_log_level(LogLevel::kInfo);
    const TelemetryCli telemetry(args);

    std::optional<FlowPipeline> pipe;
    if (from_ckpt) {
      if (args.value("--arch") || args.value("--grid") ||
          args.value("--seed")) {
        throw std::runtime_error(
            "--arch/--grid/--seed are fixed by the checkpoint and cannot be "
            "combined with --from-checkpoint");
      }
      pipe.emplace(FlowPipeline::resume_from(*from_ckpt));
      if (args.value("--threads")) pipe->set_threads(threads_or(args));
      if (args.value("--cluster")) {
        EncodeOptions eo = pipe->encode_options();
        const int cluster = static_cast<int>(args.int_or("--cluster", 1));
        if (cluster != eo.cluster) {
          eo.cluster = cluster;
          pipe->set_encode_options(eo);  // re-encode the frozen routing
        }
      }
      std::string have;
      for (int i = 0; i < kNumStages; ++i) {
        if (pipe->completed(static_cast<Stage>(i))) {
          have += std::string(have.empty() ? "" : " ") +
                  stage_name(static_cast<Stage>(i));
        }
      }
      std::printf("vbsgen: resumed %s (completed: %s)\n", from_ckpt->c_str(),
                  have.empty() ? "nothing" : have.c_str());
    } else {
      Netlist nl = read_netlist_file(args.positional()[0]);
      FlowOptions opts;
      if (const auto arch = args.value("--arch")) {
        opts.arch = read_arch_file(*arch);
      }
      opts.seed = seed_or(args);
      opts.threads = threads_or(args);
      int grid = static_cast<int>(args.int_or("--grid", -1));
      if (grid < 0) {
        grid = static_cast<int>(
            std::ceil(std::sqrt(static_cast<double>(nl.num_luts()) * 1.1)));
        grid = std::max(grid, 2);
      }
      EncodeOptions eo;
      eo.cluster = static_cast<int>(args.int_or("--cluster", 1));
      std::printf(
          "vbsgen: %s (%d LUTs, %d PIs, %d POs) on %dx%d, W=%d, K=%d\n",
          nl.name.c_str(), nl.num_luts(), nl.num_inputs(), nl.num_outputs(),
          grid, grid, opts.arch.chan_width, opts.arch.lut_k);
      pipe.emplace(std::move(nl), grid, grid, opts, eo);
    }

    pipe->run_to(Stage::kRoute);
    if (!pipe->routing().success) {
      std::fprintf(stderr,
                   "vbsgen: routing failed (try a wider channel or a larger "
                   "--grid)\n");
      return 1;
    }

    const BitVector& stream = pipe->vbs_stream();
    const EncodeStats& stats = pipe->encode_stats();
    write_vbs_file(args.value_or("--out", ""), stream);
    std::printf(
        "vbsgen: wrote %zu bits (%.1f%% of the %zu-bit raw stream, %.2fx)\n",
        stream.size(), 100.0 * stats.compression_ratio(), stats.raw_bits,
        1.0 / stats.compression_ratio());
    std::printf("vbsgen: %d entries (%d raw-coded), %lld connections\n",
                stats.entries, stats.raw_entries, stats.connections);

    if (const auto raw_out = args.value("--raw-out")) {
      const BitVector raw = generate_raw_bitstream(
          pipe->fabric(), pipe->netlist(), pipe->packed(), pipe->placement(),
          pipe->routing().routes);
      write_vbs_file(*raw_out, raw);  // same container, raw payload
      std::printf("vbsgen: wrote raw configuration to %s\n",
                  raw_out->c_str());
    }
    if (const auto ckpt = args.value("--save-checkpoint")) {
      pipe->save_checkpoint(*ckpt);
      std::printf("vbsgen: saved checkpoint to %s\n", ckpt->c_str());
    }
    telemetry.finish();
    return 0;
  });
}
