// vbscrash — kill-at-every-site crash harness for the durability layer.
//
// Two legs, both sweeping an injected process death across every I/O
// operation (util/io.h numbers each write/sync/rename/remove performed
// under a FaultPlan with crash=N):
//
//   service leg  a journaled ReconfigService runs a bursty overload trace
//                (with an active model fault plan: decode/alloc/cache
//                faults, shedding, deadlines) and compacts periodically.
//                For each N the run is killed at its Nth I/O op, the dead
//                process's memory is discarded, ReconfigService::recover
//                rebuilds the service from the journal directory alone,
//                the remaining workload resumes from the durable prefix
//                (RecoveryInfo tells how far the journal got), and the
//                final state fingerprint must be byte-identical to the
//                uninterrupted run's. A kill inside the journal-creation
//                window (no durable WAL yet) must recover-by-restart: a
//                fresh journal, the whole workload, the same fingerprint.
//
//   flow leg     a FlowPipeline checkpoint directory holding an older
//                (shallower) generation is re-saved after running deeper,
//                killed at each I/O op of the save. After every kill,
//                resume_from must load a valid checkpoint (atomic artifact
//                replacement: half-written files are never visible), clean
//                up orphaned *.tmp, and re-running to encode must
//                reproduce the reference VBS stream bit for bit.
//
// Everything is a pure function of --seed and --threads. Exit status 0 if
// every kill recovered, 1 with the offending site otherwise.
//
// Usage:
//   vbscrash [--smoke] [--threads T] [--seed S] [--service-only|--flow-only]
//
// --smoke strides the site sweep (every 7th site plus the first and last)
// for the CI build job; the TSan job runs the full service sweep at
// --threads 2.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "flow/pipeline.h"
#include "netlist/generator.h"
#include "rtc/service/service.h"
#include "rtc/service/trace.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/io.h"
#include "vbs/encoder.h"

using namespace vbs;

namespace {

namespace fs = std::filesystem;

constexpr const char* kUsage =
    "vbscrash [--smoke] [--threads T] [--seed S] "
    "[--service-only|--flow-only]";

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("vbscrash_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

ArchSpec bench_arch() {
  ArchSpec arch;
  arch.chan_width = 8;
  return arch;
}

BitVector make_stream(const TraceTaskKind& k, const ArchSpec& arch) {
  GenParams p;
  p.n_lut = k.n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = k.seed;
  FlowOptions o;
  o.arch = arch;
  o.seed = k.seed;
  const FlowResult r = run_flow(generate_netlist(p), k.grid, k.grid, o);
  if (!r.routed()) throw std::runtime_error("vbscrash: task unroutable");
  EncodeOptions eo;
  eo.cluster = k.cluster;
  return serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed, r.placement,
                                  r.routing.routes, eo));
}

// --- the service workload as a resumable op list -----------------------------

struct Op {
  enum Kind { kPriority, kLoad, kUnload, kRelocate, kDrain, kCompact };
  Kind kind = kDrain;
  int tenant = 0;
  int priority = 0;       ///< kPriority
  int stream_idx = -1;    ///< kLoad
  std::size_t ref = 0;    ///< kUnload/kRelocate: index of the load op
  RequestId expected = kNoRequest;  ///< request id, from the reference run
};

/// Flattens a generated trace into the harness's op list: submissions with
/// a drain at every tick boundary and a compaction after every third
/// drain. The op list IS the workload; every run (reference, killed,
/// resumed) executes the same list, so "resume where the journal ends"
/// is an index into it.
std::vector<Op> build_ops(const Trace& trace) {
  std::vector<Op> ops;
  ops.push_back({Op::kPriority, 1, 5, -1, 0, kNoRequest});
  ops.push_back({Op::kPriority, 2, 1, -1, 0, kNoRequest});
  std::vector<std::size_t> op_of_event(trace.events.size(), 0);
  int drains = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& e = trace.events[i];
    Op op;
    op.tenant = e.tenant;
    switch (e.kind) {
      case TraceEvent::Kind::kLoad:
        op.kind = Op::kLoad;
        op.stream_idx = e.task_kind;
        break;
      case TraceEvent::Kind::kUnload:
        op.kind = Op::kUnload;
        op.ref = op_of_event[static_cast<std::size_t>(e.ref)];
        break;
      case TraceEvent::Kind::kRelocate:
        op.kind = Op::kRelocate;
        op.ref = op_of_event[static_cast<std::size_t>(e.ref)];
        break;
    }
    op_of_event[i] = ops.size();
    ops.push_back(op);
    if (i + 1 == trace.events.size() || trace.events[i + 1].tick != e.tick) {
      ops.push_back({Op::kDrain, 0, 0, -1, 0, kNoRequest});
      if (++drains % 3 == 0) {
        ops.push_back({Op::kCompact, 0, 0, -1, 0, kNoRequest});
      }
    }
  }
  return ops;
}

/// Executes ops[from..]. With fill_expected, records returned request ids
/// into the list (the reference pass); otherwise asserts them — recovery
/// must hand out the same ids the dead process did. CrashInjected
/// propagates to the caller.
void run_ops(ReconfigService& svc, std::vector<Op>& ops, std::size_t from,
             const std::vector<BitVector>& streams, bool fill_expected) {
  for (std::size_t i = from; i < ops.size(); ++i) {
    Op& op = ops[i];
    RequestId got = kNoRequest;
    switch (op.kind) {
      case Op::kPriority:
        svc.set_tenant_priority(op.tenant, op.priority);
        continue;
      case Op::kLoad:
        got = svc.submit_load(
            streams[static_cast<std::size_t>(op.stream_idx)], op.tenant);
        break;
      case Op::kUnload:
        got = svc.submit_unload(ops[op.ref].expected, op.tenant);
        break;
      case Op::kRelocate:
        got = svc.submit_relocate(ops[op.ref].expected, op.tenant);
        break;
      case Op::kDrain:
        svc.drain();
        continue;
      case Op::kCompact:
        if (svc.journaled()) svc.compact_journal();
        continue;
    }
    if (fill_expected) {
      op.expected = got;
    } else if (got != op.expected) {
      throw std::runtime_error("request id diverged at op " +
                               std::to_string(i) + ": got " +
                               std::to_string(got) + " want " +
                               std::to_string(op.expected));
    }
  }
}

/// Where to resume after recovery: skip to just past the epoch-th
/// compaction (each durable compaction bumps the epoch and resets the
/// WAL), then past the admissions and commits the current WAL replayed.
std::size_t resume_index(const std::vector<Op>& ops,
                         const ReconfigService::RecoveryInfo& info) {
  std::size_t i = 0;
  std::uint64_t epochs = info.epoch;
  while (epochs > 0) {
    if (i >= ops.size()) throw std::runtime_error("epoch past op list");
    if (ops[i].kind == Op::kCompact) --epochs;
    ++i;
  }
  long long admits = info.admits;
  long long commits = info.commits;
  while (admits > 0 || commits > 0) {
    if (i >= ops.size()) throw std::runtime_error("records past op list");
    const Op::Kind k = ops[i].kind;
    if (k == Op::kDrain) {
      --commits;
    } else if (k != Op::kCompact) {
      --admits;  // every submission/priority op is exactly one record
    } else {
      throw std::runtime_error("journal records straddle a compaction");
    }
    ++i;
  }
  return i;
}

int service_sweep(int threads, std::uint64_t seed, bool smoke) {
  const ArchSpec arch = bench_arch();
  TraceGenOptions gopts;
  gopts.pattern = ArrivalPattern::kBursty;
  gopts.events = 48;
  gopts.kinds = 3;
  gopts.seed = seed;
  gopts.fabric_w = 12;
  gopts.fabric_h = 10;
  const Trace trace = generate_trace(gopts);
  std::vector<BitVector> streams;
  for (const TraceTaskKind& k : trace.kinds) {
    streams.push_back(make_stream(k, arch));
  }
  std::vector<Op> ops = build_ops(trace);

  ServiceOptions opts;
  opts.threads = threads;
  opts.cache_capacity_bits = std::size_t{8} << 20;
  opts.queue_limit = 5;  // shedding active: kShed companions in the WAL
  opts.deadline_ticks = 12;
  opts.retry_limit = 2;
  opts.faults = FaultPlan::parse(
      "seed=" + std::to_string(seed + 1) +
      ",decode=0.15,alloc=0.1,cache=0.15,latency=0.15x4");

  // Reference A: unjournaled. Fills the expected request ids.
  ReconfigService plain(arch, trace.fabric_w, trace.fabric_h, opts);
  run_ops(plain, ops, 0, streams, /*fill_expected=*/true);
  const std::uint64_t ref_fp = plain.state_fingerprint();

  // Reference B: journaled, no injection. Journaling must not perturb the
  // model, and its op count bounds the sweep.
  long long total_ops = 0;
  {
    TempDir dir("svc_ref");
    ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
    svc.open_journal(dir.path);
    run_ops(svc, ops, 0, streams, false);
    if (svc.state_fingerprint() != ref_fp) {
      std::fprintf(stderr,
                   "vbscrash: journaling changed the model state\n");
      return 1;
    }
    total_ops = svc.journal_io_ops();
  }
  std::printf("vbscrash: service sweep: %lld I/O sites, threads=%d\n",
              total_ops, threads);

  int swept = 0;
  for (long long n = 0; n < total_ops; ++n) {
    if (smoke && n % 7 != 0 && n != total_ops - 1) continue;
    ++swept;
    TempDir dir("svc_kill");
    const FaultPlan io_plan =
        FaultPlan::parse("crash=" + std::to_string(n));
    bool crashed = false;
    const char* site = "?";
    {
      ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
      try {
        svc.open_journal(dir.path, &io_plan);
        run_ops(svc, ops, 0, streams, false);
      } catch (const CrashInjected& c) {
        crashed = true;
        site = c.site;
      }
      // svc dies here: the crashed process's memory is gone.
    }
    if (!crashed) {
      std::fprintf(stderr, "vbscrash: site %lld never executed\n", n);
      return 1;
    }
    try {
      std::uint64_t final_fp = 0;
      if (!fs::exists(dir.path + "/journal.wal")) {
        // Killed inside journal creation: nothing was ever durable. The
        // recovery story is a fresh start — and it must reach the same
        // final state.
        ReconfigService svc(arch, trace.fabric_w, trace.fabric_h, opts);
        svc.open_journal(dir.path);
        run_ops(svc, ops, 0, streams, false);
        final_fp = svc.state_fingerprint();
      } else {
        ReconfigService::RecoveryInfo info;
        auto svc = ReconfigService::recover(dir.path, threads, &info);
        run_ops(*svc, ops, resume_index(ops, info), streams, false);
        final_fp = svc->state_fingerprint();
      }
      if (final_fp != ref_fp) {
        std::fprintf(stderr,
                     "vbscrash: kill at io op %lld (%s): resumed state "
                     "diverged from the uninterrupted run\n",
                     n, site);
        return 1;
      }
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "vbscrash: kill at io op %lld (%s): %s\n", n,
                   site, ex.what());
      return 1;
    }
  }
  std::printf("vbscrash: service sweep ok (%d/%lld sites killed)\n", swept,
              total_ops);
  return 0;
}

// --- flow checkpoint sweep ---------------------------------------------------

int flow_sweep(std::uint64_t seed, bool smoke) {
  struct Circuit {
    int n_lut, grid;
  };
  const std::vector<Circuit> circuits = {{18, 5}, {26, 6}};
  for (const Circuit& c : circuits) {
    GenParams p;
    p.n_lut = c.n_lut;
    p.n_pi = 4;
    p.n_po = 4;
    p.seed = seed + static_cast<std::uint64_t>(c.n_lut);
    FlowOptions o;
    o.arch = bench_arch();
    o.seed = seed;
    FlowPipeline ref(generate_netlist(p), c.grid, c.grid, o);
    ref.run_to(Stage::kEncode);
    const BitVector want = ref.vbs_stream();

    TempDir dir("flow");
    ref.save_checkpoint(dir.path, Stage::kPlace);  // the older generation
    long long kills = 0;
    for (long long n = 0;; ++n) {
      const FaultPlan plan = FaultPlan::parse("crash=" + std::to_string(n));
      IoFaultInjector inj(&plan);
      bool crashed = false;
      try {
        ScopedIoFaults scope(&inj);
        ref.save_checkpoint(dir.path);
      } catch (const CrashInjected&) {
        crashed = true;
        ++kills;
      }
      if (!crashed) break;  // past the save's last I/O op
      if (smoke && n % 3 != 0) continue;
      try {
        FlowPipeline re = FlowPipeline::resume_from(dir.path);
        re.run_to(Stage::kEncode);
        if (re.vbs_stream() != want) {
          std::fprintf(stderr,
                       "vbscrash: flow kill at io op %lld: resumed stream "
                       "diverged\n",
                       n);
          return 1;
        }
        for (const auto& entry : fs::directory_iterator(dir.path)) {
          if (entry.path().extension() == ".tmp") {
            std::fprintf(stderr,
                         "vbscrash: flow kill at io op %lld: orphan %s "
                         "survived resume\n",
                         n, entry.path().c_str());
            return 1;
          }
        }
      } catch (const std::exception& ex) {
        std::fprintf(stderr, "vbscrash: flow kill at io op %lld: %s\n", n,
                     ex.what());
        return 1;
      }
    }
    std::printf("vbscrash: flow sweep ok (lut=%d, %lld sites)\n", c.n_lut,
                kills);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return tool_main("vbscrash", kUsage, [&] {
    const CliArgs args(argc, argv, {"--threads", "--seed"},
                       {"--smoke", "--service-only", "--flow-only", "--help"});
    if (args.has_flag("--help") || !args.positional().empty()) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    const bool smoke = args.has_flag("--smoke");
    const int threads = threads_or(args, 1);
    const std::uint64_t seed = seed_or(args, 1);
    if (args.has_flag("--service-only") && args.has_flag("--flow-only")) {
      throw std::runtime_error("--service-only and --flow-only conflict");
    }
    int rc = 0;
    if (!args.has_flag("--flow-only")) {
      rc = service_sweep(threads, seed, smoke);
    }
    if (rc == 0 && !args.has_flag("--service-only")) {
      rc = flow_sweep(seed, smoke);
    }
    if (rc == 0) std::printf("vbscrash: all kills recovered\n");
    return rc;
  });
}
