// vbsdecode — the run-time de-virtualization step as a command-line tool:
// reads a .vbs stream, decodes it at a chosen origin of a chosen fabric
// and writes the raw configuration image (what the reconfiguration
// controller would shift into the configuration memory).
//
// Usage:
//   vbsdecode <task.vbs> --out config.bin [--fabric WxH] [--origin X,Y]
//             [--threads N] [--json]
//
// The fabric defaults to exactly the task footprint at origin 0,0.
// --json replaces the human-readable report with a single JSON object
// (stable keys, same conventions as vbsinfo --json; suitable for traces
// and CI scripting).
#include <cstdio>

#include "rtc/controller.h"
#include "util/cli.h"
#include "vbs/devirtualizer.h"
#include "vbs/vbs_file.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "vbsdecode <task.vbs> --out config.bin [--fabric WxH] [--origin X,Y] "
    "[--threads N] [--json]";

}  // namespace

int main(int argc, char** argv) {
  return tool_main("vbsdecode", kUsage, [&] {
    const CliArgs args(argc, argv,
                       {"--out", "--fabric", "--origin", "--threads"},
                       {"--json", "--help"});
    if (args.has_flag("--help") || args.positional().size() != 1 ||
        !args.value("--out")) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    const BitVector stream = read_vbs_file(args.positional()[0]);
    const VbsImage img = deserialize_vbs(stream);

    int fw = img.task_w, fh = img.task_h;
    if (const auto f = args.value("--fabric")) {
      std::tie(fw, fh) = parse_pair(*f, 'x');
    }
    Point origin{0, 0};
    if (const auto o = args.value("--origin")) {
      std::tie(origin.x, origin.y) = parse_pair(*o, ',');
    }
    const int threads = threads_or(args);

    // Route the load through the controller so the tool measures exactly
    // what the runtime would do.
    ReconfigController rtc(img.spec, fw, fh);
    const TaskId id = rtc.load_at(stream, origin, threads);
    const TaskRecord& rec = rtc.record(id);
    write_vbs_file(args.value_or("--out", ""), rtc.config_memory());

    const double mbits_per_sec =
        static_cast<double>(rtc.fabric().config_bits_total()) / 1e6 /
        rec.decode_seconds;
    if (args.has_flag("--json")) {
      std::printf("{\n");
      std::printf("  \"stream_bits\": %zu,\n", stream.size());
      std::printf(
          "  \"task\": {\"w\": %d, \"h\": %d, \"cluster\": %d},\n",
          img.task_w, img.task_h, img.cluster);
      std::printf("  \"fabric\": {\"w\": %d, \"h\": %d},\n", fw, fh);
      std::printf("  \"origin\": {\"x\": %d, \"y\": %d},\n", origin.x,
                  origin.y);
      std::printf(
          "  \"decode\": {\"entries\": %lld, \"raw_entries\": %lld, "
          "\"pairs_routed\": %lld, \"nodes_expanded\": %lld},\n",
          rec.decode.entries_decoded, rec.decode.raw_entries,
          rec.decode.pairs_routed, rec.decode.nodes_expanded);
      std::printf("  \"config_bits\": %zu,\n",
                  rtc.fabric().config_bits_total());
      std::printf(
          "  \"timing\": {\"seconds\": %.6f, \"threads\": %d, "
          "\"mbits_per_sec\": %.2f}\n",
          rec.decode_seconds, rec.threads_used, mbits_per_sec);
      std::printf("}\n");
      return 0;
    }
    std::printf("vbsdecode: task %dx%d (cluster %d) at (%d,%d) on %dx%d\n",
                img.task_w, img.task_h, img.cluster, origin.x, origin.y, fw,
                fh);
    std::printf(
        "vbsdecode: %lld entries (%lld raw), %lld connections re-routed, "
        "%lld nodes expanded\n",
        rec.decode.entries_decoded, rec.decode.raw_entries,
        rec.decode.pairs_routed, rec.decode.nodes_expanded);
    std::printf(
        "vbsdecode: %.3f s with %d thread(s): %.2f Mb of configuration per "
        "second\n",
        rec.decode_seconds, rec.threads_used, mbits_per_sec);
    return 0;
  });
}
