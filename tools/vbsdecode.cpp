// vbsdecode — the run-time de-virtualization step as a command-line tool:
// reads a .vbs stream, decodes it at a chosen origin of a chosen fabric
// and writes the raw configuration image (what the reconfiguration
// controller would shift into the configuration memory).
//
// Usage:
//   vbsdecode <task.vbs> --out config.bin [--fabric WxH] [--origin X,Y]
//             [--threads N]
//
// The fabric defaults to exactly the task footprint at origin 0,0.
#include <cstdio>

#include "rtc/controller.h"
#include "util/cli.h"
#include "vbs/devirtualizer.h"
#include "vbs/vbs_file.h"

using namespace vbs;

namespace {

std::pair<int, int> parse_pair(const std::string& s, char sep) {
  const auto pos = s.find(sep);
  if (pos == std::string::npos) {
    throw std::runtime_error("expected <a>" + std::string(1, sep) + "<b>: " + s);
  }
  return {std::stoi(s.substr(0, pos)), std::stoi(s.substr(pos + 1))};
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"--out", "--fabric", "--origin", "--threads"},
                       {"--help"});
    if (args.has_flag("--help") || args.positional().size() != 1 ||
        !args.value("--out")) {
      std::fprintf(stderr,
                   "usage: vbsdecode <task.vbs> --out config.bin "
                   "[--fabric WxH] [--origin X,Y] [--threads N]\n");
      return args.has_flag("--help") ? 0 : 1;
    }
    const BitVector stream = read_vbs_file(args.positional()[0]);
    const VbsImage img = deserialize_vbs(stream);

    int fw = img.task_w, fh = img.task_h;
    if (const auto f = args.value("--fabric")) {
      std::tie(fw, fh) = parse_pair(*f, 'x');
    }
    Point origin{0, 0};
    if (const auto o = args.value("--origin")) {
      std::tie(origin.x, origin.y) = parse_pair(*o, ',');
    }
    const int threads = static_cast<int>(args.int_or("--threads", 1));

    // Route the load through the controller so the tool measures exactly
    // what the runtime would do.
    ReconfigController rtc(img.spec, fw, fh);
    const TaskId id = rtc.load_at(stream, origin, threads);
    const TaskRecord& rec = rtc.record(id);
    write_vbs_file(args.value_or("--out", ""), rtc.config_memory());

    std::printf("vbsdecode: task %dx%d (cluster %d) at (%d,%d) on %dx%d\n",
                img.task_w, img.task_h, img.cluster, origin.x, origin.y, fw,
                fh);
    std::printf(
        "vbsdecode: %lld entries (%lld raw), %lld connections re-routed, "
        "%lld nodes expanded\n",
        rec.decode.entries_decoded, rec.decode.raw_entries,
        rec.decode.pairs_routed, rec.decode.nodes_expanded);
    std::printf(
        "vbsdecode: %.3f s with %d thread(s): %.2f Mb of configuration per "
        "second\n",
        rec.decode_seconds, rec.threads_used,
        static_cast<double>(rtc.fabric().config_bits_total()) / 1e6 /
            rec.decode_seconds);
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "vbsdecode: %s\n", ex.what());
    return 1;
  }
}
