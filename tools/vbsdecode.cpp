// vbsdecode — the run-time de-virtualization step as a command-line tool:
// reads a .vbs stream, decodes it at a chosen origin of a chosen fabric
// and writes the raw configuration image (what the reconfiguration
// controller would shift into the configuration memory).
//
// Usage:
//   vbsdecode <task.vbs> --out config.bin [--fabric WxH] [--origin X,Y]
//             [--threads N] [--json]
//
// The fabric defaults to exactly the task footprint at origin 0,0.
// --json replaces the human-readable report with a single JSON object
// (stable keys, same conventions as vbsinfo --json; suitable for traces
// and CI scripting).
//
// Hostile input exits typed: a VbsError maps to exit code
// exit_code_for(code) (10 + the numeric VbsErrc), and with --json the
// tool prints {"error": {"code": ..., "errc": N, "message": ...}} on
// stdout so scripted callers can dispatch without parsing stderr. Exit
// code 1 stays reserved for untyped errors (bad CLI usage, I/O).
#include <cstdio>
#include <optional>
#include <string>

#include "rtc/controller.h"
#include "util/build_info.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/json.h"
#include "vbs/devirtualizer.h"
#include "vbs/vbs_file.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "vbsdecode <task.vbs> --out config.bin [--fabric WxH] [--origin X,Y] "
    "[--threads N] [--trace-out trace.json] [--metrics] [--json]";

}  // namespace

int main(int argc, char** argv) {
  return tool_main("vbsdecode", kUsage, [&] {
    const CliArgs args(argc, argv,
                       {"--out", "--fabric", "--origin", "--threads",
                        "--trace-out"},
                       {"--json", "--metrics", "--help"});
    if (args.has_flag("--help") || args.positional().size() != 1 ||
        !args.value("--out")) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    // CLI mistakes keep the untyped exit 1; everything past this point
    // consumes hostile bytes and exits typed on rejection.
    int fw = 0, fh = 0;
    const bool have_fabric = args.value("--fabric").has_value();
    if (have_fabric) {
      std::tie(fw, fh) = parse_pair(*args.value("--fabric"), 'x');
    }
    Point origin{0, 0};
    if (const auto o = args.value("--origin")) {
      std::tie(origin.x, origin.y) = parse_pair(*o, ',');
    }
    const int threads = threads_or(args);
    const bool json = args.has_flag("--json");
    const TelemetryCli telemetry(args);

    BitVector stream;
    VbsImage img;
    std::optional<ReconfigController> rtc_opt;
    TaskId id = kNoTask;
    try {
      stream = read_vbs_file(args.positional()[0]);
      img = deserialize_vbs(stream);
      if (!have_fabric) {
        fw = img.task_w;
        fh = img.task_h;
      }
      // Route the load through the controller so the tool measures
      // exactly what the runtime would do.
      rtc_opt.emplace(img.spec, fw, fh);
      id = rtc_opt->load_at(stream, origin, threads);
    } catch (const VbsError& ex) {
      if (json) {
        std::printf(
            "{\n  \"error\": {\"code\": \"%s\", \"errc\": %d, "
            "\"message\": \"%s\"}\n}\n",
            to_string(ex.code()), static_cast<int>(ex.code()),
            json_escape(ex.what()).c_str());
      } else {
        std::fprintf(stderr, "vbsdecode: %s [%s]\n", ex.what(),
                     to_string(ex.code()));
      }
      return exit_code_for(ex.code());
    }
    ReconfigController& rtc = *rtc_opt;
    const TaskRecord& rec = rtc.record(id);
    write_vbs_file(args.value_or("--out", ""), rtc.config_memory());

    const double mbits_per_sec =
        static_cast<double>(rtc.fabric().config_bits_total()) / 1e6 /
        rec.decode_seconds;
    if (args.has_flag("--json")) {
      std::printf("{\n");
      std::printf("  \"stream_bits\": %zu,\n", stream.size());
      std::printf(
          "  \"task\": {\"w\": %d, \"h\": %d, \"cluster\": %d},\n",
          img.task_w, img.task_h, img.cluster);
      std::printf("  \"fabric\": {\"w\": %d, \"h\": %d},\n", fw, fh);
      std::printf("  \"origin\": {\"x\": %d, \"y\": %d},\n", origin.x,
                  origin.y);
      std::printf(
          "  \"decode\": {\"entries\": %lld, \"raw_entries\": %lld, "
          "\"pairs_routed\": %lld, \"nodes_expanded\": %lld},\n",
          rec.decode.entries_decoded, rec.decode.raw_entries,
          rec.decode.pairs_routed, rec.decode.nodes_expanded);
      std::printf("  \"config_bits\": %zu,\n",
                  rtc.fabric().config_bits_total());
      std::printf(
          "  \"timing\": {\"seconds\": %.6f, \"threads\": %d, "
          "\"mbits_per_sec\": %.2f},\n",
          rec.decode_seconds, rec.threads_used, mbits_per_sec);
      std::printf("  \"build\": %s,\n", build_info_json(2).c_str());
      std::printf("  \"metrics\": %s\n",
                  telem::snapshot().to_json(2).c_str());
      std::printf("}\n");
      telemetry.finish();
      return 0;
    }
    std::printf("vbsdecode: task %dx%d (cluster %d) at (%d,%d) on %dx%d\n",
                img.task_w, img.task_h, img.cluster, origin.x, origin.y, fw,
                fh);
    std::printf(
        "vbsdecode: %lld entries (%lld raw), %lld connections re-routed, "
        "%lld nodes expanded\n",
        rec.decode.entries_decoded, rec.decode.raw_entries,
        rec.decode.pairs_routed, rec.decode.nodes_expanded);
    std::printf(
        "vbsdecode: %.3f s with %d thread(s): %.2f Mb of configuration per "
        "second\n",
        rec.decode_seconds, rec.threads_used, mbits_per_sec);
    telemetry.finish();
    return 0;
  });
}
