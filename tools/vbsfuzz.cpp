// vbsfuzz — seeded mutational fuzzer for the hostile-input surfaces: the
// VBS deserializer, the VBS2 / vbs.artifact.v1 file containers, the
// controller's load path, and the service's submit/drain loop.
//
// The harness builds a small vbsgen-style corpus in-process (two routed
// tasks, cluster 1 and cluster 2), then repeatedly mutates a corpus
// stream — truncation at a random bit, 1-8 random bit flips, targeted
// flips in the preamble/header bits, appended garbage bits, spliced
// runs — and feeds the mutant to the decode stack. The contract under
// test (the PR's fuzz invariant):
//
//   * deserialize_vbs either succeeds or throws a typed VbsError — never
//     any other exception type, never a crash or sanitizer report;
//   * a stream that parses but fails later (decode, placement, arch)
//     rolls the controller back completely: configuration memory all
//     zero and occupancy 0 after the rejected load;
//   * the service survives mutant submissions and reports per-request
//     typed failures instead of tearing down the drain loop;
//   * mutated VBS2 / artifact files are rejected with the typed
//     container errors, and a file round-trip of a surviving mutant is
//     bit-exact;
//   * a mutated service journal (truncated / bit-flipped / record-spliced
//     WAL or snapshot) either recovers to a working service — a torn tail
//     is legitimately survivable — or is rejected with a typed VbsError
//     (kBadJournal and friends); never any other exception, crash, or
//     unbounded allocation.
//
// --rpc-frame switches the harness to the network surface instead: a
// corpus of valid vbs.rpc.v1 frames (every frame type, LOAD carrying a
// real artifact container) is concatenated, byte-mutated (truncation,
// bit flips, splices, hostile length prefixes, garbage) and replayed
// through FrameReader in randomly-sized chunks, then through the per-type
// payload decoders. The contract: every frame either parses completely or
// raises a typed VbsError (kNetFrame and friends) — never another
// exception, never a crash, never an allocation proportional to a hostile
// declared length, and the reader always makes progress.
//
// Everything is a pure function of --seed, so a failure line
// ("iter 123 seed 7") is a standalone repro. Exit status: 0 if every
// iteration upheld the contract, 1 with a repro line otherwise.
//
// Usage:
//   vbsfuzz [--iters N] [--seed S] [--smoke] [--rpc-frame]
//
// --smoke caps the run at the CI budget (600 iterations) regardless of
// --iters; the asan-ubsan CI job runs `vbsfuzz --smoke` and
// `vbsfuzz --rpc-frame --smoke`.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "flow/artifact_io.h"
#include "flow/flow.h"
#include "netlist/generator.h"
#include "rtc/controller.h"
#include "rtc/server/wire.h"
#include "rtc/service/service.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "vbs/encoder.h"
#include "vbs/vbs_file.h"
#include "vbs/vbs_format.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "vbsfuzz [--iters N] [--seed S] [--smoke] [--rpc-frame]";

/// One corpus entry: a valid serialized stream plus the arch it targets.
struct CorpusEntry {
  BitVector stream;
  ArchSpec spec;
  int grid = 0;
};

CorpusEntry make_entry(int n_lut, std::uint64_t seed, int grid, int cluster) {
  GenParams p;
  p.n_lut = n_lut;
  p.n_pi = 3;
  p.n_po = 3;
  p.seed = seed;
  FlowOptions o;
  o.seed = seed;
  const FlowResult r = run_flow(generate_netlist(p), grid, grid, o);
  if (!r.routed()) throw std::runtime_error("vbsfuzz: corpus task unroutable");
  EncodeOptions eo;
  eo.cluster = cluster;
  CorpusEntry e;
  e.stream = serialize_vbs(encode_vbs(*r.fabric, r.netlist, r.packed,
                                      r.placement, r.routing.routes, eo));
  e.spec = r.fabric->spec();
  e.grid = grid;
  return e;
}

/// Applies one randomly chosen mutation; returns a description for repros.
std::string mutate(Rng& rng, BitVector& bits) {
  const std::size_t n = bits.size();
  // A prior truncation can leave the stream empty; the only mutation that
  // still applies is appending garbage (case 3 below, inlined).
  if (n == 0) {
    const std::size_t extra = 1 + rng.next_below(64);
    BitVector t(extra);
    for (std::size_t i = 0; i < extra; ++i) t.set(i, rng.next_below(2) != 0);
    bits = std::move(t);
    return "append" + std::to_string(extra);
  }
  switch (rng.next_below(5)) {
    case 0: {  // truncate at a random bit
      const std::size_t cut = rng.next_below(n);
      BitVector t(cut);
      for (std::size_t i = 0; i < cut; ++i) t.set(i, bits.get(i));
      bits = std::move(t);
      return "truncate@" + std::to_string(cut);
    }
    case 1: {  // flip 1-8 random bits anywhere
      const int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < flips; ++i) {
        const std::size_t at = rng.next_below(n);
        bits.set(at, !bits.get(at));
      }
      return "flip" + std::to_string(flips);
    }
    case 2: {  // targeted flip in the preamble/header bits
      const std::size_t at = rng.next_below(std::min<std::size_t>(n, 31));
      bits.set(at, !bits.get(at));
      return "header-flip@" + std::to_string(at);
    }
    case 3: {  // append 1-64 garbage bits
      const std::size_t extra = 1 + rng.next_below(64);
      BitVector t(n + extra);
      for (std::size_t i = 0; i < n; ++i) t.set(i, bits.get(i));
      for (std::size_t i = n; i < n + extra; ++i)
        t.set(i, rng.next_below(2) != 0);
      bits = std::move(t);
      return "append" + std::to_string(extra);
    }
    default: {  // splice a random run of the stream over another position
      const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(n, 96));
      const std::size_t src = rng.next_below(n - len + 1);
      const std::size_t dst = rng.next_below(n - len + 1);
      for (std::size_t i = 0; i < len; ++i)
        bits.set(dst + i, bits.get(src + i));
      return "splice" + std::to_string(len);
    }
  }
}

/// Byte-level mutation of a file on disk: truncate or flip one byte.
void mutate_file(Rng& rng, const std::string& path) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw std::runtime_error("vbsfuzz: reopen " + path);
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
      bytes.append(buf, got);
    std::fclose(f);
  }
  if (bytes.empty()) return;
  if (rng.next_below(2) == 0) {
    bytes.resize(rng.next_below(bytes.size()));
  } else {
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<char>(1u << rng.next_below(8));
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("vbsfuzz: rewrite " + path);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// Journal-specific file mutation: truncation, bit flips, or a record
/// splice (a byte run copied over another position — forges duplicated /
/// reordered records with valid checksums).
std::string mutate_journal_file(Rng& rng, const std::string& path) {
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw std::runtime_error("vbsfuzz: reopen " + path);
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
      bytes.append(buf, got);
    std::fclose(f);
  }
  std::string what;
  if (bytes.empty()) return "empty";
  switch (rng.next_below(3)) {
    case 0: {  // truncate: mid-record cuts must read as a torn tail
      const std::size_t cut = rng.next_below(bytes.size());
      bytes.resize(cut);
      what = "truncate@" + std::to_string(cut);
      break;
    }
    case 1: {  // flip 1-4 bits anywhere
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int i = 0; i < flips; ++i) {
        bytes[rng.next_below(bytes.size())] ^=
            static_cast<char>(1u << rng.next_below(8));
      }
      what = "flip" + std::to_string(flips);
      break;
    }
    default: {  // splice a byte run over another position
      const std::size_t len =
          1 + rng.next_below(std::min<std::size_t>(bytes.size(), 64));
      const std::size_t src = rng.next_below(bytes.size() - len + 1);
      const std::size_t dst = rng.next_below(bytes.size() - len + 1);
      bytes.replace(dst, len, bytes, src, len);
      what = "splice" + std::to_string(len);
      break;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("vbsfuzz: rewrite " + path);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return what;
}

/// One valid frame of every vbs.rpc.v1 type (LOAD carrying a real
/// artifact container): the rpc-frame corpus.
std::vector<std::string> make_frame_corpus(const BitVector& stream) {
  using namespace rpc;
  std::vector<std::string> frames;
  HelloMsg hello;
  hello.tenant = 3;
  hello.client_nonce = 0x1234;
  frames.push_back(encode_frame(FrameType::kHello, 1, encode_hello(hello)));
  ChallengeMsg chal;
  chal.server_nonce = 0x5678;
  frames.push_back(
      encode_frame(FrameType::kChallenge, 1, encode_challenge(chal)));
  AuthMsg auth;
  auth.proof = auth_proof(tenant_secret(1, 3), 3, 0x1234, 0x5678);
  frames.push_back(encode_frame(FrameType::kAuth, 2, encode_auth(auth)));
  AuthOkMsg ok;
  ok.next_request_id = 7;
  ok.session = 0xabcd;
  frames.push_back(encode_frame(FrameType::kAuthOk, 2, encode_auth_ok(ok)));
  ErrorMsg err;
  err.code = VbsErrc::kQueueFull;
  err.message = "shed at the door";
  frames.push_back(encode_frame(FrameType::kError, 3, encode_error(err)));
  frames.push_back(encode_frame(FrameType::kLoad, 4, encode_load(3, stream)));
  TargetMsg tgt;
  tgt.tenant = 3;
  tgt.target = 7;
  frames.push_back(encode_frame(FrameType::kUnload, 5, encode_target(tgt)));
  frames.push_back(encode_frame(FrameType::kRelocate, 6, encode_target(tgt)));
  RequestResult res;
  res.request = 7;
  res.status = RequestStatus::kDone;
  res.tenant = 3;
  res.latency_ticks = 4;
  frames.push_back(encode_frame(FrameType::kResult, 4, encode_result(res)));
  AckMsg ack;
  ack.request_id = 7;
  frames.push_back(encode_frame(FrameType::kAck, 4, encode_ack(ack)));
  PriorityMsg prio;
  prio.tenant = 3;
  prio.priority = 10;
  frames.push_back(
      encode_frame(FrameType::kSetPriority, 8, encode_priority(prio)));
  frames.push_back(encode_frame(FrameType::kDrain, 9, ""));
  frames.push_back(encode_frame(FrameType::kStat, 10, ""));
  StatReplyMsg stat;
  stat.fingerprint = 0xfeedULL;
  stat.loads = 2;
  frames.push_back(
      encode_frame(FrameType::kStatReply, 10, encode_stat_reply(stat)));
  frames.push_back(encode_frame(FrameType::kPing, 11, ""));
  frames.push_back(encode_frame(FrameType::kPong, 11, ""));
  frames.push_back(encode_frame(FrameType::kShutdown, 12, ""));
  return frames;
}

/// Applies one byte-level mutation in place; returns a repro tag.
std::string mutate_bytes(Rng& rng, std::string& bytes) {
  if (bytes.empty()) {
    const std::size_t extra = 1 + rng.next_below(64);
    for (std::size_t i = 0; i < extra; ++i)
      bytes.push_back(static_cast<char>(rng.next_below(256)));
    return "append" + std::to_string(extra);
  }
  switch (rng.next_below(5)) {
    case 0: {  // truncate anywhere (mid-header, mid-payload)
      const std::size_t cut = rng.next_below(bytes.size());
      bytes.resize(cut);
      return "truncate@" + std::to_string(cut);
    }
    case 1: {  // flip 1-8 bits
      const int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < flips; ++i) {
        bytes[rng.next_below(bytes.size())] ^=
            static_cast<char>(1u << rng.next_below(8));
      }
      return "flip" + std::to_string(flips);
    }
    case 2: {  // hostile length prefix at the head frame
      static constexpr std::uint32_t kLens[] = {0u, 1u, 17u, 1u << 24,
                                                0x7fffffffu, 0xffffffffu};
      const std::uint32_t len = kLens[rng.next_below(6)];
      for (int i = 0; i < 4 && static_cast<std::size_t>(i) < bytes.size(); ++i)
        bytes[static_cast<std::size_t>(i)] =
            static_cast<char>((len >> (8 * i)) & 0xff);
      return "len-prefix=" + std::to_string(len);
    }
    case 3: {  // append garbage
      const std::size_t extra = 1 + rng.next_below(64);
      for (std::size_t i = 0; i < extra; ++i)
        bytes.push_back(static_cast<char>(rng.next_below(256)));
      return "append" + std::to_string(extra);
    }
    default: {  // splice a run over another position
      const std::size_t len =
          1 + rng.next_below(std::min<std::size_t>(bytes.size(), 64));
      const std::size_t src = rng.next_below(bytes.size() - len + 1);
      const std::size_t dst = rng.next_below(bytes.size() - len + 1);
      bytes.replace(dst, len, bytes, src, len);
      return "splice" + std::to_string(len);
    }
  }
}

/// Runs the per-type payload decoder on a parsed frame. Throws only
/// VbsError on malformed payloads — part of the fuzz contract.
void decode_payload(const rpc::Frame& f) {
  using rpc::FrameType;
  switch (f.type) {
    case FrameType::kHello: (void)rpc::decode_hello(f.payload); break;
    case FrameType::kChallenge: (void)rpc::decode_challenge(f.payload); break;
    case FrameType::kAuth: (void)rpc::decode_auth(f.payload); break;
    case FrameType::kAuthOk: (void)rpc::decode_auth_ok(f.payload); break;
    case FrameType::kError: (void)rpc::decode_error(f.payload); break;
    case FrameType::kLoad: (void)rpc::decode_load(f.payload); break;
    case FrameType::kUnload:
    case FrameType::kRelocate: (void)rpc::decode_target(f.payload); break;
    case FrameType::kResult: (void)rpc::decode_result(f.payload); break;
    case FrameType::kAck: (void)rpc::decode_ack(f.payload); break;
    case FrameType::kSetPriority: (void)rpc::decode_priority(f.payload); break;
    case FrameType::kStatReply: (void)rpc::decode_stat_reply(f.payload); break;
    case FrameType::kDrain:
    case FrameType::kStat:
    case FrameType::kPing:
    case FrameType::kPong:
    case FrameType::kShutdown: break;  // no payload
  }
}

/// The --rpc-frame harness: mutated frame byte streams through
/// FrameReader (in random chunk sizes) and the payload decoders.
int run_rpc_frame_fuzz(long long iters, std::uint64_t seed) {
  const CorpusEntry entry = make_entry(18, 5, seed % 2 == 0 ? 5 : 6, 1);
  const std::vector<std::string> corpus = make_frame_corpus(entry.stream);
  // Tight reader cap: a hostile 4 GiB length prefix must bounce off the
  // declared-length check, never allocate.
  constexpr std::size_t kReaderCap = 1u << 20;

  Rng rng(seed ^ 0x9e3779b9u);
  long long frames_parsed = 0, payload_rejected = 0, stream_rejected = 0;
  for (long long iter = 0; iter < iters; ++iter) {
    std::string bytes;
    const std::size_t picks = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < picks; ++i)
      bytes += corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
    // Every third iteration also re-frames a hostile payload under a
    // *valid* checksum: the only way garbage reaches the payload decoders
    // (a byte flip in a framed payload dies at the checksum instead).
    if (iter % 3 == 0) {
      const auto type = static_cast<rpc::FrameType>(1 + rng.next_below(17));
      std::string payload;
      if (rng.next_below(2) == 0) {  // truncated valid payload
        const std::string& donor =
            corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
        const std::string body = donor.substr(rpc::kFrameHeaderBytes);
        payload = body.substr(0, rng.next_below(body.size() + 1));
      } else {  // pure garbage
        const std::size_t len = rng.next_below(96);
        for (std::size_t i = 0; i < len; ++i)
          payload.push_back(static_cast<char>(rng.next_below(256)));
      }
      bytes += rpc::encode_frame(type, rng.next_below(1 << 16), payload);
    }
    std::string what = mutate_bytes(rng, bytes);
    if (rng.next_below(2) == 0) what += "+" + mutate_bytes(rng, bytes);

    const auto fail = [&](const std::string& msg) {
      std::fprintf(stderr,
                   "vbsfuzz: RPC-FRAME CONTRACT VIOLATION at iter %lld seed "
                   "%llu (%s): %s\n",
                   iter, static_cast<unsigned long long>(seed), what.c_str(),
                   msg.c_str());
      return 1;
    };

    rpc::FrameReader reader(kReaderCap);
    std::string buf;
    std::size_t off = 0;
    bool severed = false;  // a real connection closes on the first bad frame
    while (!severed) {
      if (off < bytes.size()) {
        const std::size_t take =
            std::min<std::size_t>(1 + rng.next_below(1024), bytes.size() - off);
        buf.append(bytes, off, take);
        off += take;
      }
      try {
        rpc::Frame f;
        while (reader.next(buf, f)) {
          ++frames_parsed;
          try {
            decode_payload(f);
          } catch (const VbsError& e) {
            if (e.code() == VbsErrc::kNone) {
              return fail("payload VbsError with code ok");
            }
            ++payload_rejected;
          }
        }
        if (off >= bytes.size()) break;  // drained; rest is a partial frame
      } catch (const VbsError& e) {
        if (e.code() == VbsErrc::kNone) {
          return fail("frame VbsError with code ok");
        }
        ++stream_rejected;
        severed = true;
      } catch (const std::exception& e) {
        return fail(std::string("untyped exception: ") + e.what());
      }
    }
  }
  std::printf(
      "vbsfuzz: rpc-frame %lld iters seed %llu: %lld frames parsed, %lld "
      "payloads rejected typed, %lld streams rejected typed, 0 contract "
      "violations\n",
      iters, static_cast<unsigned long long>(seed), frames_parsed,
      payload_rejected, stream_rejected);
  return 0;
}

bool config_is_clean(const ReconfigController& rtc) {
  if (rtc.occupancy() != 0.0 || rtc.num_tasks() != 0) return false;
  const BitVector& cfg = rtc.config_memory();
  for (const std::uint64_t w : cfg.words())
    if (w != 0) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  return tool_main("vbsfuzz", kUsage, [&] {
    const CliArgs args(argc, argv, {"--iters", "--seed"},
                       {"--smoke", "--rpc-frame", "--help"});
    if (args.has_flag("--help") || !args.positional().empty()) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    long long iters = args.int_or("--iters", 600);
    if (args.has_flag("--smoke")) iters = std::min<long long>(iters, 600);
    if (iters < 1) throw std::runtime_error("--iters must be >= 1");
    const std::uint64_t seed = seed_or(args, 1);

    if (args.has_flag("--rpc-frame")) return run_rpc_frame_fuzz(iters, seed);

    const std::vector<CorpusEntry> corpus = {
        make_entry(18, 5, 5, 1),
        make_entry(25, 31, 6, 2),
    };
    const auto tmp = std::filesystem::temp_directory_path() /
                     ("vbsfuzz." + std::to_string(seed));
    std::filesystem::create_directories(tmp);

    // A pristine journal directory (WAL + one snapshot), copied and
    // mutated by the journal leg below.
    const std::string pristine = (tmp / "journal_pristine").string();
    {
      ReconfigService svc(corpus[1].spec, corpus[1].grid, corpus[1].grid);
      svc.open_journal(pristine);
      svc.submit_load(corpus[0].stream);
      svc.submit_load(corpus[1].stream);
      svc.drain();
      svc.compact_journal();
      svc.submit_load(corpus[0].stream);  // warm load after the snapshot
      svc.drain();
    }

    long long parsed = 0, rejected = 0, loaded = 0, load_rejected = 0;
    long long journal_recovered = 0, journal_rejected = 0;
    Rng rng(seed ^ 0x5bd1e995u);
    for (long long iter = 0; iter < iters; ++iter) {
      const CorpusEntry& base =
          corpus[static_cast<std::size_t>(rng.next_below(corpus.size()))];
      BitVector bits = base.stream;
      std::string what = mutate(rng, bits);
      if (rng.next_below(3) == 0) what += "+" + mutate(rng, bits);

      const auto fail = [&](const std::string& msg) {
        std::fprintf(stderr,
                     "vbsfuzz: CONTRACT VIOLATION at iter %lld seed %llu "
                     "(%s): %s\n",
                     iter, static_cast<unsigned long long>(seed), what.c_str(),
                     msg.c_str());
        return 1;
      };

      // 1. Parse: success or typed VbsError, nothing else.
      bool ok = false;
      VbsImage img;
      try {
        img = deserialize_vbs(bits);
        ok = true;
        ++parsed;
      } catch (const VbsError& e) {
        if (e.code() == VbsErrc::kNone) return fail("VbsError with code ok");
        ++rejected;
      } catch (const std::exception& e) {
        return fail(std::string("untyped exception: ") + e.what());
      }

      // 2. Survivors meet the controller: load either commits or rolls
      // back to a pristine fabric.
      if (ok) {
        ReconfigController rtc(base.spec, base.grid, base.grid);
        try {
          const TaskId id = rtc.load(bits);
          if (id != kNoTask) {
            ++loaded;
            rtc.unload(id);
          }
          if (!config_is_clean(rtc)) {
            return fail("config dirty after load+unload");
          }
        } catch (const VbsError&) {
          ++load_rejected;
          if (!config_is_clean(rtc)) {
            return fail("config dirty after rejected load");
          }
        } catch (const std::exception& e) {
          return fail(std::string("untyped load exception: ") + e.what());
        }
      }

      // 3. Every 4th iteration: the service drain loop must survive the
      // mutant and report a per-request status instead of throwing.
      if (iter % 4 == 0) {
        ReconfigService svc(base.spec, base.grid, base.grid);
        try {
          svc.submit_load(bits);
          svc.submit_load(base.stream);  // a valid load must still succeed
          const auto results = svc.drain();
          long long done = 0;
          for (const RequestResult& r : results)
            if (r.status == RequestStatus::kDone) ++done;
          if (done < 1) return fail("valid load failed after mutant");
        } catch (const std::exception& e) {
          return fail(std::string("service drain threw: ") + e.what());
        }
      }

      // 4. Every 8th iteration: container files. A surviving mutant must
      // round-trip bit-exactly; a mutated file must be rejected typed.
      if (iter % 8 == 0) {
        const std::string vpath = (tmp / "fuzz.vbs").string();
        const std::string apath = (tmp / "fuzz.var").string();
        try {
          write_vbs_file(vpath, bits);
          if (read_vbs_file(vpath) != bits) {
            return fail("VBS container round-trip not bit-exact");
          }
          write_artifact_file(apath, ArtifactStage::kEncode, 0xfeedULL, bits);
          const std::uint64_t want_fp = 0xfeedULL;
          if (read_artifact_file(apath, ArtifactStage::kEncode, &want_fp) !=
              bits) {
            return fail("artifact round-trip not bit-exact");
          }
          mutate_file(rng, vpath);
          mutate_file(rng, apath);
          try {
            const BitVector back = read_vbs_file(vpath);
            if (back != bits) return fail("mutated VBS container read garbage");
          } catch (const VbsError&) {
          } catch (const std::exception& e) {
            return fail(std::string("untyped VBS container error: ") + e.what());
          }
          try {
            const BitVector back =
                read_artifact_file(apath, ArtifactStage::kEncode, &want_fp);
            if (back != bits) return fail("mutated artifact read garbage");
          } catch (const ArtifactError&) {
          } catch (const std::exception& e) {
            return fail(std::string("untyped artifact error: ") + e.what());
          }
        } catch (const std::exception& e) {
          return fail(std::string("container leg threw: ") + e.what());
        }
      }

      // 5. Every 6th iteration: the durability surface. A mutated journal
      // directory must either recover into a working service (torn tails
      // are survivable by design) or be rejected with a typed VbsError.
      if (iter % 6 == 2) {
        const std::string jdir = (tmp / "journal_fuzz").string();
        std::filesystem::remove_all(jdir);
        std::filesystem::copy(pristine, jdir,
                              std::filesystem::copy_options::recursive);
        // Mostly the WAL; sometimes the snapshot artifact.
        std::string target = jdir + "/journal.wal";
        if (rng.next_below(4) == 0) {
          for (const auto& entry :
               std::filesystem::directory_iterator(jdir)) {
            const std::string name = entry.path().filename().string();
            if (name.rfind("snap.", 0) == 0) target = entry.path().string();
          }
        }
        const std::string jwhat = mutate_journal_file(rng, target);
        try {
          const auto svc = ReconfigService::recover(jdir);
          ++journal_recovered;
          // Whatever prefix survived must be a working service.
          svc->submit_load(corpus[1].stream);
          if (svc->drain().empty()) {
            return fail("recovered service drained nothing (" + jwhat + ")");
          }
        } catch (const VbsError& e) {
          if (e.code() == VbsErrc::kNone) {
            return fail("journal VbsError with code ok (" + jwhat + ")");
          }
          ++journal_rejected;
        } catch (const std::exception& e) {
          return fail("untyped journal exception (" + jwhat + "): " +
                      e.what());
        }
      }
    }

    std::error_code ec;
    std::filesystem::remove_all(tmp, ec);
    std::printf(
        "vbsfuzz: %lld iters seed %llu: %lld parsed (%lld loaded, %lld "
        "load-rejected), %lld rejected typed, journals %lld recovered / "
        "%lld rejected typed, 0 contract violations\n",
        iters, static_cast<unsigned long long>(seed), parsed, loaded,
        load_rejected, rejected, journal_recovered, journal_rejected);
    return 0;
  });
}
