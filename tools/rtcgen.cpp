// rtcgen — trace-driven workload generator for the reconfiguration
// service: emits a deterministic load/unload/relocate event trace in the
// vbs.rtc_trace.v1 text format (src/rtc/service/trace.h). Replay it with
// bench/rtc_bench --trace, or parse it from your own driver.
//
// Usage:
//   rtcgen --pattern steady|bursty|diurnal|churn [--events N] [--ticks T]
//          [--seed S] [--fabric WxH] [--kinds K] [--out trace.rtc]
//
// Without --out the trace goes to stdout.
#include <cstdio>
#include <string>

#include "rtc/service/trace.h"
#include "util/cli.h"

using namespace vbs;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"--pattern", "--events", "--ticks", "--seed",
                        "--fabric", "--kinds", "--out"},
                       {"--help"});
    if (args.has_flag("--help") || !args.positional().empty()) {
      std::fprintf(stderr,
                   "usage: rtcgen --pattern steady|bursty|diurnal|churn "
                   "[--events N] [--ticks T] [--seed S] [--fabric WxH] "
                   "[--kinds K] [--out trace.rtc]\n");
      return args.has_flag("--help") ? 0 : 1;
    }
    TraceGenOptions opts;
    opts.pattern =
        arrival_pattern_from_string(args.value_or("--pattern", "steady"));
    opts.events = static_cast<int>(args.int_or("--events", opts.events));
    opts.ticks = static_cast<int>(args.int_or("--ticks", opts.ticks));
    opts.seed = static_cast<std::uint64_t>(args.int_or("--seed", 1));
    opts.kinds = static_cast<int>(args.int_or("--kinds", opts.kinds));
    if (const auto fabric = args.value("--fabric")) {
      const std::size_t x = fabric->find('x');
      if (x == std::string::npos) {
        throw std::runtime_error("--fabric wants WxH, e.g. 16x12");
      }
      opts.fabric_w = std::stoi(fabric->substr(0, x));
      opts.fabric_h = std::stoi(fabric->substr(x + 1));
    }

    const Trace trace = generate_trace(opts);
    if (const auto out = args.value("--out")) {
      write_trace_file(*out, trace);
      std::fprintf(stderr, "rtcgen: wrote %zu events (%zu kinds) to %s\n",
                   trace.events.size(), trace.kinds.size(), out->c_str());
    } else {
      std::fputs(trace_to_string(trace).c_str(), stdout);
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "rtcgen: %s\n", ex.what());
    return 1;
  }
}
