// rtcgen — trace-driven workload generator for the reconfiguration
// service: emits a deterministic load/unload/relocate event trace in the
// vbs.rtc_trace.v1 text format (src/rtc/service/trace.h). Replay it with
// bench/rtc_bench --trace, or parse it from your own driver.
//
// Usage:
//   rtcgen --pattern steady|bursty|diurnal|churn|flash_crowd|unique_flood
//          [--events N] [--ticks T]
//          [--seed S] [--fabric WxH] [--kinds K] [--out trace.rtc]
//
// Without --out the trace goes to stdout.
#include <cstdio>
#include <string>

#include "rtc/service/trace.h"
#include "util/cli.h"

using namespace vbs;

namespace {

constexpr const char* kUsage =
    "rtcgen --pattern steady|bursty|diurnal|churn|flash_crowd|unique_flood "
    "[--events N] [--ticks T] "
    "[--seed S] [--fabric WxH] [--kinds K] [--out trace.rtc]";

}  // namespace

int main(int argc, char** argv) {
  return tool_main("rtcgen", kUsage, [&] {
    const CliArgs args(argc, argv,
                       {"--pattern", "--events", "--ticks", "--seed",
                        "--fabric", "--kinds", "--out"},
                       {"--help"});
    if (args.has_flag("--help") || !args.positional().empty()) {
      std::fprintf(stderr, "usage: %s\n", kUsage);
      return args.has_flag("--help") ? 0 : 1;
    }
    TraceGenOptions opts;
    opts.pattern =
        arrival_pattern_from_string(args.value_or("--pattern", "steady"));
    opts.events = static_cast<int>(args.int_or("--events", opts.events));
    opts.ticks = static_cast<int>(args.int_or("--ticks", opts.ticks));
    opts.seed = seed_or(args);
    opts.kinds = static_cast<int>(args.int_or("--kinds", opts.kinds));
    if (const auto fabric = args.value("--fabric")) {
      std::tie(opts.fabric_w, opts.fabric_h) = parse_pair(*fabric, 'x');
    }

    const Trace trace = generate_trace(opts);
    if (const auto out = args.value("--out")) {
      write_trace_file(*out, trace);
      std::fprintf(stderr, "rtcgen: wrote %zu events (%zu kinds) to %s\n",
                   trace.events.size(), trace.kinds.size(), out->c_str());
    } else {
      std::fputs(trace_to_string(trace).c_str(), stdout);
    }
    return 0;
  });
}
