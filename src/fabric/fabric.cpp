#include "fabric/fabric.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace vbs {

namespace {

/// Path-compressing union-find over raw (macro, local) node ids.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t a) {
    while (parent_[a] != a) {
      parent_[a] = parent_[parent_[a]];
      a = parent_[a];
    }
    return a;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Fabric::Fabric(const ArchSpec& spec, int width, int height)
    : macro_(spec), width_(width), height_(height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("Fabric: dimensions must be positive");
  }
  const int nloc = macro_.num_nodes();
  const int w = spec.chan_width;
  const int px = spec.pins_on_x();
  const int py = spec.pins_on_y();
  const std::size_t nraw = static_cast<std::size_t>(num_macros()) * nloc;

  auto raw_id = [&](int mx, int my, int local) {
    return static_cast<std::size_t>(macro_index(mx, my)) * nloc + local;
  };

  // Merge abutted boundary wires: east wire of (x,y) with west wire of
  // (x+1,y); north wire of (x,y) with south wire of (x,y+1).
  DisjointSet ds(nraw);
  for (int my = 0; my < height_; ++my) {
    for (int mx = 0; mx < width_; ++mx) {
      for (int t = 0; t < w; ++t) {
        if (mx + 1 < width_) {
          ds.unite(raw_id(mx, my, macro_.x(t, px)),
                   raw_id(mx + 1, my, macro_.xw(t)));
        }
        if (my + 1 < height_) {
          ds.unite(raw_id(mx, my, macro_.y(t, py)),
                   raw_id(mx, my + 1, macro_.ys(t)));
        }
      }
    }
  }

  // Compact roots to dense global ids.
  node_of_raw_.assign(nraw, -1);
  std::vector<std::int32_t> root_id(nraw, -1);
  num_nodes_ = 0;
  for (std::size_t i = 0; i < nraw; ++i) {
    const std::size_t r = ds.find(i);
    if (root_id[r] < 0) root_id[r] = num_nodes_++;
    node_of_raw_[i] = root_id[r];
  }

  // Representative positions: last writer wins; any representative tile of
  // a (at most two-tile) wire is fine for distance heuristics.
  pos_x_.assign(num_nodes_, 0);
  pos_y_.assign(num_nodes_, 0);
  for (int my = 0; my < height_; ++my) {
    for (int mx = 0; mx < width_; ++mx) {
      for (int local = 0; local < nloc; ++local) {
        const int g = node_of_raw_[raw_id(mx, my, local)];
        pos_x_[g] = static_cast<std::int16_t>(mx);
        pos_y_[g] = static_cast<std::int16_t>(my);
      }
    }
  }

  // Switch edges (both directions) in CSR form.
  const auto& points = macro_.switch_points();
  std::vector<std::uint32_t> degree(num_nodes_, 0);
  auto for_each_switch = [&](auto&& fn) {
    for (int m = 0; m < num_macros(); ++m) {
      const Point mp = macro_pos(m);
      for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const SwitchPoint& pt = points[pi];
        for (int pair = 0; pair < pt.n_switches(); ++pair) {
          const auto [ai, bi] = pt.pair_arms(pair);
          const int ga = node_of_raw_[raw_id(mp.x, mp.y, pt.arms[ai])];
          const int gb = node_of_raw_[raw_id(mp.x, mp.y, pt.arms[bi])];
          fn(m, static_cast<int>(pi), pair, ga, gb);
        }
      }
    }
  };
  for_each_switch([&](int, int, int, int ga, int gb) {
    ++degree[ga];
    ++degree[gb];
  });
  edge_begin_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (int g = 0; g < num_nodes_; ++g) {
    edge_begin_[g + 1] = edge_begin_[g] + degree[g];
  }
  edge_data_.resize(edge_begin_[num_nodes_]);
  std::vector<std::size_t> cursor(edge_begin_.begin(), edge_begin_.end() - 1);
  for_each_switch([&](int m, int pi, int pair, int ga, int gb) {
    edge_data_[cursor[ga]++] = {gb, m, static_cast<std::int16_t>(pi),
                                static_cast<std::int8_t>(pair), 0};
    edge_data_[cursor[gb]++] = {ga, m, static_cast<std::int16_t>(pi),
                                static_cast<std::int8_t>(pair), 0};
  });

  // (macro, port) identities per node, CSR keyed by global node.
  std::vector<std::uint32_t> pdeg(num_nodes_, 0);
  const int nports = macro_.num_ports();
  for (int m = 0; m < num_macros(); ++m) {
    const Point mp = macro_pos(m);
    for (int port = 0; port < nports; ++port) {
      ++pdeg[node_of_raw_[raw_id(mp.x, mp.y, macro_.port_node(port))]];
    }
  }
  port_begin_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (int g = 0; g < num_nodes_; ++g) {
    port_begin_[g + 1] = port_begin_[g] + pdeg[g];
  }
  port_data_.resize(port_begin_[num_nodes_]);
  std::vector<std::size_t> pcur(port_begin_.begin(), port_begin_.end() - 1);
  for (int m = 0; m < num_macros(); ++m) {
    const Point mp = macro_pos(m);
    for (int port = 0; port < nports; ++port) {
      const int g = node_of_raw_[raw_id(mp.x, mp.y, macro_.port_node(port))];
      port_data_[pcur[g]++] = {m, port};
    }
  }

  (void)py;
}

}  // namespace vbs
