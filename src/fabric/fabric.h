// The reconfigurable fabric: a width x height grid of macros with their
// single-length track wires abutted across tile boundaries.
//
// Abutted wire segments (east wire of one tile / west wire of the next, and
// north/south likewise) are the same electrical conductor, so they are
// merged into a single *global node* here via union-find. The resulting
// graph — global nodes connected by programmable switches — is the routing-
// resource graph used by the global router, the bit-stream generator and the
// connectivity verifier.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/macro_model.h"
#include "util/geometry.h"

namespace vbs {

class Fabric {
 public:
  Fabric(const ArchSpec& spec, int width, int height);

  const ArchSpec& spec() const { return macro_.spec(); }
  const MacroModel& macro() const { return macro_; }
  int width() const { return width_; }
  int height() const { return height_; }
  int num_macros() const { return width_ * height_; }
  int macro_index(int mx, int my) const { return my * width_ + mx; }
  Point macro_pos(int m) const { return {m % width_, m / width_}; }

  // --- global node space --------------------------------------------------
  int num_nodes() const { return num_nodes_; }
  /// Global node carrying the macro-local node `local` of tile (mx,my).
  int global_node(int mx, int my, int local) const {
    return node_of_raw_[static_cast<std::size_t>(macro_index(mx, my)) *
                            macro_.num_nodes() +
                        local];
  }
  /// Global node of a macro boundary/pin port.
  int port_global(int mx, int my, int port) const {
    return global_node(mx, my, macro_.port_node(port));
  }
  /// Representative tile of a node (for distance heuristics).
  Point node_pos(int g) const { return {pos_x_[g], pos_y_[g]}; }

  // --- switches (graph edges) ----------------------------------------------
  struct Edge {
    std::int32_t to;      ///< neighbouring global node
    std::int32_t macro;   ///< macro owning the switch
    std::int16_t point;   ///< switch-point index within the macro model
    std::int8_t pair;     ///< arm-pair index within the point
    std::int8_t pad = 0;
  };
  std::span<const Edge> edges(int g) const {
    return {edge_data_.data() + edge_begin_[g],
            edge_data_.data() + edge_begin_[g + 1]};
  }
  std::size_t num_edges() const { return edge_data_.size() / 2; }
  /// Absolute index of the first edge of node g in the edge array; the k-th
  /// edge of edges(g) has absolute index edge_offset(g) + k.
  std::size_t edge_offset(int g) const { return edge_begin_[g]; }
  const Edge& edge_at(std::size_t idx) const { return edge_data_[idx]; }

  // --- ports carried by a node ---------------------------------------------
  struct MacroPort {
    std::int32_t macro;
    std::int32_t port;
  };
  /// All (macro, port) identities of a global node: two for an abutted
  /// boundary wire, one for a fabric-edge wire or an LB pin, zero for an
  /// interior segment.
  std::span<const MacroPort> node_ports(int g) const {
    return {port_data_.data() + port_begin_[g],
            port_data_.data() + port_begin_[g + 1]};
  }

  // --- configuration-bit layout ---------------------------------------------
  /// Raw frame: macros in row-major order, nraw_bits() bits each, logic
  /// data first then routing bits in MacroModel canonical order.
  std::size_t config_bits_total() const {
    return static_cast<std::size_t>(num_macros()) * spec().nraw_bits();
  }
  std::size_t macro_config_offset(int m) const {
    return static_cast<std::size_t>(m) * spec().nraw_bits();
  }
  /// Bit index of a routing switch within the full-fabric raw frame.
  std::size_t switch_config_bit(int m, int point, int pair) const {
    return macro_config_offset(m) + spec().nlb_bits() +
           macro_.switch_points()[point].bit_offset + pair;
  }

 private:
  MacroModel macro_;
  int width_;
  int height_;
  int num_nodes_ = 0;
  std::vector<std::int32_t> node_of_raw_;  ///< raw (macro,local) -> global
  std::vector<std::int16_t> pos_x_, pos_y_;
  std::vector<std::size_t> edge_begin_;
  std::vector<Edge> edge_data_;
  std::vector<std::size_t> port_begin_;
  std::vector<MacroPort> port_data_;
};

}  // namespace vbs
