// Hashed timer wheel: O(1) arm/cancel, O(slots touched) expiry sweep.
//
// The event loop uses it for connection deadlines (handshake timeout,
// idle kill) and client retry backoff. A timer is a (deadline_ms,
// callback) pair hashed into one of kSlots buckets by deadline/tick;
// entries more than one wheel revolution out simply stay in their slot
// (their absolute deadline filters them) until the sweep laps around.
// advance_to(now) fires every timer whose deadline has passed, in
// arrival order within a slot.
//
// Cancellation is by TimerId (monotonically increasing, never reused):
// cancel() marks the entry dead and the sweep discards it — no search
// outside the slot list. next_timeout_ms() gives the poll timeout hint:
// the distance to the earliest live deadline, or -1 when the wheel is
// empty. Driven entirely by the caller's clock (NetClock), so tests run
// it on ManualNetClock with no real sleeping.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

namespace vbs::net {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class TimerWheel {
 public:
  /// `tick_ms` is the wheel granularity: deadlines are rounded up to the
  /// next tick boundary (a timer never fires early).
  explicit TimerWheel(std::uint64_t start_ms, std::uint64_t tick_ms = 1);

  /// Arms a timer at absolute time `deadline_ms` (clamped to now).
  /// The callback runs at most once, inside advance_to().
  TimerId arm(std::uint64_t deadline_ms, std::function<void()> cb);

  /// True when the id named a live timer (false: already fired/cancelled).
  bool cancel(TimerId id);

  /// Fires every timer with deadline <= now_ms. Callbacks may arm new
  /// timers (even ones expiring within this same advance — they fire
  /// before it returns) and cancel others. Returns fired count.
  std::size_t advance_to(std::uint64_t now_ms);

  /// Milliseconds from `now_ms` to the earliest live deadline (0 if
  /// already due), or -1 when no timers are armed. Poll-timeout hint.
  int next_timeout_ms(std::uint64_t now_ms) const;

  std::size_t size() const { return live_; }

 private:
  struct Entry {
    TimerId id = kInvalidTimer;
    std::uint64_t deadline = 0;  ///< in ticks
    std::function<void()> cb;
  };

  static constexpr std::size_t kSlots = 256;

  std::uint64_t to_tick(std::uint64_t ms) const {
    return (ms + tick_ms_ - 1) / tick_ms_;
  }

  std::uint64_t tick_ms_;
  std::uint64_t current_tick_;  ///< last sweep position
  std::list<Entry> slots_[kSlots];
  std::unordered_map<TimerId, std::uint64_t> slot_of_;  ///< live id -> slot
  TimerId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace vbs::net
