// Bounded lock-free MPSC/MPMC ring buffer (Vyukov-style sequence cells):
// the request queue between the RPC front end's event-loop thread(s) and
// the service thread that owns the (single-threaded) ReconfigService.
//
// Each cell carries a sequence number; a producer claims a slot with one
// fetch_add on the tail and publishes by bumping the cell sequence, a
// consumer reads the head cell only once its sequence says the payload is
// complete. push() fails (returns false) on a full ring instead of
// blocking — the caller decides whether that is backpressure (pause
// reading the socket) or a door-level shed (error frame). FIFO per
// producer; with a single producer the order is total, which is what the
// deterministic replay mode relies on.
//
// The ring never blocks, so waiting is the caller's concern: the server
// pairs it with a condition variable poked after each push (see
// rtc/server/server.cpp). Capacity is rounded up to a power of two.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace vbs::net {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// False when the ring is full (the item is left untouched).
  bool push(T&& item) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full: the head lap has not consumed this cell yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// False when the ring is empty.
  bool pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) -
                        static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty: the producer has not published this cell
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::atomic<std::size_t> head_{0};
};

}  // namespace vbs::net
