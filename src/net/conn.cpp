#include "net/conn.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace vbs::net {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kShortBytes = 3;  ///< net_short truncation size

}  // namespace

Conn::Conn(int fd, std::uint64_t id, FaultPlan faults)
    : fd_(fd), id_(id), faults_(std::move(faults)) {}

Conn::~Conn() { close(); }

void Conn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Conn::fault_seq() {
  return mix64(id_) ^ op_count_++;
}

IoStatus Conn::on_readable() {
  if (fd_ < 0) return IoStatus::kClosed;
  char buf[kReadChunk];
  for (;;) {
    std::size_t want = sizeof(buf);
    if (faults_.enabled()) {
      const std::uint64_t seq = fault_seq();
      if (faults_.net_drops(seq)) {
        close();
        return IoStatus::kClosed;
      }
      if (faults_.net_eagain(seq)) return IoStatus::kBlocked;
      if (faults_.net_short_read(seq)) want = kShortBytes;
    }
    const ssize_t n = ::recv(fd_, buf, want, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      total_in_ += static_cast<std::size_t>(n);
      if (static_cast<std::size_t>(n) < want) return IoStatus::kOk;
      continue;  // kernel buffer may hold more
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kBlocked;
    if (errno == EINTR) continue;
    last_errno_ = errno;
    return IoStatus::kError;
  }
}

IoStatus Conn::on_writable() {
  if (fd_ < 0) return IoStatus::kClosed;
  while (!outbuf_.empty()) {
    std::size_t want = outbuf_.size();
    if (faults_.enabled()) {
      const std::uint64_t seq = fault_seq();
      if (faults_.net_drops(seq)) {
        close();
        return IoStatus::kClosed;
      }
      if (faults_.net_eagain(seq)) return IoStatus::kBlocked;
      if (faults_.net_short_read(seq) && want > kShortBytes) {
        want = kShortBytes;
      }
    }
    const ssize_t n = ::send(fd_, outbuf_.data(), want, MSG_NOSIGNAL);
    if (n > 0) {
      outbuf_.erase(0, static_cast<std::size_t>(n));
      total_out_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kBlocked;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kBlocked;
    if (errno == EINTR) continue;
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kClosed;
    last_errno_ = errno;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus Conn::queue_write(const void* data, std::size_t n) {
  if (fd_ < 0) return IoStatus::kClosed;
  outbuf_.append(static_cast<const char*>(data), n);
  const IoStatus st = on_writable();
  // A partial flush is not an error: bytes stay buffered for the poller.
  return st == IoStatus::kBlocked && !outbuf_.empty() ? IoStatus::kBlocked : st;
}

}  // namespace vbs::net
