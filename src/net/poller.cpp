#include "net/poller.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

namespace vbs::net {

namespace {

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & kReadable) ev |= EPOLLIN;
  if (interest & kWritable) ev |= EPOLLOUT;
  return ev;
}

std::uint32_t from_epoll(std::uint32_t ev) {
  std::uint32_t out = 0;
  if (ev & EPOLLIN) out |= kReadable;
  if (ev & EPOLLOUT) out |= kWritable;
  if (ev & EPOLLERR) out |= kError;
  if (ev & (EPOLLHUP | EPOLLRDHUP)) out |= kHangup;
  return out;
}

[[noreturn]] void throw_errno(const std::string& what) {
  // Environment failures (fd exhaustion, kernel refusal) are not typed
  // input rejections: plain runtime_error, like util/io.h's I/O layer.
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

EpollPoller::EpollPoller() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw_errno("epoll_create1");
}

EpollPoller::~EpollPoller() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EpollPoller::add(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(ADD fd=" + std::to_string(fd) + ")");
  }
}

void EpollPoller::mod(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(MOD fd=" + std::to_string(fd) + ")");
  }
}

void EpollPoller::del(int fd) {
  // ENOENT/EBADF are fine: close() already removed the fd from the set.
  epoll_event ev{};
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
}

std::size_t EpollPoller::wait(std::vector<PollEvent>& out, int timeout_ms) {
  out.clear();
  epoll_event evs[64];
  int n;
  do {
    n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back({evs[i].data.fd, from_epoll(evs[i].events)});
  }
  return static_cast<std::size_t>(n);
}

std::uint64_t SteadyNetClock::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK fd=" + std::to_string(fd) + ")");
  }
  const int fdflags = ::fcntl(fd, F_GETFD, 0);
  if (fdflags >= 0) ::fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC);
}

}  // namespace vbs::net
