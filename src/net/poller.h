// Injectable readiness-notification and clock seams under the event loop.
//
// EventLoop (event_loop.h) is written against two tiny interfaces so tests
// can drive it without real sockets or real time:
//
//   Poller   — add/mod/del fd interest + a blocking wait(). Production is
//              EpollPoller (epoll_create1/epoll_ctl/epoll_wait, level-
//              triggered). Tests can substitute a scripted poller.
//   NetClock — monotonic now_ms(). Production is SteadyNetClock
//              (std::chrono::steady_clock); ManualNetClock lets timer-wheel
//              and deadline tests advance time by hand.
//
// Interest is expressed with the kReadable/kWritable bit mask; wait()
// reports readiness plus kError/kHangup bits the caller never registers
// for. All fds are expected to be non-blocking (see net::set_nonblocking).
#pragma once

#include <cstdint>
#include <vector>

namespace vbs::net {

/// Interest / readiness bits (a simple mask, deliberately not epoll's).
inline constexpr std::uint32_t kReadable = 1u << 0;
inline constexpr std::uint32_t kWritable = 1u << 1;
inline constexpr std::uint32_t kError = 1u << 2;    ///< wait()-only
inline constexpr std::uint32_t kHangup = 1u << 3;   ///< wait()-only

struct PollEvent {
  int fd = -1;
  std::uint32_t events = 0;  ///< kReadable/kWritable/kError/kHangup
};

class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `fd` with the given interest mask. Throws
  /// std::runtime_error if the fd is already registered or the kernel
  /// refuses.
  virtual void add(int fd, std::uint32_t interest) = 0;
  /// Replaces the interest mask of a registered fd.
  virtual void mod(int fd, std::uint32_t interest) = 0;
  /// Deregisters `fd`; quietly ignores an unknown fd (close() may have
  /// already dropped it from the kernel set).
  virtual void del(int fd) = 0;

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll) and appends ready
  /// events to `out` (which is cleared first). Returns the event count;
  /// 0 on timeout. EINTR is retried internally.
  virtual std::size_t wait(std::vector<PollEvent>& out, int timeout_ms) = 0;
};

/// Level-triggered epoll implementation.
class EpollPoller final : public Poller {
 public:
  EpollPoller();
  ~EpollPoller() override;
  EpollPoller(const EpollPoller&) = delete;
  EpollPoller& operator=(const EpollPoller&) = delete;

  void add(int fd, std::uint32_t interest) override;
  void mod(int fd, std::uint32_t interest) override;
  void del(int fd) override;
  std::size_t wait(std::vector<PollEvent>& out, int timeout_ms) override;

 private:
  int epfd_ = -1;
};

/// Monotonic millisecond clock seam for timers and deadlines.
class NetClock {
 public:
  virtual ~NetClock() = default;
  virtual std::uint64_t now_ms() const = 0;
};

class SteadyNetClock final : public NetClock {
 public:
  std::uint64_t now_ms() const override;
};

/// Hand-advanced clock for tests: time moves only via advance()/set().
class ManualNetClock final : public NetClock {
 public:
  std::uint64_t now_ms() const override { return now_; }
  void advance(std::uint64_t ms) { now_ += ms; }
  void set(std::uint64_t ms) { now_ = ms; }

 private:
  std::uint64_t now_ = 0;
};

/// Sets O_NONBLOCK (and FD_CLOEXEC) on `fd`; throws std::runtime_error
/// on fcntl failure.
void set_nonblocking(int fd);

}  // namespace vbs::net
