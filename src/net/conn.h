// Buffered non-blocking connection: the byte-shovelling layer under the
// RPC server and the load-generator client.
//
// A Conn owns one non-blocking socket fd plus an inbound and an outbound
// byte buffer. The event loop calls on_readable()/on_writable() when the
// poller reports readiness; the protocol layer consumes inbuf() and
// appends frames with queue_write(). Writes are opportunistic: queue_write
// tries the socket immediately and only buffers the remainder, so the
// common small-reply case never waits for a poller round-trip.
//
// Hostile-network testing hooks straight into the syscall sites: a
// FaultPlan threaded into the Conn can truncate a read/write to a few
// bytes (net_short), turn an operation into a spurious would-block
// (net_eagain) or sever the connection mid-frame (net_drop). Decisions
// are keyed by splitmix-mixing the connection id with a per-connection
// operation counter, so a plan replays the same hostile schedule against
// the same connection regardless of poll order — the server survives the
// schedule deterministically or the bug reproduces deterministically.
#pragma once

#include <cstdint>
#include <string>

#include "util/fault.h"

namespace vbs::net {

enum class IoStatus {
  kOk,       ///< made progress (or nothing to do)
  kBlocked,  ///< EAGAIN — wait for the next readiness event
  kClosed,   ///< orderly EOF from the peer
  kError,    ///< hard socket error (errno preserved in last_error())
};

class Conn {
 public:
  /// Takes ownership of `fd` (closed in the destructor). `id` keys the
  /// fault schedule and names the conn in logs.
  Conn(int fd, std::uint64_t id, FaultPlan faults = FaultPlan{});
  ~Conn();
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }

  /// Drains the socket into inbuf() until EAGAIN/EOF/error.
  IoStatus on_readable();
  /// Flushes outbuf() to the socket until empty or EAGAIN.
  IoStatus on_writable();

  /// Appends bytes and opportunistically flushes. kOk means fully sent or
  /// buffered; kBlocked means a partial flush left bytes buffered (caller
  /// should enable kWritable interest); kClosed/kError are fatal.
  IoStatus queue_write(const void* data, std::size_t n);
  IoStatus queue_write(const std::string& bytes) {
    return queue_write(bytes.data(), bytes.size());
  }

  std::string& inbuf() { return inbuf_; }
  const std::string& outbuf() const { return outbuf_; }
  bool wants_write() const { return !outbuf_.empty(); }
  std::size_t bytes_in() const { return total_in_; }
  std::size_t bytes_out() const { return total_out_; }
  int last_error() const { return last_errno_; }

  /// Closes the fd now (idempotent); subsequent I/O returns kClosed.
  void close();
  bool closed() const { return fd_ < 0; }

 private:
  /// Per-(conn, op) fault key: pure function of id and the op counter.
  std::uint64_t fault_seq();

  int fd_;
  std::uint64_t id_;
  FaultPlan faults_;
  std::uint64_t op_count_ = 0;
  std::string inbuf_;
  std::string outbuf_;
  std::size_t total_in_ = 0;
  std::size_t total_out_ = 0;
  int last_errno_ = 0;
};

}  // namespace vbs::net
