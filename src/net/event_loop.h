// Single-threaded non-blocking event loop: the reactor under the RPC
// server and the closed-loop load client.
//
//           +--------------------------------------------------+
//           |                    EventLoop                     |
//   fds --->|  Poller.wait()  ->  per-fd callback(events)      |
//           |  TimerWheel     ->  deadline callbacks           |
//   post -->|  eventfd wakeup ->  drain MpscRing<fn>           |
//           +--------------------------------------------------+
//
// One thread calls run(); everything it invokes (fd handlers, timer
// callbacks, posted functions) executes on that thread, so protocol state
// needs no locks. Other threads talk to the loop only through post(),
// which pushes a closure onto a lock-free MPSC ring and pokes an eventfd
// so a parked poller wakes immediately — this is how the service thread
// hands completion frames back to the I/O thread.
//
// The poller and clock are injected (poller.h): production uses
// EpollPoller + SteadyNetClock; tests drive timers with ManualNetClock
// and can script readiness without sockets. Timer deadlines come from a
// hashed wheel (timer_wheel.h); the wheel's next deadline bounds the
// poll timeout so timers fire on time without busy-waiting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/poller.h"
#include "net/ring.h"
#include "net/timer_wheel.h"

namespace vbs::net {

class EventLoop {
 public:
  /// Per-fd readiness callback: `events` is a kReadable/kWritable/
  /// kError/kHangup mask.
  using FdHandler = std::function<void(std::uint32_t events)>;

  /// Defaults to EpollPoller + SteadyNetClock. Pass substitutes to test
  /// without sockets or real time. `post_capacity` bounds the cross-
  /// thread queue; post() blocks (spin+yield) when it is full.
  explicit EventLoop(std::unique_ptr<Poller> poller = nullptr,
                     std::unique_ptr<NetClock> clock = nullptr,
                     std::size_t post_capacity = 4096);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd interest (loop thread only) ---------------------------------------
  void watch(int fd, std::uint32_t interest, FdHandler handler);
  void update(int fd, std::uint32_t interest);
  void unwatch(int fd);
  bool watching(int fd) const { return handlers_.count(fd) != 0; }

  // --- timers (loop thread only) --------------------------------------------
  /// Fires `cb` once, `delay_ms` from now.
  TimerId arm_timer(std::uint64_t delay_ms, std::function<void()> cb);
  bool cancel_timer(TimerId id);

  // --- cross-thread ----------------------------------------------------------
  /// Enqueues `fn` to run on the loop thread; safe from any thread,
  /// including the loop thread itself (runs on the next iteration).
  void post(std::function<void()> fn);
  /// Makes run() return after the current iteration; safe from any thread.
  void stop();

  // --- driving ---------------------------------------------------------------
  /// Runs until stop(). Processes posted functions, expired timers and fd
  /// events each iteration.
  void run();
  /// One iteration with the given poll timeout (-1 = until activity).
  /// Returns the number of fd events + timers + posted fns processed.
  std::size_t run_once(int timeout_ms);

  std::uint64_t now_ms() const { return clock_->now_ms(); }
  NetClock& clock() { return *clock_; }

 private:
  std::size_t drain_posted();
  void wake();

  std::unique_ptr<Poller> poller_;
  std::unique_ptr<NetClock> clock_;
  TimerWheel timers_;
  std::unordered_map<int, FdHandler> handlers_;
  MpscRing<std::function<void()>> posted_;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<PollEvent> events_;  ///< reused per iteration
};

}  // namespace vbs::net
