#include "net/timer_wheel.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace vbs::net {

TimerWheel::TimerWheel(std::uint64_t start_ms, std::uint64_t tick_ms)
    : tick_ms_(tick_ms == 0 ? 1 : tick_ms), current_tick_(start_ms / tick_ms_) {}

TimerId TimerWheel::arm(std::uint64_t deadline_ms, std::function<void()> cb) {
  const std::uint64_t tick = std::max(to_tick(deadline_ms), current_tick_);
  const std::size_t slot = static_cast<std::size_t>(tick % kSlots);
  Entry e;
  e.id = next_id_++;
  e.deadline = tick;
  e.cb = std::move(cb);
  slots_[slot].push_back(std::move(e));
  slot_of_[slots_[slot].back().id] = slot;
  ++live_;
  return slots_[slot].back().id;
}

bool TimerWheel::cancel(TimerId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return false;
  auto& slot = slots_[it->second];
  for (auto e = slot.begin(); e != slot.end(); ++e) {
    if (e->id == id) {
      slot.erase(e);
      break;
    }
  }
  slot_of_.erase(it);
  --live_;
  return true;
}

std::size_t TimerWheel::advance_to(std::uint64_t now_ms) {
  const std::uint64_t target = now_ms / tick_ms_;
  std::size_t fired = 0;
  while (current_tick_ <= target && live_ > 0) {
    // Sweep one full revolution at a time when far behind; per-slot
    // otherwise. Collect due callbacks first so they can re-arm freely.
    const std::uint64_t step_end =
        std::min(target, current_tick_ + kSlots - 1);
    for (std::uint64_t t = current_tick_; t <= step_end; ++t) {
      auto& slot = slots_[t % kSlots];
      std::vector<std::function<void()>> due;
      for (auto e = slot.begin(); e != slot.end();) {
        if (e->deadline <= target) {
          slot_of_.erase(e->id);
          --live_;
          due.push_back(std::move(e->cb));
          e = slot.erase(e);
        } else {
          ++e;
        }
      }
      current_tick_ = t + 1;
      for (auto& cb : due) {
        ++fired;
        cb();  // may arm/cancel; new timers <= target fire in this sweep
      }
      if (live_ == 0) break;
    }
  }
  current_tick_ = std::max(current_tick_, target + 1);
  return fired;
}

int TimerWheel::next_timeout_ms(std::uint64_t now_ms) const {
  if (live_ == 0) return -1;
  std::uint64_t best = UINT64_MAX;
  for (const auto& slot : slots_) {
    for (const auto& e : slot) best = std::min(best, e.deadline);
  }
  const std::uint64_t deadline_ms = best * tick_ms_;
  if (deadline_ms <= now_ms) return 0;
  const std::uint64_t wait = deadline_ms - now_ms;
  return wait > 60'000 ? 60'000 : static_cast<int>(wait);
}

}  // namespace vbs::net
