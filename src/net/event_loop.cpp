#include "net/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/telemetry.h"

namespace vbs::net {

EventLoop::EventLoop(std::unique_ptr<Poller> poller,
                     std::unique_ptr<NetClock> clock,
                     std::size_t post_capacity)
    : poller_(poller ? std::move(poller) : std::make_unique<EpollPoller>()),
      clock_(clock ? std::move(clock) : std::make_unique<SteadyNetClock>()),
      timers_(clock_->now_ms()),
      posted_(post_capacity) {
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    throw std::runtime_error(std::string("eventfd: ") + std::strerror(errno));
  }
  poller_->add(wake_fd_, kReadable);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void EventLoop::watch(int fd, std::uint32_t interest, FdHandler handler) {
  poller_->add(fd, interest);
  handlers_[fd] = std::move(handler);
}

void EventLoop::update(int fd, std::uint32_t interest) {
  poller_->mod(fd, interest);
}

void EventLoop::unwatch(int fd) {
  poller_->del(fd);
  handlers_.erase(fd);
}

TimerId EventLoop::arm_timer(std::uint64_t delay_ms,
                             std::function<void()> cb) {
  return timers_.arm(clock_->now_ms() + delay_ms, std::move(cb));
}

bool EventLoop::cancel_timer(TimerId id) { return timers_.cancel(id); }

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> fn) {
  // Bounded queue: spin-yield on full rather than dropping — posted work
  // carries completions that must not be lost.
  while (!posted_.push(std::move(fn))) {
    wake();
    std::this_thread::yield();
  }
  wake();
}

void EventLoop::stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

std::size_t EventLoop::drain_posted() {
  std::size_t n = 0;
  std::function<void()> fn;
  while (posted_.pop(fn)) {
    fn();
    ++n;
  }
  return n;
}

std::size_t EventLoop::run_once(int timeout_ms) {
  std::size_t processed = drain_posted();
  const int timer_hint = timers_.next_timeout_ms(clock_->now_ms());
  int timeout = timeout_ms;
  if (timer_hint >= 0 && (timeout < 0 || timer_hint < timeout)) {
    timeout = timer_hint;
  }
  if (processed > 0) timeout = 0;  // posted work may have armed more

  poller_->wait(events_, timeout);
  for (const PollEvent& ev : events_) {
    if (ev.fd == wake_fd_) {
      std::uint64_t count = 0;
      while (::read(wake_fd_, &count, sizeof(count)) > 0) {
      }
      continue;
    }
    const auto it = handlers_.find(ev.fd);
    if (it == handlers_.end()) continue;  // unwatched by an earlier handler
    // Copy: the handler may unwatch (erase) itself.
    FdHandler handler = it->second;
    handler(ev.events);
    ++processed;
  }
  processed += timers_.advance_to(clock_->now_ms());
  processed += drain_posted();
  return processed;
}

void EventLoop::run() {
  TELEM_SPAN("net", "event_loop.run");
  // Deliberately no stop_ reset here: a stop() that races ahead of the
  // loop thread entering run() must still win.
  while (!stop_.load(std::memory_order_acquire)) {
    run_once(-1);
  }
}

}  // namespace vbs::net
