// Builds the router's net terminal lists from a packed + placed design:
// LUT pins map to their tile's pin-stub nodes, I/Os to their boundary-port
// wires.
#pragma once

#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"

namespace vbs {

/// The physical macro pin index of LUT input pin k is k; the LUT output is
/// pin L-1 (the last stub, crossing ChanY).
RouteRequest build_route_request(const Fabric& fabric, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl);

}  // namespace vbs
