// Builds the router's net terminal lists from a packed + placed design:
// LUT pins map to their tile's pin-stub nodes, I/Os to their boundary-port
// wires.
#pragma once

#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"

namespace vbs {

/// The physical macro pin index of LUT input pin k is k; the LUT output is
/// pin L-1 (the last stub, crossing ChanY).
///
/// `io_tracks_from_top` reflects every I/O slot's track index to count from
/// the top of the channel (logical track l lands on physical track W-1-l) —
/// a pure renaming of which boundary wires the I/Os occupy. The MCW search
/// uses it so one wide fabric's request stays valid across narrower trial
/// widths: a trial keeps the TOP `w` tracks (PathfinderRouter width_limit),
/// and a from-top port exists there exactly when l < w, the same
/// feasibility condition as a real w-track fabric.
RouteRequest build_route_request(const Fabric& fabric, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 bool io_tracks_from_top = false);

/// Smallest channel width whose boundary ports can carry every placed I/O
/// (max used track + 1, floor 2). Any narrower fabric cannot even express
/// the placement's terminals, so the MCW search starts here.
int min_channel_width_for_io(const Placement& pl);

}  // namespace vbs
