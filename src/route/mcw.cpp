#include "route/mcw.h"

#include <algorithm>
#include <memory>

#include "fabric/fabric.h"
#include "flow/pipeline.h"
#include "route/route_request.h"
#include "util/logging.h"
#include "util/telemetry.h"

namespace vbs {

McwResult find_min_channel_width(const ArchSpec& base_spec, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const McwOptions& opts) {
  telem::Span search_span("mcw", "search");
  const std::uint64_t search_start = telem::now_ns();
  McwResult res;
  int lo = std::max(2, opts.lo);  // below 2 tracks the SB degenerates
  const int hi = opts.hi;

  // The placer's I/O tracks must exist at a trial width, so any width at or
  // below the highest used track is infeasible before routing; the search
  // floor rises to the first width that can carry every placed I/O.
  lo = std::max(lo, min_channel_width_for_io(pl));
  if (lo > hi) return res;  // mcw = -1: no feasible width at all

  // One fabric/route-request pair at the running upper bound, resized
  // (rebuilt wider) only while the doubling probe is still climbing;
  // narrower trials mask tracks instead. Node ids are stable from the
  // first routable width on, which is what makes warm seeding possible.
  std::unique_ptr<Fabric> fabric;
  RouteRequest base_request;
  int fabric_w = 0;
  std::vector<NetRoute> warm;  // last routable solution (narrowest so far)

  auto trial = [&](int width) {
    telem::Span trial_span("mcw", "trial");
    ++res.trials;
    const std::uint64_t t0 = telem::now_ns();
    if (width > fabric_w) {
      ArchSpec spec = base_spec;
      spec.chan_width = width;
      fabric = std::make_unique<Fabric>(spec, pl.grid_w, pl.grid_h);
      // I/O ports counted from the top of the channel, like the kept
      // tracks of a masked trial: the request stays valid at every
      // narrower width whose I/O feasibility check passes.
      base_request = build_route_request(*fabric, nl, pd, pl,
                                         /*io_tracks_from_top=*/true);
      fabric_w = width;
    }
    PathfinderRouter router(*fabric, base_request,
                            width < fabric_w ? width : 0);
    RouterOptions ropts = opts.router;
    const bool seeded = opts.warm_start && !warm.empty();
    bool trusted = false;
    if (seeded) {
      router.seed_routes(warm);
      // A seed can corner the negotiation where a cold route would have
      // converged; a stalled seeded trial rips everything (trees AND
      // history) and reroutes once, so a post-restart verdict is exactly
      // a cold route's verdict. trust_seeded_failures waives that
      // verification and takes the (one-sided) seeded verdict as-is.
      if (opts.trust_seeded_failures) {
        trusted = ropts.stall_restarts == 0;
      } else if (ropts.stall_restarts == 0) {
        ropts.stall_restarts = 1;
      }
    }
    RoutingResult rr = router.route(ropts);
    McwTrial t;
    t.width = width;
    t.routable = rr.success;
    t.iterations = rr.iterations;
    t.heap_pops = rr.heap_pops;
    t.seconds = telem::seconds_since(t0);
    t.seeded = seeded;
    t.skipped_restart = trusted && !rr.success;
    if (t.skipped_restart) ++res.skipped_restarts;
    res.heap_pops += rr.heap_pops;
    trial_span.arg("width", width)
        .arg("routable", (long long)(rr.success ? 1 : 0))
        .arg("pops", rr.heap_pops);
    telem::counter_add("mcw.trials");
    res.trial_log.push_back(t);
    log_debug("mcw trial W=" + std::to_string(width) + ": " +
              (rr.success ? "routable" : "unroutable") + " (" +
              std::to_string(rr.heap_pops) + " pops)");
    if (rr.success) warm = std::move(rr.routes);  // narrowest success so far
    return rr.success;
  };

  // Find a routable upper bound by doubling from the probe hint.
  int known_good = -1;
  int probe = std::max(lo, opts.hint > 0 ? opts.hint : kMcwDefaultProbe);
  probe = std::min(probe, hi);
  while (probe <= hi) {
    if (trial(probe)) {
      known_good = probe;
      break;
    }
    lo = probe + 1;
    if (probe == hi) break;
    probe = std::min(probe * 2, hi);
  }
  if (known_good < 0) {
    res.seconds = telem::seconds_since(search_start);
    return res;  // mcw = -1
  }

  // Bisection in [lo, known_good], biased toward the routable side: probe
  // the upper third of the interval instead of the midpoint. Trial costs
  // are asymmetric — a routable trial converges (and refreshes the warm
  // seed with a narrower solution), while an unroutable one grinds
  // stall_abort congested iterations before giving up, worst of all at
  // deeply-infeasible widths (ex5p's W=8 trial alone was ~60% of its
  // search). Failures still move `lo` past the probe, so the count stays
  // O(log W) — just weighted toward the cheap side.
  int good = known_good;
  while (lo < good) {
    const int mid = good - std::max(1, (good - lo) / 3);
    if (trial(mid)) {
      good = mid;
    } else {
      lo = mid + 1;
    }
  }
  res.mcw = good;
  res.seconds = telem::seconds_since(search_start);
  search_span.arg("mcw", good).arg("trials", (long long)res.trials);
  return res;
}

McwResult find_min_channel_width(FlowPipeline& pipe, const McwOptions& opts) {
  pipe.run_to(Stage::kPlace);
  return find_min_channel_width(pipe.options().arch, pipe.netlist(),
                                pipe.packed(), pipe.placement(), opts);
}

}  // namespace vbs
