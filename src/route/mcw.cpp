#include "route/mcw.h"

#include <algorithm>

#include "fabric/fabric.h"
#include "route/route_request.h"
#include "util/logging.h"

namespace vbs {

namespace {

bool routable_at(const ArchSpec& base, int width, const Netlist& nl,
                 const PackedDesign& pd, const Placement& pl,
                 const RouterOptions& ropts, long long* pops) {
  ArchSpec spec = base;
  spec.chan_width = width;
  // The placer's I/O tracks must exist at this width; placements made at a
  // wider channel stay valid because io_per_tile <= base width / 2 <= width
  // whenever width >= base/2 — otherwise clamp below fails the trial.
  for (const IoSlot& s : pl.io_loc) {
    if (s.track >= width) return false;
  }
  const Fabric fabric(spec, pl.grid_w, pl.grid_h);
  PathfinderRouter router(fabric, build_route_request(fabric, nl, pd, pl));
  const RoutingResult rr = router.route(ropts);
  if (pops) *pops += rr.heap_pops;
  return rr.success;
}

}  // namespace

McwResult find_min_channel_width(const ArchSpec& base_spec, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const McwOptions& opts) {
  McwResult res;
  int lo = std::max(2, opts.lo);  // below 2 tracks the SB degenerates
  int hi = opts.hi;

  // Find a routable upper bound by doubling from the probe hint.
  int known_good = -1;
  int probe = std::max(lo, opts.hint > 0 ? opts.hint : 5);
  while (probe <= hi) {
    ++res.trials;
    if (routable_at(base_spec, probe, nl, pd, pl, opts.router,
                    &res.heap_pops)) {
      known_good = probe;
      break;
    }
    lo = probe + 1;
    probe *= 2;
  }
  if (known_good < 0) {
    res.mcw = -1;
    return res;
  }

  // Binary search in [lo, known_good].
  int good = known_good;
  while (lo < good) {
    const int mid = lo + (good - lo) / 2;
    ++res.trials;
    if (routable_at(base_spec, mid, nl, pd, pl, opts.router, &res.heap_pops)) {
      good = mid;
    } else {
      lo = mid + 1;
    }
  }
  res.mcw = good;
  return res;
}

}  // namespace vbs
