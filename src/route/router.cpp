#include "route/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "util/logging.h"

namespace vbs {

namespace {

struct HeapEntry {
  float est;       ///< path cost + weighted heuristic
  float path;      ///< path cost so far
  std::int32_t node;
  // Min-heap by (est, node id) — the node id tie-break keeps expansion
  // deterministic across runs and platforms.
  bool operator>(const HeapEntry& o) const {
    if (est != o.est) return est > o.est;
    return node > o.node;
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

PathfinderRouter::PathfinderRouter(const Fabric& fabric, RouteRequest request)
    : fabric_(fabric), request_(std::move(request)) {
  const int n = fabric_.num_nodes();
  occ_.assign(static_cast<std::size_t>(n), 0);
  hist_.assign(static_cast<std::size_t>(n), 0.0f);
  path_cost_.assign(static_cast<std::size_t>(n), 0.0f);
  back_node_.assign(static_cast<std::size_t>(n), -1);
  back_edge_.assign(static_cast<std::size_t>(n), -1);
  epoch_of_.assign(static_cast<std::size_t>(n), 0);

  // Mark pin seg-0 nodes as reserved terminals.
  is_pin_.assign(static_cast<std::size_t>(n), 0);
  const MacroModel& mm = fabric_.macro();
  for (int my = 0; my < fabric_.height(); ++my) {
    for (int mx = 0; mx < fabric_.width(); ++mx) {
      for (int p = 0; p < mm.spec().lb_pins(); ++p) {
        is_pin_[static_cast<std::size_t>(
            fabric_.global_node(mx, my, mm.pin_node(p)))] = 1;
      }
    }
  }

  // Route sinks farthest-first (VPR's ordering): stabilizes tree growth.
  for (NetSpec& spec : request_.nets) {
    const Point s = fabric_.node_pos(spec.source);
    std::stable_sort(spec.sinks.begin(), spec.sinks.end(), [&](int a, int b) {
      return manhattan(fabric_.node_pos(a), s) > manhattan(fabric_.node_pos(b), s);
    });
  }
  routes_.resize(request_.nets.size());
}

double PathfinderRouter::node_cost(int v, double pres_fac) const {
  const auto sv = static_cast<std::size_t>(v);
  return (1.0 + hist_[sv]) * (1.0 + pres_fac * occ_[sv]);
}

void PathfinderRouter::rip_up(std::size_t net_idx) {
  for (const NetRoute::TreeNode& tn : routes_[net_idx].nodes) {
    --occ_[static_cast<std::size_t>(tn.rr)];
  }
  routes_[net_idx].nodes.clear();
}

bool PathfinderRouter::route_net(std::size_t net_idx, double pres_fac,
                                 double astar_fac) {
  const NetSpec& spec = request_.nets[net_idx];
  NetRoute& route = routes_[net_idx];
  route.nodes.push_back({spec.source, -1, -1});
  ++occ_[static_cast<std::size_t>(spec.source)];

  const int px1 = fabric_.spec().pins_on_x() + 1;
  const int py1 = fabric_.spec().pins_on_y() + 1;

  MinHeap heap;
  for (const int sink : spec.sinks) {
    if (sink == spec.source) continue;
    ++epoch_;
    heap = MinHeap();
    const Point sink_pos = fabric_.node_pos(sink);
    auto heur = [&](int v) {
      const Point p = fabric_.node_pos(v);
      return static_cast<float>(
          astar_fac * (std::abs(p.x - sink_pos.x) * px1 +
                       std::abs(p.y - sink_pos.y) * py1));
    };
    // Multi-source expansion from the whole current tree.
    for (const NetRoute::TreeNode& tn : route.nodes) {
      const auto v = static_cast<std::size_t>(tn.rr);
      epoch_of_[v] = epoch_;
      path_cost_[v] = 0.0f;
      back_node_[v] = -1;
      back_edge_[v] = -1;
      heap.push({heur(tn.rr), 0.0f, tn.rr});
    }

    bool found = false;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      ++heap_pops_;
      const auto u = static_cast<std::size_t>(top.node);
      if (epoch_of_[u] != epoch_ || top.path != path_cost_[u]) continue;
      if (top.node == sink) {
        found = true;
        break;
      }
      const auto edge_base = fabric_.edge_offset(top.node);
      const auto edges = fabric_.edges(top.node);
      for (std::size_t k = 0; k < edges.size(); ++k) {
        const int v = edges[k].to;
        const auto sv = static_cast<std::size_t>(v);
        if (is_pin_[sv] && v != sink) continue;  // pins are terminals only
        const float npc =
            top.path + static_cast<float>(node_cost(v, pres_fac));
        if (epoch_of_[sv] != epoch_ || npc < path_cost_[sv]) {
          epoch_of_[sv] = epoch_;
          path_cost_[sv] = npc;
          back_node_[sv] = top.node;
          back_edge_[sv] = static_cast<std::int64_t>(edge_base + k);
          heap.push({npc + heur(v), npc, v});
        }
      }
    }
    if (!found) return false;

    // Backtrack: collect the new path (sink up to the tree junction), then
    // append in tree order (junction -> sink).
    std::vector<std::pair<int, std::int64_t>> path;  // (node, edge used)
    int v = sink;
    while (back_node_[static_cast<std::size_t>(v)] != -1) {
      path.push_back({v, back_edge_[static_cast<std::size_t>(v)]});
      v = back_node_[static_cast<std::size_t>(v)];
    }
    // v is a tree node; find its index.
    std::int32_t parent_idx = -1;
    for (std::size_t i = 0; i < route.nodes.size(); ++i) {
      if (route.nodes[i].rr == v) {
        parent_idx = static_cast<std::int32_t>(i);
        break;
      }
    }
    assert(parent_idx >= 0);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      route.nodes.push_back({it->first, parent_idx, it->second});
      ++occ_[static_cast<std::size_t>(it->first)];
      parent_idx = static_cast<std::int32_t>(route.nodes.size() - 1);
    }
  }
  return true;
}

RoutingResult PathfinderRouter::route(const RouterOptions& opts) {
  RoutingResult result;
  double pres_fac = opts.first_iter_pres;
  std::size_t best_overused = static_cast<std::size_t>(-1);
  int best_iter = 0;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    result.iterations = iter;
    for (std::size_t i = 0; i < request_.nets.size(); ++i) {
      if (request_.nets[i].sinks.empty()) continue;
      if (iter > 1) {
        // Only reroute nets currently crossing an overused node.
        bool congested = false;
        for (const NetRoute::TreeNode& tn : routes_[i].nodes) {
          if (occ_[static_cast<std::size_t>(tn.rr)] > 1) {
            congested = true;
            break;
          }
        }
        if (!congested) continue;
        rip_up(i);
      }
      if (!route_net(i, pres_fac, opts.astar_fac)) {
        // Disconnected graph (e.g. W too small for a pin): unroutable.
        result.success = false;
        result.heap_pops = heap_pops_;
        return result;
      }
    }

    std::size_t overused = 0;
    for (std::size_t v = 0; v < occ_.size(); ++v) {
      if (occ_[v] > 1) {
        ++overused;
        hist_[v] += static_cast<float>(opts.hist_fac * (occ_[v] - 1));
      }
    }
    result.overused_nodes = overused;
    if (overused == 0) {
      result.success = true;
      break;
    }
    if (overused < best_overused) {
      best_overused = overused;
      best_iter = iter;
    } else if (opts.stall_abort > 0 && iter - best_iter >= opts.stall_abort) {
      break;  // congestion negotiation has stalled: treat as unroutable
    }
    pres_fac = iter == 1 ? opts.initial_pres : pres_fac * opts.pres_mult;
    log_debug("pathfinder iter " + std::to_string(iter) + ": " +
              std::to_string(overused) + " overused nodes");
  }

  result.routes = std::move(routes_);
  for (const NetRoute& r : result.routes) {
    result.total_wire_nodes += r.nodes.size();
  }
  result.heap_pops = heap_pops_;
  return result;
}

}  // namespace vbs
