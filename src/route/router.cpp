#include "route/router.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "util/logging.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace vbs {

PathfinderRouter::PathfinderRouter(const Fabric& fabric, RouteRequest request,
                                   int width_limit)
    : fabric_(fabric), request_(std::move(request)) {
  const int n = fabric_.num_nodes();
  occ_.assign(static_cast<std::size_t>(n), 0);
  hist_.assign(static_cast<std::size_t>(n), 0.0f);
  node_cost_.assign(static_cast<std::size_t>(n), 0.0f);
  dirty_epoch_of_.assign(static_cast<std::size_t>(n), 0);
  main_.init(n);

  // Mark pin seg-0 nodes as reserved terminals, then mask out every track
  // wire at or above the width limit (the MCW search's narrower trial
  // fabrics are this fabric minus those tracks).
  node_class_.assign(static_cast<std::size_t>(n), kFree);
  const MacroModel& mm = fabric_.macro();
  const ArchSpec& spec = fabric_.spec();
  for (int my = 0; my < fabric_.height(); ++my) {
    for (int mx = 0; mx < fabric_.width(); ++mx) {
      for (int p = 0; p < spec.lb_pins(); ++p) {
        node_class_[static_cast<std::size_t>(
            fabric_.global_node(mx, my, mm.pin_node(p)))] = kPinOnly;
      }
    }
  }
  if (width_limit > 0 && width_limit < spec.chan_width) {
    // Keep the TOP width_limit tracks: pin stubs cross track W-1 first, so
    // the top tracks of this fabric are wired to the pins exactly like the
    // (full) tracks of a width_limit-wide fabric — the masked subgraph is
    // the narrow fabric plus dead stub tails, not an elongated detour. It
    // also means solutions at a wider limit concentrate on wires that
    // survive a narrower one, which is what makes MCW warm seeds live.
    const int px = spec.pins_on_x();
    const int py = spec.pins_on_y();
    auto mask = [&](int mx, int my, int local) {
      node_class_[static_cast<std::size_t>(
          fabric_.global_node(mx, my, local))] = kMasked;
    };
    for (int my = 0; my < fabric_.height(); ++my) {
      for (int mx = 0; mx < fabric_.width(); ++mx) {
        for (int t = 0; t < spec.chan_width - width_limit; ++t) {
          mask(mx, my, mm.xw(t));
          mask(mx, my, mm.ys(t));
          for (int s = 0; s <= px; ++s) mask(mx, my, mm.x(t, s));
          for (int s = 0; s <= py; ++s) mask(mx, my, mm.y(t, s));
        }
      }
    }
  }

  // Route sinks farthest-first (VPR's ordering): stabilizes tree growth.
  // The terminal bounding box of each net doubles as its default expansion
  // window when bounded-box routing is on.
  net_box_.reserve(request_.nets.size());
  for (NetSpec& nspec : request_.nets) {
    const Point s = fabric_.node_pos(nspec.source);
    std::stable_sort(nspec.sinks.begin(), nspec.sinks.end(), [&](int a, int b) {
      return manhattan(fabric_.node_pos(a), s) > manhattan(fabric_.node_pos(b), s);
    });
    BBox box{s.x, s.y, s.x, s.y};
    for (const int sink : nspec.sinks) {
      const Point p = fabric_.node_pos(sink);
      box.x0 = std::min(box.x0, p.x);
      box.x1 = std::max(box.x1, p.x);
      box.y0 = std::min(box.y0, p.y);
      box.y1 = std::max(box.y1, p.y);
    }
    net_box_.push_back(box);
  }
  routes_.resize(request_.nets.size());
}

PathfinderRouter::~PathfinderRouter() = default;

void PathfinderRouter::seed_routes(const std::vector<NetRoute>& prior) {
  assert(prior.size() == request_.nets.size());
  Scratch& s = main_;
  for (std::size_t i = 0; i < prior.size() && i < routes_.size(); ++i) {
    const auto& src = prior[i].nodes;
    auto& dst = routes_[i].nodes;
    assert(dst.empty());
    if (src.empty()) continue;
    // Pass 1 (parents precede children): survives = not masked, surviving
    // parent. The source is a terminal and is never masked.
    s.keep.assign(src.size(), 0);
    for (std::size_t k = 0; k < src.size(); ++k) {
      s.keep[k] =
          node_class_[static_cast<std::size_t>(src[k].rr)] != kMasked &&
          (src[k].parent < 0 ||
           s.keep[static_cast<std::size_t>(src[k].parent)]);
    }
    // Pass 2 (children before parents): drop surviving branches that no
    // longer reach any sink.
    s.begin_tree();
    for (const int sink : request_.nets[i].sinks) {
      s.sink_mark[static_cast<std::size_t>(sink)] = s.tree_epoch;
    }
    s.useful.assign(src.size(), 0);
    for (std::size_t k = src.size(); k-- > 0;) {
      if (s.keep[k] != 0 &&
          s.sink_mark[static_cast<std::size_t>(src[k].rr)] == s.tree_epoch) {
        s.useful[k] = 1;
      }
      if (s.useful[k] != 0 && src[k].parent >= 0) {
        s.useful[static_cast<std::size_t>(src[k].parent)] = 1;
      }
    }
    s.useful[0] = 1;
    // Pass 3: compact with parent remap, occupy the kept wires.
    s.remap.assign(src.size(), -1);
    for (std::size_t k = 0; k < src.size(); ++k) {
      if (s.keep[k] == 0 || s.useful[k] == 0) continue;
      s.remap[k] = static_cast<std::int32_t>(dst.size());
      dst.push_back({src[k].rr,
                     src[k].parent >= 0
                         ? s.remap[static_cast<std::size_t>(src[k].parent)]
                         : -1,
                     src[k].fabric_edge});
      ++occ_[static_cast<std::size_t>(src[k].rr)];
    }
  }
}

namespace {
inline double node_cost_of(double hist, double pres_fac, int occ) {
  return (1.0 + hist) * (1.0 + pres_fac * occ);
}
}  // namespace

void PathfinderRouter::refresh_node_costs(double pres_fac) {
  telem::Span span("route", "cost_refresh");
  pres_fac_ = pres_fac;
  const std::size_t n = occ_.size();
  // One pass over three parallel arrays — contiguous, branchless, and the
  // only place the (1+hist)(1+pres*occ) arithmetic runs per iteration.
  for (std::size_t v = 0; v < n; ++v) {
    node_cost_[v] =
        static_cast<float>(node_cost_of(hist_[v], pres_fac, occ_[v]));
  }
  span.arg("nodes", static_cast<long long>(n));
  telem::counter_add("route.cost_refresh");
}

template <bool kSpec>
int PathfinderRouter::occ_of(const Scratch& s, int v) const {
  const auto sv = static_cast<std::size_t>(v);
  int occ = occ_[sv];
  if constexpr (kSpec) {
    if (s.delta_epoch_of[sv] == s.delta_epoch) occ += s.occ_delta[sv];
  }
  return occ;
}

void PathfinderRouter::bump_delta(Scratch& s, int v, int d) {
  const auto sv = static_cast<std::size_t>(v);
  if (s.delta_epoch_of[sv] != s.delta_epoch) {
    s.delta_epoch_of[sv] = s.delta_epoch;
    s.occ_delta[sv] = 0;
    s.delta_touched.push_back(v);
  }
  s.occ_delta[sv] += d;
}

template <bool kSpec>
void PathfinderRouter::add_occ(Scratch& s, int v, int d) {
  if constexpr (kSpec) {
    bump_delta(s, v, d);
  } else {
    const auto sv = static_cast<std::size_t>(v);
    occ_[sv] = static_cast<std::uint16_t>(static_cast<int>(occ_[sv]) + d);
    // Serial occupancy changes keep the precomputed stride in sync within
    // the iteration; the wholesale refresh at iteration start covers
    // everything else (hist updates, seeding, restarts).
    if (precost_) {
      node_cost_[sv] =
          static_cast<float>(node_cost_of(hist_[sv], pres_fac_, occ_[sv]));
    }
  }
}

void PathfinderRouter::rip_up(std::size_t net_idx) {
  for (const NetRoute::TreeNode& tn : routes_[net_idx].nodes) {
    const auto sv = static_cast<std::size_t>(tn.rr);
    --occ_[sv];
    if (precost_) {
      node_cost_[sv] =
          static_cast<float>(node_cost_of(hist_[sv], pres_fac_, occ_[sv]));
    }
  }
  routes_[net_idx].nodes.clear();
}

template <bool kSpec>
bool PathfinderRouter::net_congested(const NetRoute& route,
                                     const Scratch& s) const {
  for (const NetRoute::TreeNode& tn : route.nodes) {
    if (occ_of<kSpec>(s, tn.rr) > 1) return true;
  }
  return false;
}

template <bool kSpec>
void PathfinderRouter::prune_overused(std::size_t net_idx, Scratch& s,
                                      NetRoute& route) {
  auto& nodes = route.nodes;
  if (nodes.empty()) return;
  for (const int sink : request_.nets[net_idx].sinks) {
    s.sink_mark[static_cast<std::size_t>(sink)] = s.tree_epoch;
  }

  // Pass 1 (parents precede children): legal = not overused, legal parent.
  s.keep.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i == 0) {
      // The source terminal is fixed; rerouting this net cannot relieve
      // overuse on it, so it always survives.
      s.keep[0] = 1;
      continue;
    }
    s.keep[i] = occ_of<kSpec>(s, nodes[i].rr) <= 1 &&
                s.keep[static_cast<std::size_t>(nodes[i].parent)];
  }
  // Pass 2 (children before parents): drop surviving branches that no
  // longer reach any sink — dead stubs would otherwise leak into the final
  // tree as programmed-but-useless switches.
  s.useful.assign(nodes.size(), 0);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (s.keep[i] != 0 &&
        s.sink_mark[static_cast<std::size_t>(nodes[i].rr)] == s.tree_epoch) {
      s.useful[i] = 1;
    }
    if (s.useful[i] != 0 && nodes[i].parent >= 0) {
      s.useful[static_cast<std::size_t>(nodes[i].parent)] = 1;
    }
  }
  s.useful[0] = 1;
  // Pass 3: compact, remap parents, release dropped occupancy.
  s.remap.assign(nodes.size(), -1);
  std::size_t w = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (s.keep[i] == 0 || s.useful[i] == 0) {
      add_occ<kSpec>(s, nodes[i].rr, -1);
      continue;
    }
    s.remap[i] = static_cast<std::int32_t>(w);
    nodes[w] = {nodes[i].rr,
                nodes[i].parent >= 0
                    ? s.remap[static_cast<std::size_t>(nodes[i].parent)]
                    : -1,
                nodes[i].fabric_edge};
    s.tree_idx_of[static_cast<std::size_t>(nodes[i].rr)] =
        static_cast<std::int32_t>(w);
    s.tree_epoch_of[static_cast<std::size_t>(nodes[i].rr)] = s.tree_epoch;
    ++w;
  }
  nodes.resize(w);
}

PathfinderRouter::BBox PathfinderRouter::expansion_box(
    std::size_t net_idx, Point sink_pos, Point near_pos, int level,
    const RouterOptions& opts) const {
  if (!opts.bounded_box || level >= 2) {
    return {0, 0, fabric_.width() - 1, fabric_.height() - 1};
  }
  BBox box;
  int margin;
  if (level == 0) {
    // The connection box: around the sink and the nearest point of the
    // current route tree. The search only needs the corridor between the
    // two; seeding and expanding the rest of a large tree's span is what
    // makes the textbook multi-source formulation balloon.
    box = {std::min(near_pos.x, sink_pos.x), std::min(near_pos.y, sink_pos.y),
           std::max(near_pos.x, sink_pos.x), std::max(near_pos.y, sink_pos.y)};
    margin = opts.bb_margin;
  } else {
    // Grow to the whole net's terminal box with a fattened margin; a
    // second failure is then almost certainly real congestion, handled by
    // level 2 dropping the box entirely.
    box = net_box_[net_idx];
    box.x0 = std::min(box.x0, sink_pos.x);
    box.y0 = std::min(box.y0, sink_pos.y);
    box.x1 = std::max(box.x1, sink_pos.x);
    box.y1 = std::max(box.y1, sink_pos.y);
    margin =
        opts.bb_margin * 2 + (fabric_.width() + fabric_.height()) / 8;
  }
  return {std::max(0, box.x0 - margin), std::max(0, box.y0 - margin),
          std::min(fabric_.width() - 1, box.x1 + margin),
          std::min(fabric_.height() - 1, box.y1 + margin)};
}

template <bool kSpec>
bool PathfinderRouter::expand_to_sink(const NetRoute& route, int sink,
                                      double pres_fac, double astar_fac,
                                      const BBox& box, Scratch& s) {
  const int px1 = fabric_.spec().pins_on_x() + 1;
  const int py1 = fabric_.spec().pins_on_y() + 1;
  const Point sink_pos = fabric_.node_pos(sink);
  auto heur = [&](int v) {
    const Point p = fabric_.node_pos(v);
    return static_cast<float>(
        astar_fac * (std::abs(p.x - sink_pos.x) * px1 +
                     std::abs(p.y - sink_pos.y) * py1));
  };

  s.begin_search();
  s.heap.clear();
  // Multi-source expansion from the tree nodes inside the box (all of them
  // when unbounded). Out-of-box branches cannot be junctions for this
  // connection, and not seeding them is most of the bounded-box win: a
  // seed near the frontier launches a whole A* wavefront of its own.
  for (const NetRoute::TreeNode& tn : route.nodes) {
    if (!box.contains(fabric_.node_pos(tn.rr))) continue;
    const auto v = static_cast<std::size_t>(tn.rr);
    s.epoch_of[v] = s.epoch;
    s.path_cost[v] = 0.0f;
    s.back_node[v] = -1;
    s.back_edge[v] = -1;
    s.heap.push_back({heur(tn.rr), 0.0f, tn.rr});
  }
  std::make_heap(s.heap.begin(), s.heap.end(), std::greater<>{});

  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>{});
    const HeapEntry top = s.heap.back();
    s.heap.pop_back();
    ++s.heap_pops;
    const auto u = static_cast<std::size_t>(top.node);
    if (s.epoch_of[u] != s.epoch || top.path != s.path_cost[u]) continue;
    if (top.node == sink) return true;
    const auto edge_base = fabric_.edge_offset(top.node);
    const auto edges = fabric_.edges(top.node);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const int v = edges[k].to;
      const auto sv = static_cast<std::size_t>(v);
      // Pins are terminals only; masked tracks are not in this fabric.
      const std::uint8_t cls = node_class_[sv];
      if (cls != kFree && (cls == kMasked || v != sink)) continue;
      if (!box.contains(fabric_.node_pos(v))) continue;
      // Congestion cost: one contiguous float read in the common case. A
      // node this task's overlay touched recomputes from the overlay occ —
      // the same double expression node_cost_[sv] was filled from, so the
      // float is bit-identical either way; precost_ off is the reference
      // formulation (flow_bench's kernel leg cross-checks the two).
      float cong;
      if (precost_) {
        cong = node_cost_[sv];
        if constexpr (kSpec) {
          if (s.delta_epoch_of[sv] == s.delta_epoch) {
            cong = static_cast<float>(node_cost_of(
                hist_[sv], pres_fac, occ_[sv] + s.occ_delta[sv]));
          }
        }
      } else {
        cong = static_cast<float>(
            node_cost_of(hist_[sv], pres_fac, occ_of<kSpec>(s, v)));
      }
      const float npc = top.path + cong;
      if (s.epoch_of[sv] != s.epoch || npc < s.path_cost[sv]) {
        if constexpr (kSpec) {
          // First stamp this search == first congestion read: record the
          // dependency. (Re-relaxed nodes are already recorded.)
          if (s.epoch_of[sv] != s.epoch) s.visited.push_back(v);
        }
        s.epoch_of[sv] = s.epoch;
        s.path_cost[sv] = npc;
        s.back_node[sv] = top.node;
        s.back_edge[sv] = static_cast<std::int64_t>(edge_base + k);
        s.heap.push_back({npc + heur(v), npc, v});
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>{});
      }
    }
  }
  return false;
}

template <bool kSpec>
bool PathfinderRouter::route_net(std::size_t net_idx, double pres_fac,
                                 const RouterOptions& opts, Scratch& s,
                                 NetRoute& route) {
  const NetSpec& spec = request_.nets[net_idx];
  s.begin_tree();
  if (route.nodes.empty()) {
    route.nodes.push_back({spec.source, -1, -1});
    s.tree_idx_of[static_cast<std::size_t>(spec.source)] = 0;
    s.tree_epoch_of[static_cast<std::size_t>(spec.source)] = s.tree_epoch;
    add_occ<kSpec>(s, spec.source, +1);
  } else {
    // Incremental reroute: keep the legal part of the previous tree (this
    // re-stamps tree_idx_of, so connected sinks are detected below).
    prune_overused<kSpec>(net_idx, s, route);
  }

  for (const int sink : spec.sinks) {
    if (sink == spec.source) continue;
    // Still legally connected through the kept tree: nothing to do.
    if (s.tree_epoch_of[static_cast<std::size_t>(sink)] == s.tree_epoch) {
      continue;
    }
    // Nearest tree node to the sink anchors the connection box (level 0).
    const Point sink_pos = fabric_.node_pos(sink);
    Point near_pos = fabric_.node_pos(spec.source);
    int near_dist = manhattan(near_pos, sink_pos);
    for (const NetRoute::TreeNode& tn : route.nodes) {
      const Point p = fabric_.node_pos(tn.rr);
      const int d = manhattan(p, sink_pos);
      if (d < near_dist) {
        near_dist = d;
        near_pos = p;
      }
    }
    bool found = false;
    BBox prev_box{-1, -1, -1, -1};
    for (int level = 0; level < 3 && !found; ++level) {
      const BBox box = expansion_box(net_idx, sink_pos, near_pos, level, opts);
      // After fabric clipping a grown box can coincide with the one that
      // just failed (small grids): searching it again finds nothing new.
      if (level > 0 && box == prev_box) continue;
      prev_box = box;
      found = expand_to_sink<kSpec>(route, sink, pres_fac, opts.astar_fac,
                                    box, s);
      if (!found) {
        const bool whole_fabric = box.x0 == 0 && box.y0 == 0 &&
                                  box.x1 == fabric_.width() - 1 &&
                                  box.y1 == fabric_.height() - 1;
        if (whole_fabric) return false;
        ++s.bbox_retries;
      }
    }
    if (!found) return false;

    // Backtrack: collect the new path (sink up to the tree junction), then
    // append in tree order (junction -> sink).
    s.path_scratch.clear();
    int v = sink;
    while (s.back_node[static_cast<std::size_t>(v)] != -1) {
      s.path_scratch.push_back({v, s.back_edge[static_cast<std::size_t>(v)]});
      v = s.back_node[static_cast<std::size_t>(v)];
    }
    // v is a tree node; its tree index is epoch-stamped, O(1).
    assert(s.tree_epoch_of[static_cast<std::size_t>(v)] == s.tree_epoch);
    std::int32_t parent_idx = s.tree_idx_of[static_cast<std::size_t>(v)];
    assert(parent_idx >= 0 &&
           route.nodes[static_cast<std::size_t>(parent_idx)].rr == v);
    for (auto it = s.path_scratch.rbegin(); it != s.path_scratch.rend();
         ++it) {
      route.nodes.push_back({it->first, parent_idx, it->second});
      add_occ<kSpec>(s, it->first, +1);
      parent_idx = static_cast<std::int32_t>(route.nodes.size() - 1);
      s.tree_idx_of[static_cast<std::size_t>(it->first)] = parent_idx;
      s.tree_epoch_of[static_cast<std::size_t>(it->first)] = s.tree_epoch;
    }
  }
  return true;
}

bool PathfinderRouter::serial_iteration_net(std::size_t net_idx, bool full,
                                            double pres_fac,
                                            const RouterOptions& opts,
                                            std::size_t* rerouted) {
  if (!full) {
    // Only reroute nets currently crossing an overused node.
    if (!net_congested<false>(routes_[net_idx], main_)) return true;
    // Textbook mode rebuilds the whole net; incremental mode lets
    // route_net prune and repair just the congested connections.
    if (!opts.incremental_reroute) rip_up(net_idx);
  }
  ++*rerouted;
  return route_net<false>(net_idx, pres_fac, opts, main_, routes_[net_idx]);
}

void PathfinderRouter::run_spec_task(std::size_t net_idx, bool full,
                                     double pres_fac,
                                     const RouterOptions& opts, Scratch& s,
                                     SpecTask& task) {
  task.net = net_idx;
  task.attempted = false;
  task.ok = false;
  task.pops = 0;
  task.retries = 0;
  task.deps.clear();
  task.tree.nodes.clear();
  s.begin_delta();  // fresh occupancy overlay for this task
  s.delta_touched.clear();
  s.visited.clear();

  // The congested check and the prune read the occupancy of every current
  // tree node, so the whole tree is a dependency of the result.
  const NetRoute& cur = routes_[net_idx];
  task.deps.reserve(cur.nodes.size());
  for (const NetRoute::TreeNode& tn : cur.nodes) task.deps.push_back(tn.rr);

  if (!full && !net_congested<true>(cur, s)) return;  // speculative skip

  task.attempted = true;
  task.tree = cur;
  if (!full && !opts.incremental_reroute) {
    // Textbook whole-net rip-up, against the overlay.
    for (const NetRoute::TreeNode& tn : task.tree.nodes) {
      bump_delta(s, tn.rr, -1);
    }
    task.tree.nodes.clear();
  }
  const long long pops0 = s.heap_pops;
  const long long retries0 = s.bbox_retries;
  task.ok = route_net<true>(net_idx, pres_fac, opts, s, task.tree);
  task.pops = s.heap_pops - pops0;
  task.retries = s.bbox_retries - retries0;
  task.deps.insert(task.deps.end(), s.visited.begin(), s.visited.end());
}

void PathfinderRouter::apply_occ_diff(
    const std::vector<NetRoute::TreeNode>& old_nodes,
    const std::vector<NetRoute::TreeNode>& new_nodes) {
  Scratch& s = main_;
  s.begin_delta();
  s.delta_touched.clear();
  for (const NetRoute::TreeNode& tn : old_nodes) bump_delta(s, tn.rr, -1);
  for (const NetRoute::TreeNode& tn : new_nodes) bump_delta(s, tn.rr, +1);
  for (const int v : s.delta_touched) {
    const auto sv = static_cast<std::size_t>(v);
    const int d = s.occ_delta[sv];
    if (d == 0) continue;
    occ_[sv] = static_cast<std::uint16_t>(static_cast<int>(occ_[sv]) + d);
    if (precost_) {
      node_cost_[sv] =
          static_cast<float>(node_cost_of(hist_[sv], pres_fac_, occ_[sv]));
    }
    dirty_epoch_of_[sv] = dirty_epoch_;
  }
}

bool PathfinderRouter::parallel_iteration(const std::vector<std::size_t>& work,
                                          bool full, double pres_fac,
                                          const RouterOptions& opts,
                                          ThreadPool& pool,
                                          RoutingResult& result,
                                          std::size_t* rerouted) {
  const std::size_t batch_cap = static_cast<std::size_t>(pool.size()) *
                                static_cast<std::size_t>(
                                    std::max(1, opts.spec_batch_per_thread));
  if (tasks_.size() < batch_cap) tasks_.resize(batch_cap);
  std::vector<NetRoute::TreeNode> old_nodes;  // redo-path diff snapshot

  std::size_t pos = 0;
  while (pos < work.size()) {
    const std::size_t batch = std::min(batch_cap, work.size() - pos);
    // Dirty marks are relative to this batch's congestion snapshot (same
    // wrap-safe reset path as the scratch epochs).
    RouterScratch::bump_epoch(dirty_epoch_, {&dirty_epoch_of_});
    pool.parallel_for(batch, [&](int rank, std::size_t k) {
      run_spec_task(work[pos + k], full, pres_fac, opts,
                    *spec_scratch_[static_cast<std::size_t>(rank)],
                    tasks_[k]);
    });
    // Commit in net order: a result is valid exactly when nothing it read
    // has changed since the snapshot; otherwise redo it serially — so the
    // state after each commit is byte-identical to the serial router's.
    for (std::size_t k = 0; k < batch; ++k) {
      SpecTask& t = tasks_[k];
      bool clean = true;
      for (const std::int32_t v : t.deps) {
        if (dirty_epoch_of_[static_cast<std::size_t>(v)] == dirty_epoch_) {
          clean = false;
          break;
        }
      }
      if (clean) {
        if (!t.attempted) continue;  // uncongested: serial would skip too
        committed_pops_ += t.pops;
        committed_retries_ += t.retries;
        if (!t.ok) return false;  // serial would fail on this net as well
        ++*rerouted;
        ++result.spec_commits;
        apply_occ_diff(routes_[t.net].nodes, t.tree.nodes);
        routes_[t.net].nodes.swap(t.tree.nodes);
      } else {
        ++result.spec_rejected;
        result.spec_wasted_pops += t.pops;
        old_nodes = routes_[t.net].nodes;
        if (!serial_iteration_net(t.net, full, pres_fac, opts, rerouted)) {
          return false;
        }
        // Conservative dirty-marking: every wire whose occupancy the redo
        // moved invalidates later speculative results of this batch.
        Scratch& s = main_;
        s.begin_delta();
        s.delta_touched.clear();
        for (const NetRoute::TreeNode& tn : old_nodes) {
          bump_delta(s, tn.rr, -1);
        }
        for (const NetRoute::TreeNode& tn : routes_[t.net].nodes) {
          bump_delta(s, tn.rr, +1);
        }
        for (const int v : s.delta_touched) {
          if (s.occ_delta[static_cast<std::size_t>(v)] != 0) {
            dirty_epoch_of_[static_cast<std::size_t>(v)] = dirty_epoch_;
          }
        }
      }
    }
    pos += batch;
  }
  return true;
}

RoutingResult PathfinderRouter::route(const RouterOptions& opts) {
  RoutingResult result;
  precost_ = opts.precomputed_cost;
  const int threads = std::max(1, opts.threads);
  result.threads_used = threads;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    spec_scratch_.clear();
    for (int i = 0; i < threads; ++i) {
      spec_scratch_.push_back(std::make_unique<Scratch>());
      spec_scratch_.back()->init(fabric_.num_nodes());
    }
  }

  // The per-iteration work list: nets with sinks, spatially interleaved.
  // Request order follows netlist construction, so consecutive nets tend
  // to sit in the same fabric region; round-robining over coarse tile
  // cells spreads each speculation batch across the fabric, which is what
  // keeps the batches conflict-free. The order is a pure function of the
  // request, used identically by the serial and parallel engines — it IS
  // the canonical net order both commit in.
  std::vector<std::size_t> work;
  work.reserve(request_.nets.size());
  {
    constexpr int kCells = 4;  // kCells^2 buckets over the fabric
    std::vector<std::vector<std::size_t>> buckets(kCells * kCells);
    for (std::size_t i = 0; i < request_.nets.size(); ++i) {
      if (request_.nets[i].sinks.empty()) continue;
      const BBox& b = net_box_[i];
      const int cx = std::min(kCells - 1, (b.x0 + b.x1) * kCells /
                                              (2 * fabric_.width()));
      const int cy = std::min(kCells - 1, (b.y0 + b.y1) * kCells /
                                              (2 * fabric_.height()));
      buckets[static_cast<std::size_t>(cy * kCells + cx)].push_back(i);
    }
    for (std::size_t k = 0;; ++k) {
      bool any = false;
      for (const auto& bucket : buckets) {
        if (k < bucket.size()) {
          work.push_back(bucket[k]);
          any = true;
        }
      }
      if (!any) break;
    }
  }

  double pres_fac = opts.first_iter_pres;
  std::size_t best_overused = static_cast<std::size_t>(-1);
  int best_iter = 0;
  int restarts_left = opts.stall_restarts;
  bool full_iter = true;  // route everything: iteration 1, or post-restart
  int schedule_start = 0;  // iteration before the current pres schedule
  int iter_limit = opts.max_iterations;

  for (int iter = 1; iter <= iter_limit; ++iter) {
    telem::Span iter_span("route", "iteration");
    const std::uint64_t iter_start = telem::now_ns();
    // hist_ and pres_fac changed since the last iteration: rebuild the
    // congestion-cost stride once, O(V) and vectorizable, instead of
    // paying the two-array arithmetic on every edge relaxation below.
    if (precost_) refresh_node_costs(pres_fac);
    const long long pops_before = total_pops();
    std::size_t rerouted = 0;
    result.iterations = iter;
    bool routable = true;
    if (pool) {
      routable = parallel_iteration(work, full_iter, pres_fac, opts, *pool,
                                    result, &rerouted);
    } else {
      for (const std::size_t i : work) {
        if (!serial_iteration_net(i, full_iter, pres_fac, opts, &rerouted)) {
          routable = false;
          break;
        }
      }
    }
    full_iter = false;
    if (!routable) {
      // Disconnected graph (e.g. W too small for a pin): unroutable.
      result.success = false;
      result.heap_pops = total_pops();
      result.bbox_retries = total_retries();
      return result;
    }

    std::size_t overused = 0;
    for (std::size_t v = 0; v < occ_.size(); ++v) {
      if (occ_[v] > 1) {
        ++overused;
        hist_[v] += static_cast<float>(opts.hist_fac * (occ_[v] - 1));
      }
    }
    result.overused_nodes = overused;
    const long long iter_pops = total_pops() - pops_before;
    result.iter_stats.push_back({iter, telem::seconds_since(iter_start),
                                 iter_pops, rerouted, overused});
    iter_span.arg("iter", iter)
        .arg("pops", iter_pops)
        .arg("rerouted", rerouted)
        .arg("overused", overused);
    telem::counter_add("route.iterations");
    telem::counter_add("route.heap_pops", iter_pops);
    if (overused == 0) {
      result.success = true;
      break;
    }
    // The stall window only resets on a meaningful improvement (> ~3%
    // while overuse is still large): a hopeless trial shedding one node
    // per iteration must not keep a width trial alive indefinitely, while
    // near convergence (small counts) every step counts.
    if (overused < best_overused - best_overused / 32) {
      best_overused = overused;
      best_iter = iter;
    } else {
      best_overused = std::min(best_overused, overused);
    }
    bool give_up =
        opts.stall_abort > 0 && iter - best_iter >= opts.stall_abort;
    // Convergence predictor (also gated on stall_abort): when overuse is
    // still declining but too slowly to reach zero inside the remaining
    // iteration budget, the trial is hopeless — give up now instead of
    // grinding tens of near-identical congested iterations first.
    if (!give_up && opts.stall_abort > 0 && iter - schedule_start > 8) {
      const std::size_t prev =
          result.iter_stats[result.iter_stats.size() - 9].overused_nodes;
      if (prev > overused) {
        const double decline = static_cast<double>(prev - overused) / 8.0;
        give_up = static_cast<double>(overused) / decline >
                  static_cast<double>(iter_limit - iter);
      }
    }
    if (give_up) {
      // A restart is a second opinion for near-misses: a seed can corner
      // the negotiation a handful of overused nodes short of legality,
      // where an unseeded attempt might converge. An attempt stuck
      // hundreds of nodes over capacity is genuinely unroutable — a cold
      // repeat would grind the same iterations to the same verdict.
      constexpr std::size_t kRestartOveruseCap = 64;
      if (restarts_left > 0 && best_overused <= kRestartOveruseCap) {
        // Rip up everything — trees, occupancy AND history — and
        // renegotiate from scratch: a seeded route that cornered itself
        // gets an attempt identical to the unseeded router's, so a
        // post-restart verdict matches a cold route exactly.
        --restarts_left;
        for (std::size_t i = 0; i < routes_.size(); ++i) rip_up(i);
        std::fill(hist_.begin(), hist_.end(), 0.0f);
        pres_fac = opts.first_iter_pres;
        best_overused = static_cast<std::size_t>(-1);
        best_iter = iter;
        schedule_start = iter;
        iter_limit = iter + opts.max_iterations;  // fresh budget: the
        // restarted attempt must behave exactly like an unseeded route
        full_iter = true;
        log_debug("pathfinder iter " + std::to_string(iter) +
                  ": stalled, restarting negotiation");
        continue;
      }
      break;  // congestion negotiation has stalled: treat as unroutable
    }
    pres_fac = iter == schedule_start + 1 ? opts.initial_pres
                                          : pres_fac * opts.pres_mult;
    log_debug("pathfinder iter " + std::to_string(iter) + ": " +
              std::to_string(overused) + " overused nodes");
  }

  result.routes = std::move(routes_);
  for (const NetRoute& r : result.routes) {
    result.total_wire_nodes += r.nodes.size();
  }
  result.heap_pops = total_pops();
  result.bbox_retries = total_retries();
  return result;
}

}  // namespace vbs
