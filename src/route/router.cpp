#include "route/router.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <functional>

#include "util/logging.h"

namespace vbs {

PathfinderRouter::PathfinderRouter(const Fabric& fabric, RouteRequest request)
    : fabric_(fabric), request_(std::move(request)) {
  const int n = fabric_.num_nodes();
  occ_.assign(static_cast<std::size_t>(n), 0);
  hist_.assign(static_cast<std::size_t>(n), 0.0f);
  path_cost_.assign(static_cast<std::size_t>(n), 0.0f);
  back_node_.assign(static_cast<std::size_t>(n), -1);
  back_edge_.assign(static_cast<std::size_t>(n), -1);
  epoch_of_.assign(static_cast<std::size_t>(n), 0);
  tree_idx_of_.assign(static_cast<std::size_t>(n), -1);
  tree_epoch_of_.assign(static_cast<std::size_t>(n), 0);

  // Mark pin seg-0 nodes as reserved terminals.
  is_pin_.assign(static_cast<std::size_t>(n), 0);
  const MacroModel& mm = fabric_.macro();
  for (int my = 0; my < fabric_.height(); ++my) {
    for (int mx = 0; mx < fabric_.width(); ++mx) {
      for (int p = 0; p < mm.spec().lb_pins(); ++p) {
        is_pin_[static_cast<std::size_t>(
            fabric_.global_node(mx, my, mm.pin_node(p)))] = 1;
      }
    }
  }

  // Route sinks farthest-first (VPR's ordering): stabilizes tree growth.
  // The terminal bounding box of each net doubles as its default expansion
  // window when bounded-box routing is on.
  net_box_.reserve(request_.nets.size());
  for (NetSpec& spec : request_.nets) {
    const Point s = fabric_.node_pos(spec.source);
    std::stable_sort(spec.sinks.begin(), spec.sinks.end(), [&](int a, int b) {
      return manhattan(fabric_.node_pos(a), s) > manhattan(fabric_.node_pos(b), s);
    });
    BBox box{s.x, s.y, s.x, s.y};
    for (const int sink : spec.sinks) {
      const Point p = fabric_.node_pos(sink);
      box.x0 = std::min(box.x0, p.x);
      box.x1 = std::max(box.x1, p.x);
      box.y0 = std::min(box.y0, p.y);
      box.y1 = std::max(box.y1, p.y);
    }
    net_box_.push_back(box);
  }
  routes_.resize(request_.nets.size());
}

double PathfinderRouter::node_cost(int v, double pres_fac) const {
  const auto sv = static_cast<std::size_t>(v);
  return (1.0 + hist_[sv]) * (1.0 + pres_fac * occ_[sv]);
}

void PathfinderRouter::rip_up(std::size_t net_idx) {
  for (const NetRoute::TreeNode& tn : routes_[net_idx].nodes) {
    --occ_[static_cast<std::size_t>(tn.rr)];
  }
  routes_[net_idx].nodes.clear();
}

void PathfinderRouter::prune_overused(std::size_t net_idx) {
  auto& nodes = routes_[net_idx].nodes;
  if (nodes.empty()) return;
  if (sink_mark_.empty()) {
    sink_mark_.assign(static_cast<std::size_t>(fabric_.num_nodes()), 0);
  }
  for (const int sink : request_.nets[net_idx].sinks) {
    sink_mark_[static_cast<std::size_t>(sink)] = tree_epoch_;
  }

  // Pass 1 (parents precede children): legal = not overused, legal parent.
  keep_scratch_.assign(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i == 0) {
      // The source terminal is fixed; rerouting this net cannot relieve
      // overuse on it, so it always survives.
      keep_scratch_[0] = 1;
      continue;
    }
    keep_scratch_[i] =
        occ_[static_cast<std::size_t>(nodes[i].rr)] <= 1 &&
        keep_scratch_[static_cast<std::size_t>(nodes[i].parent)];
  }
  // Pass 2 (children before parents): drop surviving branches that no
  // longer reach any sink — dead stubs would otherwise leak into the final
  // tree as programmed-but-useless switches.
  useful_scratch_.assign(nodes.size(), 0);
  for (std::size_t i = nodes.size(); i-- > 0;) {
    if (keep_scratch_[i] != 0 &&
        sink_mark_[static_cast<std::size_t>(nodes[i].rr)] == tree_epoch_) {
      useful_scratch_[i] = 1;
    }
    if (useful_scratch_[i] != 0 && nodes[i].parent >= 0) {
      useful_scratch_[static_cast<std::size_t>(nodes[i].parent)] = 1;
    }
  }
  useful_scratch_[0] = 1;
  // Pass 3: compact, remap parents, release dropped occupancy.
  remap_scratch_.assign(nodes.size(), -1);
  std::size_t w = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (keep_scratch_[i] == 0 || useful_scratch_[i] == 0) {
      --occ_[static_cast<std::size_t>(nodes[i].rr)];
      continue;
    }
    remap_scratch_[i] = static_cast<std::int32_t>(w);
    nodes[w] = {nodes[i].rr,
                nodes[i].parent >= 0
                    ? remap_scratch_[static_cast<std::size_t>(nodes[i].parent)]
                    : -1,
                nodes[i].fabric_edge};
    tree_idx_of_[static_cast<std::size_t>(nodes[i].rr)] =
        static_cast<std::int32_t>(w);
    tree_epoch_of_[static_cast<std::size_t>(nodes[i].rr)] = tree_epoch_;
    ++w;
  }
  nodes.resize(w);
}

PathfinderRouter::BBox PathfinderRouter::expansion_box(
    std::size_t net_idx, Point sink_pos, Point near_pos, int level,
    const RouterOptions& opts) const {
  if (!opts.bounded_box || level >= 2) {
    return {0, 0, fabric_.width() - 1, fabric_.height() - 1};
  }
  BBox box;
  int margin;
  if (level == 0) {
    // The connection box: around the sink and the nearest point of the
    // current route tree. The search only needs the corridor between the
    // two; seeding and expanding the rest of a large tree's span is what
    // makes the textbook multi-source formulation balloon.
    box = {std::min(near_pos.x, sink_pos.x), std::min(near_pos.y, sink_pos.y),
           std::max(near_pos.x, sink_pos.x), std::max(near_pos.y, sink_pos.y)};
    margin = opts.bb_margin;
  } else {
    // Grow to the whole net's terminal box with a fattened margin; a
    // second failure is then almost certainly real congestion, handled by
    // level 2 dropping the box entirely.
    box = net_box_[net_idx];
    box.x0 = std::min(box.x0, sink_pos.x);
    box.y0 = std::min(box.y0, sink_pos.y);
    box.x1 = std::max(box.x1, sink_pos.x);
    box.y1 = std::max(box.y1, sink_pos.y);
    margin =
        opts.bb_margin * 2 + (fabric_.width() + fabric_.height()) / 8;
  }
  return {std::max(0, box.x0 - margin), std::max(0, box.y0 - margin),
          std::min(fabric_.width() - 1, box.x1 + margin),
          std::min(fabric_.height() - 1, box.y1 + margin)};
}

bool PathfinderRouter::expand_to_sink(std::size_t net_idx, int sink,
                                      double pres_fac, double astar_fac,
                                      const BBox& box) {
  const NetRoute& route = routes_[net_idx];
  const int px1 = fabric_.spec().pins_on_x() + 1;
  const int py1 = fabric_.spec().pins_on_y() + 1;
  const Point sink_pos = fabric_.node_pos(sink);
  auto heur = [&](int v) {
    const Point p = fabric_.node_pos(v);
    return static_cast<float>(
        astar_fac * (std::abs(p.x - sink_pos.x) * px1 +
                     std::abs(p.y - sink_pos.y) * py1));
  };

  ++epoch_;
  heap_.clear();
  // Multi-source expansion from the tree nodes inside the box (all of them
  // when unbounded). Out-of-box branches cannot be junctions for this
  // connection, and not seeding them is most of the bounded-box win: a
  // seed near the frontier launches a whole A* wavefront of its own.
  for (const NetRoute::TreeNode& tn : route.nodes) {
    if (!box.contains(fabric_.node_pos(tn.rr))) continue;
    const auto v = static_cast<std::size_t>(tn.rr);
    epoch_of_[v] = epoch_;
    path_cost_[v] = 0.0f;
    back_node_[v] = -1;
    back_edge_[v] = -1;
    heap_.push_back({heur(tn.rr), 0.0f, tn.rr});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});

  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    ++heap_pops_;
    const auto u = static_cast<std::size_t>(top.node);
    if (epoch_of_[u] != epoch_ || top.path != path_cost_[u]) continue;
    if (top.node == sink) return true;
    const auto edge_base = fabric_.edge_offset(top.node);
    const auto edges = fabric_.edges(top.node);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const int v = edges[k].to;
      const auto sv = static_cast<std::size_t>(v);
      if (is_pin_[sv] && v != sink) continue;  // pins are terminals only
      if (!box.contains(fabric_.node_pos(v))) continue;
      const float npc = top.path + static_cast<float>(node_cost(v, pres_fac));
      if (epoch_of_[sv] != epoch_ || npc < path_cost_[sv]) {
        epoch_of_[sv] = epoch_;
        path_cost_[sv] = npc;
        back_node_[sv] = top.node;
        back_edge_[sv] = static_cast<std::int64_t>(edge_base + k);
        heap_.push_back({npc + heur(v), npc, v});
        std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
      }
    }
  }
  return false;
}

bool PathfinderRouter::route_net(std::size_t net_idx, double pres_fac,
                                 const RouterOptions& opts) {
  const NetSpec& spec = request_.nets[net_idx];
  NetRoute& route = routes_[net_idx];
  ++tree_epoch_;
  if (route.nodes.empty()) {
    route.nodes.push_back({spec.source, -1, -1});
    tree_idx_of_[static_cast<std::size_t>(spec.source)] = 0;
    tree_epoch_of_[static_cast<std::size_t>(spec.source)] = tree_epoch_;
    ++occ_[static_cast<std::size_t>(spec.source)];
  } else {
    // Incremental reroute: keep the legal part of the previous tree (this
    // re-stamps tree_idx_of_, so connected sinks are detected below).
    prune_overused(net_idx);
  }

  for (const int sink : spec.sinks) {
    if (sink == spec.source) continue;
    // Still legally connected through the kept tree: nothing to do.
    if (tree_epoch_of_[static_cast<std::size_t>(sink)] == tree_epoch_) {
      continue;
    }
    // Nearest tree node to the sink anchors the connection box (level 0).
    const Point sink_pos = fabric_.node_pos(sink);
    Point near_pos = fabric_.node_pos(spec.source);
    int near_dist = manhattan(near_pos, sink_pos);
    for (const NetRoute::TreeNode& tn : route.nodes) {
      const Point p = fabric_.node_pos(tn.rr);
      const int d = manhattan(p, sink_pos);
      if (d < near_dist) {
        near_dist = d;
        near_pos = p;
      }
    }
    bool found = false;
    BBox prev_box{-1, -1, -1, -1};
    for (int level = 0; level < 3 && !found; ++level) {
      const BBox box = expansion_box(net_idx, sink_pos, near_pos, level, opts);
      // After fabric clipping a grown box can coincide with the one that
      // just failed (small grids): searching it again finds nothing new.
      if (level > 0 && box == prev_box) continue;
      prev_box = box;
      found = expand_to_sink(net_idx, sink, pres_fac, opts.astar_fac, box);
      if (!found) {
        const bool whole_fabric = box.x0 == 0 && box.y0 == 0 &&
                                  box.x1 == fabric_.width() - 1 &&
                                  box.y1 == fabric_.height() - 1;
        if (whole_fabric) return false;
        ++bbox_retries_;
      }
    }
    if (!found) return false;

    // Backtrack: collect the new path (sink up to the tree junction), then
    // append in tree order (junction -> sink).
    path_scratch_.clear();
    int v = sink;
    while (back_node_[static_cast<std::size_t>(v)] != -1) {
      path_scratch_.push_back({v, back_edge_[static_cast<std::size_t>(v)]});
      v = back_node_[static_cast<std::size_t>(v)];
    }
    // v is a tree node; its tree index is epoch-stamped, O(1).
    assert(tree_epoch_of_[static_cast<std::size_t>(v)] == tree_epoch_);
    std::int32_t parent_idx = tree_idx_of_[static_cast<std::size_t>(v)];
    assert(parent_idx >= 0 &&
           route.nodes[static_cast<std::size_t>(parent_idx)].rr == v);
    for (auto it = path_scratch_.rbegin(); it != path_scratch_.rend(); ++it) {
      route.nodes.push_back({it->first, parent_idx, it->second});
      ++occ_[static_cast<std::size_t>(it->first)];
      parent_idx = static_cast<std::int32_t>(route.nodes.size() - 1);
      tree_idx_of_[static_cast<std::size_t>(it->first)] = parent_idx;
      tree_epoch_of_[static_cast<std::size_t>(it->first)] = tree_epoch_;
    }
  }
  return true;
}

RoutingResult PathfinderRouter::route(const RouterOptions& opts) {
  RoutingResult result;
  double pres_fac = opts.first_iter_pres;
  std::size_t best_overused = static_cast<std::size_t>(-1);
  int best_iter = 0;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    const auto iter_start = std::chrono::steady_clock::now();
    const long long pops_before = heap_pops_;
    std::size_t rerouted = 0;
    result.iterations = iter;
    for (std::size_t i = 0; i < request_.nets.size(); ++i) {
      if (request_.nets[i].sinks.empty()) continue;
      if (iter > 1) {
        // Only reroute nets currently crossing an overused node.
        bool congested = false;
        for (const NetRoute::TreeNode& tn : routes_[i].nodes) {
          if (occ_[static_cast<std::size_t>(tn.rr)] > 1) {
            congested = true;
            break;
          }
        }
        if (!congested) continue;
        // Textbook mode rebuilds the whole net; incremental mode lets
        // route_net prune and repair just the congested connections.
        if (!opts.incremental_reroute) rip_up(i);
      }
      ++rerouted;
      if (!route_net(i, pres_fac, opts)) {
        // Disconnected graph (e.g. W too small for a pin): unroutable.
        result.success = false;
        result.heap_pops = heap_pops_;
        result.bbox_retries = bbox_retries_;
        return result;
      }
    }

    std::size_t overused = 0;
    for (std::size_t v = 0; v < occ_.size(); ++v) {
      if (occ_[v] > 1) {
        ++overused;
        hist_[v] += static_cast<float>(opts.hist_fac * (occ_[v] - 1));
      }
    }
    result.overused_nodes = overused;
    result.iter_stats.push_back(
        {iter,
         std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       iter_start)
             .count(),
         heap_pops_ - pops_before, rerouted, overused});
    if (overused == 0) {
      result.success = true;
      break;
    }
    if (overused < best_overused) {
      best_overused = overused;
      best_iter = iter;
    } else if (opts.stall_abort > 0 && iter - best_iter >= opts.stall_abort) {
      break;  // congestion negotiation has stalled: treat as unroutable
    }
    pres_fac = iter == 1 ? opts.initial_pres : pres_fac * opts.pres_mult;
    log_debug("pathfinder iter " + std::to_string(iter) + ": " +
              std::to_string(overused) + " overused nodes");
  }

  result.routes = std::move(routes_);
  for (const NetRoute& r : result.routes) {
    result.total_wire_nodes += r.nodes.size();
  }
  result.heap_pops = heap_pops_;
  result.bbox_retries = bbox_retries_;
  return result;
}

}  // namespace vbs
