#include "route/route_request.h"

#include <algorithm>
#include <stdexcept>

namespace vbs {

RouteRequest build_route_request(const Fabric& fabric, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 bool io_tracks_from_top) {
  if (pl.grid_w != fabric.width() || pl.grid_h != fabric.height()) {
    throw std::invalid_argument("route request: placement/fabric size mismatch");
  }
  const MacroModel& mm = fabric.macro();
  const ArchSpec& spec = fabric.spec();
  const int out_pin = spec.lb_pins() - 1;

  std::vector<NetSpec> specs(static_cast<std::size_t>(nl.num_nets()));
  for (NetId n = 0; n < nl.num_nets(); ++n) specs[static_cast<std::size_t>(n)].net = n;

  // LUT terminals.
  for (int i = 0; i < pd.num_luts(); ++i) {
    const Point at = pl.lut_loc[static_cast<std::size_t>(i)];
    const BlockId bi = pd.luts[static_cast<std::size_t>(i)];
    const Block& b = nl.block(bi);
    specs[static_cast<std::size_t>(b.output)].source =
        fabric.global_node(at.x, at.y, mm.pin_node(out_pin));
    const auto& pins = pd.lut_pins[static_cast<std::size_t>(i)];
    for (int k = 0; k < spec.lut_k; ++k) {
      const NetId in = pins[static_cast<std::size_t>(k)];
      if (in == kNoNet) continue;
      specs[static_cast<std::size_t>(in)].sinks.push_back(
          fabric.global_node(at.x, at.y, mm.pin_node(k)));
    }
  }

  // I/O terminals on boundary ports.
  for (int i = 0; i < pd.num_ios(); ++i) {
    const BlockId bi = pd.ios[static_cast<std::size_t>(i)];
    const Block& b = nl.block(bi);
    IoSlot slot = pl.io_loc[static_cast<std::size_t>(i)];
    if (io_tracks_from_top) slot.track = spec.chan_width - 1 - slot.track;
    const Point tile = pl.io_tile(slot);
    const int node =
        fabric.port_global(tile.x, tile.y, io_port_id(slot, spec));
    if (b.type == BlockType::kInput) {
      specs[static_cast<std::size_t>(b.output)].source = node;
    } else {
      specs[static_cast<std::size_t>(b.inputs[0])].sinks.push_back(node);
    }
  }

  RouteRequest req;
  for (NetSpec& s : specs) {
    if (s.source < 0) {
      throw std::logic_error("route request: net without placed source");
    }
    if (s.sinks.empty()) continue;  // dangling nets need no routing
    req.nets.push_back(std::move(s));
  }
  return req;
}

int min_channel_width_for_io(const Placement& pl) {
  int floor = 2;
  for (const IoSlot& s : pl.io_loc) floor = std::max(floor, s.track + 1);
  return floor;
}

}  // namespace vbs
