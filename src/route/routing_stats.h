// Post-routing analysis: per-macro routing density and channel utilization.
//
// Backs the paper's Fig. 4 discussion — "the VBS coding is especially
// efficient in sparse macros ... whereas congested locations see little to
// no enhancement" — with measurable numbers: how many switches each macro
// uses, how occupied the channels are, and how macro density correlates
// with the size of its VBS record.
#pragma once

#include <vector>

#include "fabric/fabric.h"
#include "route/router.h"

namespace vbs {

struct RoutingStats {
  /// Per macro: number of ON routing switches (0..Nraw-NLB).
  std::vector<int> switches_per_macro;
  /// Per macro: distinct nets with at least one switch in the macro.
  std::vector<int> nets_per_macro;
  /// Total wire nodes over all route trees.
  std::size_t total_wire_nodes = 0;
  /// Fraction of all routing switches that are ON, in [0,1].
  double switch_utilization = 0.0;

  int max_switches() const;
  double mean_switches() const;
  /// Macros with no routing at all.
  int empty_macros() const;
};

RoutingStats compute_routing_stats(const Fabric& fabric,
                                   const std::vector<NetRoute>& routes);

/// Pearson correlation between two equally sized samples (0 if degenerate).
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace vbs
