// PathFinder negotiated-congestion router (McMurchie & Ebeling, FPGA'95),
// the algorithm VPR uses, over the fabric's routing-resource graph.
//
// Each net is routed as a tree grown sink by sink with A*-directed Dijkstra
// expansion; congestion is negotiated across iterations through present-
// usage and history costs until no routing resource is overused.
//
// Hot-path configuration (each individually toggleable via RouterOptions;
// `flow_bench` measures the defaults against the textbook baseline):
//   * bounded_box (default ON): expansion and tree seeding restricted to
//     the box around the sink and the nearest tree point plus `bb_margin`
//     tiles, VPR's classic pruning. A connection that cannot complete
//     inside its box is retried with the net's whole terminal box and
//     finally with no box at all, so bounding never turns a routable
//     design into an unroutable one.
//   * incremental_reroute (default ON): congested nets keep the legal part
//     of their tree across iterations and reroute only the connections
//     crossing overused nodes, instead of whole-net rip-up.
//   * astar_fac (default 1.5): calibrated heuristic weight, see below.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/fabric.h"
#include "netlist/netlist.h"

namespace vbs {

/// Routing terminals of one net, as global RR nodes.
struct NetSpec {
  NetId net = kNoNet;
  int source = -1;
  std::vector<int> sinks;
};

struct RouteRequest {
  std::vector<NetSpec> nets;
};

/// A routed net: a tree over RR nodes. nodes[0] is the source (parent -1);
/// every other entry records the RR node, its parent entry index, and the
/// fabric edge (switch) index used to reach it — enough to recover the
/// exact set of programmable switches to turn on.
struct NetRoute {
  struct TreeNode {
    std::int32_t rr;
    std::int32_t parent;       ///< index into nodes, -1 for the source
    std::int64_t fabric_edge;  ///< index into the fabric edge array, -1 at source
  };
  std::vector<TreeNode> nodes;
};

struct RouterOptions {
  int max_iterations = 50;
  double first_iter_pres = 0.0;   ///< free overlap on the first iteration
  double initial_pres = 0.5;      ///< present-congestion factor, iteration 2
  double pres_mult = 1.8;         ///< growth per iteration
  double hist_fac = 1.0;          ///< history accumulation per overuse
  /// A* heuristic weight (>1 trades wire quality for search speed). The
  /// default was calibrated on the MCNC-like suite (see BENCH_flow.json):
  /// versus the 1.15 the seed shipped, 1.5 cuts heap pops ~2x at ~2% more
  /// wire; the empty-fabric per-tile scale underestimates congested-
  /// iteration costs, so a stronger weight keeps the wave directed.
  double astar_fac = 1.5;
  /// Abort as unroutable when the overused-node count has not improved for
  /// this many iterations (0 = disabled). Used by the minimum-channel-width
  /// search to cut hopeless trials short.
  int stall_abort = 0;
  /// Restrict each connection's expansion (and its tree seeds) to the box
  /// around the sink and the nearest point of the current route tree,
  /// grown by `bb_margin` tiles (default on). A failing connection
  /// automatically retries with the whole terminal box and then unbounded,
  /// so this is a pure pruning optimization, never a routability change.
  bool bounded_box = true;
  /// Tiles added on every side of the bounding box.
  int bb_margin = 3;
  /// On reroute iterations, keep the legal part of a congested net's tree
  /// and reroute only the connections whose path crosses an overused node,
  /// instead of ripping up and rebuilding the whole net (default on).
  /// Off = the textbook whole-net rip-up, the flow_bench baseline.
  bool incremental_reroute = true;
};

/// Per-PathFinder-iteration counters, for perf trajectories (flow_bench)
/// and congestion-convergence debugging.
struct RouteIterStats {
  int iteration = 0;
  double seconds = 0.0;            ///< wall time of this iteration
  long long heap_pops = 0;         ///< pops spent in this iteration
  std::size_t rerouted_nets = 0;   ///< nets (re)routed this iteration
  std::size_t overused_nodes = 0;  ///< congestion after this iteration
};

struct RoutingResult {
  bool success = false;
  int iterations = 0;
  std::vector<NetRoute> routes;  ///< parallel to RouteRequest::nets
  std::size_t total_wire_nodes = 0;
  std::size_t overused_nodes = 0;  ///< at exit (0 on success)
  long long heap_pops = 0;
  /// Connections that failed inside their bounding box and were retried
  /// with a grown / unbounded box (0 unless the box was too tight).
  long long bbox_retries = 0;
  std::vector<RouteIterStats> iter_stats;  ///< one entry per iteration
};

class PathfinderRouter {
 public:
  PathfinderRouter(const Fabric& fabric, RouteRequest request);

  RoutingResult route(const RouterOptions& opts = {});

 private:
  /// Inclusive tile-coordinate expansion window.
  struct BBox {
    int x0, y0, x1, y1;
    bool contains(Point p) const {
      return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
    }
    friend bool operator==(const BBox&, const BBox&) = default;
  };

  bool route_net(std::size_t net_idx, double pres_fac,
                 const RouterOptions& opts);
  /// One A* wave from the current tree of `net_idx` to `sink` within `box`.
  bool expand_to_sink(std::size_t net_idx, int sink, double pres_fac,
                      double astar_fac, const BBox& box);
  /// Expansion window for escalation level 0 (sink-to-tree connection box
  /// plus margin), 1 (whole terminal box, grown margin), 2 (whole fabric).
  BBox expansion_box(std::size_t net_idx, Point sink_pos, Point near_pos,
                     int level, const RouterOptions& opts) const;
  void rip_up(std::size_t net_idx);
  /// Drops tree nodes sitting on (or downstream of) an overused node, plus
  /// any surviving branch that no longer leads to a sink, releasing their
  /// occupancy. Keeps the source. Re-stamps tree_idx_of_ for the kept
  /// nodes under the current tree_epoch_.
  void prune_overused(std::size_t net_idx);
  double node_cost(int v, double pres_fac) const;

  const Fabric& fabric_;
  RouteRequest request_;
  std::vector<NetRoute> routes_;

  // Per-RR-node congestion state.
  std::vector<std::uint16_t> occ_;
  std::vector<float> hist_;
  /// Pin-stub seg-0 nodes are reserved: usable only as a net's own terminal
  /// (prevents shorting foreign signals onto LUT pins).
  std::vector<std::uint8_t> is_pin_;

  /// Terminal bounding box of each net (tile coordinates, no margin).
  std::vector<BBox> net_box_;

  // Per-connection search state, epoch-stamped to avoid O(V) clears.
  std::vector<float> path_cost_;
  std::vector<std::int32_t> back_node_;
  std::vector<std::int64_t> back_edge_;
  std::vector<std::uint32_t> epoch_of_;
  std::uint32_t epoch_ = 0;

  // Reusable scratch arenas: the heap and backtrack path keep their
  // capacity across sinks, nets and iterations instead of reallocating.
  struct HeapEntry {
    float est;   ///< path cost + weighted heuristic
    float path;  ///< path cost so far
    std::int32_t node;
    // Min-heap by (est, node id) — the node id tie-break keeps expansion
    // deterministic across runs and platforms.
    bool operator>(const HeapEntry& o) const {
      if (est != o.est) return est > o.est;
      return node > o.node;
    }
  };
  std::vector<HeapEntry> heap_;
  std::vector<std::pair<int, std::int64_t>> path_scratch_;
  // prune_overused scratch: per-tree-node keep flags and index remap, plus
  // an epoch-stamped sink marker per RR node.
  std::vector<std::uint8_t> keep_scratch_;
  std::vector<std::uint8_t> useful_scratch_;
  std::vector<std::int32_t> remap_scratch_;
  std::vector<std::uint32_t> sink_mark_;

  // O(1) tree-junction lookup in backtrack: rr node -> index in the current
  // net's route tree, epoch-stamped per route_net call.
  std::vector<std::int32_t> tree_idx_of_;
  std::vector<std::uint32_t> tree_epoch_of_;
  std::uint32_t tree_epoch_ = 0;

  long long heap_pops_ = 0;
  long long bbox_retries_ = 0;
};

}  // namespace vbs
