// PathFinder negotiated-congestion router (McMurchie & Ebeling, FPGA'95),
// the algorithm VPR uses, over the fabric's routing-resource graph.
//
// Each net is routed as a tree grown sink by sink with A*-directed Dijkstra
// expansion; congestion is negotiated across iterations through present-
// usage and history costs until no routing resource is overused.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/fabric.h"
#include "netlist/netlist.h"

namespace vbs {

/// Routing terminals of one net, as global RR nodes.
struct NetSpec {
  NetId net = kNoNet;
  int source = -1;
  std::vector<int> sinks;
};

struct RouteRequest {
  std::vector<NetSpec> nets;
};

/// A routed net: a tree over RR nodes. nodes[0] is the source (parent -1);
/// every other entry records the RR node, its parent entry index, and the
/// fabric edge (switch) index used to reach it — enough to recover the
/// exact set of programmable switches to turn on.
struct NetRoute {
  struct TreeNode {
    std::int32_t rr;
    std::int32_t parent;       ///< index into nodes, -1 for the source
    std::int64_t fabric_edge;  ///< index into the fabric edge array, -1 at source
  };
  std::vector<TreeNode> nodes;
};

struct RouterOptions {
  int max_iterations = 50;
  double first_iter_pres = 0.0;   ///< free overlap on the first iteration
  double initial_pres = 0.5;      ///< present-congestion factor, iteration 2
  double pres_mult = 1.8;         ///< growth per iteration
  double hist_fac = 1.0;          ///< history accumulation per overuse
  double astar_fac = 1.15;        ///< heuristic weight (>1 trades quality)
  /// Abort as unroutable when the overused-node count has not improved for
  /// this many iterations (0 = disabled). Used by the minimum-channel-width
  /// search to cut hopeless trials short.
  int stall_abort = 0;
};

struct RoutingResult {
  bool success = false;
  int iterations = 0;
  std::vector<NetRoute> routes;  ///< parallel to RouteRequest::nets
  std::size_t total_wire_nodes = 0;
  std::size_t overused_nodes = 0;  ///< at exit (0 on success)
  long long heap_pops = 0;
};

class PathfinderRouter {
 public:
  PathfinderRouter(const Fabric& fabric, RouteRequest request);

  RoutingResult route(const RouterOptions& opts = {});

 private:
  struct NodeState;
  bool route_net(std::size_t net_idx, double pres_fac, double astar_fac);
  void rip_up(std::size_t net_idx);
  double node_cost(int v, double pres_fac) const;

  const Fabric& fabric_;
  RouteRequest request_;
  std::vector<NetRoute> routes_;

  // Per-RR-node congestion state.
  std::vector<std::uint16_t> occ_;
  std::vector<float> hist_;
  /// Pin-stub seg-0 nodes are reserved: usable only as a net's own terminal
  /// (prevents shorting foreign signals onto LUT pins).
  std::vector<std::uint8_t> is_pin_;

  // Per-connection search state, epoch-stamped to avoid O(V) clears.
  std::vector<float> path_cost_;
  std::vector<std::int32_t> back_node_;
  std::vector<std::int64_t> back_edge_;
  std::vector<std::uint32_t> epoch_of_;
  std::uint32_t epoch_ = 0;
  long long heap_pops_ = 0;
};

}  // namespace vbs
