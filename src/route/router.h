// PathFinder negotiated-congestion router (McMurchie & Ebeling, FPGA'95),
// the algorithm VPR uses, over the fabric's routing-resource graph.
//
// Each net is routed as a tree grown sink by sink with A*-directed Dijkstra
// expansion; congestion is negotiated across iterations through present-
// usage and history costs until no routing resource is overused.
//
// Hot-path configuration (each individually toggleable via RouterOptions;
// `flow_bench` measures the defaults against the textbook baseline):
//   * bounded_box (default ON): expansion and tree seeding restricted to
//     the box around the sink and the nearest tree point plus `bb_margin`
//     tiles, VPR's classic pruning. A connection that cannot complete
//     inside its box is retried with the net's whole terminal box and
//     finally with no box at all, so bounding never turns a routable
//     design into an unroutable one.
//   * incremental_reroute (default ON): congested nets keep the legal part
//     of their tree across iterations and reroute only the connections
//     crossing overused nodes, instead of whole-net rip-up.
//   * astar_fac (default 1.5): calibrated heuristic weight, see below.
//   * threads (default serial): deterministic parallel routing. The nets of
//     one negotiation iteration are routed speculatively against a frozen
//     congestion snapshot on N threads, then committed in net order; a net
//     whose search touched any wire an earlier commit changed is rerouted
//     serially. The commit check is conservative, so the resulting trees,
//     heap-pop counts and iteration stats are byte-identical to the serial
//     router for every thread count — only wall time changes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "route/scratch.h"

namespace vbs {

class ThreadPool;

/// Routing terminals of one net, as global RR nodes.
struct NetSpec {
  NetId net = kNoNet;
  int source = -1;
  std::vector<int> sinks;
};

struct RouteRequest {
  std::vector<NetSpec> nets;
};

/// A routed net: a tree over RR nodes. nodes[0] is the source (parent -1);
/// every other entry records the RR node, its parent entry index, and the
/// fabric edge (switch) index used to reach it — enough to recover the
/// exact set of programmable switches to turn on.
struct NetRoute {
  struct TreeNode {
    std::int32_t rr;
    std::int32_t parent;       ///< index into nodes, -1 for the source
    std::int64_t fabric_edge;  ///< index into the fabric edge array, -1 at source
  };
  std::vector<TreeNode> nodes;
};

struct RouterOptions {
  int max_iterations = 50;
  double first_iter_pres = 0.0;   ///< free overlap on the first iteration
  double initial_pres = 0.5;      ///< present-congestion factor, iteration 2
  double pres_mult = 1.8;         ///< growth per iteration
  double hist_fac = 1.0;          ///< history accumulation per overuse
  /// A* heuristic weight (>1 trades wire quality for search speed). The
  /// default was calibrated on the MCNC-like suite (see BENCH_flow.json):
  /// versus the 1.15 the seed shipped, 1.5 cuts heap pops ~2x at ~2% more
  /// wire; the empty-fabric per-tile scale underestimates congested-
  /// iteration costs, so a stronger weight keeps the wave directed.
  double astar_fac = 1.5;
  /// Abort as unroutable when the overused-node count has not improved for
  /// this many iterations (0 = disabled). Used by the minimum-channel-width
  /// search to cut hopeless trials short.
  int stall_abort = 0;
  /// Stalls to absorb by ripping up EVERY net — trees, occupancy and
  /// history — and renegotiating from scratch instead of aborting (0 =
  /// abort on first stall). A seeded route (seed_routes) that painted
  /// itself into a corner gets a second attempt identical to an unseeded
  /// route this way, so its verdict after the restart matches a cold
  /// router's exactly. Only meaningful with stall_abort > 0.
  int stall_restarts = 0;
  /// Restrict each connection's expansion (and its tree seeds) to the box
  /// around the sink and the nearest point of the current route tree,
  /// grown by `bb_margin` tiles (default on). A failing connection
  /// automatically retries with the whole terminal box and then unbounded,
  /// so this is a pure pruning optimization, never a routability change.
  bool bounded_box = true;
  /// Tiles added on every side of the bounding box.
  int bb_margin = 3;
  /// On reroute iterations, keep the legal part of a congested net's tree
  /// and reroute only the connections whose path crosses an overused node,
  /// instead of ripping up and rebuilding the whole net (default on).
  /// Off = the textbook whole-net rip-up, the flow_bench baseline.
  bool incremental_reroute = true;
  /// Worker threads for the speculative route/commit engine. 0 means
  /// "inherit" (FlowOptions::threads fills it in; standalone use treats it
  /// as serial), 1 is serial, N > 1 routes each iteration's nets on N
  /// threads. Output is byte-identical for every value.
  int threads = 0;
  /// Speculation batch size as a multiple of the thread count (the nets of
  /// one batch are routed against the same congestion snapshot). Larger
  /// batches expose more work-stealing slack but go stale faster: on the
  /// circuit suite one batch per thread commits ~80% of speculations
  /// clean, two per thread only ~60%.
  int spec_batch_per_thread = 1;
  /// Read congestion costs from a per-iteration precomputed float array
  /// (one contiguous stride over RR nodes, refreshed at iteration start and
  /// kept in sync on every serial occupancy change) instead of recomputing
  /// (1+hist)(1+pres_fac*occ) from two arrays inside the A* inner loop.
  /// Identity-preserving by construction — the cached float is the same
  /// double expression cast the same way, so heap pops and trees are
  /// byte-identical either way. Off is the reference path flow_bench's
  /// kernel leg compares against.
  bool precomputed_cost = true;
};

/// Per-PathFinder-iteration counters, for perf trajectories (flow_bench)
/// and congestion-convergence debugging.
struct RouteIterStats {
  int iteration = 0;
  double seconds = 0.0;            ///< wall time of this iteration
  long long heap_pops = 0;         ///< pops spent in this iteration
  std::size_t rerouted_nets = 0;   ///< nets (re)routed this iteration
  std::size_t overused_nodes = 0;  ///< congestion after this iteration
};

struct RoutingResult {
  bool success = false;
  int iterations = 0;
  std::vector<NetRoute> routes;  ///< parallel to RouteRequest::nets
  std::size_t total_wire_nodes = 0;
  std::size_t overused_nodes = 0;  ///< at exit (0 on success)
  /// Pops of committed searches only — identical to the serial router for
  /// every thread count. Wasted speculative work is tracked separately.
  long long heap_pops = 0;
  /// Connections that failed inside their bounding box and were retried
  /// with a grown / unbounded box (0 unless the box was too tight).
  long long bbox_retries = 0;
  int threads_used = 1;
  long long spec_commits = 0;      ///< speculative routes committed clean
  long long spec_rejected = 0;     ///< misspeculations rerouted serially
  long long spec_wasted_pops = 0;  ///< heap pops discarded with them
  std::vector<RouteIterStats> iter_stats;  ///< one entry per iteration
};

class PathfinderRouter {
 public:
  /// `width_limit` > 0 keeps only the TOP width_limit channel tracks
  /// (track >= chan_width - width_limit); the rest are masked out of the
  /// routing graph, emulating a narrower fabric without rebuilding it
  /// (node ids stay stable). Because pin stubs cross the highest track
  /// first, the kept subgraph is connectivity-isomorphic to a real
  /// width_limit-wide fabric (plus dead stub tails past the lowest kept
  /// track). Used by the minimum-channel-width search to share one fabric
  /// across trial widths; terminals must sit on unmasked wires (I/O ports
  /// come from build_route_request's io_tracks_from_top mode).
  /// 0 = the fabric's full width.
  PathfinderRouter(const Fabric& fabric, RouteRequest request,
                   int width_limit = 0);
  ~PathfinderRouter();

  /// Seeds the router with a prior solution (parallel to the request's
  /// nets), e.g. the surviving tree of a wider-channel routing in the MCW
  /// search. For each net the maximal legal subtree is kept: nodes on
  /// masked tracks are dropped (with their subtrees), then branches that no
  /// longer reach a sink. Must be called before route(), at most once.
  void seed_routes(const std::vector<NetRoute>& prior);

  RoutingResult route(const RouterOptions& opts = {});

 private:
  /// Inclusive tile-coordinate expansion window.
  struct BBox {
    int x0, y0, x1, y1;
    bool contains(Point p) const {
      return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
    }
    friend bool operator==(const BBox&, const BBox&) = default;
  };

  /// Per-thread search state: everything one speculative (or serial) net
  /// route touches besides the shared occ_/hist_ arrays — now the SoA
  /// RouterScratch (route/scratch.h), which also owns the single
  /// epoch-reset path every stamp family advances through.
  using Scratch = RouterScratch;
  using HeapEntry = RouterScratch::HeapEntry;

  /// One net's speculative result, produced in parallel against a frozen
  /// congestion snapshot and committed (or rejected) in net order.
  struct SpecTask {
    std::size_t net = 0;
    bool attempted = false;  ///< routed (first iteration or congested)
    bool ok = false;         ///< search succeeded (valid only if attempted)
    NetRoute tree;           ///< full new tree (valid only if attempted&&ok)
    std::vector<std::int32_t> deps;  ///< nodes the result depends on
    long long pops = 0;
    long long retries = 0;
  };

  template <bool kSpec>
  int occ_of(const Scratch& s, int v) const;
  template <bool kSpec>
  void add_occ(Scratch& s, int v, int d);
  void bump_delta(Scratch& s, int v, int d);

  template <bool kSpec>
  bool route_net(std::size_t net_idx, double pres_fac,
                 const RouterOptions& opts, Scratch& s, NetRoute& route);
  /// One A* wave from the current tree of `net_idx` to `sink` within `box`.
  template <bool kSpec>
  bool expand_to_sink(const NetRoute& route, int sink, double pres_fac,
                      double astar_fac, const BBox& box, Scratch& s);
  /// Expansion window for escalation level 0 (sink-to-tree connection box
  /// plus margin), 1 (whole terminal box, grown margin), 2 (whole fabric).
  BBox expansion_box(std::size_t net_idx, Point sink_pos, Point near_pos,
                     int level, const RouterOptions& opts) const;
  void rip_up(std::size_t net_idx);
  /// Drops tree nodes sitting on (or downstream of) an overused node, plus
  /// any surviving branch that no longer leads to a sink, releasing their
  /// occupancy. Keeps the source. Re-stamps s.tree_idx_of for the kept
  /// nodes under the current tree epoch.
  template <bool kSpec>
  void prune_overused(std::size_t net_idx, Scratch& s, NetRoute& route);
  template <bool kSpec>
  bool net_congested(const NetRoute& route, const Scratch& s) const;

  /// Serial per-net iteration body (congested check + route); returns false
  /// on an unroutable net. `full` forces routing regardless of congestion
  /// (first iteration, or the iteration after a stall restart). Mirrored
  /// exactly by the speculative tasks.
  bool serial_iteration_net(std::size_t net_idx, bool full, double pres_fac,
                            const RouterOptions& opts, std::size_t* rerouted);
  /// Speculative task: route `net_idx` against the frozen congestion
  /// snapshot into `task`, recording every dependency.
  void run_spec_task(std::size_t net_idx, bool full, double pres_fac,
                     const RouterOptions& opts, Scratch& s, SpecTask& task);
  /// Batched speculate/commit loop over `work`; same contract as the serial
  /// loop (returns false when a net is unroutable).
  bool parallel_iteration(const std::vector<std::size_t>& work, bool full,
                          double pres_fac, const RouterOptions& opts,
                          ThreadPool& pool, RoutingResult& result,
                          std::size_t* rerouted);
  /// Nets out `old_nodes` -> routes_[net]'s occupancy into occ_ (no-op for
  /// unchanged nodes) and dirty-marks every node whose occupancy moved.
  void apply_occ_diff(const std::vector<NetRoute::TreeNode>& old_nodes,
                      const std::vector<NetRoute::TreeNode>& new_nodes);

  long long total_pops() const { return main_.heap_pops + committed_pops_; }
  long long total_retries() const {
    return main_.bbox_retries + committed_retries_;
  }

  const Fabric& fabric_;
  RouteRequest request_;
  std::vector<NetRoute> routes_;

  /// Refreshes node_cost_ (the precomputed per-iteration congestion-cost
  /// stride) from hist_/occ_ under `pres_fac`, and remembers the factor so
  /// serial occupancy changes can keep single entries in sync.
  void refresh_node_costs(double pres_fac);

  // Per-RR-node congestion state (shared; frozen during parallel phases).
  std::vector<std::uint16_t> occ_;
  std::vector<float> hist_;
  /// float((1+hist)(1+pres_fac*occ)) per node, valid for the current
  /// iteration when opts.precomputed_cost is on: the A* inner loop reads
  /// this one contiguous stride instead of touching hist_ and occ_ and
  /// redoing the arithmetic per edge relaxation.
  std::vector<float> node_cost_;
  double pres_fac_ = 0.0;  ///< factor node_cost_ was computed under
  bool precost_ = true;    ///< RouterOptions::precomputed_cost for this run
  /// kFree = plain wire; kPinOnly = pin-stub seg-0 node, usable only as a
  /// net's own terminal (prevents shorting foreign signals onto LUT pins);
  /// kMasked = track >= width_limit, not part of this trial's fabric.
  enum NodeClass : std::uint8_t { kFree = 0, kPinOnly = 1, kMasked = 2 };
  std::vector<std::uint8_t> node_class_;

  /// Terminal bounding box of each net (tile coordinates, no margin).
  std::vector<BBox> net_box_;

  Scratch main_;  ///< serial routing, misspeculation redo, and commits
  std::vector<std::unique_ptr<Scratch>> spec_scratch_;  ///< one per thread
  std::vector<SpecTask> tasks_;

  /// Nodes whose occupancy changed since the current batch's snapshot.
  std::vector<std::uint32_t> dirty_epoch_of_;
  std::uint32_t dirty_epoch_ = 0;

  /// Pops/retries adopted from committed speculative tasks; totals are
  /// main_'s counters plus these (byte-identical to a serial run).
  long long committed_pops_ = 0;
  long long committed_retries_ = 0;
};

}  // namespace vbs
