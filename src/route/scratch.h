// Per-thread PathFinder search state in structure-of-arrays layout: every
// per-RR-node field lives in its own contiguous array (one stride per
// field), instead of being interleaved through per-node structs. The A*
// relaxation touches path_cost/back_node/back_edge/epoch_of for the same
// node index — keeping each in its own array means the inner loop streams
// four independent strides the prefetcher can follow, and fields a given
// pass never reads (tree compaction, occupancy overlay) stay out of its
// cache footprint entirely.
//
// Epoch discipline: O(V) clears are replaced by stamp arrays — a node's
// entry is valid only when its stamp equals the current epoch. Every epoch
// family advances through ONE reset path (bump_epoch): on wrap the stamp
// arrays are cleared and the epoch restarts at 1, so a 4-billion-search-old
// stamp can never alias a live one. The arenas keep their capacity across
// sinks, nets and iterations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <utility>
#include <vector>

#include "util/telemetry.h"

namespace vbs {

struct RouterScratch {
  // Reusable search heap entry.
  struct HeapEntry {
    float est;   ///< path cost + weighted heuristic
    float path;  ///< path cost so far
    std::int32_t node;
    // Min-heap by (est, node id) — the node id tie-break keeps expansion
    // deterministic across runs and platforms.
    bool operator>(const HeapEntry& o) const {
      if (est != o.est) return est > o.est;
      return node > o.node;
    }
  };

  // Per-connection A* state, epoch-stamped to avoid O(V) clears.
  std::vector<float> path_cost;
  std::vector<std::int32_t> back_node;
  std::vector<std::int64_t> back_edge;
  std::vector<std::uint32_t> epoch_of;
  std::uint32_t epoch = 0;
  std::vector<HeapEntry> heap;
  std::vector<std::pair<int, std::int64_t>> path_scratch;
  // Tree compaction scratch: keep flags, usefulness, index remap, and an
  // epoch-stamped sink marker per RR node (stamped under tree_epoch).
  std::vector<std::uint8_t> keep;
  std::vector<std::uint8_t> useful;
  std::vector<std::int32_t> remap;
  std::vector<std::uint32_t> sink_mark;
  // O(1) tree-junction lookup in backtrack: rr node -> index in the
  // current net's route tree, epoch-stamped per route_net call.
  std::vector<std::int32_t> tree_idx_of;
  std::vector<std::uint32_t> tree_epoch_of;
  std::uint32_t tree_epoch = 0;
  // Speculative occupancy overlay: this net's own rip-ups and additions
  // relative to the frozen shared occ_, epoch-stamped per task. Also used
  // by the commit step to net out occupancy deltas.
  std::vector<std::int32_t> occ_delta;
  std::vector<std::uint32_t> delta_epoch_of;
  std::uint32_t delta_epoch = 0;
  std::vector<std::int32_t> delta_touched;
  // Dependency recording (speculative mode): every node whose occupancy
  // the task read, i.e. every node its searches stamped.
  std::vector<std::int32_t> visited;
  long long heap_pops = 0;
  long long bbox_retries = 0;

  /// THE epoch-reset path: every stamp family (search, tree, overlay — and
  /// the router's batch dirty marks) advances through here. Returns the new
  /// epoch; on wrap clears the family's stamp arrays so stale stamps cannot
  /// alias the restarted counter.
  static std::uint32_t bump_epoch(
      std::uint32_t& epoch_counter,
      std::initializer_list<std::vector<std::uint32_t>*> stamps) {
    if (++epoch_counter == 0) {
      for (std::vector<std::uint32_t>* v : stamps) {
        std::fill(v->begin(), v->end(), 0u);
      }
      epoch_counter = 1;
      // Once per 2^32 bumps per family; the counter is for visibility
      // that the wrap path actually runs in long-lived processes.
      telem::counter_add("route.epoch_wrap_resets");
    }
    return epoch_counter;
  }

  std::uint32_t begin_search() { return bump_epoch(epoch, {&epoch_of}); }
  std::uint32_t begin_tree() {
    return bump_epoch(tree_epoch, {&tree_epoch_of, &sink_mark});
  }
  std::uint32_t begin_delta() {
    return bump_epoch(delta_epoch, {&delta_epoch_of});
  }

  void init(int num_nodes) {
    const auto n = static_cast<std::size_t>(num_nodes);
    path_cost.assign(n, 0.0f);
    back_node.assign(n, -1);
    back_edge.assign(n, -1);
    epoch_of.assign(n, 0);
    epoch = 0;
    sink_mark.assign(n, 0);
    tree_idx_of.assign(n, -1);
    tree_epoch_of.assign(n, 0);
    tree_epoch = 0;
    occ_delta.assign(n, 0);
    delta_epoch_of.assign(n, 0);
    delta_epoch = 0;
  }
};

}  // namespace vbs
