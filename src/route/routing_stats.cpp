#include "route/routing_stats.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace vbs {

int RoutingStats::max_switches() const {
  return switches_per_macro.empty()
             ? 0
             : *std::max_element(switches_per_macro.begin(),
                                 switches_per_macro.end());
}

double RoutingStats::mean_switches() const {
  if (switches_per_macro.empty()) return 0.0;
  double sum = 0;
  for (const int s : switches_per_macro) sum += s;
  return sum / static_cast<double>(switches_per_macro.size());
}

int RoutingStats::empty_macros() const {
  int n = 0;
  for (const int s : switches_per_macro) n += (s == 0);
  return n;
}

RoutingStats compute_routing_stats(const Fabric& fabric,
                                   const std::vector<NetRoute>& routes) {
  RoutingStats st;
  st.switches_per_macro.assign(static_cast<std::size_t>(fabric.num_macros()),
                               0);
  std::vector<std::set<int>> nets(static_cast<std::size_t>(fabric.num_macros()));
  int net_id = 0;
  for (const NetRoute& route : routes) {
    for (const NetRoute::TreeNode& tn : route.nodes) {
      if (tn.fabric_edge < 0) continue;
      const Fabric::Edge& e =
          fabric.edge_at(static_cast<std::size_t>(tn.fabric_edge));
      ++st.switches_per_macro[static_cast<std::size_t>(e.macro)];
      nets[static_cast<std::size_t>(e.macro)].insert(net_id);
    }
    st.total_wire_nodes += route.nodes.size();
    ++net_id;
  }
  st.nets_per_macro.reserve(nets.size());
  for (const auto& s : nets) {
    st.nets_per_macro.push_back(static_cast<int>(s.size()));
  }
  double on = 0;
  for (const int s : st.switches_per_macro) on += s;
  st.switch_utilization =
      on / (static_cast<double>(fabric.num_macros()) *
            fabric.spec().nroute_bits());
  return st;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0 || vy <= 0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace vbs
