// Minimum-channel-width search: the procedure VPR uses to report a
// circuit's channel demand (Table II's MCW column). Routes the placed
// design at candidate widths and binary-searches the smallest routable one.
//
// The search keeps ONE fabric/route-request pair at the running upper
// bound; a trial at a narrower width masks the excess tracks out of the
// routing graph (PathfinderRouter's width_limit) instead of rebuilding the
// fabric, so RR-node ids stay stable across trials. That makes warm
// starting cheap: each trial is seeded with the surviving subtree of the
// last routable solution (connections over now-masked tracks are ripped
// up), and the router only re-finds the ripped connections plus whatever
// congestion negotiation they trigger — typically a small fraction of a
// cold route's heap pops.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_spec.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"

namespace vbs {

class FlowPipeline;

/// Doubling-probe start when McwOptions::hint <= 0: the headline
/// chan_width of the committed BENCH_flow.json trajectory — the last
/// width the repo's perf suite demonstrated routable end to end for the
/// whole circuit mix, so it is the best unconditional first guess for a
/// routable upper bound.
inline constexpr int kMcwDefaultProbe = 20;

/// Stall-abort applied to trial routers by default: MCW trials exist only
/// to answer routable-or-not, so a negotiation that stops improving for
/// this many iterations is cut short instead of burning the full
/// max_iterations budget.
inline constexpr int kMcwTrialStallAbort = 8;

struct McwOptions {
  int lo = 2;              ///< smallest width to consider
  int hi = 64;             ///< give-up upper bound
  /// First width to probe (e.g. a known or expected MCW); <= 0 picks
  /// kMcwDefaultProbe. A good hint halves the number of expensive failing
  /// trials.
  int hint = -1;
  /// Seed each trial from the last routable solution's surviving tree
  /// (off = every trial routes cold; the flow_bench comparison baseline).
  bool warm_start = true;
  /// Accept a warm-seeded trial's "unroutable" verdict at face value
  /// instead of granting it the cold verification restart (a full rip-up —
  /// trees, occupancy AND history — and renegotiation from scratch) that
  /// makes seeded verdicts provably equal cold ones. A seed can corner the
  /// negotiation where a cold route would converge, so this trades a
  /// one-sided error — the search can only report an MCW >= the exact
  /// answer, never below it — for skipping the most expensive trials a
  /// warm search runs. Skipped restarts are recorded per trial
  /// (McwTrial::skipped_restart) so callers can audit the trade.
  bool trust_seeded_failures = false;
  RouterOptions router;    ///< per-trial router settings
  McwOptions() { router.stall_abort = kMcwTrialStallAbort; }
};

/// One routing trial of the search, for cost reporting (satellite of the
/// bench's mcw section): which width, what it cost, how it ended.
struct McwTrial {
  int width = 0;
  bool routable = false;
  int iterations = 0;
  long long heap_pops = 0;
  double seconds = 0.0;
  bool seeded = false;           ///< warm-seeded from a prior solution
  /// Trial failed warm-seeded and trust_seeded_failures skipped the cold
  /// verification restart: this verdict carries the one-sided error risk.
  bool skipped_restart = false;
};

struct McwResult {
  int mcw = -1;            ///< -1 when unroutable even at `hi`
  int trials = 0;
  long long heap_pops = 0; ///< total over all trials
  double seconds = 0.0;    ///< total wall time of the search
  int skipped_restarts = 0;  ///< trials with McwTrial::skipped_restart
  std::vector<McwTrial> trial_log;  ///< one entry per routing trial
};

/// Finds the minimum routable channel width for a placed design. The
/// placement is width-independent, so one placement serves all trials;
/// widths that cannot carry a placed I/O track are infeasible by
/// construction and never routed.
McwResult find_min_channel_width(const ArchSpec& base_spec, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const McwOptions& opts = {});

/// Pipeline consumer: runs `pipe` to the place stage if needed, then
/// delegates to the standalone search above on the pipeline's frozen
/// placed design — so a checkpointed/resumed placement yields exactly the
/// same search as the uninterrupted flow. The trials use their own
/// masked-width fabrics (not the pipeline's route stage), and the
/// pipeline's committed route artifact is not touched.
McwResult find_min_channel_width(FlowPipeline& pipe, const McwOptions& opts = {});

}  // namespace vbs
