// Minimum-channel-width search: the procedure VPR uses to report a
// circuit's channel demand (Table II's MCW column). Routes the placed
// design at candidate widths and binary-searches the smallest routable one.
#pragma once

#include <cstdint>

#include "arch/arch_spec.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"

namespace vbs {

struct McwOptions {
  int lo = 2;              ///< smallest width to consider
  int hi = 64;             ///< give-up upper bound
  /// First width to probe (e.g. a known or expected MCW); <= 0 picks a
  /// default. A good hint halves the number of expensive failing trials.
  int hint = -1;
  RouterOptions router;    ///< per-trial router settings
};

struct McwResult {
  int mcw = -1;            ///< -1 when unroutable even at `hi`
  int trials = 0;
  long long heap_pops = 0;
};

/// Finds the minimum routable channel width for a placed design. The
/// placement is width-independent, so one placement serves all trials.
McwResult find_min_channel_width(const ArchSpec& base_spec, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const McwOptions& opts = {});

}  // namespace vbs
