// The run-time reconfiguration controller (paper Fig. 2): loads Virtual
// Bit-Streams from external memory, de-virtualizes them — optionally in
// parallel, macro regions being independent (paper Section II-C) — and
// finalizes the configuration at the physical location chosen by the
// placement allocator. Also implements task eviction and the relocation /
// migration the VBS format exists to enable.
#pragma once

#include <map>
#include <optional>

#include "fabric/fabric.h"
#include "rtc/allocator.h"
#include "util/bitvector.h"
#include "util/error.h"
#include "util/fault.h"
#include "vbs/devirtualizer.h"
#include "vbs/vbs_format.h"

namespace vbs {

using TaskId = int;
inline constexpr TaskId kNoTask = -1;

struct TaskRecord {
  TaskId id = kNoTask;
  Rect rect;                     ///< fabric region owned by the task
  std::size_t stream_bits = 0;   ///< serialized VBS size
  DecodeStats decode;
  double decode_seconds = 0.0;
  int threads_used = 1;
};

class ReconfigController {
 public:
  ReconfigController(const ArchSpec& spec, int width, int height);

  const Fabric& fabric() const { return fabric_; }
  /// The modelled configuration memory layer of the whole chip.
  const BitVector& config_memory() const { return config_; }
  double occupancy() const { return alloc_.occupancy(); }
  int num_tasks() const { return static_cast<int>(tasks_.size()); }

  /// Loads a serialized VBS wherever it fits (first fit). Returns kNoTask
  /// if no free rectangle is large enough. `threads` >= 2 decodes entries
  /// in parallel.
  TaskId load(const BitVector& vbs_stream, int threads = 1);

  /// Loads at a caller-chosen origin; throws std::logic_error if the
  /// region is occupied or out of bounds.
  TaskId load_at(const BitVector& vbs_stream, Point origin, int threads = 1);

  /// Clears the task's region (configuration zeroed) and frees it.
  void unload(TaskId id);

  /// Migrates a loaded task: decodes its retained VBS at the new origin,
  /// then clears the old region — the on-the-fly relocation of Section V.
  void relocate(TaskId id, Point new_origin, int threads = 1);

  /// Compacts all tasks toward the origin to fight fragmentation.
  void defragment(int threads = 1);

  /// Commits a pre-decoded image at `origin` without running the
  /// devirtualizer: `payloads[i]` is the decoded routing payload of
  /// `img.entries[i]` (what the decode phase of load_at produces, and what
  /// a DecodedStreamCache retains). `decode` is whatever devirtualization
  /// cost produced the payloads — zero for a cache hit — and is recorded
  /// verbatim in the task record and the aggregate stats.
  TaskId load_decoded(const VbsImage& img,
                      const std::vector<BitVector>& payloads,
                      std::size_t stream_bits, Point origin,
                      const DecodeStats& decode = {},
                      double decode_seconds = 0.0, int threads_used = 1);

  /// Migrates a loaded task by copying pre-decoded payloads to the new
  /// origin — no devirtualization, the relocation fast path the stream
  /// cache enables. Same overlap rules as relocate.
  void relocate_decoded(TaskId id, Point new_origin,
                        const std::vector<BitVector>& payloads);

  const TaskRecord& record(TaskId id) const;
  /// The retained (parsed) VBS of a loaded task — what relocation decodes.
  const VbsImage& image_of(TaskId id) const;
  std::vector<TaskId> task_ids() const;
  std::optional<Point> find_free_slot(int w, int h) const {
    return alloc_.find_free(w, h);
  }
  /// Read-only view of the tile allocator; placement policies probe it.
  const RectAllocator& allocator() const { return alloc_; }

  /// Aggregate decode throughput counters across all loads.
  const DecodeStats& total_decode_stats() const { return total_stats_; }

  /// Installs a deterministic fault plan (util/fault.h): decode_into then
  /// injects transient decode faults and load_decoded transient allocation
  /// faults, each keyed by a serial per-site sequence counter and thrown
  /// as VbsError{kFaultInjected} with full rollback (allocator and
  /// configuration memory untouched). nullptr (the default) disables
  /// injection; the plan must outlive the controller.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  // --- snapshot / recovery hooks (rtc/service/journal.h) ---------------------
  //
  // The service journal restores a controller to a byte-identical prior
  // state: the whole configuration memory, every task (region re-occupied,
  // record and retained image re-adopted — without re-decoding), and the
  // serial counters that key fault-plan decisions. Restore hooks are only
  // meaningful on a freshly-constructed controller.

  TaskId next_task_id() const { return next_id_; }
  std::uint64_t decode_seq() const { return decode_seq_; }
  std::uint64_t alloc_seq() const { return alloc_seq_; }
  void restore_counters(TaskId next_id, std::uint64_t decode_seq,
                        std::uint64_t alloc_seq) {
    next_id_ = next_id;
    decode_seq_ = decode_seq;
    alloc_seq_ = alloc_seq;
  }
  void set_total_decode_stats(const DecodeStats& s) { total_stats_ = s; }
  /// Replaces the configuration memory wholesale; throws std::logic_error
  /// on a size mismatch (snapshot from a different fabric).
  void restore_config_memory(const BitVector& config);
  /// Re-adopts a snapshotted task: occupies rec.rect and installs the
  /// record + image without touching configuration memory (the restored
  /// config already contains its decoded bits). Throws std::logic_error if
  /// the region is unavailable or the id is already in use.
  void restore_task(const TaskRecord& rec, VbsImage image);

 private:
  struct LoadedTask {
    TaskRecord rec;
    VbsImage image;  ///< retained for relocation
  };

  /// Decodes `img` into the configuration memory at `origin`.
  void decode_into(const VbsImage& img, Point origin, int threads,
                   TaskRecord& rec);
  /// Writes already-decoded entry payloads into the configuration memory.
  void write_decoded(const VbsImage& img,
                     const std::vector<BitVector>& payloads, Point origin);
  void check_arch(const VbsImage& img) const;
  /// Validates payload count and per-entry bit length against `img`.
  void check_payloads(const VbsImage& img,
                      const std::vector<BitVector>& payloads) const;
  void clear_region(const Rect& r);
  LoadedTask& lookup(TaskId id);

  Fabric fabric_;
  BitVector config_;
  RectAllocator alloc_;
  std::map<TaskId, LoadedTask> tasks_;
  TaskId next_id_ = 0;
  DecodeStats total_stats_;
  const FaultPlan* fault_plan_ = nullptr;
  std::uint64_t decode_seq_ = 0;  ///< fault-plan decision counters; both
  std::uint64_t alloc_seq_ = 0;   ///< advance serially (commit order)
};

}  // namespace vbs
