#include "rtc/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>

#include "net/event_loop.h"
#include "util/telemetry.h"

namespace vbs::rpc {

namespace {

[[noreturn]] void net_closed(const std::string& what) {
  throw VbsError(VbsErrc::kNetClosed, what);
}

int connect_blocking(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) net_closed("socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    net_closed("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    net_closed("connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

// --- RpcClient ---------------------------------------------------------------

RpcClient::RpcClient(RpcClientOptions opts)
    : opts_(std::move(opts)), reader_(opts_.max_frame_bytes) {
  fd_ = connect_blocking(opts_.host, opts_.port);
  timeval tv{};
  tv.tv_sec = opts_.timeout_ms / 1000;
  tv.tv_usec = (opts_.timeout_ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Handshake: HELLO -> CHALLENGE -> AUTH -> AUTH_OK. Close the fd on
  // any failure — a throwing constructor never runs the destructor.
  try {
    send_frame(FrameType::kHello, next_corr_,
               encode_hello({opts_.tenant, opts_.client_nonce}));
    const Frame challenge = recv_frame();
    if (challenge.type != FrameType::kChallenge) {
      throw VbsError(VbsErrc::kNetProto, "expected CHALLENGE");
    }
    const ChallengeMsg ch = decode_challenge(challenge.payload);
    const std::uint64_t proof =
        auth_proof(tenant_secret(opts_.auth_seed, opts_.tenant), opts_.tenant,
                   opts_.client_nonce, ch.server_nonce);
    send_frame(FrameType::kAuth, next_corr_, encode_auth({proof}));
    const Frame ok = recv_frame();  // relays ERROR{kNetAuth} as a throw
    if (ok.type != FrameType::kAuthOk) {
      throw VbsError(VbsErrc::kNetProto, "expected AUTH_OK");
    }
    const AuthOkMsg m = decode_auth_ok(ok.payload);
    next_request_id_ = m.next_request_id;
    session_ = m.session;
  } catch (...) {
    close();
    throw;
  }
}

RpcClient::~RpcClient() { close(); }

void RpcClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void RpcClient::send_frame(FrameType type, std::uint64_t corr,
                           const std::string& payload) {
  if (fd_ < 0) net_closed("client closed");
  const std::string bytes = encode_frame(type, corr, payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();
    net_closed("send: peer gone mid-frame");
  }
}

Frame RpcClient::recv_frame(bool relay_errors) {
  Frame f;
  for (;;) {
    if (reader_.next(inbuf_, f)) {
      if (relay_errors && f.type == FrameType::kError) {
        const ErrorMsg e = decode_error(f.payload);
        throw VbsError(e.code, "server: " + e.message);
      }
      return f;
    }
    char buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close();
      net_closed("recv: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw VbsError(VbsErrc::kNetTimeout,
                     "recv: no frame within " +
                         std::to_string(opts_.timeout_ms) + "ms");
    }
    close();
    net_closed("recv: " + std::string(std::strerror(errno)));
  }
}

RequestId RpcClient::submit(FrameType type, const std::string& payload) {
  const std::uint64_t corr = ++next_corr_;
  send_frame(type, corr, payload);
  const Frame f = recv_frame();
  if (f.type != FrameType::kAck || f.corr != corr) {
    throw VbsError(VbsErrc::kNetProto, "expected ACK for submit");
  }
  const AckMsg ack = decode_ack(f.payload);
  next_request_id_ = ack.request_id + 1;
  return ack.request_id;
}

RequestId RpcClient::send_load(const BitVector& stream, int tenant) {
  return submit(FrameType::kLoad, encode_load(tenant, stream));
}

RequestId RpcClient::send_unload(RequestId target, int tenant) {
  return submit(FrameType::kUnload, encode_target({tenant, target}));
}

RequestId RpcClient::send_relocate(RequestId target, int tenant) {
  return submit(FrameType::kRelocate, encode_target({tenant, target}));
}

void RpcClient::set_priority(int tenant, int priority) {
  const std::uint64_t corr = ++next_corr_;
  send_frame(FrameType::kSetPriority, corr,
             encode_priority({tenant, priority}));
  const Frame f = recv_frame();
  if (f.type != FrameType::kAck || f.corr != corr) {
    throw VbsError(VbsErrc::kNetProto, "expected ACK for SET_PRIORITY");
  }
}

std::vector<RequestResult> RpcClient::drain() {
  const std::uint64_t corr = ++next_corr_;
  send_frame(FrameType::kDrain, corr, std::string());
  std::vector<RequestResult> results;
  for (;;) {
    const Frame f = recv_frame();
    if (f.type == FrameType::kResult) {
      results.push_back(decode_result(f.payload));
      continue;
    }
    if (f.type == FrameType::kAck && f.corr == corr) return results;
    throw VbsError(VbsErrc::kNetProto, "unexpected frame during drain");
  }
}

RequestResult RpcClient::await_result() {
  for (;;) {
    const Frame f = recv_frame();
    if (f.type == FrameType::kResult) return decode_result(f.payload);
    if (f.type == FrameType::kPong) continue;
    throw VbsError(VbsErrc::kNetProto, "unexpected frame awaiting result");
  }
}

StatReplyMsg RpcClient::stat() {
  const std::uint64_t corr = ++next_corr_;
  send_frame(FrameType::kStat, corr, std::string());
  const Frame f = recv_frame();
  if (f.type != FrameType::kStatReply || f.corr != corr) {
    throw VbsError(VbsErrc::kNetProto, "expected STAT_REPLY");
  }
  return decode_stat_reply(f.payload);
}

void RpcClient::ping() {
  const std::uint64_t corr = ++next_corr_;
  send_frame(FrameType::kPing, corr, std::string());
  const Frame f = recv_frame();
  if (f.type != FrameType::kPong || f.corr != corr) {
    throw VbsError(VbsErrc::kNetProto, "expected PONG");
  }
}

void RpcClient::shutdown() {
  const std::uint64_t corr = ++next_corr_;
  send_frame(FrameType::kShutdown, corr, std::string());
  const Frame f = recv_frame();
  if (f.type != FrameType::kAck || f.corr != corr) {
    throw VbsError(VbsErrc::kNetProto, "expected ACK for SHUTDOWN");
  }
}

// --- closed-loop load generator ---------------------------------------------

namespace {

/// One scheduled request on one generator connection.
struct GenOp {
  RequestKind kind = RequestKind::kLoad;
  int kind_idx = 0;     ///< loads: index into kind_streams
  int target_slot = -1; ///< unload/relocate: this conn's earlier load slot
};

enum class GenState {
  kConnecting,
  kAwaitChallenge,
  kAwaitAuthOk,
  kAwaitAck,
  kAwaitResult,
  kDone,
};

struct GenConn {
  std::unique_ptr<net::Conn> conn;
  FrameReader reader;
  GenState state = GenState::kConnecting;
  int tenant = 0;
  std::uint64_t client_nonce = 0;
  std::vector<GenOp> schedule;
  std::size_t next_op = 0;
  std::vector<RequestId> slot_ids;  ///< service id per local load slot
  int filled_slots = 0;             ///< loads sent so far (slot cursor)
  int pending_slot = -1;            ///< slot the in-flight load will fill
  std::uint64_t corr = 0;
  std::chrono::steady_clock::time_point sent_at;

  GenConn(std::size_t max_frame) : reader(max_frame) {}
};

}  // namespace

LoadGenReport run_loadgen(const LoadGenOptions& opts) {
  TELEM_SPAN("rpc", "loadgen");
  LoadGenReport report;
  report.connections = opts.connections;
  const auto t0 = std::chrono::steady_clock::now();

  // --- partition the trace into per-connection closed-loop schedules ------
  //
  // Connections cycle over the distinct tenants of the trace; a tenant's
  // events are round-robined over its connections in trace order. An
  // unload/relocate follows the connection that got the referenced load
  // (the target id is then known locally when its turn comes); a
  // reference that landed elsewhere degrades to a fresh load of the same
  // kind, keeping every connection's schedule self-contained.
  std::vector<int> tenants;
  for (const TraceEvent& ev : opts.trace.events) {
    bool seen = false;
    for (int t : tenants) seen = seen || t == ev.tenant;
    if (!seen) tenants.push_back(ev.tenant);
  }
  if (tenants.empty()) tenants.push_back(0);

  const int n_conns = opts.connections;
  std::vector<GenConn> conns;
  conns.reserve(static_cast<std::size_t>(n_conns));
  for (int i = 0; i < n_conns; ++i) {
    conns.emplace_back(opts.max_frame_bytes);
    conns.back().tenant = tenants[static_cast<std::size_t>(i) % tenants.size()];
    conns.back().client_nonce = 0x10adull + static_cast<std::uint64_t>(i);
  }
  std::unordered_map<int, std::vector<int>> conns_of_tenant;
  for (int i = 0; i < n_conns; ++i) {
    conns_of_tenant[conns[static_cast<std::size_t>(i)].tenant].push_back(i);
  }
  std::unordered_map<int, std::size_t> rr;  // tenant -> next conn cursor
  // load event index -> (conn, local slot)
  std::unordered_map<int, std::pair<int, int>> load_site;
  for (std::size_t e = 0; e < opts.trace.events.size(); ++e) {
    const TraceEvent& ev = opts.trace.events[e];
    const auto& pool = conns_of_tenant[ev.tenant];
    GenOp op;
    int conn_idx;
    if (ev.kind == TraceEvent::Kind::kLoad) {
      conn_idx = pool[rr[ev.tenant]++ % pool.size()];
      op.kind = RequestKind::kLoad;
      op.kind_idx = ev.task_kind;
      auto& gc = conns[static_cast<std::size_t>(conn_idx)];
      load_site[static_cast<int>(e)] = {
          conn_idx, static_cast<int>(gc.slot_ids.size())};
      gc.slot_ids.push_back(kNoRequest);  // slot reserved; id set at ACK
    } else {
      const auto site = load_site.find(ev.ref);
      if (site != load_site.end() &&
          conns[static_cast<std::size_t>(site->second.first)].tenant ==
              ev.tenant) {
        conn_idx = site->second.first;
        op.kind = ev.kind == TraceEvent::Kind::kUnload
                      ? RequestKind::kUnload
                      : RequestKind::kRelocate;
        op.target_slot = site->second.second;
      } else {
        // Referenced load lives on another tenant's connection: degrade
        // to a load of the same kind so the op still exercises the wire.
        conn_idx = pool[rr[ev.tenant]++ % pool.size()];
        op.kind = RequestKind::kLoad;
        const auto ref_site = load_site.find(ev.ref);
        op.kind_idx =
            ref_site != load_site.end() &&
                    ev.ref < static_cast<int>(opts.trace.events.size())
                ? opts.trace.events[static_cast<std::size_t>(ev.ref)].task_kind
                : 0;
        auto& gc = conns[static_cast<std::size_t>(conn_idx)];
        load_site[static_cast<int>(e)] = {
            conn_idx, static_cast<int>(gc.slot_ids.size())};
        gc.slot_ids.push_back(kNoRequest);
      }
    }
    conns[static_cast<std::size_t>(conn_idx)].schedule.push_back(op);
  }
  // The slots vector was used as a slot *counter* during partitioning;
  // reset it for the run (ids are filled in as ACKs arrive).
  for (auto& gc : conns) {
    std::fill(gc.slot_ids.begin(), gc.slot_ids.end(), kNoRequest);
  }

  // --- drive all connections on one event loop ----------------------------
  net::EventLoop loop;
  int live = 0;
  int established = 0;

  // Forward declarations via std::function: the handlers re-enter each
  // other (send next op after a result, etc.).
  std::function<void(int)> finish_conn;
  std::function<void(int)> send_next;
  std::function<void(int, std::uint32_t)> on_event;

  finish_conn = [&](int ci) {
    GenConn& gc = conns[static_cast<std::size_t>(ci)];
    if (gc.state == GenState::kDone) return;
    gc.state = GenState::kDone;
    if (gc.conn && !gc.conn->closed()) {
      loop.unwatch(gc.conn->fd());
      gc.conn->close();
    }
    if (--live == 0) loop.stop();
  };

  auto update_interest = [&](GenConn& gc) {
    if (!gc.conn || gc.conn->closed()) return;
    std::uint32_t want = net::kReadable;
    if (gc.conn->wants_write() || gc.state == GenState::kConnecting) {
      want |= net::kWritable;
    }
    loop.update(gc.conn->fd(), want);
  };

  send_next = [&](int ci) {
    GenConn& gc = conns[static_cast<std::size_t>(ci)];
    if (gc.next_op >= gc.schedule.size()) {
      finish_conn(ci);
      return;
    }
    const GenOp& op = gc.schedule[gc.next_op++];
    gc.corr += 1;
    gc.pending_slot = -1;
    std::string payload;
    FrameType type;
    if (op.kind == RequestKind::kLoad) {
      type = FrameType::kLoad;
      const std::size_t k =
          op.kind_idx >= 0 &&
                  op.kind_idx < static_cast<int>(opts.kind_streams.size())
              ? static_cast<std::size_t>(op.kind_idx)
              : 0;
      payload = encode_load(gc.tenant, opts.kind_streams[k]);
      // Loads are sent in schedule order, which is exactly the order the
      // partitioning reserved slots in: the next slot is sequential.
      gc.pending_slot = gc.filled_slots++;
    } else {
      type = op.kind == RequestKind::kUnload ? FrameType::kUnload
                                             : FrameType::kRelocate;
      const RequestId target =
          op.target_slot >= 0 &&
                  op.target_slot < static_cast<int>(gc.slot_ids.size())
              ? gc.slot_ids[static_cast<std::size_t>(op.target_slot)]
              : kNoRequest;
      payload = encode_target({gc.tenant, target});
    }
    gc.sent_at = std::chrono::steady_clock::now();
    ++report.requests_sent;
    const net::IoStatus st =
        gc.conn->queue_write(encode_frame(type, gc.corr, payload));
    if (st == net::IoStatus::kClosed || st == net::IoStatus::kError) {
      ++report.wire_errors;
      finish_conn(ci);
      return;
    }
    gc.state = GenState::kAwaitAck;
    update_interest(gc);
  };

  auto handle_frame = [&](int ci, const Frame& f) {
    GenConn& gc = conns[static_cast<std::size_t>(ci)];
    switch (f.type) {
      case FrameType::kChallenge: {
        const ChallengeMsg ch = decode_challenge(f.payload);
        const std::uint64_t proof =
            auth_proof(tenant_secret(opts.auth_seed, gc.tenant), gc.tenant,
                       gc.client_nonce, ch.server_nonce);
        gc.conn->queue_write(encode_frame(FrameType::kAuth, 1,
                                          encode_auth({proof})));
        gc.state = GenState::kAwaitAuthOk;
        break;
      }
      case FrameType::kAuthOk:
        ++established;
        send_next(ci);
        break;
      case FrameType::kAck: {
        const AckMsg ack = decode_ack(f.payload);
        ++report.acks;
        if (gc.pending_slot >= 0 &&
            gc.pending_slot < static_cast<int>(gc.slot_ids.size())) {
          gc.slot_ids[static_cast<std::size_t>(gc.pending_slot)] =
              ack.request_id;
        }
        gc.state = GenState::kAwaitResult;
        break;
      }
      case FrameType::kResult: {
        const RequestResult r = decode_result(f.payload);
        ++report.results;
        switch (r.status) {
          case RequestStatus::kDone: ++report.done; break;
          case RequestStatus::kShed: ++report.shed; break;
          case RequestStatus::kRejected: ++report.rejected; break;
          case RequestStatus::kFailed: ++report.failed; break;
          case RequestStatus::kDeadline: ++report.deadline; break;
          default: break;
        }
        report.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - gc.sent_at)
                .count());
        send_next(ci);
        break;
      }
      case FrameType::kError: {
        const ErrorMsg e = decode_error(f.payload);
        if (gc.state == GenState::kAwaitChallenge ||
            gc.state == GenState::kAwaitAuthOk) {
          // Handshake reject: this connection is over.
          ++report.wire_errors;
          finish_conn(ci);
          break;
        }
        if (e.code == VbsErrc::kQueueFull) {
          ++report.door_sheds;
        } else {
          ++report.wire_errors;
        }
        // The in-flight request is dead; move on (closed loop continues).
        send_next(ci);
        break;
      }
      case FrameType::kPong:
        break;
      default:
        ++report.wire_errors;
        finish_conn(ci);
        break;
    }
  };

  on_event = [&](int ci, std::uint32_t events) {
    GenConn& gc = conns[static_cast<std::size_t>(ci)];
    if (gc.state == GenState::kDone) return;
    if (events & (net::kError | net::kHangup)) {
      ++report.wire_errors;
      finish_conn(ci);
      return;
    }
    if (gc.state == GenState::kConnecting && (events & net::kWritable)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(gc.conn->fd(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ++report.wire_errors;
        finish_conn(ci);
        return;
      }
      gc.conn->queue_write(encode_frame(
          FrameType::kHello, 1,
          encode_hello({gc.tenant, gc.client_nonce})));
      gc.state = GenState::kAwaitChallenge;
    }
    if (events & net::kWritable) gc.conn->on_writable();
    if ((events & net::kReadable) && !gc.conn->closed()) {
      const net::IoStatus st = gc.conn->on_readable();
      Frame f;
      try {
        while (gc.state != GenState::kDone && !gc.conn->closed() &&
               gc.reader.next(gc.conn->inbuf(), f)) {
          handle_frame(ci, f);
        }
      } catch (const VbsError&) {
        ++report.wire_errors;
        finish_conn(ci);
        return;
      }
      if (gc.state != GenState::kDone &&
          (st == net::IoStatus::kClosed || st == net::IoStatus::kError ||
           gc.conn->closed())) {
        ++report.wire_errors;
        finish_conn(ci);
        return;
      }
    }
    if (gc.state != GenState::kDone) update_interest(gc);
  };

  // Open every connection (non-blocking connect).
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts.port));
  if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
    net_closed("bad host: " + opts.host);
  }
  for (int i = 0; i < n_conns; ++i) {
    GenConn& gc = conns[static_cast<std::size_t>(i)];
    if (gc.schedule.empty()) {
      gc.state = GenState::kDone;
      continue;
    }
    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      ++report.wire_errors;
      gc.state = GenState::kDone;
      continue;
    }
    const int rc =
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      ++report.wire_errors;
      gc.state = GenState::kDone;
      continue;
    }
    gc.conn = std::make_unique<net::Conn>(
        fd, 0x6e00ull + static_cast<std::uint64_t>(i), opts.net_faults);
    ++live;
    loop.watch(fd, net::kReadable | net::kWritable,
               [&, i](std::uint32_t events) { on_event(i, events); });
  }

  if (live == 0) {
    if (report.wire_errors > 0) net_closed("loadgen: no connection came up");
    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return report;
  }

  loop.arm_timer(static_cast<std::uint64_t>(opts.timeout_ms), [&] {
    report.timed_out = true;
    loop.stop();
  });
  loop.run();

  if (established == 0 && report.results == 0) {
    net_closed("loadgen: no connection completed the handshake");
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return report;
}

}  // namespace vbs::rpc
