#include "rtc/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/telemetry.h"

namespace vbs::rpc {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

RpcServer::RpcServer(ReconfigService* service, RpcServerOptions opts)
    : service_(service), opts_(std::move(opts)), ops_(opts_.ring_capacity) {}

RpcServer::~RpcServer() { stop(); }

int RpcServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen host: " + opts_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind " + opts_.host + ":" + std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, 512) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    throw_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));

  service_next_id_.store(service_->next_request_id(),
                         std::memory_order_release);
  service_pending_.store(service_->pending(), std::memory_order_release);

  loop_ = std::make_unique<net::EventLoop>();
  loop_->watch(listen_fd_, net::kReadable,
               [this](std::uint32_t) { on_accept(); });

  running_.store(true, std::memory_order_release);
  service_stop_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop_main(); });
  service_thread_ = std::thread([this] { service_main(); });
  return port_;
}

void RpcServer::stop() {
  std::lock_guard<std::mutex> guard(stop_mutex_);
  if (service_thread_.joinable()) {
    service_stop_.store(true, std::memory_order_release);
    service_cv_.notify_one();
    service_thread_.join();
  }
  if (loop_thread_.joinable()) {
    loop_->stop();
    loop_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

ServerCounters RpcServer::counters() const {
  ServerCounters c;
  c.accepted = c_accepted_.load(std::memory_order_relaxed);
  c.active = c_active_.load(std::memory_order_relaxed);
  c.frames_in = c_frames_in_.load(std::memory_order_relaxed);
  c.frames_out = c_frames_out_.load(std::memory_order_relaxed);
  c.door_sheds = c_door_sheds_.load(std::memory_order_relaxed);
  c.handshake_rejects = c_handshake_rejects_.load(std::memory_order_relaxed);
  c.proto_errors = c_proto_errors_.load(std::memory_order_relaxed);
  c.reads_paused = c_reads_paused_.load(std::memory_order_relaxed);
  return c;
}

// --- loop thread -------------------------------------------------------------

void RpcServer::loop_main() {
  TELEM_SPAN("rpc", "server.loop");
  loop_->run();
  // The loop thread owns the sessions; tear them down on its way out.
  sessions_.clear();
  running_.store(false, std::memory_order_release);
}

void RpcServer::on_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
        return;
      }
      if (errno == EINTR) continue;
      return;  // EMFILE etc.: drop this round, keep serving
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t id = next_conn_id_++;
    auto session = std::make_unique<Session>(
        std::make_unique<net::Conn>(fd, id, opts_.net_faults),
        opts_.max_frame_bytes);
    if (reads_globally_paused_) session->read_paused = true;
    auto* raw = session.get();
    sessions_[id] = std::move(session);
    loop_->watch(fd,
                 raw->read_paused ? std::uint32_t{0} : net::kReadable,
                 [this, id](std::uint32_t events) {
                   on_conn_event(id, events);
                 });
    c_accepted_.fetch_add(1, std::memory_order_relaxed);
    c_active_.fetch_add(1, std::memory_order_relaxed);
  }
}

void RpcServer::on_conn_event(std::uint64_t conn_id, std::uint32_t events) {
  const auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) return;
  Session& s = *it->second;

  if (events & (net::kError | net::kHangup)) {
    close_session(conn_id);
    return;
  }
  if (events & net::kWritable) s.conn->on_writable();

  net::IoStatus read_status = net::IoStatus::kOk;
  if ((events & net::kReadable) && !s.conn->closed()) {
    read_status = s.conn->on_readable();
    Frame f;
    try {
      while (!s.closing && !s.conn->closed() &&
             s.reader.next(s.conn->inbuf(), f)) {
        c_frames_in_.fetch_add(1, std::memory_order_relaxed);
        handle_frame(s, f);
      }
    } catch (const VbsError& e) {
      // The byte stream can no longer be framed: typed error, then close.
      c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
      send_error(s, 0, e.code(), e.what(), /*close_after=*/true);
    }
  }

  if (read_status == net::IoStatus::kClosed ||
      read_status == net::IoStatus::kError || s.conn->closed()) {
    close_session(conn_id);
    return;
  }
  update_interest(s);
  if (s.closing && !s.conn->wants_write()) close_session(conn_id);
}

void RpcServer::handle_frame(Session& s, const Frame& f) {
  if (f.type == FrameType::kPing) {
    send_frame(s, FrameType::kPong, f.corr, std::string());
    return;
  }
  if (s.state != SessionState::kReady) {
    handle_handshake(s, f);
  } else {
    handle_request(s, f);
  }
}

void RpcServer::handle_handshake(Session& s, const Frame& f) {
  try {
    if (s.state == SessionState::kAwaitHello) {
      if (f.type != FrameType::kHello) {
        c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
        send_error(s, f.corr, VbsErrc::kNetProto,
                   "expected HELLO before anything else", true);
        return;
      }
      const HelloMsg hello = decode_hello(f.payload);
      s.tenant = hello.tenant;
      s.client_nonce = hello.client_nonce;
      // Deterministic per-connection nonce: a pure function of the auth
      // seed and the accept sequence, so handshake transcripts replay.
      s.server_nonce =
          splitmix64(opts_.auth_seed ^ (0x5eed5eedull + ++nonce_seq_));
      s.state = SessionState::kAwaitAuth;
      send_frame(s, FrameType::kChallenge, f.corr,
                 encode_challenge({s.server_nonce}));
      return;
    }
    // kAwaitAuth
    if (f.type != FrameType::kAuth) {
      c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
      send_error(s, f.corr, VbsErrc::kNetProto, "expected AUTH", true);
      return;
    }
    const AuthMsg auth = decode_auth(f.payload);
    const std::uint64_t want =
        auth_proof(tenant_secret(opts_.auth_seed, s.tenant), s.tenant,
                   s.client_nonce, s.server_nonce);
    if (auth.proof != want) {
      c_handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
      send_error(s, f.corr, VbsErrc::kNetAuth, "bad proof", true);
      return;
    }
    s.state = SessionState::kReady;
    AuthOkMsg ok;
    ok.next_request_id = service_next_id_.load(std::memory_order_acquire);
    ok.session = s.conn->id();
    send_frame(s, FrameType::kAuthOk, f.corr, encode_auth_ok(ok));
  } catch (const VbsError& e) {
    c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
    send_error(s, f.corr, e.code(), e.what(), true);
  }
}

void RpcServer::handle_request(Session& s, const Frame& f) {
  const bool is_admin = s.tenant == kAdminTenant;
  ServiceOp op;
  op.conn_id = s.conn->id();
  op.corr = f.corr;
  try {
    switch (f.type) {
      case FrameType::kLoad: {
        LoadMsg m = decode_load(f.payload);
        if (!is_admin && m.tenant != s.tenant) {
          c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
          send_error(s, f.corr, VbsErrc::kNetProto,
                     "tenant mismatch: session is locked to tenant " +
                         std::to_string(s.tenant),
                     true);
          return;
        }
        op.kind = ServiceOp::Kind::kLoad;
        op.tenant = m.tenant;
        op.stream = std::move(m.stream);
        break;
      }
      case FrameType::kUnload:
      case FrameType::kRelocate: {
        const TargetMsg m = decode_target(f.payload);
        if (!is_admin && m.tenant != s.tenant) {
          c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
          send_error(s, f.corr, VbsErrc::kNetProto,
                     "tenant mismatch: session is locked to tenant " +
                         std::to_string(s.tenant),
                     true);
          return;
        }
        op.kind = f.type == FrameType::kUnload ? ServiceOp::Kind::kUnload
                                               : ServiceOp::Kind::kRelocate;
        op.tenant = m.tenant;
        op.target = m.target;
        break;
      }
      case FrameType::kSetPriority: {
        if (!is_admin) {
          c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
          send_error(s, f.corr, VbsErrc::kNetProto,
                     "SET_PRIORITY is admin-only", true);
          return;
        }
        const PriorityMsg m = decode_priority(f.payload);
        op.kind = ServiceOp::Kind::kSetPriority;
        op.tenant = m.tenant;
        op.priority = m.priority;
        break;
      }
      case FrameType::kDrain:
        if (!is_admin) {
          c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
          send_error(s, f.corr, VbsErrc::kNetProto, "DRAIN is admin-only",
                     true);
          return;
        }
        op.kind = ServiceOp::Kind::kDrain;
        break;
      case FrameType::kStat:
        op.kind = ServiceOp::Kind::kStat;
        break;
      case FrameType::kShutdown:
        if (!is_admin) {
          c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
          send_error(s, f.corr, VbsErrc::kNetProto, "SHUTDOWN is admin-only",
                     true);
          return;
        }
        op.kind = ServiceOp::Kind::kShutdown;
        break;
      default:
        c_proto_errors_.fetch_add(1, std::memory_order_relaxed);
        send_error(s, f.corr, VbsErrc::kNetProto,
                   "frame type not valid from a client session", true);
        return;
    }
  } catch (const VbsError& e) {
    // Payload decode failure: the frame boundary held, so the stream is
    // still in sync — reject this request, keep the session.
    send_error(s, f.corr, e.code(), e.what(), false);
    return;
  }

  if (!push_op(std::move(op))) {
    // Door shed: the loop->service ring is full. The request never
    // reached the service; tell the client with the service's own
    // admission code so callers handle both sheds uniformly.
    c_door_sheds_.fetch_add(1, std::memory_order_relaxed);
    send_error(s, f.corr, VbsErrc::kQueueFull, "server request ring full",
               false);
  }
}

bool RpcServer::push_op(ServiceOp op) {
  if (!ops_.push(std::move(op))) return false;
  service_cv_.notify_one();
  return true;
}

void RpcServer::send_frame(Session& s, FrameType type, std::uint64_t corr,
                           const std::string& payload) {
  if (s.conn->closed()) return;
  c_frames_out_.fetch_add(1, std::memory_order_relaxed);
  s.conn->queue_write(encode_frame(type, corr, payload));
}

void RpcServer::send_error(Session& s, std::uint64_t corr, VbsErrc code,
                           const std::string& message, bool close_after) {
  send_frame(s, FrameType::kError, corr, encode_error({code, message}));
  if (close_after) s.closing = true;
}

void RpcServer::close_session(std::uint64_t conn_id) {
  const auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) return;
  Session& s = *it->second;
  if (!s.conn->closed()) {
    loop_->unwatch(s.conn->fd());
    s.conn->close();
  } else {
    loop_->unwatch(s.conn->fd());
  }
  sessions_.erase(it);
  c_active_.fetch_sub(1, std::memory_order_relaxed);
}

void RpcServer::update_interest(Session& s) {
  if (s.conn->closed()) return;
  const bool outbuf_over = s.conn->outbuf().size() > opts_.outbuf_limit;
  std::uint32_t want = 0;
  if (!s.closing && !s.read_paused && !outbuf_over) want |= net::kReadable;
  if (s.conn->wants_write()) want |= net::kWritable;
  loop_->update(s.conn->fd(), want);
}

void RpcServer::apply_backpressure() {
  const bool should =
      opts_.pending_high_water > 0 &&
      service_pending_.load(std::memory_order_acquire) >
          opts_.pending_high_water;
  if (should == reads_globally_paused_) return;
  reads_globally_paused_ = should;
  if (should) c_reads_paused_.fetch_add(1, std::memory_order_relaxed);
  for (auto& [id, session] : sessions_) {
    session->read_paused = should;
    update_interest(*session);
  }
}

void RpcServer::initiate_loop_shutdown() {
  if (shutting_down_.exchange(true)) return;
  if (listen_fd_ >= 0) {
    loop_->unwatch(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  check_flush_and_stop();
}

void RpcServer::check_flush_and_stop() {
  bool busy = false;
  for (auto& [id, session] : sessions_) {
    if (session->conn->wants_write() && !session->conn->closed()) {
      session->conn->on_writable();
      if (session->conn->wants_write()) busy = true;
    }
  }
  if (!busy) {
    loop_->stop();
    return;
  }
  loop_->arm_timer(1, [this] { check_flush_and_stop(); });
}

void RpcServer::post_frame(std::uint64_t conn_id, FrameType type,
                           std::uint64_t corr, std::string payload) {
  loop_->post([this, conn_id, type, corr,
               payload = std::move(payload)]() mutable {
    const auto it = sessions_.find(conn_id);
    if (it == sessions_.end()) return;  // connection gone: drop the frame
    Session& s = *it->second;
    send_frame(s, type, corr, payload);
    update_interest(s);
    if (s.closing && !s.conn->wants_write()) close_session(conn_id);
  });
}

// --- service thread ----------------------------------------------------------

void RpcServer::service_main() {
  TELEM_SPAN("rpc", "server.service");
  using namespace std::chrono_literals;
  while (!service_stop_.load(std::memory_order_acquire)) {
    ServiceOp op;
    bool any = false;
    while (ops_.pop(op)) {
      any = true;
      service_handle(op);
      if (service_stop_.load(std::memory_order_acquire)) break;
    }
    publish_pending();
    if (service_stop_.load(std::memory_order_acquire)) break;
    if (any) {
      // Submissions may have pushed pending() over the high-water mark:
      // let the loop re-evaluate its read pauses.
      loop_->post([this] { apply_backpressure(); });
    }
    if (!any) {
      if (opts_.auto_drain && service_->pending() > 0) {
        service_drain(0, 0, /*send_ack=*/false);
      } else {
        std::unique_lock<std::mutex> lk(service_mutex_);
        service_cv_.wait_for(lk, 1ms);
      }
    }
  }
}

void RpcServer::service_handle(const ServiceOp& op) {
  switch (op.kind) {
    case ServiceOp::Kind::kLoad: {
      const RequestId id = service_->submit_load(op.stream, op.tenant);
      result_route_[id] = {op.conn_id, op.corr};
      post_frame(op.conn_id, FrameType::kAck, op.corr, encode_ack({id}));
      break;
    }
    case ServiceOp::Kind::kUnload: {
      const RequestId id = service_->submit_unload(op.target, op.tenant);
      result_route_[id] = {op.conn_id, op.corr};
      post_frame(op.conn_id, FrameType::kAck, op.corr, encode_ack({id}));
      break;
    }
    case ServiceOp::Kind::kRelocate: {
      const RequestId id = service_->submit_relocate(op.target, op.tenant);
      result_route_[id] = {op.conn_id, op.corr};
      post_frame(op.conn_id, FrameType::kAck, op.corr, encode_ack({id}));
      break;
    }
    case ServiceOp::Kind::kSetPriority:
      service_->set_tenant_priority(op.tenant, op.priority);
      post_frame(op.conn_id, FrameType::kAck, op.corr,
                 encode_ack({kNoRequest}));
      break;
    case ServiceOp::Kind::kDrain:
      service_drain(op.conn_id, op.corr, /*send_ack=*/true);
      break;
    case ServiceOp::Kind::kStat: {
      const ServiceStats& st = service_->stats();
      StatReplyMsg m;
      m.fingerprint = service_->state_fingerprint();
      m.now_ticks = service_->now_ticks();
      m.pending = service_->pending();
      m.loads = st.loads;
      m.unloads = st.unloads;
      m.relocates = st.relocates;
      m.shed = st.shed;
      m.deadline_misses = st.deadline_misses;
      m.failed = st.failed;
      m.rejected = st.rejected;
      post_frame(op.conn_id, FrameType::kStatReply, op.corr,
                 encode_stat_reply(m));
      break;
    }
    case ServiceOp::Kind::kShutdown:
      if (opts_.auto_drain && service_->pending() > 0) {
        service_drain(0, 0, /*send_ack=*/false);
      }
      post_frame(op.conn_id, FrameType::kAck, op.corr,
                 encode_ack({kNoRequest}));
      service_stop_.store(true, std::memory_order_release);
      loop_->post([this] { initiate_loop_shutdown(); });
      break;
  }
  service_next_id_.store(service_->next_request_id(),
                         std::memory_order_release);
}

void RpcServer::service_drain(std::uint64_t ack_conn, std::uint64_t ack_corr,
                              bool send_ack) {
  TELEM_SPAN("rpc", "server.drain");
  const std::vector<RequestResult> results = service_->drain();
  for (const RequestResult& r : results) {
    std::uint64_t conn = 0, corr = 0;
    const auto it = result_route_.find(r.request);
    if (it != result_route_.end()) {
      conn = it->second.first;
      corr = it->second.second;
      result_route_.erase(it);
    }
    if (conn != 0) {
      post_frame(conn, FrameType::kResult, corr, encode_result(r));
    }
  }
  publish_pending();
  loop_->post([this] { apply_backpressure(); });
  if (send_ack) {
    post_frame(ack_conn, FrameType::kAck, ack_corr, encode_ack({kNoRequest}));
  }
}

void RpcServer::publish_pending() {
  service_pending_.store(service_->pending(), std::memory_order_release);
}

}  // namespace vbs::rpc
