#include "rtc/server/wire.h"

#include <cstring>

namespace vbs::rpc {

namespace {

[[noreturn]] void bad_frame(const std::string& what) {
  throw VbsError(VbsErrc::kNetFrame, "rpc frame: " + what);
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Checksum coverage: version byte, type byte, corr, payload — the frame
/// minus the length prefix and the checksum field itself.
std::uint64_t frame_checksum(std::uint8_t ver, std::uint8_t type,
                             std::uint64_t corr, const char* payload,
                             std::size_t payload_len) {
  std::uint64_t h = fnv1a64(&ver, 1);
  h = fnv1a64(&type, 1, h);
  h = hash_u64(h, corr);
  return fnv1a64(payload, payload_len, h);
}

}  // namespace

bool frame_type_known(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(FrameType::kHello) &&
         raw <= static_cast<std::uint8_t>(FrameType::kShutdown);
}

// --- field primitives --------------------------------------------------------

void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}

void put_u32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& s, std::int32_t v) {
  put_u32(s, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& s, std::int64_t v) {
  put_u64(s, static_cast<std::uint64_t>(v));
}

std::uint8_t get_u8(const std::string& s, std::size_t& off) {
  if (off + 1 > s.size()) bad_frame("payload truncated (u8)");
  return static_cast<std::uint8_t>(s[off++]);
}

std::uint32_t get_u32(const std::string& s, std::size_t& off) {
  if (off + 4 > s.size()) bad_frame("payload truncated (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[off + i]))
         << (8 * i);
  }
  off += 4;
  return v;
}

std::uint64_t get_u64(const std::string& s, std::size_t& off) {
  if (off + 8 > s.size()) bad_frame("payload truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[off + i]))
         << (8 * i);
  }
  off += 8;
  return v;
}

std::int32_t get_i32(const std::string& s, std::size_t& off) {
  return static_cast<std::int32_t>(get_u32(s, off));
}

std::int64_t get_i64(const std::string& s, std::size_t& off) {
  return static_cast<std::int64_t>(get_u64(s, off));
}

// --- frame codec -------------------------------------------------------------

std::string encode_frame(FrameType type, std::uint64_t corr,
                         const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  const std::uint32_t n =
      static_cast<std::uint32_t>(18 + payload.size());  // ver..payload
  put_u32(out, n);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, corr);
  put_u64(out, frame_checksum(kWireVersion, static_cast<std::uint8_t>(type),
                              corr, payload.data(), payload.size()));
  out.append(payload);
  return out;
}

bool FrameReader::next(std::string& buf, Frame& out) {
  if (buf.size() < 4) return false;
  std::size_t off = 0;
  const std::uint32_t n = get_u32(buf, off);
  if (n < 18) bad_frame("declared length " + std::to_string(n) + " < 18");
  if (n > max_frame_) {
    // Checked on the declared length alone: a hostile prefix can never
    // make the reader buffer (or allocate) an unbounded frame.
    bad_frame("declared length " + std::to_string(n) + " exceeds limit " +
              std::to_string(max_frame_));
  }
  if (buf.size() < 4 + static_cast<std::size_t>(n)) return false;
  const std::uint8_t ver = get_u8(buf, off);
  if (ver != kWireVersion) {
    bad_frame("unknown version " + std::to_string(ver));
  }
  const std::uint8_t type = get_u8(buf, off);
  if (!frame_type_known(type)) {
    bad_frame("unknown frame type " + std::to_string(type));
  }
  const std::uint64_t corr = get_u64(buf, off);
  const std::uint64_t declared_sum = get_u64(buf, off);
  const std::size_t payload_len = n - 18;
  const std::uint64_t actual_sum =
      frame_checksum(ver, type, corr, buf.data() + off, payload_len);
  if (declared_sum != actual_sum) bad_frame("checksum mismatch");
  out.type = static_cast<FrameType>(type);
  out.corr = corr;
  out.payload.assign(buf, off, payload_len);
  buf.erase(0, 4 + static_cast<std::size_t>(n));
  return true;
}

// --- handshake ---------------------------------------------------------------

std::uint64_t tenant_secret(std::uint64_t auth_seed, int tenant) {
  return splitmix64(splitmix64(auth_seed) ^
                    static_cast<std::uint64_t>(static_cast<std::int64_t>(tenant)));
}

std::uint64_t auth_proof(std::uint64_t secret, int tenant,
                         std::uint64_t client_nonce,
                         std::uint64_t server_nonce) {
  std::uint64_t h = hash_u64(kFnvOffset64, secret);
  h = hash_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(tenant)));
  h = hash_u64(h, client_nonce);
  h = hash_u64(h, server_nonce);
  return splitmix64(h);
}

std::string encode_hello(const HelloMsg& m) {
  std::string s;
  put_i32(s, m.tenant);
  put_u64(s, m.client_nonce);
  return s;
}

HelloMsg decode_hello(const std::string& payload) {
  std::size_t off = 0;
  HelloMsg m;
  m.tenant = get_i32(payload, off);
  m.client_nonce = get_u64(payload, off);
  if (off != payload.size()) bad_frame("hello: trailing bytes");
  return m;
}

std::string encode_challenge(const ChallengeMsg& m) {
  std::string s;
  put_u64(s, m.server_nonce);
  return s;
}

ChallengeMsg decode_challenge(const std::string& payload) {
  std::size_t off = 0;
  ChallengeMsg m;
  m.server_nonce = get_u64(payload, off);
  if (off != payload.size()) bad_frame("challenge: trailing bytes");
  return m;
}

std::string encode_auth(const AuthMsg& m) {
  std::string s;
  put_u64(s, m.proof);
  return s;
}

AuthMsg decode_auth(const std::string& payload) {
  std::size_t off = 0;
  AuthMsg m;
  m.proof = get_u64(payload, off);
  if (off != payload.size()) bad_frame("auth: trailing bytes");
  return m;
}

std::string encode_auth_ok(const AuthOkMsg& m) {
  std::string s;
  put_i64(s, m.next_request_id);
  put_u64(s, m.session);
  return s;
}

AuthOkMsg decode_auth_ok(const std::string& payload) {
  std::size_t off = 0;
  AuthOkMsg m;
  m.next_request_id = get_i64(payload, off);
  m.session = get_u64(payload, off);
  if (off != payload.size()) bad_frame("auth_ok: trailing bytes");
  return m;
}

// --- requests ----------------------------------------------------------------

std::string encode_error(const ErrorMsg& m) {
  std::string s;
  put_i32(s, static_cast<std::int32_t>(m.code));
  s.append(m.message);
  return s;
}

ErrorMsg decode_error(const std::string& payload) {
  std::size_t off = 0;
  ErrorMsg m;
  m.code = static_cast<VbsErrc>(get_i32(payload, off));
  m.message = payload.substr(off);
  return m;
}

std::string encode_load(int tenant, const BitVector& stream) {
  std::string s;
  put_i32(s, tenant);
  s.append(artifact_container_bytes(ArtifactStage::kEncode, /*fingerprint=*/0,
                                    stream));
  return s;
}

LoadMsg decode_load(const std::string& payload) {
  std::size_t off = 0;
  LoadMsg m;
  m.tenant = get_i32(payload, off);
  try {
    m.stream = parse_artifact_container(payload.substr(off),
                                        ArtifactStage::kEncode,
                                        /*expected_fingerprint=*/nullptr,
                                        /*fingerprint_out=*/nullptr,
                                        "rpc load");
  } catch (const ArtifactError& e) {
    // A torn/tampered container is a wire-level reject, typed as such.
    bad_frame(std::string("load container: ") + e.what());
  }
  return m;
}

std::string encode_target(const TargetMsg& m) {
  std::string s;
  put_i32(s, m.tenant);
  put_i64(s, m.target);
  return s;
}

TargetMsg decode_target(const std::string& payload) {
  std::size_t off = 0;
  TargetMsg m;
  m.tenant = get_i32(payload, off);
  m.target = get_i64(payload, off);
  if (off != payload.size()) bad_frame("target: trailing bytes");
  return m;
}

std::string encode_priority(const PriorityMsg& m) {
  std::string s;
  put_i32(s, m.tenant);
  put_i32(s, m.priority);
  return s;
}

PriorityMsg decode_priority(const std::string& payload) {
  std::size_t off = 0;
  PriorityMsg m;
  m.tenant = get_i32(payload, off);
  m.priority = get_i32(payload, off);
  if (off != payload.size()) bad_frame("priority: trailing bytes");
  return m;
}

std::string encode_ack(const AckMsg& m) {
  std::string s;
  put_i64(s, m.request_id);
  return s;
}

AckMsg decode_ack(const std::string& payload) {
  std::size_t off = 0;
  AckMsg m;
  m.request_id = get_i64(payload, off);
  if (off != payload.size()) bad_frame("ack: trailing bytes");
  return m;
}

std::string encode_result(const RequestResult& r) {
  std::string s;
  put_i64(s, r.request);
  put_u8(s, static_cast<std::uint8_t>(r.kind));
  put_u8(s, static_cast<std::uint8_t>(r.status));
  put_i32(s, r.task);
  put_i32(s, r.rect.x);
  put_i32(s, r.rect.y);
  put_i32(s, r.rect.w);
  put_i32(s, r.rect.h);
  put_i32(s, r.tenant);
  put_i32(s, r.priority);
  put_i32(s, r.attempts);
  put_u8(s, r.cache_hit ? 1 : 0);
  put_i32(s, r.evicted_tasks);
  put_i32(s, static_cast<std::int32_t>(r.code));
  put_i64(s, r.latency_ticks);
  put_i64(s, r.queue_wait_ticks);
  put_i64(s, r.backoff_ticks);
  put_i64(s, r.spike_ticks);
  put_i64(s, r.exec_ticks);
  return s;
}

RequestResult decode_result(const std::string& payload) {
  std::size_t off = 0;
  RequestResult r;
  r.request = get_i64(payload, off);
  r.kind = static_cast<RequestKind>(get_u8(payload, off));
  r.status = static_cast<RequestStatus>(get_u8(payload, off));
  r.task = get_i32(payload, off);
  r.rect.x = get_i32(payload, off);
  r.rect.y = get_i32(payload, off);
  r.rect.w = get_i32(payload, off);
  r.rect.h = get_i32(payload, off);
  r.tenant = get_i32(payload, off);
  r.priority = get_i32(payload, off);
  r.attempts = get_i32(payload, off);
  r.cache_hit = get_u8(payload, off) != 0;
  r.evicted_tasks = get_i32(payload, off);
  r.code = static_cast<VbsErrc>(get_i32(payload, off));
  r.latency_ticks = get_i64(payload, off);
  r.queue_wait_ticks = get_i64(payload, off);
  r.backoff_ticks = get_i64(payload, off);
  r.spike_ticks = get_i64(payload, off);
  r.exec_ticks = get_i64(payload, off);
  if (off != payload.size()) bad_frame("result: trailing bytes");
  return r;
}

std::string encode_stat_reply(const StatReplyMsg& m) {
  std::string s;
  put_u64(s, m.fingerprint);
  put_i64(s, m.now_ticks);
  put_u64(s, m.pending);
  put_i64(s, m.loads);
  put_i64(s, m.unloads);
  put_i64(s, m.relocates);
  put_i64(s, m.shed);
  put_i64(s, m.deadline_misses);
  put_i64(s, m.failed);
  put_i64(s, m.rejected);
  return s;
}

StatReplyMsg decode_stat_reply(const std::string& payload) {
  std::size_t off = 0;
  StatReplyMsg m;
  m.fingerprint = get_u64(payload, off);
  m.now_ticks = get_i64(payload, off);
  m.pending = get_u64(payload, off);
  m.loads = get_i64(payload, off);
  m.unloads = get_i64(payload, off);
  m.relocates = get_i64(payload, off);
  m.shed = get_i64(payload, off);
  m.deadline_misses = get_i64(payload, off);
  m.failed = get_i64(payload, off);
  m.rejected = get_i64(payload, off);
  if (off != payload.size()) bad_frame("stat_reply: trailing bytes");
  return m;
}

}  // namespace vbs::rpc
