// RpcServer: the networked front door of ReconfigService.
//
//   accept/read/write        decode/dispatch              model/commit
//  +-----------------+   vbs.rpc.v1   +-----------+   MpscRing   +---------+
//  | EventLoop thread | <-----------> | sessions  | -----------> | service |
//  | (src/net)        |               | (per conn)| <----------- | thread  |
//  +-----------------+                +-----------+  post()      +---------+
//
// Two threads. The *loop thread* owns every socket: it accepts, reads,
// parses frames (FrameReader), runs the per-connection handshake state
// machine and writes replies — all single-threaded, lock-free protocol
// state. The *service thread* owns the ReconfigService exclusively: it
// pops ServiceOps from a bounded MPSC ring, calls submit_*/drain() and
// hands completion frames back to the loop thread via EventLoop::post().
// The service is never touched from two threads, so its single-threaded
// determinism contract (and its WAL journal) carries over unchanged.
//
// Admission control maps connection backpressure onto the service's
// priority-aware shedding in three rings:
//   1. ring full        -> immediate ERROR{kQueueFull} ("door shed"):
//                          the request never reaches the service.
//   2. service pending  -> above pending_high_water the loop pauses
//                          EPOLLIN on data connections; reads resume when
//                          the service thread reports the queue drained.
//   3. outbuf overflow  -> a connection slower than its result stream has
//                          its reads paused until the outbuf flushes.
// Requests that reach the service are shed by *its* policy (priority-
// aware, typed kShed results) — the door never reorders tenants.
//
// Determinism: with auto_drain off (the bench's replay mode), the service
// drains only at explicit DRAIN frames. A single admin connection
// replaying a trace — submits in trace order, one DRAIN per tick group —
// therefore produces the exact submit/drain sequence of the offline
// replay, and the journaled server state is fingerprint-identical to
// bench/rtc_bench.cpp's offline replay of the same trace (tests/
// test_server.cpp holds this; BENCH_rtc.json gates it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "net/conn.h"
#include "net/event_loop.h"
#include "net/ring.h"
#include "rtc/server/wire.h"
#include "rtc/service/service.h"

namespace vbs::rpc {

struct RpcServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port is port() after start()
  /// Seed of the per-tenant handshake secrets (wire.h tenant_secret).
  std::uint64_t auth_seed = 1;
  /// FrameReader limit: a declared length above this is kNetFrame.
  std::size_t max_frame_bytes = kMaxFrameBytesDefault;
  /// Loop -> service queue depth; a full ring is a door shed.
  std::size_t ring_capacity = 1024;
  /// Pause reading a connection whose outbuf exceeds this.
  std::size_t outbuf_limit = 4u << 20;
  /// Pause reading all data connections while service pending exceeds
  /// this; 0 disables loop-level backpressure.
  std::size_t pending_high_water = 0;
  /// Drain whenever the ring is empty and requests are pending. Off for
  /// the deterministic replay mode (drains only at DRAIN frames).
  bool auto_drain = true;
  /// Hostile-socket schedule injected into every accepted connection
  /// (net_short / net_eagain / net_drop sites).
  FaultPlan net_faults;
};

/// Loop-thread counters, readable from any thread.
struct ServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t door_sheds = 0;       ///< ring-full ERROR{kQueueFull}
  std::uint64_t handshake_rejects = 0;
  std::uint64_t proto_errors = 0;     ///< kNetProto / kNetFrame closes
  std::uint64_t reads_paused = 0;     ///< backpressure pause transitions
};

class RpcServer {
 public:
  /// `service` is borrowed, not owned: the caller constructs it (possibly
  /// journaled) and inspects it after stop() — e.g. state_fingerprint()
  /// for the replay-equality check. After start() the service belongs to
  /// the service thread until stop() returns.
  RpcServer(ReconfigService* service, RpcServerOptions opts);
  ~RpcServer();
  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens and spawns the loop + service threads. Throws
  /// std::runtime_error when the bind fails. Returns the bound port.
  int start();
  /// Graceful stop (idempotent): flushes connections, joins both
  /// threads. Also triggered remotely by an admin SHUTDOWN frame.
  void stop();
  /// True from start() until the server has fully stopped (a SHUTDOWN
  /// frame also ends it); poll this after driving traffic.
  bool running() const { return running_.load(std::memory_order_acquire); }

  int port() const { return port_; }
  ServerCounters counters() const;

 private:
  struct ServiceOp {
    enum class Kind {
      kLoad, kUnload, kRelocate, kSetPriority, kDrain, kStat, kShutdown
    };
    Kind kind = Kind::kDrain;
    std::uint64_t conn_id = 0;
    std::uint64_t corr = 0;
    BitVector stream;          ///< kLoad
    std::int64_t target = -1;  ///< kUnload / kRelocate
    int tenant = 0;
    int priority = 0;          ///< kSetPriority
  };

  enum class SessionState { kAwaitHello, kAwaitAuth, kReady };

  struct Session {
    std::unique_ptr<net::Conn> conn;
    FrameReader reader;
    SessionState state = SessionState::kAwaitHello;
    int tenant = 0;
    std::uint64_t client_nonce = 0;
    std::uint64_t server_nonce = 0;
    bool read_paused = false;   ///< by global or per-conn backpressure
    bool closing = false;       ///< close once outbuf flushes

    Session(std::unique_ptr<net::Conn> c, std::size_t max_frame)
        : conn(std::move(c)), reader(max_frame) {}
  };

  // --- loop thread ----------------------------------------------------------
  void loop_main();
  void on_accept();
  void on_conn_event(std::uint64_t conn_id, std::uint32_t events);
  void handle_frame(Session& s, const Frame& f);
  void handle_handshake(Session& s, const Frame& f);
  void handle_request(Session& s, const Frame& f);
  bool push_op(ServiceOp op);  ///< false = ring full (caller door-sheds)
  void send_frame(Session& s, FrameType type, std::uint64_t corr,
                  const std::string& payload);
  void send_error(Session& s, std::uint64_t corr, VbsErrc code,
                  const std::string& message, bool close_after);
  void close_session(std::uint64_t conn_id);
  void update_interest(Session& s);
  void apply_backpressure();
  /// Remote SHUTDOWN path, on the loop thread: stop accepting, then stop
  /// the loop once every outbuf has flushed.
  void initiate_loop_shutdown();
  void check_flush_and_stop();
  /// Sends a frame to a (possibly gone) connection; service-thread safe
  /// via post().
  void post_frame(std::uint64_t conn_id, FrameType type, std::uint64_t corr,
                  std::string payload);

  // --- service thread -------------------------------------------------------
  void service_main();
  void service_handle(const ServiceOp& op);
  void service_drain(std::uint64_t ack_conn, std::uint64_t ack_corr,
                     bool send_ack);
  void publish_pending();

  ReconfigService* service_;
  RpcServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::unique_ptr<net::EventLoop> loop_;
  std::thread loop_thread_;
  std::thread service_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> service_stop_{false};
  std::atomic<bool> shutting_down_{false};
  std::mutex stop_mutex_;  ///< serializes stop() callers

  // loop-thread state
  std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t nonce_seq_ = 0;
  bool reads_globally_paused_ = false;

  // loop -> service
  net::MpscRing<ServiceOp> ops_;
  std::mutex service_mutex_;
  std::condition_variable service_cv_;

  // service-thread state: submit corr -> where the eventual result goes
  std::map<RequestId, std::pair<std::uint64_t, std::uint64_t>> result_route_;

  std::atomic<std::size_t> service_pending_{0};
  /// Published by the service thread after every op so the loop thread
  /// can stamp AUTH_OK with the service's next request id race-free.
  std::atomic<long long> service_next_id_{0};

  // counters (loop thread writes; any thread reads)
  std::atomic<std::uint64_t> c_accepted_{0}, c_active_{0};
  std::atomic<std::uint64_t> c_frames_in_{0}, c_frames_out_{0};
  std::atomic<std::uint64_t> c_door_sheds_{0}, c_handshake_rejects_{0};
  std::atomic<std::uint64_t> c_proto_errors_{0}, c_reads_paused_{0};
};

}  // namespace vbs::rpc
