// RPC clients for the networked reconfiguration service.
//
// Two clients share the vbs.rpc.v1 codec (wire.h):
//
//   RpcClient  — a simple *blocking* client: connect + handshake in the
//                constructor, then synchronous request/reply calls. This
//                is what the admin replay path and the tests use; every
//                wire failure surfaces as a typed VbsError (kNetClosed on
//                a dead peer, kNetTimeout on a receive deadline, kNetAuth
//                on a rejected handshake, or the server's own error code
//                relayed from an ERROR frame).
//
//   run_loadgen — a *closed-loop* load generator: one EventLoop drives
//                 `connections` concurrent non-blocking connections, each
//                 authenticated as its tenant and walking its slice of a
//                 reconfiguration trace one outstanding request at a time
//                 (send LOAD/UNLOAD/RELOCATE -> await ACK -> await RESULT
//                 -> next). Trace events are partitioned by tenant and
//                 round-robined across that tenant's connections;
//                 unload/relocate events ride with the connection that
//                 issued the referenced load, so every target id is known
//                 locally by the time it is needed. Per-request latency
//                 is wall time from the submit write to its RESULT frame
//                 — the number the bench reports as p50/p99 under
//                 steady/bursty/flash_crowd arrivals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/conn.h"
#include "rtc/server/wire.h"
#include "rtc/service/trace.h"
#include "util/bitvector.h"
#include "util/fault.h"

namespace vbs::rpc {

struct RpcClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int tenant = 0;  ///< kAdminTenant for the privileged session
  std::uint64_t auth_seed = 1;
  std::uint64_t client_nonce = 0x7e571e57u;
  int timeout_ms = 10'000;  ///< receive deadline -> VbsError{kNetTimeout}
  std::size_t max_frame_bytes = kMaxFrameBytesDefault;
};

class RpcClient {
 public:
  /// Connects and completes the handshake; throws VbsError{kNetClosed}
  /// when the peer is unreachable, {kNetAuth} when rejected.
  explicit RpcClient(RpcClientOptions opts);
  ~RpcClient();
  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// The service request id the server will assign to the next submit —
  /// from AUTH_OK; advance it client-side by counting submits to predict
  /// ids without a round trip.
  long long next_request_id() const { return next_request_id_; }
  std::uint64_t session() const { return session_; }

  /// Submit calls block until the server's ACK and return the service
  /// request id. The eventual RESULT arrives via drain() (admin replay)
  /// or await_result() (auto-drain servers).
  RequestId send_load(const BitVector& stream, int tenant);
  RequestId send_unload(RequestId target, int tenant);
  RequestId send_relocate(RequestId target, int tenant);

  void set_priority(int tenant, int priority);  ///< admin only
  /// Admin drain barrier: returns every result the drain produced (the
  /// server streams them before the barrier's ACK).
  std::vector<RequestResult> drain();
  /// Blocks for the next RESULT frame (auto-drain mode).
  RequestResult await_result();
  StatReplyMsg stat();
  void ping();
  /// Graceful remote stop (admin only); returns after the server's ACK.
  void shutdown();

  void close();

 private:
  std::string send_and_wait(FrameType type, const std::string& payload,
                            FrameType expect);
  void send_frame(FrameType type, std::uint64_t corr,
                  const std::string& payload);
  /// Blocking receive of one frame; relays ERROR frames as VbsError.
  Frame recv_frame(bool relay_errors = true);
  RequestId submit(FrameType type, const std::string& payload);

  RpcClientOptions opts_;
  int fd_ = -1;
  std::string inbuf_;
  FrameReader reader_;
  std::uint64_t next_corr_ = 1;
  long long next_request_id_ = 0;
  std::uint64_t session_ = 0;
};

// --- closed-loop load generator ---------------------------------------------

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int connections = 32;
  std::uint64_t auth_seed = 1;
  Trace trace;
  /// Pre-built VBS streams, aligned with trace.kinds.
  std::vector<BitVector> kind_streams;
  int timeout_ms = 120'000;  ///< whole-run wall guard
  std::size_t max_frame_bytes = kMaxFrameBytesDefault;
  /// Client-side hostile-socket schedule (net_short/net_eagain/net_drop).
  FaultPlan net_faults;
};

struct LoadGenReport {
  int connections = 0;
  long long requests_sent = 0;
  long long acks = 0;
  long long results = 0;
  long long done = 0, shed = 0, rejected = 0, failed = 0, deadline = 0;
  long long door_sheds = 0;   ///< ERROR{kQueueFull}: shed at the ring
  long long wire_errors = 0;  ///< other ERROR frames / dead connections
  bool timed_out = false;
  double wall_seconds = 0.0;
  /// Submit-write -> RESULT wall latency, one entry per completed
  /// request, in issue-completion order (not sorted).
  std::vector<double> latencies_ms;
};

/// Runs the closed-loop generator to completion (every connection's
/// schedule exhausted, a dead server, or timeout_ms). Throws
/// VbsError{kNetClosed} only when no connection could be established at
/// all; partial failures are counted in the report instead.
LoadGenReport run_loadgen(const LoadGenOptions& opts);

}  // namespace vbs::rpc
