// `vbs.rpc.v1`: the compact binary wire protocol of the networked
// reconfiguration service.
//
// Every message is one length-prefixed, checksummed frame:
//
//   bytes 0-3    payload-independent length N, little-endian u32:
//                the byte count of everything after this prefix
//   byte  4      protocol version (1)
//   byte  5      frame type (FrameType)
//   bytes 6-13   correlation id, little-endian u64: echoed verbatim in
//                every reply so a pipelined client can match responses
//   bytes 14-21  checksum, little-endian u64: FNV-1a over bytes 4..5 and
//                6..13 and the payload (i.e. the frame minus the length
//                prefix and the checksum field itself)
//   bytes 22-    payload (N - 18 bytes), layout per frame type
//
// A frame is rejected with VbsError{kNetFrame} — never a crash, never an
// allocation proportional to a hostile length — when the version or type
// is unknown, N is short (< 18) or exceeds the reader's max_frame_bytes,
// or the checksum mismatches. tools/vbsfuzz --rpc-frame holds this as a
// fuzz contract.
//
// Session handshake (per connection, before anything else):
//
//   client                                server
//     HELLO{tenant, client_nonce}  ---->
//                                  <----  CHALLENGE{server_nonce}
//     AUTH{proof}                  ---->
//                                  <----  AUTH_OK{next_request_id, session}
//                                    or   ERROR{kNetAuth, ...} + close
//
// with proof = auth_proof(tenant_secret(auth_seed, tenant), tenant,
// client_nonce, server_nonce): a keyed FNV chain — a lightweight shared-
// secret challenge-response that keeps replayed or cross-tenant AUTH
// frames out without any crypto dependency. Tenant -1 is the *admin*
// session: it may submit on behalf of any tenant, set priorities, force
// drains and shut the server down; a normal session is locked to its
// authenticated tenant (a mismatched tenant field is kNetProto).
//
// Request payloads reuse the vbs.artifact.v1 container codec
// (flow/artifact_io.h) for bit streams: a LOAD carries the tenant plus a
// full container (stage kEncode), so a stream travels the wire with the
// same magic, declared-size and content-hash checks a checkpoint file
// gets. Results mirror RequestResult field for field on the modeled-tick
// timebase, so a wire client sees exactly what an offline replay sees.
#pragma once

#include <cstdint>
#include <string>

#include "flow/artifact_io.h"
#include "rtc/service/service.h"
#include "util/bitvector.h"
#include "util/error.h"

namespace vbs::rpc {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 22;  ///< incl. length prefix
inline constexpr std::size_t kMaxFrameBytesDefault = 16u << 20;

/// The admin tenant: may act for any tenant, set priorities, drain,
/// shut down. Authenticated like any tenant (it has its own secret).
inline constexpr int kAdminTenant = -1;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kChallenge = 2,
  kAuth = 3,
  kAuthOk = 4,
  kError = 5,        ///< ErrorMsg; corr names the offending request (or 0)
  kLoad = 6,         ///< LoadMsg -> kAck{request_id}, later kResult
  kUnload = 7,       ///< TargetMsg -> kAck{request_id}, later kResult
  kRelocate = 8,     ///< TargetMsg -> kAck{request_id}, later kResult
  kResult = 9,       ///< ResultMsg, corr of the originating submit
  kAck = 10,         ///< AckMsg: the service request id (or kNoRequest)
  kSetPriority = 11, ///< PriorityMsg -> kAck (admin only)
  kDrain = 12,       ///< force a drain barrier -> results, then kAck (admin)
  kStat = 13,        ///< -> kStatReply
  kStatReply = 14,
  kPing = 15,        ///< -> kPong
  kPong = 16,
  kShutdown = 17,    ///< graceful stop -> kAck, then server closes (admin)
};

/// True for type values this protocol version defines.
bool frame_type_known(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint64_t corr = 0;
  std::string payload;
};

/// Serializes one frame (length prefix, version, checksum included).
std::string encode_frame(FrameType type, std::uint64_t corr,
                         const std::string& payload);

/// Incremental frame parser over a connection's receive buffer.
///
/// next() consumes at most one complete frame from the front of `buf`:
/// returns false (buffer untouched beyond what a complete frame needs)
/// when bytes are still missing, true with `out` filled when a frame was
/// consumed, and throws VbsError{kNetFrame} when the bytes can never
/// become a valid frame (bad version/type/length/checksum). The oversize
/// check fires on the *declared* length, before any payload bytes arrive.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kMaxFrameBytesDefault)
      : max_frame_(max_frame_bytes) {}

  bool next(std::string& buf, Frame& out);

 private:
  std::size_t max_frame_;
};

// --- payload field primitives (little-endian, bounds-checked) ---------------

void put_u8(std::string& s, std::uint8_t v);
void put_u32(std::string& s, std::uint32_t v);
void put_u64(std::string& s, std::uint64_t v);
void put_i32(std::string& s, std::int32_t v);
void put_i64(std::string& s, std::int64_t v);

/// Each get_* advances `off`; throws VbsError{kNetFrame} on a short read.
std::uint8_t get_u8(const std::string& s, std::size_t& off);
std::uint32_t get_u32(const std::string& s, std::size_t& off);
std::uint64_t get_u64(const std::string& s, std::size_t& off);
std::int32_t get_i32(const std::string& s, std::size_t& off);
std::int64_t get_i64(const std::string& s, std::size_t& off);

// --- handshake ---------------------------------------------------------------

/// Per-tenant shared secret derived from the server's auth seed
/// (splitmix64 chain). Both ends compute it; it never travels the wire.
std::uint64_t tenant_secret(std::uint64_t auth_seed, int tenant);

/// Keyed FNV chain binding the secret to both nonces and the tenant.
std::uint64_t auth_proof(std::uint64_t secret, int tenant,
                         std::uint64_t client_nonce,
                         std::uint64_t server_nonce);

struct HelloMsg {
  int tenant = 0;
  std::uint64_t client_nonce = 0;
};
std::string encode_hello(const HelloMsg& m);
HelloMsg decode_hello(const std::string& payload);

struct ChallengeMsg {
  std::uint64_t server_nonce = 0;
};
std::string encode_challenge(const ChallengeMsg& m);
ChallengeMsg decode_challenge(const std::string& payload);

struct AuthMsg {
  std::uint64_t proof = 0;
};
std::string encode_auth(const AuthMsg& m);
AuthMsg decode_auth(const std::string& payload);

struct AuthOkMsg {
  std::int64_t next_request_id = 0;  ///< service id the next submit gets
  std::uint64_t session = 0;
};
std::string encode_auth_ok(const AuthOkMsg& m);
AuthOkMsg decode_auth_ok(const std::string& payload);

// --- requests ----------------------------------------------------------------

struct ErrorMsg {
  VbsErrc code = VbsErrc::kNetProto;
  std::string message;
};
std::string encode_error(const ErrorMsg& m);
ErrorMsg decode_error(const std::string& payload);

/// LOAD: tenant + the stream wrapped in a vbs.artifact.v1 container
/// (stage kEncode). decode re-verifies the container's magic, declared
/// size and content hash; a torn or tampered stream is kNetFrame at the
/// door, not a service-level failure.
std::string encode_load(int tenant, const BitVector& stream);
struct LoadMsg {
  int tenant = 0;
  BitVector stream;
};
LoadMsg decode_load(const std::string& payload);

struct TargetMsg {
  int tenant = 0;
  std::int64_t target = -1;  ///< service request id of the original load
};
std::string encode_target(const TargetMsg& m);
TargetMsg decode_target(const std::string& payload);

struct PriorityMsg {
  int tenant = 0;
  int priority = 0;
};
std::string encode_priority(const PriorityMsg& m);
PriorityMsg decode_priority(const std::string& payload);

struct AckMsg {
  std::int64_t request_id = -1;  ///< kNoRequest for non-submit acks
};
std::string encode_ack(const AckMsg& m);
AckMsg decode_ack(const std::string& payload);

/// The wire image of RequestResult: every modeled-tick field a replay
/// compares, none of the wall-clock diagnostics.
std::string encode_result(const RequestResult& r);
RequestResult decode_result(const std::string& payload);

struct StatReplyMsg {
  std::uint64_t fingerprint = 0;  ///< live state_fingerprint()
  std::int64_t now_ticks = 0;
  std::uint64_t pending = 0;
  std::int64_t loads = 0, unloads = 0, relocates = 0;
  std::int64_t shed = 0, deadline_misses = 0, failed = 0, rejected = 0;
};
std::string encode_stat_reply(const StatReplyMsg& m);
StatReplyMsg decode_stat_reply(const std::string& payload);

}  // namespace vbs::rpc
