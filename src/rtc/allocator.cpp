#include "rtc/allocator.h"

#include <algorithm>
#include <stdexcept>

namespace vbs {

RectAllocator::RectAllocator(int width, int height)
    : width_(width), height_(height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("allocator: bad fabric dimensions");
  }
  grid_.assign(static_cast<std::size_t>(width) * height, 0);
  sat_.assign(static_cast<std::size_t>(width + 1) * (height + 1), 0);
}

void RectAllocator::rebuild_sat() {
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      sat_[static_cast<std::size_t>(y + 1) * (width_ + 1) + x + 1] =
          (tile(x, y) ? 1 : 0) + prefix(x, y + 1) + prefix(x + 1, y) -
          prefix(x, y);
    }
  }
}

int RectAllocator::occupied_in(const Rect& r) const {
  const int x0 = std::max(0, r.x), y0 = std::max(0, r.y);
  const int x1 = std::min(width_, r.x + r.w), y1 = std::min(height_, r.y + r.h);
  if (x0 >= x1 || y0 >= y1) return 0;
  return prefix(x1, y1) - prefix(x0, y1) - prefix(x1, y0) + prefix(x0, y0);
}

std::optional<Point> RectAllocator::find_free(int w, int h) const {
  if (w < 1 || h < 1 || w > width_ || h > height_) return std::nullopt;
  for (int y = 0; y + h <= height_; ++y) {
    for (int x = 0; x + w <= width_;) {
      if (occupied_in({x, y, w, h}) == 0) return Point{x, y};
      // Skip past the rightmost blocking column of the window: binary
      // search on the monotone "columns [c, x+w) contain an occupied tile"
      // predicate, each probe O(1) on the summed-area table.
      int lo = x, hi = x + w - 1;
      while (lo < hi) {
        const int mid = (lo + hi + 1) / 2;
        if (occupied_in({mid, y, x + w - mid, h}) > 0) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      x = lo + 1;
    }
  }
  return std::nullopt;
}

bool RectAllocator::is_free(const Rect& r) const {
  if (r.x < 0 || r.y < 0 || r.x + r.w > width_ || r.y + r.h > height_) {
    return false;
  }
  return occupied_in(r) == 0;
}

void RectAllocator::occupy(const Rect& r) {
  if (!is_free(r)) {
    throw std::logic_error("allocator: rectangle not free: " + to_string(r));
  }
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      grid_[static_cast<std::size_t>(y) * width_ + x] = 1;
    }
  }
  occupied_count_ += r.area();
  rebuild_sat();
}

void RectAllocator::release(const Rect& r) {
  // Validate before mutating (an O(1) SAT probe) so a bad release throws
  // without leaving grid_, sat_ and occupied_count_ inconsistent.
  if (r.x < 0 || r.y < 0 || r.x + r.w > width_ || r.y + r.h > height_ ||
      occupied_in(r) != r.area()) {
    throw std::logic_error("allocator: releasing free tile: " + to_string(r));
  }
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      grid_[static_cast<std::size_t>(y) * width_ + x] = 0;
    }
  }
  occupied_count_ -= r.area();
  rebuild_sat();
}

double RectAllocator::occupancy() const {
  return static_cast<double>(occupied_count_) /
         (static_cast<double>(width_) * height_);
}

int RectAllocator::largest_free_rect_area() const {
  // Largest rectangle of zeros: per row, the histogram of free-run heights
  // above it, then the classic monotone-stack largest-rectangle sweep.
  std::vector<int> heights(static_cast<std::size_t>(width_), 0);
  std::vector<int> stack;
  int best = 0;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      heights[static_cast<std::size_t>(x)] =
          tile(x, y) ? 0 : heights[static_cast<std::size_t>(x)] + 1;
    }
    stack.clear();
    for (int x = 0; x <= width_; ++x) {
      const int h = x < width_ ? heights[static_cast<std::size_t>(x)] : 0;
      while (!stack.empty() &&
             heights[static_cast<std::size_t>(stack.back())] >= h) {
        const int top = stack.back();
        stack.pop_back();
        const int left = stack.empty() ? 0 : stack.back() + 1;
        best = std::max(best,
                        heights[static_cast<std::size_t>(top)] * (x - left));
      }
      stack.push_back(x);
    }
  }
  return best;
}

}  // namespace vbs
