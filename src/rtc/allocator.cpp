#include "rtc/allocator.h"

#include <stdexcept>

namespace vbs {

RectAllocator::RectAllocator(int width, int height)
    : width_(width), height_(height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("allocator: bad fabric dimensions");
  }
  grid_.assign(static_cast<std::size_t>(width) * height, 0);
}

std::optional<Point> RectAllocator::find_free(int w, int h) const {
  if (w < 1 || h < 1 || w > width_ || h > height_) return std::nullopt;
  for (int y = 0; y + h <= height_; ++y) {
    for (int x = 0; x + w <= width_;) {
      // Scan the candidate rectangle; on collision, jump past the blocker.
      int skip_to = -1;
      for (int dy = 0; dy < h && skip_to < 0; ++dy) {
        for (int dx = 0; dx < w; ++dx) {
          if (tile(x + dx, y + dy)) {
            skip_to = x + dx + 1;
            break;
          }
        }
      }
      if (skip_to < 0) return Point{x, y};
      x = skip_to;
    }
  }
  return std::nullopt;
}

bool RectAllocator::is_free(const Rect& r) const {
  if (r.x < 0 || r.y < 0 || r.x + r.w > width_ || r.y + r.h > height_) {
    return false;
  }
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (tile(x, y)) return false;
    }
  }
  return true;
}

void RectAllocator::occupy(const Rect& r) {
  if (!is_free(r)) {
    throw std::logic_error("allocator: rectangle not free: " + to_string(r));
  }
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      grid_[static_cast<std::size_t>(y) * width_ + x] = 1;
    }
  }
  occupied_count_ += r.area();
}

void RectAllocator::release(const Rect& r) {
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (!tile(x, y)) {
        throw std::logic_error("allocator: releasing free tile");
      }
      grid_[static_cast<std::size_t>(y) * width_ + x] = 0;
    }
  }
  occupied_count_ -= r.area();
}

double RectAllocator::occupancy() const {
  return static_cast<double>(occupied_count_) /
         (static_cast<double>(width_) * height_);
}

}  // namespace vbs
