#include "rtc/controller.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "util/telemetry.h"

namespace vbs {

ReconfigController::ReconfigController(const ArchSpec& spec, int width,
                                       int height)
    : fabric_(spec, width, height),
      config_(fabric_.config_bits_total()),
      alloc_(width, height) {}

ReconfigController::LoadedTask& ReconfigController::lookup(TaskId id) {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    throw std::out_of_range("rtc: unknown task " + std::to_string(id));
  }
  return it->second;
}

const TaskRecord& ReconfigController::record(TaskId id) const {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    throw std::out_of_range("rtc: unknown task " + std::to_string(id));
  }
  return it->second.rec;
}

const VbsImage& ReconfigController::image_of(TaskId id) const {
  const auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    throw std::out_of_range("rtc: unknown task " + std::to_string(id));
  }
  return it->second.image;
}

std::vector<TaskId> ReconfigController::task_ids() const {
  std::vector<TaskId> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) ids.push_back(id);
  return ids;
}

void ReconfigController::decode_into(const VbsImage& img, Point origin,
                                     int threads, TaskRecord& rec) {
  if (fault_plan_ != nullptr && fault_plan_->decode_fails(decode_seq_++)) {
    telem::counter_add("rtc.decode.fault_injected");
    throw VbsError(VbsErrc::kFaultInjected, "rtc: injected decode fault");
  }
  telem::Span span("rtc", "decode");
  const std::uint64_t t0 = telem::now_ns();
  const std::size_t n = img.entries.size();
  std::vector<BitVector> payloads(n);
  std::vector<DecodeStats> stats(std::max(1, threads));
  std::vector<std::string> errors(std::max(1, threads));

  // Decode phase: entries are independent (the de-virtualization process
  // "can be easily parallelized to process multiple macros at once",
  // paper Section II-C). Each worker owns its region-model cache.
  auto worker = [&](int tid, std::size_t begin, std::size_t end) {
    try {
      RegionDecoderCache cache(img.spec, img.cluster, img.task_w, img.task_h);
      for (std::size_t i = begin; i < end; ++i) {
        const VbsEntry& e = img.entries[i];
        if (!cache.decoder_for(e.cx, e.cy).decode_entry(
                e, payloads[i], &stats[static_cast<std::size_t>(tid)])) {
          errors[static_cast<std::size_t>(tid)] =
              "entry " + std::to_string(e.cx) + "," + std::to_string(e.cy) +
              " failed to decode";
          return;
        }
      }
    } catch (const std::exception& ex) {
      errors[static_cast<std::size_t>(tid)] = ex.what();
    }
  };
  if (threads <= 1 || n < 2) {
    worker(0, 0, n);
  } else {
    const int nt = std::min<std::size_t>(threads, n);
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(nt));
    for (int t = 0; t < nt; ++t) {
      const std::size_t begin = n * static_cast<std::size_t>(t) /
                                static_cast<std::size_t>(nt);
      const std::size_t end = n * static_cast<std::size_t>(t + 1) /
                              static_cast<std::size_t>(nt);
      pool.emplace_back(worker, t, begin, end);
    }
    for (std::thread& t : pool) t.join();
  }
  for (const std::string& err : errors) {
    if (!err.empty()) {
      throw VbsError(VbsErrc::kDecodeFailed, "rtc: decode failed: " + err);
    }
  }

  // Finalize phase: single-writer into the configuration memory (frames of
  // adjacent macros share storage words).
  for (std::size_t i = 0; i < n; ++i) {
    write_entry_config(img, img.entries[i], payloads[i], fabric_, origin,
                       config_);
  }

  rec.decode_seconds = telem::seconds_since(t0);
  rec.threads_used = std::max(1, threads);
  for (const DecodeStats& s : stats) {
    rec.decode += s;
    total_stats_ += s;
  }
  span.arg("entries", n).arg("threads", rec.threads_used);
  telem::counter_add("rtc.decode.ops");
  telem::counter_add("rtc.decode.entries", static_cast<long long>(n));
  telem::histogram_record("rtc.decode.seconds", rec.decode_seconds);
}

void ReconfigController::clear_region(const Rect& r) {
  const int nraw = fabric_.spec().nraw_bits();
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      const std::size_t base =
          fabric_.macro_config_offset(fabric_.macro_index(x, y));
      for (int b = 0; b < nraw; ++b) {
        config_.set(base + static_cast<std::size_t>(b), false);
      }
    }
  }
}

void ReconfigController::write_decoded(const VbsImage& img,
                                       const std::vector<BitVector>& payloads,
                                       Point origin) {
  for (std::size_t i = 0; i < img.entries.size(); ++i) {
    write_entry_config(img, img.entries[i], payloads[i], fabric_, origin,
                       config_);
  }
}

void ReconfigController::check_arch(const VbsImage& img) const {
  if (img.spec.chan_width != fabric_.spec().chan_width ||
      img.spec.lut_k != fabric_.spec().lut_k ||
      img.spec.sb_pattern != fabric_.spec().sb_pattern) {
    // Typed (not logic_error): a stream encoded for another architecture
    // is hostile input a tenant can submit, not a programming error.
    throw VbsError(VbsErrc::kArchMismatch, "rtc: task architecture mismatch");
  }
}

void ReconfigController::check_payloads(
    const VbsImage& img, const std::vector<BitVector>& payloads) const {
  if (payloads.size() != img.entries.size()) {
    throw std::logic_error("rtc: payload count does not match entries");
  }
  // Every decoded payload (and every raw fallback) is exactly the region's
  // c^2 * (Nraw - NLB) routing bits; anything else would read or write out
  // of bounds in write_entry_config.
  const std::size_t want = static_cast<std::size_t>(img.cluster) *
                           static_cast<std::size_t>(img.cluster) *
                           static_cast<std::size_t>(img.spec.nroute_bits());
  for (const BitVector& p : payloads) {
    if (p.size() != want) {
      throw std::logic_error("rtc: payload size mismatch");
    }
  }
}

TaskId ReconfigController::load_decoded(const VbsImage& img,
                                        const std::vector<BitVector>& payloads,
                                        std::size_t stream_bits, Point origin,
                                        const DecodeStats& decode,
                                        double decode_seconds,
                                        int threads_used) {
  check_arch(img);
  check_payloads(img, payloads);
  if (fault_plan_ != nullptr && fault_plan_->alloc_fails(alloc_seq_++)) {
    // Before occupy: an injected allocation failure leaves the allocator
    // and the configuration memory untouched, like a real transient one.
    throw VbsError(VbsErrc::kFaultInjected, "rtc: injected allocation fault");
  }
  const Rect rect{origin.x, origin.y, img.task_w, img.task_h};
  alloc_.occupy(rect);  // throws if not free / out of bounds

  LoadedTask task;
  task.rec.id = next_id_++;
  task.rec.rect = rect;
  task.rec.stream_bits = stream_bits;
  task.rec.decode = decode;
  task.rec.decode_seconds = decode_seconds;
  task.rec.threads_used = threads_used;
  try {
    write_decoded(img, payloads, origin);
  } catch (...) {
    alloc_.release(rect);
    throw;
  }
  total_stats_ += decode;
  task.image = img;
  const TaskId id = task.rec.id;
  tasks_.emplace(id, std::move(task));
  return id;
}

void ReconfigController::relocate_decoded(
    TaskId id, Point new_origin, const std::vector<BitVector>& payloads) {
  LoadedTask& task = lookup(id);
  check_payloads(task.image, payloads);
  const Rect old_rect = task.rec.rect;
  const Rect new_rect{new_origin.x, new_origin.y, old_rect.w, old_rect.h};
  if (new_rect == old_rect) return;
  // Same constraint as relocate: no shadow configuration plane, so the new
  // region may not overlap the old one.
  alloc_.occupy(new_rect);
  try {
    write_decoded(task.image, payloads, new_origin);
  } catch (...) {
    alloc_.release(new_rect);
    throw;
  }
  clear_region(old_rect);
  alloc_.release(old_rect);
  task.rec.rect = new_rect;
}

TaskId ReconfigController::load(const BitVector& vbs_stream, int threads) {
  const VbsImage img = deserialize_vbs(vbs_stream);
  const auto slot = alloc_.find_free(img.task_w, img.task_h);
  if (!slot) return kNoTask;
  return load_at(vbs_stream, *slot, threads);
}

TaskId ReconfigController::load_at(const BitVector& vbs_stream, Point origin,
                                   int threads) {
  VbsImage img = deserialize_vbs(vbs_stream);
  check_arch(img);
  const Rect rect{origin.x, origin.y, img.task_w, img.task_h};
  alloc_.occupy(rect);  // throws if not free / out of bounds

  LoadedTask task;
  task.rec.id = next_id_++;
  task.rec.rect = rect;
  task.rec.stream_bits = vbs_stream.size();
  try {
    decode_into(img, origin, threads, task.rec);
  } catch (...) {
    alloc_.release(rect);
    throw;
  }
  task.image = std::move(img);
  const TaskId id = task.rec.id;
  tasks_.emplace(id, std::move(task));
  return id;
}

void ReconfigController::unload(TaskId id) {
  LoadedTask& task = lookup(id);
  clear_region(task.rec.rect);
  alloc_.release(task.rec.rect);
  tasks_.erase(id);
}

void ReconfigController::relocate(TaskId id, Point new_origin, int threads) {
  LoadedTask& task = lookup(id);
  const Rect old_rect = task.rec.rect;
  const Rect new_rect{new_origin.x, new_origin.y, old_rect.w, old_rect.h};
  if (new_rect == old_rect) return;
  // The new region must be free; a task may not overlap itself mid-move
  // (the controller has no shadow configuration plane).
  alloc_.occupy(new_rect);
  decode_into(task.image, new_origin, threads, task.rec);
  clear_region(old_rect);
  alloc_.release(old_rect);
  task.rec.rect = new_rect;
}

void ReconfigController::defragment(int threads) {
  // Greedy compaction: tasks in increasing current-origin order are moved
  // to the first free slot, which is never further from the origin.
  std::vector<TaskId> ids = task_ids();
  std::sort(ids.begin(), ids.end(), [&](TaskId a, TaskId b) {
    const Rect& ra = record(a).rect;
    const Rect& rb = record(b).rect;
    if (ra.y != rb.y) return ra.y < rb.y;
    return ra.x < rb.x;
  });
  for (const TaskId id : ids) {
    const Rect r = record(id).rect;
    // Temporarily free our own tiles so the search can slide us leftward
    // over them; a found slot must not overlap the old region (no shadow
    // plane), so re-check before moving.
    alloc_.release(r);
    const auto slot = alloc_.find_free(r.w, r.h);
    alloc_.occupy(r);
    if (!slot) continue;
    const Rect target{slot->x, slot->y, r.w, r.h};
    if (target == r || target.overlaps(r)) continue;
    if ((target.y > r.y) || (target.y == r.y && target.x >= r.x)) continue;
    relocate(id, {target.x, target.y}, threads);
  }
}

void ReconfigController::restore_config_memory(const BitVector& config) {
  if (config.size() != config_.size()) {
    throw std::logic_error("restore_config_memory: size mismatch");
  }
  config_ = config;
}

void ReconfigController::restore_task(const TaskRecord& rec, VbsImage image) {
  if (tasks_.count(rec.id) != 0) {
    throw std::logic_error("restore_task: duplicate task id");
  }
  alloc_.occupy(rec.rect);  // throws std::logic_error if unavailable
  tasks_[rec.id] = LoadedTask{rec, std::move(image)};
}

}  // namespace vbs
