// 2D placement allocator for the run-time controller: tracks which tiles of
// the reconfigurable fabric are owned by loaded tasks and finds free
// rectangles for incoming ones (first fit, row-major scan with column
// skipping).
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.h"

namespace vbs {

class RectAllocator {
 public:
  RectAllocator(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// First-fit origin for a w x h task, or nullopt if none exists.
  std::optional<Point> find_free(int w, int h) const;

  /// Marks a rectangle occupied. Throws std::logic_error if any tile is
  /// already taken or the rectangle exceeds the fabric.
  void occupy(const Rect& r);

  /// Releases a rectangle. Throws std::logic_error on tiles not occupied.
  void release(const Rect& r);

  bool is_free(const Rect& r) const;

  /// Occupied fraction of the fabric, in [0,1].
  double occupancy() const;

  int occupied_tiles() const { return occupied_count_; }

 private:
  bool tile(int x, int y) const {
    return grid_[static_cast<std::size_t>(y) * width_ + x];
  }

  int width_;
  int height_;
  std::vector<char> grid_;
  int occupied_count_ = 0;
};

}  // namespace vbs
