// 2D placement allocator for the run-time controller: tracks which tiles of
// the reconfigurable fabric are owned by loaded tasks and finds free
// rectangles for incoming ones.
//
// Occupancy is mirrored in a summed-area table so rectangle probes
// (`is_free`, `occupied_in`) are O(1) regardless of the rectangle size;
// placement policies (rtc/service/placement_policy.h) scan many candidate
// origins per request and rely on that. The table is rebuilt on
// occupy/release (O(W*H)), which is far rarer than probing.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.h"

namespace vbs {

class RectAllocator {
 public:
  RectAllocator(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// First-fit origin for a w x h task, or nullopt if none exists. This is
  /// the row-major scan placement policies build on; richer policies live
  /// in rtc/service/placement_policy.h.
  std::optional<Point> find_free(int w, int h) const;

  /// Marks a rectangle occupied. Throws std::logic_error if any tile is
  /// already taken or the rectangle exceeds the fabric.
  void occupy(const Rect& r);

  /// Releases a rectangle. Throws std::logic_error on tiles not occupied.
  void release(const Rect& r);

  bool is_free(const Rect& r) const;

  /// Number of occupied tiles inside `r` (clipped to the fabric), O(1).
  int occupied_in(const Rect& r) const;

  /// Whether one tile is occupied; (x, y) must be inside the fabric.
  bool occupied(int x, int y) const { return tile(x, y); }

  /// Occupied fraction of the fabric, in [0,1].
  double occupancy() const;

  int occupied_tiles() const { return occupied_count_; }

  /// Area of the largest axis-aligned free rectangle (0 when full).
  /// O(W*H), histogram-stack sweep; external-fragmentation metrics compare
  /// it against the total free area.
  int largest_free_rect_area() const;

 private:
  bool tile(int x, int y) const {
    return grid_[static_cast<std::size_t>(y) * width_ + x];
  }
  /// Occupied tiles in [0, x) x [0, y), from the summed-area table.
  int prefix(int x, int y) const {
    return sat_[static_cast<std::size_t>(y) * (width_ + 1) + x];
  }
  void rebuild_sat();

  int width_;
  int height_;
  std::vector<char> grid_;
  /// (width+1) x (height+1) summed-area table over grid_.
  std::vector<int> sat_;
  int occupied_count_ = 0;
};

}  // namespace vbs
