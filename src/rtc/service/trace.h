// Reconfiguration traces: the online-workload input of the service layer.
//
// A trace is a deterministic sequence of load / unload / relocate events
// against one fabric, each stamped with an arrival tick. Task payloads are
// referenced by *kind* — a (n_lut, grid, seed, cluster) recipe the replayer
// turns into a real VBS via the offline flow — so traces stay tiny and
// self-describing. Unload/relocate events reference the index of an
// earlier load event, not a task id: ids are assigned at replay time.
//
// The generator produces six arrival patterns (tools/rtcgen exposes it on
// the command line; bench/rtc_bench.cpp replays the bundled suite):
//   steady       uniform arrivals, moderate lifetimes
//   bursty       on/off arrival bursts that spike queue depth
//   diurnal      sinusoidal arrival rate over the trace (a day of traffic)
//   churn        short lifetimes, high load/unload turnover
//   flash_crowd  adversarial: tenant 1 floods one hot content in a narrow
//                window at ~5x the base rate over tenant 0's steady work
//   unique_flood adversarial: tenant 1 streams never-repeating tiny tasks
//                (every load a fresh kind), defeating the stream cache
//
// Text format (`vbs.rtc_trace.v1`, one record per line, '#' comments):
//   trace <name>
//   fabric <w> <h>
//   kind <name> <n_lut> <grid> <seed> <cluster>
//   ev <tick> load <kind_index> [tenant]
//   ev <tick> unload <load_event_index> [tenant]
//   ev <tick> relocate <load_event_index> [tenant]
// The trailing tenant id is optional and omitted when 0. Parsing is
// strict — unknown records, trailing tokens, out-of-range fields,
// dangling references and non-monotone ticks all raise a TraceError
// carrying the offending line number.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace vbs {

/// Malformed trace text: VbsErrc::kBadTrace plus the 1-based line number
/// of the offending record ("trace line N: ...").
class TraceError : public VbsError {
 public:
  TraceError(int line, const std::string& what)
      : VbsError(VbsErrc::kBadTrace,
                 "trace line " + std::to_string(line) + ": " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Recipe for one task payload: a synthetic netlist of `n_lut` LUTs placed
/// and routed on a grid x grid fabric, encoded at `cluster`.
struct TraceTaskKind {
  std::string name;
  int n_lut = 0;
  int grid = 0;
  std::uint64_t seed = 0;
  int cluster = 1;

  friend bool operator==(const TraceTaskKind&, const TraceTaskKind&) = default;
};

struct TraceEvent {
  enum class Kind { kLoad, kUnload, kRelocate };
  Kind kind = Kind::kLoad;
  int tick = 0;
  int task_kind = -1;  ///< kLoad: index into Trace::kinds
  int ref = -1;        ///< kUnload/kRelocate: index of the load event
  int tenant = 0;      ///< submitting tenant (QoS identity at replay)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

struct Trace {
  std::string name;
  int fabric_w = 0;
  int fabric_h = 0;
  std::vector<TraceTaskKind> kinds;
  std::vector<TraceEvent> events;

  friend bool operator==(const Trace&, const Trace&) = default;
};

enum class ArrivalPattern {
  kSteady,
  kBursty,
  kDiurnal,
  kChurn,
  kFlashCrowd,   ///< adversarial: one-content flood in a narrow window
  kUniqueFlood,  ///< adversarial: cache-busting never-repeating contents
};

const char* to_string(ArrivalPattern p);
/// Throws std::invalid_argument on an unknown name.
ArrivalPattern arrival_pattern_from_string(const std::string& name);

struct TraceGenOptions {
  ArrivalPattern pattern = ArrivalPattern::kSteady;
  int events = 160;    ///< total events to generate (upper bound)
  int ticks = 64;      ///< arrival-time resolution
  std::uint64_t seed = 1;
  int fabric_w = 16;
  int fabric_h = 12;
  /// Task-kind library size; kinds cycle through small footprints so
  /// repeated loads of the same content exercise the stream cache.
  int kinds = 6;
  /// Probability that a touch of a live task relocates instead of staying.
  double relocate_prob = 0.05;
};

/// Deterministic in the options; the same options always yield the same
/// trace.
Trace generate_trace(const TraceGenOptions& opts);

std::string trace_to_string(const Trace& trace);
/// Parses the text format; throws TraceError (with the offending line
/// number) on malformed input.
Trace trace_from_string(const std::string& text);

void write_trace_file(const std::string& path, const Trace& trace);
Trace read_trace_file(const std::string& path);

}  // namespace vbs
