#include "rtc/service/trace.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace vbs {

const char* to_string(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kSteady: return "steady";
    case ArrivalPattern::kBursty: return "bursty";
    case ArrivalPattern::kDiurnal: return "diurnal";
    case ArrivalPattern::kChurn: return "churn";
    case ArrivalPattern::kFlashCrowd: return "flash_crowd";
    case ArrivalPattern::kUniqueFlood: return "unique_flood";
  }
  return "?";
}

ArrivalPattern arrival_pattern_from_string(const std::string& name) {
  if (name == "steady") return ArrivalPattern::kSteady;
  if (name == "bursty") return ArrivalPattern::kBursty;
  if (name == "diurnal") return ArrivalPattern::kDiurnal;
  if (name == "churn") return ArrivalPattern::kChurn;
  if (name == "flash_crowd") return ArrivalPattern::kFlashCrowd;
  if (name == "unique_flood") return ArrivalPattern::kUniqueFlood;
  throw std::invalid_argument("unknown arrival pattern: " + name);
}

namespace {

/// Expected arrivals at `tick`, shaped by the pattern.
double arrival_rate(ArrivalPattern p, int tick, int ticks, double base) {
  const double phase = static_cast<double>(tick) / ticks;
  switch (p) {
    case ArrivalPattern::kSteady:
      return base;
    case ArrivalPattern::kBursty:
      // Four bursts per trace: rate spikes 4x inside a burst window,
      // near-zero between them.
      return std::fmod(phase * 4.0, 1.0) < 0.3 ? base * 4.0 : base * 0.15;
    case ArrivalPattern::kDiurnal:
      // One "day": sinusoidal load with a quiet night.
      return base * (1.0 + std::sin(2.0 * 3.14159265358979 * phase)) * 1.0;
    case ArrivalPattern::kChurn:
      return base * 1.5;
    case ArrivalPattern::kFlashCrowd:
    case ArrivalPattern::kUniqueFlood:
      return base;  // adversarial patterns have their own generator
  }
  return base;
}

/// Per-tick probability that a live task departs.
double departure_prob(ArrivalPattern p) {
  switch (p) {
    case ArrivalPattern::kSteady: return 0.10;
    case ArrivalPattern::kBursty: return 0.12;
    case ArrivalPattern::kDiurnal: return 0.10;
    case ArrivalPattern::kChurn: return 0.45;  // short-lived tasks
    case ArrivalPattern::kFlashCrowd:
    case ArrivalPattern::kUniqueFlood: return 0.15;  // background tenant
  }
  return 0.1;
}

/// Adversarial two-tenant traces: tenant 0 runs a steady mixed workload
/// from the normal kind library; tenant 1 is the attacker. flash_crowd
/// hammers one hot content at ~5x the base rate inside a narrow window
/// (phases [0.4, 0.6)); unique_flood streams never-repeating tiny kinds at
/// ~4x all along, so every adversary load is a cold cache-busting
/// decode. Replayed with a queue limit and priorities, these are the
/// overload legs of bench/rtc_bench.cpp.
Trace generate_adversarial_trace(const TraceGenOptions& opts) {
  Trace t;
  t.name = to_string(opts.pattern);
  t.fabric_w = opts.fabric_w;
  t.fabric_h = opts.fabric_h;
  for (int k = 0; k < opts.kinds; ++k) {
    TraceTaskKind kind;
    const int grid = 3 + k % 4;
    kind.grid = grid;
    kind.n_lut = grid * grid - grid + 1;
    kind.seed = 1000 + static_cast<std::uint64_t>(k);
    kind.cluster = k % 2 == 0 ? 1 : 2;
    kind.name = std::string(to_string(opts.pattern)) + "_k" +
                std::to_string(k) + "_" + std::to_string(grid) + "x" +
                std::to_string(grid);
    t.kinds.push_back(std::move(kind));
  }

  Rng rng(opts.seed ^ (static_cast<std::uint64_t>(opts.pattern) << 32));
  const double base =
      static_cast<double>(opts.events) / (2.0 * opts.ticks);
  const bool flash = opts.pattern == ArrivalPattern::kFlashCrowd;

  std::vector<int> live;  ///< background load events still loaded
  int uniq = 0;
  for (int tick = 0;
       tick < opts.ticks && static_cast<int>(t.events.size()) < opts.events;
       ++tick) {
    const double phase = static_cast<double>(tick) / opts.ticks;
    // Background tenant 0: departures/relocations, then steady arrivals.
    const double dep = departure_prob(opts.pattern);
    for (std::size_t i = 0;
         i < live.size() && static_cast<int>(t.events.size()) < opts.events;) {
      if (rng.next_bool(dep)) {
        t.events.push_back({TraceEvent::Kind::kUnload, tick, -1, live[i], 0});
        live[i] = live.back();
        live.pop_back();
        continue;
      }
      if (rng.next_bool(opts.relocate_prob)) {
        t.events.push_back(
            {TraceEvent::Kind::kRelocate, tick, -1, live[i], 0});
      }
      ++i;
    }
    const double brate = base * 0.8;
    int arrivals = static_cast<int>(brate);
    if (rng.next_bool(brate - arrivals)) ++arrivals;
    for (int a = 0;
         a < arrivals && static_cast<int>(t.events.size()) < opts.events;
         ++a) {
      const int kind = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(opts.kinds)));
      live.push_back(static_cast<int>(t.events.size()));
      t.events.push_back({TraceEvent::Kind::kLoad, tick, kind, -1, 0});
    }
    // Adversary tenant 1.
    const double arate =
        flash ? (phase >= 0.4 && phase < 0.6 ? base * 5.0 : 0.0)
              : base * 4.0;
    int flood = static_cast<int>(arate);
    if (arate > 0.0 && rng.next_bool(arate - flood)) ++flood;
    for (int a = 0;
         a < flood && static_cast<int>(t.events.size()) < opts.events; ++a) {
      int kind = 0;  // flash crowd: everyone wants the same hot content
      if (!flash) {
        // unique_flood: a brand-new tiny kind per load, never repeated.
        TraceTaskKind k;
        k.grid = 3;
        k.n_lut = 6 + uniq % 2;
        k.seed = 50000 + static_cast<std::uint64_t>(uniq);
        k.cluster = 1;
        k.name = "uf_u" + std::to_string(uniq);
        ++uniq;
        kind = static_cast<int>(t.kinds.size());
        t.kinds.push_back(std::move(k));
      }
      t.events.push_back({TraceEvent::Kind::kLoad, tick, kind, -1, 1});
    }
  }
  return t;
}

}  // namespace

Trace generate_trace(const TraceGenOptions& opts) {
  if (opts.events < 1 || opts.ticks < 1 || opts.kinds < 1) {
    throw std::invalid_argument("trace generator: bad options");
  }
  if (opts.pattern == ArrivalPattern::kFlashCrowd ||
      opts.pattern == ArrivalPattern::kUniqueFlood) {
    return generate_adversarial_trace(opts);
  }
  Trace t;
  t.name = to_string(opts.pattern);
  t.fabric_w = opts.fabric_w;
  t.fabric_h = opts.fabric_h;

  // Small footprints (3..6 tiles square) so several tenants coexist; the
  // kind library cycles sizes and seeds, deliberately small so the same
  // content recurs and the decoded-stream cache has something to do.
  for (int k = 0; k < opts.kinds; ++k) {
    TraceTaskKind kind;
    const int grid = 3 + k % 4;
    kind.grid = grid;
    kind.n_lut = grid * grid - grid + 1;
    kind.seed = 1000 + static_cast<std::uint64_t>(k);
    kind.cluster = k % 2 == 0 ? 1 : 2;
    kind.name = std::string(to_string(opts.pattern)) + "_k" +
                std::to_string(k) + "_" + std::to_string(grid) + "x" +
                std::to_string(grid);
    t.kinds.push_back(std::move(kind));
  }

  Rng rng(opts.seed ^ (static_cast<std::uint64_t>(opts.pattern) << 32));
  // Base rate calibrated so ~opts.events events fit in opts.ticks ticks
  // (arrivals plus the departures/relocates they trigger, roughly 2x).
  const double base =
      static_cast<double>(opts.events) / (2.0 * opts.ticks);

  std::vector<int> live;  ///< indices of load events still loaded
  for (int tick = 0;
       tick < opts.ticks && static_cast<int>(t.events.size()) < opts.events;
       ++tick) {
    // Departures and relocations of live tasks first (frees room for the
    // tick's arrivals).
    const double dep = departure_prob(opts.pattern);
    for (std::size_t i = 0;
         i < live.size() && static_cast<int>(t.events.size()) < opts.events;) {
      if (rng.next_bool(dep)) {
        t.events.push_back(
            {TraceEvent::Kind::kUnload, tick, -1, live[i]});
        live[i] = live.back();
        live.pop_back();
        continue;
      }
      if (rng.next_bool(opts.relocate_prob)) {
        t.events.push_back(
            {TraceEvent::Kind::kRelocate, tick, -1, live[i]});
      }
      ++i;
    }
    // Arrivals: Bernoulli-thinned rate, at most a handful per tick.
    const double rate = arrival_rate(opts.pattern, tick, opts.ticks, base);
    int arrivals = static_cast<int>(rate);
    if (rng.next_bool(rate - arrivals)) ++arrivals;
    for (int a = 0;
         a < arrivals && static_cast<int>(t.events.size()) < opts.events;
         ++a) {
      const int kind = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(opts.kinds)));
      live.push_back(static_cast<int>(t.events.size()));
      t.events.push_back({TraceEvent::Kind::kLoad, tick, kind, -1});
    }
  }
  return t;
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  out << "# vbs.rtc_trace.v1\n";
  out << "trace " << trace.name << "\n";
  out << "fabric " << trace.fabric_w << " " << trace.fabric_h << "\n";
  for (const TraceTaskKind& k : trace.kinds) {
    out << "kind " << k.name << " " << k.n_lut << " " << k.grid << " "
        << k.seed << " " << k.cluster << "\n";
  }
  for (const TraceEvent& e : trace.events) {
    out << "ev " << e.tick << " ";
    switch (e.kind) {
      case TraceEvent::Kind::kLoad:
        out << "load " << e.task_kind;
        break;
      case TraceEvent::Kind::kUnload:
        out << "unload " << e.ref;
        break;
      case TraceEvent::Kind::kRelocate:
        out << "relocate " << e.ref;
        break;
    }
    if (e.tenant != 0) out << " " << e.tenant;
    out << "\n";
  }
  return out.str();
}

Trace trace_from_string(const std::string& text) {
  Trace t;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool have_fabric = false;
  int last_tick = 0;
  auto fail = [&](const std::string& what) { throw TraceError(lineno, what); };
  // Strict by design: a trace is input from outside the trust boundary
  // (tools read arbitrary files), so every record must parse completely,
  // every reference must resolve, and every field must be in range.
  auto reject_trailing = [&](std::istringstream& ls) {
    std::string extra;
    if (ls >> extra) fail("trailing tokens: " + extra);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag)) continue;  // blank / comment line
    if (tag == "trace") {
      if (!(ls >> t.name)) fail("trace needs a name");
      reject_trailing(ls);
    } else if (tag == "fabric") {
      if (!(ls >> t.fabric_w >> t.fabric_h)) fail("fabric needs w h");
      if (t.fabric_w < 1 || t.fabric_h < 1) fail("fabric dims must be >= 1");
      reject_trailing(ls);
      have_fabric = true;
    } else if (tag == "kind") {
      TraceTaskKind k;
      if (!(ls >> k.name >> k.n_lut >> k.grid >> k.seed >> k.cluster)) {
        fail("kind needs name n_lut grid seed cluster");
      }
      if (k.n_lut < 1 || k.grid < 1 || k.cluster < 1) {
        fail("kind fields must be >= 1");
      }
      reject_trailing(ls);
      t.kinds.push_back(std::move(k));
    } else if (tag == "ev") {
      TraceEvent e;
      std::string op;
      if (!(ls >> e.tick >> op)) fail("ev needs tick and op");
      if (e.tick < 0) fail("tick must be >= 0");
      if (e.tick < last_tick) fail("ticks must be non-decreasing");
      int arg = -1;
      if (!(ls >> arg)) fail("ev " + op + " needs an argument");
      if (op == "load") {
        e.kind = TraceEvent::Kind::kLoad;
        if (arg < 0 || arg >= static_cast<int>(t.kinds.size())) {
          fail("load kind index out of range");
        }
        e.task_kind = arg;
      } else if (op == "unload" || op == "relocate") {
        e.kind = op == "unload" ? TraceEvent::Kind::kUnload
                                : TraceEvent::Kind::kRelocate;
        if (arg < 0 || arg >= static_cast<int>(t.events.size()) ||
            t.events[static_cast<std::size_t>(arg)].kind !=
                TraceEvent::Kind::kLoad) {
          fail(op + " must reference an earlier load event");
        }
        e.ref = arg;
      } else {
        fail("unknown event op: " + op);
      }
      if (ls >> e.tenant) {
        if (e.tenant < 0) fail("tenant must be >= 0");
      } else {
        e.tenant = 0;
        ls.clear();
      }
      reject_trailing(ls);
      last_tick = e.tick;
      t.events.push_back(e);
    } else {
      fail("unknown record: " + tag);
    }
  }
  if (!have_fabric) {
    throw TraceError(lineno, "missing fabric record");
  }
  return t;
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << trace_to_string(trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return trace_from_string(buf.str());
}

}  // namespace vbs
