#include "rtc/service/placement_policy.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace vbs {

namespace {

class FirstFitPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "first_fit";
    return n;
  }
  std::optional<Point> place(const RectAllocator& alloc, int w,
                             int h) const override {
    return alloc.find_free(w, h);
  }
};

/// Contact score of a candidate rectangle: perimeter cells that touch an
/// occupied tile or the fabric edge. Maximizing it packs tasks tightly and
/// leaves the remaining free space in large contiguous blocks.
int contact_score(const RectAllocator& alloc, const Rect& r) {
  int score = 0;
  auto edge = [&](int x, int y) {
    if (x < 0 || y < 0 || x >= alloc.width() || y >= alloc.height()) return 1;
    return alloc.occupied(x, y) ? 1 : 0;
  };
  for (int x = r.x; x < r.x + r.w; ++x) {
    score += edge(x, r.y - 1) + edge(x, r.y + r.h);
  }
  for (int y = r.y; y < r.y + r.h; ++y) {
    score += edge(r.x - 1, y) + edge(r.x + r.w, y);
  }
  return score;
}

class BestFitPolicy : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "best_fit";
    return n;
  }
  std::optional<Point> place(const RectAllocator& alloc, int w,
                             int h) const override {
    std::optional<Point> best;
    int best_score = -1;
    for (int y = 0; y + h <= alloc.height(); ++y) {
      for (int x = 0; x + w <= alloc.width(); ++x) {
        const Rect r{x, y, w, h};
        if (alloc.occupied_in(r) != 0) continue;
        const int score = contact_score(alloc, r);
        if (score > best_score) {
          best_score = score;
          best = Point{x, y};
        }
      }
    }
    return best;
  }
};

class SkylinePolicy : public PlacementPolicy {
 public:
  const std::string& name() const override {
    static const std::string n = "skyline";
    return n;
  }
  std::optional<Point> place(const RectAllocator& alloc, int w,
                             int h) const override {
    // Classic skyline packing: every column keeps only its highest
    // occupied tile, and tasks rest on top of that profile — holes buried
    // below the skyline are deliberately invisible (the trade-off that
    // makes skyline allocators O(width) in hardware). Candidates are
    // scored by lowest resulting top edge, then least buried free area,
    // then leftmost x.
    std::vector<int> sky(static_cast<std::size_t>(alloc.width()), 0);
    for (int x = 0; x < alloc.width(); ++x) {
      for (int y = alloc.height() - 1; y >= 0; --y) {
        if (alloc.occupied(x, y)) {
          sky[static_cast<std::size_t>(x)] = y + 1;
          break;
        }
      }
    }
    std::optional<Point> best;
    int best_top = 0, best_waste = 0;
    for (int x = 0; x + w <= alloc.width(); ++x) {
      int y = 0, waste = 0;
      for (int c = x; c < x + w; ++c) y = std::max(y, sky[static_cast<std::size_t>(c)]);
      if (y + h > alloc.height()) continue;
      for (int c = x; c < x + w; ++c) {
        waste += y - sky[static_cast<std::size_t>(c)];
      }
      if (!best || y + h < best_top ||
          (y + h == best_top && waste < best_waste)) {
        best = Point{x, y};
        best_top = y + h;
        best_waste = waste;
      }
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name) {
  if (name == "first_fit") return std::make_unique<FirstFitPolicy>();
  if (name == "best_fit") return std::make_unique<BestFitPolicy>();
  if (name == "skyline") return std::make_unique<SkylinePolicy>();
  throw std::invalid_argument("unknown placement policy: " + name);
}

const std::vector<std::string>& placement_policy_names() {
  static const std::vector<std::string> names = {"first_fit", "best_fit",
                                                 "skyline"};
  return names;
}

std::optional<EvictionPlan> plan_eviction(
    const RectAllocator& alloc, const std::vector<VictimCandidate>& tasks,
    int w, int h) {
  if (w < 1 || h < 1 || w > alloc.width() || h > alloc.height()) {
    return std::nullopt;
  }
  // Cost of clearing a candidate origin: (evicted area, most-recent victim
  // stamp, victim count). Lower is better; the row-major scan breaks ties.
  std::optional<EvictionPlan> best;
  std::tuple<int, std::uint64_t, std::size_t> best_cost{};
  std::vector<int> victims;
  for (int y = 0; y + h <= alloc.height(); ++y) {
    for (int x = 0; x + w <= alloc.width(); ++x) {
      const Rect r{x, y, w, h};
      victims.clear();
      int area = 0;
      std::uint64_t newest = 0;
      for (const VictimCandidate& t : tasks) {
        if (!t.rect.overlaps(r)) continue;
        victims.push_back(t.task);
        area += t.rect.area();
        newest = std::max(newest, t.last_use);
      }
      const std::tuple<int, std::uint64_t, std::size_t> cost{area, newest,
                                                             victims.size()};
      if (!best || cost < best_cost) {
        best_cost = cost;
        best = EvictionPlan{{x, y}, victims};
      }
    }
  }
  if (best) {
    // Evict in ascending last-use order (oldest first) for a stable,
    // meaningful eviction log; task id breaks exact ties.
    std::vector<VictimCandidate> chosen;
    for (const int id : best->victims) {
      for (const VictimCandidate& t : tasks) {
        if (t.task == id) chosen.push_back(t);
      }
    }
    std::sort(chosen.begin(), chosen.end(),
              [](const VictimCandidate& a, const VictimCandidate& b) {
                if (a.last_use != b.last_use) return a.last_use < b.last_use;
                return a.task < b.task;
              });
    best->victims.clear();
    for (const VictimCandidate& t : chosen) best->victims.push_back(t.task);
  }
  return best;
}

}  // namespace vbs
