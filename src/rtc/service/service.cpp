#include "rtc/service/service.h"

#include <algorithm>
#include <stdexcept>

namespace vbs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Fault-plan sequence key of one request attempt: id and attempt are the
/// logical identity of a processing step, so the same plan rolls the same
/// faults at any thread count.
std::uint64_t attempt_key(RequestId id, int attempt) {
  return (static_cast<std::uint64_t>(id) << 8) |
         (static_cast<std::uint64_t>(attempt) & 0xff);
}

}  // namespace

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kDone:
      return "done";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kDeadline:
      return "deadline";
  }
  return "?";
}

ReconfigService::ReconfigService(const ArchSpec& spec, int width, int height,
                                 ServiceOptions opts)
    : rtc_(spec, width, height),
      opts_(std::move(opts)),
      policy_(make_placement_policy(opts_.policy)),
      cache_(opts_.cache_capacity_bits),
      pool_(std::max(1, opts_.threads)) {
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("service: max_batch must be >= 1");
  }
  if (opts_.retry_limit < 0 || opts_.retry_backoff_ticks < 0 ||
      opts_.deadline_ticks < 0) {
    throw std::invalid_argument(
        "service: retry_limit/retry_backoff_ticks/deadline_ticks must be "
        ">= 0");
  }
  // The plan lives in opts_, so the pointers stay valid for the service
  // lifetime; an all-zero plan never fires.
  rtc_.set_fault_plan(&opts_.faults);
  cache_.set_fault_plan(&opts_.faults);
}

ReconfigService::Request ReconfigService::make_request(RequestKind kind,
                                                       int tenant) {
  Request req;
  req.id = next_request_++;
  req.kind = kind;
  req.tenant = tenant;
  const auto it = tenant_priority_.find(tenant);
  req.priority = it == tenant_priority_.end() ? 0 : it->second;
  req.submitted_tick = now_ticks_;
  req.submitted = Clock::now();
  TenantStats& t = tenants_[tenant];
  t.priority = req.priority;
  ++t.submitted;
  return req;
}

void ReconfigService::shed_request(Request& req) {
  req.shed = true;
  ++stats_.shed;
  ++tenants_[req.tenant].shed;
}

void ReconfigService::admit_load(Request req) {
  if (opts_.queue_limit == 0 || live_loads_ < opts_.queue_limit) {
    queue_.push_back(std::move(req));
    ++live_loads_;
    return;
  }
  // Queue full. Shed the newest queued load of minimal priority — unless
  // even that one outranks (or ties) the arrival, in which case the
  // arrival itself is shed. `<=` keeps the latest minimum, so the oldest
  // work of a tenant survives its own flood.
  Request* victim = nullptr;
  for (Request& q : queue_) {
    if (q.kind != RequestKind::kLoad || q.shed) continue;
    if (victim == nullptr || q.priority <= victim->priority) victim = &q;
  }
  if (victim != nullptr && victim->priority < req.priority) {
    shed_request(*victim);
    --live_loads_;
    queue_.push_back(std::move(req));
    ++live_loads_;
  } else {
    shed_request(req);
    queue_.push_back(std::move(req));  // still owed a kShed result
  }
}

RequestId ReconfigService::submit_load(BitVector stream, int tenant) {
  Request req = make_request(RequestKind::kLoad, tenant);
  req.stream = std::move(stream);
  const RequestId id = req.id;
  admit_load(std::move(req));
  return id;
}

RequestId ReconfigService::submit_unload(RequestId load_request, int tenant) {
  Request req = make_request(RequestKind::kUnload, tenant);
  req.target = load_request;
  const RequestId id = req.id;
  queue_.push_back(std::move(req));
  return id;
}

RequestId ReconfigService::submit_relocate(RequestId load_request,
                                           int tenant) {
  Request req = make_request(RequestKind::kRelocate, tenant);
  req.target = load_request;
  const RequestId id = req.id;
  queue_.push_back(std::move(req));
  return id;
}

void ReconfigService::set_tenant_priority(int tenant, int priority) {
  tenant_priority_[tenant] = priority;
  tenants_[tenant].priority = priority;
}

TaskId ReconfigService::task_of(RequestId load_request) const {
  const auto it = task_of_request_.find(load_request);
  return it == task_of_request_.end() ? kNoTask : it->second;
}

RequestResult ReconfigService::make_result(const Request& req) const {
  RequestResult res;
  res.request = req.id;
  res.kind = req.kind;
  res.tenant = req.tenant;
  res.priority = req.priority;
  res.attempts = req.attempt;
  return res;
}

void ReconfigService::finish(const Request& req, RequestResult res,
                             std::vector<RequestResult>& out) {
  res.latency_ticks = now_ticks_ - req.submitted_tick;
  res.latency_seconds = seconds_between(req.submitted, Clock::now());
  TenantStats& t = tenants_[req.tenant];
  switch (res.status) {
    case RequestStatus::kDone:
      ++t.done;
      break;
    case RequestStatus::kRejected:
      ++t.rejected;
      break;
    case RequestStatus::kFailed:
      ++t.failed;
      break;
    case RequestStatus::kDeadline:
      ++t.deadline_misses;
      break;
    case RequestStatus::kShed:  // counted at shed time (admission)
    case RequestStatus::kQueued:
      break;
  }
  out.push_back(std::move(res));
}

bool ReconfigService::tick_and_check_deadline(const Request& req,
                                              std::vector<RequestResult>& out) {
  now_ticks_ = std::max(now_ticks_, req.not_before);
  const long long spike =
      opts_.faults.latency_spike_ticks(attempt_key(req.id, req.attempt));
  if (spike > 0) {
    now_ticks_ += spike;
    ++stats_.faults_injected;
    stats_.latency_spike_ticks += spike;
  }
  if (opts_.deadline_ticks > 0 &&
      now_ticks_ - req.submitted_tick > opts_.deadline_ticks) {
    RequestResult res = make_result(req);
    res.status = RequestStatus::kDeadline;
    res.code = VbsErrc::kDeadline;
    res.error = "deadline of " + std::to_string(opts_.deadline_ticks) +
                " ticks exceeded";
    ++stats_.deadline_misses;
    finish(req, std::move(res), out);
    return false;
  }
  ++now_ticks_;  // the one-tick service cost of actually processing it
  return true;
}

bool ReconfigService::schedule_retry(const Request& req) {
  if (req.attempt > opts_.retry_limit) return false;
  Request retry = req;
  retry.attempt = req.attempt + 1;
  const int shift = std::min(req.attempt - 1, 20);
  retry.not_before = now_ticks_ + (opts_.retry_backoff_ticks << shift);
  queue_.push_back(std::move(retry));
  ++stats_.retries;
  ++tenants_[req.tenant].retries;
  return true;
}

double ReconfigService::fragmentation() const {
  const RectAllocator& a = rtc_.allocator();
  const int free_tiles = a.width() * a.height() - a.occupied_tiles();
  if (free_tiles <= 0) return 0.0;
  return 1.0 - static_cast<double>(a.largest_free_rect_area()) / free_tiles;
}

std::vector<RequestResult> ReconfigService::drain() {
  std::vector<RequestResult> results;
  results.reserve(queue_.size());
  // Outer loop: retries requeue themselves, so one pass may spawn another.
  while (!queue_.empty()) {
    std::vector<Request> work;
    work.reserve(queue_.size());
    for (Request& r : queue_) work.push_back(std::move(r));
    queue_.clear();
    live_loads_ = 0;
    // Priority-ordered processing; stable, so equal priorities (the
    // default: everything 0) keep plain admission order.
    std::stable_sort(work.begin(), work.end(),
                     [](const Request& a, const Request& b) {
                       return a.priority > b.priority;
                     });

    const auto emit_shed = [&](const Request& r) {
      RequestResult res = make_result(r);
      res.status = RequestStatus::kShed;
      res.code = VbsErrc::kQueueFull;
      res.error = "shed at admission: queue limit " +
                  std::to_string(opts_.queue_limit);
      finish(r, std::move(res), results);
    };

    std::size_t i = 0;
    while (i < work.size()) {
      if (work[i].shed) {
        emit_shed(work[i]);
        ++i;
        continue;
      }
      if (work[i].kind == RequestKind::kLoad) {
        // Maximal run of consecutive live loads, capped at max_batch: one
        // parallel devirtualization batch. The cap only bounds memory;
        // batch boundaries depend on the (sorted) queue alone, never on
        // thread count.
        std::vector<Request*> batch;
        while (i < work.size() && work[i].kind == RequestKind::kLoad &&
               static_cast<int>(batch.size()) < opts_.max_batch) {
          if (work[i].shed) {
            emit_shed(work[i]);
          } else {
            batch.push_back(&work[i]);
          }
          ++i;
        }
        process_load_batch(batch, results);
      } else if (work[i].kind == RequestKind::kUnload) {
        process_unload(work[i], results);
        ++i;
      } else {
        process_relocate(work[i], results);
        ++i;
      }
    }
  }
  // One result per request id; ids are admission order.
  std::stable_sort(results.begin(), results.end(),
                   [](const RequestResult& a, const RequestResult& b) {
                     return a.request < b.request;
                   });
  return results;
}

std::optional<Point> ReconfigService::admit_placement(int w, int h,
                                                      RequestId cause,
                                                      RequestResult& res) {
  if (const auto slot = policy_->place(rtc_.allocator(), w, h)) return slot;
  if (!opts_.evict_to_fit) return std::nullopt;

  std::vector<VictimCandidate> candidates;
  candidates.reserve(task_info_.size());
  for (const auto& [id, info] : task_info_) {
    candidates.push_back({id, rtc_.record(id).rect, info.last_use});
  }
  const auto plan = plan_eviction(rtc_.allocator(), candidates, w, h);
  if (!plan) return std::nullopt;
  for (const TaskId victim : plan->victims) {
    const Rect r = rtc_.record(victim).rect;
    rtc_.unload(victim);
    forget_task(victim);
    eviction_log_.push_back(
        {static_cast<long long>(eviction_log_.size()), victim, r, cause});
    ++stats_.task_evictions;
    ++res.evicted_tasks;
  }
  return plan->origin;
}

void ReconfigService::forget_task(TaskId id) {
  const auto it = task_info_.find(id);
  if (it == task_info_.end()) return;
  task_of_request_.erase(it->second.origin_request);
  task_info_.erase(it);
}

void ReconfigService::process_load_batch(const std::vector<Request*>& batch,
                                         std::vector<RequestResult>& out) {
  // Per-request resolution: which decoded stream serves it, or why not.
  struct Pending {
    std::uint64_t hash = 0;
    std::shared_ptr<const DecodedStream> decoded;  ///< cache or batch dup
    int job = -1;          ///< fresh decode job index, -1 if cached/failed
    bool cache_hit = false;
    VbsErrc parse_code = VbsErrc::kNone;
    std::string parse_error;
  };
  /// One fresh devirtualization of a distinct stream.
  struct Job {
    std::shared_ptr<DecodedStream> decoded = std::make_shared<DecodedStream>();
    std::size_t entry_base = 0;  ///< offset into the flat item arrays
    double decode_seconds = 0.0;
    VbsErrc code = VbsErrc::kNone;
    std::string error;
  };
  std::vector<Pending> pending(batch.size());
  std::vector<Job> jobs;
  std::map<std::uint64_t, int> job_of_hash;

  // Admission-order resolution: cache lookups and batch deduplication are
  // serial, so LRU order and hit counters never depend on thread count.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = pending[i];
    p.hash = stream_content_hash(batch[i]->stream);
    if (auto cached = cache_.find(p.hash)) {
      p.decoded = std::move(cached);
      p.cache_hit = true;
      continue;
    }
    if (const auto dup = job_of_hash.find(p.hash); dup != job_of_hash.end()) {
      p.job = dup->second;
      p.cache_hit = true;  // decode skipped: the batch twin pays for it
      continue;
    }
    try {
      Job job;
      job.decoded->image = deserialize_vbs(batch[i]->stream);
      job.decoded->payloads.resize(job.decoded->image.entries.size());
      p.job = static_cast<int>(jobs.size());
      job_of_hash.emplace(p.hash, p.job);
      jobs.push_back(std::move(job));
    } catch (const VbsError& ex) {
      // A hostile stream fails this one request, typed; the batch goes on.
      p.parse_code = ex.code();
      p.parse_error = ex.what();
    } catch (const std::exception& ex) {
      p.parse_code = VbsErrc::kDecodeFailed;
      p.parse_error = ex.what();
    }
  }

  // Batched asynchronous devirtualization: entries of all jobs become one
  // flat work list on the pool. Decoding an entry is pure (stateless
  // across entries, position-independent), so any schedule produces the
  // same payloads; per-item stats are merged in item order below.
  struct Item {
    int job;
    std::size_t entry;
  };
  std::vector<Item> items;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].entry_base = items.size();
    for (std::size_t e = 0; e < jobs[j].decoded->image.entries.size(); ++e) {
      items.push_back({static_cast<int>(j), e});
    }
  }
  if (!items.empty()) {
    ++stats_.batches;
    std::vector<DecodeStats> item_stats(items.size());
    std::vector<double> item_seconds(items.size(), 0.0);
    std::vector<std::string> item_errors(items.size());
    std::vector<VbsErrc> item_codes(items.size(), VbsErrc::kNone);
    // Region models are shared per (rank, job): ranks only touch their own
    // row, and a Devirtualizer is reusable but not thread-safe.
    std::vector<std::vector<std::unique_ptr<RegionDecoderCache>>> decoders(
        static_cast<std::size_t>(pool_.size()));
    for (auto& row : decoders) row.resize(jobs.size());
    pool_.parallel_for(items.size(), [&](int rank, std::size_t idx) {
      const Item item = items[idx];
      const auto t0 = Clock::now();
      try {
        const VbsImage& img =
            jobs[static_cast<std::size_t>(item.job)].decoded->image;
        auto& slot =
            decoders[static_cast<std::size_t>(rank)]
                    [static_cast<std::size_t>(item.job)];
        if (!slot) {
          slot = std::make_unique<RegionDecoderCache>(
              img.spec, img.cluster, img.task_w, img.task_h);
        }
        const VbsEntry& e = img.entries[item.entry];
        if (!slot->decoder_for(e.cx, e.cy).decode_entry(
                e,
                jobs[static_cast<std::size_t>(item.job)]
                    .decoded->payloads[item.entry],
                &item_stats[idx])) {
          item_errors[idx] = "entry " + std::to_string(e.cx) + "," +
                             std::to_string(e.cy) + " failed to decode";
          item_codes[idx] = VbsErrc::kDecodeFailed;
        }
      } catch (const VbsError& ex) {
        item_errors[idx] = ex.what();
        item_codes[idx] = ex.code();
      } catch (const std::exception& ex) {
        item_errors[idx] = ex.what();
        item_codes[idx] = VbsErrc::kDecodeFailed;
      }
      item_seconds[idx] = seconds_between(t0, Clock::now());
    });
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      Job& job = jobs[static_cast<std::size_t>(items[idx].job)];
      job.decoded->decode += item_stats[idx];
      job.decode_seconds += item_seconds[idx];
      if (!item_errors[idx].empty() && job.error.empty()) {
        job.error = item_errors[idx];
        job.code = item_codes[idx];
      }
    }
    for (const Job& job : jobs) stats_.decode += job.decoded->decode;
  }

  // Commit strictly in processing order.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = *batch[i];
    Pending& p = pending[i];
    if (req.attempt == 1) ++stats_.loads;  // retries are not new requests
    // A request past its deadline is dropped here: any decode work it
    // caused above is wasted, exactly like an overloaded real service.
    if (!tick_and_check_deadline(req, out)) continue;
    RequestResult res = make_result(req);

    if (!p.parse_error.empty()) {
      res.status = RequestStatus::kFailed;
      res.code = p.parse_code;
      res.error = p.parse_error;
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }

    std::shared_ptr<const DecodedStream> decoded = p.decoded;
    double decode_seconds = 0.0;
    DecodeStats decode_cost;  // stays zero for warm loads
    VbsErrc code = VbsErrc::kNone;
    std::string error;
    if (!decoded && p.job >= 0) {
      Job& job = jobs[static_cast<std::size_t>(p.job)];
      if (job.error.empty()) {
        // Injected transient decode fault: only an attempt that actually
        // paid for devirtualization can lose it. Batch twins keep their
        // shared decode; the cache is NOT warmed by a faulted attempt.
        if (!p.cache_hit &&
            opts_.faults.decode_fails(attempt_key(req.id, req.attempt))) {
          ++stats_.faults_injected;
          if (schedule_retry(req)) continue;  // result owed by the retry
          res.status = RequestStatus::kFailed;
          res.code = VbsErrc::kFaultInjected;
          res.error = "injected decode fault (retries exhausted)";
          ++stats_.failed;
          finish(req, std::move(res), out);
          continue;
        }
        decoded = job.decoded;
        // The first committer of a fresh decode carries its cost; batch
        // twins of the same content count as warm.
        if (!p.cache_hit) {
          decode_seconds = job.decode_seconds;
          decode_cost = job.decoded->decode;
        }
        // A fresh decode warms the cache even if placement fails below: a
        // retry after departures should not pay for routing again.
        cache_.insert(p.hash, job.decoded);
      } else {
        code = job.code;
        error = job.error;
      }
    }

    if (!decoded) {
      res.status = RequestStatus::kFailed;
      res.code = code;
      res.error = error;
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }

    res.cache_hit = p.cache_hit;
    if (p.cache_hit) {
      ++stats_.warm_loads;
    } else {
      ++stats_.cold_loads;
    }
    const VbsImage& img = decoded->image;
    const auto slot = admit_placement(img.task_w, img.task_h, req.id, res);
    if (!slot) {
      res.status = RequestStatus::kRejected;
      res.code = VbsErrc::kNoPlacement;
      res.error = "no placement for " + std::to_string(img.task_w) + "x" +
                  std::to_string(img.task_h);
      ++stats_.rejected;
      finish(req, std::move(res), out);
      continue;
    }
    TaskId id = kNoTask;
    try {
      id = rtc_.load_decoded(img, decoded->payloads, req.stream.size(), *slot,
                             decode_cost, decode_seconds, pool_.size());
    } catch (const VbsError& ex) {
      if (ex.code() == VbsErrc::kFaultInjected) {
        // Injected transient allocation fault (the controller rolled back
        // before touching the allocator): back off and retry.
        ++stats_.faults_injected;
        if (schedule_retry(req)) continue;
        res.status = RequestStatus::kFailed;
        res.code = VbsErrc::kFaultInjected;
        res.error = "injected allocation fault (retries exhausted)";
      } else {
        // Hostile stream surviving parse (e.g. wrong architecture): a
        // typed per-request failure, never a drain teardown.
        res.status = RequestStatus::kFailed;
        res.code = ex.code();
        res.error = ex.what();
      }
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }
    task_of_request_[req.id] = id;
    task_info_[id] = {p.hash, ++use_seq_, req.id};
    res.status = RequestStatus::kDone;
    res.task = id;
    res.rect = rtc_.record(id).rect;
    res.decode_seconds = decode_seconds;
    finish(req, std::move(res), out);
  }
}

void ReconfigService::process_unload(const Request& req,
                                     std::vector<RequestResult>& out) {
  ++stats_.unloads;
  if (!tick_and_check_deadline(req, out)) return;
  RequestResult res = make_result(req);
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    // Already evicted (or the load never committed): an unload of a gone
    // task is not an error in a multi-tenant queue, just a no-op.
    res.status = RequestStatus::kRejected;
    res.code = VbsErrc::kNoPlacement;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
  } else {
    res.task = id;
    res.rect = rtc_.record(id).rect;
    rtc_.unload(id);
    forget_task(id);
    res.status = RequestStatus::kDone;
  }
  finish(req, std::move(res), out);
}

void ReconfigService::process_relocate(const Request& req,
                                       std::vector<RequestResult>& out) {
  ++stats_.relocates;
  if (!tick_and_check_deadline(req, out)) return;
  RequestResult res = make_result(req);
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    res.status = RequestStatus::kRejected;
    res.code = VbsErrc::kNoPlacement;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
    finish(req, std::move(res), out);
    return;
  }
  const Rect cur = rtc_.record(id).rect;
  res.task = id;
  res.rect = cur;
  // Destination by policy on the live occupancy (own tiles still marked, so
  // the choice can never overlap the task itself — the controller has no
  // shadow plane). No free slot means the relocation is a no-op.
  const auto slot = policy_->place(rtc_.allocator(), cur.w, cur.h);
  if (slot) {
    TaskInfo& info = task_info_.at(id);
    const auto t0 = Clock::now();
    try {
      if (const auto cached = cache_.find(info.content_hash)) {
        rtc_.relocate_decoded(id, *slot, cached->payloads);
        ++stats_.relocates_cached;
      } else {
        // Cache miss (evicted or capacity 0): re-decode the retained image
        // once — serially, a relocation is a single stream — then warm the
        // cache with the result so N uncached relocations of the same
        // content pay for one decode, not N.
        const auto fresh = decode_stream(rtc_.image_of(id));
        stats_.decode += fresh->decode;
        cache_.insert(info.content_hash, fresh);
        rtc_.relocate_decoded(id, *slot, fresh->payloads);
        ++stats_.relocates_decoded;
      }
    } catch (const VbsError& ex) {
      res.status = RequestStatus::kFailed;
      res.code = ex.code();
      res.error = ex.what();
      ++stats_.failed;
      finish(req, std::move(res), out);
      return;
    }
    res.decode_seconds = seconds_between(t0, Clock::now());
    res.rect = rtc_.record(id).rect;
    info.last_use = ++use_seq_;
  }
  res.status = RequestStatus::kDone;
  finish(req, std::move(res), out);
}

}  // namespace vbs
