#include "rtc/service/service.h"

#include <algorithm>
#include <stdexcept>

namespace vbs {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ReconfigService::ReconfigService(const ArchSpec& spec, int width, int height,
                                 ServiceOptions opts)
    : rtc_(spec, width, height),
      opts_(std::move(opts)),
      policy_(make_placement_policy(opts_.policy)),
      cache_(opts_.cache_capacity_bits),
      pool_(std::max(1, opts_.threads)) {
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("service: max_batch must be >= 1");
  }
}

RequestId ReconfigService::submit_load(BitVector stream) {
  Request req;
  req.id = next_request_++;
  req.kind = RequestKind::kLoad;
  req.stream = std::move(stream);
  req.submitted = Clock::now();
  queue_.push_back(std::move(req));
  return queue_.back().id;
}

RequestId ReconfigService::submit_unload(RequestId load_request) {
  Request req;
  req.id = next_request_++;
  req.kind = RequestKind::kUnload;
  req.target = load_request;
  req.submitted = Clock::now();
  queue_.push_back(std::move(req));
  return queue_.back().id;
}

RequestId ReconfigService::submit_relocate(RequestId load_request) {
  Request req;
  req.id = next_request_++;
  req.kind = RequestKind::kRelocate;
  req.target = load_request;
  req.submitted = Clock::now();
  queue_.push_back(std::move(req));
  return queue_.back().id;
}

TaskId ReconfigService::task_of(RequestId load_request) const {
  const auto it = task_of_request_.find(load_request);
  return it == task_of_request_.end() ? kNoTask : it->second;
}

RequestResult ReconfigService::make_result(const Request& req) const {
  RequestResult res;
  res.request = req.id;
  res.kind = req.kind;
  return res;
}

double ReconfigService::fragmentation() const {
  const RectAllocator& a = rtc_.allocator();
  const int free_tiles = a.width() * a.height() - a.occupied_tiles();
  if (free_tiles <= 0) return 0.0;
  return 1.0 - static_cast<double>(a.largest_free_rect_area()) / free_tiles;
}

std::vector<RequestResult> ReconfigService::drain() {
  std::vector<RequestResult> results;
  results.reserve(queue_.size());
  while (!queue_.empty()) {
    if (queue_.front().kind == RequestKind::kLoad) {
      // Maximal run of consecutive loads, capped at max_batch: one
      // parallel devirtualization batch. The cap only bounds memory; batch
      // boundaries depend on the queue alone, never on thread count.
      std::vector<Request*> batch;
      for (std::size_t i = 0; i < queue_.size() &&
                              static_cast<int>(batch.size()) < opts_.max_batch;
           ++i) {
        if (queue_[i].kind != RequestKind::kLoad) break;
        batch.push_back(&queue_[i]);
      }
      process_load_batch(batch, results);
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(batch.size()));
    } else {
      const Request req = std::move(queue_.front());
      queue_.pop_front();
      if (req.kind == RequestKind::kUnload) {
        process_unload(req, results);
      } else {
        process_relocate(req, results);
      }
    }
  }
  return results;
}

std::optional<Point> ReconfigService::admit_placement(int w, int h,
                                                      RequestId cause,
                                                      RequestResult& res) {
  if (const auto slot = policy_->place(rtc_.allocator(), w, h)) return slot;
  if (!opts_.evict_to_fit) return std::nullopt;

  std::vector<VictimCandidate> candidates;
  candidates.reserve(task_info_.size());
  for (const auto& [id, info] : task_info_) {
    candidates.push_back({id, rtc_.record(id).rect, info.last_use});
  }
  const auto plan = plan_eviction(rtc_.allocator(), candidates, w, h);
  if (!plan) return std::nullopt;
  for (const TaskId victim : plan->victims) {
    const Rect r = rtc_.record(victim).rect;
    rtc_.unload(victim);
    forget_task(victim);
    eviction_log_.push_back(
        {static_cast<long long>(eviction_log_.size()), victim, r, cause});
    ++stats_.task_evictions;
    ++res.evicted_tasks;
  }
  return plan->origin;
}

void ReconfigService::forget_task(TaskId id) {
  const auto it = task_info_.find(id);
  if (it == task_info_.end()) return;
  task_of_request_.erase(it->second.origin_request);
  task_info_.erase(it);
}

void ReconfigService::process_load_batch(const std::vector<Request*>& batch,
                                         std::vector<RequestResult>& out) {
  // Per-request resolution: which decoded stream serves it, or why not.
  struct Pending {
    std::uint64_t hash = 0;
    std::shared_ptr<const DecodedStream> decoded;  ///< cache or batch dup
    int job = -1;          ///< fresh decode job index, -1 if cached/failed
    bool cache_hit = false;
    std::string parse_error;
  };
  /// One fresh devirtualization of a distinct stream.
  struct Job {
    std::shared_ptr<DecodedStream> decoded = std::make_shared<DecodedStream>();
    std::size_t entry_base = 0;  ///< offset into the flat item arrays
    double decode_seconds = 0.0;
    std::string error;
  };
  std::vector<Pending> pending(batch.size());
  std::vector<Job> jobs;
  std::map<std::uint64_t, int> job_of_hash;

  // Admission-order resolution: cache lookups and batch deduplication are
  // serial, so LRU order and hit counters never depend on thread count.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = pending[i];
    p.hash = stream_content_hash(batch[i]->stream);
    if (auto cached = cache_.find(p.hash)) {
      p.decoded = std::move(cached);
      p.cache_hit = true;
      continue;
    }
    if (const auto dup = job_of_hash.find(p.hash); dup != job_of_hash.end()) {
      p.job = dup->second;
      p.cache_hit = true;  // decode skipped: the batch twin pays for it
      continue;
    }
    try {
      Job job;
      job.decoded->image = deserialize_vbs(batch[i]->stream);
      job.decoded->payloads.resize(job.decoded->image.entries.size());
      p.job = static_cast<int>(jobs.size());
      job_of_hash.emplace(p.hash, p.job);
      jobs.push_back(std::move(job));
    } catch (const std::exception& ex) {
      p.parse_error = ex.what();
    }
  }

  // Batched asynchronous devirtualization: entries of all jobs become one
  // flat work list on the pool. Decoding an entry is pure (stateless
  // across entries, position-independent), so any schedule produces the
  // same payloads; per-item stats are merged in item order below.
  struct Item {
    int job;
    std::size_t entry;
  };
  std::vector<Item> items;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].entry_base = items.size();
    for (std::size_t e = 0; e < jobs[j].decoded->image.entries.size(); ++e) {
      items.push_back({static_cast<int>(j), e});
    }
  }
  if (!items.empty()) {
    ++stats_.batches;
    std::vector<DecodeStats> item_stats(items.size());
    std::vector<double> item_seconds(items.size(), 0.0);
    std::vector<std::string> item_errors(items.size());
    // Region models are shared per (rank, job): ranks only touch their own
    // row, and a Devirtualizer is reusable but not thread-safe.
    std::vector<std::vector<std::unique_ptr<RegionDecoderCache>>> decoders(
        static_cast<std::size_t>(pool_.size()));
    for (auto& row : decoders) row.resize(jobs.size());
    pool_.parallel_for(items.size(), [&](int rank, std::size_t idx) {
      const Item item = items[idx];
      const auto t0 = Clock::now();
      try {
        const VbsImage& img =
            jobs[static_cast<std::size_t>(item.job)].decoded->image;
        auto& slot =
            decoders[static_cast<std::size_t>(rank)]
                    [static_cast<std::size_t>(item.job)];
        if (!slot) {
          slot = std::make_unique<RegionDecoderCache>(
              img.spec, img.cluster, img.task_w, img.task_h);
        }
        const VbsEntry& e = img.entries[item.entry];
        if (!slot->decoder_for(e.cx, e.cy).decode_entry(
                e,
                jobs[static_cast<std::size_t>(item.job)]
                    .decoded->payloads[item.entry],
                &item_stats[idx])) {
          item_errors[idx] = "entry " + std::to_string(e.cx) + "," +
                             std::to_string(e.cy) + " failed to decode";
        }
      } catch (const std::exception& ex) {
        item_errors[idx] = ex.what();
      }
      item_seconds[idx] = seconds_between(t0, Clock::now());
    });
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      Job& job = jobs[static_cast<std::size_t>(items[idx].job)];
      job.decoded->decode += item_stats[idx];
      job.decode_seconds += item_seconds[idx];
      if (!item_errors[idx].empty() && job.error.empty()) {
        job.error = item_errors[idx];
      }
    }
    for (const Job& job : jobs) stats_.decode += job.decoded->decode;
  }

  // Commit strictly in admission order.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Request& req = *batch[i];
    Pending& p = pending[i];
    RequestResult res = make_result(req);
    ++stats_.loads;

    std::shared_ptr<const DecodedStream> decoded = p.decoded;
    double decode_seconds = 0.0;
    DecodeStats decode_cost;  // stays zero for warm loads
    std::string error = p.parse_error;
    if (!decoded && p.job >= 0) {
      Job& job = jobs[static_cast<std::size_t>(p.job)];
      if (job.error.empty()) {
        decoded = job.decoded;
        // The first committer of a fresh decode carries its cost; batch
        // twins of the same content count as warm.
        if (!p.cache_hit) {
          decode_seconds = job.decode_seconds;
          decode_cost = job.decoded->decode;
        }
        // A fresh decode warms the cache even if placement fails below: a
        // retry after departures should not pay for routing again.
        cache_.insert(p.hash, job.decoded);
      } else {
        error = job.error;
      }
    }

    if (!decoded) {
      res.status = RequestStatus::kFailed;
      res.error = error;
      ++stats_.failed;
      res.latency_seconds = seconds_between(req.submitted, Clock::now());
      out.push_back(std::move(res));
      continue;
    }

    res.cache_hit = p.cache_hit;
    if (p.cache_hit) {
      ++stats_.warm_loads;
    } else {
      ++stats_.cold_loads;
    }
    const VbsImage& img = decoded->image;
    const auto slot = admit_placement(img.task_w, img.task_h, req.id, res);
    if (!slot) {
      res.status = RequestStatus::kRejected;
      res.error = "no placement for " + std::to_string(img.task_w) + "x" +
                  std::to_string(img.task_h);
      ++stats_.rejected;
      res.latency_seconds = seconds_between(req.submitted, Clock::now());
      out.push_back(std::move(res));
      continue;
    }
    const TaskId id =
        rtc_.load_decoded(img, decoded->payloads, req.stream.size(), *slot,
                          decode_cost, decode_seconds, pool_.size());
    task_of_request_[req.id] = id;
    task_info_[id] = {p.hash, ++use_seq_, req.id};
    res.status = RequestStatus::kDone;
    res.task = id;
    res.rect = rtc_.record(id).rect;
    res.decode_seconds = decode_seconds;
    res.latency_seconds = seconds_between(req.submitted, Clock::now());
    out.push_back(std::move(res));
  }
}

void ReconfigService::process_unload(const Request& req,
                                     std::vector<RequestResult>& out) {
  RequestResult res = make_result(req);
  ++stats_.unloads;
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    // Already evicted (or the load never committed): an unload of a gone
    // task is not an error in a multi-tenant queue, just a no-op.
    res.status = RequestStatus::kRejected;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
  } else {
    res.task = id;
    res.rect = rtc_.record(id).rect;
    rtc_.unload(id);
    forget_task(id);
    res.status = RequestStatus::kDone;
  }
  res.latency_seconds = seconds_between(req.submitted, Clock::now());
  out.push_back(std::move(res));
}

void ReconfigService::process_relocate(const Request& req,
                                       std::vector<RequestResult>& out) {
  RequestResult res = make_result(req);
  ++stats_.relocates;
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    res.status = RequestStatus::kRejected;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
    res.latency_seconds = seconds_between(req.submitted, Clock::now());
    out.push_back(std::move(res));
    return;
  }
  const Rect cur = rtc_.record(id).rect;
  res.task = id;
  res.rect = cur;
  // Destination by policy on the live occupancy (own tiles still marked, so
  // the choice can never overlap the task itself — the controller has no
  // shadow plane). No free slot means the relocation is a no-op.
  const auto slot = policy_->place(rtc_.allocator(), cur.w, cur.h);
  if (slot) {
    TaskInfo& info = task_info_.at(id);
    const auto t0 = Clock::now();
    if (const auto cached = cache_.find(info.content_hash)) {
      rtc_.relocate_decoded(id, *slot, cached->payloads);
      ++stats_.relocates_cached;
    } else {
      // Cache miss (evicted or capacity 0): re-decode the retained image
      // once — serially, a relocation is a single stream — then warm the
      // cache with the result so N uncached relocations of the same
      // content pay for one decode, not N.
      const auto fresh = decode_stream(rtc_.image_of(id));
      stats_.decode += fresh->decode;
      cache_.insert(info.content_hash, fresh);
      rtc_.relocate_decoded(id, *slot, fresh->payloads);
      ++stats_.relocates_decoded;
    }
    res.decode_seconds = seconds_between(t0, Clock::now());
    res.rect = rtc_.record(id).rect;
    info.last_use = ++use_seq_;
  }
  res.status = RequestStatus::kDone;
  res.latency_seconds = seconds_between(req.submitted, Clock::now());
  out.push_back(std::move(res));
}

}  // namespace vbs
