#include "rtc/service/service.h"

#include <algorithm>
#include <stdexcept>

#include "flow/artifact_io.h"
#include "util/bitio.h"
#include "util/telemetry.h"

namespace vbs {

namespace {

/// Fault-plan sequence key of one request attempt: id and attempt are the
/// logical identity of a processing step, so the same plan rolls the same
/// faults at any thread count.
std::uint64_t attempt_key(RequestId id, int attempt) {
  return (static_cast<std::uint64_t>(id) << 8) |
         (static_cast<std::uint64_t>(attempt) & 0xff);
}

}  // namespace

const char* to_string(RequestStatus s) {
  switch (s) {
    case RequestStatus::kQueued:
      return "queued";
    case RequestStatus::kDone:
      return "done";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kFailed:
      return "failed";
    case RequestStatus::kShed:
      return "shed";
    case RequestStatus::kDeadline:
      return "deadline";
  }
  return "?";
}

ReconfigService::ReconfigService(const ArchSpec& spec, int width, int height,
                                 ServiceOptions opts)
    : rtc_(spec, width, height),
      opts_(std::move(opts)),
      policy_(make_placement_policy(opts_.policy)),
      cache_(opts_.cache_capacity_bits),
      pool_(std::max(1, opts_.threads)) {
  if (opts_.max_batch < 1) {
    throw std::invalid_argument("service: max_batch must be >= 1");
  }
  if (opts_.retry_limit < 0 || opts_.retry_backoff_ticks < 0 ||
      opts_.deadline_ticks < 0) {
    throw std::invalid_argument(
        "service: retry_limit/retry_backoff_ticks/deadline_ticks must be "
        ">= 0");
  }
  // The plan lives in opts_, so the pointers stay valid for the service
  // lifetime; an all-zero plan never fires.
  rtc_.set_fault_plan(&opts_.faults);
  cache_.set_fault_plan(&opts_.faults);
}

ReconfigService::Request ReconfigService::make_request(RequestKind kind,
                                                       int tenant) {
  Request req;
  req.id = next_request_++;
  req.kind = kind;
  req.tenant = tenant;
  const auto it = tenant_priority_.find(tenant);
  req.priority = it == tenant_priority_.end() ? 0 : it->second;
  req.submitted_tick = now_ticks_;
  req.submitted_ns = telem::now_ns();
  TenantStats& t = tenants_[tenant];
  t.priority = req.priority;
  ++t.submitted;
  return req;
}

void ReconfigService::shed_request(Request& req) {
  req.shed = true;
  ++stats_.shed;
  ++tenants_[req.tenant].shed;
  last_shed_ = req.id;
}

void ReconfigService::admit_load(Request req) {
  if (opts_.queue_limit == 0 || live_loads_ < opts_.queue_limit) {
    queue_.push_back(std::move(req));
    ++live_loads_;
    return;
  }
  // Queue full. Shed the newest queued load of minimal priority — unless
  // even that one outranks (or ties) the arrival, in which case the
  // arrival itself is shed. `<=` keeps the latest minimum, so the oldest
  // work of a tenant survives its own flood.
  Request* victim = nullptr;
  for (Request& q : queue_) {
    if (q.kind != RequestKind::kLoad || q.shed) continue;
    if (victim == nullptr || q.priority <= victim->priority) victim = &q;
  }
  if (victim != nullptr && victim->priority < req.priority) {
    shed_request(*victim);
    --live_loads_;
    queue_.push_back(std::move(req));
    ++live_loads_;
  } else {
    shed_request(req);
    queue_.push_back(std::move(req));  // still owed a kShed result
  }
}

RequestId ReconfigService::submit_load(BitVector stream, int tenant) {
  Request req = make_request(RequestKind::kLoad, tenant);
  req.stream = std::move(stream);
  const RequestId id = req.id;
  last_shed_ = kNoRequest;
  admit_load(std::move(req));
  if (journal_) {
    // Apply-then-append: both admission paths leave the new request at the
    // back of the queue, so its stream is journaled from there. The shed
    // decision is deterministic given replayed state; its record is a
    // cross-check, bundled into the same append so a torn tail can only
    // lose the companion, never reorder it.
    std::string p;
    ServiceJournal::put_u64(p, static_cast<std::uint64_t>(id));
    ServiceJournal::put_u32(p, static_cast<std::uint32_t>(tenant));
    ServiceJournal::put_bits(p, queue_.back().stream);
    if (last_shed_ != kNoRequest) {
      std::string s;
      ServiceJournal::put_u64(s, static_cast<std::uint64_t>(last_shed_));
      journal_append2(ServiceJournal::Kind::kAdmitLoad, p,
                      ServiceJournal::Kind::kShed, s);
    } else {
      journal_append(ServiceJournal::Kind::kAdmitLoad, p);
    }
  }
  return id;
}

RequestId ReconfigService::submit_unload(RequestId load_request, int tenant) {
  Request req = make_request(RequestKind::kUnload, tenant);
  req.target = load_request;
  const RequestId id = req.id;
  queue_.push_back(std::move(req));
  if (journal_) {
    std::string p;
    ServiceJournal::put_u64(p, static_cast<std::uint64_t>(id));
    ServiceJournal::put_u64(p, static_cast<std::uint64_t>(load_request));
    ServiceJournal::put_u32(p, static_cast<std::uint32_t>(tenant));
    journal_append(ServiceJournal::Kind::kAdmitUnload, p);
  }
  return id;
}

RequestId ReconfigService::submit_relocate(RequestId load_request,
                                           int tenant) {
  Request req = make_request(RequestKind::kRelocate, tenant);
  req.target = load_request;
  const RequestId id = req.id;
  queue_.push_back(std::move(req));
  if (journal_) {
    std::string p;
    ServiceJournal::put_u64(p, static_cast<std::uint64_t>(id));
    ServiceJournal::put_u64(p, static_cast<std::uint64_t>(load_request));
    ServiceJournal::put_u32(p, static_cast<std::uint32_t>(tenant));
    journal_append(ServiceJournal::Kind::kAdmitRelocate, p);
  }
  return id;
}

void ReconfigService::set_tenant_priority(int tenant, int priority) {
  tenant_priority_[tenant] = priority;
  tenants_[tenant].priority = priority;
  if (journal_) {
    std::string p;
    ServiceJournal::put_u32(p, static_cast<std::uint32_t>(tenant));
    ServiceJournal::put_u32(p, static_cast<std::uint32_t>(priority));
    journal_append(ServiceJournal::Kind::kSetPriority, p);
  }
}

TaskId ReconfigService::task_of(RequestId load_request) const {
  const auto it = task_of_request_.find(load_request);
  return it == task_of_request_.end() ? kNoTask : it->second;
}

RequestResult ReconfigService::make_result(const Request& req) const {
  RequestResult res;
  res.request = req.id;
  res.kind = req.kind;
  res.tenant = req.tenant;
  res.priority = req.priority;
  res.attempts = req.attempt;
  return res;
}

void ReconfigService::finish(const Request& req, RequestResult res,
                             std::vector<RequestResult>& out) {
  res.latency_ticks = now_ticks_ - req.submitted_tick;
  res.latency_seconds = telem::seconds_since(req.submitted_ns);
  if (res.status == RequestStatus::kShed) {
    // Never processed: the whole lifetime was spent queued.
    res.queue_wait_ticks = res.latency_ticks;
  } else {
    res.queue_wait_ticks = req.queue_wait_ticks;
    res.backoff_ticks = req.backoff_ticks;
    res.spike_ticks = req.spike_ticks;
    res.exec_ticks = req.exec_ticks;
  }
  TenantStats& t = tenants_[req.tenant];
  t.latency_ticks += res.latency_ticks;
  t.queue_wait_ticks += res.queue_wait_ticks;
  t.backoff_ticks += res.backoff_ticks;
  t.spike_ticks += res.spike_ticks;
  t.exec_ticks += res.exec_ticks;
  switch (res.status) {
    case RequestStatus::kDone:
      ++t.done;
      break;
    case RequestStatus::kRejected:
      ++t.rejected;
      break;
    case RequestStatus::kFailed:
      ++t.failed;
      break;
    case RequestStatus::kDeadline:
      ++t.deadline_misses;
      break;
    case RequestStatus::kShed:  // counted at shed time (admission)
    case RequestStatus::kQueued:
      break;
  }
  if (telem::enabled()) {
    // Modeled-tick request spans (pid 2, tid = tenant, 1 tick = 1us): one
    // parent span for the whole request, then the phases laid end to end —
    // they tile it exactly, by the tick identity on RequestResult.
    const auto ns = [](long long ticks) {
      return static_cast<std::uint64_t>(ticks) * 1000;
    };
    const std::uint64_t tid = static_cast<std::uint64_t>(req.tenant);
    std::uint64_t cursor = ns(req.submitted_tick);
    telem::emit_complete(
        telem::kPidTicks, tid, cursor, ns(res.latency_ticks), "service",
        "request",
        {{"id", telem::SpanArg::Type::kInt, res.request, 0.0, {}},
         {"status", telem::SpanArg::Type::kString, 0, 0.0,
          to_string(res.status)}});
    const struct {
      const char* name;
      long long ticks;
    } phases[] = {{"queue_wait", res.queue_wait_ticks},
                  {"backoff", res.backoff_ticks},
                  {"spike", res.spike_ticks},
                  {"exec", res.exec_ticks}};
    for (const auto& ph : phases) {
      if (ph.ticks > 0) {
        telem::emit_complete(telem::kPidTicks, tid, cursor, ns(ph.ticks),
                             "service", ph.name);
      }
      cursor += ns(ph.ticks);
    }
  }
  out.push_back(std::move(res));
}

bool ReconfigService::tick_and_check_deadline(Request& req,
                                              std::vector<RequestResult>& out) {
  const long long entry = now_ticks_;
  now_ticks_ = std::max(now_ticks_, req.not_before);
  // Phase attribution: a first attempt waited in the admission queue since
  // submit; a retry waited (idle to not_before included) since
  // schedule_retry stamped retry_tick.
  if (req.attempt == 1) {
    req.queue_wait_ticks = entry - req.submitted_tick;
  } else {
    req.backoff_ticks += now_ticks_ - req.retry_tick;
  }
  const long long spike =
      opts_.faults.latency_spike_ticks(attempt_key(req.id, req.attempt));
  if (spike > 0) {
    now_ticks_ += spike;
    req.spike_ticks += spike;
    ++stats_.faults_injected;
    stats_.latency_spike_ticks += spike;
  }
  if (opts_.deadline_ticks > 0 &&
      now_ticks_ - req.submitted_tick > opts_.deadline_ticks) {
    RequestResult res = make_result(req);
    res.status = RequestStatus::kDeadline;
    res.code = VbsErrc::kDeadline;
    res.error = "deadline of " + std::to_string(opts_.deadline_ticks) +
                " ticks exceeded";
    ++stats_.deadline_misses;
    finish(req, std::move(res), out);
    return false;
  }
  ++now_ticks_;  // the one-tick service cost of actually processing it
  ++req.exec_ticks;
  return true;
}

bool ReconfigService::schedule_retry(const Request& req) {
  if (req.attempt > opts_.retry_limit) return false;
  Request retry = req;
  retry.attempt = req.attempt + 1;
  const int shift = std::min(req.attempt - 1, 20);
  retry.not_before = now_ticks_ + (opts_.retry_backoff_ticks << shift);
  retry.retry_tick = now_ticks_;
  queue_.push_back(std::move(retry));
  ++stats_.retries;
  ++tenants_[req.tenant].retries;
  return true;
}

double ReconfigService::fragmentation() const {
  const RectAllocator& a = rtc_.allocator();
  const int free_tiles = a.width() * a.height() - a.occupied_tiles();
  if (free_tiles <= 0) return 0.0;
  return 1.0 - static_cast<double>(a.largest_free_rect_area()) / free_tiles;
}

std::vector<RequestResult> ReconfigService::drain() {
  if (queue_.empty()) return {};  // pure no-op: nothing to journal either
  TELEM_SPAN("service", "drain");
  std::vector<RequestResult> results;
  results.reserve(queue_.size());
  // Outer loop: retries requeue themselves, so one pass may spawn another.
  while (!queue_.empty()) {
    std::vector<Request> work;
    work.reserve(queue_.size());
    for (Request& r : queue_) work.push_back(std::move(r));
    queue_.clear();
    live_loads_ = 0;
    // Priority-ordered processing; stable, so equal priorities (the
    // default: everything 0) keep plain admission order.
    std::stable_sort(work.begin(), work.end(),
                     [](const Request& a, const Request& b) {
                       return a.priority > b.priority;
                     });

    const auto emit_shed = [&](const Request& r) {
      RequestResult res = make_result(r);
      res.status = RequestStatus::kShed;
      res.code = VbsErrc::kQueueFull;
      res.error = "shed at admission: queue limit " +
                  std::to_string(opts_.queue_limit);
      finish(r, std::move(res), results);
    };

    std::size_t i = 0;
    while (i < work.size()) {
      if (work[i].shed) {
        emit_shed(work[i]);
        ++i;
        continue;
      }
      if (work[i].kind == RequestKind::kLoad) {
        // Maximal run of consecutive live loads, capped at max_batch: one
        // parallel devirtualization batch. The cap only bounds memory;
        // batch boundaries depend on the (sorted) queue alone, never on
        // thread count.
        std::vector<Request*> batch;
        while (i < work.size() && work[i].kind == RequestKind::kLoad &&
               static_cast<int>(batch.size()) < opts_.max_batch) {
          if (work[i].shed) {
            emit_shed(work[i]);
          } else {
            batch.push_back(&work[i]);
          }
          ++i;
        }
        process_load_batch(batch, results);
      } else if (work[i].kind == RequestKind::kUnload) {
        process_unload(work[i], results);
        ++i;
      } else {
        process_relocate(work[i], results);
        ++i;
      }
    }
  }
  // One result per request id; ids are admission order.
  std::stable_sort(results.begin(), results.end(),
                   [](const RequestResult& a, const RequestResult& b) {
                     return a.request < b.request;
                   });
  if (journal_) {
    // drain() performs no I/O between records, so a single post-drain
    // commit record gives exact crash semantics: a torn or missing kCommit
    // recovers to the pre-drain state and the drain is simply redone.
    std::string p;
    ServiceJournal::put_u64(p, state_fingerprint());
    journal_append(ServiceJournal::Kind::kCommit, p);
  }
  return results;
}

std::optional<Point> ReconfigService::admit_placement(int w, int h,
                                                      RequestId cause,
                                                      RequestResult& res) {
  if (const auto slot = policy_->place(rtc_.allocator(), w, h)) return slot;
  if (!opts_.evict_to_fit) return std::nullopt;

  std::vector<VictimCandidate> candidates;
  candidates.reserve(task_info_.size());
  for (const auto& [id, info] : task_info_) {
    candidates.push_back({id, rtc_.record(id).rect, info.last_use});
  }
  const auto plan = plan_eviction(rtc_.allocator(), candidates, w, h);
  if (!plan) return std::nullopt;
  for (const TaskId victim : plan->victims) {
    const Rect r = rtc_.record(victim).rect;
    rtc_.unload(victim);
    forget_task(victim);
    eviction_log_.push_back(
        {static_cast<long long>(eviction_log_.size()), victim, r, cause});
    ++stats_.task_evictions;
    ++res.evicted_tasks;
  }
  return plan->origin;
}

void ReconfigService::forget_task(TaskId id) {
  const auto it = task_info_.find(id);
  if (it == task_info_.end()) return;
  task_of_request_.erase(it->second.origin_request);
  task_info_.erase(it);
}

void ReconfigService::process_load_batch(const std::vector<Request*>& batch,
                                         std::vector<RequestResult>& out) {
  // Per-request resolution: which decoded stream serves it, or why not.
  struct Pending {
    std::uint64_t hash = 0;
    std::shared_ptr<const DecodedStream> decoded;  ///< cache or batch dup
    int job = -1;          ///< fresh decode job index, -1 if cached/failed
    bool cache_hit = false;
    VbsErrc parse_code = VbsErrc::kNone;
    std::string parse_error;
  };
  /// One fresh devirtualization of a distinct stream.
  struct Job {
    std::shared_ptr<DecodedStream> decoded = std::make_shared<DecodedStream>();
    std::size_t entry_base = 0;  ///< offset into the flat item arrays
    double decode_seconds = 0.0;
    VbsErrc code = VbsErrc::kNone;
    std::string error;
  };
  std::vector<Pending> pending(batch.size());
  std::vector<Job> jobs;
  std::map<std::uint64_t, int> job_of_hash;

  // Admission-order resolution: cache lookups and batch deduplication are
  // serial, so LRU order and hit counters never depend on thread count.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = pending[i];
    p.hash = stream_content_hash(batch[i]->stream);
    if (auto cached = cache_.find(p.hash)) {
      p.decoded = std::move(cached);
      p.cache_hit = true;
      continue;
    }
    if (const auto dup = job_of_hash.find(p.hash); dup != job_of_hash.end()) {
      p.job = dup->second;
      p.cache_hit = true;  // decode skipped: the batch twin pays for it
      continue;
    }
    try {
      Job job;
      job.decoded->image = deserialize_vbs(batch[i]->stream);
      job.decoded->payloads.resize(job.decoded->image.entries.size());
      p.job = static_cast<int>(jobs.size());
      job_of_hash.emplace(p.hash, p.job);
      jobs.push_back(std::move(job));
    } catch (const VbsError& ex) {
      // A hostile stream fails this one request, typed; the batch goes on.
      p.parse_code = ex.code();
      p.parse_error = ex.what();
    } catch (const std::exception& ex) {
      p.parse_code = VbsErrc::kDecodeFailed;
      p.parse_error = ex.what();
    }
  }

  // Batched asynchronous devirtualization: entries of all jobs become one
  // flat work list on the pool. Decoding an entry is pure (stateless
  // across entries, position-independent), so any schedule produces the
  // same payloads; per-item stats are merged in item order below.
  struct Item {
    int job;
    std::size_t entry;
  };
  std::vector<Item> items;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].entry_base = items.size();
    for (std::size_t e = 0; e < jobs[j].decoded->image.entries.size(); ++e) {
      items.push_back({static_cast<int>(j), e});
    }
  }
  if (!items.empty()) {
    ++stats_.batches;
    telem::Span batch_span("service", "decode_batch");
    batch_span.arg("requests", batch.size()).arg("entries", items.size());
    std::vector<DecodeStats> item_stats(items.size());
    std::vector<double> item_seconds(items.size(), 0.0);
    std::vector<std::string> item_errors(items.size());
    std::vector<VbsErrc> item_codes(items.size(), VbsErrc::kNone);
    // Region models are shared per (rank, job): ranks only touch their own
    // row, and a Devirtualizer is reusable but not thread-safe.
    std::vector<std::vector<std::unique_ptr<RegionDecoderCache>>> decoders(
        static_cast<std::size_t>(pool_.size()));
    for (auto& row : decoders) row.resize(jobs.size());
    pool_.parallel_for(items.size(), [&](int rank, std::size_t idx) {
      const Item item = items[idx];
      const std::uint64_t t0 = telem::now_ns();
      try {
        const VbsImage& img =
            jobs[static_cast<std::size_t>(item.job)].decoded->image;
        auto& slot =
            decoders[static_cast<std::size_t>(rank)]
                    [static_cast<std::size_t>(item.job)];
        if (!slot) {
          slot = std::make_unique<RegionDecoderCache>(
              img.spec, img.cluster, img.task_w, img.task_h);
        }
        const VbsEntry& e = img.entries[item.entry];
        if (!slot->decoder_for(e.cx, e.cy).decode_entry(
                e,
                jobs[static_cast<std::size_t>(item.job)]
                    .decoded->payloads[item.entry],
                &item_stats[idx])) {
          item_errors[idx] = "entry " + std::to_string(e.cx) + "," +
                             std::to_string(e.cy) + " failed to decode";
          item_codes[idx] = VbsErrc::kDecodeFailed;
        }
      } catch (const VbsError& ex) {
        item_errors[idx] = ex.what();
        item_codes[idx] = ex.code();
      } catch (const std::exception& ex) {
        item_errors[idx] = ex.what();
        item_codes[idx] = VbsErrc::kDecodeFailed;
      }
      item_seconds[idx] = telem::seconds_since(t0);
    });
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      Job& job = jobs[static_cast<std::size_t>(items[idx].job)];
      job.decoded->decode += item_stats[idx];
      job.decode_seconds += item_seconds[idx];
      if (!item_errors[idx].empty() && job.error.empty()) {
        job.error = item_errors[idx];
        job.code = item_codes[idx];
      }
    }
    for (const Job& job : jobs) stats_.decode += job.decoded->decode;
  }

  // Commit strictly in processing order.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = *batch[i];
    Pending& p = pending[i];
    if (req.attempt == 1) ++stats_.loads;  // retries are not new requests
    // A request past its deadline is dropped here: any decode work it
    // caused above is wasted, exactly like an overloaded real service.
    if (!tick_and_check_deadline(req, out)) continue;
    RequestResult res = make_result(req);

    if (!p.parse_error.empty()) {
      res.status = RequestStatus::kFailed;
      res.code = p.parse_code;
      res.error = p.parse_error;
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }

    std::shared_ptr<const DecodedStream> decoded = p.decoded;
    double decode_seconds = 0.0;
    DecodeStats decode_cost;  // stays zero for warm loads
    VbsErrc code = VbsErrc::kNone;
    std::string error;
    if (!decoded && p.job >= 0) {
      Job& job = jobs[static_cast<std::size_t>(p.job)];
      if (job.error.empty()) {
        // Injected transient decode fault: only an attempt that actually
        // paid for devirtualization can lose it. Batch twins keep their
        // shared decode; the cache is NOT warmed by a faulted attempt.
        if (!p.cache_hit &&
            opts_.faults.decode_fails(attempt_key(req.id, req.attempt))) {
          ++stats_.faults_injected;
          if (schedule_retry(req)) continue;  // result owed by the retry
          res.status = RequestStatus::kFailed;
          res.code = VbsErrc::kFaultInjected;
          res.error = "injected decode fault (retries exhausted)";
          ++stats_.failed;
          finish(req, std::move(res), out);
          continue;
        }
        decoded = job.decoded;
        // The first committer of a fresh decode carries its cost; batch
        // twins of the same content count as warm.
        if (!p.cache_hit) {
          decode_seconds = job.decode_seconds;
          decode_cost = job.decoded->decode;
        }
        // A fresh decode warms the cache even if placement fails below: a
        // retry after departures should not pay for routing again.
        cache_.insert(p.hash, job.decoded);
      } else {
        code = job.code;
        error = job.error;
      }
    }

    if (!decoded) {
      res.status = RequestStatus::kFailed;
      res.code = code;
      res.error = error;
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }

    res.cache_hit = p.cache_hit;
    if (p.cache_hit) {
      ++stats_.warm_loads;
    } else {
      ++stats_.cold_loads;
    }
    const VbsImage& img = decoded->image;
    const auto slot = admit_placement(img.task_w, img.task_h, req.id, res);
    if (!slot) {
      res.status = RequestStatus::kRejected;
      res.code = VbsErrc::kNoPlacement;
      res.error = "no placement for " + std::to_string(img.task_w) + "x" +
                  std::to_string(img.task_h);
      ++stats_.rejected;
      finish(req, std::move(res), out);
      continue;
    }
    TaskId id = kNoTask;
    try {
      id = rtc_.load_decoded(img, decoded->payloads, req.stream.size(), *slot,
                             decode_cost, decode_seconds, pool_.size());
    } catch (const VbsError& ex) {
      if (ex.code() == VbsErrc::kFaultInjected) {
        // Injected transient allocation fault (the controller rolled back
        // before touching the allocator): back off and retry.
        ++stats_.faults_injected;
        if (schedule_retry(req)) continue;
        res.status = RequestStatus::kFailed;
        res.code = VbsErrc::kFaultInjected;
        res.error = "injected allocation fault (retries exhausted)";
      } else {
        // Hostile stream surviving parse (e.g. wrong architecture): a
        // typed per-request failure, never a drain teardown.
        res.status = RequestStatus::kFailed;
        res.code = ex.code();
        res.error = ex.what();
      }
      ++stats_.failed;
      finish(req, std::move(res), out);
      continue;
    }
    task_of_request_[req.id] = id;
    task_info_[id] = {p.hash, ++use_seq_, req.id};
    res.status = RequestStatus::kDone;
    res.task = id;
    res.rect = rtc_.record(id).rect;
    res.decode_seconds = decode_seconds;
    finish(req, std::move(res), out);
  }
}

void ReconfigService::process_unload(Request& req,
                                     std::vector<RequestResult>& out) {
  ++stats_.unloads;
  if (!tick_and_check_deadline(req, out)) return;
  RequestResult res = make_result(req);
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    // Already evicted (or the load never committed): an unload of a gone
    // task is not an error in a multi-tenant queue, just a no-op.
    res.status = RequestStatus::kRejected;
    res.code = VbsErrc::kNoPlacement;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
  } else {
    res.task = id;
    res.rect = rtc_.record(id).rect;
    rtc_.unload(id);
    forget_task(id);
    res.status = RequestStatus::kDone;
  }
  finish(req, std::move(res), out);
}

void ReconfigService::process_relocate(Request& req,
                                       std::vector<RequestResult>& out) {
  ++stats_.relocates;
  if (!tick_and_check_deadline(req, out)) return;
  RequestResult res = make_result(req);
  const TaskId id = task_of(req.target);
  if (id == kNoTask) {
    res.status = RequestStatus::kRejected;
    res.code = VbsErrc::kNoPlacement;
    res.error = "task of request " + std::to_string(req.target) + " is gone";
    ++stats_.rejected;
    finish(req, std::move(res), out);
    return;
  }
  const Rect cur = rtc_.record(id).rect;
  res.task = id;
  res.rect = cur;
  // Destination by policy on the live occupancy (own tiles still marked, so
  // the choice can never overlap the task itself — the controller has no
  // shadow plane). No free slot means the relocation is a no-op.
  const auto slot = policy_->place(rtc_.allocator(), cur.w, cur.h);
  if (slot) {
    TaskInfo& info = task_info_.at(id);
    const std::uint64_t t0 = telem::now_ns();
    try {
      if (const auto cached = cache_.find(info.content_hash)) {
        rtc_.relocate_decoded(id, *slot, cached->payloads);
        ++stats_.relocates_cached;
      } else {
        // Cache miss (evicted or capacity 0): re-decode the retained image
        // once — serially, a relocation is a single stream — then warm the
        // cache with the result so N uncached relocations of the same
        // content pay for one decode, not N.
        const auto fresh = decode_stream(rtc_.image_of(id));
        stats_.decode += fresh->decode;
        cache_.insert(info.content_hash, fresh);
        rtc_.relocate_decoded(id, *slot, fresh->payloads);
        ++stats_.relocates_decoded;
      }
    } catch (const VbsError& ex) {
      res.status = RequestStatus::kFailed;
      res.code = ex.code();
      res.error = ex.what();
      ++stats_.failed;
      finish(req, std::move(res), out);
      return;
    }
    res.decode_seconds = telem::seconds_since(t0);
    res.rect = rtc_.record(id).rect;
    info.last_use = ++use_seq_;
  }
  res.status = RequestStatus::kDone;
  finish(req, std::move(res), out);
}

// --- durability: journaling, snapshots, recovery -----------------------------

namespace {

[[noreturn]] void bad_journal(const std::string& what) {
  throw VbsError(VbsErrc::kBadJournal, "journal: " + what);
}

void put_decode_stats(BitWriter& w, const DecodeStats& s) {
  artio::put_i64(w, s.pairs_routed);
  artio::put_i64(w, s.pairs_failed);
  artio::put_i64(w, s.nodes_expanded);
  artio::put_i64(w, s.entries_decoded);
  artio::put_i64(w, s.raw_entries);
  artio::put_i64(w, s.negotiation_iterations);
}

DecodeStats get_decode_stats(BitReader& r) {
  DecodeStats s;
  s.pairs_routed = artio::get_i64(r);
  s.pairs_failed = artio::get_i64(r);
  s.nodes_expanded = artio::get_i64(r);
  s.entries_decoded = artio::get_i64(r);
  s.raw_entries = artio::get_i64(r);
  s.negotiation_iterations = artio::get_i64(r);
  return s;
}

void put_bytes(BitWriter& w, const std::string& s) {
  artio::put_i64(w, static_cast<std::int64_t>(s.size()));
  for (const char c : s) w.write(static_cast<unsigned char>(c), 8);
}

std::string get_bytes(BitReader& r) {
  const std::int64_t n = artio::get_i64(r);
  // Bound BEFORE allocating: a corrupt length must reject, not bad_alloc.
  if (n < 0 || static_cast<std::uint64_t>(n) > r.remaining() / 8) {
    bad_journal("bad byte count");
  }
  std::string s(static_cast<std::size_t>(n), '\0');
  for (char& c : s) c = static_cast<char>(r.read(8));
  return s;
}

/// Rejects element counts that could not possibly fit in the remaining
/// bits (each element consumes at least `min_bits`) — corrupt counts must
/// fail typed, before any proportional allocation.
void check_count(const BitReader& r, std::int64_t n, std::size_t min_bits,
                 const char* what) {
  if (n < 0 || static_cast<std::uint64_t>(n) > r.remaining() / min_bits) {
    bad_journal(std::string("bad ") + what + " count");
  }
}

void put_bitvec(BitWriter& w, const BitVector& bits) {
  w.write(bits.size(), 64);
  w.write_vector(bits);
}

BitVector get_bitvec(BitReader& r) {
  const std::uint64_t nbits = r.read(64);
  return r.read_vector(static_cast<std::size_t>(nbits));
}

void put_rect(BitWriter& w, const Rect& rect) {
  artio::put_i32(w, rect.x);
  artio::put_i32(w, rect.y);
  artio::put_i32(w, rect.w);
  artio::put_i32(w, rect.h);
}

Rect get_rect(BitReader& r) {
  Rect rect;
  rect.x = artio::get_i32(r);
  rect.y = artio::get_i32(r);
  rect.w = artio::get_i32(r);
  rect.h = artio::get_i32(r);
  return rect;
}

void fp_u64(std::uint64_t& h, std::uint64_t v) { h = hash_u64(h, v); }
void fp_i64(std::uint64_t& h, long long v) {
  h = hash_u64(h, static_cast<std::uint64_t>(v));
}
void fp_decode(std::uint64_t& h, const DecodeStats& s) {
  fp_i64(h, s.pairs_routed);
  fp_i64(h, s.pairs_failed);
  fp_i64(h, s.nodes_expanded);
  fp_i64(h, s.entries_decoded);
  fp_i64(h, s.raw_entries);
  fp_i64(h, s.negotiation_iterations);
}
void fp_rect(std::uint64_t& h, const Rect& r) {
  fp_i64(h, r.x);
  fp_i64(h, r.y);
  fp_i64(h, r.w);
  fp_i64(h, r.h);
}

constexpr std::uint32_t kSnapshotVersion = 2;
constexpr std::uint32_t kOpenVersion = 1;

}  // namespace

std::uint64_t ReconfigService::state_fingerprint() const {
  constexpr char kTag[] = "vbs.service.state.v1";
  std::uint64_t h = fnv1a64(kTag, sizeof kTag - 1);
  // Configuration memory: the paper-level ground truth.
  const BitVector& config = rtc_.config_memory();
  for (const std::uint64_t w : config.words()) fp_u64(h, w);
  fp_u64(h, config.size());
  // Controller: tasks, serial fault counters, aggregate decode stats.
  fp_i64(h, rtc_.next_task_id());
  fp_u64(h, rtc_.decode_seq());
  fp_u64(h, rtc_.alloc_seq());
  fp_decode(h, rtc_.total_decode_stats());
  const std::vector<TaskId> ids = rtc_.task_ids();
  fp_u64(h, ids.size());
  for (const TaskId id : ids) {
    const TaskRecord& rec = rtc_.record(id);
    fp_i64(h, id);
    fp_rect(h, rec.rect);
    fp_u64(h, rec.stream_bits);
    fp_decode(h, rec.decode);  // wall time and threads_used excluded
  }
  // Cache: content keys in MRU order, counters, the insertion fault clock.
  const auto entries = cache_.entries_mru();
  fp_u64(h, entries.size());
  for (const auto& [key, value] : entries) {
    fp_u64(h, key);  // key IS the content hash; payload bytes add nothing
    fp_u64(h, value->footprint_bits());
  }
  fp_u64(h, cache_.size_bits());
  fp_i64(h, cache_.hits());
  fp_i64(h, cache_.misses());
  fp_i64(h, cache_.insertions());
  fp_i64(h, cache_.evictions());
  fp_i64(h, cache_.fault_drops());
  fp_u64(h, cache_.insert_seq());
  // Service scalars: request ids, the modeled clock, admission state.
  fp_i64(h, next_request_);
  fp_u64(h, use_seq_);
  fp_i64(h, now_ticks_);
  fp_u64(h, live_loads_);
  fp_i64(h, last_shed_);
  fp_u64(h, tenant_priority_.size());
  for (const auto& [tenant, prio] : tenant_priority_) {
    fp_i64(h, tenant);
    fp_i64(h, prio);
  }
  fp_u64(h, tenants_.size());
  for (const auto& [tenant, t] : tenants_) {
    fp_i64(h, tenant);
    fp_i64(h, t.priority);
    fp_i64(h, t.submitted);
    fp_i64(h, t.done);
    fp_i64(h, t.rejected);
    fp_i64(h, t.failed);
    fp_i64(h, t.shed);
    fp_i64(h, t.deadline_misses);
    fp_i64(h, t.retries);
    fp_i64(h, t.latency_ticks);
    fp_i64(h, t.queue_wait_ticks);
    fp_i64(h, t.backoff_ticks);
    fp_i64(h, t.spike_ticks);
    fp_i64(h, t.exec_ticks);
  }
  fp_u64(h, task_of_request_.size());
  for (const auto& [req, task] : task_of_request_) {
    fp_i64(h, req);
    fp_i64(h, task);
  }
  fp_u64(h, task_info_.size());
  for (const auto& [task, info] : task_info_) {
    fp_i64(h, task);
    fp_u64(h, info.content_hash);
    fp_u64(h, info.last_use);
    fp_i64(h, info.origin_request);
  }
  fp_u64(h, eviction_log_.size());
  for (const EvictionEvent& e : eviction_log_) {
    fp_i64(h, e.seq);
    fp_i64(h, e.task);
    fp_rect(h, e.rect);
    fp_i64(h, e.cause);
  }
  fp_i64(h, stats_.loads);
  fp_i64(h, stats_.unloads);
  fp_i64(h, stats_.relocates);
  fp_i64(h, stats_.rejected);
  fp_i64(h, stats_.failed);
  fp_i64(h, stats_.shed);
  fp_i64(h, stats_.deadline_misses);
  fp_i64(h, stats_.retries);
  fp_i64(h, stats_.faults_injected);
  fp_i64(h, stats_.latency_spike_ticks);
  fp_i64(h, stats_.warm_loads);
  fp_i64(h, stats_.cold_loads);
  fp_i64(h, stats_.relocates_cached);
  fp_i64(h, stats_.relocates_decoded);
  fp_i64(h, stats_.batches);
  fp_i64(h, stats_.task_evictions);
  fp_decode(h, stats_.decode);
  fp_u64(h, queue_.size());
  for (const Request& q : queue_) {
    fp_i64(h, q.id);
    fp_i64(h, static_cast<int>(q.kind));
    fp_u64(h, q.kind == RequestKind::kLoad ? stream_content_hash(q.stream)
                                           : 0);
    fp_i64(h, q.target);
    fp_i64(h, q.tenant);
    fp_i64(h, q.priority);
    fp_i64(h, q.attempt);
    fp_i64(h, q.shed ? 1 : 0);
    fp_i64(h, q.submitted_tick);
    fp_i64(h, q.not_before);
    fp_i64(h, q.retry_tick);
    fp_i64(h, q.queue_wait_ticks);
    fp_i64(h, q.backoff_ticks);
    fp_i64(h, q.spike_ticks);
    fp_i64(h, q.exec_ticks);
  }
  return h;
}

std::string ReconfigService::serialize_open() const {
  const ArchSpec& spec = rtc_.fabric().spec();
  std::string p;
  ServiceJournal::put_u32(p, kOpenVersion);
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(spec.chan_width));
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(spec.lut_k));
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(spec.sb_pattern));
  ServiceJournal::put_u32(p,
                          static_cast<std::uint32_t>(rtc_.fabric().width()));
  ServiceJournal::put_u32(p,
                          static_cast<std::uint32_t>(rtc_.fabric().height()));
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(opts_.threads));
  ServiceJournal::put_u64(p, opts_.cache_capacity_bits);
  ServiceJournal::put_str(p, opts_.policy);
  ServiceJournal::put_u32(p, opts_.evict_to_fit ? 1 : 0);
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(opts_.max_batch));
  ServiceJournal::put_u64(p, opts_.queue_limit);
  ServiceJournal::put_u64(p, static_cast<std::uint64_t>(opts_.deadline_ticks));
  ServiceJournal::put_u32(p, static_cast<std::uint32_t>(opts_.retry_limit));
  ServiceJournal::put_u64(
      p, static_cast<std::uint64_t>(opts_.retry_backoff_ticks));
  ServiceJournal::put_str(p, opts_.faults.spec());
  return p;
}

std::unique_ptr<ReconfigService> ReconfigService::construct_from_open(
    const std::string& open_payload, int threads) {
  try {
    std::size_t pos = 0;
    const std::uint32_t version = ServiceJournal::get_u32(open_payload, pos);
    if (version != kOpenVersion) bad_journal("unsupported open version");
    ArchSpec spec;
    spec.chan_width =
        static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    spec.lut_k = static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    const std::uint32_t sb = ServiceJournal::get_u32(open_payload, pos);
    if (sb > static_cast<std::uint32_t>(SbPattern::kWilton)) {
      bad_journal("bad sb_pattern");
    }
    spec.sb_pattern = static_cast<SbPattern>(sb);
    const int w = static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    const int h = static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    ServiceOptions o;
    o.threads = static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    o.cache_capacity_bits = static_cast<std::size_t>(
        ServiceJournal::get_u64(open_payload, pos));
    o.policy = ServiceJournal::get_str(open_payload, pos);
    o.evict_to_fit = ServiceJournal::get_u32(open_payload, pos) != 0;
    o.max_batch = static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    o.queue_limit = static_cast<std::size_t>(
        ServiceJournal::get_u64(open_payload, pos));
    o.deadline_ticks =
        static_cast<long long>(ServiceJournal::get_u64(open_payload, pos));
    o.retry_limit =
        static_cast<int>(ServiceJournal::get_u32(open_payload, pos));
    o.retry_backoff_ticks =
        static_cast<long long>(ServiceJournal::get_u64(open_payload, pos));
    o.faults = FaultPlan::parse(ServiceJournal::get_str(open_payload, pos));
    if (pos != open_payload.size()) bad_journal("trailing open bytes");
    if (threads > 0) o.threads = threads;
    return std::make_unique<ReconfigService>(spec, w, h, std::move(o));
  } catch (const VbsError& e) {
    if (e.code() == VbsErrc::kBadJournal) throw;
    bad_journal(e.what());
  } catch (const std::exception& e) {
    // Validation failures (ArchSpec, ServiceOptions, FaultPlan::parse) mean
    // the journal's configuration record is corrupt.
    bad_journal(e.what());
  }
}

BitVector ReconfigService::serialize_snapshot() const {
  BitWriter w;
  w.write(kSnapshotVersion, 32);
  put_bytes(w, serialize_open());
  // Controller.
  put_bitvec(w, rtc_.config_memory());
  artio::put_i32(w, rtc_.next_task_id());
  w.write(rtc_.decode_seq(), 64);
  w.write(rtc_.alloc_seq(), 64);
  put_decode_stats(w, rtc_.total_decode_stats());
  const std::vector<TaskId> ids = rtc_.task_ids();
  artio::put_i32(w, static_cast<std::int32_t>(ids.size()));
  for (const TaskId id : ids) {
    const TaskRecord& rec = rtc_.record(id);
    artio::put_i32(w, id);
    put_rect(w, rec.rect);
    artio::put_i64(w, static_cast<std::int64_t>(rec.stream_bits));
    put_decode_stats(w, rec.decode);
    artio::put_i32(w, rec.threads_used);
    put_bitvec(w, serialize_vbs(rtc_.image_of(id)));
  }
  // Cache (entries MRU -> LRU; restore_entry rebuilds the same order).
  artio::put_i64(w, cache_.hits());
  artio::put_i64(w, cache_.misses());
  artio::put_i64(w, cache_.insertions());
  artio::put_i64(w, cache_.evictions());
  artio::put_i64(w, cache_.fault_drops());
  w.write(cache_.insert_seq(), 64);
  const auto entries = cache_.entries_mru();
  artio::put_i32(w, static_cast<std::int32_t>(entries.size()));
  for (const auto& [key, value] : entries) {
    w.write(key, 64);
    put_bitvec(w, serialize_vbs(value->image));
    artio::put_i32(w, static_cast<std::int32_t>(value->payloads.size()));
    for (const BitVector& p : value->payloads) put_bitvec(w, p);
    put_decode_stats(w, value->decode);
  }
  // Service scalars and tables.
  artio::put_i64(w, next_request_);
  w.write(use_seq_, 64);
  artio::put_i64(w, now_ticks_);
  artio::put_i64(w, static_cast<std::int64_t>(live_loads_));
  artio::put_i64(w, last_shed_);
  artio::put_i32(w, static_cast<std::int32_t>(tenant_priority_.size()));
  for (const auto& [tenant, prio] : tenant_priority_) {
    artio::put_i32(w, tenant);
    artio::put_i32(w, prio);
  }
  artio::put_i32(w, static_cast<std::int32_t>(tenants_.size()));
  for (const auto& [tenant, t] : tenants_) {
    artio::put_i32(w, tenant);
    artio::put_i32(w, t.priority);
    artio::put_i64(w, t.submitted);
    artio::put_i64(w, t.done);
    artio::put_i64(w, t.rejected);
    artio::put_i64(w, t.failed);
    artio::put_i64(w, t.shed);
    artio::put_i64(w, t.deadline_misses);
    artio::put_i64(w, t.retries);
    artio::put_i64(w, t.latency_ticks);
    artio::put_i64(w, t.queue_wait_ticks);
    artio::put_i64(w, t.backoff_ticks);
    artio::put_i64(w, t.spike_ticks);
    artio::put_i64(w, t.exec_ticks);
  }
  artio::put_i32(w, static_cast<std::int32_t>(task_of_request_.size()));
  for (const auto& [req, task] : task_of_request_) {
    artio::put_i64(w, req);
    artio::put_i32(w, task);
  }
  artio::put_i32(w, static_cast<std::int32_t>(task_info_.size()));
  for (const auto& [task, info] : task_info_) {
    artio::put_i32(w, task);
    w.write(info.content_hash, 64);
    w.write(info.last_use, 64);
    artio::put_i64(w, info.origin_request);
  }
  artio::put_i32(w, static_cast<std::int32_t>(eviction_log_.size()));
  for (const EvictionEvent& e : eviction_log_) {
    artio::put_i64(w, e.seq);
    artio::put_i32(w, e.task);
    put_rect(w, e.rect);
    artio::put_i64(w, e.cause);
  }
  artio::put_i64(w, stats_.loads);
  artio::put_i64(w, stats_.unloads);
  artio::put_i64(w, stats_.relocates);
  artio::put_i64(w, stats_.rejected);
  artio::put_i64(w, stats_.failed);
  artio::put_i64(w, stats_.shed);
  artio::put_i64(w, stats_.deadline_misses);
  artio::put_i64(w, stats_.retries);
  artio::put_i64(w, stats_.faults_injected);
  artio::put_i64(w, stats_.latency_spike_ticks);
  artio::put_i64(w, stats_.warm_loads);
  artio::put_i64(w, stats_.cold_loads);
  artio::put_i64(w, stats_.relocates_cached);
  artio::put_i64(w, stats_.relocates_decoded);
  artio::put_i64(w, stats_.batches);
  artio::put_i64(w, stats_.task_evictions);
  put_decode_stats(w, stats_.decode);
  artio::put_i32(w, static_cast<std::int32_t>(queue_.size()));
  for (const Request& q : queue_) {
    artio::put_i64(w, q.id);
    w.write(static_cast<std::uint64_t>(q.kind), 8);
    put_bitvec(w, q.stream);
    artio::put_i64(w, q.target);
    artio::put_i32(w, q.tenant);
    artio::put_i32(w, q.priority);
    artio::put_i32(w, q.attempt);
    w.write_bit(q.shed);
    artio::put_i64(w, q.submitted_tick);
    artio::put_i64(w, q.not_before);
    artio::put_i64(w, q.retry_tick);
    artio::put_i64(w, q.queue_wait_ticks);
    artio::put_i64(w, q.backoff_ticks);
    artio::put_i64(w, q.spike_ticks);
    artio::put_i64(w, q.exec_ticks);
  }
  return w.take();
}

std::unique_ptr<ReconfigService> ReconfigService::restore_snapshot(
    const BitVector& snapshot, int threads) {
  try {
    BitReader r(snapshot);
    if (r.read(32) != kSnapshotVersion) {
      bad_journal("unsupported snapshot version");
    }
    auto svc = construct_from_open(get_bytes(r), threads);
    // Controller.
    svc->rtc_.restore_config_memory(get_bitvec(r));
    const TaskId next_id = artio::get_i32(r);
    const std::uint64_t decode_seq = r.read(64);
    const std::uint64_t alloc_seq = r.read(64);
    svc->rtc_.restore_counters(next_id, decode_seq, alloc_seq);
    svc->rtc_.set_total_decode_stats(get_decode_stats(r));
    const std::int32_t ntasks = artio::get_i32(r);
    check_count(r, ntasks, 64, "task");
    for (std::int32_t i = 0; i < ntasks; ++i) {
      TaskRecord rec;
      rec.id = artio::get_i32(r);
      rec.rect = get_rect(r);
      rec.stream_bits = static_cast<std::size_t>(artio::get_i64(r));
      rec.decode = get_decode_stats(r);
      rec.threads_used = artio::get_i32(r);
      svc->rtc_.restore_task(rec, deserialize_vbs(get_bitvec(r)));
    }
    // Cache.
    const long long hits = artio::get_i64(r);
    const long long misses = artio::get_i64(r);
    const long long insertions = artio::get_i64(r);
    const long long evictions = artio::get_i64(r);
    const long long fault_drops = artio::get_i64(r);
    const std::uint64_t insert_seq = r.read(64);
    svc->cache_.restore_counters(hits, misses, insertions, evictions,
                                 fault_drops, insert_seq);
    const std::int32_t nentries = artio::get_i32(r);
    check_count(r, nentries, 64, "cache entry");
    for (std::int32_t i = 0; i < nentries; ++i) {
      const std::uint64_t key = r.read(64);
      auto ds = std::make_shared<DecodedStream>();
      ds->image = deserialize_vbs(get_bitvec(r));
      const std::int32_t npayloads = artio::get_i32(r);
      check_count(r, npayloads, 64, "payload");
      ds->payloads.resize(static_cast<std::size_t>(npayloads));
      for (BitVector& p : ds->payloads) p = get_bitvec(r);
      ds->decode = get_decode_stats(r);
      svc->cache_.restore_entry(key, std::move(ds));
    }
    // Service scalars and tables.
    svc->next_request_ = artio::get_i64(r);
    svc->use_seq_ = r.read(64);
    svc->now_ticks_ = artio::get_i64(r);
    svc->live_loads_ = static_cast<std::size_t>(artio::get_i64(r));
    svc->last_shed_ = artio::get_i64(r);
    const std::int32_t nprio = artio::get_i32(r);
    check_count(r, nprio, 64, "priority");
    for (std::int32_t i = 0; i < nprio; ++i) {
      const int tenant = artio::get_i32(r);
      svc->tenant_priority_[tenant] = artio::get_i32(r);
    }
    const std::int32_t ntenants = artio::get_i32(r);
    check_count(r, ntenants, 64, "tenant");
    for (std::int32_t i = 0; i < ntenants; ++i) {
      const int tenant = artio::get_i32(r);
      TenantStats& t = svc->tenants_[tenant];
      t.priority = artio::get_i32(r);
      t.submitted = artio::get_i64(r);
      t.done = artio::get_i64(r);
      t.rejected = artio::get_i64(r);
      t.failed = artio::get_i64(r);
      t.shed = artio::get_i64(r);
      t.deadline_misses = artio::get_i64(r);
      t.retries = artio::get_i64(r);
      t.latency_ticks = artio::get_i64(r);
      t.queue_wait_ticks = artio::get_i64(r);
      t.backoff_ticks = artio::get_i64(r);
      t.spike_ticks = artio::get_i64(r);
      t.exec_ticks = artio::get_i64(r);
    }
    const std::int32_t nreq = artio::get_i32(r);
    check_count(r, nreq, 64, "request-map");
    for (std::int32_t i = 0; i < nreq; ++i) {
      const RequestId req = artio::get_i64(r);
      svc->task_of_request_[req] = artio::get_i32(r);
    }
    const std::int32_t ninfo = artio::get_i32(r);
    check_count(r, ninfo, 64, "task-info");
    for (std::int32_t i = 0; i < ninfo; ++i) {
      const TaskId task = artio::get_i32(r);
      TaskInfo& info = svc->task_info_[task];
      info.content_hash = r.read(64);
      info.last_use = r.read(64);
      info.origin_request = artio::get_i64(r);
    }
    const std::int32_t nevict = artio::get_i32(r);
    check_count(r, nevict, 64, "eviction");
    svc->eviction_log_.reserve(static_cast<std::size_t>(nevict));
    for (std::int32_t i = 0; i < nevict; ++i) {
      EvictionEvent e;
      e.seq = artio::get_i64(r);
      e.task = artio::get_i32(r);
      e.rect = get_rect(r);
      e.cause = artio::get_i64(r);
      svc->eviction_log_.push_back(e);
    }
    svc->stats_.loads = artio::get_i64(r);
    svc->stats_.unloads = artio::get_i64(r);
    svc->stats_.relocates = artio::get_i64(r);
    svc->stats_.rejected = artio::get_i64(r);
    svc->stats_.failed = artio::get_i64(r);
    svc->stats_.shed = artio::get_i64(r);
    svc->stats_.deadline_misses = artio::get_i64(r);
    svc->stats_.retries = artio::get_i64(r);
    svc->stats_.faults_injected = artio::get_i64(r);
    svc->stats_.latency_spike_ticks = artio::get_i64(r);
    svc->stats_.warm_loads = artio::get_i64(r);
    svc->stats_.cold_loads = artio::get_i64(r);
    svc->stats_.relocates_cached = artio::get_i64(r);
    svc->stats_.relocates_decoded = artio::get_i64(r);
    svc->stats_.batches = artio::get_i64(r);
    svc->stats_.task_evictions = artio::get_i64(r);
    svc->stats_.decode = get_decode_stats(r);
    const std::int32_t nqueue = artio::get_i32(r);
    check_count(r, nqueue, 64, "queue");
    for (std::int32_t i = 0; i < nqueue; ++i) {
      Request q;
      q.id = artio::get_i64(r);
      const std::uint64_t kind = r.read(8);
      if (kind > static_cast<std::uint64_t>(RequestKind::kRelocate)) {
        bad_journal("bad queued request kind");
      }
      q.kind = static_cast<RequestKind>(kind);
      q.stream = get_bitvec(r);
      q.target = artio::get_i64(r);
      q.tenant = artio::get_i32(r);
      q.priority = artio::get_i32(r);
      q.attempt = artio::get_i32(r);
      q.shed = r.read_bit();
      q.submitted_tick = artio::get_i64(r);
      q.not_before = artio::get_i64(r);
      q.retry_tick = artio::get_i64(r);
      q.queue_wait_ticks = artio::get_i64(r);
      q.backoff_ticks = artio::get_i64(r);
      q.spike_ticks = artio::get_i64(r);
      q.exec_ticks = artio::get_i64(r);
      // Wall clock is not part of the contract; restamp on the telemetry
      // clock so the restored request still reports a sane wall latency.
      q.submitted_ns = telem::now_ns();
      svc->queue_.push_back(std::move(q));
    }
    if (!r.at_end()) bad_journal("trailing snapshot bits");
    return svc;
  } catch (const VbsError& e) {
    if (e.code() == VbsErrc::kBadJournal) throw;
    bad_journal(e.what());  // truncation, bad VBS image, ... : corrupt
  } catch (const std::exception& e) {
    bad_journal(e.what());  // inconsistent snapshot (overlapping tasks, ...)
  }
}

void ReconfigService::journal_append(ServiceJournal::Kind kind,
                                     const std::string& payload) {
  try {
    journal_->append(kind, payload);
  } catch (const VbsError&) {
    journal_.reset();  // durability is gone; keep serving from memory
    throw;
  }
}

void ReconfigService::journal_append2(ServiceJournal::Kind k1,
                                      const std::string& p1,
                                      ServiceJournal::Kind k2,
                                      const std::string& p2) {
  try {
    journal_->append2(k1, p1, k2, p2);
  } catch (const VbsError&) {
    journal_.reset();
    throw;
  }
}

void ReconfigService::open_journal(const std::string& dir,
                                   const FaultPlan* io_faults) {
  journal_ = std::make_unique<ServiceJournal>(
      dir, io_faults != nullptr ? *io_faults : FaultPlan(), serialize_open());
}

void ReconfigService::compact_journal() {
  if (!journal_) {
    throw std::logic_error("compact_journal: no journal attached");
  }
  try {
    journal_->compact(serialize_snapshot(), state_fingerprint());
  } catch (const VbsError&) {
    journal_.reset();
    throw;
  }
}

std::unique_ptr<ReconfigService> ReconfigService::recover(
    const std::string& dir, int threads, RecoveryInfo* info) {
  const ServiceJournal::ScanResult sr = ServiceJournal::scan(dir);
  RecoveryInfo ri;
  ri.records = static_cast<long long>(sr.records.size());
  ri.torn_tail = sr.torn_tail;
  ri.journal_bytes = sr.wal_bytes;
  ri.epoch = sr.epoch;

  std::unique_ptr<ReconfigService> svc;
  if (!sr.snapshot_path.empty()) {
    ri.from_snapshot = true;
    std::uint64_t stored_fp = 0;
    const BitVector snap =
        ServiceJournal::read_snapshot(sr.snapshot_path, &stored_fp);
    svc = restore_snapshot(snap, threads);
    if (svc->state_fingerprint() != stored_fp) {
      bad_journal("snapshot fingerprint mismatch");
    }
  } else {
    svc = construct_from_open(sr.records.front().payload, threads);
  }

  // Replay through the public mutators — the same code path as the live
  // run, so every deterministic decision (shedding, faults, deadlines,
  // eviction) reproduces itself.
  for (std::size_t i = 1; i < sr.records.size(); ++i) {
    const ServiceJournal::Record& rec = sr.records[i];
    std::size_t pos = 0;
    switch (rec.kind) {
      case ServiceJournal::Kind::kAdmitLoad: {
        const RequestId id = static_cast<RequestId>(
            ServiceJournal::get_u64(rec.payload, pos));
        const int tenant = static_cast<int>(
            ServiceJournal::get_u32(rec.payload, pos));
        BitVector stream = ServiceJournal::get_bits(rec.payload, pos);
        if (svc->submit_load(std::move(stream), tenant) != id) {
          bad_journal("replayed load got a different request id");
        }
        // The shed decision re-derives deterministically; the journaled
        // companion (same append) must agree — unless it was torn off the
        // tail, which is the one legitimate crash window.
        if (svc->last_shed_ != kNoRequest) {
          if (i + 1 < sr.records.size()) {
            const ServiceJournal::Record& shed = sr.records[i + 1];
            std::size_t spos = 0;
            if (shed.kind != ServiceJournal::Kind::kShed ||
                ServiceJournal::get_u64(shed.payload, spos) !=
                    static_cast<std::uint64_t>(svc->last_shed_)) {
              bad_journal("shed record disagrees with replay");
            }
            ++i;
          }
        } else if (i + 1 < sr.records.size() &&
                   sr.records[i + 1].kind == ServiceJournal::Kind::kShed) {
          bad_journal("shed record without a shed admission");
        }
        ++ri.admits;
        break;
      }
      case ServiceJournal::Kind::kAdmitUnload:
      case ServiceJournal::Kind::kAdmitRelocate: {
        const RequestId id = static_cast<RequestId>(
            ServiceJournal::get_u64(rec.payload, pos));
        const RequestId target = static_cast<RequestId>(
            ServiceJournal::get_u64(rec.payload, pos));
        const int tenant = static_cast<int>(
            ServiceJournal::get_u32(rec.payload, pos));
        const RequestId got =
            rec.kind == ServiceJournal::Kind::kAdmitUnload
                ? svc->submit_unload(target, tenant)
                : svc->submit_relocate(target, tenant);
        if (got != id) {
          bad_journal("replayed request got a different id");
        }
        ++ri.admits;
        break;
      }
      case ServiceJournal::Kind::kSetPriority: {
        const int tenant = static_cast<int>(
            ServiceJournal::get_u32(rec.payload, pos));
        const int priority = static_cast<int>(
            ServiceJournal::get_u32(rec.payload, pos));
        svc->set_tenant_priority(tenant, priority);
        ++ri.admits;
        break;
      }
      case ServiceJournal::Kind::kCommit: {
        const std::uint64_t fp = ServiceJournal::get_u64(rec.payload, pos);
        svc->drain();
        if (svc->state_fingerprint() != fp) {
          bad_journal("commit fingerprint mismatch after replayed drain");
        }
        ++ri.commits;
        break;
      }
      case ServiceJournal::Kind::kShed:
        bad_journal("stray shed record");
      case ServiceJournal::Kind::kOpen:
      case ServiceJournal::Kind::kSnapshotBarrier:
        bad_journal("open/barrier record mid-stream");  // scan enforces too
    }
  }

  // Reattach for continued appends — with no I/O injection: the plan that
  // killed the predecessor must not re-kill recovery's successor.
  svc->journal_ = std::make_unique<ServiceJournal>(
      ServiceJournal::AttachTag{}, dir, sr.epoch);
  if (info != nullptr) *info = ri;
  return svc;
}

}  // namespace vbs
