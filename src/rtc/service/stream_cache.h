// Decoded-stream cache: the paper's decode-cost trade-off amortized across
// tenants.
//
// De-virtualizing a VBS is the expensive half of a load (A* routing per
// connection-list entry); the decoded result — the per-entry routing
// payloads — is position-independent, because a VBS decodes identically at
// any origin (paper Section I: relocation). So the service caches decoded
// payloads keyed by a content hash of the serialized stream: a repeated
// load of the same task skips devirtualization entirely, and a relocation
// copies the cached payload instead of re-routing. Capacity is bounded in
// payload bits with LRU eviction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bitvector.h"
#include "util/fault.h"
#include "vbs/devirtualizer.h"
#include "vbs/vbs_format.h"

namespace vbs {

/// 64-bit content hash of a serialized stream (FNV-1a over the payload
/// words plus the bit length). Identical streams always collide — that is
/// the point; distinct streams colliding is astronomically unlikely and
/// would only mis-share a decode, never corrupt memory.
std::uint64_t stream_content_hash(const BitVector& stream);

/// One devirtualized stream: the parsed image, the decoded routing payload
/// of every entry, and what the decode cost when it actually ran.
struct DecodedStream {
  VbsImage image;
  std::vector<BitVector> payloads;
  DecodeStats decode;

  /// Bits this entry charges against the cache capacity.
  std::size_t footprint_bits() const;
};

/// Serially devirtualizes every entry of a parsed image into a cacheable
/// DecodedStream. Throws std::runtime_error if an entry fails to decode
/// (impossible for encoder-validated streams). The service's batch path
/// does the same work as a flat parallel item list; this is the one-stream
/// form for relocations and tests.
std::shared_ptr<DecodedStream> decode_stream(VbsImage image);

class DecodedStreamCache {
 public:
  /// `capacity_bits` bounds the sum of cached payload footprints; 0
  /// disables caching entirely (every find misses, inserts are dropped).
  explicit DecodedStreamCache(std::size_t capacity_bits);

  /// Looks up a stream by content hash; touches LRU order and counts a hit
  /// or miss. Returned pointer stays valid after eviction (shared).
  std::shared_ptr<const DecodedStream> find(std::uint64_t key);

  /// Inserts a decoded stream, evicting least-recently-used entries until
  /// the footprint fits. Streams larger than the whole capacity are not
  /// cached. Re-inserting an existing key just touches it.
  void insert(std::uint64_t key, std::shared_ptr<const DecodedStream> value);

  std::size_t capacity_bits() const { return capacity_bits_; }
  std::size_t size_bits() const { return size_bits_; }
  std::size_t entries() const { return map_.size(); }

  long long hits() const { return hits_; }
  long long misses() const { return misses_; }
  long long insertions() const { return insertions_; }
  long long evictions() const { return evictions_; }
  long long fault_drops() const { return fault_drops_; }

  /// Installs a deterministic fault plan (util/fault.h): insertions are
  /// then dropped with the plan's cache rate, keyed by a serial insertion
  /// counter — modeling transient cache-memory failure. The service keeps
  /// working (the drop just costs a future re-decode); nullptr disables.
  void set_fault_plan(const FaultPlan* plan) { fault_plan_ = plan; }

  // --- snapshot / recovery hooks (rtc/service/journal.h) ---------------------

  /// Entries in MRU -> LRU order, for snapshots.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const DecodedStream>>>
  entries_mru() const;
  /// Re-adopts a snapshotted entry, bypassing fault rolls and counters.
  /// Call in MRU -> LRU order on an empty cache to rebuild it exactly.
  void restore_entry(std::uint64_t key,
                     std::shared_ptr<const DecodedStream> value);
  std::uint64_t insert_seq() const { return insert_seq_; }
  void restore_counters(long long hits, long long misses, long long insertions,
                        long long evictions, long long fault_drops,
                        std::uint64_t insert_seq) {
    hits_ = hits;
    misses_ = misses;
    insertions_ = insertions;
    evictions_ = evictions;
    fault_drops_ = fault_drops;
    insert_seq_ = insert_seq;
  }

 private:
  struct Node {
    std::uint64_t key;
    std::shared_ptr<const DecodedStream> value;
  };

  void evict_until_fits();

  std::size_t capacity_bits_;
  std::size_t size_bits_ = 0;
  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> map_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long insertions_ = 0;
  long long evictions_ = 0;
  long long fault_drops_ = 0;
  const FaultPlan* fault_plan_ = nullptr;
  std::uint64_t insert_seq_ = 0;
};

}  // namespace vbs
