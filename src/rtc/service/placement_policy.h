// Pluggable placement and eviction policies for the reconfiguration
// service.
//
// The seed controller hardwired one scan (first fit, row-major) into
// RectAllocator::find_free; online workloads want a choice — where a task
// lands determines external fragmentation, and under pressure the service
// must also decide *whom to evict* to make room (the paper's migration /
// eviction scenario, Section V). Policies only read the allocator (O(1)
// rectangle probes via its summed-area table) and are strictly
// deterministic: identical occupancy always yields identical decisions, a
// prerequisite for the service's replay-identical guarantee.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rtc/allocator.h"
#include "util/geometry.h"

namespace vbs {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual const std::string& name() const = 0;
  /// Chooses an origin for a w x h task on the current occupancy, or
  /// nullopt if no free rectangle is large enough.
  virtual std::optional<Point> place(const RectAllocator& alloc, int w,
                                     int h) const = 0;
};

/// Factory: "first_fit" (row-major scan, the seed behaviour), "best_fit"
/// (maximize contact with occupied tiles / the fabric boundary — packs
/// tasks against each other to keep free space contiguous), "skyline"
/// (rest on top of the per-column skyline profile, lowest top edge then
/// least buried area — ignores holes below the skyline, the classic
/// packing trade-off). Throws std::invalid_argument on an unknown name.
std::unique_ptr<PlacementPolicy> make_placement_policy(
    const std::string& name);

/// Names accepted by make_placement_policy.
const std::vector<std::string>& placement_policy_names();

/// A loaded task as the eviction planner sees it.
struct VictimCandidate {
  int task = -1;           ///< controller TaskId
  Rect rect;
  std::uint64_t last_use = 0;  ///< monotone use stamp (service request seq)
};

/// Where to load after evicting `victims` (in eviction order).
struct EvictionPlan {
  Point origin;
  std::vector<int> victims;
};

/// Victim selection for evict-to-fit: chooses the origin whose overlapping
/// tasks are cheapest to evict — minimal evicted area, then least-recently
/// used, then row-major. Deterministic. Returns nullopt only if the task
/// exceeds the fabric outright.
std::optional<EvictionPlan> plan_eviction(
    const RectAllocator& alloc, const std::vector<VictimCandidate>& tasks,
    int w, int h);

}  // namespace vbs
