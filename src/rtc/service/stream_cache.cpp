#include "rtc/service/stream_cache.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "util/error.h"
#include "util/telemetry.h"

namespace vbs {

std::uint64_t stream_content_hash(const BitVector& stream) {
  // FNV-1a over the 64-bit words, then the bit length (trailing padding
  // bits inside the last word are always zero, so words + length identify
  // the content exactly).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (const std::uint64_t w : stream.words()) mix(w);
  mix(static_cast<std::uint64_t>(stream.size()));
  return h;
}

std::shared_ptr<DecodedStream> decode_stream(VbsImage image) {
  auto out = std::make_shared<DecodedStream>();
  out->image = std::move(image);
  const VbsImage& img = out->image;
  out->payloads.resize(img.entries.size());
  RegionDecoderCache cache(img.spec, img.cluster, img.task_w, img.task_h);
  for (std::size_t i = 0; i < img.entries.size(); ++i) {
    const VbsEntry& e = img.entries[i];
    if (!cache.decoder_for(e.cx, e.cy)
             .decode_entry(e, out->payloads[i], &out->decode)) {
      throw VbsError(VbsErrc::kDecodeFailed,
                     "decode_stream: entry " + std::to_string(e.cx) +
                               "," + std::to_string(e.cy) +
                               " failed to decode");
    }
  }
  return out;
}

std::size_t DecodedStream::footprint_bits() const {
  std::size_t bits = 0;
  for (const BitVector& p : payloads) bits += p.size();
  return bits;
}

DecodedStreamCache::DecodedStreamCache(std::size_t capacity_bits)
    : capacity_bits_(capacity_bits) {}

std::shared_ptr<const DecodedStream> DecodedStreamCache::find(
    std::uint64_t key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    telem::counter_add("rtc.cache.miss");
    return nullptr;
  }
  ++hits_;
  telem::counter_add("rtc.cache.hit");
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->value;
}

void DecodedStreamCache::insert(std::uint64_t key,
                                std::shared_ptr<const DecodedStream> value) {
  if (fault_plan_ != nullptr && fault_plan_->cache_drops(insert_seq_++)) {
    ++fault_drops_;
    telem::counter_add("rtc.cache.fault_drop");
    return;
  }
  if (const auto it = map_.find(key); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  const std::size_t bits = value->footprint_bits();
  if (bits > capacity_bits_) return;  // would evict everything and still miss
  lru_.push_front({key, std::move(value)});
  map_.emplace(key, lru_.begin());
  size_bits_ += bits;
  ++insertions_;
  telem::counter_add("rtc.cache.insert");
  evict_until_fits();
}

std::vector<std::pair<std::uint64_t, std::shared_ptr<const DecodedStream>>>
DecodedStreamCache::entries_mru() const {
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const DecodedStream>>>
      out;
  out.reserve(lru_.size());
  for (const Node& n : lru_) out.emplace_back(n.key, n.value);
  return out;
}

void DecodedStreamCache::restore_entry(
    std::uint64_t key, std::shared_ptr<const DecodedStream> value) {
  if (map_.count(key) != 0) {
    throw std::logic_error("restore_entry: duplicate key");
  }
  size_bits_ += value->footprint_bits();
  lru_.push_back({key, std::move(value)});  // MRU -> LRU call order
  map_.emplace(key, std::prev(lru_.end()));
}

void DecodedStreamCache::evict_until_fits() {
  while (size_bits_ > capacity_bits_ && !lru_.empty()) {
    const Node& victim = lru_.back();
    size_bits_ -= victim.value->footprint_bits();
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
    telem::counter_add("rtc.cache.evict");
  }
}

}  // namespace vbs
