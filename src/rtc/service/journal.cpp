#include "rtc/service/journal.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "flow/artifact_io.h"
#include "util/error.h"
#include "util/telemetry.h"
#include "vbs/vbs_file.h"

namespace vbs {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'V', 'J', 'L', '1'};
constexpr char kWalFile[] = "journal.wal";
constexpr char kSnapPrefix[] = "snap.";
constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(ServiceJournal::Kind::kCommit);
// 4-byte length + kind byte + 8-byte check: the smallest complete record.
constexpr std::size_t kRecordOverhead = 13;

[[noreturn]] void bad(const std::string& what) {
  throw VbsError(VbsErrc::kBadJournal, "journal: " + what);
}

std::uint64_t record_check(std::uint8_t kind, const char* payload,
                           std::size_t len) {
  std::uint64_t h = fnv1a64(&kind, 1);
  h = fnv1a64(payload, len, h);
  return hash_u64(h, len);
}

std::string frame_record(ServiceJournal::Kind kind,
                         const std::string& payload) {
  std::string out;
  out.reserve(kRecordOverhead + payload.size());
  ServiceJournal::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(kind));
  out.append(payload);
  ServiceJournal::put_u64(out, record_check(static_cast<std::uint8_t>(kind),
                                            payload.data(), payload.size()));
  return out;
}

/// Parses the epoch suffix of a "snap.<epoch>" filename; -1 if not one.
long long snap_epoch_of(const std::string& name) {
  const std::string prefix = kSnapPrefix;
  if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix)) {
    return -1;
  }
  long long epoch = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    epoch = epoch * 10 + (name[i] - '0');
  }
  return epoch;
}

}  // namespace

// --- payload field helpers ---------------------------------------------------

void ServiceJournal::put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ServiceJournal::put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void ServiceJournal::put_bits(std::string& out, const BitVector& bits) {
  put_u64(out, bits.size());
  out.append(pack_bits(bits));
}

void ServiceJournal::put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint32_t ServiceJournal::get_u32(const std::string& p, std::size_t& pos) {
  if (p.size() - pos < 4 || pos > p.size()) bad("payload truncated");
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(p[pos + static_cast<std::size_t>(i)]);
  }
  pos += 4;
  return v;
}

std::uint64_t ServiceJournal::get_u64(const std::string& p, std::size_t& pos) {
  if (p.size() - pos < 8 || pos > p.size()) bad("payload truncated");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(p[pos + static_cast<std::size_t>(i)]);
  }
  pos += 8;
  return v;
}

BitVector ServiceJournal::get_bits(const std::string& p, std::size_t& pos) {
  const std::uint64_t nbits = get_u64(p, pos);
  const std::uint64_t nbytes = nbits / 8 + (nbits % 8 != 0 ? 1 : 0);
  if (p.size() - pos < nbytes) bad("payload truncated");
  const std::string bytes = p.substr(pos, static_cast<std::size_t>(nbytes));
  pos += static_cast<std::size_t>(nbytes);
  return unpack_bits(bytes, static_cast<std::size_t>(nbits));
}

std::string ServiceJournal::get_str(const std::string& p, std::size_t& pos) {
  const std::uint32_t n = get_u32(p, pos);
  if (p.size() - pos < n) bad("payload truncated");
  std::string s = p.substr(pos, n);
  pos += n;
  return s;
}

// --- lifecycle ---------------------------------------------------------------

ServiceJournal::ServiceJournal(const std::string& dir, const FaultPlan& plan,
                               const std::string& open_payload)
    : dir_(dir), io_plan_(plan), inj_(&io_plan_) {
  fs::create_directories(dir_);
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name == kWalFile || snap_epoch_of(name) >= 0 ||
        entry.path().extension() == ".tmp") {
      fs::remove(entry.path());
    }
  }
  std::string bytes(kMagic, sizeof kMagic);
  bytes.append(frame_record(Kind::kOpen, open_payload));
  AtomicFile wal(wal_path(), &inj_);
  wal.write(bytes);
  wal.commit();
}

ServiceJournal::ServiceJournal(AttachTag, const std::string& dir,
                               std::uint64_t epoch)
    : dir_(dir), io_plan_(), inj_(&io_plan_), epoch_(epoch) {}

std::string ServiceJournal::wal_path() const { return dir_ + "/" + kWalFile; }

std::string ServiceJournal::snapshot_path(std::uint64_t epoch) const {
  return dir_ + "/" + kSnapPrefix + std::to_string(epoch);
}

// --- appends -----------------------------------------------------------------

void ServiceJournal::append_raw(const std::string& bytes) {
  TELEM_SPAN("journal", "append");
  telem::counter_add("journal.append.ops");
  telem::counter_add("journal.append.bytes",
                     static_cast<long long>(bytes.size()));
  const std::uint64_t before = fs::file_size(wal_path());
  for (int attempt = 0;; ++attempt) {
    try {
      append_bytes(wal_path(), bytes, &inj_);
      return;
    } catch (const VbsError&) {
      // Injected write/sync failure: drop whatever landed so the WAL stays
      // a clean prefix of complete records, then retry once (transient I/O
      // error semantics). CrashInjected is not a VbsError and propagates
      // with the torn tail on disk, exactly as real death would leave it.
      std::error_code ec;
      fs::resize_file(wal_path(), before, ec);
      telem::counter_add("journal.append.retries");
      if (attempt == 1) throw;
    }
  }
}

void ServiceJournal::append(Kind kind, const std::string& payload) {
  append_raw(frame_record(kind, payload));
}

void ServiceJournal::append2(Kind k1, const std::string& p1, Kind k2,
                             const std::string& p2) {
  append_raw(frame_record(k1, p1) + frame_record(k2, p2));
}

void ServiceJournal::compact(const BitVector& snapshot,
                             std::uint64_t fingerprint) {
  TELEM_SPAN("journal", "compact");
  telem::counter_add("journal.compactions");
  const std::uint64_t old_epoch = epoch_;
  const std::uint64_t new_epoch = epoch_ + 1;
  {
    // The snapshot artifact and the WAL reset both go through AtomicFile
    // with the journal's own injector, so every compaction step is a
    // numbered crash site. Crash windows all recover: until the WAL rename
    // lands, the old WAL (which fully covers the snapshotted state) is the
    // recovery base and a newer snap is an orphan scan() cleans up.
    ScopedIoFaults scope(&inj_);
    write_artifact_file(snapshot_path(new_epoch),
                        ArtifactStage::kServiceSnapshot, fingerprint,
                        snapshot);
  }
  std::string bytes(kMagic, sizeof kMagic);
  std::string barrier;
  put_u64(barrier, new_epoch);
  bytes.append(frame_record(Kind::kSnapshotBarrier, barrier));
  AtomicFile wal(wal_path(), &inj_);
  wal.write(bytes);
  wal.commit();
  epoch_ = new_epoch;
  if (old_epoch != 0) checked_remove(snapshot_path(old_epoch), &inj_);
}

// --- scan --------------------------------------------------------------------

ServiceJournal::ScanResult ServiceJournal::scan(const std::string& dir) {
  const std::string path = dir + "/" + kWalFile;
  std::string data;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is) bad("missing journal.wal in " + dir);
    std::ostringstream ss;
    ss << is.rdbuf();
    data = ss.str();
  }
  if (data.size() < sizeof kMagic ||
      data.compare(0, sizeof kMagic, kMagic, sizeof kMagic) != 0) {
    bad("bad magic: " + path);
  }

  ScanResult out;
  std::size_t pos = sizeof kMagic;
  std::size_t last_good = pos;
  while (pos < data.size()) {
    if (data.size() - pos < kRecordOverhead) break;  // torn tail
    std::size_t cursor = pos;
    const std::uint32_t len = get_u32(data, cursor);
    if (data.size() - cursor < static_cast<std::size_t>(len) + 9) {
      break;  // record extends past EOF: torn tail
    }
    const std::uint8_t kind = static_cast<std::uint8_t>(data[cursor++]);
    const char* payload = data.data() + cursor;
    cursor += len;
    const std::uint64_t stored = get_u64(data, cursor);
    // A complete record with a bad check is corruption, not a torn append:
    // appends only ever truncate bytes off the end.
    if (stored != record_check(kind, payload, len)) {
      bad("record checksum mismatch at offset " + std::to_string(pos));
    }
    if (kind > kMaxKind) {
      bad("unknown record kind at offset " + std::to_string(pos));
    }
    out.records.push_back(
        Record{static_cast<Kind>(kind), std::string(payload, len)});
    pos = cursor;
    last_good = pos;
  }
  if (last_good < data.size()) {
    out.torn_tail = true;
    std::error_code ec;
    fs::resize_file(path, last_good, ec);
  }
  out.wal_bytes = last_good;

  if (out.records.empty()) bad("no records: " + path);
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    const Kind k = out.records[i].kind;
    const bool head = k == Kind::kOpen || k == Kind::kSnapshotBarrier;
    if (i == 0 && !head) bad("first record is not open/barrier");
    if (i != 0 && head) bad("open/barrier record mid-stream");
  }
  if (out.records.front().kind == Kind::kSnapshotBarrier) {
    std::size_t p = 0;
    out.epoch = get_u64(out.records.front().payload, p);
    if (out.epoch == 0) bad("barrier epoch 0");
    const std::string snap =
        dir + "/" + kSnapPrefix + std::to_string(out.epoch);
    if (!fs::exists(snap)) bad("missing snapshot: " + snap);
    out.snapshot_path = snap;
  }

  // Orphan cleanup: "*.tmp" from interrupted atomic writes, and snapshots
  // the current WAL does not reference (either side of a compaction crash).
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (entry.path().extension() == ".tmp") {
      fs::remove(entry.path());
      continue;
    }
    const long long epoch = snap_epoch_of(name);
    if (epoch >= 0 && static_cast<std::uint64_t>(epoch) != out.epoch) {
      fs::remove(entry.path());
    }
  }
  return out;
}

BitVector ServiceJournal::read_snapshot(const std::string& path,
                                        std::uint64_t* fingerprint_out) {
  try {
    return read_artifact_file(path, ArtifactStage::kServiceSnapshot, nullptr,
                              fingerprint_out);
  } catch (const ArtifactError& e) {
    bad(std::string("snapshot: ") + e.what());
  }
}

}  // namespace vbs
