// Multi-tenant reconfiguration service: the online layer above
// ReconfigController.
//
// The controller is a synchronous, single-request device model; a chip
// serving many tenants sees *queues* of load / unload / relocate requests.
// ReconfigService adds:
//
//   admit   submit_* enqueues a request and returns immediately with an id.
//           When queue_limit is set, admission is bounded: a load arriving
//           at a full queue sheds either itself or the newest queued load
//           of strictly lower priority (typed kShed / kQueueFull result),
//           so a flood from one tenant cannot starve the others.
//   decode  drain() walks the queue in priority order (stable within a
//           priority, so the default configuration is plain admission
//           order); maximal runs of consecutive loads are devirtualized as
//           one batch on the shared ThreadPool (entries of all batched
//           streams are one flat work list — decoding is pure, so
//           scheduling never affects results). Streams already in the
//           DecodedStreamCache (or duplicated within the batch) skip
//           devirtualization entirely.
//   commit  requests complete strictly in processing order against the
//           placement policy; when a load does not fit and evict_to_fit is
//           on, the eviction planner clears the cheapest region and the
//           victims are appended to the eviction log. Hostile streams
//           (malformed, undecodable, wrong architecture) complete kFailed
//           with a typed VbsErrc — they never tear down the drain loop.
//   evict   both layers are bounded: the stream cache by capacity_bits
//           (LRU), the fabric by evict-to-fit victim selection.
//   faults  an injected FaultPlan (util/fault.h) makes decode failures,
//           allocation failures, cache drops and latency spikes part of
//           the model: transient injected faults are retried with
//           exponential backoff up to retry_limit, then complete kFailed
//           with kFaultInjected.
//
// Time is modeled in integer ticks (now_ticks()): each processed request
// costs one tick, injected latency spikes cost spike_ticks, and a retry
// backs off retry_backoff_ticks << (attempt-1). Deadlines (deadline_ticks)
// are checked against this clock, never the wall clock, so deadline
// misses are machine-independent and replayable.
//
// Determinism: for a fixed request sequence and fault plan the final
// config_memory(), all task ids, the eviction log, every status, every
// latency tick count and every counter except wall-clock seconds are
// byte-identical at any thread count — decode is pure per entry, and
// every decision (placement, eviction, cache order, shedding, fault
// rolls, deadlines) happens serially in processing order keyed by logical
// sequence numbers. A trace therefore replays identically at threads 1
// or 8 (tests/test_service.cpp holds this as a hard invariant, with and
// without a fault plan).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rtc/controller.h"
#include "rtc/service/journal.h"
#include "rtc/service/placement_policy.h"
#include "rtc/service/stream_cache.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace vbs {

using RequestId = long long;
inline constexpr RequestId kNoRequest = -1;

enum class RequestKind { kLoad, kUnload, kRelocate };
enum class RequestStatus {
  kQueued,
  kDone,      ///< committed (for relocate: possibly a no-op)
  kRejected,  ///< no placement even after eviction, or target task gone
  kFailed,    ///< malformed stream, decode failure, or exhausted retries
  kShed,      ///< dropped at admission: queue full, outprioritized
  kDeadline,  ///< expired before processing (deadline_ticks exceeded)
};

/// Stable display name ("done", "shed", ...) for logs and benches.
const char* to_string(RequestStatus s);

struct RequestResult {
  RequestId request = kNoRequest;
  RequestKind kind = RequestKind::kLoad;
  RequestStatus status = RequestStatus::kQueued;
  TaskId task = kNoTask;  ///< task created (load) or affected
  Rect rect;              ///< final region of the task (load/relocate)
  int tenant = 0;
  int priority = 0;         ///< tenant priority captured at submit
  int attempts = 1;         ///< 1 + transient-fault retries consumed
  bool cache_hit = false;   ///< decode skipped (cache or batch duplicate)
  int evicted_tasks = 0;    ///< evict-to-fit victims this request caused
  VbsErrc code = VbsErrc::kNone;  ///< typed cause when not kDone
  long long latency_ticks = 0;    ///< submit -> completion, modeled ticks
  /// Latency decomposition on the modeled clock. The identity
  ///   latency_ticks == queue_wait_ticks + backoff_ticks
  ///                    + spike_ticks + exec_ticks
  /// holds exactly for every result (shed requests spend their whole life
  /// as queue wait; deadline expiries have no exec tick for the expired
  /// attempt), so the phases tile the request's lifetime — the trace
  /// export lays them out as adjacent spans on the tick timebase.
  long long queue_wait_ticks = 0;  ///< submit -> first processing
  long long backoff_ticks = 0;     ///< retry scheduling -> retry release
  long long spike_ticks = 0;       ///< injected latency spikes served
  long long exec_ticks = 0;        ///< one per attempt actually processed
  double latency_seconds = 0.0;   ///< submit -> commit wall time
  double decode_seconds = 0.0;    ///< devirtualization time spent on it
  std::string error;
};

struct ServiceStats {
  long long loads = 0, unloads = 0, relocates = 0;
  long long rejected = 0, failed = 0;
  /// Overload semantics: admissions shed, deadline expiries, transient
  /// fault retries, injected faults seen, modeled spike ticks served.
  long long shed = 0, deadline_misses = 0, retries = 0;
  long long faults_injected = 0, latency_spike_ticks = 0;
  /// Load requests that skipped devirtualization vs paid for it.
  long long warm_loads = 0, cold_loads = 0;
  /// Relocations served from cached payloads vs re-decoded.
  long long relocates_cached = 0, relocates_decoded = 0;
  long long batches = 0;         ///< parallel decode batches run
  long long task_evictions = 0;  ///< evict-to-fit unloads
  /// Devirtualization actually performed by the service (batch decodes and
  /// uncached relocations); cache hits add nothing here.
  DecodeStats decode;
};

/// Per-tenant slice of the service counters (QoS accounting).
struct TenantStats {
  int priority = 0;
  long long submitted = 0;
  long long done = 0, rejected = 0, failed = 0;
  long long shed = 0, deadline_misses = 0, retries = 0;
  /// Tick sums over this tenant's completed results: the per-tenant
  /// latency breakdown. latency_ticks == queue_wait + backoff + spike +
  /// exec, summed over results, by the RequestResult identity.
  long long latency_ticks = 0;
  long long queue_wait_ticks = 0, backoff_ticks = 0;
  long long spike_ticks = 0, exec_ticks = 0;
};

/// One evict-to-fit victim, in eviction order.
struct EvictionEvent {
  long long seq = 0;  ///< monotone across the service lifetime
  TaskId task = kNoTask;
  Rect rect;
  RequestId cause = kNoRequest;  ///< the load that needed the room
};

struct ServiceOptions {
  /// ThreadPool participants for batch devirtualization (1 = serial).
  int threads = 1;
  /// DecodedStreamCache capacity in payload bits; 0 disables caching.
  std::size_t cache_capacity_bits = std::size_t{64} << 20;
  /// "first_fit", "best_fit" or "skyline" (placement_policy.h).
  std::string policy = "first_fit";
  /// Evict least-valuable tasks when a load does not fit.
  bool evict_to_fit = true;
  /// Max consecutive load requests devirtualized as one batch.
  int max_batch = 16;
  /// Max load requests queued at once; 0 = unbounded (no shedding).
  std::size_t queue_limit = 0;
  /// Max modeled ticks a request may wait before processing; 0 = none.
  long long deadline_ticks = 0;
  /// Transient injected faults are retried this many times before kFailed.
  int retry_limit = 2;
  /// Base backoff in modeled ticks; doubles per attempt.
  long long retry_backoff_ticks = 1;
  /// Deterministic fault plan; default (all rates 0) injects nothing.
  FaultPlan faults;
};

class ReconfigService {
 public:
  ReconfigService(const ArchSpec& spec, int width, int height,
                  ServiceOptions opts = {});

  /// Enqueues a load of a serialized VBS on behalf of `tenant`. May shed
  /// (this request or a lower-priority queued load) when queue_limit is
  /// reached; the shed request still yields a kShed result from drain().
  RequestId submit_load(BitVector stream, int tenant = 0);
  /// Enqueues an unload/relocate of the task created by load request
  /// `load_request` (resolved at commit time; tolerant of the task having
  /// been evicted meanwhile — the request then completes kRejected).
  /// Never shed: they release capacity rather than consume it.
  RequestId submit_unload(RequestId load_request, int tenant = 0);
  RequestId submit_relocate(RequestId load_request, int tenant = 0);

  /// QoS weight for a tenant's future submissions (default 0; higher wins
  /// both queue admission and drain order).
  void set_tenant_priority(int tenant, int priority);

  std::size_t pending() const { return queue_.size(); }

  /// Processes the whole queue (including retries it spawns); returns one
  /// result per request — shed and expired ones included — in admission
  /// order.
  std::vector<RequestResult> drain();

  /// Task created by a completed load request, or kNoTask if the request
  /// failed / was rejected / the task is gone again.
  TaskId task_of(RequestId load_request) const;

  const ReconfigController& controller() const { return rtc_; }
  const DecodedStreamCache& cache() const { return cache_; }
  const ServiceStats& stats() const { return stats_; }
  /// Per-tenant counters, keyed by tenant id (created lazily on first
  /// submit or set_tenant_priority).
  const std::map<int, TenantStats>& tenant_stats() const { return tenants_; }
  const std::vector<EvictionEvent>& eviction_log() const {
    return eviction_log_;
  }

  /// The modeled clock: ticks consumed by all processing so far.
  long long now_ticks() const { return now_ticks_; }

  /// The id the next submit_* will be assigned (ids are sequential from
  /// 0). The RPC server hands this to its admin session at handshake so a
  /// wire client can predict service ids by counting its own submits.
  RequestId next_request_id() const { return next_request_; }
  /// Non-shed load requests currently queued (the queue_limit population).
  std::size_t live_loads() const { return live_loads_; }

  /// External fragmentation of the fabric right now: 1 - largest free
  /// rectangle / total free area (0 when empty or unfragmented).
  double fragmentation() const;

  const ServiceOptions& options() const { return opts_; }

  // --- durability (rtc/service/journal.h) ------------------------------------
  //
  // With a journal attached, every mutation (submit_*, set_tenant_priority,
  // a non-empty drain) is applied in memory and then appended as a
  // checksummed WAL record; recover(dir) replays the durable prefix onto
  // the last snapshot and is byte-identical — config memory, task ids,
  // eviction log, tenant stats, modeled clock — to the uninterrupted run
  // at any thread count (state_fingerprint covers exactly that contract).

  /// What recover() found and replayed.
  struct RecoveryInfo {
    long long admits = 0;   ///< admit/priority records replayed
    long long commits = 0;  ///< drain commits replayed
    long long records = 0;  ///< total WAL records, open/barrier included
    bool torn_tail = false; ///< an incomplete trailing record was dropped
    bool from_snapshot = false;
    std::uint64_t epoch = 0;
    std::uint64_t journal_bytes = 0;  ///< WAL size after truncation
  };

  /// Attaches a fresh write-ahead journal rooted at `dir` (the directory
  /// is created; stale journal files in it are removed). Must be called on
  /// a freshly-constructed service: the journal's base record captures the
  /// service *configuration*, and pre-existing state would not be replayed.
  /// `io_faults` is the journal's own I/O fault plan — deliberately
  /// distinct from options().faults (the model plan), so recovery can
  /// reattach without re-injecting the crash that killed its predecessor;
  /// nullptr injects nothing. On a journal I/O failure the failed append
  /// is truncated away, the journal detaches (journaled() turns false) and
  /// the typed error is rethrown — the in-memory operation stays applied.
  void open_journal(const std::string& dir,
                    const FaultPlan* io_faults = nullptr);
  /// Snapshot + truncate compaction (journal.h). Requires journaled().
  void compact_journal();
  bool journaled() const { return journal_ != nullptr; }
  /// Journal I/O ops so far — the crash-plan sweep bound. 0 when detached.
  long long journal_io_ops() const {
    return journal_ ? journal_->io_ops() : 0;
  }

  /// Rebuilds a service from a journal directory: restores the snapshot
  /// (if any), replays the WAL, verifies every commit fingerprint, drops a
  /// torn tail, and reattaches the journal for continued appends (with no
  /// I/O injection). `threads` overrides the journaled thread count when
  /// > 0 — recovered state is thread-count-invariant by the determinism
  /// contract. Throws VbsError{kBadJournal} on structural corruption.
  static std::unique_ptr<ReconfigService> recover(const std::string& dir,
                                                  int threads = 0,
                                                  RecoveryInfo* info = nullptr);

  /// Order-sensitive fingerprint of every replay-deterministic piece of
  /// state: configuration memory, tasks and their records, the decoded-
  /// stream cache (keys, order, counters), queue contents, tenant stats,
  /// eviction log, all serial counters and the modeled clock. Wall-clock
  /// fields and thread counts are excluded. This is the value kCommit
  /// records carry and the crash harness compares.
  std::uint64_t state_fingerprint() const;

 private:
  struct Request {
    RequestId id = kNoRequest;
    RequestKind kind = RequestKind::kLoad;
    BitVector stream;               ///< loads only
    RequestId target = kNoRequest;  ///< unload/relocate: the load request
    int tenant = 0;
    int priority = 0;           ///< captured at submit time
    int attempt = 1;            ///< 1 on admission, +1 per retry
    bool shed = false;          ///< dropped at admission, result pending
    long long submitted_tick = 0;
    long long not_before = 0;   ///< retry backoff release tick
    long long retry_tick = 0;   ///< tick the latest retry was scheduled at
    /// Phase accumulators carried across retry attempts; finish() copies
    /// them onto the result (see RequestResult for the tick identity).
    long long queue_wait_ticks = 0, backoff_ticks = 0;
    long long spike_ticks = 0, exec_ticks = 0;
    std::uint64_t submitted_ns = 0;  ///< telemetry clock, wall latency only
  };

  /// Loaded-task bookkeeping the controller does not track.
  struct TaskInfo {
    std::uint64_t content_hash = 0;
    std::uint64_t last_use = 0;  ///< request sequence, for victim selection
    RequestId origin_request = kNoRequest;
  };

  Request make_request(RequestKind kind, int tenant);
  /// Bounded admission: sheds the newest lowest-priority queued load (or
  /// the incoming one) when the live-load count hits queue_limit.
  void admit_load(Request req);
  void shed_request(Request& req);

  void process_load_batch(const std::vector<Request*>& batch,
                          std::vector<RequestResult>& out);
  void process_unload(Request& req, std::vector<RequestResult>& out);
  void process_relocate(Request& req, std::vector<RequestResult>& out);
  /// Chooses an origin, evicting victims if allowed; fills result's
  /// eviction fields. Returns nullopt when the load must be rejected.
  std::optional<Point> admit_placement(int w, int h, RequestId cause,
                                       RequestResult& res);
  void forget_task(TaskId id);
  RequestResult make_result(const Request& req) const;
  /// Stamps latency, folds the result into the per-tenant counters and
  /// appends it.
  void finish(const Request& req, RequestResult res,
              std::vector<RequestResult>& out);
  /// Advances the modeled clock for one processed request (backoff
  /// release, injected spike, the one-tick service cost) and attributes
  /// the elapsed ticks to the request's phase accumulators. Returns false
  /// — after emitting the kDeadline result — when the request expired.
  bool tick_and_check_deadline(Request& req,
                               std::vector<RequestResult>& out);
  /// Requeues a transient-fault victim for retry; returns false (caller
  /// emits the permanent kFailed result) when retries are exhausted.
  bool schedule_retry(const Request& req);

  /// Full service configuration (arch, fabric, options) — the journal's
  /// kOpen payload and the head of every snapshot.
  std::string serialize_open() const;
  /// Whole-state snapshot payload (everything state_fingerprint covers,
  /// plus the bulk data — config memory, task images, cache payloads —
  /// needed to rebuild it). Wall-clock fields are zeroed.
  BitVector serialize_snapshot() const;
  /// Rebuilds a service from a snapshot payload (static: the payload's
  /// open section decides the construction parameters).
  static std::unique_ptr<ReconfigService> restore_snapshot(
      const BitVector& snapshot, int threads);
  static std::unique_ptr<ReconfigService> construct_from_open(
      const std::string& open_payload, int threads);
  /// Appends to the journal, detaching it on a (typed) I/O failure.
  void journal_append(ServiceJournal::Kind kind, const std::string& payload);
  void journal_append2(ServiceJournal::Kind k1, const std::string& p1,
                       ServiceJournal::Kind k2, const std::string& p2);

  ReconfigController rtc_;
  ServiceOptions opts_;
  std::unique_ptr<PlacementPolicy> policy_;
  DecodedStreamCache cache_;
  ThreadPool pool_;

  std::deque<Request> queue_;
  std::size_t live_loads_ = 0;  ///< non-shed load requests in queue_
  RequestId next_request_ = 0;
  std::uint64_t use_seq_ = 0;
  long long now_ticks_ = 0;
  std::map<int, int> tenant_priority_;
  std::map<int, TenantStats> tenants_;
  std::map<RequestId, TaskId> task_of_request_;
  std::map<TaskId, TaskInfo> task_info_;
  std::vector<EvictionEvent> eviction_log_;
  ServiceStats stats_;
  /// Request shed by the most recent submit_load (kNoRequest if none):
  /// what the journal's kShed companion record asserts on replay.
  RequestId last_shed_ = kNoRequest;
  std::unique_ptr<ServiceJournal> journal_;
};

}  // namespace vbs
