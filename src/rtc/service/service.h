// Multi-tenant reconfiguration service: the online layer above
// ReconfigController.
//
// The controller is a synchronous, single-request device model; a chip
// serving many tenants sees *queues* of load / unload / relocate requests.
// ReconfigService adds:
//
//   admit   submit_* enqueues a request and returns immediately with an id.
//   decode  drain() walks the queue in admission order; maximal runs of
//           consecutive loads are devirtualized as one batch on the shared
//           ThreadPool (entries of all batched streams are one flat work
//           list — decoding is pure, so scheduling never affects results).
//           Streams already in the DecodedStreamCache (or duplicated
//           within the batch) skip devirtualization entirely.
//   commit  requests complete strictly in admission order against the
//           placement policy; when a load does not fit and evict_to_fit is
//           on, the eviction planner clears the cheapest region and the
//           victims are appended to the eviction log.
//   evict   both layers are bounded: the stream cache by capacity_bits
//           (LRU), the fabric by evict-to-fit victim selection.
//
// Determinism: for a fixed request sequence the final config_memory(), all
// task ids, the eviction log and every counter except wall-clock times are
// byte-identical at any thread count — decode is pure per entry, and every
// decision (placement, eviction, cache order) happens serially in
// admission order. A trace therefore replays identically at threads 1 or 8
// (tests/test_service.cpp holds this as a hard invariant).
#pragma once

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rtc/controller.h"
#include "rtc/service/placement_policy.h"
#include "rtc/service/stream_cache.h"
#include "util/thread_pool.h"

namespace vbs {

using RequestId = long long;
inline constexpr RequestId kNoRequest = -1;

enum class RequestKind { kLoad, kUnload, kRelocate };
enum class RequestStatus {
  kQueued,
  kDone,      ///< committed (for relocate: possibly a no-op)
  kRejected,  ///< no placement even after eviction, or target task gone
  kFailed,    ///< malformed stream or decode failure
};

struct RequestResult {
  RequestId request = kNoRequest;
  RequestKind kind = RequestKind::kLoad;
  RequestStatus status = RequestStatus::kQueued;
  TaskId task = kNoTask;  ///< task created (load) or affected
  Rect rect;              ///< final region of the task (load/relocate)
  bool cache_hit = false;   ///< decode skipped (cache or batch duplicate)
  int evicted_tasks = 0;    ///< evict-to-fit victims this request caused
  double latency_seconds = 0.0;  ///< submit -> commit wall time
  double decode_seconds = 0.0;   ///< devirtualization time spent on it
  std::string error;
};

struct ServiceStats {
  long long loads = 0, unloads = 0, relocates = 0;
  long long rejected = 0, failed = 0;
  /// Load requests that skipped devirtualization vs paid for it.
  long long warm_loads = 0, cold_loads = 0;
  /// Relocations served from cached payloads vs re-decoded.
  long long relocates_cached = 0, relocates_decoded = 0;
  long long batches = 0;         ///< parallel decode batches run
  long long task_evictions = 0;  ///< evict-to-fit unloads
  /// Devirtualization actually performed by the service (batch decodes and
  /// uncached relocations); cache hits add nothing here.
  DecodeStats decode;
};

/// One evict-to-fit victim, in eviction order.
struct EvictionEvent {
  long long seq = 0;  ///< monotone across the service lifetime
  TaskId task = kNoTask;
  Rect rect;
  RequestId cause = kNoRequest;  ///< the load that needed the room
};

struct ServiceOptions {
  /// ThreadPool participants for batch devirtualization (1 = serial).
  int threads = 1;
  /// DecodedStreamCache capacity in payload bits; 0 disables caching.
  std::size_t cache_capacity_bits = std::size_t{64} << 20;
  /// "first_fit", "best_fit" or "skyline" (placement_policy.h).
  std::string policy = "first_fit";
  /// Evict least-valuable tasks when a load does not fit.
  bool evict_to_fit = true;
  /// Max consecutive load requests devirtualized as one batch.
  int max_batch = 16;
};

class ReconfigService {
 public:
  ReconfigService(const ArchSpec& spec, int width, int height,
                  ServiceOptions opts = {});

  /// Enqueues a load of a serialized VBS.
  RequestId submit_load(BitVector stream);
  /// Enqueues an unload/relocate of the task created by load request
  /// `load_request` (resolved at commit time; tolerant of the task having
  /// been evicted meanwhile — the request then completes kRejected).
  RequestId submit_unload(RequestId load_request);
  RequestId submit_relocate(RequestId load_request);

  std::size_t pending() const { return queue_.size(); }

  /// Processes the whole queue; returns one result per request, in
  /// admission order.
  std::vector<RequestResult> drain();

  /// Task created by a completed load request, or kNoTask if the request
  /// failed / was rejected / the task is gone again.
  TaskId task_of(RequestId load_request) const;

  const ReconfigController& controller() const { return rtc_; }
  const DecodedStreamCache& cache() const { return cache_; }
  const ServiceStats& stats() const { return stats_; }
  const std::vector<EvictionEvent>& eviction_log() const {
    return eviction_log_;
  }

  /// External fragmentation of the fabric right now: 1 - largest free
  /// rectangle / total free area (0 when empty or unfragmented).
  double fragmentation() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    RequestId id = kNoRequest;
    RequestKind kind = RequestKind::kLoad;
    BitVector stream;               ///< loads only
    RequestId target = kNoRequest;  ///< unload/relocate: the load request
    Clock::time_point submitted;
  };

  /// Loaded-task bookkeeping the controller does not track.
  struct TaskInfo {
    std::uint64_t content_hash = 0;
    std::uint64_t last_use = 0;  ///< request sequence, for victim selection
    RequestId origin_request = kNoRequest;
  };

  void process_load_batch(const std::vector<Request*>& batch,
                          std::vector<RequestResult>& out);
  void process_unload(const Request& req, std::vector<RequestResult>& out);
  void process_relocate(const Request& req, std::vector<RequestResult>& out);
  /// Chooses an origin, evicting victims if allowed; fills result's
  /// eviction fields. Returns nullopt when the load must be rejected.
  std::optional<Point> admit_placement(int w, int h, RequestId cause,
                                       RequestResult& res);
  void forget_task(TaskId id);
  RequestResult make_result(const Request& req) const;

  ReconfigController rtc_;
  ServiceOptions opts_;
  std::unique_ptr<PlacementPolicy> policy_;
  DecodedStreamCache cache_;
  ThreadPool pool_;

  std::deque<Request> queue_;
  RequestId next_request_ = 0;
  std::uint64_t use_seq_ = 0;
  std::map<RequestId, TaskId> task_of_request_;
  std::map<TaskId, TaskInfo> task_info_;
  std::vector<EvictionEvent> eviction_log_;
  ServiceStats stats_;
};

}  // namespace vbs
