// Write-ahead journal for ReconfigService: the durability substrate under
// ReconfigService::recover (service.h).
//
// A journal directory holds
//
//   journal.wal   4-byte magic "VJL1", then checksummed, length-prefixed
//                 records (framing below)
//   snap.<epoch>  at most one state snapshot, a vbs.artifact.v1 container
//                 (ArtifactStage::kServiceSnapshot) whose fingerprint is
//                 the service's state_fingerprint at capture time
//
// Record framing (all integers little-endian):
//
//   bytes 0-3   payload byte length
//   byte  4     record kind (Kind)
//   bytes 5-    payload
//   + 8 bytes   check: FNV-1a over the kind byte then the payload bytes,
//               then the payload length folded in (hash_u64) — the same
//               hash family as the vbs.artifact.v1 content hash
//
// The WAL's first record is kOpen (full service configuration; a journal
// started fresh) or kSnapshotBarrier (the epoch whose snap.<epoch> file is
// the recovery base; written by compaction). Every service mutation
// appends after it *after* applying in memory — sound, because memory has
// no durable side channel: a crash discards memory and recovery replays
// exactly the durable record prefix.
//
// Torn-tail discipline: scan() accepts an incomplete trailing record
// (bytes missing at EOF — what process death mid-append leaves), drops it
// and truncates the file back to the last complete record. Anything worse
// — bad magic, a checksum mismatch on a complete record, an unknown kind,
// a barrier without its snapshot — throws VbsError{kBadJournal}: the
// journal is structurally corrupt and must not be half-applied.
//
// Compaction (compact()) writes snap.<epoch+1> atomically, atomically
// resets the WAL to magic + kSnapshotBarrier(epoch+1), then removes the
// old snapshot. Every intermediate crash recovers: the WAL's first record
// names the snapshot that counts, and scan() deletes orphaned "*.tmp" and
// non-current "snap.*" files.
//
// All journal I/O is injectable (util/io.h): the journal owns an
// IoFaultInjector whose op counter numbers every write/sync/rename/remove
// it performs — including snapshot writes — so a crash plan (crash=N)
// sweeps the whole durability surface (tools/vbscrash.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitvector.h"
#include "util/fault.h"
#include "util/io.h"

namespace vbs {

class ServiceJournal {
 public:
  /// Stable on-disk record tags: append only, never renumber.
  enum class Kind : std::uint8_t {
    kOpen = 0,            ///< full service configuration (fresh journal)
    kSnapshotBarrier = 1, ///< epoch of the snapshot recovery base
    kAdmitLoad = 2,       ///< submit_load: id, tenant, stream
    kAdmitUnload = 3,     ///< submit_unload: id, target, tenant
    kAdmitRelocate = 4,   ///< submit_relocate: id, target, tenant
    kSetPriority = 5,     ///< set_tenant_priority: tenant, priority
    kShed = 6,            ///< admission shed the named request (companion
                          ///< of the kAdmitLoad in the same append)
    kCommit = 7,          ///< drain() completed: state fingerprint
  };

  struct Record {
    Kind kind;
    std::string payload;
  };

  struct ScanResult {
    std::vector<Record> records;  ///< every complete record, in order
    bool torn_tail = false;       ///< an incomplete tail was dropped
    std::uint64_t wal_bytes = 0;  ///< WAL size after torn-tail truncation
    std::uint64_t epoch = 0;      ///< 0 when the WAL starts with kOpen
    std::string snapshot_path;    ///< empty when recovering from kOpen
  };

  /// Starts a fresh journal in `dir`: creates the directory, removes any
  /// stale journal files, and atomically writes magic + kOpen(open_payload).
  /// `io_plan` is copied; it is the journal's own I/O fault plan, distinct
  /// from the service's model-fault plan (recovery must be able to reattach
  /// without re-injecting the crash that killed the predecessor).
  ServiceJournal(const std::string& dir, const FaultPlan& io_plan,
                 const std::string& open_payload);

  /// Reattaches to an existing journal after recovery: no writes, no
  /// injection (a disabled plan).
  struct AttachTag {};
  ServiceJournal(AttachTag, const std::string& dir, std::uint64_t epoch);

  ServiceJournal(const ServiceJournal&) = delete;
  ServiceJournal& operator=(const ServiceJournal&) = delete;

  /// Appends one record (one write op + one sync op). An injected
  /// write/sync failure truncates the torn bytes and retries once; a
  /// second failure truncates and rethrows (the WAL stays a clean prefix
  /// of complete records either way). CrashInjected always propagates —
  /// with the torn tail on disk, as real death would leave it.
  void append(Kind kind, const std::string& payload);
  /// Appends two records in ONE write+sync — the kAdmitLoad + kShed pair,
  /// so a torn append can only lose the shed companion, never reorder it.
  void append2(Kind k1, const std::string& p1, Kind k2, const std::string& p2);

  /// Snapshot + truncate compaction; `fingerprint` is the service's
  /// state_fingerprint for the snapshot artifact header.
  void compact(const BitVector& snapshot, std::uint64_t fingerprint);

  std::uint64_t epoch() const { return epoch_; }
  const std::string& dir() const { return dir_; }
  /// I/O ops performed so far — the sweep bound for crash plans.
  long long io_ops() const { return inj_.ops(); }

  /// Scans `dir`: verifies framing, drops + truncates a torn tail, cleans
  /// orphaned "*.tmp" and non-current "snap.*" files, and enforces the
  /// structural invariants (magic; first record kOpen or kSnapshotBarrier,
  /// neither anywhere else; barrier's snapshot present). Throws
  /// VbsError{kBadJournal} on any violation.
  static ScanResult scan(const std::string& dir);

  /// Reads a snapshot artifact; ArtifactError is rethrown as kBadJournal.
  static BitVector read_snapshot(const std::string& path,
                                 std::uint64_t* fingerprint_out);

  // --- payload field helpers (little-endian, length-prefixed) ---------------

  static void put_u32(std::string& out, std::uint32_t v);
  static void put_u64(std::string& out, std::uint64_t v);
  static void put_bits(std::string& out, const BitVector& bits);
  static void put_str(std::string& out, const std::string& s);
  /// get_* advance `pos`; reading past the end throws kBadJournal.
  static std::uint32_t get_u32(const std::string& p, std::size_t& pos);
  static std::uint64_t get_u64(const std::string& p, std::size_t& pos);
  static BitVector get_bits(const std::string& p, std::size_t& pos);
  static std::string get_str(const std::string& p, std::size_t& pos);

 private:
  std::string wal_path() const;
  std::string snapshot_path(std::uint64_t epoch) const;
  void append_raw(const std::string& bytes);

  std::string dir_;
  FaultPlan io_plan_;
  IoFaultInjector inj_;
  std::uint64_t epoch_ = 0;
};

}  // namespace vbs
