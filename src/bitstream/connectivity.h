// Electrical connectivity extraction from a raw configuration image.
//
// Treats every ON routing switch as a closed pass transistor and unions the
// wire segments it joins; the resulting components are the electrical nets
// realized by the configuration. This is the end-to-end oracle of the test
// suite: a Virtual Bit-Stream decode is correct iff the connectivity
// extracted from the decoded raw image matches the netlist (same driver ->
// sink reachability, no shorts between nets, no stray connections onto
// logic-block pins), regardless of which internal switch pattern the online
// router chose.
#pragma once

#include <string>
#include <vector>

#include "bitstream/bitstream.h"
#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "util/bitvector.h"

namespace vbs {

class Connectivity {
 public:
  /// `raw` must be a full-fabric image (fabric.config_bits_total() bits).
  Connectivity(const Fabric& fabric, const BitVector& raw);

  /// Representative of the electrical component containing global node g.
  int root(int g) const;
  int root_of_pin(int mx, int my, int pin) const;
  int root_of_port(int mx, int my, int port) const;

  /// Logic configuration parsed back from the image.
  LogicConfig logic(int m) const;

  const Fabric& fabric() const { return *fabric_; }

 private:
  const Fabric* fabric_;
  const BitVector* raw_;
  std::vector<int> parent_;  ///< fully-compressed after construction
};

/// Verifies that `raw` implements the placed design: every net's sinks are
/// electrically reachable from its driver, no two nets are shorted, no
/// unused LUT pin is driven, and every used tile's logic bits match.
/// Returns an empty string on success, else a human-readable diagnosis.
std::string verify_connectivity(const Fabric& fabric, const BitVector& raw,
                                const Netlist& nl, const PackedDesign& pd,
                                const Placement& pl);

}  // namespace vbs
