// Raw configuration bit-stream generation.
//
// The raw format is the flat configuration-memory image the paper compares
// against: macros in row-major order, Nraw bits each — NLB logic bits (LUT
// mask LSB-first, then the FF-select bit) followed by the routing switch
// bits in MacroModel's canonical switch-point order. A task occupying a
// w x h region therefore costs exactly w*h*Nraw bits (paper Section II-B).
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"
#include "util/bitvector.h"

namespace vbs {

/// Logic configuration of one macro, extracted from the packed design.
struct LogicConfig {
  bool used = false;
  std::uint64_t lut_mask = 0;
  bool has_ff = false;
};

/// Per-macro logic configuration for a placed design, row-major.
std::vector<LogicConfig> extract_logic_configs(const Netlist& nl,
                                               const PackedDesign& pd,
                                               const Placement& pl);

/// Serializes one macro's NLB logic bits (mask LSB-first, then FF bit).
void append_logic_bits(BitVector& out, const LogicConfig& lc,
                       const ArchSpec& spec);
/// Parses NLB logic bits back (inverse of append_logic_bits).
LogicConfig parse_logic_bits(const BitVector& bits, std::size_t offset,
                             const ArchSpec& spec);

/// Generates the full raw bit-stream of a routed design on `fabric`.
/// Every switch used by a route tree is set; all other bits are 0.
BitVector generate_raw_bitstream(const Fabric& fabric, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const std::vector<NetRoute>& routes);

/// The set of ON routing switches of one macro, as absolute bit indices
/// within the macro's routing region [0, Nraw-NLB).
using MacroSwitches = std::vector<int>;

/// Collects per-macro ON-switch lists from route trees (used by both the
/// raw generator and the VBS encoder's raw-fallback path).
std::vector<MacroSwitches> collect_switches(const Fabric& fabric,
                                            const std::vector<NetRoute>& routes);

}  // namespace vbs
