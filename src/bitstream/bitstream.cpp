#include "bitstream/bitstream.h"

#include <cassert>

namespace vbs {

std::vector<LogicConfig> extract_logic_configs(const Netlist& nl,
                                               const PackedDesign& pd,
                                               const Placement& pl) {
  std::vector<LogicConfig> configs(
      static_cast<std::size_t>(pl.grid_w) * static_cast<std::size_t>(pl.grid_h));
  for (int i = 0; i < pd.num_luts(); ++i) {
    const Point at = pl.lut_loc[static_cast<std::size_t>(i)];
    const Block& b = nl.block(pd.luts[static_cast<std::size_t>(i)]);
    LogicConfig& lc =
        configs[static_cast<std::size_t>(at.y) * pl.grid_w + at.x];
    lc.used = true;
    lc.lut_mask = b.lut_mask;
    lc.has_ff = b.has_ff;
  }
  return configs;
}

void append_logic_bits(BitVector& out, const LogicConfig& lc,
                       const ArchSpec& spec) {
  const int mask_bits = 1 << spec.lut_k;
  for (int i = 0; i < mask_bits; ++i) {
    out.push_back((lc.lut_mask >> i) & 1u);
  }
  out.push_back(lc.has_ff);
}

LogicConfig parse_logic_bits(const BitVector& bits, std::size_t offset,
                             const ArchSpec& spec) {
  LogicConfig lc;
  const int mask_bits = 1 << spec.lut_k;
  for (int i = 0; i < mask_bits; ++i) {
    if (bits.get(offset + static_cast<std::size_t>(i))) {
      lc.lut_mask |= std::uint64_t{1} << i;
    }
  }
  lc.has_ff = bits.get(offset + static_cast<std::size_t>(mask_bits));
  lc.used = lc.lut_mask != 0 || lc.has_ff;
  return lc;
}

std::vector<MacroSwitches> collect_switches(const Fabric& fabric,
                                            const std::vector<NetRoute>& routes) {
  std::vector<MacroSwitches> per_macro(
      static_cast<std::size_t>(fabric.num_macros()));
  const auto& points = fabric.macro().switch_points();
  for (const NetRoute& route : routes) {
    for (const NetRoute::TreeNode& tn : route.nodes) {
      if (tn.fabric_edge < 0) continue;
      const Fabric::Edge& e =
          fabric.edge_at(static_cast<std::size_t>(tn.fabric_edge));
      const int bit = points[static_cast<std::size_t>(e.point)].bit_offset +
                      e.pair;
      per_macro[static_cast<std::size_t>(e.macro)].push_back(bit);
    }
  }
  return per_macro;
}

BitVector generate_raw_bitstream(const Fabric& fabric, const Netlist& nl,
                                 const PackedDesign& pd, const Placement& pl,
                                 const std::vector<NetRoute>& routes) {
  const ArchSpec& spec = fabric.spec();
  BitVector bits(fabric.config_bits_total());

  // Logic regions.
  const std::vector<LogicConfig> logic = extract_logic_configs(nl, pd, pl);
  for (int m = 0; m < fabric.num_macros(); ++m) {
    const LogicConfig& lc = logic[static_cast<std::size_t>(m)];
    if (!lc.used) continue;
    BitVector lbits;
    append_logic_bits(lbits, lc, spec);
    bits.overwrite(fabric.macro_config_offset(m), lbits);
  }

  // Routing switches.
  const auto per_macro = collect_switches(fabric, routes);
  for (int m = 0; m < fabric.num_macros(); ++m) {
    const std::size_t base = fabric.macro_config_offset(m) +
                             static_cast<std::size_t>(spec.nlb_bits());
    for (const int bit : per_macro[static_cast<std::size_t>(m)]) {
      bits.set(base + static_cast<std::size_t>(bit), true);
    }
  }
  return bits;
}

}  // namespace vbs
