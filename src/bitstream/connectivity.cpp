#include "bitstream/connectivity.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

namespace vbs {

Connectivity::Connectivity(const Fabric& fabric, const BitVector& raw)
    : fabric_(&fabric), raw_(&raw) {
  if (raw.size() != fabric.config_bits_total()) {
    throw std::invalid_argument("connectivity: raw image size mismatch");
  }
  parent_.resize(static_cast<std::size_t>(fabric.num_nodes()));
  std::iota(parent_.begin(), parent_.end(), 0);

  auto find = [&](int a) {
    while (parent_[static_cast<std::size_t>(a)] != a) {
      parent_[static_cast<std::size_t>(a)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(a)])];
      a = parent_[static_cast<std::size_t>(a)];
    }
    return a;
  };

  const MacroModel& mm = fabric.macro();
  const ArchSpec& spec = fabric.spec();
  const auto& points = mm.switch_points();
  for (int m = 0; m < fabric.num_macros(); ++m) {
    const Point mp = fabric.macro_pos(m);
    const std::size_t base = fabric.macro_config_offset(m) +
                             static_cast<std::size_t>(spec.nlb_bits());
    for (const SwitchPoint& pt : points) {
      for (int pair = 0; pair < pt.n_switches(); ++pair) {
        if (!raw.get(base + static_cast<std::size_t>(pt.bit_offset + pair))) {
          continue;
        }
        const auto [ai, bi] = pt.pair_arms(pair);
        const int ga = fabric.global_node(mp.x, mp.y, pt.arms[ai]);
        const int gb = fabric.global_node(mp.x, mp.y, pt.arms[bi]);
        parent_[static_cast<std::size_t>(find(ga))] = find(gb);
      }
    }
  }
  // Full compression so root() is a plain lookup afterwards.
  for (int g = 0; g < fabric.num_nodes(); ++g) {
    parent_[static_cast<std::size_t>(g)] = find(g);
  }
}

int Connectivity::root(int g) const { return parent_[static_cast<std::size_t>(g)]; }

int Connectivity::root_of_pin(int mx, int my, int pin) const {
  return root(fabric_->global_node(mx, my, fabric_->macro().pin_node(pin)));
}

int Connectivity::root_of_port(int mx, int my, int port) const {
  return root(fabric_->port_global(mx, my, port));
}

LogicConfig Connectivity::logic(int m) const {
  return parse_logic_bits(*raw_, fabric_->macro_config_offset(m),
                          fabric_->spec());
}

std::string verify_connectivity(const Fabric& fabric, const BitVector& raw,
                                const Netlist& nl, const PackedDesign& pd,
                                const Placement& pl) {
  const Connectivity conn(fabric, raw);
  const ArchSpec& spec = fabric.spec();
  const int out_pin = spec.lb_pins() - 1;

  // Terminal nodes per net.
  struct Terminals {
    int source = -1;
    std::vector<int> sinks;
  };
  std::vector<Terminals> terms(static_cast<std::size_t>(nl.num_nets()));
  std::vector<std::array<bool, kMaxLutK>> pin_used(
      static_cast<std::size_t>(pd.num_luts()));
  for (int i = 0; i < pd.num_luts(); ++i) {
    const Point at = pl.lut_loc[static_cast<std::size_t>(i)];
    const BlockId bi = pd.luts[static_cast<std::size_t>(i)];
    terms[static_cast<std::size_t>(nl.block(bi).output)].source =
        fabric.global_node(at.x, at.y, fabric.macro().pin_node(out_pin));
    pin_used[static_cast<std::size_t>(i)].fill(false);
    for (int k = 0; k < spec.lut_k; ++k) {
      const NetId in = pd.lut_pins[static_cast<std::size_t>(i)]
                                  [static_cast<std::size_t>(k)];
      if (in == kNoNet) continue;
      pin_used[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = true;
      terms[static_cast<std::size_t>(in)].sinks.push_back(
          fabric.global_node(at.x, at.y, fabric.macro().pin_node(k)));
    }
  }
  for (int i = 0; i < pd.num_ios(); ++i) {
    const BlockId bi = pd.ios[static_cast<std::size_t>(i)];
    const Block& b = nl.block(bi);
    const IoSlot slot = pl.io_loc[static_cast<std::size_t>(i)];
    const Point tile = pl.io_tile(slot);
    const int node = fabric.port_global(tile.x, tile.y, io_port_id(slot, spec));
    if (b.type == BlockType::kInput) {
      terms[static_cast<std::size_t>(b.output)].source = node;
    } else {
      terms[static_cast<std::size_t>(b.inputs[0])].sinks.push_back(node);
    }
  }

  // 1. Sink reachability + 2. net-to-net shorts.
  std::vector<int> root_net(static_cast<std::size_t>(fabric.num_nodes()), -1);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Terminals& t = terms[static_cast<std::size_t>(n)];
    if (t.sinks.empty()) continue;
    if (t.source < 0) return "net " + nl.net(n).name + " has no placed source";
    const int r = conn.root(t.source);
    for (const int s : t.sinks) {
      if (conn.root(s) != r) {
        return "net " + nl.net(n).name + " does not reach all sinks";
      }
    }
    int& owner = root_net[static_cast<std::size_t>(r)];
    if (owner != -1 && owner != n) {
      return "nets " + nl.net(owner).name + " and " + nl.net(n).name +
             " are shorted";
    }
    owner = n;
  }

  // 3. No stray signal on unused pins of used tiles.
  for (int i = 0; i < pd.num_luts(); ++i) {
    const Point at = pl.lut_loc[static_cast<std::size_t>(i)];
    for (int k = 0; k < spec.lut_k; ++k) {
      if (pin_used[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]) {
        continue;
      }
      const int r = conn.root_of_pin(at.x, at.y, k);
      if (root_net[static_cast<std::size_t>(r)] != -1) {
        return "unused pin driven at tile " + to_string(at);
      }
    }
  }

  // 4. Logic data round-trip.
  const auto logic = extract_logic_configs(nl, pd, pl);
  for (int m = 0; m < fabric.num_macros(); ++m) {
    const LogicConfig want = logic[static_cast<std::size_t>(m)];
    const LogicConfig got = conn.logic(m);
    if (want.used &&
        (got.lut_mask != want.lut_mask || got.has_ff != want.has_ff)) {
      return "logic data mismatch at macro " + std::to_string(m);
    }
    if (!want.used && (got.lut_mask != 0 || got.has_ff)) {
      return "logic data on empty macro " + std::to_string(m);
    }
  }
  return {};
}

}  // namespace vbs
