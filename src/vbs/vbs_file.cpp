#include "vbs/vbs_file.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "util/error.h"

namespace vbs {

namespace {
constexpr char kMagic[4] = {'V', 'B', 'S', '2'};
constexpr char kLegacyMagic[4] = {'V', 'B', 'S', '1'};
// magic(4) + bit count(8) + checksum(8)
constexpr std::size_t kHeaderBytes = 20;

// Same FNV-1a construction as the artifact container (flow/artifact_io),
// duplicated here so the base VBS container does not depend on the flow
// layer.
std::uint64_t payload_checksum(const std::string& bytes,
                               std::uint64_t bit_count) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](unsigned char b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  for (const char c : bytes) mix(static_cast<unsigned char>(c));
  for (int i = 0; i < 8; ++i) {
    mix(static_cast<unsigned char>((bit_count >> (8 * i)) & 0xff));
  }
  return h;
}
}  // namespace

std::string pack_bits(const BitVector& bits) {
  std::string out((bits.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) {
      out[i / 8] = static_cast<char>(
          static_cast<unsigned char>(out[i / 8]) | (0x80u >> (i % 8)));
    }
  }
  return out;
}

BitVector unpack_bits(const std::string& bytes, std::size_t bit_count) {
  if (bytes.size() < (bit_count + 7) / 8) {
    throw VbsError(VbsErrc::kTruncated, "unpack_bits: byte buffer too short");
  }
  BitVector bits(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const auto byte = static_cast<unsigned char>(bytes[i / 8]);
    bits.set(i, (byte >> (7 - i % 8)) & 1u);
  }
  return bits;
}

void write_vbs_file(const std::string& path, const BitVector& stream) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os.write(kMagic, sizeof kMagic);
  const std::uint64_t n = stream.size();
  const std::string payload = pack_bits(stream);
  const std::uint64_t sum = payload_checksum(payload, n);
  char head[16];
  for (int i = 0; i < 8; ++i) {
    head[i] = static_cast<char>((n >> (8 * i)) & 0xff);
    head[8 + i] = static_cast<char>((sum >> (8 * i)) & 0xff);
  }
  os.write(head, sizeof head);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) throw std::runtime_error("write failed: " + path);
}

BitVector read_vbs_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  // The declared bit count is attacker-controlled; size the payload from
  // the actual file, never from the header, so a hostile length field can
  // demand at most what is really on disk.
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  char magic[4];
  char head[16];
  if (!is.read(magic, sizeof magic) || !is.read(head, sizeof head)) {
    throw VbsError(VbsErrc::kTruncated, "truncated VBS file: " + path);
  }
  bool legacy = true;
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kLegacyMagic[i]) legacy = false;
  }
  if (legacy) {
    throw VbsError(VbsErrc::kBadVersion,
                   "legacy VBS1 container (no checksum), re-generate: " + path);
  }
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) {
      throw VbsError(VbsErrc::kBadContainer, "not a VBS file: " + path);
    }
  }
  std::uint64_t n = 0, sum = 0;
  for (int i = 0; i < 8; ++i) {
    n |= static_cast<std::uint64_t>(static_cast<unsigned char>(head[i]))
         << (8 * i);
    sum |= static_cast<std::uint64_t>(static_cast<unsigned char>(head[8 + i]))
           << (8 * i);
  }
  const std::uint64_t nbytes = n / 8 + (n % 8 != 0 ? 1 : 0);
  if (nbytes != file_size - kHeaderBytes) {
    throw VbsError(VbsErrc::kBadContainer,
                   "VBS container size mismatch: " + path);
  }
  std::string payload(static_cast<std::size_t>(nbytes), '\0');
  if (!is.read(payload.data(), static_cast<std::streamsize>(payload.size()))) {
    throw VbsError(VbsErrc::kTruncated, "truncated VBS payload: " + path);
  }
  // Padding bits of the last byte must be zero — a flipped padding bit is
  // corruption even though unpack_bits would ignore it.
  if (n % 8 != 0) {
    const auto last = static_cast<unsigned char>(payload.back());
    if ((last & ((1u << (8 - n % 8)) - 1u)) != 0) {
      throw VbsError(VbsErrc::kBadContainer,
                     "VBS container has nonzero padding bits: " + path);
    }
  }
  if (payload_checksum(payload, n) != sum) {
    throw VbsError(VbsErrc::kBadContainer,
                   "VBS container checksum mismatch (corrupted): " + path);
  }
  return unpack_bits(payload, static_cast<std::size_t>(n));
}

}  // namespace vbs
