#include "vbs/vbs_file.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace vbs {

namespace {
constexpr char kMagic[4] = {'V', 'B', 'S', '1'};
}  // namespace

std::string pack_bits(const BitVector& bits) {
  std::string out((bits.size() + 7) / 8, '\0');
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits.get(i)) {
      out[i / 8] = static_cast<char>(
          static_cast<unsigned char>(out[i / 8]) | (0x80u >> (i % 8)));
    }
  }
  return out;
}

BitVector unpack_bits(const std::string& bytes, std::size_t bit_count) {
  if (bytes.size() < (bit_count + 7) / 8) {
    throw std::runtime_error("unpack_bits: byte buffer too short");
  }
  BitVector bits(bit_count);
  for (std::size_t i = 0; i < bit_count; ++i) {
    const auto byte = static_cast<unsigned char>(bytes[i / 8]);
    bits.set(i, (byte >> (7 - i % 8)) & 1u);
  }
  return bits;
}

void write_vbs_file(const std::string& path, const BitVector& stream) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  os.write(kMagic, sizeof kMagic);
  const std::uint64_t n = stream.size();
  char len[8];
  for (int i = 0; i < 8; ++i) len[i] = static_cast<char>((n >> (8 * i)) & 0xff);
  os.write(len, sizeof len);
  const std::string payload = pack_bits(stream);
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!os) throw std::runtime_error("write failed: " + path);
}

BitVector read_vbs_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  char magic[4];
  char len[8];
  if (!is.read(magic, sizeof magic) || !is.read(len, sizeof len)) {
    throw std::runtime_error("truncated VBS file: " + path);
  }
  for (int i = 0; i < 4; ++i) {
    if (magic[i] != kMagic[i]) {
      throw std::runtime_error("not a VBS file: " + path);
    }
  }
  std::uint64_t n = 0;
  for (int i = 0; i < 8; ++i) {
    n |= static_cast<std::uint64_t>(static_cast<unsigned char>(len[i]))
         << (8 * i);
  }
  std::string payload((n + 7) / 8, '\0');
  if (!is.read(payload.data(), static_cast<std::streamsize>(payload.size()))) {
    throw std::runtime_error("truncated VBS payload: " + path);
  }
  return unpack_bits(payload, n);
}

}  // namespace vbs
