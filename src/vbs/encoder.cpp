#include "vbs/encoder.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "util/rng.h"
#include "vbs/devirtualizer.h"
#include "vbs/region_model.h"

namespace vbs {

namespace {

/// Maps a macro-level port of region macro (ux,uy) to the region port id.
int region_port_of(const RegionModel& rm, int ux, int uy, int macro_port) {
  const int w = rm.spec().chan_width;
  if (macro_port >= 4 * w) {
    return rm.port_of_pin(ux, uy, macro_port - 4 * w);
  }
  const Side side = static_cast<Side>(macro_port / w);
  const int track = macro_port % w;
  const int tile = (side == Side::kWest || side == Side::kEast) ? uy : ux;
  // A wire that is a region port must sit on the region-extent perimeter.
  assert((side == Side::kWest && ux == 0) ||
         (side == Side::kEast && ux == rm.extent_w() - 1) ||
         (side == Side::kNorth && uy == rm.extent_h() - 1) ||
         (side == Side::kSouth && uy == 0));
  return rm.port_of_side(side, tile, track);
}

/// Per-net, per-cluster signal extraction state.
struct Component {
  int in_port = -1;
  int in_depth = 1 << 30;
  std::vector<std::pair<int, int>> outs;  // (depth, port)
};

/// Re-groups a connection list so all pairs sharing an `in` are contiguous
/// (first-appearance order), as compact fan-out coding requires.
/// Single-pass stable bucketing: each `in` gets a bucket at its first
/// appearance, O(n + max_in) instead of the quadratic scan-per-group.
void regroup_by_in(std::vector<VbsConnection>& conns) {
  if (conns.empty()) return;
  std::uint16_t max_in = 0;
  for (const VbsConnection& c : conns) max_in = std::max(max_in, c.in);
  // Bucket ids in first-appearance order, then count -> prefix-sum ->
  // scatter into one pre-sized buffer (no per-bucket allocations).
  std::vector<std::int32_t> bucket_of(static_cast<std::size_t>(max_in) + 1, -1);
  std::int32_t n_buckets = 0;
  for (const VbsConnection& c : conns) {
    if (bucket_of[c.in] < 0) bucket_of[c.in] = n_buckets++;
  }
  std::vector<std::uint32_t> offset(static_cast<std::size_t>(n_buckets) + 1, 0);
  for (const VbsConnection& c : conns) {
    ++offset[static_cast<std::size_t>(bucket_of[c.in]) + 1];
  }
  for (std::size_t b = 1; b < offset.size(); ++b) offset[b] += offset[b - 1];
  std::vector<VbsConnection> out(conns.size());
  for (const VbsConnection& c : conns) {
    out[offset[static_cast<std::size_t>(bucket_of[c.in])]++] = c;
  }
  conns = std::move(out);
}

/// Grouping-preserving shuffle: permutes whole signals and the outs within
/// each signal.
void shuffle_grouped(std::vector<VbsConnection>& conns, Rng& rng) {
  regroup_by_in(conns);
  std::vector<std::vector<VbsConnection>> groups;
  for (const VbsConnection& c : conns) {
    if (groups.empty() || groups.back().front().in != c.in) {
      groups.emplace_back();
    }
    groups.back().push_back(c);
  }
  rng.shuffle(groups);
  conns.clear();
  for (auto& g : groups) {
    rng.shuffle(g);
    conns.insert(conns.end(), g.begin(), g.end());
  }
}

/// Small union-find keyed by route-tree node index.
class TreeDsu {
 public:
  int find(int a) {
    auto it = parent_.find(a);
    if (it == parent_.end()) {
      parent_[a] = a;
      return a;
    }
    int root = a;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[a] != root) {
      const int next = parent_[a];
      parent_[a] = root;
      a = next;
    }
    return root;
  }
  void unite(int a, int b) { parent_[find(a)] = find(b); }

 private:
  std::map<int, int> parent_;
};

}  // namespace

VbsImage encode_vbs(const Fabric& fabric, const Netlist& nl,
                    const PackedDesign& pd, const Placement& pl,
                    const std::vector<NetRoute>& routes,
                    const EncodeOptions& opts, EncodeStats* stats) {
  const ArchSpec& spec = fabric.spec();
  const int c = opts.cluster;

  VbsImage img;
  img.spec = spec;
  img.task_w = fabric.width();
  img.task_h = fabric.height();
  img.cluster = c;
  img.compact_fanout = opts.compact_fanout;
  const int cw = img.cluster_grid_w();
  const int ch = img.cluster_grid_h();
  const int n_clusters = cw * ch;

  auto cluster_of_macro = [&](int m) {
    const Point p = fabric.macro_pos(m);
    return (p.y / c) * cw + (p.x / c);
  };

  // ---- 1. Connection-list extraction --------------------------------------
  RegionDecoderCache regions(spec, c, img.task_w, img.task_h);
  std::vector<std::vector<VbsConnection>> conns(
      static_cast<std::size_t>(n_clusters));

  for (const NetRoute& route : routes) {
    if (route.nodes.empty()) continue;
    const int n_tree = static_cast<int>(route.nodes.size());
    // Depth from the net driver.
    std::vector<int> depth(static_cast<std::size_t>(n_tree), 0);
    for (int k = 1; k < n_tree; ++k) {
      depth[static_cast<std::size_t>(k)] =
          depth[static_cast<std::size_t>(route.nodes[k].parent)] + 1;
    }
    // Tree edges grouped by cluster.
    std::map<int, std::vector<int>> edges_by_cluster;  // child tree index
    for (int k = 1; k < n_tree; ++k) {
      const Fabric::Edge& e =
          fabric.edge_at(static_cast<std::size_t>(route.nodes[k].fabric_edge));
      edges_by_cluster[cluster_of_macro(e.macro)].push_back(k);
    }
    if (edges_by_cluster.empty()) continue;  // single-node route: no switches

    for (const auto& [cl, edge_children] : edges_by_cluster) {
      const int cx = cl % cw, cy = cl / cw;
      const RegionModel& region = regions.region_for(cx, cy);
      TreeDsu dsu;
      for (const int k : edge_children) {
        dsu.unite(k, route.nodes[static_cast<std::size_t>(k)].parent);
      }
      // Terminals: participating tree nodes whose wire is a port of this
      // cluster (boundary wires crossing the cluster edge, dangling task-
      // edge wires, and LB pins — the router only touches pins at
      // terminals).
      std::map<int, Component> comps;  // by DSU root
      auto visit = [&](int k) {
        const int rr = route.nodes[static_cast<std::size_t>(k)].rr;
        const auto ports = fabric.node_ports(rr);
        int owners_in_cl = 0;
        int macro_in_cl = -1, macro_port = -1;
        for (const Fabric::MacroPort& mp : ports) {
          if (cluster_of_macro(mp.macro) == cl) {
            ++owners_in_cl;
            macro_in_cl = mp.macro;
            macro_port = mp.port;
          }
        }
        // Interior wires: both owners inside the cluster, or no port at all.
        if (owners_in_cl != 1) return;
        if (owners_in_cl == static_cast<int>(ports.size()) &&
            ports.size() == 2) {
          return;  // both sides inside: interior (unreachable, kept for clarity)
        }
        const Point mp = fabric.macro_pos(macro_in_cl);
        const int port =
            region_port_of(region, mp.x - cx * c, mp.y - cy * c, macro_port);
        Component& comp = comps[dsu.find(k)];
        const int d = depth[static_cast<std::size_t>(k)];
        if (d < comp.in_depth) {
          if (comp.in_port >= 0) comp.outs.emplace_back(comp.in_depth, comp.in_port);
          comp.in_depth = d;
          comp.in_port = port;
        } else {
          comp.outs.emplace_back(d, port);
        }
      };
      // Participating nodes: every edge child and its parent, deduplicated.
      std::vector<int> participants;
      for (const int k : edge_children) {
        participants.push_back(k);
        participants.push_back(route.nodes[static_cast<std::size_t>(k)].parent);
      }
      std::sort(participants.begin(), participants.end());
      participants.erase(std::unique(participants.begin(), participants.end()),
                         participants.end());
      for (const int k : participants) visit(k);

      for (auto& [root, comp] : comps) {
        if (comp.in_port < 0) {
          throw std::logic_error("vbsgen: component with no port terminal");
        }
        std::sort(comp.outs.begin(), comp.outs.end());
        for (const auto& [d, port] : comp.outs) {
          conns[static_cast<std::size_t>(cl)].push_back(
              {static_cast<std::uint16_t>(comp.in_port),
               static_cast<std::uint16_t>(port)});
        }
      }
    }
  }

  // ---- 2. Logic + raw payloads ---------------------------------------------
  const std::vector<LogicConfig> logic = extract_logic_configs(nl, pd, pl);
  const std::vector<MacroSwitches> switches = collect_switches(fabric, routes);
  const int rbits = spec.nroute_bits();

  auto cluster_logic = [&](int cx, int cy) {
    std::vector<LogicConfig> out(static_cast<std::size_t>(c) * c);
    for (int uy = 0; uy < c; ++uy) {
      for (int ux = 0; ux < c; ++ux) {
        const int tx = cx * c + ux, ty = cy * c + uy;
        if (tx >= img.task_w || ty >= img.task_h) continue;
        out[static_cast<std::size_t>(uy * c + ux)] =
            logic[static_cast<std::size_t>(fabric.macro_index(tx, ty))];
      }
    }
    return out;
  };
  auto cluster_raw_routing = [&](int cx, int cy) {
    BitVector out(static_cast<std::size_t>(c) * c * rbits);
    for (int uy = 0; uy < c; ++uy) {
      for (int ux = 0; ux < c; ++ux) {
        const int tx = cx * c + ux, ty = cy * c + uy;
        if (tx >= img.task_w || ty >= img.task_h) continue;
        const std::size_t base = static_cast<std::size_t>(uy * c + ux) * rbits;
        for (const int bit :
             switches[static_cast<std::size_t>(fabric.macro_index(tx, ty))]) {
          out.set(base + static_cast<std::size_t>(bit), true);
        }
      }
    }
    return out;
  };

  // ---- 3. Assembly + feedback loop -----------------------------------------
  BitVector scratch;
  Rng rng(opts.seed);
  const RegionModel& full_region = regions.region_for(0, 0);
  const unsigned rc_bits = full_region.route_count_bits();
  const unsigned m_bits = full_region.port_field_bits();
  const std::uint64_t max_conns = (std::uint64_t{1} << rc_bits) - 1;

  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      const int cl = cy * cw + cx;
      VbsEntry e;
      e.cx = static_cast<std::uint16_t>(cx);
      e.cy = static_cast<std::uint16_t>(cy);
      e.logic = cluster_logic(cx, cy);
      e.conns = std::move(conns[static_cast<std::size_t>(cl)]);

      const bool has_logic = std::any_of(
          e.logic.begin(), e.logic.end(),
          [](const LogicConfig& lc) { return lc.used; });
      if (!has_logic && e.conns.empty()) continue;  // empty region: omitted

      auto make_raw = [&](int* counter) {
        e.raw = true;
        e.compact = false;
        e.conns.clear();
        e.raw_routing = cluster_raw_routing(cx, cy);
        if (stats && counter) ++(*counter);
      };

      // Per-entry coding choice: Table I pair list vs compact fan-out
      // coding (when enabled), whichever is smaller.
      const std::size_t plain_bits = rc_bits + e.conns.size() * 2 * m_bits;
      std::size_t list_bits = plain_bits;
      if (opts.compact_fanout && !e.conns.empty()) {
        const std::size_t compact_bits =
            1 + rc_bits + fanout_groups(e.conns).size() * (m_bits + rc_bits) +
            e.conns.size() * m_bits;
        e.compact = compact_bits < 1 + plain_bits;
        list_bits = std::min(compact_bits, 1 + plain_bits);
      }
      if (opts.force_raw) {
        make_raw(nullptr);
      } else if (e.conns.size() > max_conns) {
        make_raw(stats ? &stats->overflow_fallbacks : nullptr);
      } else if (opts.size_fallback &&
                 list_bits >= static_cast<std::size_t>(c) * c * rbits) {
        make_raw(stats ? &stats->size_fallbacks : nullptr);
      } else {
        // Feedback loop: decode offline with the online algorithm.
        Devirtualizer& dv = regions.decoder_for(cx, cy);
        dv.set_max_iterations(opts.decode_iterations);
        bool ok = dv.decode_entry(e, scratch);
        if (!ok && !opts.no_reorder) {
          int attempt = 0;
          std::vector<VbsConnection> order = e.conns;
          while (!ok && attempt < 2 + opts.reorder_attempts) {
            if (attempt == 0) {
              std::stable_sort(order.begin(), order.end(),
                               [](const VbsConnection& a, const VbsConnection& b) {
                                 if (a.in != b.in) return a.in < b.in;
                                 return a.out < b.out;
                               });
            } else if (attempt == 1) {
              std::reverse(order.begin(), order.end());
              if (opts.compact_fanout) regroup_by_in(order);
            } else if (!opts.compact_fanout) {
              rng.shuffle(order);
            } else {
              shuffle_grouped(order, rng);
            }
            e.conns = order;
            ok = dv.decode_entry(e, scratch);
            ++attempt;
          }
          if (ok && stats) ++stats->reordered_entries;
        }
        if (!ok) make_raw(stats ? &stats->conflict_fallbacks : nullptr);
      }

      if (stats) {
        ++stats->entries;
        stats->raw_entries += e.raw ? 1 : 0;
        stats->connections += static_cast<long long>(e.conns.size());
      }
      img.entries.push_back(std::move(e));
    }
  }

  if (stats) {
    stats->vbs_bits = vbs_size_bits(img);
    stats->raw_bits = raw_size_bits(spec, img.task_w, img.task_h);
  }
  return img;
}

}  // namespace vbs
