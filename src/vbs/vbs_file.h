// File container for serialized Virtual Bit-Streams.
//
// The on-wire VBS is a raw bit sequence (vbs_format.h); on disk it is
// wrapped in a tiny byte-oriented container so that the exact bit length
// survives the round trip and silent corruption cannot:
//
//   bytes 0-3   magic "VBS2"
//   bytes 4-11  bit count, little-endian u64
//   bytes 12-19 FNV-1a of the packed payload bytes mixed with the bit
//               count, little-endian u64
//   bytes 20-   payload, MSB-first within each byte, zero-padded
//
// The checksum makes every single-byte corruption detectable: a reader
// either returns exactly the written bits or throws a typed VbsError
// (kBadContainer / kTruncated / kBadVersion for legacy VBS1 files).
#pragma once

#include <string>

#include "util/bitvector.h"

namespace vbs {

/// Byte-packs a bit vector (MSB-first per byte, zero padding in the last).
std::string pack_bits(const BitVector& bits);
/// Inverse of pack_bits given the exact bit count.
BitVector unpack_bits(const std::string& bytes, std::size_t bit_count);

/// Writes a serialized stream to disk; throws std::runtime_error on I/O
/// failure.
void write_vbs_file(const std::string& path, const BitVector& stream);

/// Reads a stream written by write_vbs_file; throws std::runtime_error on
/// I/O failure or a malformed container.
BitVector read_vbs_file(const std::string& path);

}  // namespace vbs
