// Decode-region model: the black box whose port-to-port connections the
// Virtual Bit-Stream stores.
//
// For cluster size c the region pools the routing resources of a c x c
// block of macros (paper Section IV-B); c = 1 is the finest grain, a single
// macro. The region's I/O ports are the 4*c*W perimeter track wires plus
// the c^2*L logic-block pins, giving connection endpoints coded on
// M = ceil(log2(4cW + c^2 L + 1)) bits.
//
// Both the offline encoder's feedback loop and the online de-virtualizer
// route on this model, which is what guarantees that a stream validated
// offline decodes identically online.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/macro_model.h"
#include "util/geometry.h"

namespace vbs {

class RegionModel {
 public:
  /// A full c x c region, or — for clusters straddling the task edge when
  /// the task size is not a multiple of c — a partial extent_w x extent_h
  /// region. Port *identifiers* always use the full-c numbering (so the
  /// on-wire field widths are uniform); ports whose side tile or pin macro
  /// falls outside the extent simply have no node.
  RegionModel(const ArchSpec& spec, int cluster, int extent_w = -1,
              int extent_h = -1);

  const ArchSpec& spec() const { return macro_.spec(); }
  const MacroModel& macro() const { return macro_; }
  int cluster() const { return c_; }
  int extent_w() const { return rw_; }
  int extent_h() const { return rh_; }
  int num_macros() const { return c_ * c_; }

  int num_nodes() const { return num_nodes_; }
  /// Region node of macro-local node `local` in region macro (ux,uy);
  /// (ux,uy) must lie within the extent.
  int node_of(int ux, int uy, int local) const {
    return node_of_raw_[static_cast<std::size_t>(uy * c_ + ux) *
                            macro_.num_nodes() +
                        local];
  }
  /// Representative region-macro tile of a node (for search heuristics).
  Point node_tile(int node) const { return {tile_x_[node], tile_y_[node]}; }

  // --- ports ---------------------------------------------------------------
  /// 4cW perimeter track ports followed by c^2 L pin ports.
  int num_ports() const {
    return 4 * c_ * spec().chan_width + num_macros() * spec().lb_pins();
  }
  /// Perimeter port: `tile` indexes along the side (y for W/E, x for N/S).
  int port_of_side(Side side, int tile, int track) const {
    return (static_cast<int>(side) * c_ + tile) * spec().chan_width + track;
  }
  int port_of_pin(int ux, int uy, int pin) const {
    return 4 * c_ * spec().chan_width + (uy * c_ + ux) * spec().lb_pins() + pin;
  }
  /// Node carrying a port, or -1 for ports outside a partial extent.
  int port_node(int port) const { return port_node_[port]; }
  /// Port carried by a node, -1 for interior nodes.
  int node_port(int node) const { return node_port_[node]; }
  bool is_pin_port(int port) const {
    return port >= 4 * c_ * spec().chan_width;
  }

  /// M: bits per connection-list endpoint for this region size.
  unsigned port_field_bits() const;
  /// Bits of the route-count field: Table I's ceil(log2(2W)) for c = 1,
  /// widened to the endpoint-field width for clusters (which can hold one
  /// connection per out-port).
  unsigned route_count_bits() const;

  // --- switch adjacency ------------------------------------------------------
  struct Adj {
    std::int32_t to;
    std::int16_t macro;  ///< region-macro index uy*c+ux owning the switch
    std::int16_t point;  ///< switch-point index in the MacroModel
    std::int8_t pair;    ///< arm-pair index within the point
  };
  std::span<const Adj> adjacency(int node) const {
    return {adj_data_.data() + adj_begin_[node],
            adj_data_.data() + adj_begin_[node + 1]};
  }

  /// Bit index of a switch within the region's routing payload: macros in
  /// region row-major order, (Nraw - NLB) routing bits each.
  int switch_bit(int macro, int point, int pair) const {
    return macro * spec().nroute_bits() +
           macro_.switch_points()[static_cast<std::size_t>(point)].bit_offset +
           pair;
  }

 private:
  MacroModel macro_;
  int c_;
  int rw_;
  int rh_;
  int num_nodes_ = 0;
  std::vector<std::int32_t> node_of_raw_;
  std::vector<std::int16_t> tile_x_, tile_y_;
  std::vector<std::int32_t> port_node_;
  std::vector<std::int32_t> node_port_;
  std::vector<std::size_t> adj_begin_;
  std::vector<Adj> adj_data_;
};

}  // namespace vbs
