// vbsgen: the Virtual Bit-Stream generation backend (paper Section III-B).
//
// Consumes the placed-and-routed design and produces a VbsImage:
//   1. every net's route tree is cut at decode-region boundaries; within a
//      region, each connected piece becomes one signal described by
//      (in, out*) port pairs — `in` being the terminal nearest the driver;
//   2. the online de-virtualization algorithm is run offline as a feedback
//      loop; if the greedy decode fails for the emitted order, the
//      connection list is re-ordered (deterministic heuristics, then seeded
//      shuffles);
//   3. if no feasible order is found — or the coded list is no smaller —
//      the region falls back to raw coding, which keeps the stream always
//      decodable and never larger than necessary.
#pragma once

#include <cstdint>

#include "fabric/fabric.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"
#include "route/router.h"
#include "vbs/vbs_format.h"

namespace vbs {

struct EncodeOptions {
  int cluster = 1;
  /// Seeded shuffle attempts after the deterministic orders fail.
  int reorder_attempts = 24;
  std::uint64_t seed = 0x5eed;
  /// Negotiation budget of the decode feedback loop; 1 = pure greedy
  /// decoding (the decoder must then use the same budget online).
  int decode_iterations = 24;
  /// Fan-out-compact connection coding (the "smarter coding" extension of
  /// paper Section V): each signal's `in` port is stored once with an
  /// out-list instead of once per connection. Re-ordering then permutes
  /// whole signals (and outs within a signal) to keep the stream groupable.
  bool compact_fanout = false;
  /// Ablation switches (bench/encode_ablation):
  bool force_raw = false;      ///< code every region raw (no virtualization)
  bool no_reorder = false;     ///< first-order-only feedback, raw on failure
  bool size_fallback = true;   ///< raw when the list coding is not smaller
};

struct EncodeStats {
  int entries = 0;
  int raw_entries = 0;            ///< total raw-coded regions
  int conflict_fallbacks = 0;     ///< raw because no order decoded
  int size_fallbacks = 0;         ///< raw because the list was bigger
  int overflow_fallbacks = 0;     ///< raw because of route-count overflow
  int reordered_entries = 0;      ///< decoded only after re-ordering
  long long connections = 0;
  std::size_t vbs_bits = 0;
  std::size_t raw_bits = 0;       ///< size of the equivalent raw bit-stream

  double compression_ratio() const {
    return raw_bits == 0 ? 0.0
                         : static_cast<double>(vbs_bits) /
                               static_cast<double>(raw_bits);
  }
};

/// Encodes a routed design whose task footprint is the whole `fabric`.
/// The returned image decodes (devirtualize_image) at any origin of any
/// compatible fabric. Throws std::logic_error on malformed route trees.
VbsImage encode_vbs(const Fabric& fabric, const Netlist& nl,
                    const PackedDesign& pd, const Placement& pl,
                    const std::vector<NetRoute>& routes,
                    const EncodeOptions& opts = {},
                    EncodeStats* stats = nullptr);

}  // namespace vbs
