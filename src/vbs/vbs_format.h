// The Virtual Bit-Stream binary format (paper Table I).
//
// Layout (all fields MSB-first, widths in bits):
//
//   preamble   version(4) W(8) K(4) sb_pattern(2) compact(1) cluster(6) D(6)
//   header     task_w(D) task_h(D) entry_count(E)
//   entry*     flag(1) pos_x(D) pos_y(D) <logic> <routing>
//
// where D = ceil(log2(max(task_w, task_h)+1)) dimension-field width,
// E = ceil(log2(cw*ch+1)) with cw x ch the cluster grid. Per entry:
//
//   logic    c = 1:  NLB bits (LUT mask LSB-first + FF bit; Table I)
//            c > 1:  c^2 occupancy bitmap, then NLB bits per used LB
//   routing  flag=1: raw fallback, c^2 * (Nraw - NLB) switch bits
//            flag=0: when the stream's compact(1) preamble bit is set, one
//            more per-entry bit selects the coding (the encoder picks the
//            smaller); otherwise Table I coding is implied:
//              Table I coding:
//                route_count(RC) then per connection in(M) out(M)
//              fan-out coding (the "smarter coding" extension of paper
//              Section V):
//                group_count(RC) then per signal in(M) out_count(RC)
//                out(M)*; connections sharing an `in` are coded once
//
// RC = ceil(log2(2W)) at c=1 (Table I) and the endpoint width M for
// clusters; M = ceil(log2(4cW + c^2 L + 1)) as in the paper. The preamble,
// the per-entry flag bit and the cluster occupancy bitmap are additions
// Table I leaves implicit (self-description, the paper's raw-fallback
// behaviour, and per-LB logic presence); DESIGN.md documents them.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_spec.h"
#include "bitstream/bitstream.h"
#include "util/bitvector.h"

namespace vbs {

struct VbsConnection {
  std::uint16_t in;
  std::uint16_t out;
  friend bool operator==(const VbsConnection&, const VbsConnection&) = default;
};

/// One macro (c=1) or cluster (c>1) record.
struct VbsEntry {
  std::uint16_t cx = 0;  ///< cluster-grid position within the task
  std::uint16_t cy = 0;
  bool raw = false;
  /// Fan-out-compact coding for this entry (only meaningful when the
  /// stream's compact_fanout flag is set; the encoder picks per entry
  /// whichever coding is smaller).
  bool compact = false;
  /// c^2 logic configurations, region row-major ((0,0),(1,0),...).
  std::vector<LogicConfig> logic;
  /// Connection list (flag=0): the de-virtualizer routes these in order.
  std::vector<VbsConnection> conns;
  /// Raw routing payload (flag=1): c^2 * (Nraw-NLB) bits, region row-major.
  BitVector raw_routing;
};

struct VbsImage {
  ArchSpec spec;
  int task_w = 0;  ///< task footprint in macros
  int task_h = 0;
  int cluster = 1;
  /// Fan-out-compact connection coding; requires every entry's connection
  /// list to be grouped (all pairs sharing an `in` contiguous).
  bool compact_fanout = false;
  std::vector<VbsEntry> entries;

  int cluster_grid_w() const { return (task_w + cluster - 1) / cluster; }
  int cluster_grid_h() const { return (task_h + cluster - 1) / cluster; }
};

/// Decode-time resource guards: deserialize_vbs rejects headers whose
/// task area or per-entry region footprint exceeds these with a typed
/// kResourceLimit error, so a hostile 31-bit preamble cannot demand
/// gigabytes of region-model or payload memory. Both are far above any
/// fabric the paper (W=20, c<=8) or this repo's encoder produces.
inline constexpr std::uint64_t kMaxTaskMacros = std::uint64_t{1} << 20;
inline constexpr std::uint64_t kMaxEntryConfigBits = std::uint64_t{1} << 22;

/// Serializes to the on-wire bit format; the paper's compressed sizes are
/// measured as serialize(img).size().
BitVector serialize_vbs(const VbsImage& img);

/// Parses a serialized stream back; throws BitstreamError carrying a
/// specific VbsErrc on malformed input — truncation, bad version/header,
/// duplicate or out-of-range entries, invalid connection lists, trailing
/// bits, or a resource-limit violation. Round-trips exactly with
/// serialize_vbs. Never crashes or reads out of bounds on arbitrary input
/// (tools/vbsfuzz.cpp holds this as a hard invariant).
VbsImage deserialize_vbs(const BitVector& bits);

/// Size in bits the image will serialize to, without serializing.
std::size_t vbs_size_bits(const VbsImage& img);

/// Run lengths of consecutive same-`in` connections. Throws
/// std::invalid_argument if an `in` port recurs non-contiguously (the list
/// is then not groupable for compact fan-out coding).
std::vector<std::size_t> fanout_groups(const std::vector<VbsConnection>& conns);

/// Raw (uncompressed) size of the same task: w*h*Nraw bits.
std::size_t raw_size_bits(const ArchSpec& spec, int task_w, int task_h);

}  // namespace vbs
