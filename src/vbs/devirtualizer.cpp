#include "vbs/devirtualizer.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <stdexcept>

#include "util/error.h"

namespace vbs {

DecodeStats& DecodeStats::operator+=(const DecodeStats& o) {
  pairs_routed += o.pairs_routed;
  pairs_failed += o.pairs_failed;
  nodes_expanded += o.nodes_expanded;
  entries_decoded += o.entries_decoded;
  raw_entries += o.raw_entries;
  negotiation_iterations += o.negotiation_iterations;
  return *this;
}

namespace {

struct HeapEntry {
  float est;
  float cost;
  std::int32_t node;
  bool operator>(const HeapEntry& o) const {
    if (est != o.est) return est > o.est;
    return node > o.node;  // deterministic tie-break
  }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

}  // namespace

Devirtualizer::Devirtualizer(const RegionModel& region) : region_(&region) {
  const auto n = static_cast<std::size_t>(region.num_nodes());
  occ_.assign(n, 0);
  hist_.assign(n, 0.0f);
  cost_.assign(n, 0.0f);
  back_.assign(n, -1);
  back_bit_.assign(n, -1);
  visit_epoch_.assign(n, 0);
  port_group_.assign(static_cast<std::size_t>(region.num_ports()), -1);
}

bool Devirtualizer::route_group(Group& g, double pres_fac) {
  const RegionModel& rm = *region_;
  const int scale =
      std::min(rm.spec().pins_on_x(), rm.spec().pins_on_y()) + 1;

  g.tree.clear();
  g.tree.push_back({g.source_node, -1});
  ++occ_[static_cast<std::size_t>(g.source_node)];

  for (const int target : g.targets) {
    if (target == g.source_node) continue;
    // Already absorbed into the tree by an earlier pair's path?
    bool in_tree = false;
    for (const TreeNode& tn : g.tree) in_tree |= (tn.node == target);
    if (in_tree) continue;

    ++search_epoch_;
    MinHeap heap;
    const Point tp = rm.node_tile(target);
    auto heur = [&](int v) {
      const Point p = rm.node_tile(v);
      return static_cast<float>(scale * (std::abs(p.x - tp.x) +
                                         std::abs(p.y - tp.y)));
    };
    for (const TreeNode& tn : g.tree) {
      const auto v = static_cast<std::size_t>(tn.node);
      visit_epoch_[v] = search_epoch_;
      cost_[v] = 0.0f;
      back_[v] = -1;
      back_bit_[v] = -1;
      heap.push({heur(tn.node), 0.0f, tn.node});
    }
    bool found = false;
    while (!heap.empty()) {
      const HeapEntry top = heap.top();
      heap.pop();
      ++expanded_;
      const auto u = static_cast<std::size_t>(top.node);
      if (visit_epoch_[u] != search_epoch_ || cost_[u] != top.cost) continue;
      if (top.node == target) {
        found = true;
        break;
      }
      for (const RegionModel::Adj& adj : rm.adjacency(top.node)) {
        const auto v = static_cast<std::size_t>(adj.to);
        // Port wires are reserved for the signal that declares them; this
        // is a hard constraint, not a negotiable cost (it protects wires
        // shared with neighbouring, independently decoded regions).
        const int port = rm.node_port(adj.to);
        if (port >= 0 &&
            port_group_[static_cast<std::size_t>(port)] != g.id) {
          continue;
        }
        const float nc =
            top.cost +
            (1.0f + hist_[v]) *
                (1.0f + static_cast<float>(pres_fac) * occ_[v]);
        if (visit_epoch_[v] != search_epoch_ || nc < cost_[v]) {
          visit_epoch_[v] = search_epoch_;
          cost_[v] = nc;
          back_[v] = top.node;
          back_bit_[v] = rm.switch_bit(adj.macro, adj.point, adj.pair);
          heap.push({nc + heur(adj.to), nc, adj.to});
        }
      }
    }
    if (!found) return false;
    int v = target;
    while (back_[static_cast<std::size_t>(v)] != -1) {
      g.tree.push_back({v, back_bit_[static_cast<std::size_t>(v)]});
      ++occ_[static_cast<std::size_t>(v)];
      v = back_[static_cast<std::size_t>(v)];
    }
  }
  return true;
}

void Devirtualizer::rip_up(Group& g) {
  for (const TreeNode& tn : g.tree) {
    --occ_[static_cast<std::size_t>(tn.node)];
  }
  g.tree.clear();
}

bool Devirtualizer::decode_entry(const VbsEntry& entry, BitVector& routing_out,
                                 DecodeStats* stats) {
  const RegionModel& rm = *region_;
  const int c = rm.cluster();
  const std::size_t payload_bits =
      static_cast<std::size_t>(c) * c * rm.spec().nroute_bits();

  if (stats) ++stats->entries_decoded;
  if (entry.raw) {
    routing_out = entry.raw_routing;
    if (stats) ++stats->raw_entries;
    return true;
  }
  routing_out.resize(payload_bits);
  routing_out.reset();
  if (entry.conns.empty()) return true;

  // --- signal groups: one per distinct `in` port --------------------------
  std::fill(port_group_.begin(), port_group_.end(), -1);
  groups_.clear();
  auto claim_port = [&](int port, int group) -> bool {
    if (port < 0 || port >= rm.num_ports()) return false;
    const auto sp = static_cast<std::size_t>(port);
    if (port_group_[sp] != -1) return port_group_[sp] == group;
    port_group_[sp] = group;
    return true;
  };
  for (const VbsConnection& conn : entry.conns) {
    if (conn.in == conn.out) return false;
    if (conn.in >= rm.num_ports() || conn.out >= rm.num_ports()) return false;
    // Ports outside a partial region's extent carry no wire.
    if (rm.port_node(conn.in) < 0 || rm.port_node(conn.out) < 0) return false;
    int g = port_group_[static_cast<std::size_t>(conn.in)];
    if (g == -1) {
      g = static_cast<int>(groups_.size());
      groups_.push_back({});
      groups_.back().id = g;
      groups_.back().source_node = rm.port_node(conn.in);
      claim_port(conn.in, g);
    }
    // An `out` already claimed by a different signal is a short: reject.
    if (!claim_port(conn.out, g)) return false;
    groups_[static_cast<std::size_t>(g)].targets.push_back(
        rm.port_node(conn.out));
  }

  // --- negotiated-congestion decode ---------------------------------------
  // First pass is the pure greedy, stateful decode (paper Section II-C);
  // remaining iterations negotiate conflicts exactly like the global
  // router, which is the "higher computing power" the paper attributes to
  // coarser-grain decoding (Section IV-B).
  std::fill(occ_.begin(), occ_.end(), 0);
  std::fill(hist_.begin(), hist_.end(), 0.0f);
  expanded_ = 0;

  double pres_fac = 0.0;
  bool converged = false;
  for (int iter = 1; iter <= max_iterations_; ++iter) {
    if (stats) ++stats->negotiation_iterations;
    for (Group& g : groups_) {
      if (iter > 1) {
        bool congested = false;
        for (const TreeNode& tn : g.tree) {
          congested |= occ_[static_cast<std::size_t>(tn.node)] > 1;
        }
        if (!congested) continue;
        rip_up(g);
      }
      if (!route_group(g, pres_fac)) {
        if (stats) {
          ++stats->pairs_failed;
          stats->nodes_expanded += expanded_;
        }
        return false;
      }
    }
    std::size_t overused = 0;
    for (std::size_t v = 0; v < occ_.size(); ++v) {
      if (occ_[v] > 1) {
        ++overused;
        hist_[v] += static_cast<float>(occ_[v] - 1);
      }
    }
    if (overused == 0) {
      converged = true;
      break;
    }
    pres_fac = iter == 1 ? 1.0 : pres_fac * 2.0;
  }
  if (stats) {
    stats->nodes_expanded += expanded_;
    stats->pairs_routed += static_cast<long long>(entry.conns.size());
  }
  if (!converged) {
    if (stats) ++stats->pairs_failed;
    return false;
  }

  // --- realize switches ------------------------------------------------------
  for (const Group& g : groups_) {
    for (const TreeNode& tn : g.tree) {
      if (tn.switch_bit >= 0) {
        routing_out.set(static_cast<std::size_t>(tn.switch_bit), true);
      }
    }
  }
  return true;
}

void write_entry_config(const VbsImage& img, const VbsEntry& entry,
                        const BitVector& routing, const Fabric& target,
                        Point origin, BitVector& config) {
  const ArchSpec& spec = img.spec;
  const int c = img.cluster;
  const int nlb = spec.nlb_bits();
  const int rbits = spec.nroute_bits();
  for (int uy = 0; uy < c; ++uy) {
    for (int ux = 0; ux < c; ++ux) {
      const int tx = entry.cx * c + ux;
      const int ty = entry.cy * c + uy;
      if (tx >= img.task_w || ty >= img.task_h) continue;  // partial cluster
      const int m = target.macro_index(origin.x + tx, origin.y + ty);
      const std::size_t base = target.macro_config_offset(m);
      const int u = uy * c + ux;
      const LogicConfig& lc = entry.logic[static_cast<std::size_t>(u)];
      if (lc.used) {
        BitVector lbits;
        append_logic_bits(lbits, lc, spec);
        config.overwrite(base, lbits);
      }
      const std::size_t src = static_cast<std::size_t>(u) * rbits;
      for (int b = 0; b < rbits; ++b) {
        if (routing.get(src + static_cast<std::size_t>(b))) {
          config.set(base + static_cast<std::size_t>(nlb) +
                         static_cast<std::size_t>(b),
                     true);
        }
      }
    }
  }
}

RegionDecoderCache::RegionDecoderCache(const ArchSpec& spec, int cluster,
                                       int task_w, int task_h)
    : spec_(spec), c_(cluster), task_w_(task_w), task_h_(task_h) {}

std::pair<int, int> RegionDecoderCache::extent_of(int cx, int cy) const {
  return {std::min(c_, task_w_ - cx * c_), std::min(c_, task_h_ - cy * c_)};
}

RegionDecoderCache::Slot& RegionDecoderCache::slot_for(int cx, int cy) {
  const auto key = extent_of(cx, cy);
  if (key.first < 1 || key.second < 1) {
    throw VbsError(VbsErrc::kBadEntry,
                   "region cache: entry outside the task");
  }
  Slot& slot = slots_[key];
  if (!slot.region) {
    slot.region =
        std::make_unique<RegionModel>(spec_, c_, key.first, key.second);
    slot.decoder = std::make_unique<Devirtualizer>(*slot.region);
  }
  return slot;
}

const RegionModel& RegionDecoderCache::region_for(int cx, int cy) {
  return *slot_for(cx, cy).region;
}

Devirtualizer& RegionDecoderCache::decoder_for(int cx, int cy) {
  return *slot_for(cx, cy).decoder;
}

BitVector devirtualize_image(const VbsImage& img, const Fabric& target,
                             Point origin, DecodeStats* stats) {
  if (img.spec.chan_width != target.spec().chan_width ||
      img.spec.lut_k != target.spec().lut_k ||
      img.spec.sb_pattern != target.spec().sb_pattern) {
    throw VbsError(VbsErrc::kArchMismatch,
                   "devirtualize: architecture mismatch");
  }
  if (origin.x < 0 || origin.y < 0 ||
      origin.x + img.task_w > target.width() ||
      origin.y + img.task_h > target.height()) {
    throw VbsError(VbsErrc::kNoPlacement,
                   "devirtualize: task does not fit at origin");
  }
  RegionDecoderCache cache(img.spec, img.cluster, img.task_w, img.task_h);
  BitVector config(target.config_bits_total());
  BitVector routing;
  for (const VbsEntry& e : img.entries) {
    if (!cache.decoder_for(e.cx, e.cy).decode_entry(e, routing, stats)) {
      throw VbsError(
          VbsErrc::kDecodeFailed,
          "devirtualize: connection list failed to route (entry at " +
          std::to_string(e.cx) + "," + std::to_string(e.cy) + ")");
    }
    write_entry_config(img, e, routing, target, origin, config);
  }
  return config;
}

}  // namespace vbs
