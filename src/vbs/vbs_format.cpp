#include "vbs/vbs_format.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/bitio.h"
#include "vbs/region_model.h"

namespace vbs {

namespace {

constexpr unsigned kVersion = 1;

struct FieldWidths {
  unsigned dim;       // D
  unsigned entry;     // E
  unsigned route;     // RC
  unsigned port;      // M
  int nlb;
  int route_bits;     // per-macro raw routing payload
};

FieldWidths widths_of(const VbsImage& img) {
  FieldWidths fw{};
  fw.dim = bits_for(static_cast<std::uint64_t>(
                        std::max(img.task_w, img.task_h)) +
                    1);
  fw.entry = bits_for(static_cast<std::uint64_t>(img.cluster_grid_w()) *
                          img.cluster_grid_h() +
                      1);
  const int c = img.cluster;
  const ArchSpec& s = img.spec;
  fw.port = bits_for(static_cast<std::uint64_t>(4 * c * s.chan_width) +
                     static_cast<std::uint64_t>(c) * c * s.lb_pins() + 1);
  // Matches RegionModel::route_count_bits: Table I's ceil(log2(2W)) at the
  // finest grain, endpoint-field width for clusters.
  fw.route = c == 1 ? bits_for(static_cast<std::uint64_t>(2 * s.chan_width))
                    : fw.port;
  fw.nlb = s.nlb_bits();
  fw.route_bits = s.nroute_bits();
  return fw;
}

}  // namespace

std::vector<std::size_t> fanout_groups(
    const std::vector<VbsConnection>& conns) {
  std::vector<std::size_t> runs;
  std::set<std::uint16_t> seen;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    if (i > 0 && conns[i].in == conns[i - 1].in) {
      ++runs.back();
      continue;
    }
    if (!seen.insert(conns[i].in).second) {
      throw std::invalid_argument(
          "fanout_groups: connection list is not grouped by `in`");
    }
    runs.push_back(1);
  }
  return runs;
}

std::size_t raw_size_bits(const ArchSpec& spec, int task_w, int task_h) {
  return static_cast<std::size_t>(task_w) * static_cast<std::size_t>(task_h) *
         static_cast<std::size_t>(spec.nraw_bits());
}

BitVector serialize_vbs(const VbsImage& img) {
  const FieldWidths fw = widths_of(img);
  const int c = img.cluster;
  BitWriter w;
  w.write(kVersion, 4);
  w.write(static_cast<std::uint64_t>(img.spec.chan_width), 8);
  w.write(static_cast<std::uint64_t>(img.spec.lut_k), 4);
  w.write(static_cast<std::uint64_t>(img.spec.sb_pattern), 2);
  w.write_bit(img.compact_fanout);
  w.write(static_cast<std::uint64_t>(c), 6);
  w.write(fw.dim, 6);
  w.write(static_cast<std::uint64_t>(img.task_w), fw.dim);
  w.write(static_cast<std::uint64_t>(img.task_h), fw.dim);
  w.write(img.entries.size(), fw.entry);

  for (const VbsEntry& e : img.entries) {
    if (e.cx >= img.cluster_grid_w() || e.cy >= img.cluster_grid_h()) {
      throw std::invalid_argument("serialize_vbs: entry position out of range");
    }
    w.write_bit(e.raw);
    w.write(e.cx, fw.dim);
    w.write(e.cy, fw.dim);
    if (static_cast<int>(e.logic.size()) != c * c) {
      throw std::invalid_argument("serialize_vbs: bad logic vector size");
    }
    if (c == 1) {
      BitVector lb;
      append_logic_bits(lb, e.logic[0], img.spec);
      w.write_vector(lb);
    } else {
      for (const LogicConfig& lc : e.logic) w.write_bit(lc.used);
      for (const LogicConfig& lc : e.logic) {
        if (!lc.used) continue;
        BitVector lb;
        append_logic_bits(lb, lc, img.spec);
        w.write_vector(lb);
      }
    }
    if (e.raw) {
      if (static_cast<int>(e.raw_routing.size()) != c * c * fw.route_bits) {
        throw std::invalid_argument("serialize_vbs: bad raw payload size");
      }
      w.write_vector(e.raw_routing);
      continue;
    }
    if (img.compact_fanout) w.write_bit(e.compact);
    if (!e.compact) {
      // Table I coding: (in, out) per connection.
      if (e.conns.size() >= (std::uint64_t{1} << fw.route)) {
        throw std::invalid_argument(
            "serialize_vbs: connection list exceeds route-count field");
      }
      w.write(e.conns.size(), fw.route);
      for (const VbsConnection& conn : e.conns) {
        w.write(conn.in, fw.port);
        w.write(conn.out, fw.port);
      }
    } else {
      if (!img.compact_fanout) {
        throw std::invalid_argument(
            "serialize_vbs: compact entry in a non-compact stream");
      }
      // Fan-out coding: runs of pairs sharing an `in` become one record.
      const auto groups = fanout_groups(e.conns);
      if (groups.size() >= (std::uint64_t{1} << fw.route)) {
        throw std::invalid_argument(
            "serialize_vbs: group list exceeds route-count field");
      }
      w.write(groups.size(), fw.route);
      std::size_t cursor = 0;
      for (const std::size_t len : groups) {
        w.write(e.conns[cursor].in, fw.port);
        if (len >= (std::uint64_t{1} << fw.route)) {
          throw std::invalid_argument(
              "serialize_vbs: fan-out exceeds count field");
        }
        w.write(len, fw.route);
        for (std::size_t k = 0; k < len; ++k) {
          w.write(e.conns[cursor + k].out, fw.port);
        }
        cursor += len;
      }
    }
  }
  return w.take();
}

std::size_t vbs_size_bits(const VbsImage& img) {
  const FieldWidths fw = widths_of(img);
  const int c = img.cluster;
  std::size_t bits = 4 + 8 + 4 + 2 + 1 + 6 + 6 + 2 * fw.dim + fw.entry;
  for (const VbsEntry& e : img.entries) {
    bits += 1 + 2 * fw.dim;
    if (c == 1) {
      bits += static_cast<std::size_t>(fw.nlb);
    } else {
      bits += static_cast<std::size_t>(c) * c;
      for (const LogicConfig& lc : e.logic) {
        if (lc.used) bits += static_cast<std::size_t>(fw.nlb);
      }
    }
    if (e.raw) {
      bits += static_cast<std::size_t>(c) * c * fw.route_bits;
      continue;
    }
    if (img.compact_fanout) bits += 1;  // per-entry coding-select bit
    if (!e.compact) {
      bits += fw.route + e.conns.size() * 2 * fw.port;
    } else {
      const std::size_t groups = fanout_groups(e.conns).size();
      bits += fw.route + groups * (fw.port + fw.route) +
              e.conns.size() * fw.port;
    }
  }
  return bits;
}

VbsImage deserialize_vbs(const BitVector& bits) {
  BitReader r(bits);
  const auto version = r.read(4);
  if (version != kVersion) {
    throw BitstreamError("VBS: unsupported format version",
                         VbsErrc::kBadVersion);
  }
  VbsImage img;
  img.spec.chan_width = static_cast<int>(r.read(8));
  img.spec.lut_k = static_cast<int>(r.read(4));
  const auto pattern = r.read(2);
  if (pattern > 1) {
    throw BitstreamError("VBS: unknown switch-box pattern",
                         VbsErrc::kBadHeader);
  }
  img.spec.sb_pattern = static_cast<SbPattern>(pattern);
  img.compact_fanout = r.read_bit();
  try {
    img.spec.validate();
  } catch (const std::exception& ex) {
    throw BitstreamError(std::string("VBS: bad architecture: ") + ex.what(),
                         VbsErrc::kBadHeader);
  }
  img.cluster = static_cast<int>(r.read(6));
  if (img.cluster < 1) {
    throw BitstreamError("VBS: bad cluster size", VbsErrc::kBadHeader);
  }
  const unsigned dim = static_cast<unsigned>(r.read(6));
  if (dim == 0 || dim > 16) {
    throw BitstreamError("VBS: bad dimension width", VbsErrc::kBadHeader);
  }
  img.task_w = static_cast<int>(r.read(dim));
  img.task_h = static_cast<int>(r.read(dim));
  if (img.task_w < 1 || img.task_h < 1) {
    throw BitstreamError("VBS: bad task dimensions", VbsErrc::kBadHeader);
  }
  // Resource guards: a well-formed header may still describe a task whose
  // decode-time footprint (region models, per-entry raw payloads) would be
  // absurd. Hostile streams are rejected here with a typed code instead of
  // exhausting memory later; the limits are far above anything the paper's
  // fabrics (or this repo's encoder) produce.
  if (static_cast<std::uint64_t>(img.task_w) * img.task_h >
      kMaxTaskMacros) {
    throw BitstreamError("VBS: task area exceeds resource limit",
                         VbsErrc::kResourceLimit);
  }
  if (static_cast<std::uint64_t>(img.cluster) * img.cluster *
          static_cast<std::uint64_t>(img.spec.nraw_bits()) >
      kMaxEntryConfigBits) {
    throw BitstreamError("VBS: per-entry region exceeds resource limit",
                         VbsErrc::kResourceLimit);
  }
  const FieldWidths fw = widths_of(img);
  if (fw.dim != dim) {
    throw BitstreamError("VBS: inconsistent dimension width",
                         VbsErrc::kBadHeader);
  }
  const auto n_entries = r.read(fw.entry);
  const int c = img.cluster;
  const std::uint64_t grid_cells =
      static_cast<std::uint64_t>(img.cluster_grid_w()) * img.cluster_grid_h();
  if (n_entries > grid_cells) {
    throw BitstreamError("VBS: more entries than cluster positions",
                         VbsErrc::kBadEntry);
  }
  std::vector<bool> seen_pos(static_cast<std::size_t>(grid_cells), false);

  for (std::uint64_t i = 0; i < n_entries; ++i) {
    VbsEntry e;
    e.raw = r.read_bit();
    e.cx = static_cast<std::uint16_t>(r.read(fw.dim));
    e.cy = static_cast<std::uint16_t>(r.read(fw.dim));
    if (e.cx >= img.cluster_grid_w() || e.cy >= img.cluster_grid_h()) {
      throw BitstreamError("VBS: entry position out of range",
                           VbsErrc::kBadEntry);
    }
    const std::size_t pos =
        static_cast<std::size_t>(e.cy) * img.cluster_grid_w() + e.cx;
    if (seen_pos[pos]) {
      throw BitstreamError("VBS: duplicate entry position",
                           VbsErrc::kBadEntry);
    }
    seen_pos[pos] = true;
    e.logic.resize(static_cast<std::size_t>(c) * c);
    if (c == 1) {
      const BitVector lb = r.read_vector(static_cast<std::size_t>(fw.nlb));
      e.logic[0] = parse_logic_bits(lb, 0, img.spec);
    } else {
      for (LogicConfig& lc : e.logic) lc.used = r.read_bit();
      for (LogicConfig& lc : e.logic) {
        if (!lc.used) continue;
        const BitVector lb = r.read_vector(static_cast<std::size_t>(fw.nlb));
        const bool used = lc.used;
        lc = parse_logic_bits(lb, 0, img.spec);
        lc.used = used;
      }
    }
    if (e.raw) {
      e.raw_routing =
          r.read_vector(static_cast<std::size_t>(c) * c * fw.route_bits);
    } else {
      const std::uint64_t max_port =
          static_cast<std::uint64_t>(4 * c * img.spec.chan_width) +
          static_cast<std::uint64_t>(c) * c * img.spec.lb_pins();
      auto checked = [&](std::uint64_t v) {
        if (v >= max_port) {
          throw BitstreamError("VBS: connection endpoint out of range",
                               VbsErrc::kBadConnection);
        }
        return static_cast<std::uint16_t>(v);
      };
      e.compact = img.compact_fanout ? r.read_bit() : false;
      if (!e.compact) {
        const auto n_conns = r.read(fw.route);
        // Each connection claims a distinct output port, so any valid list
        // has at most num_ports entries; rejecting larger counts up front
        // also bounds the reserve below by the region size.
        if (n_conns > max_port) {
          throw BitstreamError("VBS: connection count exceeds region ports",
                               VbsErrc::kBadConnection);
        }
        e.conns.reserve(static_cast<std::size_t>(n_conns));
        for (std::uint64_t k = 0; k < n_conns; ++k) {
          VbsConnection conn;
          conn.in = checked(r.read(fw.port));
          conn.out = checked(r.read(fw.port));
          if (conn.in == conn.out) {
            throw BitstreamError("VBS: connection to itself",
                                 VbsErrc::kBadConnection);
          }
          e.conns.push_back(conn);
        }
      } else {
        const auto n_groups = r.read(fw.route);
        if (n_groups > max_port) {
          throw BitstreamError("VBS: fan-out group count exceeds region ports",
                               VbsErrc::kBadConnection);
        }
        for (std::uint64_t g = 0; g < n_groups; ++g) {
          const std::uint16_t in = checked(r.read(fw.port));
          const auto n_outs = r.read(fw.route);
          if (n_outs == 0) {
            throw BitstreamError("VBS: empty fan-out group",
                                 VbsErrc::kBadConnection);
          }
          if (e.conns.size() + n_outs > max_port) {
            throw BitstreamError("VBS: fan-out total exceeds region ports",
                                 VbsErrc::kBadConnection);
          }
          for (std::uint64_t k = 0; k < n_outs; ++k) {
            const std::uint16_t out = checked(r.read(fw.port));
            if (in == out) {
              throw BitstreamError("VBS: connection to itself",
                                   VbsErrc::kBadConnection);
            }
            e.conns.push_back({in, out});
          }
        }
      }
    }
    img.entries.push_back(std::move(e));
  }
  if (!r.at_end()) {
    throw BitstreamError("VBS: trailing bits", VbsErrc::kTrailingBits);
  }
  return img;
}

}  // namespace vbs
