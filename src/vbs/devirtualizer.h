// The de-virtualization algorithm: the paper's run-time router (Section
// II-C) that expands a region's connection list back into switch
// configurations.
//
// Decoding is a deterministic, stateful process: connections are grouped
// into signals (pairs sharing an `in` port are one signal — the fan-out
// case) and routed strictly in list order by A* over the region's switch
// graph. The first pass is the pure greedy decode; if signals collide, a
// bounded number of negotiated-congestion iterations (the same PathFinder
// scheme as the global router) resolves the conflicts. Port wires are a
// hard constraint throughout — usable only by the signal that declares
// them — which keeps independently decoded neighbouring regions
// electrically consistent. Coarser clusters give the router more freedom
// but more work per entry: exactly the decode-cost trade-off the paper
// describes for clustering (Section IV-B).
//
// Because decoding is deterministic in the connection order, the offline
// encoder runs this exact code as its feedback loop: any order it validates
// is guaranteed to decode online (paper Section III-B).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fabric/fabric.h"
#include "util/bitvector.h"
#include "util/geometry.h"
#include "vbs/region_model.h"
#include "vbs/vbs_format.h"

namespace vbs {

struct DecodeStats {
  long long pairs_routed = 0;
  long long pairs_failed = 0;
  long long nodes_expanded = 0;
  long long entries_decoded = 0;
  long long raw_entries = 0;
  long long negotiation_iterations = 0;

  DecodeStats& operator+=(const DecodeStats& o);
};

/// Routes entries of one region geometry. Reusable across entries; not
/// thread-safe (use one instance per decode thread).
class Devirtualizer {
 public:
  explicit Devirtualizer(const RegionModel& region);

  /// Decodes one connection-list entry into the region's routing payload
  /// (c^2 * (Nraw-NLB) bits, region row-major). Returns false if no valid
  /// switch assignment is found within the iteration budget (the offline
  /// encoder then re-orders or falls back to raw coding). Raw entries are
  /// copied through unchanged.
  bool decode_entry(const VbsEntry& entry, BitVector& routing_out,
                    DecodeStats* stats = nullptr);

  const RegionModel& region() const { return *region_; }

  /// Negotiation budget; 1 degenerates to the pure greedy decoder.
  void set_max_iterations(int n) { max_iterations_ = n; }
  int max_iterations() const { return max_iterations_; }

 private:
  struct TreeNode {
    std::int32_t node;
    std::int32_t switch_bit;  ///< -1 at the tree root
  };
  struct Group {
    int id = 0;
    std::int32_t source_node = -1;
    std::vector<std::int32_t> targets;
    std::vector<TreeNode> tree;
  };

  bool route_group(Group& g, double pres_fac);
  void rip_up(Group& g);

  const RegionModel* region_;
  int max_iterations_ = 24;
  std::vector<Group> groups_;
  std::vector<std::int32_t> port_group_;  ///< per port: declaring group or -1
  // Negotiation state (reset per entry).
  std::vector<std::uint16_t> occ_;
  std::vector<float> hist_;
  // Per-connection A* state, valid while the stamp equals search_epoch_.
  std::vector<float> cost_;
  std::vector<std::int32_t> back_;
  std::vector<std::int32_t> back_bit_;
  std::vector<std::uint32_t> visit_epoch_;
  std::uint32_t search_epoch_ = 0;
  long long expanded_ = 0;
};

/// Lazily builds the region model + decoder for every distinct region shape
/// of a task: the full c x c cluster plus up to three partial extents when
/// the task size is not a multiple of c. Shared by the encoder's feedback
/// loop and the run-time controller.
class RegionDecoderCache {
 public:
  RegionDecoderCache(const ArchSpec& spec, int cluster, int task_w,
                     int task_h);

  /// Extent of the cluster at cluster-grid position (cx, cy).
  std::pair<int, int> extent_of(int cx, int cy) const;
  const RegionModel& region_for(int cx, int cy);
  Devirtualizer& decoder_for(int cx, int cy);

 private:
  struct Slot {
    std::unique_ptr<RegionModel> region;
    std::unique_ptr<Devirtualizer> decoder;
  };
  Slot& slot_for(int cx, int cy);

  ArchSpec spec_;
  int c_;
  int task_w_;
  int task_h_;
  std::map<std::pair<int, int>, Slot> slots_;  ///< keyed by extent
};

/// Decodes a whole image into a full-fabric raw configuration, placing the
/// task origin at `origin` (relocation: the same image decodes at any
/// origin, paper Section I). Throws std::runtime_error if any entry fails —
/// impossible for encoder-validated images — or if the task does not fit.
BitVector devirtualize_image(const VbsImage& img, const Fabric& target,
                             Point origin, DecodeStats* stats = nullptr);

/// Writes one decoded entry (logic + routing payload) into a full-fabric
/// configuration image with the task origin at `origin`.
void write_entry_config(const VbsImage& img, const VbsEntry& entry,
                        const BitVector& routing, const Fabric& target,
                        Point origin, BitVector& config);

}  // namespace vbs
