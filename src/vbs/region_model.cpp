#include "vbs/region_model.h"

#include <cassert>
#include <numeric>
#include <stdexcept>

#include "util/bitio.h"

namespace vbs {

RegionModel::RegionModel(const ArchSpec& spec, int cluster, int extent_w,
                         int extent_h)
    : macro_(spec),
      c_(cluster),
      rw_(extent_w < 0 ? cluster : extent_w),
      rh_(extent_h < 0 ? cluster : extent_h) {
  if (cluster < 1 || cluster > 63) {
    throw std::invalid_argument("RegionModel: cluster size out of range");
  }
  if (rw_ < 1 || rw_ > c_ || rh_ < 1 || rh_ > c_) {
    throw std::invalid_argument("RegionModel: extent out of range");
  }
  const int nloc = macro_.num_nodes();
  const int w = spec.chan_width;
  const int px = spec.pins_on_x();
  const int py = spec.pins_on_y();
  // Raw id space covers the full c x c grid for stable indexing; only the
  // extent is populated.
  const std::size_t nraw =
      static_cast<std::size_t>(num_macros()) * static_cast<std::size_t>(nloc);

  auto raw_id = [&](int ux, int uy, int local) {
    return static_cast<std::size_t>(uy * c_ + ux) * nloc + local;
  };
  auto exists = [&](int ux, int uy) { return ux < rw_ && uy < rh_; };

  // Union-find merging abutted wires between region macros within the
  // extent.
  std::vector<std::int32_t> parent(nraw);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](std::int32_t a) {
    while (parent[static_cast<std::size_t>(a)] != a) {
      parent[static_cast<std::size_t>(a)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(a)])];
      a = parent[static_cast<std::size_t>(a)];
    }
    return a;
  };
  for (int uy = 0; uy < rh_; ++uy) {
    for (int ux = 0; ux < rw_; ++ux) {
      for (int t = 0; t < w; ++t) {
        if (ux + 1 < rw_) {
          parent[static_cast<std::size_t>(
              find(static_cast<std::int32_t>(raw_id(ux, uy, macro_.x(t, px)))))] =
              find(static_cast<std::int32_t>(raw_id(ux + 1, uy, macro_.xw(t))));
        }
        if (uy + 1 < rh_) {
          parent[static_cast<std::size_t>(find(static_cast<std::int32_t>(
              raw_id(ux, uy, macro_.y(t, py)))))] =
              find(static_cast<std::int32_t>(raw_id(ux, uy + 1, macro_.ys(t))));
        }
      }
    }
  }
  node_of_raw_.assign(nraw, -1);
  std::vector<std::int32_t> root_id(nraw, -1);
  for (int uy = 0; uy < rh_; ++uy) {
    for (int ux = 0; ux < rw_; ++ux) {
      for (int local = 0; local < nloc; ++local) {
        const std::size_t i = raw_id(ux, uy, local);
        const std::int32_t r = find(static_cast<std::int32_t>(i));
        if (root_id[static_cast<std::size_t>(r)] < 0) {
          root_id[static_cast<std::size_t>(r)] = num_nodes_++;
        }
        node_of_raw_[i] = root_id[static_cast<std::size_t>(r)];
      }
    }
  }

  tile_x_.assign(static_cast<std::size_t>(num_nodes_), 0);
  tile_y_.assign(static_cast<std::size_t>(num_nodes_), 0);
  for (int uy = 0; uy < rh_; ++uy) {
    for (int ux = 0; ux < rw_; ++ux) {
      for (int local = 0; local < nloc; ++local) {
        const int g = node_of_raw_[raw_id(ux, uy, local)];
        tile_x_[static_cast<std::size_t>(g)] = static_cast<std::int16_t>(ux);
        tile_y_[static_cast<std::size_t>(g)] = static_cast<std::int16_t>(uy);
      }
    }
  }

  // Ports: perimeter track wires of the *extent* plus all existing pins,
  // numbered in the full-c identifier space.
  port_node_.assign(static_cast<std::size_t>(num_ports()), -1);
  node_port_.assign(static_cast<std::size_t>(num_nodes_), -1);
  auto set_port = [&](int port, int node) {
    port_node_[static_cast<std::size_t>(port)] = node;
    node_port_[static_cast<std::size_t>(node)] = port;
  };
  for (int k = 0; k < c_; ++k) {
    for (int t = 0; t < w; ++t) {
      if (k < rh_) {
        set_port(port_of_side(Side::kWest, k, t),
                 node_of_raw_[raw_id(0, k, macro_.xw(t))]);
        set_port(port_of_side(Side::kEast, k, t),
                 node_of_raw_[raw_id(rw_ - 1, k, macro_.x(t, px))]);
      }
      if (k < rw_) {
        set_port(port_of_side(Side::kNorth, k, t),
                 node_of_raw_[raw_id(k, rh_ - 1, macro_.y(t, py))]);
        set_port(port_of_side(Side::kSouth, k, t),
                 node_of_raw_[raw_id(k, 0, macro_.ys(t))]);
      }
    }
  }
  for (int uy = 0; uy < rh_; ++uy) {
    for (int ux = 0; ux < rw_; ++ux) {
      for (int p = 0; p < spec.lb_pins(); ++p) {
        set_port(port_of_pin(ux, uy, p),
                 node_of_raw_[raw_id(ux, uy, macro_.pin_node(p))]);
      }
    }
  }

  // Switch adjacency in CSR form. Adj.macro uses the full-c row-major
  // index, which is also the payload frame index write_entry_config uses.
  const auto& points = macro_.switch_points();
  std::vector<std::uint32_t> degree(static_cast<std::size_t>(num_nodes_), 0);
  auto for_each_switch = [&](auto&& fn) {
    for (int uy = 0; uy < rh_; ++uy) {
      for (int ux = 0; ux < rw_; ++ux) {
        const int m = uy * c_ + ux;
        for (std::size_t pi = 0; pi < points.size(); ++pi) {
          const SwitchPoint& pt = points[pi];
          for (int pair = 0; pair < pt.n_switches(); ++pair) {
            const auto [ai, bi] = pt.pair_arms(pair);
            fn(m, static_cast<int>(pi), pair,
               node_of_raw_[raw_id(ux, uy, pt.arms[ai])],
               node_of_raw_[raw_id(ux, uy, pt.arms[bi])]);
          }
        }
      }
    }
  };
  for_each_switch([&](int, int, int, int ga, int gb) {
    ++degree[static_cast<std::size_t>(ga)];
    ++degree[static_cast<std::size_t>(gb)];
  });
  adj_begin_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (int g = 0; g < num_nodes_; ++g) {
    adj_begin_[static_cast<std::size_t>(g) + 1] =
        adj_begin_[static_cast<std::size_t>(g)] +
        degree[static_cast<std::size_t>(g)];
  }
  adj_data_.resize(adj_begin_[static_cast<std::size_t>(num_nodes_)]);
  std::vector<std::size_t> cursor(adj_begin_.begin(), adj_begin_.end() - 1);
  for_each_switch([&](int m, int pi, int pair, int ga, int gb) {
    adj_data_[cursor[static_cast<std::size_t>(ga)]++] = {
        gb, static_cast<std::int16_t>(m), static_cast<std::int16_t>(pi),
        static_cast<std::int8_t>(pair)};
    adj_data_[cursor[static_cast<std::size_t>(gb)]++] = {
        ga, static_cast<std::int16_t>(m), static_cast<std::int16_t>(pi),
        static_cast<std::int8_t>(pair)};
  });

  (void)exists;
}

unsigned RegionModel::port_field_bits() const {
  return bits_for(static_cast<std::uint64_t>(num_ports()) + 1);
}

unsigned RegionModel::route_count_bits() const {
  // c = 1 follows Table I exactly: ceil(log2(2W)). For clusters the list
  // can legitimately hold up to one connection per out-port, so the field
  // is sized like the endpoint field (DESIGN.md documents the extension).
  if (c_ == 1) {
    return bits_for(static_cast<std::uint64_t>(2 * spec().chan_width));
  }
  return port_field_bits();
}

}  // namespace vbs
