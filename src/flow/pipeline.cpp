#include "flow/pipeline.h"

#include <filesystem>
#include <stdexcept>

#include "flow/artifact_io.h"
#include "netlist/netlist_io.h"
#include "route/route_request.h"
#include "util/bitio.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "vbs/encoder.h"
#include "vbs/vbs_file.h"

namespace vbs {

using namespace artio;  // the artifact format's field primitives

namespace {

constexpr const char* kStageNames[kNumStages] = {"pack", "place", "route",
                                                 "encode"};
constexpr const char* kNetlistFile = "netlist.netl";
constexpr const char* kMetaFile = "flow.meta";
constexpr const char* kArtifactFiles[kNumStages] = {"pack.art", "place.art",
                                                    "route.art", "encode.art"};

std::string join(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

std::uint64_t hash_bool(std::uint64_t h, bool v) {
  return hash_u64(h, v ? 1 : 0);
}

}  // namespace

const char* stage_name(Stage s) { return kStageNames[static_cast<int>(s)]; }

std::optional<Stage> stage_from_string(const std::string& name) {
  for (int i = 0; i < kNumStages; ++i) {
    if (name == kStageNames[i]) return static_cast<Stage>(i);
  }
  return std::nullopt;
}

FlowPipeline::FlowPipeline(Netlist nl, int grid_w, int grid_h,
                           FlowOptions opts, EncodeOptions encode_opts)
    : nl_(std::move(nl)),
      grid_w_(grid_w),
      grid_h_(grid_h),
      opts_(std::move(opts)),
      encode_opts_(encode_opts) {}

std::uint64_t FlowPipeline::netlist_hash() const {
  if (!netlist_hash_) {
    const std::string text = netlist_to_string(nl_);
    netlist_hash_ = fnv1a64(text.data(), text.size());
  }
  return *netlist_hash_;
}

PlaceOptions FlowPipeline::resolved_place_options() const {
  PlaceOptions popts = opts_.place;
  if (popts.seed == 0) popts.seed = opts_.seed;  // 0 = inherit the flow seed
  if (popts.threads == 0) popts.threads = opts_.threads;  // 0 = inherit
  return popts;
}

RouterOptions FlowPipeline::resolved_route_options() const {
  RouterOptions ropts = opts_.route;
  if (ropts.threads == 0) ropts.threads = opts_.threads;  // 0 = inherit
  return ropts;
}

std::uint64_t FlowPipeline::base_fingerprint() const {
  std::uint64_t h = netlist_hash();
  h = hash_u64(h, static_cast<std::uint64_t>(grid_w_));
  h = hash_u64(h, static_cast<std::uint64_t>(grid_h_));
  h = hash_u64(h, static_cast<std::uint64_t>(opts_.arch.chan_width));
  h = hash_u64(h, static_cast<std::uint64_t>(opts_.arch.lut_k));
  h = hash_u64(h, static_cast<std::uint64_t>(opts_.arch.sb_pattern));
  return h;
}

std::uint64_t FlowPipeline::stage_fingerprint(Stage s) const {
  // Chain: every stage's fingerprint covers its own result-relevant
  // options plus everything upstream. Thread counts and speculation batch
  // sizes are deliberately excluded — both engines are thread-count-
  // invariant, so a serial and a parallel run produce interchangeable
  // artifacts.
  std::uint64_t h = hash_u64(base_fingerprint(), static_cast<std::uint64_t>(s));
  if (s == Stage::kPack) return h;
  h = hash_u64(h, stage_fingerprint(Stage::kPack));
  if (s == Stage::kPlace) {
    const PlaceOptions p = resolved_place_options();
    h = hash_u64(h, p.seed);
    h = hash_double(h, p.effort);
    h = hash_u64(h, static_cast<std::uint64_t>(p.io_per_tile));
    // incremental_bbox excluded: bit-identical to the full recompute path
    // by contract (see PlaceOptions).
    return h;
  }
  h = hash_u64(h, stage_fingerprint(Stage::kPlace));
  if (s == Stage::kRoute) {
    const RouterOptions& r = opts_.route;
    h = hash_u64(h, static_cast<std::uint64_t>(r.max_iterations));
    h = hash_double(h, r.first_iter_pres);
    h = hash_double(h, r.initial_pres);
    h = hash_double(h, r.pres_mult);
    h = hash_double(h, r.hist_fac);
    h = hash_double(h, r.astar_fac);
    h = hash_u64(h, static_cast<std::uint64_t>(r.stall_abort));
    h = hash_u64(h, static_cast<std::uint64_t>(r.stall_restarts));
    h = hash_bool(h, r.bounded_box);
    h = hash_u64(h, static_cast<std::uint64_t>(r.bb_margin));
    h = hash_bool(h, r.incremental_reroute);
    // precomputed_cost excluded: the per-iteration congestion-cost stride
    // is bit-identical to the inline recompute path by contract (see
    // RouterOptions), so both settings produce interchangeable artifacts.
    return h;
  }
  h = hash_u64(h, stage_fingerprint(Stage::kRoute));
  const EncodeOptions& e = encode_opts_;
  h = hash_u64(h, static_cast<std::uint64_t>(e.cluster));
  h = hash_u64(h, static_cast<std::uint64_t>(e.reorder_attempts));
  h = hash_u64(h, e.seed);
  h = hash_u64(h, static_cast<std::uint64_t>(e.decode_iterations));
  h = hash_bool(h, e.compact_fanout);
  h = hash_bool(h, e.force_raw);
  h = hash_bool(h, e.no_reorder);
  h = hash_bool(h, e.size_fallback);
  return h;
}

void FlowPipeline::run_to(Stage s) {
  for (int i = 0; i <= static_cast<int>(s); ++i) {
    if (!done_[i]) run_stage(static_cast<Stage>(i));
  }
}

void FlowPipeline::invalidate_from(Stage s) {
  for (int i = static_cast<int>(s); i < kNumStages; ++i) done_[i] = false;
  // The fabric/request pair is derived from the placement; invalidating
  // pack or place must rebuild it (a route-only rerun reuses it).
  if (s < Stage::kRoute) {
    fabric_.reset();
    request_built_ = false;
  }
}

void FlowPipeline::rerun_from(Stage s) {
  int top = static_cast<int>(s);
  for (int i = 0; i < kNumStages; ++i) {
    if (done_[i]) top = std::max(top, i);
  }
  invalidate_from(s);
  run_to(static_cast<Stage>(top));
}

void FlowPipeline::set_route_options(const RouterOptions& ropts) {
  opts_.route = ropts;
  invalidate_from(Stage::kRoute);
}

void FlowPipeline::set_encode_options(const EncodeOptions& eopts) {
  encode_opts_ = eopts;
  invalidate_from(Stage::kEncode);
}

void FlowPipeline::ensure_fabric() {
  if (fabric_ == nullptr) {
    fabric_ = std::make_unique<Fabric>(opts_.arch, grid_w_, grid_h_);
    request_built_ = false;
  }
  if (!request_built_) {
    request_ = build_route_request(*fabric_, nl_, packed_, placement_);
    request_built_ = true;
  }
}

void FlowPipeline::run_stage(Stage s) {
  telem::Span span("flow", kStageNames[static_cast<int>(s)]);
  const std::uint64_t t0 = telem::now_ns();
  switch (s) {
    case Stage::kPack:
      packed_ = pack_netlist(nl_, opts_.arch);
      break;
    case Stage::kPlace: {
      log_info("placing " + nl_.name + " (" +
               std::to_string(packed_.num_luts()) + " LBs on " +
               std::to_string(grid_w_) + "x" + std::to_string(grid_h_) + ")");
      place_stats_ = {};
      placement_ = place_design(nl_, packed_, opts_.arch, grid_w_, grid_h_,
                                resolved_place_options(), &place_stats_);
      break;
    }
    case Stage::kRoute: {
      ensure_fabric();
      log_info("routing " + nl_.name + " at W=" +
               std::to_string(opts_.arch.chan_width));
      PathfinderRouter router(*fabric_, request_);
      routing_ = router.route(resolved_route_options());
      log_info("routing " +
               std::string(routing_.success ? "converged" : "FAILED") +
               " after " + std::to_string(routing_.iterations) +
               " iterations");
      break;
    }
    case Stage::kEncode: {
      if (!routing_.success) {
        throw std::runtime_error(
            "flow pipeline: cannot encode an unrouted design (routing "
            "failed)");
      }
      ensure_fabric();
      encode_stats_ = {};
      image_ = encode_vbs(*fabric_, nl_, packed_, placement_, routing_.routes,
                          encode_opts_, &encode_stats_);
      stream_ = serialize_vbs(image_);
      break;
    }
  }
  done_[static_cast<int>(s)] = true;
  StageReport report;
  report.stage = s;
  report.seconds = telem::seconds_since(t0);
  report.rerun = ran_before_[static_cast<int>(s)];
  ran_before_[static_cast<int>(s)] = true;
  span.arg("circuit", nl_.name.c_str()).arg("rerun", (long long)report.rerun);
  telem::counter_add("flow.stage.runs");
  telem::histogram_record("flow.stage.seconds", report.seconds);
  for (const Observer& cb : observers_) cb(*this, report);
}

const PackedDesign& FlowPipeline::packed() {
  run_to(Stage::kPack);
  return packed_;
}

const Placement& FlowPipeline::placement() {
  run_to(Stage::kPlace);
  return placement_;
}

const PlaceStats& FlowPipeline::place_stats() {
  run_to(Stage::kPlace);
  return place_stats_;
}

const Fabric& FlowPipeline::fabric() {
  run_to(Stage::kPlace);
  ensure_fabric();
  return *fabric_;
}

const RouteRequest& FlowPipeline::route_request() {
  run_to(Stage::kPlace);
  ensure_fabric();
  return request_;
}

const RoutingResult& FlowPipeline::routing() {
  run_to(Stage::kRoute);
  return routing_;
}

const VbsImage& FlowPipeline::vbs_image() {
  run_to(Stage::kEncode);
  return image_;
}

const BitVector& FlowPipeline::vbs_stream() {
  run_to(Stage::kEncode);
  return stream_;
}

const EncodeStats& FlowPipeline::encode_stats() {
  run_to(Stage::kEncode);
  return encode_stats_;
}

BitVector FlowPipeline::serialize_meta() const {
  BitWriter w;
  put_i32(w, grid_w_);
  put_i32(w, grid_h_);
  put_i32(w, opts_.arch.chan_width);
  put_i32(w, opts_.arch.lut_k);
  w.write(static_cast<std::uint64_t>(opts_.arch.sb_pattern), 8);
  w.write(opts_.seed, 64);
  put_i32(w, opts_.threads);
  w.write(opts_.place.seed, 64);
  put_f64(w, opts_.place.effort);
  put_i32(w, opts_.place.io_per_tile);
  w.write_bit(opts_.place.incremental_bbox);
  put_i32(w, opts_.place.threads);
  put_i32(w, opts_.route.max_iterations);
  put_f64(w, opts_.route.first_iter_pres);
  put_f64(w, opts_.route.initial_pres);
  put_f64(w, opts_.route.pres_mult);
  put_f64(w, opts_.route.hist_fac);
  put_f64(w, opts_.route.astar_fac);
  put_i32(w, opts_.route.stall_abort);
  put_i32(w, opts_.route.stall_restarts);
  w.write_bit(opts_.route.bounded_box);
  put_i32(w, opts_.route.bb_margin);
  w.write_bit(opts_.route.incremental_reroute);
  // route.precomputed_cost is NOT serialized: it is identity-preserving
  // (resumed flows behave the same either way) and adding it would change
  // every existing checkpoint's metadata bytes.
  put_i32(w, opts_.route.threads);
  put_i32(w, opts_.route.spec_batch_per_thread);
  put_i32(w, encode_opts_.cluster);
  put_i32(w, encode_opts_.reorder_attempts);
  w.write(encode_opts_.seed, 64);
  put_i32(w, encode_opts_.decode_iterations);
  w.write_bit(encode_opts_.compact_fanout);
  w.write_bit(encode_opts_.force_raw);
  w.write_bit(encode_opts_.no_reorder);
  w.write_bit(encode_opts_.size_fallback);
  return w.take();
}

namespace {

struct MetaContents {
  int grid_w = 0, grid_h = 0;
  FlowOptions opts;
  EncodeOptions eopts;
};

MetaContents parse_meta(const BitVector& bits) {
  BitReader r(bits);
  MetaContents m;
  m.grid_w = get_i32(r);
  m.grid_h = get_i32(r);
  m.opts.arch.chan_width = get_i32(r);
  m.opts.arch.lut_k = get_i32(r);
  const auto sb = r.read(8);
  if (sb > 1) throw ArtifactError("flow.meta: bad sb_pattern");
  m.opts.arch.sb_pattern = static_cast<SbPattern>(sb);
  m.opts.seed = r.read(64);
  m.opts.threads = get_i32(r);
  m.opts.place.seed = r.read(64);
  m.opts.place.effort = get_f64(r);
  m.opts.place.io_per_tile = get_i32(r);
  m.opts.place.incremental_bbox = r.read_bit();
  m.opts.place.threads = get_i32(r);
  m.opts.route.max_iterations = get_i32(r);
  m.opts.route.first_iter_pres = get_f64(r);
  m.opts.route.initial_pres = get_f64(r);
  m.opts.route.pres_mult = get_f64(r);
  m.opts.route.hist_fac = get_f64(r);
  m.opts.route.astar_fac = get_f64(r);
  m.opts.route.stall_abort = get_i32(r);
  m.opts.route.stall_restarts = get_i32(r);
  m.opts.route.bounded_box = r.read_bit();
  m.opts.route.bb_margin = get_i32(r);
  m.opts.route.incremental_reroute = r.read_bit();
  m.opts.route.threads = get_i32(r);
  m.opts.route.spec_batch_per_thread = get_i32(r);
  m.eopts.cluster = get_i32(r);
  m.eopts.reorder_attempts = get_i32(r);
  m.eopts.seed = r.read(64);
  m.eopts.decode_iterations = get_i32(r);
  m.eopts.compact_fanout = r.read_bit();
  m.eopts.force_raw = r.read_bit();
  m.eopts.no_reorder = r.read_bit();
  m.eopts.size_fallback = r.read_bit();
  if (!r.at_end()) throw ArtifactError("flow.meta: trailing bits");
  return m;
}

}  // namespace

void FlowPipeline::save_checkpoint(const std::string& dir, Stage up_to) const {
  std::filesystem::create_directories(dir);
  write_netlist_file(join(dir, kNetlistFile), nl_);
  write_artifact_file(join(dir, kMetaFile), ArtifactStage::kMeta,
                      netlist_hash(), serialize_meta());
  for (int i = 0; i < kNumStages; ++i) {
    const Stage s = static_cast<Stage>(i);
    const std::string path = join(dir, kArtifactFiles[i]);
    if (!done_[i] || s > up_to) {
      // Drop stale files so a reused directory never mixes checkpoint
      // generations (resume stops at the first missing stage). Injectable
      // remove: the crash sweep counts this as an I/O site too.
      checked_remove(path, current_io_faults());
      continue;
    }
    BitVector payload;
    switch (s) {
      case Stage::kPack:
        payload = serialize_packed(packed_);
        break;
      case Stage::kPlace:
        payload = serialize_placement(placement_, place_stats_);
        break;
      case Stage::kRoute:
        payload = serialize_routing(routing_);
        break;
      case Stage::kEncode: {
        BitWriter w;
        w.write(stream_.size(), 64);
        w.write_vector(stream_);
        put_i32(w, encode_stats_.entries);
        put_i32(w, encode_stats_.raw_entries);
        put_i32(w, encode_stats_.conflict_fallbacks);
        put_i32(w, encode_stats_.size_fallbacks);
        put_i32(w, encode_stats_.overflow_fallbacks);
        put_i32(w, encode_stats_.reordered_entries);
        put_i64(w, encode_stats_.connections);
        w.write(encode_stats_.vbs_bits, 64);
        w.write(encode_stats_.raw_bits, 64);
        payload = w.take();
        break;
      }
    }
    write_artifact_file(path, static_cast<ArtifactStage>(i),
                        stage_fingerprint(s), payload);
  }
}

FlowPipeline FlowPipeline::resume_from(const std::string& dir) {
  // A crash mid-save (or mid-AtomicFile-commit) can orphan "*.tmp" files;
  // they are not part of any checkpoint generation — ignore and clean them.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".tmp") {
      std::filesystem::remove(entry.path());
    }
  }
  Netlist nl = read_netlist_file(join(dir, kNetlistFile));
  const std::string text = netlist_to_string(nl);
  const std::uint64_t expected_meta = fnv1a64(text.data(), text.size());
  const BitVector meta_bits = read_artifact_file(
      join(dir, kMetaFile), ArtifactStage::kMeta, &expected_meta);
  const MetaContents meta = parse_meta(meta_bits);
  FlowPipeline pipe(std::move(nl), meta.grid_w, meta.grid_h, meta.opts,
                    meta.eopts);
  pipe.netlist_hash_ = expected_meta;  // just computed above
  for (int i = 0; i < kNumStages; ++i) {
    const Stage s = static_cast<Stage>(i);
    const std::string path = join(dir, kArtifactFiles[i]);
    if (!std::filesystem::exists(path)) break;
    const std::uint64_t expected = pipe.stage_fingerprint(s);
    const BitVector payload =
        read_artifact_file(path, static_cast<ArtifactStage>(i), &expected);
    switch (s) {
      case Stage::kPack:
        pipe.packed_ = deserialize_packed(payload);
        break;
      case Stage::kPlace:
        deserialize_placement(payload, &pipe.placement_, &pipe.place_stats_);
        break;
      case Stage::kRoute:
        pipe.routing_ = deserialize_routing(payload);
        break;
      case Stage::kEncode: {
        BitReader r(payload);
        const std::uint64_t nbits = r.read(64);
        pipe.stream_ = r.read_vector(static_cast<std::size_t>(nbits));
        pipe.encode_stats_ = {};
        pipe.encode_stats_.entries = get_i32(r);
        pipe.encode_stats_.raw_entries = get_i32(r);
        pipe.encode_stats_.conflict_fallbacks = get_i32(r);
        pipe.encode_stats_.size_fallbacks = get_i32(r);
        pipe.encode_stats_.overflow_fallbacks = get_i32(r);
        pipe.encode_stats_.reordered_entries = get_i32(r);
        pipe.encode_stats_.connections = get_i64(r);
        pipe.encode_stats_.vbs_bits = static_cast<std::size_t>(r.read(64));
        pipe.encode_stats_.raw_bits = static_cast<std::size_t>(r.read(64));
        if (!r.at_end()) throw ArtifactError("encode artifact: trailing bits");
        pipe.image_ = deserialize_vbs(pipe.stream_);
        break;
      }
    }
    pipe.done_[i] = true;
    pipe.ran_before_[i] = true;
  }
  return pipe;
}

FlowResult FlowPipeline::take_flow_result() && {
  run_to(Stage::kRoute);
  ensure_fabric();  // FlowResult carries the fabric even after a resume
  FlowResult r;
  r.netlist = std::move(nl_);
  r.packed = std::move(packed_);
  r.placement = std::move(placement_);
  r.fabric = std::move(fabric_);
  r.routing = std::move(routing_);
  return r;
}

}  // namespace vbs
