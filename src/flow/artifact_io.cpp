#include "flow/artifact_io.h"

#include <bit>
#include <fstream>

#include "util/bitio.h"
#include "util/io.h"
#include "vbs/vbs_file.h"

namespace vbs {

using namespace artio;

namespace {

constexpr char kMagic[4] = {'V', 'A', 'R', '1'};

void put_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t take_le64(const std::string& bytes, std::size_t pos) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) |
        static_cast<unsigned char>(bytes[pos + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t content_hash(const std::string& payload_bytes,
                           std::uint64_t bit_count) {
  return hash_u64(fnv1a64(payload_bytes.data(), payload_bytes.size()),
                  bit_count);
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime64;
  }
  return h;
}

std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime64;
  }
  return h;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return hash_u64(h, std::bit_cast<std::uint64_t>(v));
}

BitVector serialize_packed(const PackedDesign& pd) {
  BitWriter w;
  put_i32(w, pd.num_luts());
  put_i32(w, pd.num_ios());
  for (const BlockId b : pd.luts) put_i32(w, b);
  for (const BlockId b : pd.ios) put_i32(w, b);
  for (const auto& pins : pd.lut_pins) {
    for (const NetId n : pins) put_i32(w, n);
  }
  return w.take();
}

PackedDesign deserialize_packed(const BitVector& bits) {
  BitReader r(bits);
  PackedDesign pd;
  const int num_luts = get_i32(r);
  const int num_ios = get_i32(r);
  if (num_luts < 0 || num_ios < 0) {
    throw ArtifactError("pack artifact: negative instance count");
  }
  pd.luts.resize(static_cast<std::size_t>(num_luts));
  pd.ios.resize(static_cast<std::size_t>(num_ios));
  pd.lut_pins.resize(static_cast<std::size_t>(num_luts));
  for (BlockId& b : pd.luts) b = get_i32(r);
  for (BlockId& b : pd.ios) b = get_i32(r);
  for (auto& pins : pd.lut_pins) {
    for (NetId& n : pins) n = get_i32(r);
  }
  if (!r.at_end()) throw ArtifactError("pack artifact: trailing bits");
  return pd;
}

BitVector serialize_placement(const Placement& pl, const PlaceStats& stats) {
  BitWriter w;
  put_i32(w, pl.grid_w);
  put_i32(w, pl.grid_h);
  put_i32(w, static_cast<std::int32_t>(pl.lut_loc.size()));
  for (const Point p : pl.lut_loc) {
    put_i32(w, p.x);
    put_i32(w, p.y);
  }
  put_i32(w, static_cast<std::int32_t>(pl.io_loc.size()));
  for (const IoSlot& s : pl.io_loc) {
    w.write(static_cast<std::uint64_t>(s.side), 8);
    put_i32(w, s.tile);
    put_i32(w, s.track);
  }
  put_f64(w, stats.initial_cost);
  put_f64(w, stats.final_cost);
  put_i64(w, stats.moves);
  put_i64(w, stats.accepted);
  put_i32(w, stats.temperatures);
  put_f64(w, stats.cost_drift);
  return w.take();
}

void deserialize_placement(const BitVector& bits, Placement* pl,
                           PlaceStats* stats) {
  BitReader r(bits);
  Placement out;
  out.grid_w = get_i32(r);
  out.grid_h = get_i32(r);
  const int luts = get_i32(r);
  if (luts < 0) throw ArtifactError("place artifact: negative LUT count");
  out.lut_loc.resize(static_cast<std::size_t>(luts));
  for (Point& p : out.lut_loc) {
    p.x = get_i32(r);
    p.y = get_i32(r);
  }
  const int ios = get_i32(r);
  if (ios < 0) throw ArtifactError("place artifact: negative I/O count");
  out.io_loc.resize(static_cast<std::size_t>(ios));
  for (IoSlot& s : out.io_loc) {
    const auto side = r.read(8);
    if (side > 3) throw ArtifactError("place artifact: bad I/O side");
    s.side = static_cast<Side>(side);
    s.tile = get_i32(r);
    s.track = get_i32(r);
  }
  PlaceStats st;
  st.initial_cost = get_f64(r);
  st.final_cost = get_f64(r);
  st.moves = get_i64(r);
  st.accepted = get_i64(r);
  st.temperatures = get_i32(r);
  st.cost_drift = get_f64(r);
  if (!r.at_end()) throw ArtifactError("place artifact: trailing bits");
  *pl = std::move(out);
  if (stats != nullptr) *stats = st;
}

BitVector serialize_routing(const RoutingResult& rr) {
  BitWriter w;
  w.write_bit(rr.success);
  put_i32(w, rr.iterations);
  put_i64(w, static_cast<std::int64_t>(rr.total_wire_nodes));
  put_i64(w, static_cast<std::int64_t>(rr.overused_nodes));
  put_i64(w, rr.heap_pops);
  put_i64(w, rr.bbox_retries);
  put_i32(w, static_cast<std::int32_t>(rr.routes.size()));
  for (const NetRoute& net : rr.routes) {
    put_i32(w, static_cast<std::int32_t>(net.nodes.size()));
    for (const NetRoute::TreeNode& n : net.nodes) {
      put_i32(w, n.rr);
      put_i32(w, n.parent);
      put_i64(w, n.fabric_edge);
    }
  }
  return w.take();
}

RoutingResult deserialize_routing(const BitVector& bits) {
  BitReader r(bits);
  RoutingResult rr;
  rr.success = r.read_bit();
  rr.iterations = get_i32(r);
  rr.total_wire_nodes = static_cast<std::size_t>(get_i64(r));
  rr.overused_nodes = static_cast<std::size_t>(get_i64(r));
  rr.heap_pops = get_i64(r);
  rr.bbox_retries = get_i64(r);
  const int nets = get_i32(r);
  if (nets < 0) throw ArtifactError("route artifact: negative net count");
  rr.routes.resize(static_cast<std::size_t>(nets));
  for (NetRoute& net : rr.routes) {
    const int nodes = get_i32(r);
    if (nodes < 0) throw ArtifactError("route artifact: negative node count");
    net.nodes.resize(static_cast<std::size_t>(nodes));
    for (NetRoute::TreeNode& n : net.nodes) {
      n.rr = get_i32(r);
      n.parent = get_i32(r);
      n.fabric_edge = get_i64(r);
    }
  }
  if (!r.at_end()) throw ArtifactError("route artifact: trailing bits");
  return rr;
}

std::string artifact_container_bytes(ArtifactStage stage,
                                     std::uint64_t fingerprint,
                                     const BitVector& payload) {
  const std::string bytes = pack_bits(payload);
  std::string file;
  file.reserve(29 + bytes.size());
  file.append(kMagic, sizeof kMagic);
  file.push_back(static_cast<char>(stage));
  put_le64(file, fingerprint);
  put_le64(file, content_hash(bytes, payload.size()));
  put_le64(file, payload.size());
  file.append(bytes);
  return file;
}

BitVector parse_artifact_container(const std::string& bytes,
                                   ArtifactStage stage,
                                   const std::uint64_t* expected_fingerprint,
                                   std::uint64_t* fingerprint_out,
                                   const std::string& context) {
  if (bytes.size() < 29) {
    throw ArtifactError("truncated artifact header: " + context,
                        VbsErrc::kTruncated);
  }
  for (int i = 0; i < 4; ++i) {
    if (bytes[static_cast<std::size_t>(i)] != kMagic[i]) {
      throw ArtifactError("not a vbs.artifact.v1 container: " + context);
    }
  }
  if (static_cast<std::uint8_t>(bytes[4]) != static_cast<std::uint8_t>(stage)) {
    throw ArtifactError("artifact stage mismatch: " + context);
  }
  const std::uint64_t fingerprint = take_le64(bytes, 5);
  const std::uint64_t stored_hash = take_le64(bytes, 13);
  const std::uint64_t bit_count = take_le64(bytes, 21);
  if (expected_fingerprint != nullptr && fingerprint != *expected_fingerprint) {
    throw ArtifactError(
        "artifact fingerprint mismatch (stale or foreign checkpoint): " +
        context);
  }
  // The declared bit count is untrusted: require it to match the actual
  // byte count before allocating, so a corrupted length field can neither
  // demand exabytes nor smuggle trailing bytes past the content hash.
  const std::uint64_t nbytes64 = bit_count / 8 + (bit_count % 8 != 0 ? 1 : 0);
  if (nbytes64 != bytes.size() - 29) {
    throw ArtifactError("artifact size mismatch (corrupted length): " +
                        context);
  }
  const std::string payload = bytes.substr(29);
  if (content_hash(payload, bit_count) != stored_hash) {
    throw ArtifactError("artifact content-hash mismatch (corrupted): " +
                        context);
  }
  if (fingerprint_out != nullptr) *fingerprint_out = fingerprint;
  return unpack_bits(payload, static_cast<std::size_t>(bit_count));
}

void write_artifact_file(const std::string& path, ArtifactStage stage,
                         std::uint64_t fingerprint, const BitVector& payload) {
  // Atomic replacement: a crash mid-save leaves the previous artifact (or
  // no artifact) plus at worst an orphaned *.tmp, never a torn container.
  AtomicFile out(path);
  out.write(artifact_container_bytes(stage, fingerprint, payload));
  out.commit();
}

BitVector read_artifact_file(const std::string& path, ArtifactStage stage,
                             const std::uint64_t* expected_fingerprint,
                             std::uint64_t* fingerprint_out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  is.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);
  char head[29];
  if (!is.read(head, sizeof head)) {
    throw ArtifactError("truncated artifact header: " + path,
                        VbsErrc::kTruncated);
  }
  for (int i = 0; i < 4; ++i) {
    if (head[i] != kMagic[i]) {
      throw ArtifactError("not a vbs.artifact.v1 file: " + path);
    }
  }
  if (static_cast<std::uint8_t>(head[4]) != static_cast<std::uint8_t>(stage)) {
    throw ArtifactError("artifact stage mismatch: " + path);
  }
  const std::string header(head + 5, 24);
  const std::uint64_t fingerprint = take_le64(header, 0);
  const std::uint64_t stored_hash = take_le64(header, 8);
  const std::uint64_t bit_count = take_le64(header, 16);
  if (expected_fingerprint != nullptr && fingerprint != *expected_fingerprint) {
    throw ArtifactError(
        "artifact fingerprint mismatch (stale or foreign checkpoint): " +
        path);
  }
  // The declared bit count is untrusted: require it to match the actual
  // file size before allocating, so a corrupted length field can neither
  // demand exabytes nor smuggle trailing bytes past the content hash.
  const std::uint64_t nbytes64 = bit_count / 8 + (bit_count % 8 != 0 ? 1 : 0);
  if (nbytes64 != file_size - sizeof head) {
    throw ArtifactError("artifact size mismatch (corrupted length): " + path);
  }
  const auto nbytes = static_cast<std::size_t>(nbytes64);
  std::string bytes(nbytes, '\0');
  if (!is.read(bytes.data(), static_cast<std::streamsize>(nbytes))) {
    throw ArtifactError("truncated artifact payload: " + path,
                        VbsErrc::kTruncated);
  }
  if (content_hash(bytes, bit_count) != stored_hash) {
    throw ArtifactError("artifact content-hash mismatch (corrupted): " + path);
  }
  if (fingerprint_out != nullptr) *fingerprint_out = fingerprint;
  return unpack_bits(bytes, static_cast<std::size_t>(bit_count));
}

}  // namespace vbs
