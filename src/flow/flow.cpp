#include "flow/flow.h"

#include "flow/pipeline.h"

namespace vbs {

FlowResult run_flow(Netlist nl, int grid_w, int grid_h,
                    const FlowOptions& opts) {
  FlowPipeline pipe(std::move(nl), grid_w, grid_h, opts);
  pipe.run_to(Stage::kRoute);
  return std::move(pipe).take_flow_result();
}

FlowResult run_mcnc_flow(const McncCircuit& circuit, const FlowOptions& opts) {
  return run_flow(make_mcnc_like(circuit, opts.seed), circuit.size,
                  circuit.size, opts);
}

}  // namespace vbs
