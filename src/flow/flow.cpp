#include "flow/flow.h"

#include "util/logging.h"

namespace vbs {

FlowResult run_flow(Netlist nl, int grid_w, int grid_h,
                    const FlowOptions& opts) {
  FlowResult r;
  r.netlist = std::move(nl);
  r.packed = pack_netlist(r.netlist, opts.arch);
  PlaceOptions popts = opts.place;
  if (popts.seed == 0) popts.seed = opts.seed;  // 0 = inherit the flow seed
  if (popts.threads == 0) popts.threads = opts.threads;  // 0 = inherit
  log_info("placing " + r.netlist.name + " (" +
           std::to_string(r.packed.num_luts()) + " LBs on " +
           std::to_string(grid_w) + "x" + std::to_string(grid_h) + ")");
  r.placement = place_design(r.netlist, r.packed, opts.arch, grid_w, grid_h,
                             popts);
  r.fabric = std::make_unique<Fabric>(opts.arch, grid_w, grid_h);
  log_info("routing " + r.netlist.name + " at W=" +
           std::to_string(opts.arch.chan_width));
  PathfinderRouter router(
      *r.fabric, build_route_request(*r.fabric, r.netlist, r.packed, r.placement));
  RouterOptions ropts = opts.route;
  if (ropts.threads == 0) ropts.threads = opts.threads;  // 0 = inherit
  r.routing = router.route(ropts);
  log_info("routing " + std::string(r.routing.success ? "converged" : "FAILED") +
           " after " + std::to_string(r.routing.iterations) + " iterations");
  return r;
}

FlowResult run_mcnc_flow(const McncCircuit& circuit, const FlowOptions& opts) {
  return run_flow(make_mcnc_like(circuit, opts.seed), circuit.size,
                  circuit.size, opts);
}

}  // namespace vbs
