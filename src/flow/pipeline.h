// Stage-graph flow API: the paper's toolchain (Fig. 3) as a first-class,
// resumable pipeline instead of one opaque run_flow call.
//
//   netlist --pack--> PackedDesign --place--> Placement
//           --route--> RoutingResult --encode--> VBS stream
//
// Each stage produces a typed, serializable artifact (flow/artifact_io.h).
// A FlowPipeline runs stages lazily (`run_to`, or just touch an accessor),
// can persist any completed prefix to a checkpoint directory
// (`save_checkpoint`) and reload it later (`resume_from`), and can
// invalidate a suffix and run it again (`rerun_from`) — re-route on a
// frozen placement, re-encode on frozen routing. Both engines are
// deterministic, so a resumed remainder is byte-identical to the
// uninterrupted run for the same seed and options, at any thread count;
// artifact fingerprints enforce that a checkpoint is only ever resumed
// against the netlist/options it was produced from.
//
// Checkpoint directory layout (see src/flow/README.md):
//   netlist.netl   the input netlist (.netl text format)
//   flow.meta      grid + FlowOptions + EncodeOptions   (vbs.artifact.v1)
//   pack.art / place.art / route.art / encode.art       (one per completed
//                                                        stage, same format)
//
// Per-stage observers receive a StageReport after every stage run — the
// pipeline-level replacement for ad-hoc bench instrumentation.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "vbs/vbs_format.h"

namespace vbs {

/// The four stages of the flow graph, in dependency order.
enum class Stage : std::uint8_t {
  kPack = 0,
  kPlace = 1,
  kRoute = 2,
  kEncode = 3,
};
inline constexpr int kNumStages = 4;

const char* stage_name(Stage s);
/// Parses "pack"/"place"/"route"/"encode"; nullopt on anything else.
std::optional<Stage> stage_from_string(const std::string& name);

/// What an observer sees after a stage completes.
struct StageReport {
  Stage stage = Stage::kPack;
  double seconds = 0.0;      ///< wall time of this stage run
  bool rerun = false;        ///< stage had run before and was invalidated
};

class FlowPipeline {
 public:
  /// `opts.place.seed == 0` / per-stage `threads == 0` inherit the flow
  /// seed / thread count exactly like run_flow.
  FlowPipeline(Netlist nl, int grid_w, int grid_h, FlowOptions opts = {},
               EncodeOptions encode_opts = {});

  /// Observer invoked after every stage run (not for artifacts loaded from
  /// a checkpoint). The pipeline reference is valid for the callback's
  /// duration only.
  using Observer = std::function<void(const FlowPipeline&, const StageReport&)>;
  void add_observer(Observer cb) { observers_.push_back(std::move(cb)); }

  bool completed(Stage s) const { return done_[static_cast<int>(s)]; }

  /// Runs every incomplete stage up to and including `s`, in order.
  /// The encode stage throws std::runtime_error if routing failed; the
  /// route stage itself completes with RoutingResult::success == false.
  void run_to(Stage s);

  /// Drops the artifacts of `s` and every downstream stage.
  void invalidate_from(Stage s);

  /// Invalidates `s`..end, then reruns up to the previously highest
  /// completed stage (at least `s`): rerun_from(kRoute) re-routes the
  /// frozen placement and, if encode had run, re-encodes.
  void rerun_from(Stage s);

  // --- inputs ---------------------------------------------------------------
  const Netlist& netlist() const { return nl_; }
  int grid_w() const { return grid_w_; }
  int grid_h() const { return grid_h_; }
  const FlowOptions& options() const { return opts_; }
  const EncodeOptions& encode_options() const { return encode_opts_; }

  /// Replaces the router configuration, invalidating the route and encode
  /// stages (the mechanism behind re-route-on-frozen-placement sweeps).
  void set_route_options(const RouterOptions& ropts);
  /// Replaces the encoder configuration, invalidating the encode stage.
  void set_encode_options(const EncodeOptions& eopts);
  /// Worker threads for subsequent stage runs. Does NOT invalidate
  /// anything: both engines are thread-count-invariant by contract.
  void set_threads(int threads) { opts_.threads = threads; }

  // --- artifacts (accessors run the producing stage on demand) --------------
  const PackedDesign& packed();
  const Placement& placement();
  const PlaceStats& place_stats();
  /// The routing fabric (built for the route stage; also available after a
  /// checkpoint resume for downstream consumers).
  const Fabric& fabric();
  const RouteRequest& route_request();
  const RoutingResult& routing();
  const VbsImage& vbs_image();
  const BitVector& vbs_stream();
  const EncodeStats& encode_stats();

  // --- checkpointing --------------------------------------------------------
  /// Writes the netlist, the flow description and every completed stage
  /// artifact up to `up_to` into `dir` (created if needed); stale artifact
  /// files of incomplete or excluded stages are removed. Artifacts carry a
  /// fingerprint chaining the netlist, grid and all result-relevant
  /// options, and a content hash over the payload.
  void save_checkpoint(const std::string& dir,
                       Stage up_to = Stage::kEncode) const;

  /// Reloads a checkpoint directory: netlist and options come from the
  /// checkpoint itself; completed stage artifacts are loaded in order until
  /// the first missing file. Throws ArtifactError on a corrupted,
  /// version-mismatched or fingerprint-mismatched artifact and
  /// std::runtime_error on a malformed directory.
  static FlowPipeline resume_from(const std::string& dir);

  /// Moves the artifacts out into the legacy FlowResult shape (the
  /// run_flow compatibility path). Requires the route stage.
  FlowResult take_flow_result() &&;

 private:
  void run_stage(Stage s);
  void ensure_fabric();
  /// FNV-1a over the netlist's .netl text, computed on first use (only
  /// checkpointing needs it; run_flow never pays for it).
  std::uint64_t netlist_hash() const;
  std::uint64_t base_fingerprint() const;
  std::uint64_t stage_fingerprint(Stage s) const;
  BitVector serialize_meta() const;
  /// Resolved per-stage options (seed/thread inheritance applied).
  PlaceOptions resolved_place_options() const;
  RouterOptions resolved_route_options() const;

  Netlist nl_;
  int grid_w_ = 0;
  int grid_h_ = 0;
  FlowOptions opts_;
  EncodeOptions encode_opts_;
  mutable std::optional<std::uint64_t> netlist_hash_;

  std::array<bool, kNumStages> done_{};
  std::array<bool, kNumStages> ran_before_{};  ///< for StageReport::rerun

  PackedDesign packed_;
  Placement placement_;
  PlaceStats place_stats_;
  std::unique_ptr<Fabric> fabric_;
  bool request_built_ = false;
  RouteRequest request_;
  RoutingResult routing_;
  VbsImage image_;
  BitVector stream_;
  EncodeStats encode_stats_;

  std::vector<Observer> observers_;
};

}  // namespace vbs
