// Serializable flow-stage artifacts and their on-disk container
// (`vbs.artifact.v1`): the persistence layer under FlowPipeline's
// checkpoints.
//
// Every flow stage produces a typed artifact — PackedDesign, Placement
// (+ deterministic PlaceStats), RoutingResult, or the encoded VBS stream —
// serialized to a bit payload via util/bitio and wrapped in a small
// byte-oriented container:
//
//   bytes 0-3    magic "VAR1"  (artifact format v1)
//   byte  4      stage tag (ArtifactStage)
//   bytes 5-12   fingerprint, little-endian u64: hash of everything the
//                artifact is a deterministic function of — the netlist
//                text, the grid, and every result-relevant option of this
//                stage and its upstream stages (thread counts are excluded:
//                the engines are thread-count-invariant by contract)
//   bytes 13-20  content hash, little-endian u64 (FNV-1a over the packed
//                payload bytes, then the bit length)
//   bytes 21-28  payload bit count, little-endian u64
//   bytes 29-    payload bits, MSB-first within each byte, zero-padded
//
// Readers verify magic, version, stage tag, fingerprint and content hash
// and throw ArtifactError on any mismatch, so a stale, truncated or
// foreign checkpoint can never be silently resumed. Scheduling-dependent
// diagnostics (wall times, speculation counters, threads_used) are NOT
// part of any payload: an artifact saved by a parallel run is byte-
// identical to one saved by a serial run.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "pack/pack.h"
#include "place/annealer.h"
#include "place/placement.h"
#include "route/router.h"
#include "util/bitio.h"
#include "util/bitvector.h"

namespace vbs {

/// Thrown on any malformed, corrupted, version-mismatched or
/// fingerprint-mismatched artifact file.
class ArtifactError : public VbsError {
 public:
  explicit ArtifactError(const std::string& what,
                         VbsErrc code = VbsErrc::kBadContainer)
      : VbsError(code, what) {}
};

/// Stage tag stored in the container header. kMeta is the checkpoint's
/// flow-description artifact (grid + options), not a pipeline stage.
enum class ArtifactStage : std::uint8_t {
  kPack = 0,
  kPlace = 1,
  kRoute = 2,
  kEncode = 3,
  kMeta = 4,
  kServiceSnapshot = 5,  ///< ReconfigService journal snapshot (journal.h)
};

// --- hashing -----------------------------------------------------------------

inline constexpr std::uint64_t kFnvOffset64 = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ull;

/// FNV-1a over a byte range, continuing from `h`.
std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t h = kFnvOffset64);

/// Folds one 64-bit value into a running FNV-1a hash (8 bytes, LE order).
std::uint64_t hash_u64(std::uint64_t h, std::uint64_t v);
std::uint64_t hash_double(std::uint64_t h, double v);

// --- payload field primitives ------------------------------------------------

// The artifact format's canonical fixed-width field codings: signed values
// travel as their two's-complement bit patterns (kNoNet/kNoBlock = -1
// round-trips), doubles as their IEEE-754 bit patterns. Every artifact
// payload — including flow.meta — is built from exactly these.
namespace artio {

inline void put_i32(BitWriter& w, std::int32_t v) {
  w.write(static_cast<std::uint32_t>(v), 32);
}
inline std::int32_t get_i32(BitReader& r) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(r.read(32)));
}
inline void put_i64(BitWriter& w, std::int64_t v) {
  w.write(static_cast<std::uint64_t>(v), 64);
}
inline std::int64_t get_i64(BitReader& r) {
  return static_cast<std::int64_t>(r.read(64));
}
inline void put_f64(BitWriter& w, double v) {
  w.write(std::bit_cast<std::uint64_t>(v), 64);
}
inline double get_f64(BitReader& r) {
  return std::bit_cast<double>(r.read(64));
}

}  // namespace artio

// --- stage payload serializers ----------------------------------------------

// Each pair round-trips exactly: deserialize(serialize(x)) == x field for
// field, and serialize(deserialize(bits)) == bits byte for byte.

BitVector serialize_packed(const PackedDesign& pd);
PackedDesign deserialize_packed(const BitVector& bits);

/// Placement plus the deterministic PlaceStats fields (costs, moves,
/// accepted, temperatures, cost_drift). Scheduling diagnostics
/// (spec_commits/spec_rejected/threads_used) are not stored.
BitVector serialize_placement(const Placement& pl, const PlaceStats& stats);
void deserialize_placement(const BitVector& bits, Placement* pl,
                           PlaceStats* stats);

/// RoutingResult minus the scheduling-dependent diagnostics: success,
/// iterations, trees, wire/overuse totals, heap_pops and bbox_retries are
/// stored; threads_used, spec_* and the per-iteration wall-time log are
/// not.
BitVector serialize_routing(const RoutingResult& rr);
RoutingResult deserialize_routing(const BitVector& bits);

// The encode stage's payload is the serialized VBS stream itself
// (self-describing via deserialize_vbs) followed by the deterministic
// EncodeStats fields; FlowPipeline assembles it inline.

// --- container codec ---------------------------------------------------------

/// Serializes `payload` into the vbs.artifact.v1 container layout above,
/// in memory. This is the byte string write_artifact_file persists — and
/// the payload coding the vbs.rpc.v1 wire protocol (rtc/server/wire.h)
/// reuses for bit-stream frames, so a stream travels the wire with the
/// same magic, content hash and length checks a checkpoint file gets.
std::string artifact_container_bytes(ArtifactStage stage,
                                     std::uint64_t fingerprint,
                                     const BitVector& payload);

/// Parses bytes produced by artifact_container_bytes, verifying magic,
/// stage tag, declared size and content hash (and the fingerprint when
/// `expected_fingerprint` is non-null). Throws ArtifactError on any
/// mismatch; `context` names the source in error messages.
BitVector parse_artifact_container(const std::string& bytes,
                                   ArtifactStage stage,
                                   const std::uint64_t* expected_fingerprint,
                                   std::uint64_t* fingerprint_out = nullptr,
                                   const std::string& context = "container");

// --- container I/O -----------------------------------------------------------

/// Writes `payload` wrapped in the vbs.artifact.v1 container, atomically:
/// the bytes land in `path + ".tmp"` and are renamed over `path` only
/// after an fsync, so a crash mid-save never tears an existing artifact
/// (util/io.h AtomicFile; injection via the thread-local injector).
/// Throws std::runtime_error on I/O failure.
void write_artifact_file(const std::string& path, ArtifactStage stage,
                         std::uint64_t fingerprint, const BitVector& payload);

/// Reads an artifact written by write_artifact_file, verifying magic,
/// version, stage tag, the stored content hash, and — when
/// `expected_fingerprint` is non-null — the fingerprint. Throws
/// ArtifactError on any mismatch or truncation, std::runtime_error on I/O
/// failure.
BitVector read_artifact_file(const std::string& path, ArtifactStage stage,
                             const std::uint64_t* expected_fingerprint,
                             std::uint64_t* fingerprint_out = nullptr);

}  // namespace vbs
