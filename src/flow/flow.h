// End-to-end design flow driver (paper Fig. 3): netlist -> pack -> place ->
// route -> raw bit-stream / Virtual Bit-Stream. run_flow/run_mcnc_flow are
// the one-shot convenience entry points; they are thin wrappers over the
// stage-graph FlowPipeline (flow/pipeline.h), which additionally offers
// per-stage artifacts, observers, checkpoint/resume and partial reruns.
#pragma once

#include <memory>

#include "arch/arch_spec.h"
#include "fabric/fabric.h"
#include "netlist/mcnc.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/annealer.h"
#include "route/route_request.h"
#include "route/router.h"
#include "vbs/encoder.h"

namespace vbs {

struct FlowOptions {
  ArchSpec arch;  ///< chan_width is the normalized width (paper uses 20)
  std::uint64_t seed = 1;
  /// Worker threads for the placement and routing stages. Both engines are
  /// deterministic (speculate/validate/commit with canonical commit order),
  /// so any value produces byte-identical results; place.threads == 0 /
  /// route.threads == 0 (the defaults) inherit this value, a nonzero
  /// per-stage count wins.
  int threads = 1;
  /// place.seed == 0 (the default) means "inherit FlowOptions::seed"; any
  /// nonzero placer seed — including 1 — is honored verbatim.
  PlaceOptions place;
  RouterOptions route;
};

struct FlowResult {
  Netlist netlist;
  PackedDesign packed;
  Placement placement;
  std::unique_ptr<Fabric> fabric;
  RoutingResult routing;

  bool routed() const { return routing.success; }
};

/// Packs, places and routes `nl` on a grid_w x grid_h fabric.
FlowResult run_flow(Netlist nl, int grid_w, int grid_h,
                    const FlowOptions& opts = {});

/// Full flow for a Table II circuit: calibrated synthetic netlist on the
/// published array size.
FlowResult run_mcnc_flow(const McncCircuit& circuit,
                         const FlowOptions& opts = {});

}  // namespace vbs
