// Detailed routing-resource model of a single macro (paper Fig. 1).
//
// Geometry (free choices documented in DESIGN.md): the logic block (LB) sits
// in the north-east region of the tile, ChanX runs along the south edge,
// ChanY along the west edge, and the switch box (SB) sits at the south-west
// corner where they meet. Track wires are single-length: they end at the
// tile boundary where they abut the neighbouring tile's collinear wire.
//
// Electrical segments ("nodes"):
//   XW(t)     ChanX track t from the SB to the west boundary.
//   X(t,s)    ChanX track t east of the SB, cut into px+1 segments by the
//             px pin-stub crossings; X(t,px) touches the east boundary.
//   YS(t)     ChanY track t from the SB to the south boundary.
//   Y(t,s)    ChanY track t north of the SB, py+1 segments; Y(t,py) touches
//             the north boundary.
//   STUB(p,s) Connection-box stub of LB pin p, cut into W segments by its
//             W crossings with the channel tracks; STUB(p,0) is the pin
//             itself. Pins 0..px-1 cross ChanX, pins px..L-1 cross ChanY
//             (the LUT output is pin L-1). Stub p's crossing number s meets
//             track W-1-s; the final crossing (track 0) is a 3-way T where
//             the stub terminates.
//
// Programmable switch points (each one pass-transistor per arm pair):
//   SB point t      4 arms {XW, X(t,0), YS, Y(.,0)}          -> 6 switches
//   crossing (p,s)  4 arms {stub up, stub down, trk W, trk E} -> 6 switches
//   tee (p)         3 arms {stub, trk W, trk E}               -> 3 switches
//
// The canonical configuration-bit order defined here *is* the raw bit-stream
// format: NLB logic bits first, then SB points 0..W-1, then per pin p the
// crossings s = 0..W-2 followed by the T, each switch point contributing its
// pairwise switches in lexicographic arm order.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "arch/arch_spec.h"

namespace vbs {

/// Sides of a macro for boundary-port numbering. Port id layout:
/// [0,W) west, [W,2W) east, [2W,3W) north, [3W,4W) south, [4W,4W+L) pins.
enum class Side : std::uint8_t { kWest = 0, kEast = 1, kNorth = 2, kSouth = 3 };

struct SwitchPoint {
  enum class Kind : std::uint8_t { kSwitchBox, kCross, kTee };
  Kind kind;
  /// First configuration bit of this point within the macro's routing
  /// region (i.e. offset NLB + bit_offset in the raw macro frame).
  int bit_offset;
  int n_arms;  ///< 4 (6 switches) or 3 (3 switches)
  std::array<int, 4> arms;  ///< local node ids; arms[3] == -1 for a T

  int n_switches() const { return n_arms == 4 ? 6 : 3; }

  /// Index of the (a,b) arm-pair switch within this point, a < b in
  /// lexicographic enumeration order ((0,1),(0,2),(0,3),(1,2),(1,3),(2,3)).
  int pair_index(int a, int b) const;
  /// Inverse of pair_index.
  std::pair<int, int> pair_arms(int pair) const;
};

class MacroModel {
 public:
  explicit MacroModel(const ArchSpec& spec);

  const ArchSpec& spec() const { return spec_; }

  int num_nodes() const { return num_nodes_; }
  int num_ports() const { return spec_.ports_per_macro(); }
  /// Routing configuration bits (Nraw - NLB).
  int num_route_bits() const { return spec_.nroute_bits(); }

  const std::vector<SwitchPoint>& switch_points() const { return points_; }

  // --- local node id helpers -------------------------------------------
  int xw(int t) const;
  int x(int t, int s) const;
  int ys(int t) const;
  int y(int t, int s) const;
  int stub(int p, int s) const;
  /// The electrical node of LB pin p (== stub(p, 0)).
  int pin_node(int p) const { return stub(p, 0); }

  // --- boundary ports ----------------------------------------------------
  int port_of_side(Side side, int track) const {
    return static_cast<int>(side) * spec_.chan_width + track;
  }
  int port_of_pin(int p) const { return 4 * spec_.chan_width + p; }
  /// Local node carrying a given port (boundary wire or pin stub).
  int port_node(int port) const;
  /// Port id of a node, or -1 if the node is interior.
  int node_port(int node) const { return node_port_[node]; }
  bool is_boundary_port(int port) const { return port < 4 * spec_.chan_width; }

  // --- intra-macro adjacency (for the de-virtualizer's router) -----------
  struct Adj {
    int to;     ///< neighbouring local node
    int point;  ///< index into switch_points()
    int pair;   ///< pair index within the point
  };
  const std::vector<Adj>& adjacency(int node) const { return adj_[node]; }

  /// Human-readable node name for diagnostics, e.g. "X(t3,s1)".
  std::string node_name(int node) const;

 private:
  void build_nodes();
  void build_points();
  void add_point(SwitchPoint::Kind kind, std::array<int, 4> arms, int n_arms);

  ArchSpec spec_;
  int num_nodes_ = 0;
  // id range bases
  int base_xw_ = 0, base_x_ = 0, base_ys_ = 0, base_y_ = 0, base_stub_ = 0;
  std::vector<SwitchPoint> points_;
  std::vector<std::vector<Adj>> adj_;
  std::vector<int> node_port_;
  int next_bit_ = 0;
};

}  // namespace vbs
