#include "arch/macro_model.h"

#include <cassert>
#include <stdexcept>

namespace vbs {

namespace {
// Lexicographic pair tables for 4-arm (6 switches) and 3-arm (3 switches)
// points; the table order defines the configuration bit order.
constexpr std::pair<int, int> kPairs4[6] = {{0, 1}, {0, 2}, {0, 3},
                                            {1, 2}, {1, 3}, {2, 3}};
constexpr std::pair<int, int> kPairs3[3] = {{0, 1}, {0, 2}, {1, 2}};
}  // namespace

int SwitchPoint::pair_index(int a, int b) const {
  assert(a < b);
  const auto* table = n_arms == 4 ? kPairs4 : kPairs3;
  const int n = n_switches();
  for (int i = 0; i < n; ++i) {
    if (table[i].first == a && table[i].second == b) return i;
  }
  assert(false && "invalid arm pair");
  return -1;
}

std::pair<int, int> SwitchPoint::pair_arms(int pair) const {
  assert(pair >= 0 && pair < n_switches());
  return n_arms == 4 ? kPairs4[pair] : kPairs3[pair];
}

MacroModel::MacroModel(const ArchSpec& spec) : spec_(spec) {
  spec_.validate();
  build_nodes();
  build_points();
  assert(next_bit_ == spec_.nroute_bits());
}

void MacroModel::build_nodes() {
  const int w = spec_.chan_width;
  const int px = spec_.pins_on_x();
  const int py = spec_.pins_on_y();
  const int l = spec_.lb_pins();

  base_xw_ = 0;
  base_x_ = base_xw_ + w;
  base_ys_ = base_x_ + w * (px + 1);
  base_y_ = base_ys_ + w;
  base_stub_ = base_y_ + w * (py + 1);
  num_nodes_ = base_stub_ + l * w;

  adj_.assign(static_cast<std::size_t>(num_nodes_), {});
  node_port_.assign(static_cast<std::size_t>(num_nodes_), -1);
  for (int t = 0; t < w; ++t) {
    node_port_[xw(t)] = port_of_side(Side::kWest, t);
    node_port_[x(t, px)] = port_of_side(Side::kEast, t);
    node_port_[y(t, py)] = port_of_side(Side::kNorth, t);
    node_port_[ys(t)] = port_of_side(Side::kSouth, t);
  }
  for (int p = 0; p < l; ++p) node_port_[pin_node(p)] = port_of_pin(p);
}

int MacroModel::xw(int t) const {
  assert(t >= 0 && t < spec_.chan_width);
  return base_xw_ + t;
}

int MacroModel::x(int t, int s) const {
  const int px = spec_.pins_on_x();
  assert(t >= 0 && t < spec_.chan_width && s >= 0 && s <= px);
  return base_x_ + t * (px + 1) + s;
}

int MacroModel::ys(int t) const {
  assert(t >= 0 && t < spec_.chan_width);
  return base_ys_ + t;
}

int MacroModel::y(int t, int s) const {
  const int py = spec_.pins_on_y();
  assert(t >= 0 && t < spec_.chan_width && s >= 0 && s <= py);
  return base_y_ + t * (py + 1) + s;
}

int MacroModel::stub(int p, int s) const {
  assert(p >= 0 && p < spec_.lb_pins() && s >= 0 && s < spec_.chan_width);
  return base_stub_ + p * spec_.chan_width + s;
}

int MacroModel::port_node(int port) const {
  const int w = spec_.chan_width;
  const int px = spec_.pins_on_x();
  const int py = spec_.pins_on_y();
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("MacroModel::port_node: bad port id");
  }
  if (port < w) return xw(port);                       // west
  if (port < 2 * w) return x(port - w, px);            // east
  if (port < 3 * w) return y(port - 2 * w, py);        // north
  if (port < 4 * w) return ys(port - 3 * w);           // south
  return pin_node(port - 4 * w);                       // LB pins
}

void MacroModel::add_point(SwitchPoint::Kind kind, std::array<int, 4> arms,
                           int n_arms) {
  SwitchPoint pt;
  pt.kind = kind;
  pt.bit_offset = next_bit_;
  pt.n_arms = n_arms;
  pt.arms = arms;
  if (n_arms == 3) pt.arms[3] = -1;
  next_bit_ += pt.n_switches();
  const int idx = static_cast<int>(points_.size());
  const auto* table = n_arms == 4 ? kPairs4 : kPairs3;
  for (int pair = 0; pair < pt.n_switches(); ++pair) {
    const int a = pt.arms[table[pair].first];
    const int b = pt.arms[table[pair].second];
    adj_[a].push_back({b, idx, pair});
    adj_[b].push_back({a, idx, pair});
  }
  points_.push_back(pt);
}

void MacroModel::build_points() {
  const int w = spec_.chan_width;
  const int px = spec_.pins_on_x();
  const int l = spec_.lb_pins();

  // Switch-box points. Arm order (defines bit order): west, east, south,
  // north. The pattern permutes which ChanY track joins ChanX track t.
  for (int t = 0; t < w; ++t) {
    int ty = t;
    if (spec_.sb_pattern == SbPattern::kWilton && w > 1) {
      ty = (t + 1) % w;  // rotated ChanY index, Wilton-style twist
    }
    add_point(SwitchPoint::Kind::kSwitchBox, {xw(t), x(t, 0), ys(ty), y(ty, 0)},
              4);
  }

  // Pin-stub crossings. Stub p's crossing s meets track W-1-s; the track
  // side segments depend on whether the pin crosses ChanX or ChanY.
  // X-pin j sits between track segments X(t, j) and X(t, j+1); Y-pin j
  // between Y(t, j) and Y(t, j+1). Arm order: stub pin-side, stub far-side,
  // track SB-side, track far-side.
  for (int p = 0; p < l; ++p) {
    const bool on_x = p < px;
    const int j = on_x ? p : p - px;
    for (int s = 0; s < w - 1; ++s) {
      const int t = w - 1 - s;
      const int trk_near = on_x ? x(t, j) : y(t, j);
      const int trk_far = on_x ? x(t, j + 1) : y(t, j + 1);
      add_point(SwitchPoint::Kind::kCross,
                {stub(p, s), stub(p, s + 1), trk_near, trk_far}, 4);
    }
    // T termination at track 0. Arm order: stub, track SB-side, track
    // far-side.
    const int trk_near = on_x ? x(0, j) : y(0, j);
    const int trk_far = on_x ? x(0, j + 1) : y(0, j + 1);
    add_point(SwitchPoint::Kind::kTee, {stub(p, w - 1), trk_near, trk_far, -1},
              3);
  }
}

std::string MacroModel::node_name(int node) const {
  const int w = spec_.chan_width;
  const int px = spec_.pins_on_x();
  const int py = spec_.pins_on_y();
  if (node < base_x_) return "XW(t" + std::to_string(node - base_xw_) + ")";
  if (node < base_ys_) {
    const int r = node - base_x_;
    return "X(t" + std::to_string(r / (px + 1)) + ",s" +
           std::to_string(r % (px + 1)) + ")";
  }
  if (node < base_y_) return "YS(t" + std::to_string(node - base_ys_) + ")";
  if (node < base_stub_) {
    const int r = node - base_y_;
    return "Y(t" + std::to_string(r / (py + 1)) + ",s" +
           std::to_string(r % (py + 1)) + ")";
  }
  const int r = node - base_stub_;
  return "STUB(p" + std::to_string(r / w) + ",s" + std::to_string(r % w) + ")";
}

}  // namespace vbs
