#include "arch/arch_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace vbs {

namespace {

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("arch parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

ArchSpec read_arch(std::istream& is) {
  ArchSpec spec;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key, eq, value;
    if (!(ls >> key)) continue;
    if (!(ls >> eq >> value) || eq != "=") {
      fail(line_no, "expected 'key = value'");
    }
    std::string extra;
    if (ls >> extra) fail(line_no, "trailing tokens after value");
    try {
      if (key == "chan_width") {
        spec.chan_width = std::stoi(value);
      } else if (key == "lut_k") {
        spec.lut_k = std::stoi(value);
      } else if (key == "sb_pattern") {
        if (value == "disjoint") {
          spec.sb_pattern = SbPattern::kDisjoint;
        } else if (value == "wilton") {
          spec.sb_pattern = SbPattern::kWilton;
        } else {
          fail(line_no, "unknown sb_pattern '" + value + "'");
        }
      } else {
        fail(line_no, "unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument&) {
      fail(line_no, "bad numeric value '" + value + "'");
    }
  }
  spec.validate();
  return spec;
}

ArchSpec arch_from_string(const std::string& text) {
  std::istringstream ss(text);
  return read_arch(ss);
}

ArchSpec read_arch_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open arch file: " + path);
  return read_arch(is);
}

void write_arch(std::ostream& os, const ArchSpec& spec) {
  os << "chan_width = " << spec.chan_width << "\n";
  os << "lut_k = " << spec.lut_k << "\n";
  os << "sb_pattern = "
     << (spec.sb_pattern == SbPattern::kWilton ? "wilton" : "disjoint")
     << "\n";
}

std::string arch_to_string(const ArchSpec& spec) {
  std::ostringstream ss;
  write_arch(ss, spec);
  return ss.str();
}

}  // namespace vbs
