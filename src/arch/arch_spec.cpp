#include "arch/arch_spec.h"

#include <stdexcept>
#include <string>

namespace vbs {

void ArchSpec::validate() const {
  if (chan_width < 2) {
    throw std::invalid_argument("ArchSpec: channel width must be >= 2, got " +
                                std::to_string(chan_width));
  }
  if (chan_width > 255) {
    throw std::invalid_argument("ArchSpec: channel width too large (max 255)");
  }
  if (lut_k < 2 || lut_k > 6) {
    throw std::invalid_argument("ArchSpec: LUT size must be in [2,6], got " +
                                std::to_string(lut_k));
  }
}

}  // namespace vbs
