// Text format for architecture descriptions — the "FPGA architecture"
// input of the design flow (paper Fig. 3). One `key = value` per line,
// '#' comments:
//
//   chan_width = 20
//   lut_k      = 6
//   sb_pattern = disjoint   # or: wilton
#pragma once

#include <iosfwd>
#include <string>

#include "arch/arch_spec.h"

namespace vbs {

/// Parses an architecture description; unknown keys and malformed lines
/// throw std::runtime_error with the line number. Missing keys keep their
/// defaults. The result is validate()d.
ArchSpec read_arch(std::istream& is);
ArchSpec arch_from_string(const std::string& text);
ArchSpec read_arch_file(const std::string& path);

void write_arch(std::ostream& os, const ArchSpec& spec);
std::string arch_to_string(const ArchSpec& spec);

}  // namespace vbs
