// Parameters of the island-style FPGA architecture modelled after the paper:
// a grid of *macros*, each containing one logic block (K-input LUT plus
// flip-flop), the horizontal (ChanX) and vertical (ChanY) connection boxes
// adjacent to it, and one switch box interconnecting both channels
// (paper Fig. 1a).
//
// The programmable-switch budget follows the paper's Eq. (1):
//
//   Nraw = NLB + 6*(NS + NC+) + 3*NCT
//
// with NLB = 2^K + 1 (LUT mask + FF select), NS = W switch-box points,
// NC+ = L*(W-1) four-way pin/track crossings and NCT = L three-way stub
// terminations, L = K+1 logic-block pins. For the paper's W = 5, K = 6
// example this yields Nraw = 284, and 1004 bits per macro at the
// normalized W = 20 used in the evaluation.
#pragma once

#include <cstdint>

#include "util/bitio.h"

namespace vbs {

/// Which track indices meet at each switch-box point. The paper's formula
/// only fixes the *count* (W four-way points); the topology is pluggable.
enum class SbPattern : std::uint8_t {
  kDisjoint,  ///< point t joins ChanX track t with ChanY track t (planar)
  kWilton,    ///< point t joins ChanX track t with rotated ChanY indices
};

struct ArchSpec {
  int chan_width = 20;                      ///< W: tracks per routing channel
  int lut_k = 6;                            ///< K: LUT input count (<= 6)
  SbPattern sb_pattern = SbPattern::kDisjoint;

  /// L: logic-block pins (K inputs + 1 output).
  int lb_pins() const { return lut_k + 1; }
  /// NLB: configuration bits of one logic block (LUT mask + FF select).
  int nlb_bits() const { return (1 << lut_k) + 1; }

  /// Pins whose connection-box stub crosses ChanX (inputs 0..px-1).
  int pins_on_x() const { return (lb_pins() + 1) / 2; }
  /// Pins whose stub crosses ChanY (remaining inputs + the LUT output).
  int pins_on_y() const { return lb_pins() - pins_on_x(); }

  /// NS of Eq. (1): four-way switch-box points.
  int sb_points() const { return chan_width; }
  /// NC+ of Eq. (1): four-way pin/track crossings per macro.
  int cross_points() const { return lb_pins() * (chan_width - 1); }
  /// NCT of Eq. (1): three-way stub terminations per macro.
  int tee_points() const { return lb_pins(); }

  /// Nraw of Eq. (1): raw configuration bits of one macro.
  int nraw_bits() const {
    return nlb_bits() + 6 * (sb_points() + cross_points()) + 3 * tee_points();
  }
  /// Routing-only configuration bits (Nraw minus the logic-block data).
  int nroute_bits() const { return nraw_bits() - nlb_bits(); }

  /// Black-box I/O count of a single macro: W track ports on each of the
  /// four sides plus the L logic-block pins.
  int ports_per_macro() const { return 4 * chan_width + lb_pins(); }

  /// M of the paper: bits per connection endpoint, ceil(log2(4W + L + 1)).
  unsigned port_field_bits() const {
    return bits_for(static_cast<std::uint64_t>(ports_per_macro()) + 1);
  }

  /// Sanity checks (positive W, K in [1,6], ...); throws std::invalid_argument.
  void validate() const;

  friend bool operator==(const ArchSpec&, const ArchSpec&) = default;
};

}  // namespace vbs
