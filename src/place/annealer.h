// Simulated-annealing placer, following VPR's adaptive schedule
// (Betz & Rose, FPL'97): range-limited swap moves, temperature updates
// driven by the acceptance rate, and exit when the temperature falls below
// a small fraction of the per-net cost.
//
// The inner loop is batched: each round draws a fixed-size batch of
// proposals serially from the master RNG (so the stream — and hence the
// schedule — is a pure function of the seed), evaluates their cost deltas
// speculatively against the state frozen at batch start, then validates
// and commits survivors in canonical slot order. With threads > 1 the
// speculative evaluations fan out over util/thread_pool and a slot whose
// read set (affected CSR net rows + the two swap sites) was touched by an
// earlier commit of the same batch is simply re-evaluated serially — the
// same speculate/validate/commit discipline as the router's parallel
// engine, and like it byte-identical to the serial path at any thread
// count (placement, stats and cost_drift alike).
#pragma once

#include <cstdint>

#include "arch/arch_spec.h"
#include "netlist/netlist.h"
#include "pack/pack.h"
#include "place/placement.h"

namespace vbs {

struct PlaceOptions {
  /// 0 is the "unset" sentinel: run_flow fills it with FlowOptions::seed,
  /// and place_design itself treats it as seed 1 — so an explicitly
  /// requested placer seed of 1 is never silently replaced.
  std::uint64_t seed = 0;
  /// Scales moves-per-temperature (VPR's inner_num); 1.0 is "fast" quality.
  double effort = 1.0;
  /// Max I/Os per (side, tile) boundary; -1 means chan_width / 2.
  int io_per_tile = -1;
  /// Maintain net bounding boxes incrementally across moves (O(1) amortized
  /// per affected net) instead of rescanning every terminal of every
  /// affected net per proposal. Produces bit-identical cost deltas — and so
  /// an identical placement for a given seed — to the full-recompute path;
  /// off exists only as the cross-check / benchmark baseline.
  bool incremental_bbox = true;
  /// Worker threads for speculative move evaluation (total participants,
  /// including the caller). The engine is deterministic: every value
  /// produces byte-identical placements and stats. 0 = "unset": run_flow
  /// fills it with FlowOptions::threads, place_design itself treats it
  /// as 1.
  int threads = 0;
};

struct PlaceStats {
  double initial_cost = 0.0;
  /// Cost of the returned placement, measured after the final I/O
  /// refinement pass; equals placement_hpwl(nl, pd, result) exactly.
  double final_cost = 0.0;
  /// Proposals actually evaluated: degenerate `to == from` slots — at
  /// generation time, or made degenerate by an earlier commit of their
  /// batch moving the drawn LUT onto the target — are skipped without
  /// costing a proposal, and are excluded here AND from the acceptance
  /// fraction that drives the temperature / range-limit schedule (they
  /// used to be counted, deflating it).
  long long moves = 0;
  long long accepted = 0;
  int temperatures = 0;
  /// |accumulated incremental cost - full recomputation| at annealing exit;
  /// bounds the floating-point drift of the incremental bookkeeping.
  double cost_drift = 0.0;
  /// Parallel-engine diagnostics (0 when threads <= 1): slots whose
  /// speculative evaluation survived validation vs. slots re-evaluated
  /// serially because an earlier commit of their batch touched their read
  /// set. Scheduling-dependent — NOT part of the determinism contract,
  /// everything above is.
  long long spec_commits = 0;
  long long spec_rejected = 0;
  /// Participants actually used (1 for the serial path).
  int threads_used = 1;
};

/// Places `pd` on a grid_w x grid_h fabric. Throws std::invalid_argument if
/// the design does not fit (LUTs > tiles, or I/Os > perimeter capacity).
Placement place_design(const Netlist& nl, const PackedDesign& pd,
                       const ArchSpec& spec, int grid_w, int grid_h,
                       const PlaceOptions& opts = {},
                       PlaceStats* stats = nullptr);

/// Bounding-box kernel cross-check + timing harness: sweeps every net's
/// from-scratch box cost `sweeps` times through the annealer's SoA scan
/// kernel and through the retained pre-SoA AoS reference (branchy fold-in
/// over a struct per net), and compares the per-net costs for exact double
/// equality. flow_bench's kernel leg runs this in-run and fails the bench
/// on a mismatch.
struct PlaceKernelReport {
  int nets = 0;
  long long sweeps = 0;
  double soa_seconds = 0.0;   ///< SoA scan kernel, all sweeps
  double ref_seconds = 0.0;   ///< AoS reference, all sweeps
  double total_cost = 0.0;    ///< summed per-net cost (either side; they match)
  bool identical = false;     ///< per-net exact equality across every net
};
PlaceKernelReport bench_place_kernels(const Netlist& nl,
                                      const PackedDesign& pd,
                                      const Placement& pl, long long sweeps);

}  // namespace vbs
