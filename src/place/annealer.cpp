#include "place/annealer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/csr.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vbs {

namespace {

double crossing_factor(int terminals) {
  static constexpr double kQ[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                  1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                  1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                  1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                  1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                  2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                  2.2334};
  if (terminals < 4) return 1.0;
  if (terminals <= 30) return kQ[terminals];
  return 2.2334 + 0.02616 * (terminals - 30);
}

struct NetBox {
  int minx, maxx, miny, maxy;
  // Terminals sitting exactly on each bounding edge. A single-block move
  // updates the box in O(1); only when the last terminal leaves a bounding
  // edge (its count hits 0) does the box need a full terminal rescan.
  int nmin_x, nmax_x, nmin_y, nmax_y;
  double cost;
};

/// Incremental-cost annealing state.
class AnnealState {
 public:
  AnnealState(const Netlist& nl, const PackedDesign& pd, Placement& pl,
              bool incremental)
      : nl_(nl), pd_(pd), pl_(pl), incremental_(incremental) {
    pt_of_block_.assign(static_cast<std::size_t>(nl.num_blocks()), Point{});
    for (int i = 0; i < pd.num_luts(); ++i) {
      pt_of_block_[static_cast<std::size_t>(pd.luts[i])] =
          pl.lut_loc[static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < pd.num_ios(); ++i) {
      pt_of_block_[static_cast<std::size_t>(pd.ios[i])] =
          pl.io_point(pl.io_loc[static_cast<std::size_t>(i)]);
    }

    // block -> (net, terminal multiplicity) in CSR form. The multiplicity
    // matters: a block appearing as driver and sink (or on several sink
    // pins) of one net contributes that many terminals to its box.
    {
      std::vector<NetId> mark(static_cast<std::size_t>(nl.num_blocks()),
                              kNoNet);
      std::vector<std::int32_t> mult(static_cast<std::size_t>(nl.num_blocks()),
                                     0);
      CsrBuilder<NetRef> builder(static_cast<std::size_t>(nl.num_blocks()));
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        auto touch = [&](BlockId b) {
          if (mark[static_cast<std::size_t>(b)] != n) {
            mark[static_cast<std::size_t>(b)] = n;
            builder.count(static_cast<std::size_t>(b));
          }
        };
        touch(net.driver);
        for (const Net::Sink& s : net.sinks) touch(s.block);
      }
      builder.prepare();
      mark.assign(mark.size(), kNoNet);
      std::vector<BlockId> touched;
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        touched.clear();
        auto touch = [&](BlockId b) {
          const auto sb = static_cast<std::size_t>(b);
          if (mark[sb] != n) {
            mark[sb] = n;
            mult[sb] = 0;
            touched.push_back(b);
          }
          ++mult[sb];
        };
        touch(net.driver);
        for (const Net::Sink& s : net.sinks) touch(s.block);
        for (BlockId b : touched) {
          builder.add(static_cast<std::size_t>(b),
                      {n, mult[static_cast<std::size_t>(b)]});
        }
      }
      nets_of_block_ = std::move(builder).build();
    }

    q_.resize(static_cast<std::size_t>(nl.num_nets()));
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      q_[static_cast<std::size_t>(n)] =
          crossing_factor(static_cast<int>(nl.net(n).sinks.size()) + 1);
    }
    boxes_.resize(static_cast<std::size_t>(nl.num_nets()));
    net_epoch_.assign(static_cast<std::size_t>(nl.num_nets()), 0);
    net_slot_.assign(static_cast<std::size_t>(nl.num_nets()), 0);
    total_cost_ = 0.0;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      recompute_box(n);
      total_cost_ += boxes_[static_cast<std::size_t>(n)].cost;
    }
    site_of_.assign(
        static_cast<std::size_t>(pl.grid_w) * static_cast<std::size_t>(pl.grid_h),
        -1);
    for (int i = 0; i < pd.num_luts(); ++i) {
      const Point p = pl.lut_loc[static_cast<std::size_t>(i)];
      site_of_[site_index(p)] = i;
    }
  }

  double total_cost() const { return total_cost_; }
  int num_nets() const { return nl_.num_nets(); }

  /// |accumulated cost - from-scratch recomputation| over all nets; bounds
  /// the drift of thousands of incremental += delta updates.
  double cost_drift() const {
    double fresh = 0.0;
    for (NetId n = 0; n < nl_.num_nets(); ++n) {
      if (nl_.net(n).sinks.empty()) continue;
      fresh += compute_box(n).cost;
    }
    return std::abs(fresh - total_cost_);
  }

  /// Proposes moving LUT instance `li` to `to` (swapping with any occupant);
  /// returns the cost delta without committing.
  double propose(int li, Point to) {
    moved_.clear();
    const Point from = pl_.lut_loc[static_cast<std::size_t>(li)];
    const int occupant = site_of_[site_index(to)];
    move_block(pd_.luts[static_cast<std::size_t>(li)], to);
    if (occupant >= 0) {
      move_block(pd_.luts[static_cast<std::size_t>(occupant)], from);
    }
    ++epoch_;
    affected_.clear();
    new_boxes_.clear();
    dirty_.clear();
    for (const MovedBlock& mv : moved_) {
      for (const NetRef& ref :
           nets_of_block_.row(static_cast<std::size_t>(mv.block))) {
        const auto sn = static_cast<std::size_t>(ref.net);
        std::size_t slot;
        if (net_epoch_[sn] != epoch_) {
          net_epoch_[sn] = epoch_;
          slot = affected_.size();
          net_slot_[sn] = static_cast<std::uint32_t>(slot);
          affected_.push_back(ref.net);
          new_boxes_.push_back(boxes_[sn]);
          // In full-recompute mode every affected box is rescanned.
          dirty_.push_back(incremental_ ? 0 : 1);
        } else {
          slot = net_slot_[sn];
        }
        if (dirty_[slot] != 0) continue;
        NetBox& nb = new_boxes_[slot];
        for (std::int32_t k = 0; k < ref.mult; ++k) {
          if (!update_box(nb, mv.from, mv.to)) {
            dirty_[slot] = 1;  // moved off a shrinking edge: rescan below
            break;
          }
        }
      }
    }
    double delta = 0.0;
    for (std::size_t k = 0; k < affected_.size(); ++k) {
      const auto sn = static_cast<std::size_t>(affected_[k]);
      if (dirty_[k] != 0) {
        new_boxes_[k] = compute_box(affected_[k]);
      } else {
        NetBox& nb = new_boxes_[k];
        nb.cost = q_[sn] * ((nb.maxx - nb.minx) + (nb.maxy - nb.miny));
      }
      delta += new_boxes_[k].cost - boxes_[sn].cost;
    }
    pending_li_ = li;
    pending_to_ = to;
    pending_from_ = from;
    pending_occupant_ = occupant;
    return delta;
  }

  void commit(double delta) {
    for (std::size_t k = 0; k < affected_.size(); ++k) {
      boxes_[static_cast<std::size_t>(affected_[k])] = new_boxes_[k];
    }
    total_cost_ += delta;
    pl_.lut_loc[static_cast<std::size_t>(pending_li_)] = pending_to_;
    site_of_[site_index(pending_to_)] = pending_li_;
    if (pending_occupant_ >= 0) {
      pl_.lut_loc[static_cast<std::size_t>(pending_occupant_)] = pending_from_;
      site_of_[site_index(pending_from_)] = pending_occupant_;
    } else {
      site_of_[site_index(pending_from_)] = -1;
    }
  }

  void revert() {
    for (auto it = moved_.rbegin(); it != moved_.rend(); ++it) {
      pt_of_block_[static_cast<std::size_t>(it->block)] = it->from;
    }
  }

 private:
  struct NetRef {
    NetId net;
    std::int32_t mult;  ///< terminals of this net on this block
  };
  struct MovedBlock {
    BlockId block;
    Point from, to;
  };

  std::size_t site_index(Point p) const {
    return static_cast<std::size_t>(p.y) * pl_.grid_w + p.x;
  }

  void move_block(BlockId b, Point to) {
    Point& p = pt_of_block_[static_cast<std::size_t>(b)];
    moved_.push_back({b, p, to});
    p = to;
  }

  /// Folds one terminal at `q` into the box (bounds and edge counts).
  static void add_point(NetBox& nb, Point q) {
    if (q.x < nb.minx) {
      nb.minx = q.x;
      nb.nmin_x = 1;
    } else if (q.x == nb.minx) {
      ++nb.nmin_x;
    }
    if (q.x > nb.maxx) {
      nb.maxx = q.x;
      nb.nmax_x = 1;
    } else if (q.x == nb.maxx) {
      ++nb.nmax_x;
    }
    if (q.y < nb.miny) {
      nb.miny = q.y;
      nb.nmin_y = 1;
    } else if (q.y == nb.miny) {
      ++nb.nmin_y;
    }
    if (q.y > nb.maxy) {
      nb.maxy = q.y;
      nb.nmax_y = 1;
    } else if (q.y == nb.maxy) {
      ++nb.nmax_y;
    }
  }

  /// Moves one terminal `from` -> `to`. Returns false when the terminal was
  /// the last one on a bounding edge, i.e. the box may shrink and must be
  /// rescanned (the box is left inconsistent in that case).
  static bool update_box(NetBox& nb, Point from, Point to) {
    add_point(nb, to);
    if (from.x == nb.minx && --nb.nmin_x == 0) return false;
    if (from.x == nb.maxx && --nb.nmax_x == 0) return false;
    if (from.y == nb.miny && --nb.nmin_y == 0) return false;
    if (from.y == nb.maxy && --nb.nmax_y == 0) return false;
    return true;
  }

  NetBox compute_box(NetId n) const {
    const Net& net = nl_.net(n);
    const Point p = pt_of_block_[static_cast<std::size_t>(net.driver)];
    NetBox nb{p.x, p.x, p.y, p.y, 1, 1, 1, 1, 0.0};
    for (const Net::Sink& s : net.sinks) {
      add_point(nb, pt_of_block_[static_cast<std::size_t>(s.block)]);
    }
    nb.cost = q_[static_cast<std::size_t>(n)] *
              ((nb.maxx - nb.minx) + (nb.maxy - nb.miny));
    return nb;
  }

  void recompute_box(NetId n) {
    if (nl_.net(n).sinks.empty()) {
      boxes_[static_cast<std::size_t>(n)] = {0, 0, 0, 0, 0, 0, 0, 0, 0.0};
      return;
    }
    boxes_[static_cast<std::size_t>(n)] = compute_box(n);
  }

  const Netlist& nl_;
  const PackedDesign& pd_;
  Placement& pl_;
  const bool incremental_;
  std::vector<Point> pt_of_block_;
  Csr<NetRef> nets_of_block_;
  std::vector<double> q_;  ///< per-net crossing factor (terminal count is static)
  std::vector<NetBox> boxes_;
  std::vector<NetBox> new_boxes_;
  std::vector<int> site_of_;
  std::vector<MovedBlock> moved_;
  std::vector<NetId> affected_;
  std::vector<std::uint8_t> dirty_;  ///< parallel to affected_: needs rescan
  std::vector<std::uint32_t> net_epoch_;
  std::vector<std::uint32_t> net_slot_;  ///< net -> index in affected_
  std::uint32_t epoch_ = 0;
  double total_cost_ = 0.0;
  int pending_li_ = -1, pending_occupant_ = -1;
  Point pending_to_, pending_from_;
};

/// Assigns each I/O to the free perimeter slot nearest the centroid of the
/// logic it connects to.
void assign_ios(const Netlist& nl, const PackedDesign& pd, Placement& pl,
                int io_per_tile) {
  const int gw = pl.grid_w, gh = pl.grid_h;
  // Capacity used per (side, tile).
  std::vector<std::vector<int>> used(4);
  used[0].assign(static_cast<std::size_t>(gh), 0);  // west
  used[1].assign(static_cast<std::size_t>(gh), 0);  // east
  used[2].assign(static_cast<std::size_t>(gw), 0);  // north
  used[3].assign(static_cast<std::size_t>(gw), 0);  // south

  std::vector<Point> lut_pt(static_cast<std::size_t>(nl.num_blocks()));
  for (int i = 0; i < pd.num_luts(); ++i) {
    lut_pt[static_cast<std::size_t>(pd.luts[i])] =
        pl.lut_loc[static_cast<std::size_t>(i)];
  }

  for (int i = 0; i < pd.num_ios(); ++i) {
    const BlockId bi = pd.ios[i];
    const Block& b = nl.block(bi);
    // Centroid of connected LUT terminals.
    double cx = gw / 2.0, cy = gh / 2.0;
    int cnt = 0;
    double sx = 0, sy = 0;
    auto add_terminal = [&](BlockId other) {
      if (nl.block(other).type == BlockType::kLut) {
        sx += lut_pt[static_cast<std::size_t>(other)].x;
        sy += lut_pt[static_cast<std::size_t>(other)].y;
        ++cnt;
      }
    };
    if (b.type == BlockType::kInput) {
      for (const Net::Sink& s : nl.net(b.output).sinks) add_terminal(s.block);
    } else {
      add_terminal(nl.net(b.inputs[0]).driver);
    }
    if (cnt > 0) {
      cx = sx / cnt;
      cy = sy / cnt;
    }
    // Scan perimeter positions for the nearest one with capacity.
    IoSlot best{};
    double best_d = 1e30;
    auto consider = [&](Side side, int tile, Point at) {
      const auto s = static_cast<std::size_t>(side);
      if (used[s][static_cast<std::size_t>(tile)] >= io_per_tile) return;
      const double d =
          std::abs(at.x - cx) + std::abs(at.y - cy) +
          0.01 * used[s][static_cast<std::size_t>(tile)];
      if (d < best_d) {
        best_d = d;
        best = {side, tile, used[s][static_cast<std::size_t>(tile)]};
      }
    };
    for (int t = 0; t < gh; ++t) {
      consider(Side::kWest, t, {0, t});
      consider(Side::kEast, t, {gw - 1, t});
    }
    for (int t = 0; t < gw; ++t) {
      consider(Side::kNorth, t, {t, gh - 1});
      consider(Side::kSouth, t, {t, 0});
    }
    if (best_d >= 1e30) {
      throw std::invalid_argument("place: not enough perimeter I/O capacity");
    }
    pl.io_loc[static_cast<std::size_t>(i)] = best;
    ++used[static_cast<std::size_t>(best.side)][static_cast<std::size_t>(best.tile)];
  }
}

}  // namespace

Placement place_design(const Netlist& nl, const PackedDesign& pd,
                       const ArchSpec& spec, int grid_w, int grid_h,
                       const PlaceOptions& opts, PlaceStats* stats) {
  if (pd.num_luts() > grid_w * grid_h) {
    throw std::invalid_argument("place: design does not fit the grid");
  }
  const int io_per_tile =
      opts.io_per_tile > 0 ? opts.io_per_tile : std::max(1, spec.chan_width / 2);
  if (pd.num_ios() > 2 * (grid_w + grid_h) * io_per_tile) {
    throw std::invalid_argument("place: too many I/Os for the perimeter");
  }

  Rng rng(opts.seed == 0 ? 1 : opts.seed);  // 0 = unset, see PlaceOptions
  Placement pl;
  pl.grid_w = grid_w;
  pl.grid_h = grid_h;

  // Initial placement: LUTs on a random permutation of tiles.
  std::vector<int> sites(static_cast<std::size_t>(grid_w) * grid_h);
  for (std::size_t i = 0; i < sites.size(); ++i) sites[i] = static_cast<int>(i);
  rng.shuffle(sites);
  pl.lut_loc.resize(static_cast<std::size_t>(pd.num_luts()));
  for (int i = 0; i < pd.num_luts(); ++i) {
    const int s = sites[static_cast<std::size_t>(i)];
    pl.lut_loc[static_cast<std::size_t>(i)] = {s % grid_w, s / grid_w};
  }
  // Initial I/O: centroid-greedy against the random placement; refined after
  // annealing.
  pl.io_loc.resize(static_cast<std::size_t>(pd.num_ios()));
  assign_ios(nl, pd, pl, io_per_tile);

  AnnealState state(nl, pd, pl, opts.incremental_bbox);
  if (stats) stats->initial_cost = state.total_cost();

  if (pd.num_luts() > 1) {
    const long long moves_per_t = std::max<long long>(
        32, static_cast<long long>(opts.effort *
                                   std::pow(pd.num_luts(), 4.0 / 3.0)));
    double rlim = std::max(grid_w, grid_h);

    // Initial temperature: 20 x the std-dev of deltas over a random-walk
    // sample (all moves accepted), per VPR.
    {
      double sum = 0, sum2 = 0;
      const int samples = std::min(200, pd.num_luts() * 2);
      for (int s = 0; s < samples; ++s) {
        const int li = static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(pd.num_luts())));
        const Point to{rng.next_int(0, grid_w - 1), rng.next_int(0, grid_h - 1)};
        const double d = state.propose(li, to);
        state.commit(d);
        sum += d;
        sum2 += d * d;
      }
      const double var = sum2 / samples - (sum / samples) * (sum / samples);
      double t0 = 20.0 * std::sqrt(std::max(0.0, var));
      if (t0 <= 0) t0 = 1.0;
      // Anneal.
      double t = t0;
      long long tot_moves = 0, tot_accept = 0;
      int n_temps = 0;
      while (true) {
        long long accepted = 0;
        for (long long m = 0; m < moves_per_t; ++m) {
          const int li = static_cast<int>(
              rng.next_below(static_cast<std::uint64_t>(pd.num_luts())));
          const Point from = pl.lut_loc[static_cast<std::size_t>(li)];
          const int r = std::max(1, static_cast<int>(rlim));
          Point to{
              std::clamp(from.x + rng.next_int(-r, r), 0, grid_w - 1),
              std::clamp(from.y + rng.next_int(-r, r), 0, grid_h - 1)};
          if (to == from) continue;
          const double d = state.propose(li, to);
          if (d <= 0 || rng.next_double() < std::exp(-d / t)) {
            state.commit(d);
            ++accepted;
          } else {
            state.revert();
          }
        }
        tot_moves += moves_per_t;
        tot_accept += accepted;
        ++n_temps;
        const double frac = static_cast<double>(accepted) / moves_per_t;
        // VPR range-limit and temperature updates.
        rlim = std::clamp(rlim * (1.0 - 0.44 + frac), 1.0,
                          static_cast<double>(std::max(grid_w, grid_h)));
        double alpha;
        if (frac > 0.96) alpha = 0.5;
        else if (frac > 0.8) alpha = 0.9;
        else if (frac > 0.15 || rlim > 1.0) alpha = 0.95;
        else alpha = 0.8;
        t *= alpha;
        if (t < 0.005 * state.total_cost() / std::max(1, state.num_nets())) {
          break;
        }
      }
      if (stats) {
        stats->moves = tot_moves;
        stats->accepted = tot_accept;
        stats->temperatures = n_temps;
      }
    }
  }

  // The drift bound is a property of the annealing bookkeeping, so it is
  // taken before the I/O refinement below invalidates the anneal state.
  if (stats) stats->cost_drift = state.cost_drift();

  // Final I/O refinement against the annealed logic placement.
  assign_ios(nl, pd, pl, io_per_tile);

  if (stats) {
    // Measured after the refinement (the anneal state still holds the
    // pre-refinement I/O slots): final_cost is the cost of the placement
    // actually returned, and equals placement_hpwl(nl, pd, result).
    stats->final_cost = placement_hpwl(nl, pd, pl);
  }
  pl.validate(pd);
  return pl;
}

}  // namespace vbs
