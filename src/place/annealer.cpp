#include "place/annealer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/csr.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace vbs {

namespace {

/// Max slots per speculation batch. The batch boundaries decide which
/// frozen state each proposal is generated against, so the batch length
/// must be a pure function of seed-deterministic quantities for the engine
/// to stay byte-identical at every thread count; the anneal loop adapts it
/// per temperature to the (deterministic) acceptance fraction — commits
/// are what invalidate speculative results, so high-acceptance
/// temperatures run shorter batches.
constexpr long long kSpecBatch = 64;
constexpr long long kMinSpecBatch = 16;

long long batch_len_for(double frac) {
  return std::clamp(static_cast<long long>(8.0 / std::max(frac, 0.125)),
                    kMinSpecBatch, kSpecBatch);
}

double crossing_factor(int terminals) {
  static constexpr double kQ[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                  1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                  1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                  1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                  1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                  2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                  2.2334};
  if (terminals < 4) return 1.0;
  if (terminals <= 30) return kQ[terminals];
  return 2.2334 + 0.02616 * (terminals - 30);
}

/// Register-resident working copy of one net's bounding box. The committed
/// boxes live in NetBoxStore's parallel arrays; a Box is what the kernels
/// load, mutate and store back.
struct Box {
  std::int32_t xmin, xmax, ymin, ymax;
  // Terminals sitting exactly on each bounding edge. A single-block move
  // updates the box in O(1); only when the last terminal leaves a bounding
  // edge (its count hits 0) does the box need a full terminal rescan.
  std::int32_t nxmin, nxmax, nymin, nymax;
  double cost;
};

/// Committed per-net boxes in structure-of-arrays layout: each field is one
/// contiguous array indexed by net, so the cost-delta accumulation reads a
/// single double stride and the commit scatter touches exactly the fields
/// it writes — no 40-byte struct pulled through the cache per access.
struct NetBoxStore {
  std::vector<std::int32_t> xmin, xmax, ymin, ymax;
  std::vector<std::int32_t> nxmin, nxmax, nymin, nymax;
  std::vector<double> cost;

  void assign(std::size_t n) {
    xmin.assign(n, 0);
    xmax.assign(n, 0);
    ymin.assign(n, 0);
    ymax.assign(n, 0);
    nxmin.assign(n, 0);
    nxmax.assign(n, 0);
    nymin.assign(n, 0);
    nymax.assign(n, 0);
    cost.assign(n, 0.0);
  }
  Box load(std::size_t i) const {
    return {xmin[i], xmax[i], ymin[i], ymax[i],
            nxmin[i], nxmax[i], nymin[i], nymax[i], cost[i]};
  }
  void store(std::size_t i, const Box& b) {
    xmin[i] = b.xmin;
    xmax[i] = b.xmax;
    ymin[i] = b.ymin;
    ymax[i] = b.ymax;
    nxmin[i] = b.nxmin;
    nxmax[i] = b.nxmax;
    nymin[i] = b.nymin;
    nymax[i] = b.nymax;
    cost[i] = b.cost;
  }
};

/// Folds one terminal at (x, y) into the box — branch-light: every bound
/// and count is updated with selects, no if/else ladder for the compiler to
/// serialize on.
inline void add_point(Box& b, std::int32_t x, std::int32_t y) {
  b.nxmin = x < b.xmin ? 1 : b.nxmin + (x == b.xmin ? 1 : 0);
  b.nxmax = x > b.xmax ? 1 : b.nxmax + (x == b.xmax ? 1 : 0);
  b.nymin = y < b.ymin ? 1 : b.nymin + (y == b.ymin ? 1 : 0);
  b.nymax = y > b.ymax ? 1 : b.nymax + (y == b.ymax ? 1 : 0);
  b.xmin = std::min(b.xmin, x);
  b.xmax = std::max(b.xmax, x);
  b.ymin = std::min(b.ymin, y);
  b.ymax = std::max(b.ymax, y);
}

/// Moves one terminal `from` -> `to`. Returns false when the terminal was
/// the last one on a bounding edge, i.e. the box may shrink and must be
/// rescanned (the box is left inconsistent in that case — the caller
/// discards it). Decrementing all four counts before testing is equivalent
/// to the short-circuiting formulation: on success every count would have
/// been decremented anyway, on failure the box is thrown away.
inline bool move_point(Box& b, Point from, Point to) {
  add_point(b, to.x, to.y);
  b.nxmin -= from.x == b.xmin ? 1 : 0;
  b.nxmax -= from.x == b.xmax ? 1 : 0;
  b.nymin -= from.y == b.ymin ? 1 : 0;
  b.nymax -= from.y == b.ymax ? 1 : 0;
  return b.nxmin != 0 && b.nxmax != 0 && b.nymin != 0 && b.nymax != 0;
}

/// Branch-light two-pass scan over gathered terminal coordinates: pass one
/// reduces min/max with selects, pass two counts terminals on each final
/// bound. Both passes stream two contiguous int32 spans — exactly the shape
/// the vectorizer wants — and produce the same counts the fold-in
/// formulation would (a bound's count is the number of terminals equal to
/// the final bound, however it was reached).
inline Box scan_box(const std::int32_t* xs, const std::int32_t* ys,
                    std::size_t n, double q) {
  std::int32_t xmin = xs[0], xmax = xs[0], ymin = ys[0], ymax = ys[0];
  for (std::size_t i = 1; i < n; ++i) {
    xmin = std::min(xmin, xs[i]);
    xmax = std::max(xmax, xs[i]);
    ymin = std::min(ymin, ys[i]);
    ymax = std::max(ymax, ys[i]);
  }
  std::int32_t nxmin = 0, nxmax = 0, nymin = 0, nymax = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nxmin += xs[i] == xmin ? 1 : 0;
    nxmax += xs[i] == xmax ? 1 : 0;
    nymin += ys[i] == ymin ? 1 : 0;
    nymax += ys[i] == ymax ? 1 : 0;
  }
  Box b{xmin, xmax, ymin, ymax, nxmin, nxmax, nymin, nymax, 0.0};
  b.cost = q * ((xmax - xmin) + (ymax - ymin));
  return b;
}

/// Per-evaluation scratch: the net -> affected-slot dedup epochs plus the
/// gather buffers the scan kernel reads. One per participant, so
/// speculative evaluations can run concurrently.
struct EvalScratch {
  // 64-bit epochs: a wrapped stamp would silently alias a stale net_slot
  // entry, and a long anneal on one scratch can plausibly exceed 2^32
  // evaluations.
  std::vector<std::uint64_t> net_epoch;
  std::vector<std::uint32_t> net_slot;   ///< net -> index in the eval's affected list
  std::vector<std::uint8_t> dirty;       ///< parallel to affected: needs rescan
  std::vector<std::int32_t> tx, ty;      ///< gathered terminal coords (scan kernel)
  std::uint64_t epoch = 0;

  void init(int num_nets) {
    net_epoch.assign(static_cast<std::size_t>(num_nets), 0);
    net_slot.assign(static_cast<std::size_t>(num_nets), 0);
    epoch = 0;
  }
};

/// One evaluated proposal: the read set (from/to sites + affected CSR net
/// rows), the would-be writes (new boxes, moved blocks) and the cost delta.
/// Everything commit() needs, nothing shared — a slot's MoveEval can be
/// produced speculatively on any thread and committed (or discarded) later.
struct MoveEval {
  struct Moved {
    BlockId block;
    Point from, to;
  };
  int li = -1;         ///< LUT instance moved
  int occupant = -1;   ///< LUT instance swapped out of `to` (-1: free site)
  Point from, to;      ///< `from` as read at evaluation time
  double delta = 0.0;
  Moved moved[2];
  int n_moved = 0;
  std::vector<NetId> affected;
  std::vector<Box> new_boxes;
};

/// Incremental-cost annealing state.
///
/// evaluate() is const and side-effect-free outside its scratch/out
/// arguments, so a batch of proposals can be evaluated concurrently against
/// the frozen shared state; commit() applies one evaluation. The
/// batch-dirty epochs (begin_batch / mark_batch_dirty / batch_clean)
/// implement the validation step: a speculative result is reusable exactly
/// when no earlier commit of the same batch touched its read set.
class AnnealState {
 public:
  AnnealState(const Netlist& nl, const PackedDesign& pd, Placement& pl,
              bool incremental)
      : nl_(nl), pd_(pd), pl_(pl), incremental_(incremental) {
    ptx_.assign(static_cast<std::size_t>(nl.num_blocks()), 0);
    pty_.assign(static_cast<std::size_t>(nl.num_blocks()), 0);
    for (int i = 0; i < pd.num_luts(); ++i) {
      set_pos(pd.luts[static_cast<std::size_t>(i)],
              pl.lut_loc[static_cast<std::size_t>(i)]);
    }
    for (int i = 0; i < pd.num_ios(); ++i) {
      set_pos(pd.ios[static_cast<std::size_t>(i)],
              pl.io_point(pl.io_loc[static_cast<std::size_t>(i)]));
    }

    // block -> (net, terminal multiplicity) in CSR form. The multiplicity
    // matters: a block appearing as driver and sink (or on several sink
    // pins) of one net contributes that many terminals to its box.
    {
      std::vector<NetId> mark(static_cast<std::size_t>(nl.num_blocks()),
                              kNoNet);
      std::vector<std::int32_t> mult(static_cast<std::size_t>(nl.num_blocks()),
                                     0);
      CsrBuilder<NetRef> builder(static_cast<std::size_t>(nl.num_blocks()));
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        auto touch = [&](BlockId b) {
          if (mark[static_cast<std::size_t>(b)] != n) {
            mark[static_cast<std::size_t>(b)] = n;
            builder.count(static_cast<std::size_t>(b));
          }
        };
        touch(net.driver);
        for (const Net::Sink& s : net.sinks) touch(s.block);
      }
      builder.prepare();
      mark.assign(mark.size(), kNoNet);
      std::vector<BlockId> touched;
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        touched.clear();
        auto touch = [&](BlockId b) {
          const auto sb = static_cast<std::size_t>(b);
          if (mark[sb] != n) {
            mark[sb] = n;
            mult[sb] = 0;
            touched.push_back(b);
          }
          ++mult[sb];
        };
        touch(net.driver);
        for (const Net::Sink& s : net.sinks) touch(s.block);
        for (BlockId b : touched) {
          builder.add(static_cast<std::size_t>(b),
                      {n, mult[static_cast<std::size_t>(b)]});
        }
      }
      nets_of_block_ = std::move(builder).build();
    }

    // net -> terminal block list (driver first, then every sink occurrence)
    // in CSR form: the scan kernel's gather source. Empty-sink nets get an
    // empty row and a zero box.
    {
      CsrBuilder<BlockId> builder(static_cast<std::size_t>(nl.num_nets()));
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        for (std::size_t k = 0; k < net.sinks.size() + 1; ++k) {
          builder.count(static_cast<std::size_t>(n));
        }
      }
      builder.prepare();
      for (NetId n = 0; n < nl.num_nets(); ++n) {
        const Net& net = nl.net(n);
        if (net.sinks.empty()) continue;
        builder.add(static_cast<std::size_t>(n), net.driver);
        for (const Net::Sink& s : net.sinks) {
          builder.add(static_cast<std::size_t>(n), s.block);
        }
      }
      net_terms_ = std::move(builder).build();
    }

    q_.resize(static_cast<std::size_t>(nl.num_nets()));
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      q_[static_cast<std::size_t>(n)] =
          crossing_factor(static_cast<int>(nl.net(n).sinks.size()) + 1);
    }
    boxes_.assign(static_cast<std::size_t>(nl.num_nets()));
    total_cost_ = 0.0;
    std::vector<std::int32_t> tx, ty;
    for (NetId n = 0; n < nl.num_nets(); ++n) {
      const auto sn = static_cast<std::size_t>(n);
      const std::size_t cnt = gather(n, tx, ty);
      if (cnt == 0) continue;  // empty-sink net: zero box from assign()
      boxes_.store(sn, scan_box(tx.data(), ty.data(), cnt, q_[sn]));
      total_cost_ += boxes_.cost[sn];
    }
    site_of_.assign(
        static_cast<std::size_t>(pl.grid_w) * static_cast<std::size_t>(pl.grid_h),
        -1);
    for (int i = 0; i < pd.num_luts(); ++i) {
      const Point p = pl.lut_loc[static_cast<std::size_t>(i)];
      site_of_[site_index(p)] = i;
    }
    net_dirty_epoch_.assign(static_cast<std::size_t>(nl.num_nets()), 0);
    site_dirty_epoch_.assign(site_of_.size(), 0);
  }

  double total_cost() const { return total_cost_; }
  int num_nets() const { return nl_.num_nets(); }

  /// From-scratch cost over all non-empty nets via the scan kernel — the
  /// reference the incremental bookkeeping is measured against.
  double fresh_total_cost() const {
    double fresh = 0.0;
    std::vector<std::int32_t> tx, ty;
    for (NetId n = 0; n < nl_.num_nets(); ++n) {
      const std::size_t cnt = gather(n, tx, ty);
      if (cnt == 0) continue;
      fresh +=
          scan_box(tx.data(), ty.data(), cnt, q_[static_cast<std::size_t>(n)])
              .cost;
    }
    return fresh;
  }

  /// Per-net from-scratch costs (0.0 for empty-sink nets); the kernel
  /// cross-check harness compares these against an independent reference.
  void fresh_costs(std::vector<double>& out) const {
    out.assign(static_cast<std::size_t>(nl_.num_nets()), 0.0);
    std::vector<std::int32_t> tx, ty;
    for (NetId n = 0; n < nl_.num_nets(); ++n) {
      const std::size_t cnt = gather(n, tx, ty);
      if (cnt == 0) continue;
      out[static_cast<std::size_t>(n)] =
          scan_box(tx.data(), ty.data(), cnt, q_[static_cast<std::size_t>(n)])
              .cost;
    }
  }

  /// |accumulated cost - from-scratch recomputation| over all nets; bounds
  /// the drift of thousands of incremental += delta updates.
  double cost_drift() const {
    return std::abs(fresh_total_cost() - total_cost_);
  }

  Point lut_loc(int li) const {
    return pl_.lut_loc[static_cast<std::size_t>(li)];
  }

  /// Evaluates moving LUT instance `li` to `to` (swapping with any
  /// occupant) against the current shared state, without mutating it. Safe
  /// to call concurrently with other evaluate() calls (distinct scratch /
  /// out), NOT concurrently with commit().
  void evaluate(int li, Point to, EvalScratch& s, MoveEval& out) const {
    out.li = li;
    out.to = to;
    out.from = pl_.lut_loc[static_cast<std::size_t>(li)];
    out.occupant = site_of_[site_index(to)];
    out.n_moved = 0;
    out.moved[out.n_moved++] = {pd_.luts[static_cast<std::size_t>(li)],
                                out.from, to};
    if (out.occupant >= 0) {
      // occupant == li only for the degenerate to == from proposal, where
      // both overlay entries carry the same (unchanged) position.
      out.moved[out.n_moved++] = {
          pd_.luts[static_cast<std::size_t>(out.occupant)], to, out.from};
    }

    ++s.epoch;
    out.affected.clear();
    out.new_boxes.clear();
    s.dirty.clear();
    for (int i = 0; i < out.n_moved; ++i) {
      const MoveEval::Moved& mv = out.moved[i];
      for (const NetRef& ref :
           nets_of_block_.row(static_cast<std::size_t>(mv.block))) {
        const auto sn = static_cast<std::size_t>(ref.net);
        std::size_t slot;
        if (s.net_epoch[sn] != s.epoch) {
          s.net_epoch[sn] = s.epoch;
          slot = out.affected.size();
          s.net_slot[sn] = static_cast<std::uint32_t>(slot);
          out.affected.push_back(ref.net);
          out.new_boxes.push_back(boxes_.load(sn));
          // In full-recompute mode every affected box is rescanned.
          s.dirty.push_back(incremental_ ? 0 : 1);
        } else {
          // Swap-aware dedup: a net touching both swapped blocks gets one
          // affected slot, its box updated once per moved terminal.
          slot = s.net_slot[sn];
        }
        if (s.dirty[slot] != 0) continue;
        Box& nb = out.new_boxes[slot];
        for (std::int32_t k = 0; k < ref.mult; ++k) {
          if (!move_point(nb, mv.from, mv.to)) {
            s.dirty[slot] = 1;  // moved off a shrinking edge: rescan below
            break;
          }
        }
      }
    }
    double delta = 0.0;
    for (std::size_t k = 0; k < out.affected.size(); ++k) {
      const auto sn = static_cast<std::size_t>(out.affected[k]);
      if (s.dirty[k] != 0) {
        const std::size_t cnt = gather_moved(out.affected[k], out, s.tx, s.ty);
        out.new_boxes[k] = scan_box(s.tx.data(), s.ty.data(), cnt, q_[sn]);
      } else {
        Box& nb = out.new_boxes[k];
        nb.cost = q_[sn] * ((nb.xmax - nb.xmin) + (nb.ymax - nb.ymin));
      }
      delta += out.new_boxes[k].cost - boxes_.cost[sn];
    }
    out.delta = delta;
  }

  /// Applies an evaluation. Single-threaded (the commit phase is serial,
  /// in canonical slot order).
  void commit(const MoveEval& ev) {
    for (std::size_t k = 0; k < ev.affected.size(); ++k) {
      boxes_.store(static_cast<std::size_t>(ev.affected[k]), ev.new_boxes[k]);
    }
    total_cost_ += ev.delta;
    for (int i = 0; i < ev.n_moved; ++i) {
      set_pos(ev.moved[i].block, ev.moved[i].to);
    }
    pl_.lut_loc[static_cast<std::size_t>(ev.li)] = ev.to;
    site_of_[site_index(ev.to)] = ev.li;
    if (ev.occupant >= 0) {
      if (ev.occupant != ev.li) {
        pl_.lut_loc[static_cast<std::size_t>(ev.occupant)] = ev.from;
      }
      site_of_[site_index(ev.from)] = ev.occupant;
    } else {
      site_of_[site_index(ev.from)] = -1;
    }
  }

  /// Starts a new validation window: commits recorded from here on
  /// invalidate later speculative results that read what they wrote.
  void begin_batch() { ++batch_epoch_; }

  /// True when nothing the evaluation read — its two sites or any affected
  /// net row — has been committed since begin_batch(). A clean speculative
  /// result is bit-identical to re-evaluating now, so it can be committed
  /// as-is; a dirty one is conservatively re-evaluated (a false conflict
  /// costs work, never determinism).
  bool batch_clean(const MoveEval& ev) const {
    if (site_dirty_epoch_[site_index(ev.from)] == batch_epoch_) return false;
    if (site_dirty_epoch_[site_index(ev.to)] == batch_epoch_) return false;
    for (const NetId n : ev.affected) {
      if (net_dirty_epoch_[static_cast<std::size_t>(n)] == batch_epoch_) {
        return false;
      }
    }
    return true;
  }

  /// Records a committed evaluation's write set (its sites and every
  /// affected net row; a moved terminal's nets are always all affected, so
  /// later rescans are covered too).
  void mark_batch_dirty(const MoveEval& ev) {
    site_dirty_epoch_[site_index(ev.from)] = batch_epoch_;
    site_dirty_epoch_[site_index(ev.to)] = batch_epoch_;
    for (const NetId n : ev.affected) {
      net_dirty_epoch_[static_cast<std::size_t>(n)] = batch_epoch_;
    }
  }

 private:
  struct NetRef {
    NetId net;
    std::int32_t mult;  ///< terminals of this net on this block
  };

  std::size_t site_index(Point p) const {
    return static_cast<std::size_t>(p.y) * pl_.grid_w + p.x;
  }

  void set_pos(BlockId b, Point p) {
    ptx_[static_cast<std::size_t>(b)] = p.x;
    pty_[static_cast<std::size_t>(b)] = p.y;
  }

  /// Gathers net `n`'s terminal coordinates into contiguous spans for the
  /// scan kernel. Returns the terminal count (0 for empty-sink nets).
  std::size_t gather(NetId n, std::vector<std::int32_t>& tx,
                     std::vector<std::int32_t>& ty) const {
    const auto row = net_terms_.row(static_cast<std::size_t>(n));
    tx.resize(row.size());
    ty.resize(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      const auto sb = static_cast<std::size_t>(row[i]);
      tx[i] = ptx_[sb];
      ty[i] = pty_[sb];
    }
    return row.size();
  }

  /// Gather under the evaluation's move overlay: the would-be position of
  /// the (at most two) moved blocks, the committed position of everything
  /// else. Select-based — no per-terminal branch ladder.
  std::size_t gather_moved(NetId n, const MoveEval& ev,
                           std::vector<std::int32_t>& tx,
                           std::vector<std::int32_t>& ty) const {
    const auto row = net_terms_.row(static_cast<std::size_t>(n));
    tx.resize(row.size());
    ty.resize(row.size());
    const BlockId b0 = ev.moved[0].block;
    const BlockId b1 = ev.n_moved > 1 ? ev.moved[1].block : BlockId{-1};
    const Point p0 = ev.moved[0].to;
    const Point p1 = ev.n_moved > 1 ? ev.moved[1].to : Point{};
    for (std::size_t i = 0; i < row.size(); ++i) {
      const BlockId b = row[i];
      std::int32_t x = ptx_[static_cast<std::size_t>(b)];
      std::int32_t y = pty_[static_cast<std::size_t>(b)];
      if (b == b0) {
        x = p0.x;
        y = p0.y;
      }
      if (b == b1) {
        x = p1.x;
        y = p1.y;
      }
      tx[i] = x;
      ty[i] = y;
    }
    return row.size();
  }

  const Netlist& nl_;
  const PackedDesign& pd_;
  Placement& pl_;
  const bool incremental_;
  // Block positions, SoA (one contiguous int32 stride per axis).
  std::vector<std::int32_t> ptx_, pty_;
  Csr<NetRef> nets_of_block_;
  Csr<BlockId> net_terms_;  ///< net -> terminal blocks (gather source)
  std::vector<double> q_;  ///< per-net crossing factor (terminal count is static)
  NetBoxStore boxes_;
  std::vector<int> site_of_;
  // Batch validation epochs: which nets / sites were written by a commit
  // of the current speculation batch.
  std::vector<std::uint64_t> net_dirty_epoch_;
  std::vector<std::uint64_t> site_dirty_epoch_;
  std::uint64_t batch_epoch_ = 0;
  double total_cost_ = 0.0;
};

/// One proposal slot, drawn serially from the master RNG at batch start.
/// Exactly four draws per slot (instance, two offsets, acceptance uniform)
/// whether or not the slot is degenerate, so the RNG stream is a pure
/// function of the seed and the schedule — independent of thread count and
/// of accept/reject outcomes. The acceptance uniform is drawn as raw bits
/// (one next_u64, the same single state advance next_double performs) and
/// converted only if the accept test actually needs it.
struct Slot {
  int li = 0;
  Point to;
  std::uint64_t ubits = 0;  ///< pre-drawn acceptance uniform, raw bits
  bool skip = false;        ///< degenerate to == from at generation time
};

/// Bits -> uniform in [0,1): the exact mapping Rng::next_double uses, so a
/// lazily-converted Slot::ubits reproduces the eagerly-drawn double.
inline double slot_u(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Assigns each I/O to the free perimeter slot nearest the centroid of the
/// logic it connects to.
void assign_ios(const Netlist& nl, const PackedDesign& pd, Placement& pl,
                int io_per_tile) {
  const int gw = pl.grid_w, gh = pl.grid_h;
  // Capacity used per (side, tile).
  std::vector<std::vector<int>> used(4);
  used[0].assign(static_cast<std::size_t>(gh), 0);  // west
  used[1].assign(static_cast<std::size_t>(gh), 0);  // east
  used[2].assign(static_cast<std::size_t>(gw), 0);  // north
  used[3].assign(static_cast<std::size_t>(gw), 0);  // south

  std::vector<Point> lut_pt(static_cast<std::size_t>(nl.num_blocks()));
  for (int i = 0; i < pd.num_luts(); ++i) {
    lut_pt[static_cast<std::size_t>(pd.luts[i])] =
        pl.lut_loc[static_cast<std::size_t>(i)];
  }

  for (int i = 0; i < pd.num_ios(); ++i) {
    const BlockId bi = pd.ios[i];
    const Block& b = nl.block(bi);
    // Centroid of connected LUT terminals.
    double cx = gw / 2.0, cy = gh / 2.0;
    int cnt = 0;
    double sx = 0, sy = 0;
    auto add_terminal = [&](BlockId other) {
      if (nl.block(other).type == BlockType::kLut) {
        sx += lut_pt[static_cast<std::size_t>(other)].x;
        sy += lut_pt[static_cast<std::size_t>(other)].y;
        ++cnt;
      }
    };
    if (b.type == BlockType::kInput) {
      for (const Net::Sink& s : nl.net(b.output).sinks) add_terminal(s.block);
    } else {
      add_terminal(nl.net(b.inputs[0]).driver);
    }
    if (cnt > 0) {
      cx = sx / cnt;
      cy = sy / cnt;
    }
    // Scan perimeter positions for the nearest one with capacity.
    IoSlot best{};
    double best_d = 1e30;
    auto consider = [&](Side side, int tile, Point at) {
      const auto s = static_cast<std::size_t>(side);
      if (used[s][static_cast<std::size_t>(tile)] >= io_per_tile) return;
      const double d =
          std::abs(at.x - cx) + std::abs(at.y - cy) +
          0.01 * used[s][static_cast<std::size_t>(tile)];
      if (d < best_d) {
        best_d = d;
        best = {side, tile, used[s][static_cast<std::size_t>(tile)]};
      }
    };
    for (int t = 0; t < gh; ++t) {
      consider(Side::kWest, t, {0, t});
      consider(Side::kEast, t, {gw - 1, t});
    }
    for (int t = 0; t < gw; ++t) {
      consider(Side::kNorth, t, {t, gh - 1});
      consider(Side::kSouth, t, {t, 0});
    }
    if (best_d >= 1e30) {
      throw std::invalid_argument("place: not enough perimeter I/O capacity");
    }
    pl.io_loc[static_cast<std::size_t>(i)] = best;
    ++used[static_cast<std::size_t>(best.side)][static_cast<std::size_t>(best.tile)];
  }
}

/// Pre-SoA AoS bounding-box formulation, retained verbatim as the
/// cross-check oracle for bench_place_kernels: an independent code path
/// (branchy fold-in, struct-of-everything per net) that must produce
/// bit-identical per-net costs.
namespace reference {

struct RefBox {
  int minx, maxx, miny, maxy;
  int nmin_x, nmax_x, nmin_y, nmax_y;
  double cost;
};

void add_point(RefBox& nb, Point q) {
  if (q.x < nb.minx) {
    nb.minx = q.x;
    nb.nmin_x = 1;
  } else if (q.x == nb.minx) {
    ++nb.nmin_x;
  }
  if (q.x > nb.maxx) {
    nb.maxx = q.x;
    nb.nmax_x = 1;
  } else if (q.x == nb.maxx) {
    ++nb.nmax_x;
  }
  if (q.y < nb.miny) {
    nb.miny = q.y;
    nb.nmin_y = 1;
  } else if (q.y == nb.miny) {
    ++nb.nmin_y;
  }
  if (q.y > nb.maxy) {
    nb.maxy = q.y;
    nb.nmax_y = 1;
  } else if (q.y == nb.maxy) {
    ++nb.nmax_y;
  }
}

/// Per-net costs of `pl` via the AoS fold (driver first, then sinks).
void sweep_costs(const Netlist& nl, const PackedDesign& pd,
                 const Placement& pl, std::vector<double>& out) {
  std::vector<Point> pt(static_cast<std::size_t>(nl.num_blocks()), Point{});
  for (int i = 0; i < pd.num_luts(); ++i) {
    pt[static_cast<std::size_t>(pd.luts[i])] =
        pl.lut_loc[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < pd.num_ios(); ++i) {
    pt[static_cast<std::size_t>(pd.ios[i])] =
        pl.io_point(pl.io_loc[static_cast<std::size_t>(i)]);
  }
  out.assign(static_cast<std::size_t>(nl.num_nets()), 0.0);
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.sinks.empty()) continue;
    const Point p = pt[static_cast<std::size_t>(net.driver)];
    RefBox nb{p.x, p.x, p.y, p.y, 1, 1, 1, 1, 0.0};
    for (const Net::Sink& s : net.sinks) {
      add_point(nb, pt[static_cast<std::size_t>(s.block)]);
    }
    out[static_cast<std::size_t>(n)] =
        crossing_factor(static_cast<int>(net.sinks.size()) + 1) *
        ((nb.maxx - nb.minx) + (nb.maxy - nb.miny));
  }
}

}  // namespace reference

}  // namespace

PlaceKernelReport bench_place_kernels(const Netlist& nl,
                                      const PackedDesign& pd,
                                      const Placement& pl, long long sweeps) {
  PlaceKernelReport rep;
  rep.nets = nl.num_nets();
  rep.sweeps = std::max<long long>(1, sweeps);

  Placement scratch_pl = pl;  // AnnealState takes the placement by reference
  AnnealState state(nl, pd, scratch_pl, /*incremental=*/true);

  std::vector<double> soa_costs, ref_costs;
  const std::uint64_t t_soa = telem::now_ns();
  for (long long s = 0; s < rep.sweeps; ++s) {
    state.fresh_costs(soa_costs);
  }
  rep.soa_seconds = telem::seconds_since(t_soa);

  const std::uint64_t t_ref = telem::now_ns();
  for (long long s = 0; s < rep.sweeps; ++s) {
    reference::sweep_costs(nl, pd, pl, ref_costs);
  }
  rep.ref_seconds = telem::seconds_since(t_ref);

  rep.identical = soa_costs.size() == ref_costs.size();
  rep.total_cost = 0.0;
  for (std::size_t n = 0; rep.identical && n < soa_costs.size(); ++n) {
    if (soa_costs[n] != ref_costs[n]) rep.identical = false;
  }
  for (const double c : soa_costs) rep.total_cost += c;
  return rep;
}

Placement place_design(const Netlist& nl, const PackedDesign& pd,
                       const ArchSpec& spec, int grid_w, int grid_h,
                       const PlaceOptions& opts, PlaceStats* stats) {
  if (pd.num_luts() > grid_w * grid_h) {
    throw std::invalid_argument("place: design does not fit the grid");
  }
  const int io_per_tile =
      opts.io_per_tile > 0 ? opts.io_per_tile : std::max(1, spec.chan_width / 2);
  if (pd.num_ios() > 2 * (grid_w + grid_h) * io_per_tile) {
    throw std::invalid_argument("place: too many I/Os for the perimeter");
  }

  Rng rng(opts.seed == 0 ? 1 : opts.seed);  // 0 = unset, see PlaceOptions
  Placement pl;
  pl.grid_w = grid_w;
  pl.grid_h = grid_h;

  // Initial placement: LUTs on a random permutation of tiles.
  std::vector<int> sites(static_cast<std::size_t>(grid_w) * grid_h);
  for (std::size_t i = 0; i < sites.size(); ++i) sites[i] = static_cast<int>(i);
  rng.shuffle(sites);
  pl.lut_loc.resize(static_cast<std::size_t>(pd.num_luts()));
  for (int i = 0; i < pd.num_luts(); ++i) {
    const int s = sites[static_cast<std::size_t>(i)];
    pl.lut_loc[static_cast<std::size_t>(i)] = {s % grid_w, s / grid_w};
  }
  // Initial I/O: centroid-greedy against the random placement; refined after
  // annealing.
  pl.io_loc.resize(static_cast<std::size_t>(pd.num_ios()));
  assign_ios(nl, pd, pl, io_per_tile);

  AnnealState state(nl, pd, pl, opts.incremental_bbox);
  if (stats) stats->initial_cost = state.total_cost();

  const int threads = std::max(1, opts.threads);
  if (stats) stats->threads_used = threads;

  if (pd.num_luts() > 1) {
    const long long moves_per_t = std::max<long long>(
        32, static_cast<long long>(opts.effort *
                                   std::pow(pd.num_luts(), 4.0 / 3.0)));
    double rlim = std::max(grid_w, grid_h);

    EvalScratch main_scratch;
    main_scratch.init(nl.num_nets());
    MoveEval serial_eval;

    // Speculation machinery, built only when a pool is worth having.
    std::unique_ptr<ThreadPool> pool;
    std::vector<std::unique_ptr<EvalScratch>> spec_scratch;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      for (int i = 0; i < pool->size(); ++i) {
        spec_scratch.push_back(std::make_unique<EvalScratch>());
        spec_scratch.back()->init(nl.num_nets());
      }
    }
    std::vector<Slot> slots(pool ? static_cast<std::size_t>(kSpecBatch) : 0);
    std::vector<MoveEval> spec_evals(
        pool ? static_cast<std::size_t>(kSpecBatch) : 0);
    // Built once: constructing the type-erased std::function per batch
    // would heap-allocate inside the hot loop.
    const std::function<void(int, std::size_t)> spec_fn =
        [&](int rank, std::size_t i) {
          if (slots[i].skip) return;
          state.evaluate(slots[i].li, slots[i].to,
                         *spec_scratch[static_cast<std::size_t>(rank)],
                         spec_evals[i]);
        };

    // Serial fused-generation overlay: the batch-start position of every
    // LUT moved earlier in the current batch, epoch-stamped. Generation
    // fused into the evaluate/commit pass must still read the state frozen
    // at batch start — exactly what a separate pre-generation pass would
    // have seen — so committed movers park their old position here.
    std::vector<std::uint64_t> gen_epoch_of;
    std::vector<Point> gen_frozen;
    std::uint64_t gen_epoch = 0;
    if (!pool) {
      gen_epoch_of.assign(static_cast<std::size_t>(pd.num_luts()), 0);
      gen_frozen.assign(static_cast<std::size_t>(pd.num_luts()), Point{});
    }
    auto freeze = [&](int li, Point at) {
      const auto s = static_cast<std::size_t>(li);
      if (gen_epoch_of[s] != gen_epoch) {
        gen_epoch_of[s] = gen_epoch;
        gen_frozen[s] = at;
      }
    };

    // Initial temperature: 20 x the std-dev of deltas over a random-walk
    // sample (all moves accepted), per VPR.
    double sum = 0, sum2 = 0;
    const int samples = std::min(200, pd.num_luts() * 2);
    for (int s = 0; s < samples; ++s) {
      const int li = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(pd.num_luts())));
      const Point to{rng.next_int(0, grid_w - 1), rng.next_int(0, grid_h - 1)};
      state.evaluate(li, to, main_scratch, serial_eval);
      state.commit(serial_eval);
      sum += serial_eval.delta;
      sum2 += serial_eval.delta * serial_eval.delta;
    }
    const double var = sum2 / samples - (sum / samples) * (sum / samples);
    double t0 = 20.0 * std::sqrt(std::max(0.0, var));
    if (t0 <= 0) t0 = 1.0;

    // Anneal.
    double t = t0;
    long long tot_moves = 0, tot_accept = 0;
    long long spec_commits = 0, spec_rejected = 0;
    int n_temps = 0;
    long long batch_len = kMinSpecBatch;  // first temperature accepts ~all
    while (true) {
      telem::Span temp_span("place", "temperature");
      long long accepted = 0, evaluated = 0;
      long long batches = 0;
      // The bounded trip count stays moves_per_t slots; how many of them
      // are real proposals (and so feed the schedule) varies.
      telem::Span kernel_span("place", "batches");
      for (long long base = 0; base < moves_per_t; base += batch_len) {
        telem::counter_add("place.batches");
        ++batches;
        const auto bsz =
            static_cast<std::size_t>(std::min(batch_len, moves_per_t - base));
        const int r = std::max(1, static_cast<int>(rlim));
        if (pool) {
          // 1. Generate the batch serially from the master RNG, against
          //    the state frozen at batch start.
          for (std::size_t i = 0; i < bsz; ++i) {
            Slot& sl = slots[i];
            sl.li = static_cast<int>(
                rng.next_below(static_cast<std::uint64_t>(pd.num_luts())));
            const Point from = state.lut_loc(sl.li);
            sl.to = {std::clamp(from.x + rng.next_int(-r, r), 0, grid_w - 1),
                     std::clamp(from.y + rng.next_int(-r, r), 0, grid_h - 1)};
            sl.ubits = rng.next_u64();
            sl.skip = sl.to == from;
          }
          // 2. Speculate: evaluate every real slot against the frozen
          //    state, in per-thread scratch arenas.
          pool->parallel_for(bsz, spec_fn);
          state.begin_batch();
          // 3. Validate + commit in canonical slot order. A clean
          //    speculative delta is bit-identical to evaluating here, so
          //    the accept/reject decisions — and the committed state —
          //    match the serial path exactly.
          for (std::size_t i = 0; i < bsz; ++i) {
            const Slot& sl = slots[i];
            if (sl.skip) continue;  // not a proposal: free of charge
            const MoveEval* ev;
            if (state.batch_clean(spec_evals[i])) {
              ev = &spec_evals[i];
              ++spec_commits;
            } else {
              state.evaluate(sl.li, sl.to, main_scratch, serial_eval);
              ev = &serial_eval;
              ++spec_rejected;
            }
            // A slot can also become degenerate at commit time: an earlier
            // commit of this batch moved the drawn LUT onto the slot's
            // target. Same contract as generation-time skips — a self-swap
            // is not a proposal and must not feed the schedule. The
            // decision is thread-count-invariant: moving the LUT dirtied
            // its sites, so the parallel path always re-evaluated such a
            // slot against the same current state the serial path reads.
            if (ev->from == ev->to) continue;
            ++evaluated;
            const double d = ev->delta;
            if (d <= 0 || slot_u(sl.ubits) < std::exp(-d / t)) {
              state.commit(*ev);
              ++accepted;
              state.mark_batch_dirty(*ev);
            }
          }
        } else {
          // Serial path: generation fused into the evaluate/commit pass —
          // no slot buffer, no second walk over the batch. The RNG draws
          // are the same four per slot in the same order (evaluation draws
          // nothing), and the frozen overlay makes generation read exactly
          // the batch-start state the pre-generation pass saw, so the
          // trajectory is byte-identical to the parallel engine's.
          ++gen_epoch;
          for (std::size_t i = 0; i < bsz; ++i) {
            const int li = static_cast<int>(
                rng.next_below(static_cast<std::uint64_t>(pd.num_luts())));
            const auto sli = static_cast<std::size_t>(li);
            const Point from = gen_epoch_of[sli] == gen_epoch
                                   ? gen_frozen[sli]
                                   : state.lut_loc(li);
            const Point to{
                std::clamp(from.x + rng.next_int(-r, r), 0, grid_w - 1),
                std::clamp(from.y + rng.next_int(-r, r), 0, grid_h - 1)};
            const std::uint64_t ubits = rng.next_u64();
            if (to == from) continue;  // degenerate at generation time
            state.evaluate(li, to, main_scratch, serial_eval);
            // Degenerate at commit time: an earlier commit of this batch
            // moved the drawn LUT onto the slot's target.
            if (serial_eval.from == serial_eval.to) continue;
            ++evaluated;
            const double d = serial_eval.delta;
            if (d <= 0 || slot_u(ubits) < std::exp(-d / t)) {
              // Park the movers' batch-start positions before the commit
              // changes them (no-ops if already parked this batch).
              freeze(serial_eval.li, serial_eval.from);
              if (serial_eval.occupant >= 0 &&
                  serial_eval.occupant != serial_eval.li) {
                freeze(serial_eval.occupant, serial_eval.to);
              }
              state.commit(serial_eval);
              ++accepted;
            }
          }
        }
      }
      kernel_span.arg("batches", batches).arg("evaluated", evaluated);
      tot_moves += evaluated;
      tot_accept += accepted;
      ++n_temps;
      // Acceptance fraction over real proposals only: degenerate skipped
      // slots used to be counted here, deflating frac and mis-driving the
      // temperature and range-limit updates below.
      const double frac =
          evaluated > 0
              ? static_cast<double>(accepted) / static_cast<double>(evaluated)
              : 0.0;
      // VPR range-limit and temperature updates.
      rlim = std::clamp(rlim * (1.0 - 0.44 + frac), 1.0,
                        static_cast<double>(std::max(grid_w, grid_h)));
      double alpha;
      if (frac > 0.96) alpha = 0.5;
      else if (frac > 0.8) alpha = 0.9;
      else if (frac > 0.15 || rlim > 1.0) alpha = 0.95;
      else alpha = 0.8;
      t *= alpha;
      batch_len = batch_len_for(frac);
      temp_span.arg("t", t).arg("frac", frac).arg("moves", evaluated);
      telem::counter_add("place.temperatures");
      telem::counter_add("place.moves", evaluated);
      if (t < 0.005 * state.total_cost() / std::max(1, state.num_nets())) {
        break;
      }
    }
    if (stats) {
      stats->moves = tot_moves;
      stats->accepted = tot_accept;
      stats->temperatures = n_temps;
      stats->spec_commits = spec_commits;
      stats->spec_rejected = spec_rejected;
    }
  }

  // The drift bound is a property of the annealing bookkeeping, so it is
  // taken before the I/O refinement below invalidates the anneal state.
  if (stats) stats->cost_drift = state.cost_drift();

  // Final I/O refinement against the annealed logic placement.
  assign_ios(nl, pd, pl, io_per_tile);

  if (stats) {
    // Measured after the refinement (the anneal state still holds the
    // pre-refinement I/O slots): final_cost is the cost of the placement
    // actually returned, and equals placement_hpwl(nl, pd, result).
    stats->final_cost = placement_hpwl(nl, pd, pl);
  }
  pl.validate(pd);
  return pl;
}

}  // namespace vbs
