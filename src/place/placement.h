// Placement result: LUT instances on grid tiles, I/O instances on
// task-boundary track ports.
//
// The paper folds primary I/O into the fabric (Section II-A); here a placed
// I/O occupies one track port on the task perimeter — the dangling channel
// wire of an edge macro — which is where the router sources/sinks its net.
#pragma once

#include <vector>

#include "arch/macro_model.h"
#include "pack/pack.h"
#include "util/geometry.h"

namespace vbs {

/// One boundary track port on the task perimeter.
struct IoSlot {
  Side side = Side::kWest;
  int tile = 0;   ///< tile index along that side (y for W/E, x for N/S)
  int track = 0;  ///< channel track index
  friend bool operator==(const IoSlot&, const IoSlot&) = default;
};

struct Placement {
  int grid_w = 0;
  int grid_h = 0;
  /// Tile of each LUT instance (indexed like PackedDesign::luts).
  std::vector<Point> lut_loc;
  /// Perimeter slot of each I/O instance (indexed like PackedDesign::ios).
  std::vector<IoSlot> io_loc;

  /// Tile whose macro owns the slot's boundary wire, and the macro port id
  /// of that wire (west slots map to west ports of column-0 macros, etc.).
  Point io_tile(const IoSlot& slot) const;

  /// Grid point used for wirelength estimation of an I/O.
  Point io_point(const IoSlot& slot) const { return io_tile(slot); }

  /// Checks no two LUTs share a tile, all coordinates are in range, and no
  /// two I/Os share a slot. Throws std::logic_error on violation.
  void validate(const PackedDesign& pd) const;
};

/// Macro-model port id for an I/O slot (the dangling boundary wire).
int io_port_id(const IoSlot& slot, const ArchSpec& spec);

/// Half-perimeter wirelength of the whole placement, with VPR's fanout
/// crossing-count correction; the annealer minimizes exactly this.
double placement_hpwl(const Netlist& nl, const PackedDesign& pd,
                      const Placement& pl);

}  // namespace vbs
