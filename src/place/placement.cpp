#include "place/placement.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

namespace vbs {

namespace {

// VPR's crossing-count correction factors: HPWL underestimates multi-
// terminal net wirelength, so the cost of a net with k terminals is scaled
// by q(k) (Cheng, "RISA: accurate and efficient placement routability
// modeling").
double crossing_factor(int terminals) {
  static constexpr double kQ[] = {1.0,    1.0,    1.0,    1.0,    1.0828,
                                  1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
                                  1.4493, 1.4974, 1.5455, 1.5937, 1.6418,
                                  1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
                                  1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
                                  2.0743, 2.1061, 2.1379, 2.1698, 2.2016,
                                  2.2334};
  if (terminals < 4) return 1.0;
  if (terminals <= 30) return kQ[terminals];
  return 2.2334 + 0.02616 * (terminals - 30);
}

}  // namespace

Point Placement::io_tile(const IoSlot& slot) const {
  switch (slot.side) {
    case Side::kWest: return {0, slot.tile};
    case Side::kEast: return {grid_w - 1, slot.tile};
    case Side::kNorth: return {slot.tile, grid_h - 1};
    case Side::kSouth: return {slot.tile, 0};
  }
  return {};
}

int io_port_id(const IoSlot& slot, const ArchSpec& spec) {
  return static_cast<int>(slot.side) * spec.chan_width + slot.track;
}

void Placement::validate(const PackedDesign& pd) const {
  if (static_cast<int>(lut_loc.size()) != pd.num_luts() ||
      static_cast<int>(io_loc.size()) != pd.num_ios()) {
    throw std::logic_error("placement: instance count mismatch");
  }
  std::set<std::pair<int, int>> tiles;
  for (const Point& p : lut_loc) {
    if (p.x < 0 || p.x >= grid_w || p.y < 0 || p.y >= grid_h) {
      throw std::logic_error("placement: LUT out of grid");
    }
    if (!tiles.insert({p.x, p.y}).second) {
      throw std::logic_error("placement: two LUTs on one tile");
    }
  }
  std::set<std::tuple<int, int, int>> slots;
  for (const IoSlot& s : io_loc) {
    const int max_tile =
        (s.side == Side::kWest || s.side == Side::kEast) ? grid_h : grid_w;
    if (s.tile < 0 || s.tile >= max_tile) {
      throw std::logic_error("placement: I/O slot tile out of range");
    }
    if (!slots.insert({static_cast<int>(s.side), s.tile, s.track}).second) {
      throw std::logic_error("placement: two I/Os on one slot");
    }
  }
}

double placement_hpwl(const Netlist& nl, const PackedDesign& pd,
                      const Placement& pl) {
  // Instance lookup by netlist block.
  std::vector<int> lut_of_block(static_cast<std::size_t>(nl.num_blocks()), -1);
  std::vector<int> io_of_block(static_cast<std::size_t>(nl.num_blocks()), -1);
  for (int i = 0; i < pd.num_luts(); ++i) {
    lut_of_block[static_cast<std::size_t>(pd.luts[i])] = i;
  }
  for (int i = 0; i < pd.num_ios(); ++i) {
    io_of_block[static_cast<std::size_t>(pd.ios[i])] = i;
  }
  auto point_of = [&](BlockId b) -> Point {
    const int li = lut_of_block[static_cast<std::size_t>(b)];
    if (li >= 0) return pl.lut_loc[static_cast<std::size_t>(li)];
    return pl.io_point(pl.io_loc[static_cast<std::size_t>(
        io_of_block[static_cast<std::size_t>(b)])]);
  };

  double total = 0.0;
  for (NetId n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.sinks.empty()) continue;
    Point p = point_of(net.driver);
    int minx = p.x, maxx = p.x, miny = p.y, maxy = p.y;
    for (const Net::Sink& s : net.sinks) {
      const Point q = point_of(s.block);
      minx = std::min(minx, q.x);
      maxx = std::max(maxx, q.x);
      miny = std::min(miny, q.y);
      maxy = std::max(maxy, q.y);
    }
    total += crossing_factor(static_cast<int>(net.sinks.size()) + 1) *
             ((maxx - minx) + (maxy - miny));
  }
  return total;
}

}  // namespace vbs
