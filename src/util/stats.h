// Small statistics helpers for the experiment harnesses: running min/max,
// arithmetic and geometric means, ratio summaries.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace vbs {

/// Accumulates a sample set and reports the summary statistics the paper's
/// figures use (geometric mean with min/max error bars, average ratios).
class Summary {
 public:
  void add(double v);

  std::size_t count() const { return n_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;
  /// Geometric mean; samples must be > 0.
  double geomean() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double log_sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Geometric mean of a vector (empty -> 0).
double geomean(const std::vector<double>& xs);

/// Arithmetic mean of a vector (empty -> 0).
double mean(const std::vector<double>& xs);

/// p-th percentile of the sample, p in [0, 1], with linear interpolation
/// between the ranks straddling p * (n - 1) (the "type 7" / spreadsheet
/// definition). Rounding to the nearest rank instead would collapse p99
/// onto the max for any sample smaller than ~50 values. Sorts a copy;
/// empty -> 0.
double percentile(std::vector<double> xs, double p);

}  // namespace vbs
