#include "util/fault.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace vbs {

namespace {

// Distinct site tags keep the four decision streams independent: the same
// sequence number never correlates a decode failure with an alloc failure.
constexpr std::uint64_t kSiteDecode = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kSiteAlloc = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t kSiteCache = 0x94d049bb133111ebull;
constexpr std::uint64_t kSiteLatency = 0xd6e8feb86659fd93ull;
constexpr std::uint64_t kSiteWrite = 0xa0761d6478bd642full;
constexpr std::uint64_t kSiteSync = 0xe7037ed1a0b428dbull;
constexpr std::uint64_t kSiteRename = 0x8ebc6af09c88c6e3ull;
constexpr std::uint64_t kSiteNetShort = 0x589965cc75374cc3ull;
constexpr std::uint64_t kSiteNetEagain = 0x1d8e4e27c47d124full;
constexpr std::uint64_t kSiteNetDrop = 0xeb44accab455d165ull;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double parse_rate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) {
    throw std::invalid_argument("fault plan: bad rate for " + key + ": " +
                                value);
  }
  return v;
}

}  // namespace

double FaultPlan::roll(std::uint64_t site, std::uint64_t seq) const {
  const std::uint64_t h = splitmix64(splitmix64(cfg_.seed ^ site) ^ seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultPlan::decode_fails(std::uint64_t seq) const {
  return cfg_.decode_fail > 0.0 && roll(kSiteDecode, seq) < cfg_.decode_fail;
}

bool FaultPlan::alloc_fails(std::uint64_t seq) const {
  return cfg_.alloc_fail > 0.0 && roll(kSiteAlloc, seq) < cfg_.alloc_fail;
}

bool FaultPlan::cache_drops(std::uint64_t seq) const {
  return cfg_.cache_drop > 0.0 && roll(kSiteCache, seq) < cfg_.cache_drop;
}

long long FaultPlan::latency_spike_ticks(std::uint64_t seq) const {
  if (cfg_.latency_spike <= 0.0) return 0;
  return roll(kSiteLatency, seq) < cfg_.latency_spike ? cfg_.spike_ticks : 0;
}

bool FaultPlan::write_fails(std::uint64_t seq) const {
  return cfg_.write_fail > 0.0 && roll(kSiteWrite, seq) < cfg_.write_fail;
}

bool FaultPlan::sync_fails(std::uint64_t seq) const {
  return cfg_.sync_fail > 0.0 && roll(kSiteSync, seq) < cfg_.sync_fail;
}

bool FaultPlan::rename_fails(std::uint64_t seq) const {
  return cfg_.rename_fail > 0.0 && roll(kSiteRename, seq) < cfg_.rename_fail;
}

bool FaultPlan::net_short_read(std::uint64_t seq) const {
  return cfg_.net_short > 0.0 && roll(kSiteNetShort, seq) < cfg_.net_short;
}

bool FaultPlan::net_eagain(std::uint64_t seq) const {
  return cfg_.net_eagain > 0.0 && roll(kSiteNetEagain, seq) < cfg_.net_eagain;
}

bool FaultPlan::net_drops(std::uint64_t seq) const {
  return cfg_.net_drop > 0.0 && roll(kSiteNetDrop, seq) < cfg_.net_drop;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlanConfig cfg;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault plan: expected key=value: " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      char* end = nullptr;
      cfg.seed = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        throw std::invalid_argument("fault plan: bad seed: " + value);
      }
    } else if (key == "decode") {
      cfg.decode_fail = parse_rate(key, value);
    } else if (key == "alloc") {
      cfg.alloc_fail = parse_rate(key, value);
    } else if (key == "cache") {
      cfg.cache_drop = parse_rate(key, value);
    } else if (key == "latency") {
      // "P" or "PxT": probability, optionally x spike magnitude in ticks.
      const std::size_t x = value.find('x');
      cfg.latency_spike = parse_rate(key, value.substr(0, x));
      if (x != std::string::npos) {
        char* end = nullptr;
        cfg.spike_ticks = std::strtoll(value.c_str() + x + 1, &end, 10);
        if (end == nullptr || *end != '\0' || cfg.spike_ticks < 1) {
          throw std::invalid_argument("fault plan: bad spike ticks: " + value);
        }
      }
    } else if (key == "write") {
      cfg.write_fail = parse_rate(key, value);
    } else if (key == "sync") {
      cfg.sync_fail = parse_rate(key, value);
    } else if (key == "rename") {
      cfg.rename_fail = parse_rate(key, value);
    } else if (key == "net_short") {
      cfg.net_short = parse_rate(key, value);
    } else if (key == "net_eagain") {
      cfg.net_eagain = parse_rate(key, value);
    } else if (key == "net_drop") {
      cfg.net_drop = parse_rate(key, value);
    } else if (key == "crash") {
      char* end = nullptr;
      cfg.crash_at = std::strtoll(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || cfg.crash_at < 0) {
        throw std::invalid_argument("fault plan: bad crash op: " + value);
      }
    } else {
      throw std::invalid_argument("fault plan: unknown key: " + key);
    }
  }
  return FaultPlan(cfg);
}

std::string FaultPlan::spec() const {
  std::ostringstream out;
  out << "seed=" << cfg_.seed;
  if (cfg_.decode_fail > 0.0) out << ",decode=" << cfg_.decode_fail;
  if (cfg_.alloc_fail > 0.0) out << ",alloc=" << cfg_.alloc_fail;
  if (cfg_.cache_drop > 0.0) out << ",cache=" << cfg_.cache_drop;
  if (cfg_.latency_spike > 0.0) {
    out << ",latency=" << cfg_.latency_spike << "x" << cfg_.spike_ticks;
  }
  if (cfg_.write_fail > 0.0) out << ",write=" << cfg_.write_fail;
  if (cfg_.sync_fail > 0.0) out << ",sync=" << cfg_.sync_fail;
  if (cfg_.rename_fail > 0.0) out << ",rename=" << cfg_.rename_fail;
  if (cfg_.crash_at >= 0) out << ",crash=" << cfg_.crash_at;
  if (cfg_.net_short > 0.0) out << ",net_short=" << cfg_.net_short;
  if (cfg_.net_eagain > 0.0) out << ",net_eagain=" << cfg_.net_eagain;
  if (cfg_.net_drop > 0.0) out << ",net_drop=" << cfg_.net_drop;
  return out.str();
}

}  // namespace vbs
