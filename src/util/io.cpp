#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/error.h"
#include "util/telemetry.h"

namespace vbs {

namespace {

thread_local IoFaultInjector* g_io_faults = nullptr;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + ": " + path + ": " +
                           std::strerror(errno));
}

// Raw full write with EINTR/short-write retry; no injection.
void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("write failed", path);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

IoFaultInjector::WriteOutcome IoFaultInjector::on_write() {
  const long long op = next_op("write");
  WriteOutcome out{op, false, false};
  if (plan_ == nullptr) return out;
  out.crash = plan_->crashes_at(op);
  if (!out.crash) {
    out.torn = plan_->write_fails(static_cast<std::uint64_t>(op));
  }
  return out;
}

void IoFaultInjector::on_sync() {
  const long long op = next_op("sync");
  if (plan_ == nullptr) return;
  if (plan_->crashes_at(op)) throw CrashInjected{op, "sync"};
  if (plan_->sync_fails(static_cast<std::uint64_t>(op))) {
    throw VbsError(VbsErrc::kFaultInjected, "injected fsync failure");
  }
}

void IoFaultInjector::on_rename() {
  const long long op = next_op("rename");
  if (plan_ == nullptr) return;
  if (plan_->crashes_at(op)) throw CrashInjected{op, "rename"};
  if (plan_->rename_fails(static_cast<std::uint64_t>(op))) {
    throw VbsError(VbsErrc::kFaultInjected, "injected rename failure");
  }
}

void IoFaultInjector::on_remove() {
  const long long op = next_op("remove");
  if (plan_ != nullptr && plan_->crashes_at(op)) {
    throw CrashInjected{op, "remove"};
  }
}

long long IoFaultInjector::next_op(const char*) { return ops_++; }

IoFaultInjector* current_io_faults() { return g_io_faults; }

ScopedIoFaults::ScopedIoFaults(IoFaultInjector* inj) : prev_(g_io_faults) {
  g_io_faults = inj;
}

ScopedIoFaults::~ScopedIoFaults() { g_io_faults = prev_; }

void checked_write(int fd, const void* data, std::size_t n,
                   const std::string& path, IoFaultInjector* faults) {
  const char* bytes = static_cast<const char*>(data);
  telem::counter_add("io.write.ops");
  if (faults != nullptr) {
    const IoFaultInjector::WriteOutcome out = faults->on_write();
    if (out.crash || out.torn) {
      // Tear the write in half: the prefix IS durable (it hit the file),
      // the rest never happened — exactly what death mid-write leaves.
      write_all(fd, bytes, n / 2, path);
      telem::counter_add("io.write.bytes", static_cast<long long>(n / 2));
      if (out.crash) {
        telem::counter_add("io.fault.crash");
        throw CrashInjected{out.op, "write"};
      }
      telem::counter_add("io.fault.torn");
      throw VbsError(VbsErrc::kTornWrite, "injected short write: " + path);
    }
  }
  write_all(fd, bytes, n, path);
  telem::counter_add("io.write.bytes", static_cast<long long>(n));
}

void checked_sync(int fd, const std::string& path, IoFaultInjector* faults) {
  telem::counter_add("io.sync.ops");
  if (faults != nullptr) {
    try {
      faults->on_sync();
    } catch (const CrashInjected&) {
      telem::counter_add("io.fault.crash");
      throw;
    } catch (const VbsError&) {
      telem::counter_add("io.fault.sync_fail");
      throw;
    }
  }
  if (::fsync(fd) != 0) throw_errno("fsync failed", path);
}

void checked_rename(const std::string& from, const std::string& to,
                    IoFaultInjector* faults) {
  telem::counter_add("io.rename.ops");
  if (faults != nullptr) {
    try {
      faults->on_rename();
    } catch (const CrashInjected&) {
      telem::counter_add("io.fault.crash");
      throw;
    } catch (const VbsError&) {
      telem::counter_add("io.fault.rename_fail");
      throw;
    }
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    throw_errno("rename failed", from + " -> " + to);
  }
}

void checked_remove(const std::string& path, IoFaultInjector* faults) {
  telem::counter_add("io.remove.ops");
  if (faults != nullptr) {
    try {
      faults->on_remove();
    } catch (const CrashInjected&) {
      telem::counter_add("io.fault.crash");
      throw;
    }
  }
  std::remove(path.c_str());  // missing file is fine
}

void append_bytes(const std::string& path, const std::string& data,
                  IoFaultInjector* faults) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) throw_errno("cannot open for append", path);
  try {
    checked_write(fd, data.data(), data.size(), path, faults);
    checked_sync(fd, path, faults);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

AtomicFile::AtomicFile(const std::string& path, IoFaultInjector* faults)
    : path_(path),
      tmp_path_(path + ".tmp"),
      faults_(faults != nullptr ? faults : current_io_faults()) {
  fd_ = ::open(tmp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_errno("cannot open for writing", tmp_path_);
}

AtomicFile::~AtomicFile() {
  if (fd_ >= 0) ::close(fd_);
  // A simulated crash leaves the temp file behind, exactly as real process
  // death would: readers must tolerate (and may clean) orphaned *.tmp.
  if (!committed_ && !crashed_) std::remove(tmp_path_.c_str());
}

void AtomicFile::write(const void* data, std::size_t n) {
  try {
    checked_write(fd_, data, n, tmp_path_, faults_);
  } catch (const CrashInjected&) {
    crashed_ = true;
    throw;
  }
}

void AtomicFile::commit() {
  try {
    checked_sync(fd_, tmp_path_, faults_);
    ::close(fd_);
    fd_ = -1;
    checked_rename(tmp_path_, path_, faults_);
  } catch (const CrashInjected&) {
    crashed_ = true;
    throw;
  }
  committed_ = true;
}

}  // namespace vbs
