// Deterministic fault injection: a seeded FaultPlan threaded through the
// reconfiguration stack (ReconfigService, DecodedStreamCache,
// ReconfigController) injects decode failures, allocation failures, cache
// insertion drops and modeled latency spikes.
//
// Every decision is a pure function of (seed, site, sequence number) — a
// splitmix64-style hash compared against the configured rate — never of
// wall clock or thread schedule. Callers key each decision off a logical
// sequence number (a request id and attempt, or a serial per-site
// counter), so a fixed plan produces a byte-reproducible fault schedule at
// any thread count: the invariant tests/test_service.cpp replays at
// threads {1,2,8}.
//
// Plans parse from a compact spec string (tools expose it as --faults):
//
//   seed=7,decode=0.1,alloc=0.05,cache=0.02,latency=0.05x8
//
// where decode/alloc/cache are per-decision failure probabilities in
// [0,1] and latency is probability x spike-ticks. Keys may appear in any
// order; omitted keys default to 0 (off).
//
// The durability layer (util/io.h) adds four I/O sites: write/sync/rename
// are per-operation failure probabilities like the model sites above, and
// crash=N kills the process model at the Nth I/O operation (a global serial
// op count across all sites — see IoFaultInjector). crash is an exact
// sequence match, not a rate, so a sweep over N visits every site once:
//
//   seed=7,write=0.01,sync=0.01,rename=0.01,crash=42
//
// The network layer (src/net) adds three socket sites, keyed by a
// per-connection operation counter so a plan replays the same hostile
// schedule against the same connection regardless of poll order:
// net_short truncates a socket read/write to a handful of bytes,
// net_eagain turns the operation into a spurious would-block, and
// net_drop severs the connection mid-frame:
//
//   seed=7,net_short=0.2,net_eagain=0.1,net_drop=0.01
#pragma once

#include <cstdint>
#include <string>

namespace vbs {

struct FaultPlanConfig {
  std::uint64_t seed = 0;
  double decode_fail = 0.0;   ///< transient devirtualization failures
  double alloc_fail = 0.0;    ///< transient allocation failures
  double cache_drop = 0.0;    ///< cache insertions silently dropped
  double latency_spike = 0.0; ///< probability of a modeled latency spike
  long long spike_ticks = 8;  ///< spike magnitude in modeled ticks
  double write_fail = 0.0;    ///< short (torn) file writes
  double sync_fail = 0.0;     ///< fsync failures
  double rename_fail = 0.0;   ///< atomic-rename failures
  long long crash_at = -1;    ///< kill at this global I/O op (-1 = off)
  double net_short = 0.0;     ///< socket read/write truncated to a few bytes
  double net_eagain = 0.0;    ///< socket op turned into a spurious EAGAIN
  double net_drop = 0.0;      ///< connection severed mid-frame

  friend bool operator==(const FaultPlanConfig&,
                         const FaultPlanConfig&) = default;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultPlanConfig& cfg) : cfg_(cfg) {}

  /// Parses the spec-string format documented above. Throws
  /// std::invalid_argument on unknown keys or out-of-range rates.
  static FaultPlan parse(const std::string& spec);

  /// Round-trips parse(): the canonical spec of this plan.
  std::string spec() const;

  bool enabled() const {
    return cfg_.decode_fail > 0.0 || cfg_.alloc_fail > 0.0 ||
           cfg_.cache_drop > 0.0 || cfg_.latency_spike > 0.0 ||
           cfg_.write_fail > 0.0 || cfg_.sync_fail > 0.0 ||
           cfg_.rename_fail > 0.0 || cfg_.crash_at >= 0 ||
           cfg_.net_short > 0.0 || cfg_.net_eagain > 0.0 ||
           cfg_.net_drop > 0.0;
  }

  bool decode_fails(std::uint64_t seq) const;
  bool alloc_fails(std::uint64_t seq) const;
  bool cache_drops(std::uint64_t seq) const;
  /// 0 when no spike fires at `seq`, else cfg().spike_ticks.
  long long latency_spike_ticks(std::uint64_t seq) const;

  bool write_fails(std::uint64_t seq) const;
  bool sync_fails(std::uint64_t seq) const;
  bool rename_fails(std::uint64_t seq) const;

  /// Socket sites (src/net): callers key `seq` off a per-connection op
  /// counter mixed with the connection id, so the hostile schedule is a
  /// pure function of the plan and the connection — never of poll order.
  bool net_short_read(std::uint64_t seq) const;
  bool net_eagain(std::uint64_t seq) const;
  bool net_drops(std::uint64_t seq) const;
  /// True exactly when `op` equals crash_at (the Nth global I/O op).
  bool crashes_at(long long op) const {
    return cfg_.crash_at >= 0 && op == cfg_.crash_at;
  }

  const FaultPlanConfig& config() const { return cfg_; }

 private:
  /// Uniform [0,1) draw for (site, seq) under this plan's seed.
  double roll(std::uint64_t site, std::uint64_t seq) const;

  FaultPlanConfig cfg_;
};

}  // namespace vbs
