#include "util/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>

#include "util/json.h"

namespace vbs::telem {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<TelemetryClock*> g_clock{nullptr};

// Per-metric accumulation inside one shard. Counters and bucket tallies are
// integers (order-independent under merge); sum/min/max are per-shard doubles
// merged deterministically in snapshot().
struct HistogramShard {
  std::uint64_t counts[kHistBuckets] = {};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct Shard {
  std::mutex mu;
  std::uint64_t ordinal = 0;  // stable per-thread id for trace tids
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramShard> histograms;
  std::vector<TraceEvent> events;

  bool empty_unlocked() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           events.empty();
  }
};

// The registry singleton is leaked on purpose: thread_local shard handles
// unregister themselves during thread exit, which can outlive any
// destruction order a static Registry would get.
struct Registry {
  std::mutex mu;
  std::vector<Shard*> live;                        // registered, owned by TLS
  std::vector<std::unique_ptr<Shard>> retired;     // from exited threads
  std::uint64_t next_ordinal = 0;

  static Registry& get() {
    static Registry* r = new Registry;
    return *r;
  }
};

// TLS handle: registers a shard on first telemetry touch from this thread,
// moves it to the retired list (data intact) when the thread exits.
struct ShardHandle {
  Shard* shard = nullptr;

  Shard& acquire() {
    if (!shard) {
      auto owned = std::make_unique<Shard>();
      shard = owned.get();
      Registry& reg = Registry::get();
      std::lock_guard<std::mutex> lock(reg.mu);
      shard->ordinal = reg.next_ordinal++;
      reg.live.push_back(shard);
      owned.release();
    }
    return *shard;
  }

  ~ShardHandle() {
    if (!shard) return;
    Registry& reg = Registry::get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.erase(std::remove(reg.live.begin(), reg.live.end(), shard),
                   reg.live.end());
    reg.retired.emplace_back(shard);
  }
};

Shard& local_shard() {
  thread_local ShardHandle handle;
  return handle.acquire();
}

// Deterministic double reduction: identical per-shard contributions must
// produce identical sums regardless of shard registration order, so sort
// the partials (ties broken by bit pattern are irrelevant — equal doubles
// add equally) before accumulating.
double merge_sum(std::vector<double>& parts) {
  std::sort(parts.begin(), parts.end());
  double s = 0.0;
  for (const double p : parts) s += p;
  return s;
}

}  // namespace

// --- clock -------------------------------------------------------------------

void set_clock(TelemetryClock* clock) {
  g_clock.store(clock, std::memory_order_release);
}

std::uint64_t now_ns() {
  if (TelemetryClock* c = g_clock.load(std::memory_order_acquire)) {
    return c->now_ns();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedClock::ScopedClock(TelemetryClock* clock)
    : prev_(g_clock.exchange(clock, std::memory_order_acq_rel)) {}

ScopedClock::~ScopedClock() {
  g_clock.store(prev_, std::memory_order_release);
}

// --- enable / reset ----------------------------------------------------------

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable(bool on)
    : prev_(detail::g_enabled.exchange(on, std::memory_order_relaxed)) {}

ScopedEnable::~ScopedEnable() {
  detail::g_enabled.store(prev_, std::memory_order_relaxed);
}

void reset() {
  Registry& reg = Registry::get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (Shard* s : reg.live) {
    std::lock_guard<std::mutex> slock(s->mu);
    s->counters.clear();
    s->gauges.clear();
    s->histograms.clear();
    s->events.clear();
  }
  reg.retired.clear();
}

// --- metrics -----------------------------------------------------------------

int histogram_bucket(double v) {
  if (!(v > 0.0)) return 0;  // <= 0 and NaN
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  // frexp exponent e means v in [2^(e-1), 2^e), powers of two landing on
  // their inclusive lower edge — so bucket i covers [2^(i-32), 2^(i-31)),
  // matching the [floor(i), floor(i+1)) span percentile() interpolates.
  const int bucket = exp + 31;
  if (bucket < 1) return 1;
  if (bucket > kHistBuckets - 1) return kHistBuckets - 1;
  return bucket;
}

double histogram_bucket_floor(int i) {
  if (i <= 0) return 0.0;
  return std::ldexp(1.0, i - 32);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p <= 0.0) return min;
  if (p >= 1.0) return max;
  // Rank in [0, count-1], type-7 style, then walk buckets.
  const double rank = p * static_cast<double>(count - 1);
  std::uint64_t below = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(below + c)) {
      // Interpolate linearly across this bucket's span, clamped to the
      // observed min/max so tails stay honest.
      const double lo = std::max(histogram_bucket_floor(i), min);
      const double hi = std::min(
          i + 1 < kHistBuckets ? histogram_bucket_floor(i + 1) : max, max);
      const double frac =
          c > 1 ? (rank - static_cast<double>(below)) /
                      static_cast<double>(c - 1)
                : 0.5;
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    below += c;
  }
  return max;
}

void counter_add(const char* name, long long delta) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.counters[name] += delta;
}

void gauge_set(const char* name, double value) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  s.gauges[name] = value;
}

void histogram_record(const char* name, double value) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  HistogramShard& h = s.histograms[name];
  ++h.counts[histogram_bucket(value)];
  h.sum += value;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
}

MetricsSnapshot snapshot() {
  Registry& reg = Registry::get();
  std::lock_guard<std::mutex> lock(reg.mu);

  // Collect shard pointers; hold each shard lock only while copying.
  std::vector<const Shard*> shards;
  for (Shard* s : reg.live) shards.push_back(s);
  for (const auto& s : reg.retired) shards.push_back(s.get());

  MetricsSnapshot out;
  std::map<std::string, std::vector<double>> sum_parts;
  std::map<std::string, std::vector<double>> gauge_parts;
  for (const Shard* cs : shards) {
    Shard* s = const_cast<Shard*>(cs);
    std::lock_guard<std::mutex> slock(s->mu);
    for (const auto& [name, v] : s->counters) out.counters[name] += v;
    for (const auto& [name, v] : s->gauges) gauge_parts[name].push_back(v);
    for (const auto& [name, h] : s->histograms) {
      HistogramSnapshot& m = out.histograms[name];
      for (int i = 0; i < kHistBuckets; ++i) m.counts[i] += h.counts[i];
      if (h.count > 0) {
        if (m.count == 0 || h.min < m.min) m.min = h.min;
        if (m.count == 0 || h.max > m.max) m.max = h.max;
      }
      m.count += h.count;
      sum_parts[name].push_back(h.sum);
    }
  }
  for (auto& [name, parts] : sum_parts) {
    out.histograms[name].sum = merge_sum(parts);
  }
  for (auto& [name, parts] : gauge_parts) {
    out.gauges[name] = *std::max_element(parts.begin(), parts.end());
  }
  return out;
}

std::string MetricsSnapshot::to_json(int indent) const {
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  const std::string pad4(indent + 4, ' ');
  std::string out = "{\n";
  char buf[64];

  out += pad2 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf, "%lld", v);
    out += pad4 + "\"" + json_escape(name) + "\": " + buf;
  }
  out += counters.empty() ? "},\n" : "\n" + pad2 + "},\n";

  out += pad2 + "\"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out += pad4 + "\"" + json_escape(name) + "\": " + buf;
  }
  out += gauges.empty() ? "},\n" : "\n" + pad2 + "},\n";

  out += pad2 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad4 + "\"" + json_escape(name) + "\": {";
    std::snprintf(buf, sizeof buf, "\"count\": %llu",
                  static_cast<unsigned long long>(h.count));
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"sum\": %.9g", h.sum);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"min\": %.9g", h.min);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"max\": %.9g", h.max);
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"p50\": %.9g", h.percentile(0.50));
    out += buf;
    std::snprintf(buf, sizeof buf, ", \"p99\": %.9g", h.percentile(0.99));
    out += buf;
    out += "}";
  }
  out += histograms.empty() ? "}\n" : "\n" + pad2 + "}\n";

  out += pad + "}";
  return out;
}

// --- spans / trace events ----------------------------------------------------

void emit_complete(std::uint32_t pid, std::uint64_t tid, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, const char* category,
                   const char* name, std::vector<SpanArg> args) {
  if (!enabled()) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceEvent ev;
  ev.phase = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.category = category;
  ev.name = name;
  ev.args = std::move(args);
  s.events.push_back(std::move(ev));
}

std::vector<TraceEvent> take_trace() {
  Registry& reg = Registry::get();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<Shard*> shards;
  for (Shard* s : reg.live) shards.push_back(s);
  for (const auto& s : reg.retired) shards.push_back(s.get());
  std::sort(shards.begin(), shards.end(),
            [](const Shard* a, const Shard* b) {
              return a->ordinal < b->ordinal;
            });
  std::vector<TraceEvent> out;
  for (Shard* s : shards) {
    std::lock_guard<std::mutex> slock(s->mu);
    for (TraceEvent& ev : s->events) out.push_back(std::move(ev));
    s->events.clear();
  }
  return out;
}

Span::Span(const char* category, const char* name) {
  if (!enabled()) return;
  active_ = true;
  category_ = category;
  name_ = name;
  t0_ = now_ns();
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceEvent ev;
  ev.phase = 'B';
  ev.pid = kPidWall;
  ev.tid = s.ordinal;
  ev.ts_ns = t0_;
  ev.category = category;
  ev.name = name;
  s.events.push_back(std::move(ev));
}

Span::~Span() {
  if (!active_) return;
  Shard& s = local_shard();
  std::lock_guard<std::mutex> lock(s.mu);
  TraceEvent ev;
  ev.phase = 'E';
  ev.pid = kPidWall;
  ev.tid = s.ordinal;
  ev.ts_ns = std::max(now_ns(), t0_);
  ev.category = category_;
  ev.name = name_;
  ev.args = std::move(args_);
  s.events.push_back(std::move(ev));
}

Span& Span::arg(const char* key, long long v) {
  if (!active_) return *this;
  SpanArg a;
  a.key = key;
  a.type = SpanArg::Type::kInt;
  a.i = v;
  args_.push_back(std::move(a));
  return *this;
}

Span& Span::arg(const char* key, double v) {
  if (!active_) return *this;
  SpanArg a;
  a.key = key;
  a.type = SpanArg::Type::kDouble;
  a.d = v;
  args_.push_back(std::move(a));
  return *this;
}

Span& Span::arg(const char* key, const char* v) {
  if (!active_) return *this;
  SpanArg a;
  a.key = key;
  a.type = SpanArg::Type::kString;
  a.s = v;
  args_.push_back(std::move(a));
  return *this;
}

}  // namespace vbs::telem
