// Process-wide telemetry: a metrics registry (counters, gauges,
// fixed-bucket histograms), a span-based tracer, and the injectable clock
// every wall-time measurement in the repo goes through.
//
// Design rules, in the order they matter here:
//
//   observation-only   Telemetry never feeds back into any computation.
//                      Enabling it must leave every artifact, counter and
//                      fingerprint byte-identical at any thread count
//                      (tests/test_telemetry.cpp holds this as a hard
//                      invariant).
//   near-zero off      Every record/span entry point starts with a relaxed
//                      atomic load of the global enable flag and returns
//                      immediately when telemetry is off. No locks, no
//                      clock reads, no allocation on the disabled path.
//   sharded on         When enabled, each thread writes its own shard
//                      (per-shard mutex, uncontended in steady state);
//                      snapshot() merges shards at read time. Integer
//                      merges (counts, bucket tallies) are sums and so
//                      exactly order-independent; floating-point aggregates
//                      are merged smallest-first so the same per-thread
//                      contributions always produce the same bytes.
//   injectable time    now_ns() reads a process-wide TelemetryClock
//                      (default: std::chrono::steady_clock). Tests install
//                      a ManualClock and drive time by hand instead of
//                      sleeping or asserting `seconds >= 0`. Wall-clock
//                      values never enter fingerprints or artifacts.
//
// Span usage:
//
//   void Router::iteration() {
//     TELEM_SPAN("route", "iteration");   // B/E pair on this thread
//     ...
//   }
//
// or, when args are wanted:
//
//   telem::Span span("route", "iteration");
//   ...
//   span.arg("overused", overused);       // attached to the E event
//
// Spans record begin/end timestamps from the telemetry clock plus a small
// per-thread ordinal as the trace thread id. Events can also be emitted
// directly (emit_complete) with caller-chosen timestamps — the service
// uses this to lay out per-request latency phases on its *modeled tick*
// clock (trace_export.h explains the two timebases).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vbs::telem {

// --- the injectable clock ----------------------------------------------------

/// Source of wall-clock-like time for every telemetry measurement and for
/// all the `seconds` fields the engines report (StageReport, RouteIterStats,
/// McwResult, RequestResult...). Implementations must be callable from any
/// thread.
class TelemetryClock {
 public:
  virtual ~TelemetryClock() = default;
  virtual std::uint64_t now_ns() = 0;
};

/// Installs `clock` process-wide (nullptr restores the steady_clock
/// default). The caller keeps ownership and must outlive the installation;
/// tests pair this with a ScopedClock.
void set_clock(TelemetryClock* clock);

/// Nanoseconds from the installed clock.
std::uint64_t now_ns();

/// Seconds elapsed since a now_ns() sample.
inline double seconds_since(std::uint64_t t0_ns) {
  return static_cast<double>(now_ns() - t0_ns) * 1e-9;
}

/// A clock tests drive by hand: starts at 0 and only moves on advance().
class ManualClock : public TelemetryClock {
 public:
  std::uint64_t now_ns() override { return t_.load(std::memory_order_relaxed); }
  void advance_ns(std::uint64_t d) {
    t_.fetch_add(d, std::memory_order_relaxed);
  }
  void advance_seconds(double s) {
    advance_ns(static_cast<std::uint64_t>(s * 1e9));
  }

 private:
  std::atomic<std::uint64_t> t_{0};
};

/// RAII clock installation (restores the previous clock on destruction).
class ScopedClock {
 public:
  explicit ScopedClock(TelemetryClock* clock);
  ~ScopedClock();
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  TelemetryClock* prev_;
};

// --- enable / disable --------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when metrics and spans are being collected.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off process-wide. Turning it off does not drop
/// already-collected data (reset() does).
void set_enabled(bool on);

/// RAII enable (restores the previous state on destruction).
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

/// Drops all collected metrics and trace events (all shards, all threads).
void reset();

// --- metrics -----------------------------------------------------------------

/// Fixed power-of-two bucket layout shared by every histogram: bucket 0
/// holds values <= 0, bucket i (1..62) holds (2^(i-32), 2^(i-31)], bucket
/// 63 is the overflow. Covers ~2.3e-10 .. 2.1e9 — nanoseconds-as-seconds
/// through gigabytes — with no per-metric configuration, which is what
/// makes merging shards trivial and deterministic.
inline constexpr int kHistBuckets = 64;

/// Bucket index for a value (pure; shared by record and snapshot sides).
int histogram_bucket(double v);

/// Lower edge of bucket i (bucket 0 -> 0).
double histogram_bucket_floor(int i);

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::uint64_t counts[kHistBuckets] = {};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< exact (not bucketed); 0 when count == 0
  double max = 0.0;
  /// Approximate p-th percentile (p in [0,1]) by linear interpolation
  /// inside the straddling bucket — the fixed-bucket generalization of
  /// util/stats percentile(). Empty -> 0.
  double percentile(double p) const;
};

/// Merged, deterministic view of the whole registry.
struct MetricsSnapshot {
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;  ///< merged by max across shards
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// The "metrics" JSON object block the tools and benches embed:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","sum","min","max","p50","p99"}}}. `indent` is the number of
  /// leading spaces on the block's own lines.
  std::string to_json(int indent) const;
};

/// Adds `delta` to the named counter (no-op when disabled).
void counter_add(const char* name, long long delta = 1);

/// Sets the named gauge on this thread's shard (merged by max; no-op when
/// disabled).
void gauge_set(const char* name, double value);

/// Records one sample into the named histogram (no-op when disabled).
void histogram_record(const char* name, double value);

/// Merges every shard (live and retired) into one deterministic snapshot.
MetricsSnapshot snapshot();

// --- spans / trace events ----------------------------------------------------

/// Trace timebases (the `pid` of an exported Chrome trace event).
inline constexpr std::uint32_t kPidWall = 1;   ///< telemetry-clock ns
inline constexpr std::uint32_t kPidTicks = 2;  ///< modeled ticks (1 tick = 1us)

struct SpanArg {
  enum class Type { kInt, kDouble, kString };
  std::string key;
  Type type = Type::kInt;
  long long i = 0;
  double d = 0.0;
  std::string s;
};

/// One trace event. phase 'B'/'E' are duration begin/end pairs (per-thread
/// stack order), 'X' is a complete event with an explicit duration.
struct TraceEvent {
  char phase = 'X';
  std::uint32_t pid = kPidWall;
  std::uint64_t tid = 0;     ///< per-thread ordinal (wall) or tenant (ticks)
  std::uint64_t ts_ns = 0;   ///< exported as microseconds (ns / 1000)
  std::uint64_t dur_ns = 0;  ///< 'X' only
  std::string category;
  std::string name;
  std::vector<SpanArg> args;
};

/// Appends a complete ('X') event with caller-chosen timebase/timestamps
/// (no-op when disabled). This is how the modeled-tick spans are emitted.
void emit_complete(std::uint32_t pid, std::uint64_t tid, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, const char* category,
                   const char* name, std::vector<SpanArg> args = {});

/// Moves every collected trace event out of the registry, ordered by
/// (thread ordinal, append order) — which keeps each thread's B/E pairs in
/// stack order, the only ordering the Chrome trace format requires.
std::vector<TraceEvent> take_trace();

/// RAII span: records begin on construction, emits the B/E pair into this
/// thread's shard on destruction. Inactive (and cost-free beyond one
/// atomic load) when telemetry is disabled at construction time.
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& arg(const char* key, long long v);
  Span& arg(const char* key, int v) { return arg(key, (long long)v); }
  Span& arg(const char* key, std::size_t v) { return arg(key, (long long)v); }
  Span& arg(const char* key, double v);
  Span& arg(const char* key, const char* v);

 private:
  bool active_ = false;
  std::uint64_t t0_ = 0;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::vector<SpanArg> args_;
};

#define TELEM_CONCAT_(a, b) a##b
#define TELEM_CONCAT(a, b) TELEM_CONCAT_(a, b)
/// Anonymous scope span: TELEM_SPAN("route", "iteration");
#define TELEM_SPAN(category, name) \
  ::vbs::telem::Span TELEM_CONCAT(telem_span_, __LINE__)(category, name)

}  // namespace vbs::telem
