#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace vbs {

void Summary::add(double v) {
  ++n_;
  sum_ += v;
  assert(v > 0.0 || log_sum_ == log_sum_);  // geomean needs positive samples
  log_sum_ += std::log(v);
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

double Summary::mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }

double Summary::geomean() const {
  return n_ == 0 ? 0.0 : std::exp(log_sum_ / static_cast<double>(n_));
}

double geomean(const std::vector<double>& xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.geomean();
}

double mean(const std::vector<double>& xs) {
  Summary s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  if (lo + 1 >= xs.size()) return xs.back();
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] + frac * (xs[lo + 1] - xs[lo]);
}

}  // namespace vbs
