// Small work-stealing thread pool for deterministic fork/join parallelism.
//
// The pool owns `threads - 1` worker threads; the caller participates as
// rank 0, so `ThreadPool(1)` spawns nothing and parallel_for degenerates to
// a plain loop. parallel_for splits [0, n) into one contiguous block per
// participant; each participant pops indices from the front of its own
// block and, when empty, steals the back half of a victim's remaining
// block. Stealing keeps the load balanced under skewed per-item costs
// (e.g. one hard net among many easy ones) without any up-front cost model.
//
// Scheduling order is nondeterministic; callers that need reproducible
// results must make item tasks independent and merge them in a fixed order
// afterwards (see PathfinderRouter's speculative route/commit engine).
// parallel_for is fork/join: it returns only after every index has run, so
// data written by tasks is visible to the caller afterwards. One job at a
// time: the pool must not be entered concurrently from two threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vbs {

class ThreadPool {
 public:
  /// `threads` is the total participant count including the caller;
  /// clamped below at 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total participants (workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(rank, index) for every index in [0, n) and waits for all of
  /// them. `rank` is in [0, size()) and is stable within one item, so it
  /// can index per-thread scratch arenas. The first exception thrown by an
  /// item is rethrown here (remaining items may be skipped).
  void parallel_for(std::size_t n,
                    const std::function<void(int, std::size_t)>& fn);

 private:
  /// One participant's remaining index block, [lo, hi).
  struct Shard {
    std::mutex m;
    std::size_t lo = 0;
    std::size_t hi = 0;
  };

  void worker_main(int rank);
  /// Runs items until neither the own shard nor any victim has work left.
  void drain(int rank, const std::function<void(int, std::size_t)>& fn);
  bool next_index(int rank, std::size_t* out);

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, std::size_t)>* job_ = nullptr;
  std::uint64_t job_id_ = 0;
  std::size_t unfinished_ = 0;  ///< items not yet executed (or abandoned)
  int active_workers_ = 0;      ///< workers currently inside drain()
  bool stop_ = false;
  std::exception_ptr error_;
  bool abort_ = false;  ///< set on first error: remaining items are skipped
};

}  // namespace vbs
