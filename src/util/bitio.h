// Most-significant-bit-first bit stream writer/reader.
//
// The Virtual Bit-Stream binary format (DESIGN.md, paper Table I) packs
// variable-width fields back to back; these classes are the only place in
// the code base that performs that packing, so the on-stream layout is
// defined entirely here plus the field order in vbs/vbs_format.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "util/bitvector.h"
#include "util/error.h"

namespace vbs {

/// Thrown on any malformed Virtual Bit-Stream: BitReader throws it with
/// the default kTruncated code on a read past the end of the stream, and
/// the format layer (vbs/vbs_format.cpp) throws it with a specific
/// VbsErrc for every structural rejection.
class BitstreamError : public VbsError {
 public:
  explicit BitstreamError(const std::string& what,
                          VbsErrc code = VbsErrc::kTruncated)
      : VbsError(code, what) {}
};

class BitWriter {
 public:
  /// Appends the low `nbits` of `value`, MSB first. nbits may be 0.
  void write(std::uint64_t value, unsigned nbits);

  /// Appends a single bit.
  void write_bit(bool v) { bits_.push_back(v); }

  /// Appends a whole bit vector (used for raw-coded macro payloads).
  void write_vector(const BitVector& v) { bits_.append(v); }

  std::size_t bit_count() const { return bits_.size(); }

  const BitVector& bits() const { return bits_; }
  BitVector take() { return std::move(bits_); }

 private:
  BitVector bits_;
};

class BitReader {
 public:
  explicit BitReader(const BitVector& bits) : bits_(&bits) {}

  /// Reads `nbits` (MSB first). nbits may be 0, which reads nothing.
  std::uint64_t read(unsigned nbits);

  bool read_bit();

  /// Reads `nbits` into a fresh BitVector (raw macro payloads).
  BitVector read_vector(std::size_t nbits);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bits_->size() - pos_; }
  bool at_end() const { return pos_ == bits_->size(); }

 private:
  const BitVector* bits_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to code values in [0, n-1]; by convention 1 when
/// n <= 1 so that fields are never zero-width ambiguous on the wire.
unsigned bits_for(std::uint64_t n);

}  // namespace vbs
