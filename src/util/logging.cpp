#include "util/logging.h"

namespace vbs {
namespace {
LogLevel g_level = LogLevel::kSilent;
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_info(const std::string& msg) {
  if (g_level >= LogLevel::kInfo) std::fprintf(stderr, "[info] %s\n", msg.c_str());
}

void log_debug(const std::string& msg) {
  if (g_level >= LogLevel::kDebug) std::fprintf(stderr, "[debug] %s\n", msg.c_str());
}

}  // namespace vbs
