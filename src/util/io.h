// Crash-consistent file I/O: an AtomicFile writer (temp file -> flush/fsync
// -> rename) and deterministic fault injection for every I/O operation.
//
// Durability discipline used across the repo:
//   - whole-file artifacts (vbs.artifact.v1 containers, netlists, flow meta)
//     are written through AtomicFile, so a reader only ever observes the old
//     file, the new file, or an orphaned "*.tmp" it may delete — never a
//     half-written file under the real name;
//   - the service journal (rtc/service/journal.h) appends through
//     append_bytes, accepting torn tails and relying on record checksums to
//     find the last complete record.
//
// Fault injection mirrors util/fault.h: an IoFaultInjector wraps a FaultPlan
// and numbers every I/O operation (write, fsync, rename, remove) with one
// global serial op counter. The plan's write/sync/rename rates inject typed
// failures (kTornWrite / kFaultInjected) as pure functions of
// (seed, site, op); crash=N simulates process death at the Nth op by
// throwing CrashInjected — deliberately NOT a std::exception, so no
// intermediate catch(std::exception) recovery path can swallow it and the
// "process" dies with whatever bytes the preceding ops made durable.
// Sweeping N across [0, total_ops) kills the run at every I/O site once.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/fault.h"

namespace vbs {

/// Simulated process death, thrown by an IoFaultInjector whose plan says
/// crash=N once the Nth I/O operation is reached. Intentionally not derived
/// from std::exception: only a crash harness frame catches it.
struct CrashInjected {
  long long op;      ///< global I/O op index the crash fired at
  const char* site;  ///< "write" / "sync" / "rename" / "remove"
};

/// Numbers I/O operations and applies a FaultPlan's I/O sites to them.
/// One injector models one process: its op counter is the global serial
/// I/O schedule a crash plan indexes into. Not thread-safe by design —
/// all durable I/O below funnels through serial code.
class IoFaultInjector {
 public:
  /// `plan` may be null or disabled (every op is then a no-op). The plan is
  /// borrowed, not copied, so a harness can retune it between runs.
  explicit IoFaultInjector(const FaultPlan* plan) : plan_(plan) {}

  /// Ops performed so far; the sweep bound for crash plans.
  long long ops() const { return ops_; }

  /// Decision for one write op: when `torn` or `crash` is set the caller
  /// writes only a prefix of its buffer, then throws kTornWrite
  /// (resp. CrashInjected) — checked_write implements exactly that.
  struct WriteOutcome {
    long long op;
    bool torn;
    bool crash;
  };
  WriteOutcome on_write();
  /// Throw CrashInjected / VbsError(kFaultInjected) when the plan says so.
  void on_sync();
  void on_rename();
  void on_remove();

  const FaultPlan* plan() const { return plan_; }

 private:
  long long next_op(const char* site);

  const FaultPlan* plan_ = nullptr;
  long long ops_ = 0;
};

/// Thread-local injector used by code paths without explicit plumbing
/// (FlowPipeline checkpoints). Defaults to null (no injection).
IoFaultInjector* current_io_faults();

/// RAII scope installing `inj` as the thread-local injector.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(IoFaultInjector* inj);
  ~ScopedIoFaults();
  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;

 private:
  IoFaultInjector* prev_;
};

/// Writes `n` bytes to fd with injection: a torn-write fault writes a
/// prefix then throws VbsError(kTornWrite); a crash op writes a prefix then
/// throws CrashInjected (the torn bytes ARE on disk, as after real death
/// mid-write). Real short writes/EINTR are retried; real errors throw
/// std::runtime_error.
void checked_write(int fd, const void* data, std::size_t n,
                   const std::string& path, IoFaultInjector* faults);

/// fsync(fd) with injection: sync-fault throws VbsError(kFaultInjected), a
/// crash op throws CrashInjected *before* the fsync (bytes written but not
/// durably synced — our model treats completed write() calls as durable,
/// so the crash point is "after data, before the caller learns it's safe").
void checked_sync(int fd, const std::string& path, IoFaultInjector* faults);

/// rename(from, to) with injection (fault -> kFaultInjected, crash before
/// the rename so the temp file survives as an orphan).
void checked_rename(const std::string& from, const std::string& to,
                    IoFaultInjector* faults);

/// remove(path) with injection (crash-only site; never fails otherwise —
/// a missing file is fine).
void checked_remove(const std::string& path, IoFaultInjector* faults);

/// Appends `data` to `path` (creating it if needed) with write+sync
/// injection: one write op, one sync op. The journal's append primitive.
void append_bytes(const std::string& path, const std::string& data,
                  IoFaultInjector* faults);

/// Atomic whole-file replacement: writes to `path + ".tmp"`, then
/// commit() fsyncs and renames over `path`. If the writer dies before
/// commit() the real file is untouched; the destructor removes the temp
/// unless a crash was injected mid-write (simulated death leaves orphans,
/// like real death would).
class AtomicFile {
 public:
  /// Opens `path + ".tmp"` for writing. `faults` defaults to the
  /// thread-local injector when null.
  explicit AtomicFile(const std::string& path,
                      IoFaultInjector* faults = nullptr);
  ~AtomicFile();
  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  void write(const void* data, std::size_t n);
  void write(const std::string& bytes) { write(bytes.data(), bytes.size()); }

  /// fsync + close + rename into place. Call exactly once, last.
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  int fd_ = -1;
  IoFaultInjector* faults_ = nullptr;
  bool committed_ = false;
  bool crashed_ = false;
};

}  // namespace vbs
