// Chrome trace-event export for the telemetry tracer.
//
// The emitted file is the JSON-object form of the trace-event format
// ({"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
// Two timebases coexist in one file, separated by pid:
//
//   pid 1 ("wall")   RAII spans ('B'/'E' pairs) timestamped from the
//                    telemetry clock; tid is a small per-thread ordinal.
//                    Microsecond ts = clock ns / 1000.
//   pid 2 ("ticks")  The service's modeled-tick request phases, emitted as
//                    complete ('X') events with 1 tick rendered as 1 us and
//                    tid = tenant id. These are fully deterministic: the
//                    same trace replay produces the same pid-2 events at
//                    any thread count, and per-request phase spans sum
//                    exactly to the reported per-tenant latency breakdown.
//
// Metadata ('M') events naming the two pids are prepended so viewers label
// the lanes.
#pragma once

#include <string>
#include <vector>

#include "util/telemetry.h"

namespace vbs::telem {

/// One event as a JSON object (no trailing newline/comma).
std::string trace_event_json(const TraceEvent& ev);

/// Serializes events into a complete Chrome trace JSON document, with pid
/// metadata and a displayTimeUnit hint.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Writes chrome_trace_json() of take_trace() to `path` through util/io
/// (atomic tmp -> fsync -> rename). Throws VbsError on I/O failure.
void write_trace_file(const std::string& path);

/// Same, for an event list the caller already drained (e.g. sliced with
/// take_trace() around a measured leg).
void write_trace_file(const std::string& path,
                      const std::vector<TraceEvent>& events);

/// Structural check used by tests and tools: within every (pid, tid) lane,
/// 'B'/'E' events must nest like a well-formed bracket sequence with
/// matching category/name and monotonically non-decreasing timestamps.
/// Returns an empty string when the events pass, else a description of the
/// first violation.
std::string check_event_pairing(const std::vector<TraceEvent>& events);

}  // namespace vbs::telem
