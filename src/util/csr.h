// Compressed-sparse-row adjacency: many small per-row buckets flattened
// into one contiguous value array plus a row-offset array.
//
// Replaces vector-of-vectors layouts on hot paths (e.g. the annealer's
// block -> nets map): one allocation, cache-linear row scans, and 16 bytes
// of fixed overhead per row instead of a vector header plus a heap block.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace vbs {

template <typename T>
class Csr {
 public:
  Csr() = default;

  std::span<const T> row(std::size_t r) const {
    return {values_.data() + offsets_[r], values_.data() + offsets_[r + 1]};
  }
  std::size_t num_rows() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t size() const { return values_.size(); }

 private:
  template <typename U>
  friend class CsrBuilder;

  std::vector<std::uint32_t> offsets_;
  std::vector<T> values_;
};

/// Classic two-pass builder: call count(row) for every item, then prepare(),
/// then add(row, value) for exactly the counted items (any order), then
/// build(). Items of one row keep their add() order.
template <typename T>
class CsrBuilder {
 public:
  explicit CsrBuilder(std::size_t rows) { csr_.offsets_.assign(rows + 1, 0); }

  void count(std::size_t row) { ++csr_.offsets_[row + 1]; }

  void prepare() {
    for (std::size_t r = 1; r < csr_.offsets_.size(); ++r) {
      csr_.offsets_[r] += csr_.offsets_[r - 1];
    }
    csr_.values_.resize(csr_.offsets_.back());
    fill_ = csr_.offsets_;
  }

  void add(std::size_t row, T value) {
    csr_.values_[fill_[row]++] = std::move(value);
  }

  Csr<T> build() && { return std::move(csr_); }

 private:
  Csr<T> csr_;
  std::vector<std::uint32_t> fill_;
};

}  // namespace vbs
