#include "util/bitio.h"

#include <bit>
#include <cassert>

namespace vbs {

void BitWriter::write(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 64);
  if (nbits < 64) {
    assert(value < (std::uint64_t{1} << nbits));
  }
  bits_.append_bits(value, nbits);
}

std::uint64_t BitReader::read(unsigned nbits) {
  if (nbits == 0) return 0;
  if (pos_ + nbits > bits_->size()) {
    throw BitstreamError("bit-stream truncated: read past end");
  }
  const std::uint64_t v = bits_->get_bits(pos_, nbits);
  pos_ += nbits;
  return v;
}

bool BitReader::read_bit() {
  if (pos_ >= bits_->size()) {
    throw BitstreamError("bit-stream truncated: read past end");
  }
  return bits_->get(pos_++);
}

BitVector BitReader::read_vector(std::size_t nbits) {
  if (pos_ + nbits > bits_->size()) {
    throw BitstreamError("bit-stream truncated: read past end");
  }
  BitVector out = bits_->slice(pos_, pos_ + nbits);
  pos_ += nbits;
  return out;
}

unsigned bits_for(std::uint64_t n) {
  if (n <= 2) return 1;
  return static_cast<unsigned>(std::bit_width(n - 1));
}

}  // namespace vbs
