// Integer 2D geometry for the tiled fabric: tile coordinates and rectangular
// regions (task footprints, allocator free rectangles).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace vbs {

struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

inline int manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Half-open rectangle of tiles: x in [x, x+w), y in [y, y+h).
struct Rect {
  int x = 0;
  int y = 0;
  int w = 0;
  int h = 0;

  int area() const { return w * h; }
  bool empty() const { return w <= 0 || h <= 0; }

  bool contains(Point p) const {
    return p.x >= x && p.x < x + w && p.y >= y && p.y < y + h;
  }

  bool contains(const Rect& r) const {
    return r.x >= x && r.y >= y && r.x + r.w <= x + w && r.y + r.h <= y + h;
  }

  bool overlaps(const Rect& r) const {
    return x < r.x + r.w && r.x < x + w && y < r.y + r.h && r.y < y + h;
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

inline std::string to_string(Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

inline std::string to_string(const Rect& r) {
  return "[" + std::to_string(r.x) + "," + std::to_string(r.y) + " " +
         std::to_string(r.w) + "x" + std::to_string(r.h) + "]";
}

}  // namespace vbs
