// Minimal leveled logging. Quiet by default so test and bench output stays
// clean; the flow drivers raise the level for progress reporting.
#pragma once

#include <cstdio>
#include <string>

namespace vbs {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Process-wide log level (single-threaded mutation expected: set it once at
/// startup from a driver, before spawning decode threads).
void set_log_level(LogLevel level);
LogLevel log_level();

void log_info(const std::string& msg);
void log_debug(const std::string& msg);

}  // namespace vbs
