#include "util/bitvector.h"

#include <bit>
#include <cassert>

namespace vbs {

BitVector::BitVector(std::size_t nbits, bool value) {
  resize(nbits);
  if (value) {
    for (std::size_t i = 0; i < nbits; ++i) set(i, true);
  }
}

bool BitVector::get(std::size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1u;
}

void BitVector::set(std::size_t i, bool v) {
  assert(i < size_);
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  if (v) {
    words_[i >> 6] |= mask;
  } else {
    words_[i >> 6] &= ~mask;
  }
}

void BitVector::push_back(bool v) {
  if ((size_ & 63) == 0) words_.push_back(0);
  ++size_;
  set(size_ - 1, v);
}

void BitVector::append_bits(std::uint64_t value, unsigned nbits) {
  assert(nbits <= 64);
  for (unsigned i = nbits; i-- > 0;) {
    push_back((value >> i) & 1u);
  }
}

void BitVector::append(const BitVector& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_back(other.get(i));
}

std::uint64_t BitVector::get_bits(std::size_t pos, unsigned nbits) const {
  assert(nbits <= 64);
  assert(pos + nbits <= size_);
  std::uint64_t out = 0;
  for (unsigned i = 0; i < nbits; ++i) {
    out = (out << 1) | static_cast<std::uint64_t>(get(pos + i));
  }
  return out;
}

BitVector BitVector::slice(std::size_t begin, std::size_t end) const {
  assert(begin <= end && end <= size_);
  BitVector out;
  for (std::size_t i = begin; i < end; ++i) out.push_back(get(i));
  return out;
}

void BitVector::overwrite(std::size_t pos, const BitVector& src) {
  assert(pos + src.size() <= size_);
  for (std::size_t i = 0; i < src.size(); ++i) set(pos + i, src.get(i));
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

void BitVector::reset() {
  for (auto& w : words_) w = 0;
}

void BitVector::resize(std::size_t nbits) {
  const std::size_t nwords = (nbits + 63) / 64;
  words_.resize(nwords, 0);
  // Clear any bits beyond the new size so equality stays word-comparable.
  if (nbits < size_ && (nbits & 63) != 0) {
    words_[nbits >> 6] &= (std::uint64_t{1} << (nbits & 63)) - 1;
  }
  size_ = nbits;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::string BitVector::to_string(std::size_t max_bits) const {
  std::string s;
  const std::size_t n = size_ < max_bits ? size_ : max_bits;
  s.reserve(n + 3);
  for (std::size_t i = 0; i < n; ++i) s.push_back(get(i) ? '1' : '0');
  if (n < size_) s += "...";
  return s;
}

}  // namespace vbs
