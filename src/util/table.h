// Plain-text table printer used by the benchmark harnesses so every
// reproduced table/figure prints aligned, copy-pasteable rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace vbs {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders to stdout (or any FILE*).
  void print(std::FILE* out = stdout) const;

  /// Helpers for formatting cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  /// Bits rendered with a thousands separator for readability.
  static std::string fmt_bits(unsigned long long bits);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vbs
