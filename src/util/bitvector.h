// Dense bit vector used for configuration frames and raw bit-streams.
//
// The FPGA configuration memory is modelled as a flat sequence of bits; a
// BitVector provides the storage plus the slicing operations the bit-stream
// generators need (append, extract, compare ranges).
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace vbs {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t nbits, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);

  /// Appends a single bit at the end.
  void push_back(bool v);

  /// Appends the low `nbits` of `value`, most-significant-first.
  void append_bits(std::uint64_t value, unsigned nbits);

  /// Appends all bits of `other`.
  void append(const BitVector& other);

  /// Reads `nbits` bits starting at `pos`, most-significant-first.
  std::uint64_t get_bits(std::size_t pos, unsigned nbits) const;

  /// Extracts the half-open bit range [begin, end).
  BitVector slice(std::size_t begin, std::size_t end) const;

  /// Overwrites bits starting at `pos` with the contents of `src`.
  void overwrite(std::size_t pos, const BitVector& src);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Sets every bit to zero, keeping the size.
  void reset();

  /// Resizes to `nbits`, zero-filling any new bits.
  void resize(std::size_t nbits);

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// "0101..." debug rendering (possibly truncated for very long vectors).
  std::string to_string(std::size_t max_bits = 256) const;

  /// Raw word storage, 64 bits per word, bit i at word i/64 bit i%64.
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace vbs
