#include "util/error.h"

namespace vbs {

const char* to_string(VbsErrc c) {
  switch (c) {
    case VbsErrc::kNone: return "ok";
    case VbsErrc::kTruncated: return "truncated";
    case VbsErrc::kBadVersion: return "bad-version";
    case VbsErrc::kBadHeader: return "bad-header";
    case VbsErrc::kBadEntry: return "bad-entry";
    case VbsErrc::kBadConnection: return "bad-connection";
    case VbsErrc::kTrailingBits: return "trailing-bits";
    case VbsErrc::kResourceLimit: return "resource-limit";
    case VbsErrc::kBadContainer: return "bad-container";
    case VbsErrc::kBadTrace: return "bad-trace";
    case VbsErrc::kArchMismatch: return "arch-mismatch";
    case VbsErrc::kDecodeFailed: return "decode-failed";
    case VbsErrc::kNoPlacement: return "no-placement";
    case VbsErrc::kFaultInjected: return "fault-injected";
    case VbsErrc::kQueueFull: return "queue-full";
    case VbsErrc::kDeadline: return "deadline";
    case VbsErrc::kBadJournal: return "bad-journal";
    case VbsErrc::kTornWrite: return "torn-write";
    case VbsErrc::kNetFrame: return "net-frame";
    case VbsErrc::kNetAuth: return "net-auth";
    case VbsErrc::kNetProto: return "net-proto";
    case VbsErrc::kNetClosed: return "net-closed";
    case VbsErrc::kNetTimeout: return "net-timeout";
  }
  return "?";
}

int exit_code_for(VbsErrc c) {
  return c == VbsErrc::kNone ? 0 : 10 + static_cast<int>(c);
}

}  // namespace vbs
