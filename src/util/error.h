// Typed error taxonomy for every trust-the-input path: VBS streams,
// container files, artifacts, traces, and the service's admission layer.
//
// Anything that consumes bytes it did not produce (a serialized VBS, a
// .vbs/.art file, a trace text) rejects malformed input by throwing a
// VbsError carrying a stable VbsErrc code — never an assert, never
// undefined behaviour, never silent garbage. The legacy exception types
// (BitstreamError, ArtifactError, TraceError) derive from VbsError so
// existing catch sites keep working while new code can dispatch on the
// code alone.
//
// The numeric code values are a stable contract: tools expose them as
// process exit codes (exit_code_for) and in --json error objects, so they
// must never be renumbered — append only.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace vbs {

/// Stable error codes. Append only; values are exposed as CLI exit codes.
enum class VbsErrc : std::uint8_t {
  kNone = 0,           ///< success (never thrown)
  kTruncated = 1,      ///< read past the end of a stream or file
  kBadVersion = 2,     ///< unsupported format version
  kBadHeader = 3,      ///< malformed preamble / architecture / dimensions
  kBadEntry = 4,       ///< entry position, count or logic payload invalid
  kBadConnection = 5,  ///< connection endpoint/count out of range
  kTrailingBits = 6,   ///< stream longer than its own content
  kResourceLimit = 7,  ///< well-formed but absurd: decode cost guard
  kBadContainer = 8,   ///< file container (VBS1 / VAR1) malformed
  kBadTrace = 9,       ///< rtc trace text malformed
  kArchMismatch = 10,  ///< stream targets a different architecture
  kDecodeFailed = 11,  ///< connection list failed to route in-region
  kNoPlacement = 12,   ///< no free region (even after eviction)
  kFaultInjected = 13, ///< deterministic fault-plan injection
  kQueueFull = 14,     ///< shed by bounded-queue admission control
  kDeadline = 15,      ///< per-request deadline exceeded before commit
  kBadJournal = 16,    ///< service journal malformed beyond a torn tail
  kTornWrite = 17,     ///< in-flight write cut short (injected or detected)
  kNetFrame = 18,      ///< vbs.rpc.v1 frame malformed (length/checksum/type)
  kNetAuth = 19,       ///< RPC handshake rejected (bad proof / bad state)
  kNetProto = 20,      ///< frame valid but illegal in the session state
  kNetClosed = 21,     ///< peer gone: connect refused / closed mid-frame
  kNetTimeout = 22,    ///< RPC deadline expired waiting on the wire
};

/// Stable kebab-case name of a code ("truncated", "bad-header", ...).
const char* to_string(VbsErrc c);

/// Process exit code a CLI tool reports for a typed failure: 0 for kNone,
/// otherwise 10 + the numeric code (1 stays reserved for untyped errors).
int exit_code_for(VbsErrc c);

/// Base class of every typed rejection.
class VbsError : public std::runtime_error {
 public:
  VbsError(VbsErrc code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  VbsErrc code() const { return code_; }

 private:
  VbsErrc code_;
};

}  // namespace vbs
