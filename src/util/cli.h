// Minimal command-line option parser for the tools/ binaries.
//
// Supports `--flag`, `--key value` and positional arguments; unknown
// options raise std::runtime_error so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace vbs {

class CliArgs {
 public:
  /// `value_opts` lists options that consume a value; `flag_opts` those
  /// that do not. Option names include the leading dashes ("--cluster").
  CliArgs(int argc, char** argv, std::set<std::string> value_opts,
          std::set<std::string> flag_opts) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (flag_opts.count(arg) != 0) {
          flags_.insert(arg);
        } else if (value_opts.count(arg) != 0) {
          if (i + 1 >= argc) {
            throw std::runtime_error("option " + arg + " needs a value");
          }
          values_[arg] = argv[++i];
        } else {
          throw std::runtime_error("unknown option " + arg);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has_flag(const std::string& name) const {
    return flags_.count(name) != 0;
  }

  std::optional<std::string> value(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string value_or(const std::string& name, std::string def) const {
    return value(name).value_or(std::move(def));
  }

  long long int_or(const std::string& name, long long def) const {
    const auto v = value(name);
    if (!v) return def;
    try {
      return std::stoll(*v);
    } catch (const std::exception&) {
      throw std::runtime_error("option " + name + ": not a number: " + *v);
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace vbs
