// Minimal command-line option parser for the tools/ binaries, plus the
// shared helpers for the flags every tool spells the same way
// (--seed/--threads, WxH / X,Y pair values) and the common main() shell.
//
// Supports `--flag`, `--key value` and positional arguments; unknown
// options raise std::runtime_error so typos fail loudly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/telemetry.h"
#include "util/trace_export.h"

namespace vbs {

class CliArgs {
 public:
  /// `value_opts` lists options that consume a value; `flag_opts` those
  /// that do not. Option names include the leading dashes ("--cluster").
  CliArgs(int argc, char** argv, std::set<std::string> value_opts,
          std::set<std::string> flag_opts) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (flag_opts.count(arg) != 0) {
          flags_.insert(arg);
        } else if (value_opts.count(arg) != 0) {
          if (i + 1 >= argc) {
            throw std::runtime_error("option " + arg + " needs a value");
          }
          values_[arg] = argv[++i];
        } else {
          throw std::runtime_error("unknown option " + arg);
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }

  bool has_flag(const std::string& name) const {
    return flags_.count(name) != 0;
  }

  std::optional<std::string> value(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  std::string value_or(const std::string& name, std::string def) const {
    return value(name).value_or(std::move(def));
  }

  // Numeric values must consume the whole token: std::stoll/std::stod stop
  // at the first bad character, which would let typos like "1O" or "0.5x"
  // pass silently — the opposite of this parser's fail-loudly contract.
  long long int_or(const std::string& name, long long def) const {
    const auto v = value(name);
    if (!v) return def;
    try {
      std::size_t used = 0;
      const long long out = std::stoll(*v, &used);
      if (used != v->size()) throw std::invalid_argument("trailing garbage");
      return out;
    } catch (const std::exception&) {
      throw std::runtime_error("option " + name + ": not a number: " + *v);
    }
  }

  double double_or(const std::string& name, double def) const {
    const auto v = value(name);
    if (!v) return def;
    try {
      std::size_t used = 0;
      const double out = std::stod(*v, &used);
      if (used != v->size()) throw std::invalid_argument("trailing garbage");
      return out;
    } catch (const std::exception&) {
      throw std::runtime_error("option " + name + ": not a number: " + *v);
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

// --- shared flag conventions -------------------------------------------------

/// `--seed S` as every tool spells it (default 1, the flow's default seed).
inline std::uint64_t seed_or(const CliArgs& args, long long def = 1) {
  return static_cast<std::uint64_t>(args.int_or("--seed", def));
}

/// `--threads T` as every tool spells it; rejects non-positive counts (the
/// engines treat their own 0 as "inherit", which is not a CLI concept).
inline int threads_or(const CliArgs& args, long long def = 1) {
  const long long t = args.int_or("--threads", def);
  if (t < 1) throw std::runtime_error("option --threads: must be >= 1");
  return static_cast<int>(t);
}

/// Parses "<a><sep><b>" integer pairs: `--fabric WxH`, `--origin X,Y`.
/// Both halves must be whole integers — "16x1O" fails instead of silently
/// parsing as 16x1.
inline std::pair<int, int> parse_pair(const std::string& s, char sep) {
  const auto pos = s.find(sep);
  if (pos == std::string::npos) {
    throw std::runtime_error("expected <a>" + std::string(1, sep) +
                             "<b>: " + s);
  }
  const std::string a = s.substr(0, pos);
  const std::string b = s.substr(pos + 1);
  try {
    std::size_t ua = 0, ub = 0;
    const int x = std::stoi(a, &ua);
    const int y = std::stoi(b, &ub);
    if (ua != a.size() || ub != b.size()) {
      throw std::invalid_argument("trailing garbage");
    }
    return {x, y};
  } catch (const std::exception&) {
    throw std::runtime_error("expected integers in <a>" +
                             std::string(1, sep) + "<b>: " + s);
  }
}

/// `--trace-out FILE` and `--metrics` as every tool spells them: construct
/// right after argument parsing (either flag switches the telemetry
/// registry on — it defaults off and is near-zero-cost that way), do the
/// work, then call finish() exactly once: it writes the Chrome trace-event
/// JSON (load into chrome://tracing or Perfetto) and dumps the metrics
/// snapshot as JSON to stderr, where it cannot corrupt a tool's --json
/// stdout contract.
class TelemetryCli {
 public:
  explicit TelemetryCli(const CliArgs& args)
      : trace_out_(args.value_or("--trace-out", "")),
        metrics_(args.has_flag("--metrics")) {
    if (!trace_out_.empty() || metrics_) telem::set_enabled(true);
  }

  void finish() const {
    if (!trace_out_.empty()) telem::write_trace_file(trace_out_);
    if (metrics_) {
      std::fprintf(stderr, "%s\n", telem::snapshot().to_json(0).c_str());
    }
  }

  bool tracing() const { return !trace_out_.empty(); }

 private:
  std::string trace_out_;
  bool metrics_ = false;
};

/// The shared main() shell of the tools/ binaries: runs `body`, and on any
/// std::exception prints "<name>: <what>" plus the usage line to stderr and
/// returns 1. `body` returns the process exit status.
inline int tool_main(const char* name, const char* usage,
                     const std::function<int()>& body) {
  try {
    return body();
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s: %s\nusage: %s\n", name, ex.what(), usage);
    return 1;
  }
}

}  // namespace vbs
