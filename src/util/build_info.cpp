#include "util/build_info.h"

#include <cstdio>
#include <thread>

#include "util/json.h"

namespace vbs {

namespace {

std::string detect_sanitizers() {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
#if defined(__SANITIZE_ADDRESS__)
  add("address");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  add("address");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  add("thread");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  add("thread");
#endif
#endif
#if defined(__SANITIZE_UNDEFINED__)
  add("undefined");
#endif
  if (out.empty()) out = "none";
  return out;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.version = "0.8.0";
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(VBS_BUILD_TYPE)
  info.build_type = VBS_BUILD_TYPE;
#else
  info.build_type = "unknown";
#endif
  info.sanitizers = detect_sanitizers();
  info.hardware_threads = std::thread::hardware_concurrency();
  return info;
}

std::string build_info_json(int indent) {
  const BuildInfo info = build_info();
  const std::string pad(indent, ' ');
  const std::string pad2(indent + 2, ' ');
  std::string out = "{\n";
  out += pad2 + "\"version\": \"" + json_escape(info.version) + "\",\n";
  out += pad2 + "\"compiler\": \"" + json_escape(info.compiler) + "\",\n";
  out += pad2 + "\"build_type\": \"" + json_escape(info.build_type) + "\",\n";
  out += pad2 + "\"sanitizers\": \"" + json_escape(info.sanitizers) + "\",\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"hardware_threads\": %u\n",
                info.hardware_threads);
  out += pad2 + buf;
  out += pad + "}";
  return out;
}

}  // namespace vbs
